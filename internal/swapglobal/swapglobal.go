// Package swapglobal implements the paper's swap-global scheme for
// transparently privatizing global variables (§3.1.1): a dynamically
// linked ELF executable reaches every global through the Global
// Offset Table (GOT) — one pointer per global — so giving each
// user-level thread its own copy of the GOT, and swapping it at
// context-switch time, gives each thread a private set of globals
// without changing application code.
//
// Here the GOT is a real table in simulated memory: slot i holds the
// simulated address of global i's storage. A thread Instance owns
// private storage for every global (allocated from the thread's
// migratable isomalloc heap, so privatized globals migrate with the
// thread) plus an image of slot values; the scheduler calls
// GOT.Swap(instance.Image()) when switching the thread in.
package swapglobal

import (
	"fmt"

	"migflow/internal/mem"
	"migflow/internal/vmem"
)

// SlotSize is the size of one GOT entry (a simulated pointer).
const SlotSize = 8

// Layout describes a module's global variables: the compile-time
// side of the scheme, shared by every thread.
type Layout struct {
	names []string
	sizes []uint64
	index map[string]int
}

// NewLayout returns an empty layout.
func NewLayout() *Layout { return &Layout{index: make(map[string]int)} }

// Declare adds a global of the given size and returns its GOT slot.
// Declaring a duplicate name panics: it is a build-time error.
func (l *Layout) Declare(name string, size uint64) int {
	if _, dup := l.index[name]; dup {
		panic(fmt.Sprintf("swapglobal: global %q declared twice", name))
	}
	if size == 0 {
		panic(fmt.Sprintf("swapglobal: global %q has zero size", name))
	}
	slot := len(l.names)
	l.names = append(l.names, name)
	l.sizes = append(l.sizes, size)
	l.index[name] = slot
	return slot
}

// NumGlobals returns the number of declared globals.
func (l *Layout) NumGlobals() int { return len(l.names) }

// SlotOf returns the GOT slot of the named global.
func (l *Layout) SlotOf(name string) (int, error) {
	if i, ok := l.index[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("swapglobal: unknown global %q", name)
}

// SizeOf returns the declared size of slot i's global.
func (l *Layout) SizeOf(slot int) uint64 { return l.sizes[slot] }

// TableBytes returns the GOT's size in memory, rounded to pages.
func (l *Layout) TableBytes() uint64 {
	return vmem.RoundUpPages(uint64(len(l.names)) * SlotSize)
}

// GOT is the live Global Offset Table of one address space.
type GOT struct {
	layout *Layout
	space  *vmem.Space
	base   vmem.Addr
	swaps  uint64 // number of Swap calls, for the ablation bench
}

// Install maps the GOT at base in space and returns it. Every PE
// process installs its GOT at the same base address — the table is
// part of the executable image.
func Install(space *vmem.Space, base vmem.Addr, layout *Layout) (*GOT, error) {
	if layout.NumGlobals() == 0 {
		return nil, fmt.Errorf("swapglobal: empty layout")
	}
	if err := space.Map(base.AlignDown(), layout.TableBytes(), vmem.ProtRW); err != nil {
		return nil, fmt.Errorf("swapglobal: installing GOT: %w", err)
	}
	return &GOT{layout: layout, space: space, base: base}, nil
}

// Layout returns the module layout the table serves.
func (g *GOT) Layout() *Layout { return g.layout }

// SlotAddr returns the address of GOT slot i itself.
func (g *GOT) SlotAddr(slot int) vmem.Addr {
	return g.base.Add(uint64(slot) * SlotSize)
}

// Swap installs a thread's image — one storage address per global —
// into the table: the per-context-switch operation. Its cost is
// O(number of globals), which BenchmarkAblationGOTSwap quantifies.
func (g *GOT) Swap(image []vmem.Addr) error {
	if len(image) != g.layout.NumGlobals() {
		return fmt.Errorf("swapglobal: image has %d slots, layout has %d", len(image), g.layout.NumGlobals())
	}
	for i, a := range image {
		if err := g.space.WriteAddr(g.SlotAddr(i), a); err != nil {
			return err
		}
	}
	g.swaps++
	return nil
}

// Swaps returns how many times the table has been swapped.
func (g *GOT) Swaps() uint64 { return g.swaps }

// Resolve reads slot i and returns the current storage address of
// global i — the load every global access performs in a dynamically
// linked executable.
func (g *GOT) Resolve(slot int) (vmem.Addr, error) {
	return g.space.ReadAddr(g.SlotAddr(slot))
}

// LoadUint64 reads the named global through the table.
func (g *GOT) LoadUint64(name string) (uint64, error) {
	slot, err := g.layout.SlotOf(name)
	if err != nil {
		return 0, err
	}
	a, err := g.Resolve(slot)
	if err != nil {
		return 0, err
	}
	return g.space.ReadUint64(a)
}

// StoreUint64 writes the named global through the table.
func (g *GOT) StoreUint64(name string, v uint64) error {
	slot, err := g.layout.SlotOf(name)
	if err != nil {
		return err
	}
	a, err := g.Resolve(slot)
	if err != nil {
		return err
	}
	return g.space.WriteUint64(a, v)
}

// Instance is one thread's private set of globals: storage for each
// global plus the GOT image pointing at that storage. Storage comes
// from the thread's allocator, so with an isomalloc thread heap the
// privatized globals migrate with the thread and the image stays
// valid on the destination PE.
type Instance struct {
	layout *Layout
	vars   []vmem.Addr
}

// NewInstance allocates private storage for every global in layout
// from alloc.
func NewInstance(layout *Layout, alloc mem.Allocator) (*Instance, error) {
	in := &Instance{layout: layout, vars: make([]vmem.Addr, layout.NumGlobals())}
	for i := range in.vars {
		a, err := alloc.Malloc(layout.sizes[i])
		if err != nil {
			return nil, fmt.Errorf("swapglobal: allocating global %q: %w", layout.names[i], err)
		}
		in.vars[i] = a
	}
	return in, nil
}

// RestoreInstance rebuilds an Instance from its migrated slot values
// (the storage they point at has already been shipped inside the
// thread's heap image).
func RestoreInstance(layout *Layout, vars []vmem.Addr) (*Instance, error) {
	if len(vars) != layout.NumGlobals() {
		return nil, fmt.Errorf("swapglobal: RestoreInstance: %d vars for %d globals", len(vars), layout.NumGlobals())
	}
	return &Instance{layout: layout, vars: vars}, nil
}

// Image returns the slot values to install on switch-in. The caller
// must not mutate it.
func (in *Instance) Image() []vmem.Addr { return in.vars }

// VarAddr returns the storage address of the named global in this
// instance (for direct initialization).
func (in *Instance) VarAddr(name string) (vmem.Addr, error) {
	slot, err := in.layout.SlotOf(name)
	if err != nil {
		return vmem.Nil, err
	}
	return in.vars[slot], nil
}

// Release frees the instance's storage back to alloc (thread exit on
// the birth PE).
func (in *Instance) Release(alloc mem.Allocator) error {
	var firstErr error
	for _, a := range in.vars {
		if err := alloc.Free(a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	in.vars = nil
	return firstErr
}
