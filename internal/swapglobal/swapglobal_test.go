package swapglobal

import (
	"testing"

	"migflow/internal/mem"
	"migflow/internal/vmem"
)

const gotBase vmem.Addr = 0x30000000

func fixture(t *testing.T) (*Layout, *GOT, *vmem.Space, mem.Allocator) {
	t.Helper()
	l := NewLayout()
	l.Declare("counter", 8)
	l.Declare("rank", 8)
	l.Declare("buffer", 256)
	space := vmem.NewSpace(0)
	got, err := Install(space, gotBase, l)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := mem.NewHeap(space, vmem.Range{Start: 0x1000000, Length: 64 * vmem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	return l, got, space, mem.AsAllocator(heap)
}

func TestDeclareAndSlots(t *testing.T) {
	l, got, _, _ := fixture(t)
	if l.NumGlobals() != 3 {
		t.Fatalf("NumGlobals = %d", l.NumGlobals())
	}
	s, err := l.SlotOf("rank")
	if err != nil || s != 1 {
		t.Errorf("SlotOf(rank) = %d/%v", s, err)
	}
	if _, err := l.SlotOf("nope"); err == nil {
		t.Error("unknown global should error")
	}
	if l.SizeOf(2) != 256 {
		t.Errorf("SizeOf(buffer) = %d", l.SizeOf(2))
	}
	if got.SlotAddr(1) != gotBase+8 {
		t.Errorf("SlotAddr(1) = %s", got.SlotAddr(1))
	}
}

func TestDeclareDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Declare did not panic")
		}
	}()
	l := NewLayout()
	l.Declare("x", 8)
	l.Declare("x", 8)
}

func TestInstallEmptyLayoutFails(t *testing.T) {
	if _, err := Install(vmem.NewSpace(0), gotBase, NewLayout()); err == nil {
		t.Error("empty layout accepted")
	}
}

func TestPrivatization(t *testing.T) {
	l, got, _, alloc := fixture(t)
	t1, err := NewInstance(l, alloc)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewInstance(l, alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct storage per instance.
	a1, _ := t1.VarAddr("counter")
	a2, _ := t2.VarAddr("counter")
	if a1 == a2 {
		t.Fatal("instances share storage")
	}
	// Thread 1 runs: sees and mutates its own counter.
	if err := got.Swap(t1.Image()); err != nil {
		t.Fatal(err)
	}
	if err := got.StoreUint64("counter", 111); err != nil {
		t.Fatal(err)
	}
	// Context switch to thread 2.
	if err := got.Swap(t2.Image()); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.LoadUint64("counter"); v != 0 {
		t.Errorf("thread 2 sees thread 1's counter: %d", v)
	}
	if err := got.StoreUint64("counter", 222); err != nil {
		t.Fatal(err)
	}
	// Back to thread 1: its value survived.
	if err := got.Swap(t1.Image()); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.LoadUint64("counter"); v != 111 {
		t.Errorf("thread 1 counter = %d, want 111", v)
	}
	if got.Swaps() != 3 {
		t.Errorf("Swaps = %d, want 3", got.Swaps())
	}
}

func TestSwapWrongImageSize(t *testing.T) {
	_, got, _, _ := fixture(t)
	if err := got.Swap([]vmem.Addr{1}); err == nil {
		t.Error("short image accepted")
	}
}

func TestInstanceRelease(t *testing.T) {
	l, _, _, alloc := fixture(t)
	in, err := NewInstance(l, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Release(alloc); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationScenario walks the full §3.1.1 story: a thread's
// privatized globals live in its isomalloc heap, migrate to another
// PE's address space at the same addresses, and the destination GOT
// swap makes them visible unchanged.
func TestMigrationScenario(t *testing.T) {
	l := NewLayout()
	l.Declare("iter", 8)
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, 1024*vmem.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	iso0 := mem.NewIsoAllocator(region, 0)
	iso1 := mem.NewIsoAllocator(region, 1)
	src, dst := vmem.NewSpace(0), vmem.NewSpace(0)
	gotSrc, err := Install(src, gotBase, l)
	if err != nil {
		t.Fatal(err)
	}
	gotDst, err := Install(dst, gotBase, l)
	if err != nil {
		t.Fatal(err)
	}
	th := mem.NewThreadHeap(iso0, src, 4)
	in, err := NewInstance(l, th)
	if err != nil {
		t.Fatal(err)
	}
	if err := gotSrc.Swap(in.Image()); err != nil {
		t.Fatal(err)
	}
	if err := gotSrc.StoreUint64("iter", 77); err != nil {
		t.Fatal(err)
	}
	// Migrate: copy the thread's heap pages to dst, rebind, swap in.
	for _, vpn := range th.MappedPages() {
		base := vmem.Addr(vpn << vmem.PageShift)
		data, err := src.CopyOut(base, vmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Map(base, vmem.PageSize, vmem.ProtRW); err != nil {
			t.Fatal(err)
		}
		if err := dst.Write(base, data); err != nil {
			t.Fatal(err)
		}
	}
	th.Rebind(iso1, dst)
	if err := gotDst.Swap(in.Image()); err != nil {
		t.Fatal(err)
	}
	if v, err := gotDst.LoadUint64("iter"); err != nil || v != 77 {
		t.Errorf("migrated global = %d/%v, want 77", v, err)
	}
}

func TestGOTLayoutAccessorAndRestoreValidation(t *testing.T) {
	l, got, _, alloc := fixture(t)
	if got.Layout() != l {
		t.Error("Layout accessor wrong")
	}
	if _, err := RestoreInstance(l, []vmem.Addr{1}); err == nil {
		t.Error("short RestoreInstance accepted")
	}
	in, err := NewInstance(l, alloc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RestoreInstance(l, in.Image())
	if err != nil {
		t.Fatal(err)
	}
	if back.Image()[0] != in.Image()[0] {
		t.Error("restored image differs")
	}
	if _, err := in.VarAddr("nope"); err == nil {
		t.Error("unknown var accepted")
	}
}
