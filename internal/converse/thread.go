package converse

import (
	"fmt"
	"sync"
	"sync/atomic"

	"migflow/internal/mem"
	"migflow/internal/swapglobal"
	"migflow/internal/vmem"
)

// ID identifies a thread machine-wide (it doubles as the thread's
// comm.EntityID at higher layers).
type ID uint64

var nextThreadID atomic.Uint64

// Non-thread flows of control (event-mode AMPI ranks) used to draw
// comm identities from this process-global space; they now use
// comm.Network.AllocFlowIDs so identical machine construction yields
// identical entity bases in every process of a sharded run. Their IDs
// carry the PinnedEntity bit, which raw thread IDs never do, so the
// two spaces cannot collide in a location directory.

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	// Created: never run yet, not enqueued.
	Created State = iota
	// Ready: in a scheduler's ready queue.
	Ready
	// Running: currently switched in.
	Running
	// Suspended: parked waiting for an Awaken.
	Suspended
	// Migrating: extracted, in flight between PEs.
	Migrating
	// Exited: body returned.
	Exited
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Migrating:
		return "migrating"
	case Exited:
		return "exited"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// outcome is what a thread reports to the scheduler when it stops
// running.
type outcome int

const (
	outYield outcome = iota
	outSuspend
	outMigrate
	outExit
)

// ThreadOptions configures CthCreate.
type ThreadOptions struct {
	// StackSize in bytes (rounded to pages); default 64 KiB.
	StackSize uint64
	// Strategy is the migratable-stack technique; required.
	Strategy StackStrategy
	// Priority orders the ready queue (lower runs first); default 0.
	Priority int
	// Globals, when non-nil with a PE that has a GOT, gives the
	// thread a privatized set of globals via swap-global.
	Globals *swapglobal.Layout
	// ArenaPages sizes thread-heap arenas (default
	// mem.DefaultArenaPages).
	ArenaPages uint64
}

// DefaultStackSize is used when ThreadOptions.StackSize is zero.
const DefaultStackSize uint64 = 64 << 10

// Thread is a migratable user-level thread (a Cth thread whose
// migratable state lives entirely in simulated memory).
type Thread struct {
	id   ID
	body func(*Ctx)
	prio int

	// Scheduling machinery. mu guards state, wakePending, sched.
	mu          sync.Mutex
	state       State
	wakePending bool
	sched       *Scheduler // current owner

	resume chan struct{} // scheduler -> thread
	parked chan outcome  // thread -> scheduler

	// Migratable state substrate.
	strategy  StackStrategy
	stack     StackRef
	sp        vmem.Addr // simulated stack pointer (grows down)
	heap      *mem.ThreadHeap
	globals   *swapglobal.Instance
	migrateTo int // valid while outcome outMigrate is in flight

	// cpuNs accumulates the virtual computation charged through
	// Ctx.Work — the measured load the balancers of §4.5 consume.
	// (Message waits and scheduler overhead are deliberately
	// excluded: the load database records work, not idleness.)
	// Guarded by mu.
	cpuNs float64

	ctx Ctx
}

// CPUTime returns the virtual nanoseconds this thread has run since
// creation or the last ResetCPUTime.
func (t *Thread) CPUTime() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cpuNs
}

// LoadSample returns the thread's current PE index and measured CPU
// time in one lock acquisition — the unit of the load balancer's
// measurement walk. Sampling every thread is a single pass with one
// mutex operation each, instead of the separate Scheduler() and
// CPUTime() round trips.
func (t *Thread) LoadSample() (pe int, cpuNs float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sched.pe.Index, t.cpuNs
}

// ResetCPUTime zeroes the accumulated load (start of an LB epoch).
func (t *Thread) ResetCPUTime() {
	t.mu.Lock()
	t.cpuNs = 0
	t.mu.Unlock()
}

func (t *Thread) addCPU(ns float64) {
	t.mu.Lock()
	t.cpuNs += ns
	t.mu.Unlock()
}

// ID returns the thread's machine-wide id.
func (t *Thread) ID() ID { return t.id }

// Priority returns the scheduling priority.
func (t *Thread) Priority() int { return t.prio }

// State returns the current scheduling state.
func (t *Thread) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Scheduler returns the thread's current owning scheduler.
func (t *Thread) Scheduler() *Scheduler {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sched
}

// Heap exposes the thread's migratable heap (for migration engines).
func (t *Thread) Heap() *mem.ThreadHeap { return t.heap }

// Globals exposes the thread's privatized globals, if any.
func (t *Thread) Globals() *swapglobal.Instance { return t.globals }

// Stack exposes the strategy stack handle (for migration engines).
func (t *Thread) Stack() StackRef { return t.stack }

// Strategy returns the thread's stack strategy.
func (t *Thread) Strategy() StackStrategy { return t.strategy }

// SP returns the simulated stack pointer.
func (t *Thread) SP() vmem.Addr { return t.sp }

// StackBytesUsed returns how much simulated stack is live — what
// stack copying must move per context switch (Figure 9's x-axis).
func (t *Thread) StackBytesUsed() uint64 {
	if t.stack == nil {
		return 0
	}
	top := t.stack.Base().Add(t.stack.Size())
	return uint64(top - t.sp)
}

// CostKind returns the platform cost-curve key for this thread:
// migratable threads pay the "ampi" curve (isomalloc + privatization
// overhead), matching the paper's Cth-vs-AMPI split in Figures 4-8.
func (t *Thread) CostKind() string { return "ampi" }

// MigrationTarget returns the destination PE of an in-flight
// migration (meaningful only in the Migrating state).
func (t *Thread) MigrationTarget() int { return t.migrateTo }

// Reinstall replaces the thread's migratable state after the
// migration engine has deserialized it on the destination PE: the
// new stack handle, the (unchanged, globally valid) stack pointer,
// the rebuilt heap, and the rebuilt globals instance. Only the
// migration engine may call this, and only while the thread is
// Migrating.
func (t *Thread) Reinstall(stack StackRef, sp vmem.Addr, heap *mem.ThreadHeap, globals *swapglobal.Instance) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Migrating {
		panic(fmt.Sprintf("converse: Reinstall on %s thread %d", t.state, t.id))
	}
	t.stack = stack
	t.sp = sp
	t.heap = heap
	t.globals = globals
}

// Awaken makes a Suspended thread Ready (called by message delivery,
// SDAG triggers, etc.). Waking a Running thread records a pending
// wake so the next Suspend returns immediately — the standard lost-
// wakeup guard.
func (t *Thread) Awaken() {
	t.mu.Lock()
	switch t.state {
	case Suspended:
		t.state = Ready
		s := t.sched
		t.mu.Unlock()
		s.enqueue(t)
		return
	case Running, Migrating:
		// Running: remember the wake for the next Suspend.
		// Migrating: remember it for arrival — an externally evicted
		// Suspended thread must not lose a wakeup that lands while it
		// is in flight.
		t.wakePending = true
	case Ready, Created, Exited:
		// Already runnable, not yet started, or gone — no-op.
	}
	t.mu.Unlock()
}

// run is the thread goroutine: it carries control flow only; all
// migratable state lives in simulated memory.
func (t *Thread) run() {
	<-t.resume
	t.body(&t.ctx)
	t.mu.Lock()
	t.state = Exited
	t.mu.Unlock()
	t.parked <- outExit
}

// Ctx is the API surface a thread body sees. It is only valid while
// the thread is running; all state it manipulates lives in simulated
// memory, which is what makes the thread migratable.
type Ctx struct {
	t *Thread
}

// Thread returns the underlying thread.
func (c *Ctx) Thread() *Thread { return c.t }

// PE returns the PE the thread is currently running on.
func (c *Ctx) PE() *PE { return c.t.sched.pe }

// Space returns the current PE's simulated address space.
func (c *Ctx) Space() *vmem.Space { return c.t.sched.pe.Space }

// Yield gives up the processor, keeping the thread runnable
// (CthYield).
func (c *Ctx) Yield() { c.t.stopRunning(outYield) }

// Suspend parks the thread until Awaken (CthSuspend). If an Awaken
// raced in while running, Suspend returns immediately.
func (c *Ctx) Suspend() {
	t := c.t
	t.mu.Lock()
	if t.wakePending {
		t.wakePending = false
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.stopRunning(outSuspend)
}

// MigrateTo asks the runtime to move the thread to PE dest; the call
// returns on the destination PE. Migrating to the current PE is a
// no-op.
func (c *Ctx) MigrateTo(dest int) {
	t := c.t
	if dest == t.sched.pe.Index {
		return
	}
	t.migrateTo = dest
	t.stopRunning(outMigrate)
}

// stopRunning hands control back to the scheduler and blocks until
// resumed.
func (t *Thread) stopRunning(out outcome) {
	t.parked <- out
	<-t.resume
}

// Malloc allocates from the thread's migratable heap via the PE's
// malloc interposer (§3.4.2: in-thread malloc goes to isomalloc).
func (c *Ctx) Malloc(size uint64) (vmem.Addr, error) {
	return c.t.sched.pe.Inter.Malloc(size)
}

// Free releases a Malloc'd block.
func (c *Ctx) Free(a vmem.Addr) error {
	return c.t.sched.pe.Inter.Free(a)
}

// PushFrame grows the simulated stack down by n bytes (16-byte
// aligned) and returns the new frame's base — the alloca() of this
// runtime. Overflow is a hard error, like running off a real stack.
func (c *Ctx) PushFrame(n uint64) (vmem.Addr, error) {
	t := c.t
	n = (n + 15) &^ 15
	if uint64(t.sp-t.stack.Base()) < n {
		return vmem.Nil, fmt.Errorf("converse: thread %d stack overflow: frame %d bytes, %d free",
			t.id, n, uint64(t.sp-t.stack.Base()))
	}
	t.sp -= vmem.Addr(n)
	return t.sp, nil
}

// PopFrame releases the most recent n bytes of stack.
func (c *Ctx) PopFrame(n uint64) {
	t := c.t
	n = (n + 15) &^ 15
	top := t.stack.Base().Add(t.stack.Size())
	if t.sp.Add(n) > top {
		panic(fmt.Sprintf("converse: thread %d stack underflow", t.id))
	}
	t.sp = t.sp.Add(n)
}

// GlobalsGOT returns the PE's GOT for global-variable access (nil if
// the job has no swap-global module).
func (c *Ctx) GlobalsGOT() *swapglobal.GOT { return c.t.sched.pe.GOT }

// Work charges ns nanoseconds of modeled computation to the PE's
// virtual clock and to this thread's measured CPU time — how
// application kernels like the BT-MZ solver express their work.
func (c *Ctx) Work(ns float64) {
	c.t.sched.pe.Clock.Advance(ns)
	c.t.sched.chargeBusy(ns)
	c.t.addCPU(ns)
}
