package converse_test

import (
	"testing"

	"migflow/internal/converse"
	"migflow/internal/migrate"
	"migflow/internal/platform"
)

// readyThreads parks n runnable threads on pe's ready queue with
// priorities 0..n-1 (never run yet).
func readyThreads(t *testing.T, pe *converse.PE, n int) []*converse.Thread {
	t.Helper()
	ths := make([]*converse.Thread, n)
	for i := 0; i < n; i++ {
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy: migrate.Isomalloc{}, Priority: i,
		}, func(c *converse.Ctx) {})
		if err != nil {
			t.Fatal(err)
		}
		pe.Sched.Start(th)
		ths[i] = th
	}
	return ths
}

// TestTryStealHalf robs half of a four-deep ready queue: the stolen
// threads must be the back of the priority order (the work the victim
// would run last), left in Migrating state and out of the queue, and
// must run to completion once re-homed on the thief.
func TestTryStealHalf(t *testing.T) {
	pes := newPEs(t, 2, platform.Opteron(), nil)
	readyThreads(t, pes[0], 4)
	if got := pes[0].Sched.ReadyLenHint(); got != 4 {
		t.Fatalf("ReadyLenHint = %d, want 4", got)
	}
	stolen := pes[0].Sched.TryStealHalf(0)
	if len(stolen) != 2 {
		t.Fatalf("stole %d threads, want 2", len(stolen))
	}
	for _, th := range stolen {
		if th.State() != converse.Migrating {
			t.Errorf("stolen thread %d state = %s, want migrating", th.ID(), th.State())
		}
		if th.Priority() < 2 {
			t.Errorf("stole priority %d; want the low-priority tail (2,3)", th.Priority())
		}
	}
	if got := pes[0].Sched.ReadyLen(); got != 2 {
		t.Errorf("victim ready len = %d, want 2", got)
	}
	if got := pes[0].Sched.ReadyLenHint(); got != 2 {
		t.Errorf("victim ReadyLenHint = %d, want 2", got)
	}
	// Re-home through the ordinary migration pipeline and run them.
	for _, th := range stolen {
		if _, err := migrate.MigrateNow(th, pes[0], pes[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	pes[1].Sched.RunUntilIdle()
	for _, th := range stolen {
		if th.State() != converse.Exited {
			t.Errorf("stolen thread %d did not finish on thief: %s", th.ID(), th.State())
		}
	}
	pes[0].Sched.RunUntilIdle() // the two kept threads still run at home
}

// TestTryStealHalfDepthGuard: a queue of fewer than two threads is
// never robbed — stealing the victim's only runnable thread would
// just move the imbalance.
func TestTryStealHalfDepthGuard(t *testing.T) {
	pes := newPEs(t, 1, platform.Opteron(), nil)
	if got := pes[0].Sched.TryStealHalf(0); got != nil {
		t.Fatalf("stole %d from empty queue", len(got))
	}
	readyThreads(t, pes[0], 1)
	if got := pes[0].Sched.TryStealHalf(0); got != nil {
		t.Fatalf("stole %d from depth-1 queue", len(got))
	}
	pes[0].Sched.RunUntilIdle()
}

// TestTryStealHalfMax: the thief-side cap bounds the haul.
func TestTryStealHalfMax(t *testing.T) {
	pes := newPEs(t, 1, platform.Opteron(), nil)
	readyThreads(t, pes[0], 6)
	stolen := pes[0].Sched.TryStealHalf(1)
	if len(stolen) != 1 {
		t.Fatalf("stole %d with max 1", len(stolen))
	}
}

// TestStealDonateHook: the victim-side policy overrides the
// half-the-queue default, and a zero donation refuses the thief.
func TestStealDonateHook(t *testing.T) {
	pes := newPEs(t, 1, platform.Opteron(), nil)
	readyThreads(t, pes[0], 4)
	var sawDepth int
	pes[0].Sched.SetDonateHook(func(depth int) int {
		sawDepth = depth
		return 1
	})
	if stolen := pes[0].Sched.TryStealHalf(0); len(stolen) != 1 {
		t.Fatalf("stole %d with donate hook returning 1", len(stolen))
	}
	if sawDepth != 4 {
		t.Errorf("donate hook saw depth %d, want 4", sawDepth)
	}
	pes[0].Sched.SetDonateHook(func(depth int) int { return 0 })
	if stolen := pes[0].Sched.TryStealHalf(0); stolen != nil {
		t.Fatalf("stole %d with donate hook returning 0", len(stolen))
	}
	// An over-generous hook is clamped to the queue depth.
	pes[0].Sched.SetDonateHook(func(depth int) int { return 999 })
	if stolen := pes[0].Sched.TryStealHalf(0); len(stolen) != 3 {
		t.Fatalf("stole %d with donate hook returning 999, want the whole queue (3)", len(stolen))
	}
}
