package converse

import (
	"fmt"
	"sync"
)

// FastThread is the plain, non-migratable Cth thread used as the
// user-level-thread baseline in Figures 4-8 ("we used the
// non-migratable version of these threads"): no simulated stack, no
// isomalloc heap, no GOT swap — just a suspendable flow of control
// with a user-level scheduler. Its real (wall-clock) switch cost is
// the floor the migratable strategies are compared against in the
// ablation benchmarks.
type FastThread struct {
	id     ID
	body   func(*FastCtx)
	resume chan struct{}
	parked chan outcome
	done   bool
}

// FastScheduler round-robins FastThreads. The zero value is unusable;
// call NewFastScheduler.
type FastScheduler struct {
	mu    sync.Mutex
	ready []*FastThread
}

// NewFastScheduler returns an empty scheduler.
func NewFastScheduler() *FastScheduler { return &FastScheduler{} }

// Create makes a fast thread; Start it to make it runnable.
func (s *FastScheduler) Create(body func(*FastCtx)) *FastThread {
	t := &FastThread{
		id:     ID(nextThreadID.Add(1)),
		body:   body,
		resume: make(chan struct{}),
		parked: make(chan outcome),
	}
	go func() {
		<-t.resume
		t.body(&FastCtx{t: t})
		t.done = true
		t.parked <- outExit
	}()
	return t
}

// Start enqueues the thread.
func (s *FastScheduler) Start(t *FastThread) {
	s.mu.Lock()
	s.ready = append(s.ready, t)
	s.mu.Unlock()
}

// RunUntilIdle runs threads until none are runnable.
func (s *FastScheduler) RunUntilIdle() {
	for {
		s.mu.Lock()
		if len(s.ready) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.ready[0]
		s.ready = s.ready[1:]
		s.mu.Unlock()

		t.resume <- struct{}{}
		out := <-t.parked
		if out == outYield {
			s.mu.Lock()
			s.ready = append(s.ready, t)
			s.mu.Unlock()
		}
	}
}

// Len returns the ready-queue depth.
func (s *FastScheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ready)
}

// ID returns the thread id.
func (t *FastThread) ID() ID { return t.id }

// FastCtx is the API surface of a FastThread body.
type FastCtx struct{ t *FastThread }

// ID returns the thread id.
func (c *FastCtx) ID() ID { return c.t.id }

// Yield hands the processor to the next ready thread.
func (c *FastCtx) Yield() {
	c.t.parked <- outYield
	<-c.t.resume
}

// String aids debugging.
func (t *FastThread) String() string { return fmt.Sprintf("FastThread(%d)", t.id) }
