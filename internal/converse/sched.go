package converse

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"migflow/internal/mem"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
	"migflow/internal/vmem"
)

// ErrNotEvictable is wrapped by Evict when a thread cannot be taken
// from its scheduler right now: it is Running, already Migrating,
// Exited, owned by a different scheduler, or was dequeued in the
// window between a caller's snapshot and the eviction attempt. A bulk
// migration or work-stealing pass treats it as "skip this thread",
// not as a failure.
var ErrNotEvictable = errors.New("thread not evictable")

// Scheduler is one PE's user-level thread scheduler: a priority ready
// queue plus the context-switch path (strategy switch-in/out, GOT
// swap, malloc-interposer enter/exit, virtual cost charging). Exactly
// one thread runs at a time per scheduler — a processor executes one
// flow of control at a time.
type Scheduler struct {
	pe *PE

	mu       sync.Mutex
	cond     *sync.Cond
	ready    readyQueue
	byThread map[*Thread]*readyItem // ready-queue membership, for O(log n) removal
	seq      uint64                 // FIFO tiebreak within a priority
	live     int                    // threads created and not yet exited/migrated away
	threads  map[ID]*Thread
	current  *Thread
	stop     bool

	// readyDepth mirrors ready.Len() so a work-stealing thief can peek
	// at queue depth without contending for mu; refreshed under mu on
	// every queue mutation.
	readyDepth atomic.Int64

	// busyNs accumulates the virtual nanoseconds of Work charged on
	// this PE (not synced by migrations, unlike the PE clock) — the
	// modeled-load signal a work-stealing thief compares against its
	// own before robbing this scheduler.
	busyNs atomic.Uint64

	// donate, when set, decides how many threads this scheduler gives
	// a thief for a given queue depth (default: half).
	donate func(depth int) int

	switches uint64 // context switches performed (stats)

	// onMigrate is invoked (without locks) when a running thread
	// requests migration; wired by the machine layer.
	onMigrate func(t *Thread, dest int)

	// onIdle, when set, is invoked (without locks) each time the
	// ready queue empties during Run; return false to stop the loop.
	onIdle func() bool

	// onWake, when set, is invoked (without locks) each time a thread
	// becomes runnable here; the machine layer uses it to wake an idle
	// PE blocked outside the scheduler's own condvar.
	onWake func()
}

func newScheduler(pe *PE) *Scheduler {
	s := &Scheduler{pe: pe, threads: make(map[ID]*Thread), byThread: make(map[*Thread]*readyItem)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Threads returns a snapshot of the threads this scheduler owns
// (created here or adopted, not yet exited or migrated away).
func (s *Scheduler) Threads() []*Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Thread, 0, len(s.threads))
	for _, t := range s.threads {
		out = append(out, t)
	}
	return out
}

// PE returns the owning PE.
func (s *Scheduler) PE() *PE { return s.pe }

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// Live returns the number of threads owned by this scheduler.
func (s *Scheduler) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// ReadyLen returns the ready-queue depth.
func (s *Scheduler) ReadyLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready.Len()
}

// SetMigrateHandler wires the machine-level migration engine.
func (s *Scheduler) SetMigrateHandler(fn func(t *Thread, dest int)) {
	s.mu.Lock()
	s.onMigrate = fn
	s.mu.Unlock()
}

// SetIdleHandler wires a callback run when the ready queue drains;
// returning false stops Run. The machine layer uses it to poll the
// network.
func (s *Scheduler) SetIdleHandler(fn func() bool) {
	s.mu.Lock()
	s.onIdle = fn
	s.mu.Unlock()
}

// SetWakeHook wires a callback fired whenever a thread is enqueued on
// this scheduler (e.g. an Awaken from another PE). It runs without
// scheduler locks held and must be cheap and thread-safe.
func (s *Scheduler) SetWakeHook(fn func()) {
	s.mu.Lock()
	s.onWake = fn
	s.mu.Unlock()
}

// CthCreate creates a migratable user-level thread on this PE running
// body, charging the platform's thread-creation cost and enforcing
// its practical user-thread limit (Table 2).
func (s *Scheduler) CthCreate(opts ThreadOptions, body func(*Ctx)) (*Thread, error) {
	if body == nil {
		return nil, fmt.Errorf("converse: CthCreate: nil body")
	}
	if opts.Strategy == nil {
		return nil, fmt.Errorf("converse: CthCreate: nil stack strategy")
	}
	size := opts.StackSize
	if size == 0 {
		size = DefaultStackSize
	}
	size = vmem.RoundUpPages(size)
	if size > MaxStackSize {
		return nil, fmt.Errorf("converse: CthCreate: stack %d exceeds maximum %d", size, MaxStackSize)
	}
	s.mu.Lock()
	if lim := s.pe.Prof.MaxUserThreads; lim.Bounded() && s.live >= lim.N {
		s.mu.Unlock()
		return nil, fmt.Errorf("converse: PE %d at the platform's user-thread limit (%d)", s.pe.Index, lim.N)
	}
	s.live++
	s.mu.Unlock()

	stack, err := opts.Strategy.New(s.pe, size)
	if err != nil {
		s.decLive()
		return nil, err
	}
	t := &Thread{
		id:       ID(nextThreadID.Add(1)),
		body:     body,
		prio:     opts.Priority,
		state:    Created,
		sched:    s,
		resume:   make(chan struct{}),
		parked:   make(chan outcome),
		strategy: opts.Strategy,
		stack:    stack,
		sp:       stack.Base().Add(size), // empty stack: sp at the top
		heap:     mem.NewThreadHeap(s.pe.Iso, s.pe.Space, opts.ArenaPages),
	}
	t.ctx = Ctx{t: t}
	if opts.Globals != nil {
		if s.pe.GOT == nil {
			opts.Strategy.Release(s.pe, stack)
			s.decLive()
			return nil, fmt.Errorf("converse: thread wants privatized globals but PE %d has no GOT", s.pe.Index)
		}
		inst, err := swapglobal.NewInstance(opts.Globals, t.heap)
		if err != nil {
			opts.Strategy.Release(s.pe, stack)
			s.decLive()
			return nil, err
		}
		t.globals = inst
	}
	s.pe.Clock.Advance(s.pe.Prof.UThreadCreate)
	s.mu.Lock()
	s.threads[t.id] = t
	s.mu.Unlock()
	s.trace(trace.EvCreate, t, uint64(size))
	go t.run()
	return t, nil
}

func (s *Scheduler) decLive() {
	s.mu.Lock()
	s.live--
	s.mu.Unlock()
}

// Start enqueues a Created thread.
func (s *Scheduler) Start(t *Thread) {
	t.mu.Lock()
	if t.state != Created {
		t.mu.Unlock()
		panic(fmt.Sprintf("converse: Start on %s thread %d", t.state, t.id))
	}
	t.state = Ready
	t.mu.Unlock()
	s.enqueue(t)
}

// enqueue adds a Ready thread to the priority queue.
func (s *Scheduler) enqueue(t *Thread) {
	s.mu.Lock()
	s.seq++
	it := &readyItem{t: t, prio: t.prio, seq: s.seq}
	heap.Push(&s.ready, it)
	s.byThread[t] = it
	s.readyDepth.Store(int64(s.ready.Len()))
	s.cond.Broadcast()
	wake := s.onWake
	s.mu.Unlock()
	if wake != nil {
		wake()
	}
}

// popLocked removes and returns the highest-priority ready thread.
// Caller holds s.mu and has checked the queue is non-empty.
func (s *Scheduler) popLocked() *Thread {
	it := heap.Pop(&s.ready).(*readyItem)
	delete(s.byThread, it.t)
	s.readyDepth.Store(int64(s.ready.Len()))
	return it.t
}

// Evict prepares a non-running thread for external (forced)
// migration: a Ready thread is removed from the queue, a Suspended
// thread is left parked; either way the thread ends in the Migrating
// state with all state quiescent in simulated memory. wasSuspended
// tells the destination whether to re-enqueue (Ready) or re-park
// (Suspended) on arrival. Running or Exited threads cannot be
// evicted.
func (s *Scheduler) Evict(t *Thread) (wasSuspended bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sched != s {
		// The thread moved (stolen, or migrated by a concurrent bulk
		// batch) between the caller's snapshot and now; evicting it
		// from here would extract state from the wrong address space.
		return false, fmt.Errorf("converse: Evict: thread %d is owned by PE %d, not PE %d: %w",
			t.id, t.sched.pe.Index, s.pe.Index, ErrNotEvictable)
	}
	switch t.state {
	case Ready:
		if !s.removeReady(t) {
			// Popped by the scheduler loop in the snapshot window: it
			// is about to run.
			return false, fmt.Errorf("converse: Evict: thread %d claims Ready but is not queued on PE %d: %w",
				t.id, s.pe.Index, ErrNotEvictable)
		}
		t.state = Migrating
		return false, nil
	case Suspended:
		t.state = Migrating
		return true, nil
	}
	return false, fmt.Errorf("converse: Evict: thread %d is %s; only Ready or Suspended threads can be evicted: %w",
		t.id, t.state, ErrNotEvictable)
}

// removeReady deletes t from the ready queue. The membership map
// makes this O(log n) — an Evict of one Ready thread among thousands
// no longer scans the whole queue.
func (s *Scheduler) removeReady(t *Thread) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.byThread[t]
	if !ok {
		return false
	}
	heap.Remove(&s.ready, it.index)
	delete(s.byThread, t)
	s.readyDepth.Store(int64(s.ready.Len()))
	return true
}

// ReadyLenHint returns the ready-queue depth without taking the
// scheduler lock. It may be momentarily stale — exactly what a
// work-stealing thief wants for victim selection: a cheap peek that
// costs the victim nothing.
func (s *Scheduler) ReadyLenHint() int { return int(s.readyDepth.Load()) }

// BusyNs returns the virtual nanoseconds of thread Work charged on
// this PE so far, lock-free. Unlike the PE clock it is never synced
// forward by migration arrivals, so it stays a pure measure of how
// much modeled computation this PE has executed — the steal policy
// compares thief and victim BusyNs to send work from modeled-busy
// PEs to modeled-idle ones.
func (s *Scheduler) BusyNs() uint64 { return s.busyNs.Load() }

// chargeBusy accounts Work time for BusyNs (called from Ctx.Work on
// the running thread's scheduler).
func (s *Scheduler) chargeBusy(ns float64) { s.busyNs.Add(uint64(ns)) }

// SetDonateHook installs the victim-side donation policy: given the
// ready-queue depth at steal time, return how many threads this
// scheduler is willing to give a thief. nil (the default) donates
// half. The hook runs with the scheduler lock held and must not call
// back into the scheduler.
func (s *Scheduler) SetDonateHook(fn func(depth int) int) {
	s.mu.Lock()
	s.donate = fn
	s.mu.Unlock()
}

// TryStealHalf takes up to max ready threads from this scheduler (max
// <= 0 caps at half the queue) and returns them in the Migrating
// state, ready for the caller to re-home through the normal migration
// path — PUP, location directory, and clock charging all behave as in
// any other migration. The victim keeps the head of its priority
// order; thieves get the work that would have run last.
//
// The scheduler lock is taken only when the lock-free depth peek says
// there are at least two queued threads — an idle machine's failed
// probes never contend with a busy victim. Candidates that run,
// suspend, or migrate between the snapshot and the eviction are
// skipped, so the returned set may be smaller than requested (possibly
// empty).
func (s *Scheduler) TryStealHalf(max int) []*Thread {
	if s.readyDepth.Load() < 2 {
		return nil
	}
	s.mu.Lock()
	depth := s.ready.Len()
	want := depth / 2
	if s.donate != nil {
		want = s.donate(depth)
	}
	if want > depth {
		want = depth
	}
	if max > 0 && want > max {
		want = max
	}
	if want <= 0 || depth < 2 {
		s.mu.Unlock()
		return nil
	}
	// Snapshot the tail of the priority order: sort a copy of the heap
	// slice so the victim's next-to-run threads stay put.
	cand := make([]*readyItem, depth)
	copy(cand, s.ready)
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].prio != cand[j].prio {
			return cand[i].prio > cand[j].prio
		}
		return cand[i].seq > cand[j].seq
	})
	victims := make([]*Thread, want)
	for i, it := range cand[:want] {
		victims[i] = it.t
	}
	s.mu.Unlock()

	// Evict outside s.mu: Evict takes t.mu then s.mu (the established
	// lock order), so holding s.mu here would invert it against a
	// concurrent Evict from a bulk migration.
	out := victims[:0]
	for _, t := range victims {
		wasSuspended, err := s.Evict(t)
		if err != nil {
			continue // ran, migrated, or exited in the window
		}
		if wasSuspended {
			// The candidate ran and suspended before we reached it;
			// stealing a waiting thread moves no work. Put it back
			// exactly as Evict found it (honouring a racing wake).
			s.unevictSuspended(t)
			continue
		}
		out = append(out, t)
	}
	return out
}

// unevictSuspended undoes an Evict of a Suspended thread that the
// steal path does not want: the thread returns to Suspended on this
// scheduler, or straight to Ready if a wake landed while it was
// nominally Migrating.
func (s *Scheduler) unevictSuspended(t *Thread) {
	t.mu.Lock()
	if t.wakePending {
		t.wakePending = false
		t.state = Ready
		t.mu.Unlock()
		s.enqueue(t)
		return
	}
	t.state = Suspended
	t.mu.Unlock()
}

// AdoptSuspended takes ownership of an externally migrated thread
// that was Suspended at eviction: it returns to the Suspended state
// on this scheduler, to be woken by its pending event as usual. If a
// wake raced in during the flight, it is honoured immediately.
func (s *Scheduler) AdoptSuspended(t *Thread) {
	t.mu.Lock()
	t.sched = s
	if t.wakePending {
		t.wakePending = false
		t.state = Ready
		t.mu.Unlock()
		s.mu.Lock()
		s.live++
		s.threads[t.id] = t
		s.mu.Unlock()
		s.enqueue(t)
		return
	}
	t.state = Suspended
	t.mu.Unlock()
	s.mu.Lock()
	s.live++
	s.threads[t.id] = t
	s.mu.Unlock()
}

// Adopt takes ownership of a migrated-in thread and makes it
// runnable; the migration engine calls it after Reinstall.
func (s *Scheduler) Adopt(t *Thread) {
	t.mu.Lock()
	t.sched = s
	t.state = Ready
	t.mu.Unlock()
	s.mu.Lock()
	s.live++
	s.threads[t.id] = t
	s.mu.Unlock()
	s.enqueue(t)
}

// Disown releases ownership of a thread that migrated away; the
// migration engine calls it on the source scheduler.
func (s *Scheduler) Disown(t *Thread) {
	s.mu.Lock()
	s.live--
	delete(s.threads, t.id)
	s.mu.Unlock()
}

// RunUntilIdle runs ready threads until the queue drains (suspended
// threads may remain). It is the single-PE test-and-example driver;
// multi-PE machines use Run with an idle handler.
func (s *Scheduler) RunUntilIdle() {
	for {
		t := s.tryDequeue()
		if t == nil {
			return
		}
		s.runThread(t)
	}
}

// Run executes threads until Stop is called, blocking in the idle
// handler (or the queue condvar) when nothing is runnable.
func (s *Scheduler) Run() {
	for {
		s.mu.Lock()
		for s.ready.Len() == 0 && !s.stop {
			idle := s.onIdle
			if idle != nil {
				s.mu.Unlock()
				if !idle() {
					return
				}
				s.mu.Lock()
				continue
			}
			s.cond.Wait()
		}
		if s.stop {
			s.mu.Unlock()
			return
		}
		t := s.popLocked()
		s.mu.Unlock()
		s.runThread(t)
	}
}

// Stop makes Run return once the current thread stops running.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stop = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Scheduler) tryDequeue() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready.Len() == 0 {
		return nil
	}
	return s.popLocked()
}

// runThread performs one full context switch cycle: switch the thread
// in, run it until it stops, switch it out, and dispatch on why it
// stopped.
func (s *Scheduler) runThread(t *Thread) {
	if err := s.switchIn(t); err != nil {
		// A switch-in failure is a runtime bug (e.g. two exclusive
		// threads); surface it loudly.
		panic(fmt.Sprintf("converse: PE %d switch-in of thread %d: %v", s.pe.Index, t.id, err))
	}
	t.mu.Lock()
	t.state = Running
	t.mu.Unlock()
	t.resume <- struct{}{}
	out := <-t.parked
	s.switchOut(t)

	switch out {
	case outYield:
		t.mu.Lock()
		t.state = Ready
		t.mu.Unlock()
		s.enqueue(t)
	case outSuspend:
		t.mu.Lock()
		if t.wakePending {
			t.wakePending = false
			t.state = Ready
			t.mu.Unlock()
			s.enqueue(t)
		} else {
			t.state = Suspended
			t.mu.Unlock()
		}
	case outMigrate:
		t.mu.Lock()
		t.state = Migrating
		dest := t.migrateTo
		t.mu.Unlock()
		s.mu.Lock()
		h := s.onMigrate
		s.mu.Unlock()
		if h == nil {
			panic(fmt.Sprintf("converse: thread %d requested migration but PE %d has no migration handler", t.id, s.pe.Index))
		}
		h(t, dest)
	case outExit:
		s.trace(trace.EvExit, t, 0)
		s.reap(t)
	}
}

// switchIn makes t's world visible: stack (strategy), globals (GOT
// swap), heap (interposer), and charges the platform's per-switch
// cost for a migratable ULT.
func (s *Scheduler) switchIn(t *Thread) error {
	if t.strategy.Exclusive() {
		if err := s.pe.acquireExclusive(t); err != nil {
			return err
		}
	}
	if err := t.strategy.SwitchIn(s.pe, t.stack, t.StackBytesUsed()); err != nil {
		return err
	}
	if t.globals != nil {
		if err := s.pe.GOT.Swap(t.globals.Image()); err != nil {
			return err
		}
	}
	s.pe.Inter.Enter(t.heap)
	s.mu.Lock()
	n := s.ready.Len() + 1
	s.current = t
	s.switches++
	s.mu.Unlock()
	cost, err := s.pe.Prof.SwitchCost(t.CostKind())
	if err != nil {
		return err
	}
	s.pe.Clock.Advance(cost.At(n))
	s.trace(trace.EvSwitchIn, t, 0)
	return nil
}

// trace records a scheduler event if the PE has a log attached.
func (s *Scheduler) trace(kind trace.Kind, t *Thread, arg uint64) {
	if s.pe.Trace == nil {
		return
	}
	s.pe.Trace.Record(trace.Event{
		TimeNs: s.pe.Clock.Now(),
		PE:     s.pe.Index,
		Kind:   kind,
		Thread: uint64(t.id),
		Arg:    arg,
	})
}

// switchOut hides t's world again.
func (s *Scheduler) switchOut(t *Thread) {
	s.trace(trace.EvSwitchOut, t, 0)
	s.pe.Inter.Exit()
	if err := t.strategy.SwitchOut(s.pe, t.stack, t.StackBytesUsed()); err != nil {
		panic(fmt.Sprintf("converse: PE %d switch-out of thread %d: %v", s.pe.Index, t.id, err))
	}
	if t.strategy.Exclusive() {
		s.pe.releaseExclusive(t)
	}
	s.mu.Lock()
	s.current = nil
	s.mu.Unlock()
}

// reap releases an exited thread's resources. Stacks and heap slabs
// return to their allocators only on the birth PE; a thread that dies
// away from home keeps its address ranges reserved (mirroring the
// paper's runtime).
func (s *Scheduler) reap(t *Thread) {
	if t.globals != nil {
		_ = t.globals.Release(t.heap)
	}
	_ = t.heap.ReleaseAll()
	_ = t.strategy.Release(s.pe, t.stack)
	s.mu.Lock()
	s.live--
	delete(s.threads, t.id)
	s.mu.Unlock()
}

// readyQueue is a priority heap: lower priority value runs first,
// FIFO within a priority. Items carry their heap index so the
// byThread map can remove an arbitrary thread in O(log n).
type readyItem struct {
	t     *Thread
	prio  int
	seq   uint64
	index int
}

type readyQueue []*readyItem

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *readyQueue) Push(x any) {
	it := x.(*readyItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *readyQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}
