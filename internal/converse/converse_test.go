package converse_test

import (
	"fmt"
	"math/rand"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/migrate"
	"migflow/internal/platform"
	"migflow/internal/swapglobal"
	"migflow/internal/vmem"
)

// newPEs boots n PEs of one machine on the given platform, sharing an
// isomalloc region.
func newPEs(t testing.TB, n int, prof *platform.Profile, globals *swapglobal.Layout) []*converse.PE {
	t.Helper()
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, uint64(n)*256*vmem.PageSize*16, n)
	if err != nil {
		t.Fatal(err)
	}
	pes := make([]*converse.PE, n)
	for i := 0; i < n; i++ {
		pe, err := converse.NewPE(converse.PEConfig{
			Index: i, Profile: prof, IsoRegion: region, Globals: globals,
		})
		if err != nil {
			t.Fatal(err)
		}
		pes[i] = pe
	}
	return pes
}

func onePE(t testing.TB) *converse.PE {
	return newPEs(t, 1, platform.Opteron(), nil)[0]
}

func TestThreadRunsToCompletion(t *testing.T) {
	pe := onePE(t)
	ran := false
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if th.State() != converse.Created {
		t.Errorf("state before Start = %s", th.State())
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if !ran {
		t.Error("body did not run")
	}
	if th.State() != converse.Exited {
		t.Errorf("state after run = %s", th.State())
	}
	if pe.Sched.Live() != 0 {
		t.Errorf("Live = %d after exit", pe.Sched.Live())
	}
}

func TestYieldInterleaves(t *testing.T) {
	pe := onePE(t)
	var order []string
	mk := func(name string) func(*converse.Ctx) {
		return func(c *converse.Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, fmt.Sprintf("%s%d", name, i))
				c.Yield()
			}
		}
	}
	for _, name := range []string{"a", "b"} {
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, mk(name))
		if err != nil {
			t.Fatal(err)
		}
		pe.Sched.Start(th)
	}
	pe.Sched.RunUntilIdle()
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestSuspendAwaken(t *testing.T) {
	pe := onePE(t)
	stage := 0
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		stage = 1
		c.Suspend()
		stage = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if stage != 1 {
		t.Fatalf("stage = %d, want 1 (suspended)", stage)
	}
	if th.State() != converse.Suspended {
		t.Fatalf("state = %s, want suspended", th.State())
	}
	th.Awaken()
	if th.State() != converse.Ready {
		t.Fatalf("state after Awaken = %s", th.State())
	}
	pe.Sched.RunUntilIdle()
	if stage != 2 {
		t.Errorf("stage = %d, want 2", stage)
	}
	// Awaken on an exited thread is a no-op.
	th.Awaken()
}

func TestWakePendingWhileRunning(t *testing.T) {
	pe := onePE(t)
	hits := 0
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		// Awaken arrives while we are still running...
		c.Thread().Awaken()
		// ...so this Suspend must return immediately.
		c.Suspend()
		hits++
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if hits != 1 {
		t.Errorf("hits = %d; lost wakeup", hits)
	}
}

func TestPriorityOrdering(t *testing.T) {
	pe := onePE(t)
	var order []int
	for _, prio := range []int{5, 1, 3} {
		prio := prio
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, Priority: prio}, func(c *converse.Ctx) {
			order = append(order, prio)
		})
		if err != nil {
			t.Fatal(err)
		}
		pe.Sched.Start(th)
	}
	pe.Sched.RunUntilIdle()
	if fmt.Sprint(order) != fmt.Sprint([]int{1, 3, 5}) {
		t.Errorf("priority order = %v", order)
	}
}

func TestStackFrames(t *testing.T) {
	pe := onePE(t)
	var fail string
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, StackSize: 2 * vmem.PageSize}, func(c *converse.Ctx) {
		top := c.Thread().SP()
		f1, err := c.PushFrame(64)
		if err != nil {
			fail = err.Error()
			return
		}
		if c.Thread().StackBytesUsed() != 64 {
			fail = fmt.Sprintf("used = %d, want 64", c.Thread().StackBytesUsed())
			return
		}
		if err := c.Space().WriteUint64(f1, 0x1111); err != nil {
			fail = err.Error()
			return
		}
		f2, err := c.PushFrame(100) // rounds to 112
		if err != nil {
			fail = err.Error()
			return
		}
		if err := c.Space().WriteUint64(f2, 0x2222); err != nil {
			fail = err.Error()
			return
		}
		c.Yield() // survive a context switch
		v1, err := c.Space().ReadUint64(f1)
		if err != nil || v1 != 0x1111 {
			fail = fmt.Sprintf("frame1 = %#x/%v", v1, err)
			return
		}
		v2, _ := c.Space().ReadUint64(f2)
		if v2 != 0x2222 {
			fail = fmt.Sprintf("frame2 = %#x", v2)
			return
		}
		c.PopFrame(100)
		c.PopFrame(64)
		if c.Thread().SP() != top {
			fail = "SP not restored after pops"
		}
		// Overflow: a frame bigger than the stack.
		if _, err := c.PushFrame(4 * vmem.PageSize); err == nil {
			fail = "overflow not detected"
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if fail != "" {
		t.Error(fail)
	}
}

func TestMallocInterposition(t *testing.T) {
	pe := onePE(t)
	region := pe.Iso.Slot()
	var inThreadAddr vmem.Addr
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		a, err := c.Malloc(128)
		if err != nil {
			t.Errorf("in-thread malloc: %v", err)
			return
		}
		inThreadAddr = a
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if !region.Contains(inThreadAddr) {
		t.Errorf("in-thread malloc returned %s, outside isomalloc slot %s", inThreadAddr, region)
	}
	// Outside thread context the interposer uses the system heap.
	a, err := pe.Inter.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if region.Contains(a) {
		t.Errorf("out-of-thread malloc landed in the isomalloc slot: %s", a)
	}
}

func TestGlobalsPrivatizedAcrossThreads(t *testing.T) {
	layout := swapglobal.NewLayout()
	layout.Declare("counter", 8)
	pe := newPEs(t, 1, platform.Opteron(), layout)[0]
	results := map[int]uint64{}
	for i := 0; i < 2; i++ {
		i := i
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy: migrate.Isomalloc{}, Globals: layout,
		}, func(c *converse.Ctx) {
			got := c.GlobalsGOT()
			for k := 0; k < 5; k++ {
				v, err := got.LoadUint64("counter")
				if err != nil {
					t.Errorf("load: %v", err)
					return
				}
				if err := got.StoreUint64("counter", v+uint64(i+1)); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				c.Yield() // interleave with the other thread
			}
			results[i], _ = got.LoadUint64("counter")
		})
		if err != nil {
			t.Fatal(err)
		}
		pe.Sched.Start(th)
	}
	pe.Sched.RunUntilIdle()
	if results[0] != 5 || results[1] != 10 {
		t.Errorf("privatized counters = %v, want map[0:5 1:10]", results)
	}
}

func TestCthCreateValidation(t *testing.T) {
	pe := onePE(t)
	if _, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, nil); err == nil {
		t.Error("nil body accepted")
	}
	if _, err := pe.Sched.CthCreate(converse.ThreadOptions{}, func(*converse.Ctx) {}); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, StackSize: converse.MaxStackSize + vmem.PageSize}, func(*converse.Ctx) {}); err == nil {
		t.Error("oversized stack accepted")
	}
	layout := swapglobal.NewLayout()
	layout.Declare("x", 8)
	if _, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, Globals: layout}, func(*converse.Ctx) {}); err == nil {
		t.Error("globals without a GOT accepted")
	}
}

func TestUserThreadLimit(t *testing.T) {
	prof := platform.Opteron()
	prof.MaxUserThreads = platform.Limit{N: 3}
	pes := newPEs(t, 1, prof, nil)
	pe := pes[0]
	for i := 0; i < 3; i++ {
		if _, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, StackSize: vmem.PageSize}, func(*converse.Ctx) {}); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if _, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, StackSize: vmem.PageSize}, func(*converse.Ctx) {}); err == nil {
		t.Error("ULT limit not enforced")
	}
}

func TestVirtualClockChargesSwitches(t *testing.T) {
	pe := onePE(t)
	before := pe.Clock.Now()
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.Yield()
		c.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	afterCreate := pe.Clock.Now()
	if afterCreate-before != pe.Prof.UThreadCreate {
		t.Errorf("creation charged %g, want %g", afterCreate-before, pe.Prof.UThreadCreate)
	}
	pe.Sched.Start(th)
	pe.Sched.RunUntilIdle()
	if pe.Sched.Switches() != 3 {
		t.Errorf("switches = %d, want 3", pe.Sched.Switches())
	}
	perSwitch := pe.Prof.AMPISwitch.At(1)
	want := afterCreate + 3*perSwitch
	if got := pe.Clock.Now(); got != want {
		t.Errorf("clock = %g, want %g", got, want)
	}
}

func TestSchedulerRunStopAndIdleHandler(t *testing.T) {
	pe := onePE(t)
	idles := 0
	pe.Sched.SetIdleHandler(func() bool {
		idles++
		return idles < 3 // stop Run after 3 idle polls
	})
	count := 0
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Sched.Start(th)
	pe.Sched.Run() // returns when idle handler says stop
	if count != 1 || idles != 3 {
		t.Errorf("count = %d idles = %d", count, idles)
	}
}

func TestSchedulerStop(t *testing.T) {
	pe := onePE(t)
	done := make(chan struct{})
	go func() {
		pe.Sched.Run()
		close(done)
	}()
	pe.Sched.Stop()
	<-done // must return promptly
}

func TestNewPEValidation(t *testing.T) {
	region, _ := mem.NewIsoRegion(mem.DefaultIsoBase, 1024*vmem.PageSize, 2)
	if _, err := converse.NewPE(converse.PEConfig{Profile: nil, IsoRegion: region}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := converse.NewPE(converse.PEConfig{Index: 5, Profile: platform.Opteron(), IsoRegion: region}); err == nil {
		t.Error("index beyond region accepted")
	}
	if _, err := converse.NewPE(converse.PEConfig{Index: 0, Profile: platform.Opteron()}); err == nil {
		t.Error("empty region accepted")
	}
}

// TestNewPE32BitIsoRegionExhaustion boots a PE whose isomalloc region
// exceeds the 32-bit platform's address space — the §3.4.2 failure.
func TestNewPE32BitIsoRegionExhaustion(t *testing.T) {
	big, err := mem.NewIsoRegion(mem.DefaultIsoBase, 4<<30, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = converse.NewPE(converse.PEConfig{Index: 0, Profile: platform.LinuxX86(), IsoRegion: big})
	if err == nil {
		t.Fatal("32-bit PE accepted a 4 GiB isomalloc region")
	}
	if _, err := converse.NewPE(converse.PEConfig{Index: 0, Profile: platform.Opteron(), IsoRegion: big}); err != nil {
		t.Errorf("64-bit PE rejected the same region: %v", err)
	}
}

func TestFastThreads(t *testing.T) {
	s := converse.NewFastScheduler()
	var order []converse.ID
	var ids []converse.ID
	for i := 0; i < 3; i++ {
		th := s.Create(func(c *converse.FastCtx) {
			order = append(order, c.ID())
			c.Yield()
			order = append(order, c.ID())
		})
		ids = append(ids, th.ID())
		_ = th.String()
		s.Start(th)
	}
	s.RunUntilIdle()
	if len(order) != 6 {
		t.Fatalf("order len = %d", len(order))
	}
	// Round robin: first three entries are the three ids in order.
	for i := 0; i < 3; i++ {
		if order[i] != ids[i] || order[i+3] != ids[i] {
			t.Errorf("round robin broken: %v (ids %v)", order, ids)
		}
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestMinimalSwapRoutines(t *testing.T) {
	var a, b converse.RegContext
	for i := range b.Regs {
		b.Regs[i] = uint64(i + 100)
	}
	b.SP = 0xB000
	live := [converse.CalleeSavedRegs]uint64{1, 2, 3, 4, 5, 6, 7}
	sp := uint64(0xA000)
	converse.MinimalSwap(&a, &b, &live, &sp)
	if a.SP != 0xA000 || a.Regs[0] != 1 || a.Regs[6] != 7 {
		t.Errorf("old context not saved: %+v", a.Regs[:8])
	}
	if sp != 0xB000 || live[0] != 100 {
		t.Errorf("new context not loaded: sp=%#x live=%v", sp, live)
	}
	// Swap back restores the original.
	converse.MinimalSwap(&b, &a, &live, &sp)
	if sp != 0xA000 || live[0] != 1 {
		t.Errorf("swap back failed: sp=%#x live=%v", sp, live)
	}

	var fl [converse.FullRegs]uint64
	converse.FullSwap(&a, &b, &fl, &sp)
	mask := uint64(0)
	converse.SigmaskSwap(&a, &b, &fl, &sp, &mask)
	if mask == 0 {
		t.Error("sigmask syscall not simulated")
	}
}

// TestExclusiveThreadsInterleave: two stack-copy threads share the
// canonical stack address; the scheduler's switch-out/switch-in
// discipline lets them interleave correctly, each seeing only its own
// stack data.
func TestExclusiveThreadsInterleave(t *testing.T) {
	for _, strat := range []converse.StackStrategy{migrate.StackCopy{}, migrate.MemoryAlias{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			pe := onePE(t)
			var fail string
			mk := func(marker uint64) func(*converse.Ctx) {
				return func(c *converse.Ctx) {
					f, err := c.PushFrame(32)
					if err != nil {
						fail = err.Error()
						return
					}
					if err := c.Space().WriteUint64(f, marker); err != nil {
						fail = err.Error()
						return
					}
					for i := 0; i < 5; i++ {
						c.Yield()
						v, err := c.Space().ReadUint64(f)
						if err != nil {
							fail = err.Error()
							return
						}
						if v != marker {
							fail = fmt.Sprintf("thread %d sees %#x at its frame, want %#x (stack bled through the canonical address)", marker, v, marker)
							return
						}
					}
				}
			}
			for _, marker := range []uint64{0xAAAA, 0xBBBB} {
				th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: strat, StackSize: 2 * 4096}, mk(marker))
				if err != nil {
					t.Fatal(err)
				}
				pe.Sched.Start(th)
			}
			pe.Sched.RunUntilIdle()
			if fail != "" {
				t.Fatal(fail)
			}
		})
	}
}

// TestSchedulerModelCheck drives many threads through seeded random
// yield/suspend sequences and checks the scheduler's accounting
// exactly against the model: every thread runs each of its segments
// exactly once, the switch count equals the total segment count, and
// nothing leaks.
func TestSchedulerModelCheck(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pe := onePE(t)
		const nThreads = 20
		type model struct {
			ops      []int // 0 = yield, 1 = suspend
			executed int
		}
		models := make([]*model, nThreads)
		threads := make([]*converse.Thread, nThreads)
		for i := 0; i < nThreads; i++ {
			m := &model{}
			for k := rng.Intn(8); k > 0; k-- {
				m.ops = append(m.ops, rng.Intn(2))
			}
			models[i] = m
			th, err := pe.Sched.CthCreate(converse.ThreadOptions{
				Strategy:  migrate.Isomalloc{},
				StackSize: 2 * 4096,
				Priority:  rng.Intn(3),
			}, func(c *converse.Ctx) {
				for _, op := range m.ops {
					m.executed++
					if op == 0 {
						c.Yield()
					} else {
						c.Suspend()
					}
				}
				m.executed++
			})
			if err != nil {
				t.Fatal(err)
			}
			threads[i] = th
			pe.Sched.Start(th)
		}
		// Drive: run to idle, wake all suspended, repeat.
		for rounds := 0; ; rounds++ {
			if rounds > 1000 {
				t.Fatal("did not converge")
			}
			pe.Sched.RunUntilIdle()
			woke := false
			for _, th := range threads {
				if th.State() == converse.Suspended {
					th.Awaken()
					woke = true
				}
			}
			if !woke {
				break
			}
		}
		// Model agreement.
		var wantSwitches uint64
		for i, m := range models {
			if threads[i].State() != converse.Exited {
				t.Fatalf("seed %d: thread %d is %s", seed, i, threads[i].State())
			}
			if m.executed != len(m.ops)+1 {
				t.Errorf("seed %d: thread %d executed %d segments, want %d", seed, i, m.executed, len(m.ops)+1)
			}
			wantSwitches += uint64(len(m.ops) + 1)
		}
		if got := pe.Sched.Switches(); got != wantSwitches {
			t.Errorf("seed %d: switches = %d, want exactly %d", seed, got, wantSwitches)
		}
		if pe.Sched.Live() != 0 || pe.Sched.ReadyLen() != 0 {
			t.Errorf("seed %d: leaked threads: live=%d ready=%d", seed, pe.Sched.Live(), pe.Sched.ReadyLen())
		}
		if len(pe.Sched.Threads()) != 0 {
			t.Errorf("seed %d: registry leaked %d threads", seed, len(pe.Sched.Threads()))
		}
		// All stacks and heaps returned to the allocators.
		if n := pe.Iso.LiveSlabs(); n != 0 {
			t.Errorf("seed %d: %d isomalloc slabs leaked", seed, n)
		}
	}
}

func TestThreadStateString(t *testing.T) {
	for _, s := range []converse.State{converse.Created, converse.Ready, converse.Running, converse.Suspended, converse.Migrating, converse.Exited, converse.State(99)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
}
