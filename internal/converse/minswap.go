package converse

// Minimal context switching (§4.3, Figure 10). The paper's point: a
// user-level thread switch entered through a subroutine call need
// only save the callee-saved registers — seven on x86-64 (rdi, rbp,
// rbx, r12-r15) plus the stack pointer — so a correct swap routine is
// ~16 instructions and runs in 16-18 ns on a 2.2 GHz Athlon64.
// Popular swapcontext/setjmp implementations instead save every
// register and often make a sigprocmask *system call*, losing the
// entire advantage of user-level threads.
//
// We reproduce the argument with three swap routines over an explicit
// register file: the minimal callee-saved swap, a save-everything
// swap (the "fear or ignorance" version), and a save-everything swap
// that also pays a simulated signal-mask system call.
// BenchmarkFig10MinimalSwap measures all three in wall-clock time.

// CalleeSavedRegs is the number of registers the x86-64 calling
// convention requires a subroutine to preserve (Figure 10b saves
// exactly these, plus the stack pointer).
const CalleeSavedRegs = 7

// FullRegs approximates the full architectural register file an
// overcautious implementation saves: 16 general-purpose + 16 SSE
// registers (as 2×uint64 each) = 48 words.
const FullRegs = 48

// RegContext is one thread's saved register file. Only the first
// CalleeSavedRegs words (plus SP) participate in a minimal swap.
type RegContext struct {
	Regs [FullRegs]uint64
	SP   uint64
}

// MinimalSwap is Figure 10's swap64: store the old thread's
// callee-saved registers and stack pointer, load the new thread's.
// The register file is an explicit array because Go code cannot name
// machine registers; the *work* — 7 stores, 7 loads, one SP exchange
// — matches the assembly routine.
func MinimalSwap(old, new *RegContext, live *[CalleeSavedRegs]uint64, sp *uint64) {
	for i := 0; i < CalleeSavedRegs; i++ {
		old.Regs[i] = live[i]
	}
	old.SP = *sp
	for i := 0; i < CalleeSavedRegs; i++ {
		live[i] = new.Regs[i]
	}
	*sp = new.SP
}

// FullSwap saves and restores the entire register file — what generic
// swapcontext implementations do "through fear or ignorance".
func FullSwap(old, new *RegContext, live *[FullRegs]uint64, sp *uint64) {
	for i := 0; i < FullRegs; i++ {
		old.Regs[i] = live[i]
	}
	old.SP = *sp
	for i := 0; i < FullRegs; i++ {
		live[i] = new.Regs[i]
	}
	*sp = new.SP
}

// SigmaskSwap is FullSwap plus the sigprocmask system call that
// setjmp/sigsetjmp-based packages issue on every switch. The syscall
// is simulated by the syscallWork function, which models the
// register-save/restore a kernel entry performs ("the kernel could
// just as quickly perform a process switch").
func SigmaskSwap(old, new *RegContext, live *[FullRegs]uint64, sp *uint64, mask *uint64) {
	syscallWork(mask)
	FullSwap(old, new, live, sp)
	syscallWork(mask)
}

// syscallKernelRegs is the register state a syscall entry/exit
// saves and restores (user registers on kernel entry, again on exit).
var syscallKernelRegs [2 * FullRegs]uint64

// syscallWork models one system call's fixed overhead: a full
// register save and restore on the kernel boundary.
//
//go:noinline
func syscallWork(mask *uint64) {
	var frame [FullRegs]uint64
	for i := range frame {
		frame[i] = syscallKernelRegs[i]
	}
	*mask = frame[0] | 1
	for i := range frame {
		syscallKernelRegs[FullRegs+i] = frame[i]
	}
}
