package converse

import (
	"fmt"

	"migflow/internal/mem"
	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
	"migflow/internal/vmem"
)

// Address-space layout of one PE's job process. Every PE lays its
// process image out identically (same executable everywhere), which
// is what lets stack-copy and memory-alias threads assume a common
// canonical stack address.
const (
	// SysHeapBase is where the ordinary (non-migratable) process heap
	// lives: runtime-internal allocations from outside thread context.
	SysHeapBase vmem.Addr = 0x0100_0000
	// SysHeapSize is the system heap's extent.
	SysHeapSize uint64 = 16 << 20
	// GOTBase is where the Global Offset Table is mapped.
	GOTBase vmem.Addr = 0x0800_0000
	// CanonicalStackBase is the shared stack address used by the
	// exclusive strategies (stack copy, memory aliasing).
	CanonicalStackBase vmem.Addr = 0x1000_0000
	// MaxStackSize bounds a single thread stack (the canonical
	// region's extent): 8 MiB, a typical system stack limit.
	MaxStackSize uint64 = 8 << 20
)

// PEConfig configures one PE.
type PEConfig struct {
	Index     int
	Profile   *platform.Profile
	Clock     *simclock.Clock    // shared or per-PE virtual clock
	IsoRegion mem.IsoRegion      // machine-wide isomalloc region
	Globals   *swapglobal.Layout // optional swap-global module layout
}

// PE bundles one simulated processor's job-process resources: its
// address space, isomalloc slot, system heap, malloc interposer,
// optional GOT, and user-level thread scheduler.
type PE struct {
	Index int
	Prof  *platform.Profile
	Clock *simclock.Clock
	Space *vmem.Space
	Iso   *mem.IsoAllocator
	Sys   *mem.Heap
	Inter *mem.Interposer
	GOT   *swapglobal.GOT
	Sched *Scheduler

	// Trace, when non-nil, receives scheduler events (Projections-
	// style instrumentation). Set it before running threads.
	Trace *trace.Log

	// exclusiveIn tracks the thread currently switched in under an
	// exclusive strategy, enforcing the one-active-thread rule.
	exclusiveIn *Thread
}

// NewPE boots one PE: creates the address space sized by the
// platform, reserves the isomalloc region (this is where 32-bit
// platforms fail when the region is too large), installs the system
// heap and optionally the GOT, and starts an empty scheduler.
func NewPE(cfg PEConfig) (*PE, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("converse: NewPE: nil profile")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.New()
	}
	space := vmem.NewSpace(cfg.Profile.VirtLimit)
	if cfg.IsoRegion.NumPEs == 0 {
		return nil, fmt.Errorf("converse: NewPE: empty isomalloc region")
	}
	if cfg.Index < 0 || cfg.Index >= cfg.IsoRegion.NumPEs {
		return nil, fmt.Errorf("converse: NewPE: index %d outside region's %d PEs", cfg.Index, cfg.IsoRegion.NumPEs)
	}
	// Reserve the whole machine-wide region locally: remote threads'
	// addresses are "claimed only in principle" (§3.4.2) but must be
	// free for use should a remote thread migrate in.
	if err := space.Reserve(cfg.IsoRegion.Start, cfg.IsoRegion.Size); err != nil {
		return nil, fmt.Errorf("converse: PE %d cannot reserve isomalloc region: %w", cfg.Index, err)
	}
	sys, err := mem.NewHeap(space, vmem.Range{Start: SysHeapBase, Length: SysHeapSize})
	if err != nil {
		return nil, err
	}
	pe := &PE{
		Index: cfg.Index,
		Prof:  cfg.Profile,
		Clock: cfg.Clock,
		Space: space,
		Iso:   mem.NewIsoAllocator(cfg.IsoRegion, cfg.Index),
		Sys:   sys,
		Inter: mem.NewInterposer(mem.AsAllocator(sys)),
	}
	if cfg.Globals != nil && cfg.Globals.NumGlobals() > 0 {
		got, err := swapglobal.Install(space, GOTBase, cfg.Globals)
		if err != nil {
			return nil, err
		}
		pe.GOT = got
	}
	pe.Sched = newScheduler(pe)
	return pe, nil
}

// acquireExclusive enforces the one-active-thread rule of exclusive
// strategies (§3.4.1: "there can only be one thread active in each
// address space").
func (pe *PE) acquireExclusive(t *Thread) error {
	if pe.exclusiveIn != nil && pe.exclusiveIn != t {
		return fmt.Errorf("converse: PE %d: thread %d already active at the canonical stack address", pe.Index, pe.exclusiveIn.ID())
	}
	pe.exclusiveIn = t
	return nil
}

func (pe *PE) releaseExclusive(t *Thread) {
	if pe.exclusiveIn == t {
		pe.exclusiveIn = nil
	}
}
