// Package converse is the Converse-like runtime layer of §2.3: per-PE
// user-level thread schedulers with priority queues, the Cth thread
// API (create / yield / suspend / awaken), and the stack-strategy
// interface behind which the three migratable-thread techniques of
// §3.4 (stack copying, isomalloc, memory aliasing — implemented in
// internal/migrate) plug into the context switch path.
//
// A thread's control flow is carried by a parked goroutine (the
// documented Go substitution for machine-stack switching), but every
// byte of *migratable* state — stack frames, heap blocks, privatized
// globals — lives in simulated memory reached through the Ctx API, so
// the three techniques move real bytes between real (simulated)
// address spaces and their costs and failure modes are faithful.
package converse

import (
	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// StackRef is a strategy-private handle to one thread's stack.
type StackRef interface {
	// Base returns the virtual address of the stack's low end while
	// the thread is switched in.
	Base() vmem.Addr
	// Size returns the stack size in bytes.
	Size() uint64
}

// StackImage is the wire form of a stack: what migration ships. The
// image is sparse — Runs carries only the pages the thread actually
// dirtied, each a whole-page-aligned span of [Base, Base+Size), and
// Install zero-fills everything unshipped — so migration bytes are
// proportional to live stack, not allocated stack (Figure 11).
type StackImage struct {
	Strategy string
	Base     uint64
	Size     uint64
	Runs     []vmem.Run
}

// Payload returns the stack data bytes the image ships.
func (im *StackImage) Payload() int { return vmem.RunsPayload(im.Runs) }

// Pup serializes the image (pup.Pupable).
func (im *StackImage) Pup(p *pup.PUPer) error {
	if err := p.String(&im.Strategy); err != nil {
		return err
	}
	if err := p.Uint64(&im.Base); err != nil {
		return err
	}
	if err := p.Uint64(&im.Size); err != nil {
		return err
	}
	return vmem.PupRuns(p, &im.Runs)
}

// StackStrategy is one of the paper's three techniques for keeping a
// thread's stack valid across context switches and migrations. All
// addresses a thread stores into its stack remain valid because the
// stack is always visible at the same virtual address — the three
// strategies differ in how they arrange that, what each context
// switch costs, and how much virtual address space they consume.
type StackStrategy interface {
	// Name returns the technique's stable name ("stackcopy",
	// "isomalloc", "memalias").
	Name() string

	// New prepares a stack of size bytes for a thread born on pe.
	New(pe *PE, size uint64) (StackRef, error)

	// SwitchIn makes the stack addressable before the thread runs;
	// SwitchOut hides it again after the thread stops running. For
	// exclusive strategies these do the copying/remapping work; used
	// is the thread's live stack byte count (stack copying moves only
	// that much — Figure 9's x-axis).
	SwitchIn(pe *PE, s StackRef, used uint64) error
	SwitchOut(pe *PE, s StackRef, used uint64) error

	// Extract captures the stack for migration, releasing pe-local
	// resources; Install recreates it on the destination.
	Extract(pe *PE, s StackRef) (*StackImage, error)
	Install(pe *PE, im *StackImage) (StackRef, error)

	// Release frees the stack at thread exit.
	Release(pe *PE, s StackRef) error

	// Exclusive reports whether at most one thread using this
	// strategy may be switched in per address space (true for stack
	// copying and memory aliasing — their shared canonical stack
	// address is the paper's stated SMP drawback).
	Exclusive() bool
}
