// Package trace is a Projections-style event log for the simulated
// machine: context switches, thread lifecycle and migrations are
// recorded with virtual timestamps, and analysis helpers derive
// per-PE utilization and event counts — the instrumentation a
// measurement-based load balancer (§4.5) and a performance analyst
// both read.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Kind tags an event.
type Kind int

// Event kinds.
const (
	EvCreate Kind = iota
	EvSwitchIn
	EvSwitchOut
	EvExit
	EvMigrateOut
	EvMigrateIn
)

func (k Kind) String() string {
	switch k {
	case EvCreate:
		return "create"
	case EvSwitchIn:
		return "switch-in"
	case EvSwitchOut:
		return "switch-out"
	case EvExit:
		return "exit"
	case EvMigrateOut:
		return "migrate-out"
	case EvMigrateIn:
		return "migrate-in"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one timeline entry.
type Event struct {
	TimeNs float64
	PE     int
	Kind   Kind
	Thread uint64
	Arg    uint64 // kind-specific: destination PE, bytes, ...
}

// Log collects events from all PEs of one machine. The zero value is
// a disabled log; New returns an enabled one.
type Log struct {
	mu      sync.Mutex
	events  []Event
	enabled bool
}

// New returns an enabled log.
func New() *Log { return &Log{enabled: true} }

// Enabled reports whether Record stores events.
func (l *Log) Enabled() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enabled
}

// Record appends an event (no-op on a nil or disabled log).
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.enabled {
		l.events = append(l.events, e)
	}
	l.mu.Unlock()
}

// Events returns a snapshot sorted by (PE, time, insertion order).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PE != out[j].PE {
			return out[i].PE < out[j].PE
		}
		return out[i].TimeNs < out[j].TimeNs
	})
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Counts tallies events by kind.
func (l *Log) Counts() map[Kind]int {
	out := make(map[Kind]int)
	l.mu.Lock()
	for _, e := range l.events {
		out[e.Kind]++
	}
	l.mu.Unlock()
	return out
}

// PEStats summarizes one PE's timeline.
type PEStats struct {
	PE       int
	BusyNs   float64 // time with a thread switched in
	SpanNs   float64 // last event time minus first
	Switches int
}

// Utilization returns BusyNs/SpanNs per PE (1.0 = always running a
// thread). PEs without events report zero-valued stats.
func Utilization(l *Log, numPEs int) []PEStats {
	stats := make([]PEStats, numPEs)
	for pe := range stats {
		stats[pe].PE = pe
	}
	var inAt = make(map[int]float64) // pe -> switch-in time
	var first = make(map[int]float64)
	var last = make(map[int]float64)
	for _, e := range l.Events() {
		if e.PE < 0 || e.PE >= numPEs {
			continue
		}
		if _, ok := first[e.PE]; !ok {
			first[e.PE] = e.TimeNs
		}
		last[e.PE] = e.TimeNs
		switch e.Kind {
		case EvSwitchIn:
			inAt[e.PE] = e.TimeNs
			stats[e.PE].Switches++
		case EvSwitchOut:
			if t, ok := inAt[e.PE]; ok {
				stats[e.PE].BusyNs += e.TimeNs - t
				delete(inAt, e.PE)
			}
		}
	}
	for pe := range stats {
		stats[pe].SpanNs = last[pe] - first[pe]
	}
	return stats
}

// Fraction returns busy/span, or 0 for an empty span.
func (s PEStats) Fraction() float64 {
	if s.SpanNs <= 0 {
		return 0
	}
	return s.BusyNs / s.SpanNs
}
