package trace

import "testing"

func TestNilAndDisabled(t *testing.T) {
	var nilLog *Log
	nilLog.Record(Event{}) // must not panic
	if nilLog.Enabled() {
		t.Error("nil log enabled")
	}
	var zero Log
	zero.Record(Event{Kind: EvCreate})
	if zero.Len() != 0 {
		t.Error("disabled log recorded")
	}
}

func TestRecordAndCounts(t *testing.T) {
	l := New()
	if !l.Enabled() {
		t.Fatal("new log disabled")
	}
	l.Record(Event{TimeNs: 1, PE: 0, Kind: EvCreate, Thread: 7})
	l.Record(Event{TimeNs: 2, PE: 0, Kind: EvSwitchIn, Thread: 7})
	l.Record(Event{TimeNs: 5, PE: 0, Kind: EvSwitchOut, Thread: 7})
	l.Record(Event{TimeNs: 3, PE: 1, Kind: EvSwitchIn, Thread: 8})
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	c := l.Counts()
	if c[EvSwitchIn] != 2 || c[EvCreate] != 1 {
		t.Errorf("counts = %v", c)
	}
	evs := l.Events()
	// Sorted by PE then time.
	if evs[0].PE != 0 || evs[3].PE != 1 {
		t.Errorf("events not sorted: %v", evs)
	}
}

func TestUtilization(t *testing.T) {
	l := New()
	// PE 0: busy 10..20 and 30..35 of span 10..40.
	l.Record(Event{TimeNs: 10, PE: 0, Kind: EvSwitchIn})
	l.Record(Event{TimeNs: 20, PE: 0, Kind: EvSwitchOut})
	l.Record(Event{TimeNs: 30, PE: 0, Kind: EvSwitchIn})
	l.Record(Event{TimeNs: 35, PE: 0, Kind: EvSwitchOut})
	l.Record(Event{TimeNs: 40, PE: 0, Kind: EvExit})
	stats := Utilization(l, 2)
	if stats[0].BusyNs != 15 {
		t.Errorf("busy = %g", stats[0].BusyNs)
	}
	if stats[0].SpanNs != 30 {
		t.Errorf("span = %g", stats[0].SpanNs)
	}
	if f := stats[0].Fraction(); f != 0.5 {
		t.Errorf("fraction = %g", f)
	}
	if stats[0].Switches != 2 {
		t.Errorf("switches = %d", stats[0].Switches)
	}
	// PE 1 never seen.
	if stats[1].Fraction() != 0 || stats[1].SpanNs != 0 {
		t.Errorf("idle PE stats = %+v", stats[1])
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvCreate; k <= EvMigrateIn; k++ {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}
