package bigsim

import "testing"

func aggCfg(simPEs int) Config {
	cfg := small(simPEs)
	cfg.Aggregate = true
	return cfg
}

// TestAggParallelMatchesSerial: aggregation must stay deterministic —
// the SMP driver and the serial driver produce identical per-step
// results, including the new envelope counters.
func TestAggParallelMatchesSerial(t *testing.T) {
	const steps = 4
	ser, err := New(aggCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	serial := ser.Run(steps)
	ser.Close()
	par, err := New(aggCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	parallel := par.RunParallel(steps)
	par.Close()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("step %d: serial %+v vs parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestAggPredictionAndTrafficUnchanged: aggregation is a simulating-
// machine optimization only. The target prediction and the logical
// message counts must be bit-identical with and without it.
func TestAggPredictionAndTrafficUnchanged(t *testing.T) {
	const steps = 5
	run := func(agg bool) []StepStats {
		cfg := small(4)
		cfg.Aggregate = agg
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return s.Run(steps)
	}
	direct, aggd := run(false), run(true)
	for i := range direct {
		if direct[i].PredictedTargetNs != aggd[i].PredictedTargetNs {
			t.Errorf("step %d: prediction %g direct vs %g aggregated",
				i, direct[i].PredictedTargetNs, aggd[i].PredictedTargetNs)
		}
		if direct[i].CrossPEMessages != aggd[i].CrossPEMessages {
			t.Errorf("step %d: cross %d direct vs %d aggregated",
				i, direct[i].CrossPEMessages, aggd[i].CrossPEMessages)
		}
		if direct[i].IntraPEMessages != aggd[i].IntraPEMessages {
			t.Errorf("step %d: intra %d direct vs %d aggregated",
				i, direct[i].IntraPEMessages, aggd[i].IntraPEMessages)
		}
	}
}

// TestAggCounters: every cross-PE ghost rides exactly one envelope,
// and envelopes genuinely coalesce (far fewer envelopes than ghosts —
// block-mapped torus slabs exchange whole faces with each neighbour
// slab).
func TestAggCounters(t *testing.T) {
	s, err := New(aggCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Run(2)[1]
	if st.CoalescedGhosts != st.CrossPEMessages {
		t.Errorf("coalesced %d ghosts, %d crossed PEs", st.CoalescedGhosts, st.CrossPEMessages)
	}
	if st.Envelopes == 0 || st.Envelopes >= st.CrossPEMessages {
		t.Errorf("%d envelopes for %d cross-PE ghosts: not coalescing", st.Envelopes, st.CrossPEMessages)
	}
	// Direct mode reports no envelopes.
	d, err := New(small(4))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if st := d.Run(2)[1]; st.Envelopes != 0 || st.CoalescedGhosts != 0 {
		t.Errorf("direct mode reported envelopes: %+v", st)
	}
}

// TestAggReducesStepTime: paying one Alpha per (src,dst) PE pair
// instead of one per ghost must shrink the simulating machine's step
// time.
func TestAggReducesStepTime(t *testing.T) {
	const steps = 5
	run := func(agg bool) float64 {
		cfg := small(8)
		cfg.Aggregate = agg
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return MeanStepTime(s.Run(steps))
	}
	direct, aggd := run(false), run(true)
	if !(aggd < direct) {
		t.Errorf("aggregated step %g not faster than direct %g", aggd, direct)
	}
}

// BenchmarkGhostExchange measures wall time per simulated step,
// per-message versus aggregated.
func BenchmarkGhostExchange(b *testing.B) {
	run := func(b *testing.B, agg bool) {
		cfg := small(4)
		cfg.Aggregate = agg
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	}
	b.Run("direct", func(b *testing.B) { run(b, false) })
	b.Run("agg", func(b *testing.B) { run(b, true) })
}
