// Sharded BigSim: the simulating PEs split into contiguous slabs,
// one OS process each, so the Figure 11/12 prediction runs off a
// single Go runtime. Each worker builds the full (cheap, array-only)
// simulator state but drives only its own slab's flows; per timestep
// the workers exchange one delta frame per peer carrying everything a
// step writes across the cut:
//
//   - ghost mail counts and target-network arrival maxima for the
//     peer's frontier cells,
//   - streaming-aggregation envelope pendings for the peer's PEs,
//   - the worker's simulating-clock advance and target-clock maxima
//     plus its message counters, so every worker reconstructs the
//     identical merged StepStats.
//
// Bitwise determinism is the contract (the 2-process prediction must
// equal the 1-process one), so the frame never ships a pre-summed
// receiver-side float: per-message handling costs are applied as N
// individual adds of the same constant — associative regardless of
// how the senders were grouped — while max-combined quantities
// (arrival times, clock maxima) ship as partial maxima, which are
// order-free by construction. Aggregation pendings have a single
// writer per (src,dst) slot, so those cross as exact values.
//
// Only ModeEvent shards: a ULT flow is a live goroutine whose stack
// cannot be rebuilt from a frame.
package bigsim

import (
	"fmt"
	"math"

	"migflow/internal/pup"
)

// Shard drives one worker's slab of the simulating machine.
type Shard struct {
	S       *Simulator
	Index   int
	Workers int

	peLo, peHi int

	// frontier[w] lists the cells owned by worker w that this slab's
	// posts can touch (torus neighbours of local cells), ascending.
	frontier [][]int32

	// step state between prologue and finish.
	step       int
	prevTAfter float64
}

// cutPE is the slab boundary: worker i owns PEs [cutPE(i), cutPE(i+1)).
func cutPE(numPEs, workers, i int) int { return i * numPEs / workers }

// peOwner returns the worker owning simulating PE pe.
func peOwner(numPEs, workers, pe int) int {
	for w := 0; w < workers; w++ {
		if pe < cutPE(numPEs, workers, w+1) {
			return w
		}
	}
	return workers - 1
}

// NewShard builds worker index's view of the simulation.
func NewShard(cfg Config, index, workers int) (*Shard, error) {
	if workers < 2 {
		return nil, fmt.Errorf("bigsim: shard wants ≥ 2 workers, got %d", workers)
	}
	if index < 0 || index >= workers {
		return nil, fmt.Errorf("bigsim: shard index %d of %d", index, workers)
	}
	if cfg.Mode != ModeEvent {
		return nil, fmt.Errorf("bigsim: only %q flows shard across processes (a ULT flow is a live goroutine)", ModeEvent)
	}
	if cfg.SimPEs < workers {
		return nil, fmt.Errorf("bigsim: %d simulating PEs across %d workers", cfg.SimPEs, workers)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sh := &Shard{
		S: s, Index: index, Workers: workers,
		peLo:     cutPE(cfg.SimPEs, workers, index),
		peHi:     cutPE(cfg.SimPEs, workers, index+1),
		frontier: make([][]int32, workers),
	}
	seen := make(map[int32]bool)
	for pe := sh.peLo; pe < sh.peHi; pe++ {
		for _, p := range s.byPE[pe] {
			for _, nb := range p.nbrs {
				w := peOwner(cfg.SimPEs, workers, int(s.store[nb].simPE))
				if w != index && !seen[nb] {
					seen[nb] = true
					sh.frontier[w] = append(sh.frontier[w], nb)
				}
			}
		}
	}
	return sh, nil
}

// localPE reports whether pe belongs to this slab.
func (sh *Shard) localPE(pe int) bool { return pe >= sh.peLo && pe < sh.peHi }

// shardFrame is one worker's per-step delta for one peer.
type shardFrame struct {
	step                    int
	cross, intra, env, coal int64
	maxDelta, tAfter        float64
	cells                   []cellDelta
	agg                     []aggDelta
}

// cellDelta carries the ghosts a slab posted to one remote cell: the
// mail count (which is also the number of per-message handling costs
// the cell's PE owes) and the max target-network arrival.
type cellDelta struct {
	id   int32
	mail int64
	arr  float64
}

// aggDelta is one coalesced envelope's receiver pending.
type aggDelta struct {
	src, dst int32
	pend     float64
}

// Step advances the slab one timestep. exchange ships the outbound
// frames (indexed by worker, nil for self) and returns the inbound
// ones in the same shape; the returned stats are the full machine's,
// identical on every worker.
func (sh *Shard) Step(exchange func(out [][]byte) ([][]byte, error)) (StepStats, error) {
	before := sh.prologue()
	for pe := sh.peLo; pe < sh.peHi; pe++ {
		sh.S.runPE(pe)
	}
	local, out, err := sh.harvest(before)
	if err != nil {
		return StepStats{}, err
	}
	in, err := exchange(out)
	if err != nil {
		return StepStats{}, err
	}
	return sh.finish(local, in)
}

// prologue mirrors stepPrologue for the local slab: remote cells'
// mail/arrival slots and remote PEs' pendings were harvested to zero
// last step, so the global loops only move local state.
func (sh *Shard) prologue() (before []float64) {
	s := sh.S
	s.stepCross.Store(0)
	s.stepIntra.Store(0)
	s.stepEnvelopes.Store(0)
	s.stepCoalesced.Store(0)
	before = make([]float64, sh.peHi-sh.peLo)
	for pe := sh.peLo; pe < sh.peHi; pe++ {
		before[pe-sh.peLo] = s.clocks[pe].Now()
	}
	if s.byPE[sh.peLo][0].steps > 0 {
		for pe := sh.peLo; pe < sh.peHi; pe++ {
			for _, p := range s.byPE[pe] {
				if n := s.mail[p.id].Load(); n != 6 {
					panic(fmt.Sprintf("bigsim: cell %d has %d ghosts, want 6", p.id, n))
				}
				s.mail[p.id].Store(0)
			}
		}
	}
	s.arrNow, s.arrNext = s.arrNext, s.arrNow
	for i := range s.arrNext {
		s.arrNext[i].Store(0)
	}
	for pe := sh.peLo; pe < sh.peHi; pe++ {
		s.clocks[pe].Advance(math.Float64frombits(s.recvPending[pe].Swap(0)))
	}
	for src := range s.aggPend {
		for dst, pend := range s.aggPend[src] {
			if pend != 0 {
				s.clocks[dst].Advance(pend)
				s.aggPend[src][dst] = 0
			}
		}
	}
	return before
}

// harvest drains everything the step wrote across the cut into one
// frame per peer and computes the slab's own step summary.
func (sh *Shard) harvest(before []float64) (local shardFrame, out [][]byte, err error) {
	s := sh.S
	local.step = sh.step
	local.cross = s.stepCross.Load()
	local.intra = s.stepIntra.Load()
	local.env = s.stepEnvelopes.Load()
	local.coal = s.stepCoalesced.Load()
	for pe := sh.peLo; pe < sh.peHi; pe++ {
		if d := s.clocks[pe].Now() - before[pe-sh.peLo]; d > local.maxDelta {
			local.maxDelta = d
		}
		for _, p := range s.byPE[pe] {
			if p.tclock > local.tAfter {
				local.tAfter = p.tclock
			}
		}
	}
	out = make([][]byte, sh.Workers)
	for w := 0; w < sh.Workers; w++ {
		if w == sh.Index {
			continue
		}
		f := shardFrame{
			step: sh.step, cross: local.cross, intra: local.intra,
			env: local.env, coal: local.coal,
			maxDelta: local.maxDelta, tAfter: local.tAfter,
		}
		for _, id := range sh.frontier[w] {
			mail := s.mail[id].Swap(0)
			arr := math.Float64frombits(s.arrNext[id].Swap(0))
			if mail != 0 || arr != 0 {
				f.cells = append(f.cells, cellDelta{id: id, mail: mail, arr: arr})
			}
		}
		if s.cfg.Aggregate {
			lo, hi := cutPE(s.cfg.SimPEs, sh.Workers, w), cutPE(s.cfg.SimPEs, sh.Workers, w+1)
			for src := sh.peLo; src < sh.peHi; src++ {
				for dst := lo; dst < hi; dst++ {
					if pend := s.aggPend[src][dst]; pend != 0 {
						f.agg = append(f.agg, aggDelta{src: int32(src), dst: int32(dst), pend: pend})
						s.aggPend[src][dst] = 0
					}
				}
			}
		}
		if out[w], err = encodeFrame(&f); err != nil {
			return local, nil, err
		}
	}
	return local, out, nil
}

// finish applies every peer's frame and combines the step summaries
// into the machine-wide StepStats.
func (sh *Shard) finish(local shardFrame, in [][]byte) (StepStats, error) {
	s := sh.S
	cross, intra := local.cross, local.intra
	env, coal := local.env, local.coal
	maxDelta, tAfter := local.maxDelta, local.tAfter
	// Per-message receiver handling is N adds of the same constant, so
	// grouping by sender cannot change the accumulated bits.
	recvCost := s.lat.Cost(s.cfg.GhostBytes) * recvOverheadFrac
	for w, data := range in {
		if w == sh.Index || data == nil {
			continue
		}
		f, err := decodeFrame(data)
		if err != nil {
			return StepStats{}, fmt.Errorf("bigsim: frame from worker %d: %w", w, err)
		}
		if f.step != sh.step {
			return StepStats{}, fmt.Errorf("bigsim: worker %d is at step %d, this one at %d", w, f.step, sh.step)
		}
		for _, c := range f.cells {
			if int(c.id) >= len(s.store) || !sh.localPE(int(s.store[c.id].simPE)) {
				return StepStats{}, fmt.Errorf("bigsim: worker %d posted to cell %d, not in this slab", w, c.id)
			}
			s.mail[c.id].Add(c.mail)
			atomicMaxFloat(&s.arrNext[c.id], c.arr)
			if !s.cfg.Aggregate {
				pe := int(s.store[c.id].simPE)
				for k := int64(0); k < c.mail; k++ {
					atomicAddFloat(&s.recvPending[pe], recvCost)
				}
			}
		}
		for _, a := range f.agg {
			if int(a.src) >= s.cfg.SimPEs || sh.localPE(int(a.src)) || !sh.localPE(int(a.dst)) {
				return StepStats{}, fmt.Errorf("bigsim: worker %d sent envelope %d→%d, not across this cut", w, a.src, a.dst)
			}
			s.aggPend[a.src][a.dst] += a.pend
		}
		cross += f.cross
		intra += f.intra
		env += f.env
		coal += f.coal
		if f.maxDelta > maxDelta {
			maxDelta = f.maxDelta
		}
		if f.tAfter > tAfter {
			tAfter = f.tAfter
		}
	}
	sh.step++
	st := StepStats{
		Step:              s.byPE[sh.peLo][0].steps,
		TimeNs:            maxDelta,
		PredictedTargetNs: tAfter - sh.prevTAfter,
		CrossPEMessages:   int(cross),
		IntraPEMessages:   int(intra),
		Envelopes:         int(env),
		CoalescedGhosts:   int(coal),
	}
	sh.prevTAfter = tAfter
	return st, nil
}

// frameCellMin / frameAggMin are the minimum encoded entry sizes the
// decoder validates claimed counts against.
const (
	frameCellMin = 8 + 8 + 8
	frameAggMin  = 8 + 8 + 8
)

func encodeFrame(f *shardFrame) ([]byte, error) {
	p := pup.NewGrowPacker()
	if err := pupFrameHeader(p, f); err != nil {
		return nil, err
	}
	ncells, nagg := len(f.cells), len(f.agg)
	if err := p.Int(&ncells); err != nil {
		return nil, err
	}
	for i := range f.cells {
		if err := pupCellDelta(p, &f.cells[i]); err != nil {
			return nil, err
		}
	}
	if err := p.Int(&nagg); err != nil {
		return nil, err
	}
	for i := range f.agg {
		if err := pupAggDelta(p, &f.agg[i]); err != nil {
			return nil, err
		}
	}
	return p.PackedBytes(), nil
}

func decodeFrame(data []byte) (*shardFrame, error) {
	p := pup.NewUnpacker(data)
	f := &shardFrame{}
	if err := pupFrameHeader(p, f); err != nil {
		return nil, err
	}
	var ncells int
	if err := p.Int(&ncells); err != nil {
		return nil, err
	}
	if ncells < 0 || ncells*frameCellMin > p.Remaining() {
		return nil, fmt.Errorf("frame claims %d cells with %d bytes remaining", ncells, p.Remaining())
	}
	f.cells = make([]cellDelta, ncells)
	for i := range f.cells {
		if err := pupCellDelta(p, &f.cells[i]); err != nil {
			return nil, err
		}
	}
	var nagg int
	if err := p.Int(&nagg); err != nil {
		return nil, err
	}
	if nagg < 0 || nagg*frameAggMin > p.Remaining() {
		return nil, fmt.Errorf("frame claims %d envelopes with %d bytes remaining", nagg, p.Remaining())
	}
	f.agg = make([]aggDelta, nagg)
	for i := range f.agg {
		if err := pupAggDelta(p, &f.agg[i]); err != nil {
			return nil, err
		}
	}
	if p.Remaining() != 0 {
		return nil, fmt.Errorf("frame carries %d trailing bytes", p.Remaining())
	}
	return f, nil
}

func pupFrameHeader(p *pup.PUPer, f *shardFrame) error {
	if err := p.Int(&f.step); err != nil {
		return err
	}
	if err := p.Int64(&f.cross); err != nil {
		return err
	}
	if err := p.Int64(&f.intra); err != nil {
		return err
	}
	if err := p.Int64(&f.env); err != nil {
		return err
	}
	if err := p.Int64(&f.coal); err != nil {
		return err
	}
	if err := p.Float64(&f.maxDelta); err != nil {
		return err
	}
	return p.Float64(&f.tAfter)
}

func pupCellDelta(p *pup.PUPer, c *cellDelta) error {
	id := int64(c.id)
	if err := p.Int64(&id); err != nil {
		return err
	}
	if err := p.Int64(&c.mail); err != nil {
		return err
	}
	if err := p.Float64(&c.arr); err != nil {
		return err
	}
	if p.IsUnpacking() {
		c.id = int32(id)
	}
	return nil
}

func pupAggDelta(p *pup.PUPer, a *aggDelta) error {
	src, dst := int64(a.src), int64(a.dst)
	if err := p.Int64(&src); err != nil {
		return err
	}
	if err := p.Int64(&dst); err != nil {
		return err
	}
	if err := p.Float64(&a.pend); err != nil {
		return err
	}
	if p.IsUnpacking() {
		a.src, a.dst = int32(src), int32(dst)
	}
	return nil
}
