package bigsim

import (
	"math"
	"sync"
	"testing"
)

func stepEqual(a, b StepStats) bool {
	return a.Step == b.Step &&
		math.Float64bits(a.TimeNs) == math.Float64bits(b.TimeNs) &&
		math.Float64bits(a.PredictedTargetNs) == math.Float64bits(b.PredictedTargetNs) &&
		a.CrossPEMessages == b.CrossPEMessages &&
		a.IntraPEMessages == b.IntraPEMessages &&
		a.Envelopes == b.Envelopes &&
		a.CoalescedGhosts == b.CoalescedGhosts
}

// runShardPair drives both workers' slabs concurrently, meeting at
// the per-step frame exchange, and demands both report identical
// stats for every step.
func runShardPair(t *testing.T, cfg Config, steps int) []StepStats {
	t.Helper()
	var shards [2]*Shard
	for i := range shards {
		sh, err := NewShard(cfg, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
	}
	ch := [2]chan []byte{make(chan []byte, 1), make(chan []byte, 1)}
	var results [2][]StepStats
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	for i := range shards {
		go func(i int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				st, err := shards[i].Step(func(out [][]byte) ([][]byte, error) {
					ch[i] <- out[1-i]
					in := make([][]byte, 2)
					in[1-i] = <-ch[1-i]
					return in, nil
				})
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = append(results[i], st)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if len(results[0]) != steps || len(results[1]) != steps {
		t.Fatalf("step counts: %d and %d, want %d", len(results[0]), len(results[1]), steps)
	}
	for s := 0; s < steps; s++ {
		if !stepEqual(results[0][s], results[1][s]) {
			t.Fatalf("step %d: workers disagree: %+v vs %+v", s, results[0][s], results[1][s])
		}
	}
	return results[0]
}

// TestShardMatchesSerial: the 2-slab run must reproduce the serial
// simulator's per-step stats bit for bit, per-message and aggregated.
func TestShardMatchesSerial(t *testing.T) {
	for _, agg := range []bool{false, true} {
		cfg := Config{
			X: 8, Y: 6, Z: 4, SimPEs: 6, Mode: ModeEvent,
			AtomsPerCell: 150, WorkPerAtomNs: 30, GhostBytes: 1024,
			Aggregate: agg,
		}
		const steps = 5
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Run(steps)
		got := runShardPair(t, cfg, steps)
		for s := range want {
			if !stepEqual(want[s], got[s]) {
				t.Fatalf("aggregate=%v step %d: serial %+v, sharded %+v", agg, s, want[s], got[s])
			}
		}
	}
}

// TestShardRejectsULT: goroutine-backed flows cannot cross a process
// boundary.
func TestShardRejectsULT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeULT
	if _, err := NewShard(cfg, 0, 2); err == nil {
		t.Fatal("ULT mode must be rejected")
	}
}

// TestShardOddSplit: slab cuts that do not divide the PE count.
func TestShardOddSplit(t *testing.T) {
	cfg := Config{
		X: 6, Y: 5, Z: 3, SimPEs: 5, Mode: ModeEvent,
		AtomsPerCell: 100, WorkPerAtomNs: 20, GhostBytes: 512,
	}
	const steps = 4
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run(steps)
	got := runShardPair(t, cfg, steps)
	for s := range want {
		if !stepEqual(want[s], got[s]) {
			t.Fatalf("step %d: serial %+v, sharded %+v", s, want[s], got[s])
		}
	}
}
