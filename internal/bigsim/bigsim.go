// Package bigsim is a BigSim-like parallel machine simulator (§4.4):
// it predicts the per-timestep behaviour of a molecular-dynamics-style
// application running on a huge *target* machine (e.g. 200,000
// processors) using a much smaller *simulating* machine — by giving
// every simulated target processor its own user-level thread, exactly
// the many-flows-per-processor scenario the paper motivates ("50,000
// separate target processors ... clearly not feasible using either
// processes or kernel threads").
//
// Each target processor owns one patch of an X×Y×Z torus of atom
// cells. Per timestep it computes forces (modeled work proportional
// to its atoms) and exchanges ghost atoms with its six torus
// neighbours. The simulating machine's virtual clocks record each
// simulating PE's serial execution of its resident target threads,
// so "simulation time per step" is max-over-PEs of (compute + thread
// switching + message handling) — the quantity Figure 11 plots
// against the number of simulating processors.
package bigsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/platform"
	"migflow/internal/simclock"
)

// Config sizes the simulation.
type Config struct {
	// Target torus dimensions: X*Y*Z target processors.
	X, Y, Z int
	// SimPEs is the number of simulating processors.
	SimPEs int
	// AtomsPerCell scales per-step compute work.
	AtomsPerCell int
	// WorkPerAtomNs is modeled force-computation cost per atom per
	// step.
	WorkPerAtomNs float64
	// GhostBytes is the per-neighbour ghost message size.
	GhostBytes int
	// Latency models the simulating machine's interconnect; zero
	// value selects comm.DefaultLatency.
	Latency comm.LatencyModel
	// Platform supplies ULT switch costs; nil selects Alpha ES45
	// (LeMieux, the machine of Figure 11).
	Platform *platform.Profile

	// Aggregate coalesces each simulating PE's cross-PE ghost traffic
	// per destination PE per step (TRAM-style streaming aggregation):
	// one envelope of n·GhostBytes replaces n individual messages, so
	// the simulating machine pays one Alpha plus the summed per-byte
	// cost per (src,dst) PE pair instead of n Alphas. Only the
	// simulating-machine cost model changes — the target-machine
	// prediction stays per-message and is bit-identical either way.
	Aggregate bool

	// Target machine model — what BigSim *predicts*. TargetWorkNs is
	// the per-cell compute time per step on one target processor;
	// TargetLatency is the target interconnect. Zero values select a
	// Blue-Gene-like node: 3 µs of work per cell, 5 µs + 1 ns/byte
	// links.
	TargetWorkNs  float64
	TargetLatency comm.LatencyModel
}

// DefaultConfig returns a small but representative configuration.
func DefaultConfig() Config {
	return Config{
		X: 20, Y: 20, Z: 10, SimPEs: 4,
		AtomsPerCell: 200, WorkPerAtomNs: 25,
		GhostBytes: 2048,
	}
}

// tproc is one simulated target processor: a user-level thread
// (parked goroutine) owning one torus cell.
type tproc struct {
	id     int
	simPE  int
	resume chan struct{}
	parked chan struct{}
	ghosts int // ghost messages received for the upcoming step
	steps  int
	done   bool

	// tclock is the *target* machine's virtual time on this target
	// processor — the quantity BigSim exists to predict. It advances
	// by target work and waits on target message arrivals,
	// independently of how target processors are packed onto
	// simulating PEs.
	tclock float64
}

// StepStats reports one simulated timestep.
type StepStats struct {
	Step int
	// TimeNs is the simulation time for the step: the maximum over
	// simulating PEs of their virtual execution time (Figure 11's
	// y-axis).
	TimeNs float64
	// PredictedTargetNs is the *predicted target machine* time for
	// the step — BigSim's output. It must be identical no matter how
	// many simulating PEs run the simulation.
	PredictedTargetNs float64
	// Messages crossed between simulating PEs this step.
	CrossPEMessages int
	// IntraPEMessages stayed within one simulating PE.
	IntraPEMessages int
	// Envelopes is the number of coalesced cross-PE envelopes sent
	// this step (0 unless Config.Aggregate).
	Envelopes int
	// CoalescedGhosts is the number of ghost messages those envelopes
	// carried (== CrossPEMessages when aggregating).
	CoalescedGhosts int
}

// Fractions of the wire cost charged on the simulating machine: the
// sender pays injection overhead immediately; the receiver pays
// handling time at the start of its next step. (Wire latency itself
// overlaps with the step's computation.)
const (
	sendOverheadFrac = 0.1
	recvOverheadFrac = 0.15
)

// Simulator runs the target machine.
type Simulator struct {
	cfg    Config
	procs  []*tproc
	byPE   [][]*tproc
	clocks []*simclock.Clock
	lat    comm.LatencyModel
	prof   *platform.Profile

	// mail[i] counts ghosts delivered to target proc i for the next
	// step (contents abstracted: MD forces are modeled work). Atomic:
	// StepParallel posts from all simulating PEs concurrently.
	mail []atomic.Int64

	// recvPending[pe] accumulates message-handling time (float64
	// bits) each simulating PE owes at the start of its next step.
	recvPending []atomic.Uint64

	// Target-time prediction: ghost arrival times (target clock,
	// float64 bits) for the current and next step, double-buffered so
	// a step's posts constrain only the *next* step.
	arrNow  []atomic.Uint64
	arrNext []atomic.Uint64

	stepCross, stepIntra atomic.Int64

	// Streaming aggregation (Config.Aggregate). aggCount[src][dst]
	// counts ghosts coalesced into the (src,dst) envelope this step;
	// aggPend[src][dst] is the receiver handling the envelope charges
	// at the next step's start. Each row is touched only by the
	// goroutine driving PE src (plain, not atomic), and the prologue
	// drains aggPend in (src,dst) order so the receiver's float adds
	// are deterministic under both drivers.
	aggCount [][]int64
	aggPend  [][]float64

	stepEnvelopes, stepCoalesced atomic.Int64
}

// atomicMaxFloat raises a (float64-bits) atomic to at least v.
func atomicMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicAddFloat adds v to a float64-bits atomic.
func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// New builds the simulator: T = X*Y*Z target threads block-mapped
// onto SimPEs simulating processors.
func New(cfg Config) (*Simulator, error) {
	if cfg.X < 1 || cfg.Y < 1 || cfg.Z < 1 {
		return nil, fmt.Errorf("bigsim: bad torus %dx%dx%d", cfg.X, cfg.Y, cfg.Z)
	}
	if cfg.SimPEs < 1 {
		return nil, fmt.Errorf("bigsim: SimPEs %d must be ≥ 1", cfg.SimPEs)
	}
	if cfg.Latency == (comm.LatencyModel{}) {
		cfg.Latency = comm.DefaultLatency
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.AlphaES45()
	}
	if cfg.TargetWorkNs == 0 {
		cfg.TargetWorkNs = 3000
	}
	if cfg.TargetLatency == (comm.LatencyModel{}) {
		cfg.TargetLatency = comm.LatencyModel{Alpha: 5000, BetaPerByte: 1}
	}
	t := cfg.X * cfg.Y * cfg.Z
	if t < cfg.SimPEs {
		return nil, fmt.Errorf("bigsim: %d target processors on %d simulating PEs", t, cfg.SimPEs)
	}
	s := &Simulator{
		cfg:         cfg,
		byPE:        make([][]*tproc, cfg.SimPEs),
		clocks:      make([]*simclock.Clock, cfg.SimPEs),
		lat:         cfg.Latency,
		prof:        cfg.Platform,
		mail:        make([]atomic.Int64, t),
		recvPending: make([]atomic.Uint64, cfg.SimPEs),
		arrNow:      make([]atomic.Uint64, t),
		arrNext:     make([]atomic.Uint64, t),
	}
	for pe := range s.clocks {
		s.clocks[pe] = simclock.New()
	}
	if cfg.Aggregate {
		s.aggCount = make([][]int64, cfg.SimPEs)
		s.aggPend = make([][]float64, cfg.SimPEs)
		for pe := range s.aggCount {
			s.aggCount[pe] = make([]int64, cfg.SimPEs)
			s.aggPend[pe] = make([]float64, cfg.SimPEs)
		}
	}
	for i := 0; i < t; i++ {
		// Block mapping: contiguous slabs of the torus per PE.
		pe := i * cfg.SimPEs / t
		p := &tproc{
			id: i, simPE: pe,
			resume: make(chan struct{}),
			parked: make(chan struct{}),
		}
		s.procs = append(s.procs, p)
		s.byPE[pe] = append(s.byPE[pe], p)
		go s.run(p)
	}
	return s, nil
}

// NumTargets returns the simulated processor count.
func (s *Simulator) NumTargets() int { return len(s.procs) }

// coords maps a target id to torus coordinates.
func (s *Simulator) coords(id int) (x, y, z int) {
	x = id % s.cfg.X
	y = (id / s.cfg.X) % s.cfg.Y
	z = id / (s.cfg.X * s.cfg.Y)
	return
}

// neighbor returns the torus neighbour of id along (dx,dy,dz).
func (s *Simulator) neighbor(id, dx, dy, dz int) int {
	x, y, z := s.coords(id)
	x = (x + dx + s.cfg.X) % s.cfg.X
	y = (y + dy + s.cfg.Y) % s.cfg.Y
	z = (z + dz + s.cfg.Z) % s.cfg.Z
	return x + s.cfg.X*(y+s.cfg.Y*z)
}

// run is a target thread's life: each resume executes one timestep
// (compute + post ghosts) and parks — the MD flow of control.
func (s *Simulator) run(p *tproc) {
	for {
		<-p.resume
		if p.done {
			p.parked <- struct{}{}
			return
		}
		clock := s.clocks[p.simPE]
		// User-level thread dispatch cost for this flow.
		clock.Advance(s.prof.UThreadSwitch.At(len(s.byPE[p.simPE])))
		// Force computation over the cell's atoms.
		clock.Advance(float64(s.cfg.AtomsPerCell) * s.cfg.WorkPerAtomNs)
		// Target-machine prediction: this step cannot begin before
		// last step's ghosts arrived on the target network, and costs
		// the target processor its per-cell work.
		if arr := math.Float64frombits(s.arrNow[p.id].Load()); arr > p.tclock {
			p.tclock = arr
		}
		p.tclock += s.cfg.TargetWorkNs
		// Ghost exchange with the six torus neighbours.
		for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			s.post(p, s.neighbor(p.id, d[0], d[1], d[2]))
		}
		p.steps++
		p.parked <- struct{}{}
	}
}

// post records a ghost message from p to target proc dst and charges
// send/receive costs.
func (s *Simulator) post(p *tproc, dst int) {
	s.mail[dst].Add(1)
	// Target-network arrival constrains dst's NEXT step on the
	// target machine (always over the target network: every cell is
	// its own target processor).
	atomicMaxFloat(&s.arrNext[dst], p.tclock+s.cfg.TargetLatency.Cost(s.cfg.GhostBytes))
	dpe := s.procs[dst].simPE
	if dpe == p.simPE {
		// Intra-PE: a queue operation, no wire.
		s.clocks[p.simPE].Advance(120)
		s.stepIntra.Add(1)
		return
	}
	s.stepCross.Add(1)
	if s.cfg.Aggregate {
		// Coalesce into the (src,dst) envelope; costs are charged when
		// the envelope flushes at the end of this PE's turn.
		s.aggCount[p.simPE][dpe]++
		return
	}
	// Cross-PE, per-message: the sender pays injection overhead now;
	// the receiver pays handling time at the start of its next step.
	// (Wire latency itself overlaps with the step's computation.)
	cost := s.lat.Cost(s.cfg.GhostBytes)
	s.clocks[p.simPE].Advance(cost * sendOverheadFrac)
	atomicAddFloat(&s.recvPending[dpe], cost*recvOverheadFrac)
}

// flushAgg sends PE pe's coalesced envelopes: one per destination PE
// with buffered ghosts, costing one Alpha plus the summed payload
// bytes. The sender's injection overhead lands on its clock now; the
// receiver's handling share is parked in aggPend for the next
// prologue.
func (s *Simulator) flushAgg(pe int) {
	for dpe, n := range s.aggCount[pe] {
		if n == 0 {
			continue
		}
		cost := s.lat.Cost(int(n) * s.cfg.GhostBytes)
		s.clocks[pe].Advance(cost * sendOverheadFrac)
		s.aggPend[pe][dpe] += cost * recvOverheadFrac
		s.stepEnvelopes.Add(1)
		s.stepCoalesced.Add(n)
		s.aggCount[pe][dpe] = 0
	}
}

// stepPrologue resets per-step state and returns the pre-step clock
// and target-time marks.
func (s *Simulator) stepPrologue() (before []float64, tBefore float64) {
	s.stepCross.Store(0)
	s.stepIntra.Store(0)
	s.stepEnvelopes.Store(0)
	s.stepCoalesced.Store(0)
	before = make([]float64, len(s.clocks))
	for pe, c := range s.clocks {
		before[pe] = c.Now()
	}
	// Validate the previous step's exchange completed: every cell has
	// its six ghosts (except before the first step).
	if s.procs[0].steps > 0 {
		for i := range s.mail {
			if n := s.mail[i].Load(); n != 6 {
				panic(fmt.Sprintf("bigsim: cell %d has %d ghosts, want 6", i, n))
			}
			s.mail[i].Store(0)
		}
	}
	// Rotate the target-arrival buffers: last step's posts constrain
	// this step.
	s.arrNow, s.arrNext = s.arrNext, s.arrNow
	for i := range s.arrNext {
		s.arrNext[i].Store(0)
	}
	for _, p := range s.procs {
		if p.tclock > tBefore {
			tBefore = p.tclock
		}
	}
	// Drain every PE's inbound ghost handling before any PE runs:
	// last step's cross-PE messages are charged at this step's start,
	// independent of the order (or concurrency) in which PEs execute.
	for pe := range s.recvPending {
		s.clocks[pe].Advance(math.Float64frombits(s.recvPending[pe].Swap(0)))
	}
	// Same, for last step's coalesced envelopes — drained in fixed
	// (src,dst) order so receiver clocks advance identically under the
	// serial and parallel drivers.
	for src := range s.aggPend {
		for dst, pend := range s.aggPend[src] {
			if pend != 0 {
				s.clocks[dst].Advance(pend)
				s.aggPend[src][dst] = 0
			}
		}
	}
	return before, tBefore
}

// runPE runs one simulating PE's resident target threads serially.
func (s *Simulator) runPE(pe int) {
	for _, p := range s.byPE[pe] {
		p.resume <- struct{}{}
		<-p.parked
	}
	if s.cfg.Aggregate {
		s.flushAgg(pe)
	}
}

func (s *Simulator) stepEpilogue(before []float64, tBefore float64) StepStats {
	var maxDelta float64
	for pe, c := range s.clocks {
		if d := c.Now() - before[pe]; d > maxDelta {
			maxDelta = d
		}
	}
	var tAfter float64
	for _, p := range s.procs {
		if p.tclock > tAfter {
			tAfter = p.tclock
		}
	}
	return StepStats{
		Step:              s.procs[0].steps,
		TimeNs:            maxDelta,
		PredictedTargetNs: tAfter - tBefore,
		CrossPEMessages:   int(s.stepCross.Load()),
		IntraPEMessages:   int(s.stepIntra.Load()),
		Envelopes:         int(s.stepEnvelopes.Load()),
		CoalescedGhosts:   int(s.stepCoalesced.Load()),
	}
}

// Step advances the whole target machine one MD timestep, driving the
// simulating PEs from this goroutine (deterministic).
func (s *Simulator) Step() StepStats {
	before, tBefore := s.stepPrologue()
	for pe := range s.byPE {
		s.runPE(pe)
	}
	return s.stepEpilogue(before, tBefore)
}

// StepParallel advances one timestep with every simulating PE driven
// by its own goroutine — real SMP execution of the simulation, which
// non-exclusive (isomalloc-style) threads permit: "multiple threads
// can run simultaneously, which allows the straightforward
// exploitation of SMP machines". Virtual results, including the
// target-time prediction, are identical to Step.
func (s *Simulator) StepParallel() StepStats {
	before, tBefore := s.stepPrologue()
	var wg sync.WaitGroup
	for pe := range s.byPE {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			s.runPE(pe)
		}(pe)
	}
	wg.Wait()
	return s.stepEpilogue(before, tBefore)
}

// Run executes steps timesteps and returns per-step stats.
func (s *Simulator) Run(steps int) []StepStats {
	out := make([]StepStats, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, s.Step())
	}
	return out
}

// RunParallel executes steps timesteps with the parallel driver.
func (s *Simulator) RunParallel(steps int) []StepStats {
	out := make([]StepStats, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, s.StepParallel())
	}
	return out
}

// Close terminates the target threads.
func (s *Simulator) Close() {
	for _, p := range s.procs {
		p.done = true
		p.resume <- struct{}{}
		<-p.parked
	}
}

// MeanStepTime averages TimeNs over stats (skipping the warm-up first
// step, which has no inbound ghosts).
func MeanStepTime(stats []StepStats) float64 {
	if len(stats) <= 1 {
		if len(stats) == 1 {
			return stats[0].TimeNs
		}
		return 0
	}
	var sum float64
	for _, st := range stats[1:] {
		sum += st.TimeNs
	}
	return sum / float64(len(stats)-1)
}
