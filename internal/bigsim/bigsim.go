// Package bigsim is a BigSim-like parallel machine simulator (§4.4):
// it predicts the per-timestep behaviour of a molecular-dynamics-style
// application running on a huge *target* machine (e.g. 200,000
// processors) using a much smaller *simulating* machine — by giving
// every simulated target processor its own flow of control, exactly
// the many-flows-per-processor scenario the paper motivates ("50,000
// separate target processors ... clearly not feasible using either
// processes or kernel threads").
//
// Each target processor owns one patch of an X×Y×Z torus of atom
// cells. Per timestep it computes forces (modeled work proportional
// to its atoms) and exchanges ghost atoms with its six torus
// neighbours. The simulating machine's virtual clocks record each
// simulating PE's serial execution of its resident target flows,
// so "simulation time per step" is max-over-PEs of (compute + flow
// dispatch + message handling) — the quantity Figure 11 plots
// against the number of simulating processors.
//
// Two execution backends realize the paper's flows comparison
// end-to-end (Config.Mode):
//
//   - "ult" (default): one user-level thread — here a parked
//     goroutine — per target processor. Each activation costs the
//     platform's UThreadSwitch curve plus two real channel handoffs,
//     and each flow keeps a stack alive.
//   - "event": each target processor is a plain state struct whose
//     per-step body the owning simulating PE's loop runs inline — a
//     message-driven object in the Charm++ sense. No goroutine, no
//     channels, no stack; each activation costs the (much cheaper)
//     EventDispatch curve. This is what lets the simulator reach the
//     paper's 200,000-target scale in modest memory.
//
// Both backends share one step-body implementation, so the predicted
// target-machine time and all logical message counts are bit-identical
// across modes — only the simulating machine's cost (and real wall
// clock/memory) differ.
package bigsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/platform"
	"migflow/internal/simclock"
)

// Config sizes the simulation.
type Config struct {
	// Target torus dimensions: X*Y*Z target processors.
	X, Y, Z int
	// SimPEs is the number of simulating processors.
	SimPEs int
	// AtomsPerCell scales per-step compute work.
	AtomsPerCell int
	// WorkPerAtomNs is modeled force-computation cost per atom per
	// step.
	WorkPerAtomNs float64
	// GhostBytes is the per-neighbour ghost message size.
	GhostBytes int
	// Latency models the simulating machine's interconnect; zero
	// value selects comm.DefaultLatency.
	Latency comm.LatencyModel
	// Platform supplies flow dispatch costs; nil selects Alpha ES45
	// (LeMieux, the machine of Figure 11).
	Platform *platform.Profile

	// Mode selects the execution backend: ModeULT ("ult", the
	// default; the zero value "" selects it) runs one parked goroutine
	// per target processor charging Platform.UThreadSwitch per
	// activation, ModeEvent ("event") runs each target processor's
	// step body inline on the owning simulating PE's loop charging
	// Platform.EventDispatch. Any other string is rejected by New.
	Mode string

	// Aggregate coalesces each simulating PE's cross-PE ghost traffic
	// per destination PE per step (TRAM-style streaming aggregation):
	// one envelope of n·GhostBytes replaces n individual messages, so
	// the simulating machine pays one Alpha plus the summed per-byte
	// cost per (src,dst) PE pair instead of n Alphas. Only the
	// simulating-machine cost model changes — the target-machine
	// prediction stays per-message and is bit-identical either way.
	Aggregate bool

	// Target machine model — what BigSim *predicts*. TargetWorkNs is
	// the per-cell compute time per step on one target processor;
	// TargetLatency is the target interconnect. Zero values select a
	// Blue-Gene-like node: 3 µs of work per cell, 5 µs + 1 ns/byte
	// links.
	TargetWorkNs  float64
	TargetLatency comm.LatencyModel
}

// Execution backends for Config.Mode.
const (
	// ModeULT gives every target processor a user-level thread (a
	// parked goroutine): real stacks, real handoffs, UThreadSwitch
	// dispatch cost — the paper's heavier flow.
	ModeULT = "ult"
	// ModeEvent runs every target processor as a scheduler-dispatched
	// event object: no goroutine, no channels, EventDispatch cost —
	// the paper's cheapest flow, and the only one that reaches
	// 200,000 targets in modest memory.
	ModeEvent = "event"
)

// DefaultConfig returns a small but representative configuration.
func DefaultConfig() Config {
	return Config{
		X: 20, Y: 20, Z: 10, SimPEs: 4,
		AtomsPerCell: 200, WorkPerAtomNs: 25,
		GhostBytes: 2048,
	}
}

// tproc is one simulated target processor owning one torus cell. In
// ULT mode it is the state of a parked goroutine (resume/parked are
// its handoff channels); in event mode it is the whole flow — a plain
// state struct whose step body the owning PE runs inline.
type tproc struct {
	id     int32
	simPE  int32
	resume chan struct{} // nil in event mode
	parked chan struct{} // nil in event mode
	steps  int
	done   bool

	// nbrs caches the six torus neighbour ids (+x,-x,+y,-y,+z,-z),
	// computed once in New instead of redoing coords/modulo math on
	// every post of every step.
	nbrs [6]int32

	// tclock is the *target* machine's virtual time on this target
	// processor — the quantity BigSim exists to predict. It advances
	// by target work and waits on target message arrivals,
	// independently of how target processors are packed onto
	// simulating PEs.
	tclock float64
}

// StepStats reports one simulated timestep.
type StepStats struct {
	Step int
	// TimeNs is the simulation time for the step: the maximum over
	// simulating PEs of their virtual execution time (Figure 11's
	// y-axis).
	TimeNs float64
	// PredictedTargetNs is the *predicted target machine* time for
	// the step — BigSim's output. It must be identical no matter how
	// many simulating PEs run the simulation.
	PredictedTargetNs float64
	// Messages crossed between simulating PEs this step.
	CrossPEMessages int
	// IntraPEMessages stayed within one simulating PE.
	IntraPEMessages int
	// Envelopes is the number of coalesced cross-PE envelopes sent
	// this step (0 unless Config.Aggregate).
	Envelopes int
	// CoalescedGhosts is the number of ghost messages those envelopes
	// carried (== CrossPEMessages when aggregating).
	CoalescedGhosts int
}

// Fractions of the wire cost charged on the simulating machine: the
// sender pays injection overhead immediately; the receiver pays
// handling time at the start of its next step. (Wire latency itself
// overlaps with the step's computation.)
const (
	sendOverheadFrac = 0.1
	recvOverheadFrac = 0.15
)

// Simulator runs the target machine.
type Simulator struct {
	cfg    Config
	event  bool    // Mode == ModeEvent
	store  []tproc // all tprocs, one contiguous allocation
	procs  []*tproc
	byPE   [][]*tproc
	clocks []*simclock.Clock
	lat    comm.LatencyModel
	prof   *platform.Profile

	// dispatch[pe] is the per-activation flow-dispatch cost on
	// simulating PE pe — UThreadSwitch.At(flows) in ULT mode,
	// EventDispatch.At(flows) in event mode. The resident flow count
	// is fixed after New, so this is precomputed once.
	dispatch []float64
	// workNs is the per-step force-computation cost of one cell.
	workNs float64

	// mail[i] counts ghosts delivered to target proc i for the next
	// step (contents abstracted: MD forces are modeled work). Atomic:
	// StepParallel posts from all simulating PEs concurrently.
	mail []atomic.Int64

	// recvPending[pe] accumulates message-handling time (float64
	// bits) each simulating PE owes at the start of its next step.
	recvPending []atomic.Uint64

	// Target-time prediction: ghost arrival times (target clock,
	// float64 bits) for the current and next step, double-buffered so
	// a step's posts constrain only the *next* step.
	arrNow  []atomic.Uint64
	arrNext []atomic.Uint64

	stepCross, stepIntra atomic.Int64

	// Streaming aggregation (Config.Aggregate). aggCount[src][dst]
	// counts ghosts coalesced into the (src,dst) envelope this step;
	// aggPend[src][dst] is the receiver handling the envelope charges
	// at the next step's start. Each row is touched only by the
	// goroutine driving PE src (plain, not atomic), and the prologue
	// drains aggPend in (src,dst) order so the receiver's float adds
	// are deterministic under both drivers.
	aggCount [][]int64
	aggPend  [][]float64

	stepEnvelopes, stepCoalesced atomic.Int64
}

// atomicMaxFloat raises a (float64-bits) atomic to at least v.
func atomicMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicAddFloat adds v to a float64-bits atomic.
func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// New builds the simulator: T = X*Y*Z target flows block-mapped
// onto SimPEs simulating processors.
func New(cfg Config) (*Simulator, error) {
	if cfg.X < 1 || cfg.Y < 1 || cfg.Z < 1 {
		return nil, fmt.Errorf("bigsim: bad torus %dx%dx%d", cfg.X, cfg.Y, cfg.Z)
	}
	if cfg.SimPEs < 1 {
		return nil, fmt.Errorf("bigsim: SimPEs %d must be ≥ 1", cfg.SimPEs)
	}
	switch cfg.Mode {
	case "", ModeULT:
		cfg.Mode = ModeULT
	case ModeEvent:
	default:
		return nil, fmt.Errorf("bigsim: unknown Mode %q (want %q or %q; empty selects %q)",
			cfg.Mode, ModeULT, ModeEvent, ModeULT)
	}
	if cfg.Latency == (comm.LatencyModel{}) {
		cfg.Latency = comm.DefaultLatency
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.AlphaES45()
	}
	if cfg.TargetWorkNs == 0 {
		cfg.TargetWorkNs = 3000
	}
	if cfg.TargetLatency == (comm.LatencyModel{}) {
		cfg.TargetLatency = comm.LatencyModel{Alpha: 5000, BetaPerByte: 1}
	}
	t := cfg.X * cfg.Y * cfg.Z
	if t < cfg.SimPEs {
		return nil, fmt.Errorf("bigsim: %d target processors on %d simulating PEs", t, cfg.SimPEs)
	}
	s := &Simulator{
		cfg:         cfg,
		event:       cfg.Mode == ModeEvent,
		store:       make([]tproc, t),
		procs:       make([]*tproc, 0, t),
		byPE:        make([][]*tproc, cfg.SimPEs),
		clocks:      make([]*simclock.Clock, cfg.SimPEs),
		lat:         cfg.Latency,
		prof:        cfg.Platform,
		dispatch:    make([]float64, cfg.SimPEs),
		workNs:      float64(cfg.AtomsPerCell) * cfg.WorkPerAtomNs,
		mail:        make([]atomic.Int64, t),
		recvPending: make([]atomic.Uint64, cfg.SimPEs),
		arrNow:      make([]atomic.Uint64, t),
		arrNext:     make([]atomic.Uint64, t),
	}
	for pe := range s.clocks {
		s.clocks[pe] = simclock.New()
	}
	if cfg.Aggregate {
		s.aggCount = make([][]int64, cfg.SimPEs)
		s.aggPend = make([][]float64, cfg.SimPEs)
		for pe := range s.aggCount {
			s.aggCount[pe] = make([]int64, cfg.SimPEs)
			s.aggPend[pe] = make([]float64, cfg.SimPEs)
		}
	}
	for i := 0; i < t; i++ {
		// Block mapping: contiguous slabs of the torus per PE.
		pe := i * cfg.SimPEs / t
		p := &s.store[i]
		p.id, p.simPE = int32(i), int32(pe)
		for d, dir := range torusDirs {
			p.nbrs[d] = int32(s.neighbor(i, dir[0], dir[1], dir[2]))
		}
		s.procs = append(s.procs, p)
		s.byPE[pe] = append(s.byPE[pe], p)
	}
	for pe := range s.byPE {
		flows := len(s.byPE[pe])
		if s.event {
			s.dispatch[pe] = s.prof.EventDispatch.At(flows)
		} else {
			s.dispatch[pe] = s.prof.UThreadSwitch.At(flows)
		}
	}
	if !s.event {
		// ULT mode: park one goroutine per target processor.
		for _, p := range s.procs {
			p.resume = make(chan struct{})
			p.parked = make(chan struct{})
			go s.run(p)
		}
	}
	return s, nil
}

// NumTargets returns the simulated processor count.
func (s *Simulator) NumTargets() int { return len(s.procs) }

// Mode returns the resolved execution backend ("ult" or "event").
func (s *Simulator) Mode() string { return s.cfg.Mode }

// coords maps a target id to torus coordinates.
func (s *Simulator) coords(id int) (x, y, z int) {
	x = id % s.cfg.X
	y = (id / s.cfg.X) % s.cfg.Y
	z = id / (s.cfg.X * s.cfg.Y)
	return
}

// torusDirs are the six ghost-exchange directions, in the fixed
// (+x,-x,+y,-y,+z,-z) order both backends post in.
var torusDirs = [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}

// neighbor returns the torus neighbour of id along (dx,dy,dz).
func (s *Simulator) neighbor(id, dx, dy, dz int) int {
	x, y, z := s.coords(id)
	x = (x + dx + s.cfg.X) % s.cfg.X
	y = (y + dy + s.cfg.Y) % s.cfg.Y
	z = (z + dz + s.cfg.Z) % s.cfg.Z
	return x + s.cfg.X*(y+s.cfg.Y*z)
}

// stepBody is one target processor's MD timestep — compute, target
// clock, ghost posts — shared verbatim by both backends, so the
// target-machine prediction and message counts cannot depend on the
// mode. Only the flow-dispatch cost charged to the simulating PE's
// clock (s.dispatch, fixed in New) differs between backends.
func (s *Simulator) stepBody(p *tproc) {
	clock := s.clocks[p.simPE]
	// Flow dispatch cost: ULT switch or event dispatch.
	clock.Advance(s.dispatch[p.simPE])
	// Force computation over the cell's atoms.
	clock.Advance(s.workNs)
	// Target-machine prediction: this step cannot begin before
	// last step's ghosts arrived on the target network, and costs
	// the target processor its per-cell work.
	if arr := math.Float64frombits(s.arrNow[p.id].Load()); arr > p.tclock {
		p.tclock = arr
	}
	p.tclock += s.cfg.TargetWorkNs
	// Ghost exchange with the six torus neighbours (precomputed ids).
	for _, nb := range p.nbrs {
		s.post(p, nb)
	}
	p.steps++
}

// run is a ULT-mode target thread's life: each resume executes one
// timestep and parks — the MD flow of control as a real (goroutine)
// flow with a live stack and two channel handoffs per activation.
func (s *Simulator) run(p *tproc) {
	for {
		<-p.resume
		if p.done {
			p.parked <- struct{}{}
			return
		}
		s.stepBody(p)
		p.parked <- struct{}{}
	}
}

// post records a ghost message from p to target proc dst and charges
// send/receive costs.
func (s *Simulator) post(p *tproc, dst int32) {
	s.mail[dst].Add(1)
	// Target-network arrival constrains dst's NEXT step on the
	// target machine (always over the target network: every cell is
	// its own target processor).
	atomicMaxFloat(&s.arrNext[dst], p.tclock+s.cfg.TargetLatency.Cost(s.cfg.GhostBytes))
	dpe := s.store[dst].simPE
	if dpe == p.simPE {
		// Intra-PE: a queue operation, no wire.
		s.clocks[p.simPE].Advance(120)
		s.stepIntra.Add(1)
		return
	}
	s.stepCross.Add(1)
	if s.cfg.Aggregate {
		// Coalesce into the (src,dst) envelope; costs are charged when
		// the envelope flushes at the end of this PE's turn.
		s.aggCount[p.simPE][dpe]++
		return
	}
	// Cross-PE, per-message: the sender pays injection overhead now;
	// the receiver pays handling time at the start of its next step.
	// (Wire latency itself overlaps with the step's computation.)
	cost := s.lat.Cost(s.cfg.GhostBytes)
	s.clocks[p.simPE].Advance(cost * sendOverheadFrac)
	atomicAddFloat(&s.recvPending[dpe], cost*recvOverheadFrac)
}

// flushAgg sends PE pe's coalesced envelopes: one per destination PE
// with buffered ghosts, costing one Alpha plus the summed payload
// bytes. The sender's injection overhead lands on its clock now; the
// receiver's handling share is parked in aggPend for the next
// prologue.
func (s *Simulator) flushAgg(pe int) {
	for dpe, n := range s.aggCount[pe] {
		if n == 0 {
			continue
		}
		cost := s.lat.Cost(int(n) * s.cfg.GhostBytes)
		s.clocks[pe].Advance(cost * sendOverheadFrac)
		s.aggPend[pe][dpe] += cost * recvOverheadFrac
		s.stepEnvelopes.Add(1)
		s.stepCoalesced.Add(n)
		s.aggCount[pe][dpe] = 0
	}
}

// stepPrologue resets per-step state and returns the pre-step clock
// and target-time marks.
func (s *Simulator) stepPrologue() (before []float64, tBefore float64) {
	s.stepCross.Store(0)
	s.stepIntra.Store(0)
	s.stepEnvelopes.Store(0)
	s.stepCoalesced.Store(0)
	before = make([]float64, len(s.clocks))
	for pe, c := range s.clocks {
		before[pe] = c.Now()
	}
	// Validate the previous step's exchange completed: every cell has
	// its six ghosts (except before the first step).
	if s.procs[0].steps > 0 {
		for i := range s.mail {
			if n := s.mail[i].Load(); n != 6 {
				panic(fmt.Sprintf("bigsim: cell %d has %d ghosts, want 6", i, n))
			}
			s.mail[i].Store(0)
		}
	}
	// Rotate the target-arrival buffers: last step's posts constrain
	// this step.
	s.arrNow, s.arrNext = s.arrNext, s.arrNow
	for i := range s.arrNext {
		s.arrNext[i].Store(0)
	}
	for _, p := range s.procs {
		if p.tclock > tBefore {
			tBefore = p.tclock
		}
	}
	// Drain every PE's inbound ghost handling before any PE runs:
	// last step's cross-PE messages are charged at this step's start,
	// independent of the order (or concurrency) in which PEs execute.
	for pe := range s.recvPending {
		s.clocks[pe].Advance(math.Float64frombits(s.recvPending[pe].Swap(0)))
	}
	// Same, for last step's coalesced envelopes — drained in fixed
	// (src,dst) order so receiver clocks advance identically under the
	// serial and parallel drivers.
	for src := range s.aggPend {
		for dst, pend := range s.aggPend[src] {
			if pend != 0 {
				s.clocks[dst].Advance(pend)
				s.aggPend[src][dst] = 0
			}
		}
	}
	return before, tBefore
}

// runPE runs one simulating PE's resident target flows serially: in
// ULT mode by handing control to each parked goroutine in turn, in
// event mode by dispatching each flow's step body inline — the
// event-driven scheduler loop, with no control transfer at all.
func (s *Simulator) runPE(pe int) {
	if s.event {
		for _, p := range s.byPE[pe] {
			s.stepBody(p)
		}
	} else {
		for _, p := range s.byPE[pe] {
			p.resume <- struct{}{}
			<-p.parked
		}
	}
	if s.cfg.Aggregate {
		s.flushAgg(pe)
	}
}

func (s *Simulator) stepEpilogue(before []float64, tBefore float64) StepStats {
	var maxDelta float64
	for pe, c := range s.clocks {
		if d := c.Now() - before[pe]; d > maxDelta {
			maxDelta = d
		}
	}
	var tAfter float64
	for _, p := range s.procs {
		if p.tclock > tAfter {
			tAfter = p.tclock
		}
	}
	return StepStats{
		Step:              s.procs[0].steps,
		TimeNs:            maxDelta,
		PredictedTargetNs: tAfter - tBefore,
		CrossPEMessages:   int(s.stepCross.Load()),
		IntraPEMessages:   int(s.stepIntra.Load()),
		Envelopes:         int(s.stepEnvelopes.Load()),
		CoalescedGhosts:   int(s.stepCoalesced.Load()),
	}
}

// Step advances the whole target machine one MD timestep, driving the
// simulating PEs from this goroutine (deterministic).
func (s *Simulator) Step() StepStats {
	before, tBefore := s.stepPrologue()
	for pe := range s.byPE {
		s.runPE(pe)
	}
	return s.stepEpilogue(before, tBefore)
}

// StepParallel advances one timestep with every simulating PE driven
// by its own goroutine — real SMP execution of the simulation, which
// non-exclusive (isomalloc-style) threads permit: "multiple threads
// can run simultaneously, which allows the straightforward
// exploitation of SMP machines". Virtual results, including the
// target-time prediction, are identical to Step.
func (s *Simulator) StepParallel() StepStats {
	before, tBefore := s.stepPrologue()
	var wg sync.WaitGroup
	for pe := range s.byPE {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			s.runPE(pe)
		}(pe)
	}
	wg.Wait()
	return s.stepEpilogue(before, tBefore)
}

// Run executes steps timesteps and returns per-step stats.
func (s *Simulator) Run(steps int) []StepStats {
	out := make([]StepStats, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, s.Step())
	}
	return out
}

// RunParallel executes steps timesteps with the parallel driver.
func (s *Simulator) RunParallel(steps int) []StepStats {
	out := make([]StepStats, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, s.StepParallel())
	}
	return out
}

// Close terminates the target flows (a no-op in event mode, which
// has no goroutines to unwind).
func (s *Simulator) Close() {
	if s.event {
		return
	}
	for _, p := range s.procs {
		p.done = true
		p.resume <- struct{}{}
		<-p.parked
	}
}

// MeanStepTime averages TimeNs over stats (skipping the warm-up first
// step, which has no inbound ghosts).
func MeanStepTime(stats []StepStats) float64 {
	if len(stats) <= 1 {
		if len(stats) == 1 {
			return stats[0].TimeNs
		}
		return 0
	}
	var sum float64
	for _, st := range stats[1:] {
		sum += st.TimeNs
	}
	return sum / float64(len(stats)-1)
}
