package bigsim

import (
	"fmt"
	"os"
	"runtime"
	"testing"
)

// benchConfig is the bench-bigsim workload: light per-cell compute so
// the measured ns/step is dominated by the per-flow machinery the two
// backends differ in (dispatch, handoffs, posts).
func benchConfig(mode string, x, y, z, pes int) Config {
	return Config{
		X: x, Y: y, Z: z, SimPEs: pes,
		AtomsPerCell: 10, WorkPerAtomNs: 5, GhostBytes: 1024,
		Mode: mode,
	}
}

// measureFootprint returns resident bytes (heap + goroutine stacks)
// and goroutines per flow for a freshly built, once-stepped simulator.
func measureFootprint(b *testing.B, cfg Config) (bytesPerFlow, goroutinesPerFlow float64) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Step() // fault in stacks, mail, arrival buffers
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	g1 := runtime.NumGoroutine()
	flows := float64(s.NumTargets())
	resident := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
	if resident < 0 {
		resident = 0
	}
	s.Close()
	return float64(resident) / flows, float64(g1-g0) / flows
}

// BenchmarkBigSimStep is the backend A/B at the heart of this PR:
// wall-clock ns per simulated step (ns/op) and per-flow resident
// bytes (B/flow) for the ULT and event backends at 12,800 targets,
// and for the event backend at the paper's 200,704-target scale. The
// ULT backend at paper scale needs a goroutine stack plus two
// channels per target (gigabytes, minutes); set BIGSIM_ULT_PAPER=1
// to run it anyway.
func BenchmarkBigSimStep(b *testing.B) {
	cases := []struct {
		mode    string
		x, y, z int
		pes     int
		gate    bool // skipped unless BIGSIM_ULT_PAPER is set
	}{
		{ModeULT, 40, 40, 8, 8, false},
		{ModeEvent, 40, 40, 8, 8, false},
		{ModeEvent, 64, 56, 56, 32, false},
		{ModeULT, 64, 56, 56, 32, true},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%s/t%d", c.mode, c.x*c.y*c.z)
		b.Run(name, func(b *testing.B) {
			if c.gate && os.Getenv("BIGSIM_ULT_PAPER") == "" {
				b.Skip("set BIGSIM_ULT_PAPER=1 to run the ULT backend at paper scale")
			}
			cfg := benchConfig(c.mode, c.x, c.y, c.z, c.pes)
			bpf, gpf := measureFootprint(b, cfg)
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.Step() // warm up: first step has no inbound ghosts
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.StopTimer()
			// Reported after the loop: ResetTimer discards metrics.
			b.ReportMetric(bpf, "B/flow")
			b.ReportMetric(gpf, "goroutines/flow")
		})
	}
}

// BenchmarkBigSimStepParallel measures the SMP driver at paper scale:
// real goroutine-per-simulating-PE execution of the event backend.
func BenchmarkBigSimStepParallel(b *testing.B) {
	cfg := benchConfig(ModeEvent, 64, 56, 56, 32)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.StepParallel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepParallel()
	}
}
