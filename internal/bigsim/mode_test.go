package bigsim

import (
	"math"
	"math/rand"
	"testing"
)

// runModeDriver builds a simulator and runs it with the given backend
// and driver, returning per-step stats.
func runModeDriver(t testing.TB, cfg Config, mode string, parallel bool, steps int) []StepStats {
	cfg.Mode = mode
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if parallel {
		return s.RunParallel(steps)
	}
	return s.Run(steps)
}

// TestCrossBackendEquivalence is the property test pinning the
// tentpole invariant: for randomized small toruses, SimPE counts,
// step counts, and Aggregate on/off, the predicted target-machine
// time is bit-identical and all logical message counts are equal
// between the "ult" and "event" backends and between the Step and
// StepParallel drivers — only the simulating-machine cost may differ.
func TestCrossBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		cfg := Config{
			X: 2 + rng.Intn(4), Y: 2 + rng.Intn(4), Z: 1 + rng.Intn(4),
			AtomsPerCell:  10 + rng.Intn(500),
			WorkPerAtomNs: float64(1 + rng.Intn(40)),
			GhostBytes:    64 << rng.Intn(5),
			Aggregate:     rng.Intn(2) == 1,
		}
		targets := cfg.X * cfg.Y * cfg.Z
		cfg.SimPEs = 1 + rng.Intn(targets)
		steps := 1 + rng.Intn(4)

		ref := runModeDriver(t, cfg, ModeULT, false, steps)
		for _, variant := range []struct {
			name     string
			mode     string
			parallel bool
		}{
			{"ult/parallel", ModeULT, true},
			{"event/serial", ModeEvent, false},
			{"event/parallel", ModeEvent, true},
		} {
			got := runModeDriver(t, cfg, variant.mode, variant.parallel, steps)
			for i := range ref {
				if math.Float64bits(got[i].PredictedTargetNs) != math.Float64bits(ref[i].PredictedTargetNs) {
					t.Errorf("trial %d (%+v) %s step %d: prediction %v, want %v (must be bit-identical)",
						trial, cfg, variant.name, i, got[i].PredictedTargetNs, ref[i].PredictedTargetNs)
				}
				if got[i].CrossPEMessages != ref[i].CrossPEMessages ||
					got[i].IntraPEMessages != ref[i].IntraPEMessages ||
					got[i].Envelopes != ref[i].Envelopes ||
					got[i].CoalescedGhosts != ref[i].CoalescedGhosts {
					t.Errorf("trial %d (%+v) %s step %d: traffic %+v, want %+v",
						trial, cfg, variant.name, i, got[i], ref[i])
				}
			}
		}

		// The prediction is also invariant across SimPE counts (BigSim's
		// defining property), in both backends.
		alt := cfg
		alt.SimPEs = 1 + rng.Intn(targets)
		for _, mode := range []string{ModeULT, ModeEvent} {
			got := runModeDriver(t, alt, mode, false, steps)
			for i := range ref {
				if math.Float64bits(got[i].PredictedTargetNs) != math.Float64bits(ref[i].PredictedTargetNs) {
					t.Errorf("trial %d %s: SimPEs %d→%d changed prediction at step %d: %v vs %v",
						trial, mode, cfg.SimPEs, alt.SimPEs, i, got[i].PredictedTargetNs, ref[i].PredictedTargetNs)
				}
			}
		}
	}
}

// TestEventModeCheaperDispatch pins the paper's flows comparison:
// with everything else equal, event dispatch (Base 90 ns on the Alpha)
// must yield a strictly smaller simulation time per step than ULT
// switching (Base 680 ns + log growth).
func TestEventModeCheaperDispatch(t *testing.T) {
	cfg := small(4)
	ult := runModeDriver(t, cfg, ModeULT, false, 3)
	evt := runModeDriver(t, cfg, ModeEvent, false, 3)
	for i := range ult {
		if !(evt[i].TimeNs < ult[i].TimeNs) {
			t.Errorf("step %d: event sim time %g not below ult %g", i, evt[i].TimeNs, ult[i].TimeNs)
		}
	}
}

// TestModeValidation: unknown Mode strings are rejected with a clear
// error; the zero value and "ult" select the goroutine backend.
func TestModeValidation(t *testing.T) {
	if _, err := New(Config{X: 2, Y: 2, Z: 1, SimPEs: 1, Mode: "fibers"}); err == nil {
		t.Error("unknown Mode accepted")
	}
	for _, mode := range []string{"", ModeULT, ModeEvent} {
		s, err := New(Config{X: 2, Y: 2, Z: 1, SimPEs: 1, Mode: mode})
		if err != nil {
			t.Fatalf("Mode %q rejected: %v", mode, err)
		}
		want := mode
		if want == "" {
			want = ModeULT
		}
		if s.Mode() != want {
			t.Errorf("Mode %q resolved to %q", mode, s.Mode())
		}
		s.Close()
	}
}

// TestEventModePaperScale runs the paper's headline configuration —
// 200,704 target processors (64×56×56), "clearly not feasible" as
// heavier flows — through the event backend. With ~88 B of state per
// flow and no goroutines this completes comfortably in CI, where the
// ULT backend would need a stack and two channels per target.
func TestEventModePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		X: 64, Y: 56, Z: 56, SimPEs: 32,
		AtomsPerCell: 10, WorkPerAtomNs: 5, GhostBytes: 1024,
		Mode: ModeEvent,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumTargets() != 200704 {
		t.Fatalf("targets = %d", s.NumTargets())
	}
	stats := s.RunParallel(2)
	st := stats[1]
	if st.CrossPEMessages+st.IntraPEMessages != 6*200704 {
		t.Errorf("total messages = %d, want %d", st.CrossPEMessages+st.IntraPEMessages, 6*200704)
	}
	if st.TimeNs <= 0 || st.PredictedTargetNs <= 0 {
		t.Errorf("times: sim %g, predicted %g", st.TimeNs, st.PredictedTargetNs)
	}
}

// TestEventParallelStress hammers the event backend's parallel driver
// (run under -race in CI): many PEs dispatching flows concurrently,
// with and without aggregation, must keep every step's ghost exchange
// complete (Step panics otherwise) and deterministic.
func TestEventParallelStress(t *testing.T) {
	for _, agg := range []bool{false, true} {
		cfg := Config{
			X: 8, Y: 8, Z: 4, SimPEs: 16,
			AtomsPerCell: 10, WorkPerAtomNs: 3, GhostBytes: 256,
			Aggregate: agg, Mode: ModeEvent,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats := s.RunParallel(8)
		s.Close()
		ref := runModeDriver(t, cfg, ModeEvent, false, 8)
		for i := range stats {
			if stats[i] != ref[i] {
				t.Errorf("agg=%v step %d: parallel %+v vs serial %+v", agg, i, stats[i], ref[i])
			}
		}
	}
}
