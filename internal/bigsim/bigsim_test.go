package bigsim

import (
	"testing"
)

func small(simPEs int) Config {
	return Config{
		X: 8, Y: 8, Z: 4, SimPEs: simPEs,
		AtomsPerCell: 2000, WorkPerAtomNs: 20,
		GhostBytes: 512,
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{X: 0, Y: 1, Z: 1, SimPEs: 1}); err == nil {
		t.Error("bad torus accepted")
	}
	if _, err := New(Config{X: 2, Y: 2, Z: 1, SimPEs: 0}); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := New(Config{X: 1, Y: 1, Z: 1, SimPEs: 4}); err == nil {
		t.Error("fewer targets than PEs accepted")
	}
}

func TestTorusNeighbors(t *testing.T) {
	s, err := New(small(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Wraparound along x from cell 0: -1 → x = 7.
	if got := s.neighbor(0, -1, 0, 0); got != 7 {
		t.Errorf("neighbor(0,-1,0,0) = %d, want 7", got)
	}
	if got := s.neighbor(0, 0, -1, 0); got != 8*7 {
		t.Errorf("neighbor(0,0,-1,0) = %d, want %d", got, 8*7)
	}
	// Coordinates round trip.
	x, y, z := s.coords(8*8*3 + 8*2 + 5)
	if x != 5 || y != 2 || z != 3 {
		t.Errorf("coords = %d,%d,%d", x, y, z)
	}
}

func TestStepGhostExchangeComplete(t *testing.T) {
	s, err := New(small(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumTargets() != 256 {
		t.Fatalf("targets = %d", s.NumTargets())
	}
	// Two steps: the second validates every cell got exactly 6
	// ghosts (the Step method panics otherwise).
	st1 := s.Step()
	st2 := s.Step()
	if st1.TimeNs <= 0 || st2.TimeNs <= 0 {
		t.Errorf("step times: %g, %g", st1.TimeNs, st2.TimeNs)
	}
	if st2.CrossPEMessages == 0 || st2.IntraPEMessages == 0 {
		t.Errorf("messages: cross=%d intra=%d", st2.CrossPEMessages, st2.IntraPEMessages)
	}
	if st2.CrossPEMessages+st2.IntraPEMessages != 6*s.NumTargets() {
		t.Errorf("total messages = %d, want %d", st2.CrossPEMessages+st2.IntraPEMessages, 6*s.NumTargets())
	}
}

func TestSinglePEAllIntra(t *testing.T) {
	s, err := New(small(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Step()
	if st.CrossPEMessages != 0 {
		t.Errorf("cross-PE messages on 1 PE: %d", st.CrossPEMessages)
	}
}

// TestScalability pins the Figure 11 shape: with a fixed target
// machine, simulation time per step drops substantially as simulating
// PEs are added.
func TestScalability(t *testing.T) {
	var times []float64
	for _, p := range []int{1, 2, 4, 8} {
		s, err := New(small(p))
		if err != nil {
			t.Fatal(err)
		}
		stats := s.Run(4)
		s.Close()
		times = append(times, MeanStepTime(stats))
	}
	for i := 1; i < len(times); i++ {
		if !(times[i] < times[i-1]) {
			t.Errorf("no speedup from %d to %d PEs: %g → %g", 1<<(i-1), 1<<i, times[i-1], times[i])
		}
	}
	// Doubling PEs 1→8 should give substantial (though sub-linear,
	// due to communication) speedup.
	if speedup := times[0] / times[3]; speedup < 3 {
		t.Errorf("8-PE speedup = %.2f, want ≥ 3", speedup)
	}
}

func TestRunAndMean(t *testing.T) {
	s, err := New(small(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stats := s.Run(5)
	if len(stats) != 5 {
		t.Fatalf("stats = %d", len(stats))
	}
	for i, st := range stats {
		if st.Step != i+1 {
			t.Errorf("step %d numbered %d", i, st.Step)
		}
	}
	if MeanStepTime(stats) <= 0 {
		t.Error("mean step time not positive")
	}
	if MeanStepTime(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if MeanStepTime(stats[:1]) != stats[0].TimeNs {
		t.Error("single-step mean wrong")
	}
}

// TestPredictionInvariantAcrossSimPEs pins BigSim's defining
// property: the predicted target-machine time must not depend on how
// many simulating processors run the simulation — only the simulation
// *speed* changes.
func TestPredictionInvariantAcrossSimPEs(t *testing.T) {
	const steps = 5
	var ref []float64
	for _, p := range []int{1, 2, 4, 8} {
		s, err := New(small(p))
		if err != nil {
			t.Fatal(err)
		}
		stats := s.Run(steps)
		s.Close()
		if ref == nil {
			ref = make([]float64, steps)
			for i, st := range stats {
				ref[i] = st.PredictedTargetNs
				if st.PredictedTargetNs <= 0 {
					t.Fatalf("step %d predicted %g", i, st.PredictedTargetNs)
				}
			}
			continue
		}
		for i, st := range stats {
			if st.PredictedTargetNs != ref[i] {
				t.Errorf("simPEs=%d step %d: predicted %g, want %g (must be PE-count invariant)",
					p, i, st.PredictedTargetNs, ref[i])
			}
		}
	}
}

// TestPredictionIncludesTargetLatency checks the prediction reflects
// the target network: slower target links → larger predicted step.
func TestPredictionIncludesTargetLatency(t *testing.T) {
	run := func(alpha float64) float64 {
		cfg := small(2)
		cfg.TargetLatency.Alpha = alpha
		cfg.TargetLatency.BetaPerByte = 1
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		stats := s.Run(4)
		return stats[len(stats)-1].PredictedTargetNs
	}
	fast, slow := run(1000), run(100000)
	if !(slow > fast) {
		t.Errorf("slow target network predicted %g, fast %g", slow, fast)
	}
}

// TestParallelDriverMatchesSerial: the SMP driver must produce the
// same virtual results (step times and target prediction) as the
// deterministic serial driver.
func TestParallelDriverMatchesSerial(t *testing.T) {
	const steps = 4
	ser, err := New(small(4))
	if err != nil {
		t.Fatal(err)
	}
	serial := ser.Run(steps)
	ser.Close()
	par, err := New(small(4))
	if err != nil {
		t.Fatal(err)
	}
	parallel := par.RunParallel(steps)
	par.Close()
	for i := range serial {
		if serial[i].PredictedTargetNs != parallel[i].PredictedTargetNs {
			t.Errorf("step %d: prediction %g (serial) vs %g (parallel)",
				i, serial[i].PredictedTargetNs, parallel[i].PredictedTargetNs)
		}
		if serial[i].TimeNs != parallel[i].TimeNs {
			t.Errorf("step %d: sim time %g vs %g", i, serial[i].TimeNs, parallel[i].TimeNs)
		}
		if serial[i].CrossPEMessages != parallel[i].CrossPEMessages {
			t.Errorf("step %d: cross messages %d vs %d", i, serial[i].CrossPEMessages, parallel[i].CrossPEMessages)
		}
	}
}

// TestManyThreadsOnOnePE is the paper's headline scenario scaled
// down: thousands of target-processor ULTs on one simulating PE.
func TestManyThreadsOnOnePE(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := New(Config{
		X: 20, Y: 20, Z: 10, SimPEs: 1,
		AtomsPerCell: 10, WorkPerAtomNs: 5, GhostBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumTargets() != 4000 {
		t.Fatalf("targets = %d", s.NumTargets())
	}
	st := s.Step()
	if st.TimeNs <= 0 {
		t.Error("step did not advance time")
	}
}
