package simclock

import (
	"sync"
	"testing"
)

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %g, want 0", c.Now())
	}
	c.Advance(100)
	c.Advance(0.5)
	if got := c.Now(); got != 100.5 {
		t.Errorf("Now = %g, want 100.5", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.Advance(50)
	c.AdvanceTo(40) // no-op: already past
	if c.Now() != 50 {
		t.Errorf("AdvanceTo backwards moved clock to %g", c.Now())
	}
	c.AdvanceTo(70)
	if c.Now() != 70 {
		t.Errorf("AdvanceTo = %g, want 70", c.Now())
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(5)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset left clock at %g", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(10)
	sw := NewStopwatch(c)
	c.Advance(25)
	if got := sw.Elapsed(); got != 25 {
		t.Errorf("Elapsed = %g, want 25", got)
	}
	sw.Restart()
	c.Advance(3)
	if got := sw.Elapsed(); got != 3 {
		t.Errorf("after Restart, Elapsed = %g, want 3", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8000 {
		t.Errorf("concurrent advances lost: Now = %g, want 8000", got)
	}
}
