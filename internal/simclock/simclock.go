// Package simclock provides the virtual time base used to reproduce
// the paper's platform-dependent measurements (Figures 4-8, 11, 12).
//
// Two time bases coexist in this repository: real wall-clock time
// (testing.B) is used where the measured cost is real work performed
// by this implementation (e.g. the memcpy of stack-copying threads in
// Figure 9), and virtual time is used where the measured cost belongs
// to a 2006-era platform being emulated (e.g. a Solaris kernel thread
// context switch). Virtual time is accumulated in float64 nanoseconds
// so that sub-microsecond per-switch costs charged millions of times
// stay exact enough for ratio comparisons.
package simclock

import (
	"fmt"
	"sync"
)

// Clock is a monotonically advancing virtual clock. The zero value is
// a clock at time 0, ready to use.
type Clock struct {
	mu  sync.Mutex
	now float64 // nanoseconds
}

// New returns a clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Advance moves the clock forward by ns nanoseconds. Negative
// advances panic: virtual time never flows backwards.
func (c *Clock) Advance(ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("simclock: negative advance %g", ns))
	}
	c.mu.Lock()
	c.now += ns
	c.mu.Unlock()
}

// AdvanceTo moves the clock to at least ns (used when merging
// per-entity timelines: the PE clock jumps to the max of its own time
// and an incoming message's send time plus latency).
func (c *Clock) AdvanceTo(ns float64) {
	c.mu.Lock()
	if ns > c.now {
		c.now = ns
	}
	c.mu.Unlock()
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset rewinds the clock to zero (between benchmark configurations).
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Stopwatch measures virtual-time intervals against a Clock.
type Stopwatch struct {
	c     *Clock
	start float64
}

// NewStopwatch starts a stopwatch at the clock's current time.
func NewStopwatch(c *Clock) *Stopwatch {
	return &Stopwatch{c: c, start: c.Now()}
}

// Elapsed returns nanoseconds of virtual time since the stopwatch
// started (or was last Restarted).
func (s *Stopwatch) Elapsed() float64 { return s.c.Now() - s.start }

// Restart moves the start mark to now.
func (s *Stopwatch) Restart() { s.start = s.c.Now() }
