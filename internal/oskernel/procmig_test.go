package oskernel

import (
	"testing"

	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/vmem"
)

func TestMigrateProcess(t *testing.T) {
	src := New(platform.Opteron(), simclock.New())
	dst := New(platform.Opteron(), simclock.New())
	p, err := src.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Build up memory state: data page, read-only page, a reservation
	// and a self-referential pointer.
	sp := p.Space()
	if err := sp.Reserve(0x4000_0000, 16*vmem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := sp.Map(0x1000, 2*vmem.PageSize, vmem.ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := sp.WriteUint64(0x1000, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if err := sp.WriteAddr(0x1008, 0x2010); err != nil { // pointer into page 2
		t.Fatal(err)
	}
	if err := sp.WriteUint64(0x2010, 0xF00D); err != nil {
		t.Fatal(err)
	}
	if err := sp.Protect(0x2000, vmem.PageSize, vmem.ProtRead); err != nil {
		t.Fatal(err)
	}

	q, nbytes, err := MigrateProcess(p, dst)
	if err != nil {
		t.Fatal(err)
	}
	if nbytes == 0 {
		t.Error("no bytes shipped")
	}
	if src.NumProcesses() != 0 || dst.NumProcesses() != 1 {
		t.Errorf("process tables: src %d dst %d", src.NumProcesses(), dst.NumProcesses())
	}
	// All pointers still valid at identical addresses.
	qs := q.Space()
	if v, err := qs.ReadUint64(0x1000); err != nil || v != 0xCAFE {
		t.Errorf("data = %#x/%v", v, err)
	}
	ptr, err := qs.ReadAddr(0x1008)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := qs.ReadUint64(ptr); err != nil || v != 0xF00D {
		t.Errorf("chased pointer = %#x/%v", v, err)
	}
	// Protections preserved.
	if err := qs.Write(0x2000, []byte{1}); err == nil {
		t.Error("read-only page writable after migration")
	}
	// Reservations preserved (isomalloc region claims travel too).
	if err := qs.Reserve(0x4000_0000, vmem.PageSize); err == nil {
		t.Error("reservation lost in migration")
	}
	// The copy cost hit both kernels' clocks.
	if src.Clock().Now() == 0 || dst.Clock().Now() == 0 {
		t.Error("migration charged no time")
	}
}

func TestMigrateProcessSameKernelNoop(t *testing.T) {
	k := New(platform.Opteron(), simclock.New())
	p, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	q, n, err := MigrateProcess(p, k)
	if err != nil || q != p || n != 0 {
		t.Errorf("same-kernel migration: %v/%d/%v", q, n, err)
	}
}

func TestMigrateProcessRefusals(t *testing.T) {
	src := New(platform.Opteron(), simclock.New())
	dst := New(platform.Opteron(), simclock.New())
	// Threads present: kernel state does not migrate.
	p, err := src.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateThread(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MigrateProcess(p, dst); err == nil {
		t.Error("process with kernel threads migrated")
	}
	// Exited process.
	p2, err := src.Fork()
	if err != nil {
		t.Fatal(err)
	}
	p2.Exit()
	if _, _, err := MigrateProcess(p2, dst); err == nil {
		t.Error("exited process migrated")
	}
	// Destination at its process limit.
	full := New(platform.IBMSP(), simclock.New())
	for i := 0; i < 100; i++ {
		if _, err := full.Fork(); err != nil {
			t.Fatal(err)
		}
	}
	p3, err := src.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MigrateProcess(p3, full); err == nil {
		t.Error("migration into a full kernel accepted")
	}
	// The source process must survive a refused migration.
	if p3.Space() == nil || src.NumProcesses() == 0 {
		t.Error("refused migration destroyed the source process")
	}
}

func TestSpaceImagePupRoundTrip(t *testing.T) {
	s := vmem.NewSpace(1 << 30)
	if err := s.Map(0x1000, vmem.PageSize, vmem.ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteUint64(0x1100, 42); err != nil {
		t.Fatal(err)
	}
	im := s.Snapshot()
	if im.Bytes() != vmem.PageSize {
		t.Errorf("Bytes = %d", im.Bytes())
	}
	s2, err := vmem.RestoreSpace(im)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s2.ReadUint64(0x1100); err != nil || v != 42 {
		t.Errorf("restored value = %d/%v", v, err)
	}
	if s2.Limit() != 1<<30 {
		t.Errorf("limit = %d", s2.Limit())
	}
	// Snapshot is a deep copy: mutating the original does not affect
	// the restored space.
	if err := s.WriteUint64(0x1100, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.ReadUint64(0x1100); v != 42 {
		t.Error("snapshot aliased the source frames")
	}
}
