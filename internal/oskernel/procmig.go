package oskernel

import (
	"fmt"

	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// Process migration (§3.3): "Because processes provide a well-defined
// memory, kernel, and communication interface, process migration is
// an old and widely implemented technique. Since the entire address
// space is migrated, all the pointers in the user application are
// still valid on the new processor."
//
// Following Mosix's split (§3.1.3), only the migratable user context
// moves: the address space. Kernel state does not migrate — here that
// means a process with live kernel threads refuses to move (their
// scheduler state is kernel context), matching the single-threaded
// restriction of classic process-migration systems.

// MigrateProcess moves p from its kernel to dst: the whole address
// space is serialized (PUP round trip — the bytes that would cross
// the network), the source pid slot is released, and a new process
// appears on dst with identical memory. It returns the new process
// and the serialized byte count.
func MigrateProcess(p *Process, dst *Kernel) (*Process, int, error) {
	if p.k == dst {
		return p, 0, nil
	}
	p.k.mu.Lock()
	if p.exited {
		p.k.mu.Unlock()
		return nil, 0, fmt.Errorf("oskernel: MigrateProcess: process %d has exited", p.pid)
	}
	if len(p.threads) > 0 {
		p.k.mu.Unlock()
		return nil, 0, fmt.Errorf("oskernel: MigrateProcess: process %d has %d kernel threads (kernel state does not migrate)", p.pid, len(p.threads))
	}
	p.k.mu.Unlock()

	im := p.space.Snapshot()
	data, err := pup.Pack(im)
	if err != nil {
		return nil, 0, err
	}
	var im2 vmem.SpaceImage
	if err := pup.Unpack(data, &im2); err != nil {
		return nil, 0, err
	}
	// The destination must admit a new process (its own limits).
	q, err := dst.Fork()
	if err != nil {
		return nil, 0, fmt.Errorf("oskernel: MigrateProcess: destination refused: %w", err)
	}
	space, err := vmem.RestoreSpace(&im2)
	if err != nil {
		q.Exit()
		return nil, 0, err
	}
	// Charge the copy cost on both kernels' clocks (extract + install).
	cost := dst.prof.MemcpyPerKB * float64(im2.Bytes()) / 1024
	p.k.clock.Advance(cost)
	dst.clock.Advance(cost)
	q.space = space
	p.Exit()
	return q, len(data), nil
}
