// Package oskernel is a small simulated operating-system kernel: a
// process table, kernel threads, per-platform creation limits, and a
// sched_yield cost model charged to a virtual clock.
//
// It exists so the paper's kernel-mediated flow-of-control mechanisms
// (§2.1 processes, §2.2 kernel threads) can be implemented, limited
// and measured exactly like the user-level mechanisms, on platforms
// that no longer exist on any desk: the 2006 machines live on as
// internal/platform profiles, and this kernel enforces their limits
// (Table 2) and charges their context-switch costs (Figures 4-8).
package oskernel

import (
	"fmt"
	"sync"

	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/vmem"
)

// Pid identifies a simulated process.
type Pid int

// Tid identifies a simulated kernel thread within a process.
type Tid int

// ErrLimit reports that a creation hit the platform's practical limit
// — the condition probed to regenerate Table 2.
type ErrLimit struct {
	Kind string // "process" or "kthread"
	Max  int
}

func (e *ErrLimit) Error() string {
	return fmt.Sprintf("oskernel: %s limit reached (%d)", e.Kind, e.Max)
}

// Kernel is one node's simulated kernel.
type Kernel struct {
	prof  *platform.Profile
	clock *simclock.Clock

	mu      sync.Mutex
	procs   map[Pid]*Process
	nextPid Pid
}

// New creates a kernel for the given platform charging costs to clock.
func New(prof *platform.Profile, clock *simclock.Clock) *Kernel {
	return &Kernel{prof: prof, clock: clock, procs: make(map[Pid]*Process), nextPid: 1}
}

// Profile returns the platform this kernel emulates.
func (k *Kernel) Profile() *platform.Profile { return k.prof }

// Clock returns the kernel's virtual clock.
func (k *Kernel) Clock() *simclock.Clock { return k.clock }

// NumProcesses returns the number of live processes.
func (k *Kernel) NumProcesses() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.procs)
}

// Fork creates a new process with its own address space, charging the
// platform's process-creation cost, or fails with ErrLimit at the
// platform's practical process limit. On platforms without fork
// (BG/L, ASCI Red microkernels — §2.1) every Fork beyond the first
// process fails.
func (k *Kernel) Fork() (*Process, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.prof.ProcessControlsOK && len(k.procs) >= 1 {
		return nil, &ErrLimit{Kind: "process", Max: 1}
	}
	if lim := k.prof.MaxProcesses; lim.Bounded() && len(k.procs) >= lim.N {
		return nil, &ErrLimit{Kind: "process", Max: lim.N}
	}
	k.clock.Advance(k.prof.ProcCreate)
	p := &Process{
		k:       k,
		pid:     k.nextPid,
		space:   vmem.NewSpace(k.prof.VirtLimit),
		threads: make(map[Tid]*KThread),
	}
	k.nextPid++
	k.procs[p.pid] = p
	return p, nil
}

// Yield charges the cost a sched_yield-based microbenchmark observes
// for one context switch of the given mechanism kind with n runnable
// flows (see platform.MeasuredYieldCost for the IBM SP/Alpha
// artifact).
func (k *Kernel) Yield(kind string, n int) error {
	c, err := k.prof.MeasuredYieldCost(kind, n)
	if err != nil {
		return err
	}
	k.clock.Advance(c)
	return nil
}

// YieldRounds runs the Figure 4-8 microbenchmark in virtual time:
// rounds sweeps in which each of n flows yields once, and returns the
// observed nanoseconds per flow per context switch.
func (k *Kernel) YieldRounds(kind string, n, rounds int) (nsPerSwitch float64, err error) {
	if n <= 0 || rounds <= 0 {
		return 0, fmt.Errorf("oskernel: YieldRounds(%d flows, %d rounds): counts must be positive", n, rounds)
	}
	sw := simclock.NewStopwatch(k.clock)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			if err := k.Yield(kind, n); err != nil {
				return 0, err
			}
		}
	}
	return sw.Elapsed() / float64(n*rounds), nil
}

// Process is one simulated process: an address space plus kernel
// threads. The initial thread is implicit (thread creation limits in
// Table 2 count extra pthreads).
type Process struct {
	k       *Kernel
	pid     Pid
	space   *vmem.Space
	exited  bool
	nextTid Tid
	threads map[Tid]*KThread
}

// Pid returns the process id.
func (p *Process) Pid() Pid { return p.pid }

// Space returns the process's private simulated address space. All
// kernel threads of the process share it — the unintentional-sharing
// hazard of §2.2 is real here too.
func (p *Process) Space() *vmem.Space { return p.space }

// NumThreads returns the number of live kernel threads (excluding the
// implicit initial thread).
func (p *Process) NumThreads() int {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	return len(p.threads)
}

// CreateThread creates a kernel thread in the process, charging the
// creation cost, or fails with ErrLimit at the platform's pthread
// limit. Platforms without pthreads (BG/L) always fail.
func (p *Process) CreateThread() (*KThread, error) {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	if p.exited {
		return nil, fmt.Errorf("oskernel: CreateThread on exited process %d", p.pid)
	}
	if !p.k.prof.KernelThreadsOK {
		return nil, &ErrLimit{Kind: "kthread", Max: 0}
	}
	if lim := p.k.prof.MaxKernelThreads; lim.Bounded() && len(p.threads) >= lim.N {
		return nil, &ErrLimit{Kind: "kthread", Max: lim.N}
	}
	p.k.clock.Advance(p.k.prof.KThreadCreate)
	t := &KThread{proc: p, tid: p.nextTid}
	p.nextTid++
	p.threads[t.tid] = t
	return t, nil
}

// Exit terminates the process, freeing its pid slot and all threads.
func (p *Process) Exit() {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	if p.exited {
		return
	}
	p.exited = true
	p.threads = make(map[Tid]*KThread)
	delete(p.k.procs, p.pid)
}

// KThread is a simulated kernel thread. It shares its process's
// address space; its scheduling costs are the platform's.
type KThread struct {
	proc *Process
	tid  Tid
}

// Tid returns the thread id.
func (t *KThread) Tid() Tid { return t.tid }

// Process returns the owning process.
func (t *KThread) Process() *Process { return t.proc }

// Exit removes the thread from its process.
func (t *KThread) Exit() {
	t.proc.k.mu.Lock()
	defer t.proc.k.mu.Unlock()
	delete(t.proc.threads, t.tid)
}

// ProbeProcessLimit creates processes until Fork fails or cap is
// reached, then exits them all, returning how many succeeded. This is
// the Table 2 "maximum number of processes" probe.
func ProbeProcessLimit(k *Kernel, cap int) int {
	var made []*Process
	for len(made) < cap {
		p, err := k.Fork()
		if err != nil {
			break
		}
		made = append(made, p)
	}
	n := len(made)
	for _, p := range made {
		p.Exit()
	}
	return n
}

// ProbeThreadLimit creates kernel threads in one process until
// CreateThread fails or cap is reached — the Table 2 pthread probe.
func ProbeThreadLimit(k *Kernel, cap int) int {
	p, err := k.Fork()
	if err != nil {
		return 0
	}
	defer p.Exit()
	n := 0
	for n < cap {
		if _, err := p.CreateThread(); err != nil {
			break
		}
		n++
	}
	return n
}
