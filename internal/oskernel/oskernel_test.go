package oskernel

import (
	"errors"
	"math"
	"testing"

	"migflow/internal/platform"
	"migflow/internal/simclock"
)

func newKernel(p *platform.Profile) *Kernel {
	return New(p, simclock.New())
}

func TestForkChargesAndAllocates(t *testing.T) {
	k := newKernel(platform.LinuxX86())
	p, err := k.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if p.Pid() != 1 {
		t.Errorf("first pid = %d, want 1", p.Pid())
	}
	if got := k.Clock().Now(); got != platform.LinuxX86().ProcCreate {
		t.Errorf("clock = %g, want ProcCreate %g", got, platform.LinuxX86().ProcCreate)
	}
	if p.Space() == nil {
		t.Fatal("process has no address space")
	}
	// 32-bit Linux profile caps the space at 3 GiB.
	if lim := p.Space().Limit(); lim != 3<<30 {
		t.Errorf("space limit = %d, want 3 GiB", lim)
	}
	q, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if q.Space() == p.Space() {
		t.Error("processes share an address space")
	}
	if k.NumProcesses() != 2 {
		t.Errorf("NumProcesses = %d, want 2", k.NumProcesses())
	}
	p.Exit()
	if k.NumProcesses() != 1 {
		t.Errorf("NumProcesses after Exit = %d, want 1", k.NumProcesses())
	}
	p.Exit() // idempotent
	if k.NumProcesses() != 1 {
		t.Error("double Exit changed the process table")
	}
}

func TestForkLimit(t *testing.T) {
	// IBM SP: ulimit of 100 processes per user (Table 2).
	k := newKernel(platform.IBMSP())
	if got := ProbeProcessLimit(k, 10000); got != 100 {
		t.Errorf("process probe = %d, want 100", got)
	}
	// After the probe exited them all, forking works again.
	if _, err := k.Fork(); err != nil {
		t.Errorf("Fork after probe: %v", err)
	}
}

func TestForkLimitError(t *testing.T) {
	k := newKernel(platform.IBMSP())
	for i := 0; i < 100; i++ {
		if _, err := k.Fork(); err != nil {
			t.Fatalf("Fork %d: %v", i, err)
		}
	}
	_, err := k.Fork()
	var le *ErrLimit
	if !errors.As(err, &le) || le.Kind != "process" || le.Max != 100 {
		t.Errorf("err = %v, want process ErrLimit(100)", err)
	}
}

func TestNoForkOnMicrokernels(t *testing.T) {
	k := newKernel(platform.BlueGeneL())
	if _, err := k.Fork(); err != nil {
		t.Fatalf("first process should exist even on BG/L: %v", err)
	}
	if _, err := k.Fork(); err == nil {
		t.Error("second Fork on BG/L should fail (no fork/exec)")
	}
}

func TestThreadLimit(t *testing.T) {
	// RH9 Linux: fewer than 256 pthreads per process (Table 2).
	k := newKernel(platform.LinuxX86())
	if got := ProbeThreadLimit(k, 10000); got != 250 {
		t.Errorf("thread probe = %d, want 250", got)
	}
}

func TestThreadLimitUnbounded(t *testing.T) {
	// Alpha allowed "90000+" kernel threads: probe caps out, no error.
	k := newKernel(platform.AlphaES45())
	if got := ProbeThreadLimit(k, 500); got != 500 {
		t.Errorf("unbounded thread probe hit a limit at %d", got)
	}
}

func TestNoPthreadsOnBGL(t *testing.T) {
	k := newKernel(platform.BlueGeneL())
	p, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.CreateThread()
	var le *ErrLimit
	if !errors.As(err, &le) || le.Kind != "kthread" {
		t.Errorf("CreateThread on BG/L: err = %v, want kthread ErrLimit", err)
	}
}

func TestThreadLifecycle(t *testing.T) {
	k := newKernel(platform.LinuxX86())
	p, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.CreateThread()
	if err != nil {
		t.Fatal(err)
	}
	if th.Process() != p {
		t.Error("thread's process wrong")
	}
	if p.NumThreads() != 1 {
		t.Errorf("NumThreads = %d, want 1", p.NumThreads())
	}
	th.Exit()
	if p.NumThreads() != 0 {
		t.Errorf("NumThreads after Exit = %d, want 0", p.NumThreads())
	}
	p.Exit()
	if _, err := p.CreateThread(); err == nil {
		t.Error("CreateThread on exited process should fail")
	}
}

func TestYieldRoundsMatchesCurve(t *testing.T) {
	prof := platform.LinuxX86()
	k := newKernel(prof)
	const n, rounds = 64, 10
	per, err := k.YieldRounds("uthread", n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	want := prof.UThreadSwitch.At(n)
	if math.Abs(per-want) > 1e-6 {
		t.Errorf("ns/switch = %g, want %g", per, want)
	}
}

func TestYieldRoundsArtifact(t *testing.T) {
	prof := platform.AlphaES45()
	k := newKernel(prof)
	per, err := k.YieldRounds("process", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if per != prof.SyscallOverhead {
		t.Errorf("yield-ignored process switch = %g, want bare syscall %g", per, prof.SyscallOverhead)
	}
	ult, err := k.YieldRounds("uthread", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(per < ult) {
		t.Errorf("Figure 8 artifact missing: process %g should appear faster than ULT %g", per, ult)
	}
}

func TestYieldRoundsBadArgs(t *testing.T) {
	k := newKernel(platform.LinuxX86())
	if _, err := k.YieldRounds("uthread", 0, 1); err == nil {
		t.Error("zero flows should error")
	}
	if _, err := k.YieldRounds("warp", 1, 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestErrLimitString(t *testing.T) {
	if (&ErrLimit{Kind: "process", Max: 100}).Error() == "" {
		t.Error("empty error string")
	}
}

func TestThreadTid(t *testing.T) {
	k := newKernel(platform.LinuxX86())
	p, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.CreateThread()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.CreateThread()
	if err != nil {
		t.Fatal(err)
	}
	if a.Tid() == b.Tid() {
		t.Error("thread ids collide")
	}
}
