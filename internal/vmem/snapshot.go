package vmem

import (
	"fmt"
	"sort"

	"migflow/internal/pup"
)

// SpaceImage is the serialized form of an entire address space — what
// process migration ships (§3.3: "Since the entire address space is
// migrated, all the pointers in the user application are still valid
// on the new processor").
type SpaceImage struct {
	Limit        uint64
	Reservations []Range
	Pages        []SpacePage
}

// SpacePage is one mapped page in a SpaceImage.
type SpacePage struct {
	VPN  uint64
	Prot Prot
	Data []byte
}

// Pup implements pup.Pupable.
func (im *SpaceImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.Limit); err != nil {
		return err
	}
	nr := uint32(len(im.Reservations))
	if err := p.Uint32(&nr); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Reservations = make([]Range, nr)
	}
	for i := range im.Reservations {
		start := uint64(im.Reservations[i].Start)
		if err := p.Uint64(&start); err != nil {
			return err
		}
		if err := p.Uint64(&im.Reservations[i].Length); err != nil {
			return err
		}
		im.Reservations[i].Start = Addr(start)
	}
	np := uint32(len(im.Pages))
	if err := p.Uint32(&np); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Pages = make([]SpacePage, np)
	}
	for i := range im.Pages {
		if err := p.Uint64(&im.Pages[i].VPN); err != nil {
			return err
		}
		prot := byte(im.Pages[i].Prot)
		if err := p.Byte(&prot); err != nil {
			return err
		}
		im.Pages[i].Prot = Prot(prot)
		if err := p.Bytes(&im.Pages[i].Data); err != nil {
			return err
		}
	}
	return nil
}

// Bytes returns the image's total page payload (for cost models).
func (im *SpaceImage) Bytes() int {
	return len(im.Pages) * PageSize
}

// Snapshot serializes the whole space: limit, reservations, and every
// mapped page with its protection and contents. Aliased frames are
// deep-copied (the destination gets private pages, like fork-and-ship
// process migration).
func (s *Space) Snapshot() *SpaceImage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	im := &SpaceImage{Limit: s.limit}
	im.Reservations = append(im.Reservations, s.reserved...)
	vpns := make([]uint64, 0, len(s.pages))
	for vpn := range s.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		m := s.pages[vpn]
		data := make([]byte, PageSize)
		copy(data, m.frame.data[:])
		im.Pages = append(im.Pages, SpacePage{VPN: vpn, Prot: m.prot, Data: data})
	}
	return im
}

// RestoreSpace rebuilds an address space from an image.
func RestoreSpace(im *SpaceImage) (*Space, error) {
	s := NewSpace(im.Limit)
	for _, r := range im.Reservations {
		if err := s.Reserve(r.Start, r.Length); err != nil {
			return nil, fmt.Errorf("vmem: RestoreSpace: %w", err)
		}
	}
	for _, pg := range im.Pages {
		if len(pg.Data) != PageSize {
			return nil, fmt.Errorf("vmem: RestoreSpace: page %#x has %d bytes", pg.VPN, len(pg.Data))
		}
		base := Addr(pg.VPN << PageShift)
		// Map writable to fill, then apply the real protection.
		if err := s.Map(base, PageSize, ProtRW); err != nil {
			return nil, err
		}
		if err := s.Write(base, pg.Data); err != nil {
			return nil, err
		}
		if pg.Prot != ProtRW {
			if err := s.Protect(base, PageSize, pg.Prot); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
