// Package vmem implements a page-granular simulated virtual memory
// system: address spaces with mmap-like mapping, unmap, protection,
// page aliasing (shared frames), reservation accounting, and faulting
// byte-level access.
//
// It is the substrate under every migratable-thread technique in this
// repository. The paper's stack-copying, isomalloc and memory-aliasing
// threads (Zheng, Lawlor, Kalé, ICPP 2006, §3.4) differ exactly in
// which pages exist at which virtual addresses at which times; vmem
// models that directly so the three techniques can be implemented and
// measured with their real mechanics: stack-copy moves bytes, memory
// aliasing remaps frames, isomalloc keeps globally unique addresses.
package vmem

import "fmt"

// Page geometry. 4 KiB pages, like the x86 systems in the paper.
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of one page in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the in-page offset bits of an address.
	PageMask = PageSize - 1
)

// Addr is a simulated virtual address. Simulated pointers held in
// simulated memory are Addr values serialized little-endian; they are
// meaningful only within (or, for isomalloc addresses, across) the
// simulated address spaces of one Machine.
type Addr uint64

// Nil is the zero simulated address; page 0 is never mappable, so Nil
// dereferences always fault (a simulated null-pointer dereference).
const Nil Addr = 0

// PageNum returns the virtual page number containing a.
func (a Addr) PageNum() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of a within its page.
func (a Addr) Offset() uint64 { return uint64(a) & PageMask }

// AlignDown rounds a down to a page boundary.
func (a Addr) AlignDown() Addr { return a &^ Addr(PageMask) }

// AlignUp rounds a up to a page boundary.
func (a Addr) AlignUp() Addr { return (a + PageMask) &^ Addr(PageMask) }

// Add returns a+n; it exists to keep pointer arithmetic on simulated
// addresses explicit and greppable.
func (a Addr) Add(n uint64) Addr { return a + Addr(n) }

// String formats the address like a pointer.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// PageSpan returns the number of pages spanned by the byte range
// [a, a+length).
func PageSpan(a Addr, length uint64) uint64 {
	if length == 0 {
		return 0
	}
	first := a.PageNum()
	last := (a + Addr(length) - 1).PageNum()
	return last - first + 1
}

// RoundUpPages rounds a byte count up to a whole number of pages.
func RoundUpPages(n uint64) uint64 {
	return (n + PageMask) &^ uint64(PageMask)
}

// Prot is a page protection bitmask.
type Prot uint8

// Protection bits.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtRW         = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// AccessOp identifies the kind of access that faulted.
type AccessOp uint8

// Access operations recorded in Faults.
const (
	OpRead AccessOp = iota
	OpWrite
	OpMap
	OpUnmap
)

func (op AccessOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMap:
		return "map"
	case OpUnmap:
		return "unmap"
	}
	return fmt.Sprintf("AccessOp(%d)", uint8(op))
}

// Fault is the simulated equivalent of SIGSEGV: an access touched an
// unmapped page or violated page protection.
type Fault struct {
	Op     AccessOp
	Addr   Addr   // faulting address
	Reason string // "unmapped", "protection", ...
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vmem: segmentation fault: %s at %s (%s)", f.Op, f.Addr, f.Reason)
}

// ErrExhausted reports that an operation would exceed the address
// space's virtual size limit — the condition that makes isomalloc
// impractical on 32-bit machines (§3.4.2).
type ErrExhausted struct {
	Limit     uint64
	Requested uint64
	InUse     uint64
}

func (e *ErrExhausted) Error() string {
	return fmt.Sprintf("vmem: virtual address space exhausted: limit %d bytes, %d in use, %d requested",
		e.Limit, e.InUse, e.Requested)
}
