package vmem

import (
	"encoding/binary"
	"math"
)

// Typed accessors. All multi-byte values in simulated memory are
// little-endian, matching the x86 machines that motivate the paper.
// Simulated pointers (Addr) are stored as 8-byte values even on
// "32-bit" platform profiles; the profile's Space limit models the
// smaller address space, not the pointer encoding, which keeps one
// code path for both.

// ReadUint64 reads a little-endian uint64 at a.
func (s *Space) ReadUint64(a Addr) (uint64, error) {
	var b [8]byte
	if err := s.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteUint64 writes a little-endian uint64 at a.
func (s *Space) WriteUint64(a Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(a, b[:])
}

// ReadUint32 reads a little-endian uint32 at a.
func (s *Space) ReadUint32(a Addr) (uint32, error) {
	var b [4]byte
	if err := s.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteUint32 writes a little-endian uint32 at a.
func (s *Space) WriteUint32(a Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return s.Write(a, b[:])
}

// ReadAddr reads a simulated pointer stored at a.
func (s *Space) ReadAddr(a Addr) (Addr, error) {
	v, err := s.ReadUint64(a)
	return Addr(v), err
}

// WriteAddr stores the simulated pointer v at a.
func (s *Space) WriteAddr(a Addr, v Addr) error {
	return s.WriteUint64(a, uint64(v))
}

// ReadFloat64 reads a float64 (IEEE 754 bits, little-endian) at a.
func (s *Space) ReadFloat64(a Addr) (float64, error) {
	v, err := s.ReadUint64(a)
	return math.Float64frombits(v), err
}

// WriteFloat64 writes a float64 at a.
func (s *Space) WriteFloat64(a Addr, v float64) error {
	return s.WriteUint64(a, math.Float64bits(v))
}
