package vmem

import "sync"

// Frame is one page of simulated physical memory. Frames are
// reference-counted so that memory-aliasing threads (§3.4.3) can map
// the same physical page at two virtual addresses (the thread's
// backing-store address and the canonical stack address) without
// copying.
//
// Reference counts are manipulated only under the owning Space's lock
// (or, for frames shared across spaces, under the locks of each space
// in turn; counts themselves are not atomic because every mutation
// happens inside a Space method).
type Frame struct {
	data [PageSize]byte
	refs int
}

// NewFrame allocates one zeroed frame with a zero reference count; the
// first Map that installs it takes the first reference.
func NewFrame() *Frame { return new(Frame) }

// framePool recycles frames that a Space allocated for anonymous Map
// and fully unmapped again — stack-copy context switches and
// short-lived arenas churn frames at a rate worth keeping off the
// garbage collector. Frames installed by callers through MapFrames
// are never pooled (see Space.Unmap).
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// newPooledFrame returns a zeroed frame from the pool; Map promises
// zero-filled memory, and pooled frames carry old contents.
func newPooledFrame() *Frame {
	f := framePool.Get().(*Frame)
	clear(f.data[:])
	return f
}

// Data returns the frame's backing bytes. Callers must not retain the
// slice across Unmap of the last mapping.
func (f *Frame) Data() []byte { return f.data[:] }

// Refs returns the current mapping count (for tests and accounting).
func (f *Frame) Refs() int { return f.refs }

// mapping is one page-table entry: a frame plus its protection.
// owned marks frames the space allocated itself (anonymous Map), the
// only ones eligible for pooling when their last mapping goes away.
type mapping struct {
	frame *Frame
	prot  Prot
	owned bool
}
