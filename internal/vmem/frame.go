package vmem

import (
	"sync"
	"sync/atomic"
)

// Frame is one page of simulated physical memory. Frames are
// reference-counted so that memory-aliasing threads (§3.4.3) can map
// the same physical page at two virtual addresses (the thread's
// backing-store address and the canonical stack address) without
// copying.
//
// Reference counts are manipulated only under the owning Space's lock
// (or, for frames shared across spaces, under the locks of each space
// in turn; counts themselves are not atomic because every mutation
// happens inside a Space method).
//
// Each frame additionally carries a dirty bit: set by every store
// through Space.Write/CopyIn (and by MarkDirty for callers that
// mutate Data directly), cleared when the frame is recycled zeroed.
// The invariant the migration data path relies on is: a mapped frame
// that is NOT dirty holds all zeroes, so sparse snapshots
// (Space.CopyOutRuns) may omit it and the destination can zero-fill.
// The bit is atomic because the Read/Write fast path mutates it
// lock-free through cached extents.
type Frame struct {
	data  [PageSize]byte
	refs  int
	dirty atomic.Bool
}

// NewFrame allocates one zeroed frame with a zero reference count; the
// first Map that installs it takes the first reference.
func NewFrame() *Frame { return new(Frame) }

// framePool recycles frames that a Space allocated for anonymous Map
// and fully unmapped again — stack-copy context switches and
// short-lived arenas churn frames at a rate worth keeping off the
// garbage collector. Frames installed by callers through MapFrames
// are never pooled (see Space.Unmap).
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// newPooledFrame returns a zeroed frame from the pool; Map promises
// zero-filled memory, and pooled frames carry old contents and old
// dirty bits.
func newPooledFrame() *Frame {
	f := framePool.Get().(*Frame)
	clear(f.data[:])
	f.dirty.Store(false)
	return f
}

// Data returns the frame's backing bytes. Callers must not retain the
// slice across Unmap of the last mapping, and callers that WRITE
// through it must call MarkDirty — otherwise sparse snapshots will
// treat the page as zero.
func (f *Frame) Data() []byte { return f.data[:] }

// Dirty reports whether the frame has been written since it was last
// zeroed.
func (f *Frame) Dirty() bool { return f.dirty.Load() }

// MarkDirty records a mutation made outside Space.Write (direct Data
// access).
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// markDirty is the write fast path's version: the load-then-store
// shape keeps repeated writes to a hot page from bouncing the cache
// line with redundant stores.
func (f *Frame) markDirty() {
	if !f.dirty.Load() {
		f.dirty.Store(true)
	}
}

// Refs returns the current mapping count (for tests and accounting).
func (f *Frame) Refs() int { return f.refs }

// mapping is one page-table entry: a frame plus its protection.
// owned marks frames the space allocated itself (anonymous Map), the
// only ones eligible for pooling when their last mapping goes away.
type mapping struct {
	frame *Frame
	prot  Prot
	owned bool
}
