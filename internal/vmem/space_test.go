package vmem

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	a := Addr(0x12345)
	if got := a.PageNum(); got != 0x12 {
		t.Errorf("PageNum = %#x, want 0x12", got)
	}
	if got := a.Offset(); got != 0x345 {
		t.Errorf("Offset = %#x, want 0x345", got)
	}
	if got := a.AlignDown(); got != 0x12000 {
		t.Errorf("AlignDown = %s, want 0x12000", got)
	}
	if got := a.AlignUp(); got != 0x13000 {
		t.Errorf("AlignUp = %s, want 0x13000", got)
	}
	if got := Addr(0x12000).AlignUp(); got != 0x12000 {
		t.Errorf("AlignUp(aligned) = %s, want 0x12000", got)
	}
}

func TestPageSpan(t *testing.T) {
	cases := []struct {
		a    Addr
		n    uint64
		want uint64
	}{
		{0x1000, 0, 0},
		{0x1000, 1, 1},
		{0x1000, PageSize, 1},
		{0x1000, PageSize + 1, 2},
		{0x1fff, 2, 2},
		{0x1fff, 1, 1},
	}
	for _, c := range cases {
		if got := PageSpan(c.a, c.n); got != c.want {
			t.Errorf("PageSpan(%s, %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

func TestMapReadWrite(t *testing.T) {
	s := NewSpace(0)
	base := Addr(0x10000)
	if err := s.Map(base, 4*PageSize, ProtRW); err != nil {
		t.Fatalf("Map: %v", err)
	}
	// Write across a page boundary.
	data := []byte("hello, migratable world")
	at := base.Add(PageSize - 5)
	if err := s.Write(at, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := s.Read(at, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
	// Fresh pages are zeroed.
	z := make([]byte, 16)
	if err := s.Read(base, z); err != nil {
		t.Fatalf("Read zeroed: %v", err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatalf("fresh page not zeroed: % x", z)
		}
	}
}

func TestUnmappedFault(t *testing.T) {
	s := NewSpace(0)
	err := s.Read(Addr(0x5000), make([]byte, 1))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Read unmapped: err = %v, want Fault", err)
	}
	if f.Op != OpRead || f.Addr != 0x5000 {
		t.Errorf("fault = %+v, want read at 0x5000", f)
	}
	if err := s.Write(Addr(0x5000), []byte{1}); !errors.As(err, &f) {
		t.Errorf("Write unmapped: err = %v, want Fault", err)
	}
}

func TestReadCrossingIntoUnmappedFaults(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	// Starts mapped, runs off the end.
	err := s.Read(Addr(0x1000+PageSize-2), make([]byte, 8))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want Fault", err)
	}
	if f.Addr != Addr(0x2000) {
		t.Errorf("fault addr = %s, want 0x2000", f.Addr)
	}
}

func TestProtection(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0x1000, make([]byte, 4)); err != nil {
		t.Errorf("read of readable page failed: %v", err)
	}
	var f *Fault
	if err := s.Write(0x1000, []byte{1}); !errors.As(err, &f) || f.Reason != "protection" {
		t.Errorf("write to read-only page: err = %v, want protection fault", err)
	}
	if err := s.Protect(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0x1000, []byte{1}); err != nil {
		t.Errorf("write after Protect(RW): %v", err)
	}
	if err := s.Protect(0x1000, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0x1000, make([]byte, 1)); !errors.As(err, &f) {
		t.Errorf("read of PROT_NONE page: err = %v, want fault", err)
	}
}

func TestDoubleMapFails(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	var f *Fault
	if err := s.Map(0x2000, PageSize, ProtRW); !errors.As(err, &f) {
		t.Errorf("overlapping Map: err = %v, want Fault", err)
	}
}

func TestMapPageZeroFails(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(Nil, PageSize, ProtRW); err == nil {
		t.Error("mapping page zero should fail")
	}
}

func TestUnalignedArgs(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1001, PageSize, ProtRW); err == nil {
		t.Error("unaligned Map should fail")
	}
	if err := s.Map(0x1000, PageSize+1, ProtRW); err == nil {
		t.Error("non-multiple length Map should fail")
	}
	if err := s.Map(0x1000, 0, ProtRW); err == nil {
		t.Error("zero-length Map should fail")
	}
}

func TestUnmapFreesAndZeroes(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0x1000, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if s.MappedPages() != 0 {
		t.Errorf("MappedPages = %d after Unmap, want 0", s.MappedPages())
	}
	// Remapping yields a fresh zeroed page, not the old contents.
	if err := s.Map(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := s.Read(0x1000, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Errorf("remapped page byte = %#x, want 0", b[0])
	}
}

func TestUnmapUnmappedFails(t *testing.T) {
	s := NewSpace(0)
	var f *Fault
	if err := s.Unmap(0x1000, PageSize); !errors.As(err, &f) {
		t.Errorf("Unmap of unmapped: err = %v, want Fault", err)
	}
}

func TestAliasingSharesFrames(t *testing.T) {
	a := NewSpace(0)
	b := NewSpace(0)
	if err := a.Map(0x1000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	frames, err := a.Frames(0x1000, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("len(frames) = %d, want 2", len(frames))
	}
	// Alias the same frames into space b at a different address.
	if err := b.MapFrames(0x90000, frames, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0x1234, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := b.Read(0x90234, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Errorf("aliased read = %q, want \"shared\"", got)
	}
	// Refcount: each frame mapped twice.
	if frames[0].Refs() != 2 {
		t.Errorf("frame refs = %d, want 2", frames[0].Refs())
	}
	// Unmapping one alias keeps data alive through the other.
	if err := a.Unmap(0x1000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if frames[0].Refs() != 1 {
		t.Errorf("frame refs after one unmap = %d, want 1", frames[0].Refs())
	}
	if err := b.Read(0x90234, got); err != nil || string(got) != "shared" {
		t.Errorf("after partner unmap, read = %q/%v, want shared", got, err)
	}
}

func TestReserveAccounting(t *testing.T) {
	limit := uint64(16 * PageSize)
	s := NewSpace(limit)
	if err := s.Reserve(0x10000, 8*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := s.VirtualInUse(); got != 8*PageSize {
		t.Errorf("VirtualInUse = %d, want %d", got, 8*PageSize)
	}
	// Mapping inside a reservation does not double-count.
	if err := s.Map(0x10000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if got := s.VirtualInUse(); got != 8*PageSize {
		t.Errorf("VirtualInUse after map-inside = %d, want %d", got, 8*PageSize)
	}
	// Mapping outside counts.
	if err := s.Map(0x100000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if got := s.VirtualInUse(); got != 10*PageSize {
		t.Errorf("VirtualInUse after map-outside = %d, want %d", got, 10*PageSize)
	}
}

func TestExhaustion(t *testing.T) {
	s := NewSpace(4 * PageSize)
	if err := s.Reserve(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	var ex *ErrExhausted
	if err := s.Reserve(0x100000, PageSize); !errors.As(err, &ex) {
		t.Fatalf("over-limit Reserve: err = %v, want ErrExhausted", err)
	}
	if err := s.Map(0x100000, PageSize, ProtRW); !errors.As(err, &ex) {
		t.Fatalf("over-limit Map: err = %v, want ErrExhausted", err)
	}
	// Inside the reservation still works: no extra virtual space.
	if err := s.Map(0x10000, PageSize, ProtRW); err != nil {
		t.Errorf("Map inside reservation should not exhaust: %v", err)
	}
}

func TestReserveOverlapFails(t *testing.T) {
	s := NewSpace(0)
	if err := s.Reserve(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(0x12000, 4*PageSize); err == nil {
		t.Error("overlapping Reserve should fail")
	}
	if err := s.Unreserve(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(0x12000, 4*PageSize); err != nil {
		t.Errorf("Reserve after Unreserve: %v", err)
	}
}

func TestUnreserveRecountsMappedPages(t *testing.T) {
	s := NewSpace(0)
	if err := s.Reserve(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x10000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Unreserve(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := s.VirtualInUse(); got != 2*PageSize {
		t.Errorf("VirtualInUse after Unreserve = %d, want %d", got, 2*PageSize)
	}
}

func TestTypedAccessors(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteUint64(0x1008, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if v, err := s.ReadUint64(0x1008); err != nil || v != 0xdeadbeefcafe {
		t.Errorf("ReadUint64 = %#x/%v", v, err)
	}
	if err := s.WriteUint32(0x1020, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if v, err := s.ReadUint32(0x1020); err != nil || v != 0x12345678 {
		t.Errorf("ReadUint32 = %#x/%v", v, err)
	}
	if err := s.WriteAddr(0x1030, 0xABCD000); err != nil {
		t.Fatal(err)
	}
	if v, err := s.ReadAddr(0x1030); err != nil || v != 0xABCD000 {
		t.Errorf("ReadAddr = %s/%v", v, err)
	}
	if err := s.WriteFloat64(0x1040, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, err := s.ReadFloat64(0x1040); err != nil || v != 3.25 {
		t.Errorf("ReadFloat64 = %v/%v", v, err)
	}
}

func TestZero(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, 3*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	fill := bytes.Repeat([]byte{0xFF}, 2*PageSize)
	if err := s.Write(0x1000, fill); err != nil {
		t.Fatal(err)
	}
	if err := s.Zero(0x1100, PageSize+512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize+512)
	if err := s.Read(0x1100, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	b := make([]byte, 1)
	if err := s.Read(0x1000+0xFF, b); err != nil || b[0] != 0xFF {
		t.Errorf("byte before Zero range clobbered: %#x/%v", b[0], err)
	}
}

// Property: any sequence of in-bounds writes followed by reads behaves
// like a flat byte array.
func TestQuickReadWriteMatchesFlatArray(t *testing.T) {
	const regionPages = 8
	const regionSize = regionPages * PageSize
	base := Addr(0x40000)
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace(0)
		if err := s.Map(base, regionSize, ProtRW); err != nil {
			return false
		}
		ref := make([]byte, regionSize)
		for i := 0; i < int(nops)+1; i++ {
			off := rng.Intn(regionSize - 1)
			n := rng.Intn(regionSize-off) + 1
			if n > 3*PageSize {
				n = 3 * PageSize
			}
			buf := make([]byte, n)
			rng.Read(buf)
			if err := s.Write(base.Add(uint64(off)), buf); err != nil {
				return false
			}
			copy(ref[off:], buf)
		}
		got, err := s.CopyOut(base, regionSize)
		if err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{0x1000, 0x1000}
	if !r.Contains(0x1000) || !r.Contains(0x1fff) || r.Contains(0x2000) {
		t.Error("Contains wrong at boundaries")
	}
	if !r.Overlaps(Range{0x1fff, 1}) || r.Overlaps(Range{0x2000, 1}) {
		t.Error("Overlaps wrong at boundaries")
	}
}

func TestMappingsCoalesce(t *testing.T) {
	s := NewSpace(0)
	if err := s.Map(0x1000, 3*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x4000, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x9000, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	ms := s.Mappings()
	if len(ms) != 3 {
		t.Fatalf("mappings = %v", ms)
	}
	// Adjacent equal-prot pages coalesce.
	if ms[0].Range.Length != 3*PageSize || ms[0].Prot != ProtRW {
		t.Errorf("first mapping %v", ms[0])
	}
	// Adjacent but different-prot does NOT (0x1000..0x4000 vs 0x4000).
	if ms[1].Range.Start != 0x4000 || ms[1].Prot != ProtRead {
		t.Errorf("second mapping %v", ms[1])
	}
	// Non-adjacent stays separate.
	if ms[2].Range.Start != 0x9000 {
		t.Errorf("third mapping %v", ms[2])
	}
}

func TestDescribe(t *testing.T) {
	s := NewSpace(1 << 30)
	if err := s.Reserve(0x40000000, 16*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	out := s.Describe()
	for _, want := range []string{"reserved", "rw-", "virtual in use", "of 1073741824"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestFaultAndErrorStrings(t *testing.T) {
	f := &Fault{Op: OpWrite, Addr: 0x1234, Reason: "unmapped"}
	if f.Error() == "" {
		t.Error("empty fault string")
	}
	e := &ErrExhausted{Limit: 100, Requested: 50, InUse: 80}
	if e.Error() == "" {
		t.Error("empty exhaustion string")
	}
	for _, op := range []AccessOp{OpRead, OpWrite, OpMap, OpUnmap, AccessOp(99)} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
	for _, p := range []Prot{ProtNone, ProtRead, ProtWrite, ProtRW, Prot(9)} {
		if p.String() == "" {
			t.Error("empty prot string")
		}
	}
}
