package vmem

import (
	"fmt"

	"migflow/internal/pup"
)

// Run is one contiguous span of page data: the unit of sparse memory
// images. A migration or checkpoint ships a list of runs — only the
// pages the owner actually dirtied — instead of a dense buffer, so
// the bytes moved are proportional to live state rather than
// allocated state (the paper's Figure 11 claim). Addr is absolute in
// the (globally agreed) simulated address space; Data's length is a
// whole number of pages.
type Run struct {
	Addr Addr
	Data []byte
}

// End returns the first address past the run.
func (r Run) End() Addr { return r.Addr.Add(uint64(len(r.Data))) }

// Pup serializes the run (pup.Pupable).
func (r *Run) Pup(p *pup.PUPer) error {
	a := uint64(r.Addr)
	if err := p.Uint64(&a); err != nil {
		return err
	}
	r.Addr = Addr(a)
	return p.Bytes(&r.Data)
}

// RunsPayload sums the data bytes across runs (the wire payload a
// sparse image ships, before framing).
func RunsPayload(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += len(r.Data)
	}
	return n
}

// minRunWire is the smallest encoding of one Run (8-byte address +
// 4-byte length prefix); length-prefix validators use it to bound a
// claimed run count against the bytes actually remaining.
const minRunWire = 12

// PupRuns visits a []Run with a uint32 count prefix, validating the
// count against the remaining buffer before allocating — a corrupt or
// hostile image cannot force a huge allocation.
func PupRuns(p *pup.PUPer, runs *[]Run) error {
	n := uint32(len(*runs))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.IsUnpacking() {
		if int(n)*minRunWire > p.Remaining() {
			return fmt.Errorf("vmem: corrupt image: %d runs claimed with %d bytes remaining", n, p.Remaining())
		}
		*runs = make([]Run, n)
	}
	for i := range *runs {
		if err := (*runs)[i].Pup(p); err != nil {
			return err
		}
	}
	return nil
}

// ValidateRuns checks that every run is page-aligned, a whole number
// of pages long, inside [base, base+size), and in strictly ascending
// non-overlapping order — the contract Install-side code relies on
// before writing an untrusted image into mapped memory.
func ValidateRuns(runs []Run, base Addr, size uint64) error {
	prev := base
	for i, r := range runs {
		if r.Addr.Offset() != 0 || uint64(len(r.Data))%PageSize != 0 || len(r.Data) == 0 {
			return fmt.Errorf("vmem: run %d (%s, %d bytes) is not whole pages", i, r.Addr, len(r.Data))
		}
		if r.Addr < prev || r.End() > base.Add(size) {
			return fmt.Errorf("vmem: run %d [%s,%s) outside region [%s,%s) or out of order",
				i, r.Addr, r.End(), base, base.Add(size))
		}
		prev = r.End()
	}
	return nil
}

// DenseFromRuns materializes a sparse image as one zero-filled buffer
// of size bytes based at base (for tests and dense-path comparisons).
func DenseFromRuns(runs []Run, base Addr, size uint64) []byte {
	out := make([]byte, size)
	for _, r := range runs {
		copy(out[r.Addr-base:], r.Data)
	}
	return out
}

// CopyOutRuns reads the dirty pages of [a, a+length) as maximal
// contiguous runs, copying their contents out. Pages that were never
// written since they were mapped zeroed (clean pages) and pages that
// are not mapped at all are skipped — the caller reconstructs them as
// zeroes (for stacks) or re-maps them on demand (for heap arenas).
// Dirty pages must be readable; the range must be page-aligned.
//
// This is the sparse-snapshot primitive behind migration: one pass
// under a read lock, no per-page locking, bytes out ∝ dirtied pages.
func (s *Space) CopyOutRuns(a Addr, length uint64) ([]Run, error) {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return nil, fmt.Errorf("vmem: CopyOutRuns(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var runs []Run
	var cur *Run
	first, n := a.PageNum(), length/PageSize
	for vpn := first; vpn < first+n; vpn++ {
		m, ok := s.pages[vpn]
		if !ok || !m.frame.Dirty() {
			cur = nil
			continue
		}
		if m.prot&ProtRead == 0 {
			return nil, &Fault{Op: OpRead, Addr: Addr(vpn << PageShift), Reason: "protection"}
		}
		if cur == nil {
			runs = append(runs, Run{Addr: Addr(vpn << PageShift)})
			cur = &runs[len(runs)-1]
		}
		cur.Data = append(cur.Data, m.frame.data[:]...)
	}
	return runs, nil
}

// DirtyPages counts the dirty mapped pages in [a, a+length) (for
// tests and accounting).
func (s *Space) DirtyPages(a Addr, length uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for vpn := a.PageNum(); vpn < a.Add(length).PageNum(); vpn++ {
		if m, ok := s.pages[vpn]; ok && m.frame.Dirty() {
			n++
		}
	}
	return n
}

// ClearDirty resets the dirty bit of every mapped page in the range —
// the post-snapshot step for callers that keep the pages mapped (an
// in-place checkpoint baseline). Migration does not need it: extract
// unmaps the source pages and recycled frames come back clean.
func (s *Space) ClearDirty(a Addr, length uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for vpn := a.PageNum(); vpn < a.Add(length).PageNum(); vpn++ {
		if m, ok := s.pages[vpn]; ok {
			m.frame.dirty.Store(false)
		}
	}
}
