package vmem

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSpaceRW measures a 64 KiB cross-page copy (write, then
// read back) performed in 256-byte pieces, the access pattern of the
// paths that actually hammer simulated memory: PUP serialization,
// stack frame push/pop, and the typed accessors all issue small
// accesses, not page-sized blocks. The window starts mid-page so
// pieces straddle page boundaries. Per-access page-table overhead
// (lock + one map probe per touched page) dominates here; the raw
// byte copy is a minor term.
func BenchmarkSpaceRW(b *testing.B) {
	const (
		winSize = 64 << 10
		piece   = 256
	)
	s := NewSpace(0)
	base := Addr(0x100000)
	if err := s.Map(base, winSize+2*PageSize, ProtRW); err != nil {
		b.Fatal(err)
	}
	start := base.Add(PageSize / 2)
	buf := make([]byte, piece)
	b.SetBytes(2 * winSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := uint64(0); off < winSize; off += piece {
			if err := s.Write(start.Add(off), buf); err != nil {
				b.Fatal(err)
			}
		}
		for off := uint64(0); off < winSize; off += piece {
			if err := s.Read(start.Add(off), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSpaceRWBlock is the block-at-once variant: one 64 KiB
// write plus one 64 KiB read per op. At this size the copy itself is
// memory-bandwidth bound, so this reports the substrate's ceiling
// rather than page-table overhead.
func BenchmarkSpaceRWBlock(b *testing.B) {
	const winSize = 64 << 10
	s := NewSpace(0)
	base := Addr(0x100000)
	if err := s.Map(base, winSize+2*PageSize, ProtRW); err != nil {
		b.Fatal(err)
	}
	a := base.Add(PageSize / 2)
	buf := make([]byte, winSize)
	b.SetBytes(2 * winSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(a, buf); err != nil {
			b.Fatal(err)
		}
		if err := s.Read(a, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceRWParallel runs the chunked 64 KiB copy with 8
// workers in disjoint windows of one shared Space — the multi-reader
// contention profile of parallel PEs (meaningful on multi-core hosts;
// on a single core it tracks BenchmarkSpaceRW).
func BenchmarkSpaceRWParallel(b *testing.B) {
	const (
		workers = 8
		winSize = 64 << 10
		piece   = 256
	)
	s := NewSpace(0)
	base := Addr(0x100000)
	winPages := uint64(winSize)/PageSize + 2
	for w := 0; w < workers; w++ {
		if err := s.Map(base.Add(uint64(w)*winPages*PageSize), winPages*PageSize, ProtRW); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.SetParallelism(1)
	b.SetBytes(2 * winSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(next.Add(1)-1) % workers
		start := base.Add(uint64(w)*winPages*PageSize + PageSize/2)
		buf := make([]byte, piece)
		for pb.Next() {
			for off := uint64(0); off < winSize; off += piece {
				if err := s.Write(start.Add(off), buf); err != nil {
					b.Error(err)
					return
				}
			}
			for off := uint64(0); off < winSize; off += piece {
				if err := s.Read(start.Add(off), buf); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkMapUnmap measures the page-table churn path (frame
// allocation and release) that stack creation and stack-copy context
// switches exercise.
func BenchmarkMapUnmap(b *testing.B) {
	s := NewSpace(0)
	const length = 16 * PageSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Map(0x100000, length, ProtRW); err != nil {
			b.Fatal(err)
		}
		if err := s.Unmap(0x100000, length); err != nil {
			b.Fatal(err)
		}
	}
}
