package vmem

import (
	"bytes"
	"testing"

	"migflow/internal/pup"
)

// TestDirtyBitLifecycle: pages come up clean, writes dirty exactly
// the touched pages, and recycled frames come back clean.
func TestDirtyBitLifecycle(t *testing.T) {
	s := NewSpace(0)
	base := Addr(0x10000)
	if err := s.Map(base, 4*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(base, 4*PageSize); n != 0 {
		t.Fatalf("fresh mapping has %d dirty pages", n)
	}
	// Touch pages 0 and 2 (the write to page 2 straddles nothing).
	if err := s.WriteUint64(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteUint64(base.Add(2*PageSize+100), 2); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(base, 4*PageSize); n != 2 {
		t.Fatalf("DirtyPages = %d, want 2", n)
	}
	// A write spanning a page boundary dirties both pages.
	if err := s.Write(base.Add(PageSize-4), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(base, 4*PageSize); n != 3 {
		t.Fatalf("DirtyPages after straddling write = %d, want 3", n)
	}
	s.ClearDirty(base, 4*PageSize)
	if n := s.DirtyPages(base, 4*PageSize); n != 0 {
		t.Fatalf("ClearDirty left %d dirty pages", n)
	}
	// Reads never dirty.
	if _, err := s.ReadUint64(base); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(base, 4*PageSize); n != 0 {
		t.Fatalf("read dirtied %d pages", n)
	}
	// Unmap → pool → remap: the recycled frame must come back clean
	// and zeroed.
	if err := s.WriteUint64(base, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(base, 4*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(base, 4*PageSize); n != 0 {
		t.Fatalf("remapped pages have %d dirty pages", n)
	}
	if v, err := s.ReadUint64(base); err != nil || v != 0 {
		t.Fatalf("remapped page not zero: %#x/%v", v, err)
	}
}

// TestCopyOutRunsCoalescing: dirty pages come back as maximal
// contiguous runs; clean and unmapped pages are skipped.
func TestCopyOutRunsCoalescing(t *testing.T) {
	s := NewSpace(0)
	base := Addr(0x100000)
	// Map pages 0-3 and 6-7; leave 4-5 unmapped (a hole, as in a heap
	// arena).
	if err := s.Map(base, 4*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(base.Add(6*PageSize), 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	// Dirty pages 1, 2 (contiguous), and 7.
	for _, pg := range []uint64{1, 2, 7} {
		if err := s.WriteUint64(base.Add(pg*PageSize+8), 0xA0+pg); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.CopyOutRuns(base, 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[0].Addr != base.Add(PageSize) || uint64(len(runs[0].Data)) != 2*PageSize {
		t.Errorf("run 0 = [%s +%d]", runs[0].Addr, len(runs[0].Data))
	}
	if runs[1].Addr != base.Add(7*PageSize) || uint64(len(runs[1].Data)) != PageSize {
		t.Errorf("run 1 = [%s +%d]", runs[1].Addr, len(runs[1].Data))
	}
	if RunsPayload(runs) != 3*PageSize {
		t.Errorf("payload = %d, want %d", RunsPayload(runs), 3*PageSize)
	}
	// The copied data matches what a dense read of each page returns.
	for _, r := range runs {
		dense, err := s.CopyOut(r.Addr, uint64(len(r.Data)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dense, r.Data) {
			t.Errorf("run at %s diverges from dense read", r.Addr)
		}
	}
	// Runs are copies, not aliases: mutating the space afterwards must
	// not change the captured image.
	snap := append([]byte(nil), runs[0].Data...)
	if err := s.WriteUint64(base.Add(PageSize), 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, runs[0].Data) {
		t.Error("CopyOutRuns aliases live page memory")
	}
	// Misaligned requests are rejected.
	if _, err := s.CopyOutRuns(base.Add(8), PageSize); err == nil {
		t.Error("misaligned CopyOutRuns accepted")
	}
	if _, err := s.CopyOutRuns(base, 100); err == nil {
		t.Error("non-page-multiple length accepted")
	}
}

// TestCopyOutRunsUnreadableDirtyPageFaults: a dirty page that is not
// readable is a real fault, not silently skipped state.
func TestCopyOutRunsUnreadableDirtyPageFaults(t *testing.T) {
	s := NewSpace(0)
	base := Addr(0x100000)
	if err := s.Map(base, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteUint64(base, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(base, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CopyOutRuns(base, PageSize); err == nil {
		t.Error("unreadable dirty page did not fault")
	}
}

// TestFrameMarkDirty: direct Data() writers flag the frame by hand,
// and frames shared across spaces keep the bit.
func TestFrameMarkDirty(t *testing.T) {
	f := NewFrame()
	if f.Dirty() {
		t.Fatal("fresh frame dirty")
	}
	f.Data()[0] = 1
	if f.Dirty() {
		t.Fatal("Data() write alone must not set the bit (that's the caller's job)")
	}
	f.MarkDirty()
	if !f.Dirty() {
		t.Fatal("MarkDirty did not stick")
	}
}

// TestPupRunsRoundTripAndHostileCount: wire round trip preserves
// runs; a corrupt count prefix is rejected before allocation.
func TestPupRunsRoundTripAndHostileCount(t *testing.T) {
	in := []Run{
		{Addr: 0x1000, Data: bytes.Repeat([]byte{0xAB}, PageSize)},
		{Addr: 0x5000, Data: bytes.Repeat([]byte{0xCD}, 2*PageSize)},
	}
	p := pup.NewGrowPacker()
	if err := PupRuns(p, &in); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), p.PackedBytes()...)
	var out []Run
	u := pup.NewUnpacker(data)
	if err := PupRuns(u, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Addr != 0x1000 || !bytes.Equal(out[1].Data, in[1].Data) {
		t.Fatalf("round trip mangled runs: %+v", out)
	}
	// Corrupt the count prefix to claim 2^32-1 runs.
	bad := append([]byte(nil), data...)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	var hostile []Run
	if err := PupRuns(pup.NewUnpacker(bad), &hostile); err == nil {
		t.Error("hostile run count accepted")
	}
}

// TestValidateRuns rejects every malformed shape Install relies on
// never seeing.
func TestValidateRuns(t *testing.T) {
	base, size := Addr(0x10000), uint64(4*PageSize)
	page := make([]byte, PageSize)
	ok := []Run{{Addr: base, Data: page}, {Addr: base.Add(2 * PageSize), Data: page}}
	if err := ValidateRuns(ok, base, size); err != nil {
		t.Errorf("valid runs rejected: %v", err)
	}
	cases := map[string][]Run{
		"misaligned addr":   {{Addr: base.Add(8), Data: page}},
		"partial page":      {{Addr: base, Data: make([]byte, 100)}},
		"empty run":         {{Addr: base, Data: nil}},
		"below base":        {{Addr: base - PageSize, Data: page}},
		"past end":          {{Addr: base.Add(size), Data: page}},
		"overlapping":       {{Addr: base, Data: make([]byte, 2*PageSize)}, {Addr: base.Add(PageSize), Data: page}},
		"descending order":  {{Addr: base.Add(PageSize), Data: page}, {Addr: base, Data: page}},
		"run spanning past": {{Addr: base.Add(3 * PageSize), Data: make([]byte, 2*PageSize)}},
	}
	for name, runs := range cases {
		if err := ValidateRuns(runs, base, size); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDenseFromRuns zero-fills the gaps.
func TestDenseFromRuns(t *testing.T) {
	base := Addr(0x10000)
	runs := []Run{{Addr: base.Add(PageSize), Data: bytes.Repeat([]byte{7}, PageSize)}}
	dense := DenseFromRuns(runs, base, 3*PageSize)
	if uint64(len(dense)) != 3*PageSize {
		t.Fatalf("dense length %d", len(dense))
	}
	if dense[0] != 0 || dense[PageSize] != 7 || dense[2*PageSize] != 0 {
		t.Error("dense reconstruction wrong")
	}
}
