package vmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Space is one simulated virtual address space: a page table mapping
// virtual page numbers to physical frames, plus reservation accounting
// against a configurable virtual-size limit.
//
// In the simulated machine each OS process (and therefore each PE's
// user-level-thread job) owns one Space. The Limit models the
// platform's pointer width: 32-bit platforms get a ~3 GiB usable
// limit, 64-bit platforms an effectively unbounded one. Reservations
// model isomalloc's "claimed in principle, but never allocated
// physical memory" regions (§3.4.2): they consume virtual size but no
// frames.
type Space struct {
	mu sync.RWMutex

	// limit is the virtual-size budget in bytes (0 = unlimited).
	limit uint64

	pages map[uint64]*mapping

	// reserved is a sorted, non-overlapping set of reserved ranges.
	reserved []Range

	// mappedOutside counts pages mapped outside any reserved range;
	// together with reservedBytes it forms the virtual-size usage.
	mappedOutside uint64
	reservedBytes uint64

	// gen counts page-table mutations (map, unmap, protect). Cached
	// extents record the gen they were built at; a mismatch
	// invalidates them — the software analogue of a TLB flush.
	gen atomic.Uint64

	// tlb caches recently resolved extents — maximal runs of
	// contiguous mapped pages with uniform protection — so the
	// Read/Write hot path resolves a run once instead of probing the
	// page map (under the lock) once per touched page.
	tlbClock atomic.Uint32
	tlb      [tlbSlots]atomic.Pointer[extent]
}

const (
	// tlbSlots is the number of cached extents per space: small and
	// fully associative, like a hardware micro-TLB. Typical access
	// streams (stack walk, PUP of one region, heap arena) touch a
	// handful of distinct runs.
	tlbSlots = 4
	// maxExtentPages caps how far an extent resolves in one fill, so
	// building one stays cheap even inside a multi-megabyte mapping.
	maxExtentPages = 512
)

// extent is one resolved run of pages: frames[i] backs page vpn0+i,
// all with protection prot, valid while the space's gen is unchanged.
type extent struct {
	start, end Addr // [start, end) byte range
	vpn0       uint64
	prot       Prot
	frames     []*Frame
	gen        uint64
}

// Range is a half-open byte range [Start, Start+Length) of virtual
// addresses.
type Range struct {
	Start  Addr
	Length uint64
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Start.Add(r.Length) }

// Contains reports whether a lies inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Start && a < r.End() }

// Overlaps reports whether two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End() && o.Start < r.End()
}

func (r Range) String() string {
	return fmt.Sprintf("[%s,%s)", r.Start, r.End())
}

// NewSpace creates an address space with the given virtual-size limit
// in bytes; limit 0 means unlimited (a 64-bit machine).
func NewSpace(limit uint64) *Space {
	return &Space{limit: limit, pages: make(map[uint64]*mapping)}
}

// Limit returns the configured virtual-size limit (0 = unlimited).
func (s *Space) Limit() uint64 { return s.limit }

// VirtualInUse returns the bytes of virtual address space currently
// consumed (reservations plus pages mapped outside reservations).
func (s *Space) VirtualInUse() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.virtualInUseLocked()
}

func (s *Space) virtualInUseLocked() uint64 {
	return s.reservedBytes + s.mappedOutside*PageSize
}

// MappedPages returns the number of pages with frames installed.
func (s *Space) MappedPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// inReserved reports whether virtual page vpn lies inside a reserved
// range. Caller holds s.mu.
func (s *Space) inReservedLocked(vpn uint64) bool {
	a := Addr(vpn << PageShift)
	i := sort.Search(len(s.reserved), func(i int) bool {
		return s.reserved[i].End() > a
	})
	return i < len(s.reserved) && s.reserved[i].Contains(a)
}

// Reserve claims [a, a+length) as reserved virtual address space
// without installing frames. The range must be page-aligned and must
// not overlap an existing reservation. Reserving counts against the
// space's virtual-size limit — this is how isomalloc regions exhaust
// 32-bit address spaces.
func (s *Space) Reserve(a Addr, length uint64) error {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return fmt.Errorf("vmem: Reserve(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Range{a, length}
	for _, o := range s.reserved {
		if r.Overlaps(o) {
			return fmt.Errorf("vmem: Reserve(%s, %d): overlaps existing reservation %s", a, length, o)
		}
	}
	if s.limit != 0 && s.virtualInUseLocked()+length > s.limit {
		return &ErrExhausted{Limit: s.limit, Requested: length, InUse: s.virtualInUseLocked()}
	}
	s.reserved = append(s.reserved, r)
	sort.Slice(s.reserved, func(i, j int) bool { return s.reserved[i].Start < s.reserved[j].Start })
	s.reservedBytes += length
	return nil
}

// Unreserve releases a reservation previously made with Reserve; the
// range must exactly match. Pages mapped inside it remain mapped and
// begin counting against the limit individually.
func (s *Space) Unreserve(a Addr, length uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, o := range s.reserved {
		if o.Start == a && o.Length == length {
			s.reserved = append(s.reserved[:i], s.reserved[i+1:]...)
			s.reservedBytes -= length
			// Re-count pages mapped inside the released range.
			for vpn := a.PageNum(); vpn < a.Add(length).PageNum(); vpn++ {
				if _, ok := s.pages[vpn]; ok {
					s.mappedOutside++
				}
			}
			return nil
		}
	}
	return fmt.Errorf("vmem: Unreserve(%s, %d): no such reservation", a, length)
}

// Map installs fresh zeroed frames over [a, a+length) with the given
// protection, like anonymous mmap. The range must be page-aligned and
// entirely unmapped.
func (s *Space) Map(a Addr, length uint64, prot Prot) error {
	return s.mapFrames(a, length, prot, nil)
}

// MapFrames installs the given existing frames at a, aliasing them:
// their reference counts rise and writes through either mapping are
// visible through the other. This is the mmap-the-thread's-pages-
// onto-the-stack-address operation of memory-aliasing threads (Fig 3).
func (s *Space) MapFrames(a Addr, frames []*Frame, prot Prot) error {
	return s.mapFrames(a, uint64(len(frames))*PageSize, prot, frames)
}

func (s *Space) mapFrames(a Addr, length uint64, prot Prot, frames []*Frame) error {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return fmt.Errorf("vmem: Map(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	if a == Nil {
		return &Fault{Op: OpMap, Addr: a, Reason: "page zero is not mappable"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first, n := a.PageNum(), length/PageSize
	outside := uint64(0)
	for vpn := first; vpn < first+n; vpn++ {
		if _, ok := s.pages[vpn]; ok {
			return &Fault{Op: OpMap, Addr: Addr(vpn << PageShift), Reason: "already mapped"}
		}
		if !s.inReservedLocked(vpn) {
			outside++
		}
	}
	if s.limit != 0 && s.virtualInUseLocked()+outside*PageSize > s.limit {
		return &ErrExhausted{Limit: s.limit, Requested: outside * PageSize, InUse: s.virtualInUseLocked()}
	}
	for i := uint64(0); i < n; i++ {
		var f *Frame
		owned := frames == nil
		if owned {
			f = newPooledFrame()
		} else {
			f = frames[i]
		}
		f.refs++
		s.pages[first+i] = &mapping{frame: f, prot: prot, owned: owned}
	}
	s.mappedOutside += outside
	s.gen.Add(1)
	return nil
}

// Unmap removes the mappings over [a, a+length); frames whose last
// mapping is removed are freed (their contents become unreachable).
// Every page in the range must currently be mapped.
func (s *Space) Unmap(a Addr, length uint64) error {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return fmt.Errorf("vmem: Unmap(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first, n := a.PageNum(), length/PageSize
	for vpn := first; vpn < first+n; vpn++ {
		if _, ok := s.pages[vpn]; !ok {
			return &Fault{Op: OpUnmap, Addr: Addr(vpn << PageShift), Reason: "not mapped"}
		}
	}
	for vpn := first; vpn < first+n; vpn++ {
		m := s.pages[vpn]
		m.frame.refs--
		if m.frame.refs == 0 && m.owned {
			// Only frames this space allocated itself are recycled:
			// frames installed via MapFrames may be retained by the
			// caller (memory-aliasing stacks keep theirs across
			// switch-out) and must stay untouched after unmap.
			framePool.Put(m.frame)
		}
		delete(s.pages, vpn)
		if !s.inReservedLocked(vpn) {
			s.mappedOutside--
		}
	}
	s.gen.Add(1)
	return nil
}

// Protect changes the protection of the already-mapped range.
func (s *Space) Protect(a Addr, length uint64, prot Prot) error {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return fmt.Errorf("vmem: Protect(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first, n := a.PageNum(), length/PageSize
	for vpn := first; vpn < first+n; vpn++ {
		if _, ok := s.pages[vpn]; !ok {
			return &Fault{Op: OpMap, Addr: Addr(vpn << PageShift), Reason: "not mapped"}
		}
	}
	for vpn := first; vpn < first+n; vpn++ {
		s.pages[vpn].prot = prot
	}
	s.gen.Add(1)
	return nil
}

// Frames returns the frames backing [a, a+length) in order, for
// aliasing into another location or extracting for migration. The
// range must be page-aligned and fully mapped.
func (s *Space) Frames(a Addr, length uint64) ([]*Frame, error) {
	if a.Offset() != 0 || length%PageSize != 0 || length == 0 {
		return nil, fmt.Errorf("vmem: Frames(%s, %d): range must be non-empty and page-aligned", a, length)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	first, n := a.PageNum(), length/PageSize
	out := make([]*Frame, 0, n)
	for vpn := first; vpn < first+n; vpn++ {
		m, ok := s.pages[vpn]
		if !ok {
			return nil, &Fault{Op: OpRead, Addr: Addr(vpn << PageShift), Reason: "not mapped"}
		}
		out = append(out, m.frame)
	}
	return out, nil
}

// Mapped reports whether every page of [a, a+length) is mapped.
func (s *Space) Mapped(a Addr, length uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if length == 0 {
		length = 1
	}
	for vpn := a.PageNum(); vpn <= (a + Addr(length) - 1).PageNum(); vpn++ {
		if _, ok := s.pages[vpn]; !ok {
			return false
		}
	}
	return true
}

// Read copies len(p) bytes starting at a into p, faulting on unmapped
// or non-readable pages.
func (s *Space) Read(a Addr, p []byte) error {
	return s.access(a, p, OpRead)
}

// Write copies p into simulated memory starting at a, faulting on
// unmapped or non-writable pages. Every page touched is marked dirty
// — the signal sparse migration snapshots (CopyOutRuns) consume.
func (s *Space) Write(a Addr, p []byte) error {
	return s.access(a, p, OpWrite)
}

// CopyIn is Write under the name the migration data path uses: it
// installs an incoming image's bytes, dirtying the pages so a later
// onward migration ships them again.
func (s *Space) CopyIn(a Addr, p []byte) error {
	return s.access(a, p, OpWrite)
}

// access is the shared Read/Write engine. It resolves the extent
// covering a — from the TLB when possible, from the page table under
// a read lock otherwise — checks protection once per extent, and then
// copies page-by-page without touching the lock or the page map.
//
// The fast path is lock-free: an extent is trusted only while the
// space's gen matches the gen it was built at, so any map, unmap or
// protect since forces re-resolution. As with real memory, accessing
// a range concurrently with unmapping it is a caller bug; the copy
// then linearizes before the unmap.
func (s *Space) access(a Addr, p []byte, op AccessOp) error {
	need := ProtRead
	if op == OpWrite {
		need = ProtWrite
	}
	for len(p) > 0 {
		e := s.tlbFind(a)
		if e == nil {
			var err error
			e, err = s.tlbFill(a, op)
			if err != nil {
				return err
			}
		}
		if e.prot&need == 0 {
			return &Fault{Op: op, Addr: a, Reason: "protection"}
		}
		for len(p) > 0 && a < e.end {
			f := e.frames[a.PageNum()-e.vpn0]
			off := a.Offset()
			var n int
			if op == OpWrite {
				n = copy(f.data[off:], p)
				f.markDirty()
			} else {
				n = copy(p, f.data[off:])
			}
			p = p[n:]
			a = a.Add(uint64(n))
		}
	}
	return nil
}

// tlbFind returns a cached extent containing a, or nil.
func (s *Space) tlbFind(a Addr) *extent {
	g := s.gen.Load()
	for i := range s.tlb {
		e := s.tlb[i].Load()
		if e != nil && e.gen == g && a >= e.start && a < e.end {
			return e
		}
	}
	return nil
}

// tlbFill resolves the extent containing a from the page table and
// caches it, evicting round-robin. It faults if a is unmapped.
func (s *Space) tlbFill(a Addr, op AccessOp) (*extent, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vpn := a.PageNum()
	m, ok := s.pages[vpn]
	if !ok {
		return nil, &Fault{Op: op, Addr: a, Reason: "unmapped"}
	}
	prot := m.prot
	// Grow the run backward a little and forward a lot (forward is the
	// streaming direction), stopping at unmapped pages, protection
	// changes, or the size cap.
	lo := vpn
	for vpn-lo < maxExtentPages/2 && lo > 0 {
		mm, ok := s.pages[lo-1]
		if !ok || mm.prot != prot {
			break
		}
		lo--
	}
	hi := vpn
	for hi-lo+1 < maxExtentPages {
		mm, ok := s.pages[hi+1]
		if !ok || mm.prot != prot {
			break
		}
		hi++
	}
	e := &extent{
		start:  Addr(lo << PageShift),
		end:    Addr((hi + 1) << PageShift),
		vpn0:   lo,
		prot:   prot,
		frames: make([]*Frame, hi-lo+1),
		// gen is stable here: mutators hold the write lock when they
		// bump it, and we hold the read lock.
		gen: s.gen.Load(),
	}
	for i := range e.frames {
		e.frames[i] = s.pages[lo+uint64(i)].frame
	}
	slot := s.tlbClock.Add(1) % tlbSlots
	s.tlb[slot].Store(e)
	return e, nil
}

// CopyOut reads length bytes at a into a fresh buffer.
func (s *Space) CopyOut(a Addr, length uint64) ([]byte, error) {
	p := make([]byte, length)
	if err := s.Read(a, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Zero clears [a, a+length), which must be writable.
func (s *Space) Zero(a Addr, length uint64) error {
	var zeros [PageSize]byte
	for length > 0 {
		n := uint64(PageSize)
		if length < n {
			n = length
		}
		if err := s.Write(a, zeros[:n]); err != nil {
			return err
		}
		a = a.Add(n)
		length -= n
	}
	return nil
}
