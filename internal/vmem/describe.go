package vmem

import (
	"fmt"
	"sort"
	"strings"
)

// Mapping describes one contiguous run of pages with equal
// protection — a line of the /proc/<pid>/maps analogue.
type Mapping struct {
	Range Range
	Prot  Prot
}

// Mappings returns the space's mapped regions, coalesced into maximal
// runs of equal protection, sorted by address.
func (s *Space) Mappings() []Mapping {
	s.mu.RLock()
	vpns := make([]uint64, 0, len(s.pages))
	prots := make(map[uint64]Prot, len(s.pages))
	for vpn, m := range s.pages {
		vpns = append(vpns, vpn)
		prots[vpn] = m.prot
	}
	s.mu.RUnlock()
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	var out []Mapping
	for _, vpn := range vpns {
		a := Addr(vpn << PageShift)
		p := prots[vpn]
		if n := len(out); n > 0 && out[n-1].Range.End() == a && out[n-1].Prot == p {
			out[n-1].Range.Length += PageSize
			continue
		}
		out = append(out, Mapping{Range: Range{Start: a, Length: PageSize}, Prot: p})
	}
	return out
}

// Describe renders the space like /proc/<pid>/maps: one line per
// coalesced mapping plus the reservations — the debugging view of a
// PE's memory layout.
func (s *Space) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "virtual in use: %d bytes", s.VirtualInUse())
	if lim := s.Limit(); lim != 0 {
		fmt.Fprintf(&b, " of %d", lim)
	}
	b.WriteByte('\n')
	s.mu.RLock()
	reserved := append([]Range(nil), s.reserved...)
	s.mu.RUnlock()
	for _, r := range reserved {
		fmt.Fprintf(&b, "%s-%s  reserved\n", r.Start, r.End())
	}
	for _, m := range s.Mappings() {
		fmt.Fprintf(&b, "%s-%s  %s  %d pages\n", m.Range.Start, m.Range.End(), m.Prot, m.Range.Length/PageSize)
	}
	return b.String()
}
