// Package pup is a Go rendition of the Charm++ PUP (Pack/UnPack)
// framework (§3.1.1): one traversal method per type drives three
// operations — sizing, packing and unpacking — so migratable objects
// describe their state once and get byte-exact serialization for
// migration and checkpointing.
//
// All integers are encoded little-endian and fixed-width; variable
// collections are length-prefixed with a uint32. The same Pup method
// must visit the same fields in the same order in every mode; Seek-
// style skipping is deliberately absent to keep encodings canonical.
package pup

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mode selects what a PUPer traversal does.
type Mode int

// Traversal modes.
const (
	// Sizing counts the bytes a Packing traversal would produce.
	Sizing Mode = iota
	// Packing writes fields into the buffer.
	Packing
	// Unpacking reads fields back out of the buffer.
	Unpacking
)

func (m Mode) String() string {
	switch m {
	case Sizing:
		return "sizing"
	case Packing:
		return "packing"
	case Unpacking:
		return "unpacking"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pupable is implemented by any type that can migrate: its Pup method
// visits every field through p.
type Pupable interface {
	Pup(p *PUPer) error
}

// PUPer carries one traversal. Create with NewSizer, NewPacker or
// NewUnpacker; or use the Size/Pack/Unpack helpers.
type PUPer struct {
	mode Mode
	buf  []byte
	off  int
	size int
}

// NewSizer returns a sizing PUPer.
func NewSizer() *PUPer { return &PUPer{mode: Sizing} }

// NewPacker returns a packing PUPer writing into a buffer of exactly
// size bytes.
func NewPacker(size int) *PUPer { return &PUPer{mode: Packing, buf: make([]byte, size)} }

// NewUnpacker returns an unpacking PUPer reading from data.
func NewUnpacker(data []byte) *PUPer { return &PUPer{mode: Unpacking, buf: data} }

// IsSizing reports whether the traversal is only measuring.
func (p *PUPer) IsSizing() bool { return p.mode == Sizing }

// IsPacking reports whether the traversal is serializing.
func (p *PUPer) IsPacking() bool { return p.mode == Packing }

// IsUnpacking reports whether the traversal is deserializing — used
// by Pup methods that must allocate before filling ("if
// p.IsUnpacking() { t.data = make(...) }").
func (p *PUPer) IsUnpacking() bool { return p.mode == Unpacking }

// Size returns the byte count accumulated by a sizing traversal.
func (p *PUPer) Size() int { return p.size }

// Buffer returns the packed bytes after a packing traversal.
func (p *PUPer) Buffer() []byte { return p.buf }

// Remaining returns unread bytes during unpacking.
func (p *PUPer) Remaining() int { return len(p.buf) - p.off }

func (p *PUPer) area(n int) ([]byte, error) {
	switch p.mode {
	case Sizing:
		p.size += n
		return nil, nil
	case Packing:
		if p.off+n > len(p.buf) {
			return nil, fmt.Errorf("pup: pack overflow: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
		}
	case Unpacking:
		if p.off+n > len(p.buf) {
			return nil, fmt.Errorf("pup: unpack underflow: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
		}
	}
	a := p.buf[p.off : p.off+n]
	p.off += n
	return a, nil
}

// Uint64 visits a fixed-width 64-bit unsigned field.
func (p *PUPer) Uint64(v *uint64) error {
	a, err := p.area(8)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		binary.LittleEndian.PutUint64(a, *v)
	} else {
		*v = binary.LittleEndian.Uint64(a)
	}
	return nil
}

// Uint32 visits a 32-bit unsigned field.
func (p *PUPer) Uint32(v *uint32) error {
	a, err := p.area(4)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		binary.LittleEndian.PutUint32(a, *v)
	} else {
		*v = binary.LittleEndian.Uint32(a)
	}
	return nil
}

// Int visits an int as a 64-bit two's-complement value.
func (p *PUPer) Int(v *int) error {
	u := uint64(int64(*v))
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = int(int64(u))
	}
	return nil
}

// Int64 visits an int64.
func (p *PUPer) Int64(v *int64) error {
	u := uint64(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = int64(u)
	}
	return nil
}

// Float64 visits a float64 (IEEE 754 bits).
func (p *PUPer) Float64(v *float64) error {
	u := math.Float64bits(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = math.Float64frombits(u)
	}
	return nil
}

// Bool visits a bool as one byte.
func (p *PUPer) Bool(v *bool) error {
	var b byte
	if *v {
		b = 1
	}
	if err := p.Byte(&b); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = b != 0
	}
	return nil
}

// Byte visits a single byte.
func (p *PUPer) Byte(v *byte) error {
	a, err := p.area(1)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		a[0] = *v
	} else {
		*v = a[0]
	}
	return nil
}

// Bytes visits a variable-length byte slice (uint32 length prefix).
// Unpacking replaces *v with a fresh slice.
func (p *PUPer) Bytes(v *[]byte) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = make([]byte, n)
	}
	a, err := p.area(int(n))
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		copy(a, *v)
	} else {
		copy(*v, a)
	}
	return nil
}

// String visits a string (uint32 length prefix).
func (p *PUPer) String(v *string) error {
	b := []byte(*v)
	if err := p.Bytes(&b); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = string(b)
	}
	return nil
}

// Uint64s visits a variable-length []uint64.
func (p *PUPer) Uint64s(v *[]uint64) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = make([]uint64, n)
	}
	for i := range *v {
		if err := p.Uint64(&(*v)[i]); err != nil {
			return err
		}
	}
	return nil
}

// Float64s visits a variable-length []float64.
func (p *PUPer) Float64s(v *[]float64) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = make([]float64, n)
	}
	for i := range *v {
		if err := p.Float64(&(*v)[i]); err != nil {
			return err
		}
	}
	return nil
}

// Size measures obj's packed size.
func Size(obj Pupable) (int, error) {
	p := NewSizer()
	if err := obj.Pup(p); err != nil {
		return 0, err
	}
	return p.Size(), nil
}

// Pack serializes obj with a sizing pass followed by a packing pass.
func Pack(obj Pupable) ([]byte, error) {
	n, err := Size(obj)
	if err != nil {
		return nil, err
	}
	p := NewPacker(n)
	if err := obj.Pup(p); err != nil {
		return nil, err
	}
	if p.off != n {
		return nil, fmt.Errorf("pup: Pup wrote %d bytes but sized %d — traversal is mode-dependent", p.off, n)
	}
	return p.Buffer(), nil
}

// Unpack deserializes data into obj and requires the whole buffer to
// be consumed.
func Unpack(data []byte, obj Pupable) error {
	p := NewUnpacker(data)
	if err := obj.Pup(p); err != nil {
		return err
	}
	if p.Remaining() != 0 {
		return fmt.Errorf("pup: %d bytes left after unpacking — traversal is mode-dependent", p.Remaining())
	}
	return nil
}
