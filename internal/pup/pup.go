// Package pup is a Go rendition of the Charm++ PUP (Pack/UnPack)
// framework (§3.1.1): one traversal method per type drives three
// operations — sizing, packing and unpacking — so migratable objects
// describe their state once and get byte-exact serialization for
// migration and checkpointing.
//
// All integers are encoded little-endian and fixed-width; variable
// collections are length-prefixed with a uint32. The same Pup method
// must visit the same fields in the same order in every mode; Seek-
// style skipping is deliberately absent to keep encodings canonical.
//
// Packing is single-pass: a packer grows its buffer on demand, so no
// separate sizing traversal is needed (NewSizer remains for callers
// that want a byte count without producing bytes). The migration hot
// path recycles packers through a sync.Pool via AcquirePacker/Release
// so steady-state packing allocates nothing.
//
// Unpacking is hardened against corrupt or hostile images: every
// length prefix is validated against the bytes actually remaining
// before any allocation, so a flipped length byte cannot force a
// multi-gigabyte make().
package pup

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Mode selects what a PUPer traversal does.
type Mode int

// Traversal modes.
const (
	// Sizing counts the bytes a Packing traversal would produce.
	Sizing Mode = iota
	// Packing writes fields into the buffer.
	Packing
	// Unpacking reads fields back out of the buffer.
	Unpacking
)

func (m Mode) String() string {
	switch m {
	case Sizing:
		return "sizing"
	case Packing:
		return "packing"
	case Unpacking:
		return "unpacking"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pupable is implemented by any type that can migrate: its Pup method
// visits every field through p.
type Pupable interface {
	Pup(p *PUPer) error
}

// PUPer carries one traversal. Create with NewSizer, NewPacker,
// NewUnpacker or AcquirePacker; or use the Size/Pack/Unpack helpers.
type PUPer struct {
	mode Mode
	buf  []byte
	off  int
	size int
	grow bool // Packing only: buffer grows on demand (single-pass)
}

// NewSizer returns a sizing PUPer.
func NewSizer() *PUPer { return &PUPer{mode: Sizing} }

// NewPacker returns a packing PUPer writing into a buffer of exactly
// size bytes; overrunning it is an error (for callers that pre-sized
// with NewSizer and want the consistency check).
func NewPacker(size int) *PUPer { return &PUPer{mode: Packing, buf: make([]byte, size)} }

// NewGrowPacker returns a single-pass packing PUPer whose buffer
// grows as fields are written.
func NewGrowPacker() *PUPer { return &PUPer{mode: Packing, grow: true} }

// NewUnpacker returns an unpacking PUPer reading from data.
func NewUnpacker(data []byte) *PUPer { return &PUPer{mode: Unpacking, buf: data} }

// packerPool recycles growable packers (and, more importantly, their
// buffers) for the migration hot path.
var packerPool = sync.Pool{New: func() any { return &PUPer{} }}

// AcquirePacker returns a pooled single-pass packer. PackedBytes (and
// any slice derived from it) is valid only until Release; callers
// that need the bytes to outlive the packer must copy them.
func AcquirePacker() *PUPer {
	p := packerPool.Get().(*PUPer)
	p.mode = Packing
	p.grow = true
	p.off = 0
	p.size = 0
	p.buf = p.buf[:cap(p.buf)]
	return p
}

// Release returns a packer obtained from AcquirePacker to the pool,
// retaining its buffer for the next acquisition.
func (p *PUPer) Release() {
	packerPool.Put(p)
}

// Reset rewinds a packing PUPer so it can serialize another object
// into the same buffer (bulk checkpointing packs thousands of
// elements through one packer).
func (p *PUPer) Reset() {
	p.off = 0
	p.size = 0
}

// IsSizing reports whether the traversal is only measuring.
func (p *PUPer) IsSizing() bool { return p.mode == Sizing }

// IsPacking reports whether the traversal is serializing.
func (p *PUPer) IsPacking() bool { return p.mode == Packing }

// IsUnpacking reports whether the traversal is deserializing — used
// by Pup methods that must allocate before filling ("if
// p.IsUnpacking() { t.data = make(...) }").
func (p *PUPer) IsUnpacking() bool { return p.mode == Unpacking }

// Size returns the byte count accumulated by a sizing traversal.
func (p *PUPer) Size() int { return p.size }

// Buffer returns the packed bytes after a packing traversal.
func (p *PUPer) Buffer() []byte { return p.buf[:p.off] }

// PackedBytes returns the bytes written so far by a packing
// traversal. For pooled packers the slice aliases the pooled buffer
// and dies at Release.
func (p *PUPer) PackedBytes() []byte { return p.buf[:p.off] }

// Remaining returns unread bytes during unpacking.
func (p *PUPer) Remaining() int { return len(p.buf) - p.off }

func (p *PUPer) area(n int) ([]byte, error) {
	switch p.mode {
	case Sizing:
		p.size += n
		return nil, nil
	case Packing:
		if p.off+n > len(p.buf) {
			if !p.grow {
				return nil, fmt.Errorf("pup: pack overflow: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
			}
			p.growTo(p.off + n)
		}
	case Unpacking:
		if p.off+n > len(p.buf) {
			return nil, fmt.Errorf("pup: unpack underflow: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
		}
	}
	a := p.buf[p.off : p.off+n]
	p.off += n
	return a, nil
}

// growTo extends the buffer to at least need bytes, doubling to
// amortize (pooled packers therefore converge on the job's largest
// image and stop allocating).
func (p *PUPer) growTo(need int) {
	newCap := 2 * len(p.buf)
	if newCap < need {
		newCap = need
	}
	if newCap < 256 {
		newCap = 256
	}
	nb := make([]byte, newCap)
	copy(nb, p.buf[:p.off])
	p.buf = nb
}

// checkLen validates a claimed element count against the bytes left
// in the buffer before any allocation happens. elemSize is the
// minimum wire size of one element.
func (p *PUPer) checkLen(n uint32, elemSize int, what string) error {
	if int64(n)*int64(elemSize) > int64(p.Remaining()) {
		return fmt.Errorf("pup: corrupt image: %s claims %d elements (%d bytes each) with %d bytes remaining",
			what, n, elemSize, p.Remaining())
	}
	return nil
}

// Uint64 visits a fixed-width 64-bit unsigned field.
func (p *PUPer) Uint64(v *uint64) error {
	a, err := p.area(8)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		binary.LittleEndian.PutUint64(a, *v)
	} else {
		*v = binary.LittleEndian.Uint64(a)
	}
	return nil
}

// Uint32 visits a 32-bit unsigned field.
func (p *PUPer) Uint32(v *uint32) error {
	a, err := p.area(4)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		binary.LittleEndian.PutUint32(a, *v)
	} else {
		*v = binary.LittleEndian.Uint32(a)
	}
	return nil
}

// Int visits an int as a 64-bit two's-complement value.
func (p *PUPer) Int(v *int) error {
	u := uint64(int64(*v))
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = int(int64(u))
	}
	return nil
}

// Int64 visits an int64.
func (p *PUPer) Int64(v *int64) error {
	u := uint64(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = int64(u)
	}
	return nil
}

// Float64 visits a float64 (IEEE 754 bits).
func (p *PUPer) Float64(v *float64) error {
	u := math.Float64bits(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = math.Float64frombits(u)
	}
	return nil
}

// Bool visits a bool as one byte.
func (p *PUPer) Bool(v *bool) error {
	var b byte
	if *v {
		b = 1
	}
	if err := p.Byte(&b); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = b != 0
	}
	return nil
}

// Byte visits a single byte.
func (p *PUPer) Byte(v *byte) error {
	a, err := p.area(1)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		a[0] = *v
	} else {
		*v = a[0]
	}
	return nil
}

// Bytes visits a variable-length byte slice (uint32 length prefix).
// Unpacking validates the prefix against the remaining buffer, then
// replaces *v with a fresh slice.
func (p *PUPer) Bytes(v *[]byte) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		if err := p.checkLen(n, 1, "[]byte"); err != nil {
			return err
		}
		*v = make([]byte, n)
	}
	a, err := p.area(int(n))
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		copy(a, *v)
	} else {
		copy(*v, a)
	}
	return nil
}

// String visits a string (uint32 length prefix).
func (p *PUPer) String(v *string) error {
	b := []byte(*v)
	if err := p.Bytes(&b); err != nil {
		return err
	}
	if p.mode == Unpacking {
		*v = string(b)
	}
	return nil
}

// Uint64s visits a variable-length []uint64 as one bulk area instead
// of per-element calls.
func (p *PUPer) Uint64s(v *[]uint64) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		if err := p.checkLen(n, 8, "[]uint64"); err != nil {
			return err
		}
		*v = make([]uint64, n)
	}
	a, err := p.area(int(n) * 8)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		for i, x := range *v {
			binary.LittleEndian.PutUint64(a[i*8:], x)
		}
	} else {
		for i := range *v {
			(*v)[i] = binary.LittleEndian.Uint64(a[i*8:])
		}
	}
	return nil
}

// Float64s visits a variable-length []float64 as one bulk area.
func (p *PUPer) Float64s(v *[]float64) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.mode == Unpacking {
		if err := p.checkLen(n, 8, "[]float64"); err != nil {
			return err
		}
		*v = make([]float64, n)
	}
	a, err := p.area(int(n) * 8)
	if err != nil || a == nil {
		return err
	}
	if p.mode == Packing {
		for i, x := range *v {
			binary.LittleEndian.PutUint64(a[i*8:], math.Float64bits(x))
		}
	} else {
		for i := range *v {
			(*v)[i] = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
		}
	}
	return nil
}

// Size measures obj's packed size.
func Size(obj Pupable) (int, error) {
	p := NewSizer()
	if err := obj.Pup(p); err != nil {
		return 0, err
	}
	return p.Size(), nil
}

// Pack serializes obj in a single traversal through a pooled
// growable buffer (no sizing pass) and returns an exact-size copy.
// Hot paths that consume the bytes before the next pack should use
// AcquirePacker directly and skip the copy.
func Pack(obj Pupable) ([]byte, error) {
	p := AcquirePacker()
	defer p.Release()
	if err := obj.Pup(p); err != nil {
		return nil, err
	}
	out := make([]byte, p.off)
	copy(out, p.buf[:p.off])
	return out, nil
}

// Unpack deserializes data into obj and requires the whole buffer to
// be consumed.
func Unpack(data []byte, obj Pupable) error {
	p := NewUnpacker(data)
	if err := obj.Pup(p); err != nil {
		return err
	}
	if p.Remaining() != 0 {
		return fmt.Errorf("pup: %d bytes left after unpacking — traversal is mode-dependent", p.Remaining())
	}
	return nil
}
