package pup

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// particle is a PUP example type exercising every visitor.
type particle struct {
	ID     uint64
	Tag    uint32
	Step   int
	Delta  int64
	Mass   float64
	Alive  bool
	Flag   byte
	Name   string
	Raw    []byte
	Coords []float64
	Hist   []uint64
}

func (pt *particle) Pup(p *PUPer) error {
	if err := p.Uint64(&pt.ID); err != nil {
		return err
	}
	if err := p.Uint32(&pt.Tag); err != nil {
		return err
	}
	if err := p.Int(&pt.Step); err != nil {
		return err
	}
	if err := p.Int64(&pt.Delta); err != nil {
		return err
	}
	if err := p.Float64(&pt.Mass); err != nil {
		return err
	}
	if err := p.Bool(&pt.Alive); err != nil {
		return err
	}
	if err := p.Byte(&pt.Flag); err != nil {
		return err
	}
	if err := p.String(&pt.Name); err != nil {
		return err
	}
	if err := p.Bytes(&pt.Raw); err != nil {
		return err
	}
	if err := p.Float64s(&pt.Coords); err != nil {
		return err
	}
	return p.Uint64s(&pt.Hist)
}

func TestRoundTrip(t *testing.T) {
	in := &particle{
		ID: 42, Tag: 7, Step: -3, Delta: -1 << 40, Mass: 6.02e23,
		Alive: true, Flag: 0xAB, Name: "água", Raw: []byte{1, 2, 3},
		Coords: []float64{1.5, -2.25, math.Inf(1)},
		Hist:   []uint64{0, ^uint64(0)},
	}
	data, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Size(in)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Errorf("Size = %d, len(Pack) = %d", n, len(data))
	}
	out := &particle{}
	if err := Unpack(data, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestEmptyCollections(t *testing.T) {
	in := &particle{Raw: []byte{}, Coords: []float64{}, Hist: []uint64{}}
	data, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	out := &particle{}
	if err := Unpack(data, out); err != nil {
		t.Fatal(err)
	}
	if len(out.Raw) != 0 || len(out.Coords) != 0 || len(out.Hist) != 0 {
		t.Errorf("empty collections round-tripped non-empty: %+v", out)
	}
}

func TestUnpackTruncatedFails(t *testing.T) {
	in := &particle{Name: "x", Raw: []byte{1}}
	data, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(data[:len(data)-1], &particle{}); err == nil {
		t.Error("truncated unpack should fail")
	}
}

func TestUnpackTrailingGarbageFails(t *testing.T) {
	in := &particle{}
	data, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(append(data, 0), &particle{}); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// badPup sizes less than it packs.
type badPup struct{ b bool }

func (x *badPup) Pup(p *PUPer) error {
	var v uint64
	if x.b && p.IsSizing() {
		return nil
	}
	return p.Uint64(&v)
}

// Pack is single-pass now, so a Sizing/Packing mismatch is caught on
// the pre-sized path (NewSizer + NewPacker): the fixed-size buffer
// overflows when the packing traversal writes more than sizing
// counted.
func TestModeDependentTraversalDetected(t *testing.T) {
	x := &badPup{b: true}
	n, err := Size(x)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacker(n)
	if err := x.Pup(p); err == nil {
		t.Error("mode-dependent Pup should overflow a pre-sized packer")
	}
	// A Packing/Unpacking mismatch is caught at Unpack: the packed
	// bytes don't line up with what the unpacking traversal consumes.
	data, err := Pack(&badPup{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(append(data, 0), &badPup{}); err == nil {
		t.Error("leftover bytes should be detected at Unpack")
	}
}

func TestPackOverflowDetected(t *testing.T) {
	p := NewPacker(4) // too small for a uint64
	var v uint64
	if err := p.Uint64(&v); err == nil {
		t.Error("pack overflow should error")
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Sizing, Packing, Unpacking, Mode(9)} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}

func TestModePredicates(t *testing.T) {
	if !NewSizer().IsSizing() || NewSizer().IsPacking() {
		t.Error("sizer predicates wrong")
	}
	if !NewPacker(0).IsPacking() {
		t.Error("packer predicates wrong")
	}
	if !NewUnpacker(nil).IsUnpacking() {
		t.Error("unpacker predicates wrong")
	}
}

// Property: every particle round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(id uint64, tag uint32, step int, mass float64, name string, raw []byte, coords []float64) bool {
		in := &particle{ID: id, Tag: tag, Step: step, Mass: mass, Name: name, Raw: raw, Coords: coords}
		data, err := Pack(in)
		if err != nil {
			return false
		}
		out := &particle{}
		if err := Unpack(data, out); err != nil {
			return false
		}
		// NaN != NaN breaks DeepEqual; compare bits for mass.
		if math.Float64bits(in.Mass) != math.Float64bits(out.Mass) {
			return false
		}
		in.Mass, out.Mass = 0, 0
		for i := range in.Coords {
			if math.Float64bits(in.Coords[i]) != math.Float64bits(out.Coords[i]) {
				return false
			}
			in.Coords[i], out.Coords[i] = 0, 0
		}
		if in.Raw == nil {
			in.Raw = []byte{}
		}
		if in.Coords == nil {
			in.Coords = []float64{}
		}
		if in.Hist == nil {
			in.Hist = []uint64{}
		}
		out.Hist = in.Hist // both empty representations
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
