package pup

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// hostile builds a buffer claiming n elements with only a few real
// bytes behind the prefix.
func hostile(n uint32, tail int) []byte {
	b := make([]byte, 4+tail)
	binary.LittleEndian.PutUint32(b, n)
	return b
}

// TestHostileLengthPrefixes: every length-prefixed visitor must
// reject a count that exceeds the remaining bytes BEFORE allocating.
// (Before the check, a flipped prefix byte meant a multi-GB make.)
func TestHostileLengthPrefixes(t *testing.T) {
	huge := uint32(0xFFFF_FFFF)
	t.Run("bytes", func(t *testing.T) {
		var v []byte
		if err := NewUnpacker(hostile(huge, 8)).Bytes(&v); err == nil {
			t.Error("hostile []byte length accepted")
		}
	})
	t.Run("string", func(t *testing.T) {
		var v string
		if err := NewUnpacker(hostile(huge, 8)).String(&v); err == nil {
			t.Error("hostile string length accepted")
		}
	})
	t.Run("uint64s", func(t *testing.T) {
		var v []uint64
		// 2^29 elements would "only" need a 4 GiB slice — the check
		// must fire on element count × width, not on count alone.
		if err := NewUnpacker(hostile(1<<29, 16)).Uint64s(&v); err == nil {
			t.Error("hostile []uint64 length accepted")
		}
	})
	t.Run("float64s", func(t *testing.T) {
		var v []float64
		if err := NewUnpacker(hostile(1<<29, 16)).Float64s(&v); err == nil {
			t.Error("hostile []float64 length accepted")
		}
	})
}

// TestPooledPackerReuse: acquire → pack → release → acquire again
// reuses the grown buffer, and Reset rewinds without shrinking.
func TestPooledPackerReuse(t *testing.T) {
	p := AcquirePacker()
	payload := bytes.Repeat([]byte{0x5A}, 10_000)
	if err := p.Bytes(&payload); err != nil {
		t.Fatal(err)
	}
	if len(p.PackedBytes()) != 4+len(payload) {
		t.Fatalf("packed %d bytes", len(p.PackedBytes()))
	}
	first := append([]byte(nil), p.PackedBytes()...)
	p.Reset()
	if len(p.PackedBytes()) != 0 {
		t.Fatal("Reset did not rewind")
	}
	if err := p.Bytes(&payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, p.PackedBytes()) {
		t.Fatal("re-pack after Reset diverges")
	}
	p.Release()

	q := AcquirePacker()
	defer q.Release()
	var v uint64 = 42
	if err := q.Uint64(&v); err != nil {
		t.Fatal(err)
	}
	if len(q.PackedBytes()) != 8 {
		t.Fatalf("reacquired packer has stale offset: %d bytes", len(q.PackedBytes()))
	}
}

// TestSinglePassPackMatchesSizer: the growable single-pass path
// produces exactly the bytes a pre-sized packer produces, and the
// sizer still agrees with both.
func TestSinglePassPackMatchesSizer(t *testing.T) {
	in := &particle{Name: "electron", Mass: 9.109e-31, Raw: []byte{1, 2, 3, 4, 5}}
	n, err := Size(in)
	if err != nil {
		t.Fatal(err)
	}
	presized := NewPacker(n)
	if err := in.Pup(presized); err != nil {
		t.Fatal(err)
	}
	single, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(presized.Buffer(), single) {
		t.Error("single-pass pack diverges from pre-sized pack")
	}
	if len(single) != n {
		t.Errorf("packed %d bytes, sizer said %d", len(single), n)
	}
}

// TestGrowPackerFromZero: a fresh growable packer starts with no
// buffer at all and must grow through every doubling.
func TestGrowPackerFromZero(t *testing.T) {
	p := NewGrowPacker()
	big := make([]byte, 100_000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := p.Bytes(&big); err != nil {
		t.Fatal(err)
	}
	var out []byte
	if err := NewUnpacker(p.PackedBytes()).Bytes(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big, out) {
		t.Error("grown pack round trip diverges")
	}
}

// FuzzUnpackParticle throws arbitrary bytes at a multi-field Pup
// traversal: it must error or succeed, never panic or over-allocate.
func FuzzUnpackParticle(f *testing.F) {
	good, err := Pack(&particle{Name: "p", Mass: 1.5, Raw: []byte{9, 8, 7}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(hostile(0xFFFF_FFFF, 4))
	f.Add(good[:len(good)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		var out particle
		_ = Unpack(data, &out) // must not panic
	})
}
