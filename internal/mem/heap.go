// Package mem provides the memory allocators of the runtime: a
// first-fit free-list heap over simulated virtual memory, the
// isomalloc globally-unique-address slot allocator of §3.4.2 (Fig 2),
// per-thread migratable heaps built on isomalloc slabs, and the
// malloc-interposition switch that routes in-thread allocations to
// isomalloc while runtime-internal allocations keep using the system
// heap.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"migflow/internal/vmem"
)

// Align is the allocation granularity in bytes.
const Align = 16

// ErrOutOfMemory reports that a heap region is full.
type ErrOutOfMemory struct {
	Region vmem.Range
	Size   uint64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("mem: out of memory: %d bytes from %s", e.Size, e.Region)
}

// Block is one live allocation.
type Block struct {
	Addr vmem.Addr
	Size uint64
}

// Heap is a first-fit free-list allocator over one contiguous region
// of a simulated address space. Pages are mapped lazily as blocks are
// allocated and unmapped when the last block on them is freed, so
// physical frames track live data — the property isomalloc relies on
// ("we assign physical memory only to the addresses in use by local
// threads").
//
// Allocation metadata lives on the Go side, keyed by simulated
// address; for migratable thread heaps this metadata travels with the
// thread (see ThreadHeap).
type Heap struct {
	mu     sync.Mutex
	space  *vmem.Space
	region vmem.Range

	free    []Block // sorted by Addr, coalesced
	allocs  map[vmem.Addr]uint64
	pageRef map[uint64]int // vpn -> live blocks touching the page

	allocatedBytes uint64
}

// NewHeap creates a heap over region within space. The region must be
// page-aligned; its pages must not be mapped yet (the heap maps them
// on demand).
func NewHeap(space *vmem.Space, region vmem.Range) (*Heap, error) {
	if region.Start.Offset() != 0 || region.Length%vmem.PageSize != 0 || region.Length == 0 {
		return nil, fmt.Errorf("mem: NewHeap(%s): region must be non-empty and page-aligned", region)
	}
	return &Heap{
		space:   space,
		region:  region,
		free:    []Block{{Addr: region.Start, Size: region.Length}},
		allocs:  make(map[vmem.Addr]uint64),
		pageRef: make(map[uint64]int),
	}, nil
}

// Region returns the heap's address range.
func (h *Heap) Region() vmem.Range { return h.region }

// Space returns the address space the heap currently operates in.
func (h *Heap) Space() *vmem.Space { return h.space }

// Rebind points the heap at a different address space — the
// post-migration step: the heap's addresses are globally unique
// (isomalloc), so only the space changes, never the metadata.
func (h *Heap) Rebind(space *vmem.Space) {
	h.mu.Lock()
	h.space = space
	h.mu.Unlock()
}

// AllocatedBytes returns the total bytes in live blocks.
func (h *Heap) AllocatedBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocatedBytes
}

// LiveBlocks returns the number of live allocations.
func (h *Heap) LiveBlocks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.allocs)
}

// Contains reports whether a was allocated from this heap.
func (h *Heap) Contains(a vmem.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.allocs[a]
	return ok
}

// Blocks returns all live blocks sorted by address (for migration and
// checkpointing).
func (h *Heap) Blocks() []Block {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Block, 0, len(h.allocs))
	for a, s := range h.allocs {
		out = append(out, Block{a, s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// MappedPages lists the heap's currently mapped pages (sorted vpns).
func (h *Heap) MappedPages() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, 0, len(h.pageRef))
	for vpn := range h.pageRef {
		out = append(out, vpn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Alloc allocates size bytes (rounded up to Align) and returns the
// block's simulated address. The backing pages are mapped read-write
// and zeroed.
func (h *Heap) Alloc(size uint64) (vmem.Addr, error) {
	if size == 0 {
		size = Align
	}
	size = (size + Align - 1) &^ uint64(Align-1)
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.free {
		if h.free[i].Size < size {
			continue
		}
		addr := h.free[i].Addr
		h.free[i].Addr = h.free[i].Addr.Add(size)
		h.free[i].Size -= size
		if h.free[i].Size == 0 {
			h.free = append(h.free[:i], h.free[i+1:]...)
		}
		if err := h.refPagesLocked(addr, size); err != nil {
			// Roll the carve-out back before reporting.
			h.insertFreeLocked(Block{addr, size})
			return vmem.Nil, err
		}
		h.allocs[addr] = size
		h.allocatedBytes += size
		return addr, nil
	}
	return vmem.Nil, &ErrOutOfMemory{Region: h.region, Size: size}
}

// refPagesLocked maps (if needed) and references every page touched
// by [a, a+size).
func (h *Heap) refPagesLocked(a vmem.Addr, size uint64) error {
	first := a.PageNum()
	last := (a + vmem.Addr(size) - 1).PageNum()
	for vpn := first; vpn <= last; vpn++ {
		if h.pageRef[vpn] == 0 {
			if err := h.space.Map(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize, vmem.ProtRW); err != nil {
				// Unwind pages referenced so far in this call.
				for v := first; v < vpn; v++ {
					h.unrefPageLocked(v)
				}
				return err
			}
		}
		h.pageRef[vpn]++
	}
	return nil
}

func (h *Heap) unrefPageLocked(vpn uint64) {
	h.pageRef[vpn]--
	if h.pageRef[vpn] == 0 {
		delete(h.pageRef, vpn)
		// Ignore unmap errors: the page was mapped by refPagesLocked.
		_ = h.space.Unmap(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize)
	}
}

// Free releases the block at a, unmapping pages whose last block
// disappears.
func (h *Heap) Free(a vmem.Addr) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	size, ok := h.allocs[a]
	if !ok {
		return fmt.Errorf("mem: Free(%s): not an allocated block", a)
	}
	delete(h.allocs, a)
	h.allocatedBytes -= size
	first := a.PageNum()
	last := (a + vmem.Addr(size) - 1).PageNum()
	for vpn := first; vpn <= last; vpn++ {
		h.unrefPageLocked(vpn)
	}
	h.insertFreeLocked(Block{a, size})
	return nil
}

// insertFreeLocked inserts a block into the sorted free list,
// coalescing with neighbours.
func (h *Heap) insertFreeLocked(b Block) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].Addr > b.Addr })
	h.free = append(h.free, Block{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = b
	// Coalesce with the next block.
	if i+1 < len(h.free) && h.free[i].Addr.Add(h.free[i].Size) == h.free[i+1].Addr {
		h.free[i].Size += h.free[i+1].Size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	// Coalesce with the previous block.
	if i > 0 && h.free[i-1].Addr.Add(h.free[i-1].Size) == h.free[i].Addr {
		h.free[i-1].Size += h.free[i].Size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// FreeSpace returns the total bytes on the free list.
func (h *Heap) FreeSpace() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, b := range h.free {
		n += b.Size
	}
	return n
}
