package mem

import (
	"fmt"
	"sync"

	"migflow/internal/vmem"
)

// DefaultArenaPages is the default size of a thread-heap arena (256
// KiB) — each arena is one isomalloc slab.
const DefaultArenaPages = 64

// ThreadHeap is the migratable per-thread heap of §3.4.2: every
// allocation lives in an isomalloc slab whose addresses are globally
// unique, so after migration no pointer into the heap needs updating.
// The metadata (arena list, block maps) travels with the thread; only
// Rebind is needed on arrival to point the arenas at the destination
// PE's address space and future arena requests at its allocator.
type ThreadHeap struct {
	mu         sync.Mutex
	iso        *IsoAllocator
	space      *vmem.Space
	arenaPages uint64
	arenas     []*Heap
}

// NewThreadHeap creates an empty thread heap drawing arenas of
// arenaPages pages (DefaultArenaPages if 0) from iso, mapping them in
// space.
func NewThreadHeap(iso *IsoAllocator, space *vmem.Space, arenaPages uint64) *ThreadHeap {
	if arenaPages == 0 {
		arenaPages = DefaultArenaPages
	}
	return &ThreadHeap{iso: iso, space: space, arenaPages: arenaPages}
}

// Malloc allocates size bytes from the thread's isomalloc arenas,
// growing by one slab when full. Oversized requests get a dedicated
// slab.
func (t *ThreadHeap) Malloc(size uint64) (vmem.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.arenas {
		a, err := h.Alloc(size)
		if err == nil {
			return a, nil
		}
		if _, full := err.(*ErrOutOfMemory); !full {
			return vmem.Nil, err
		}
	}
	pages := t.arenaPages
	if need := vmem.RoundUpPages(size+Align) / vmem.PageSize; need > pages {
		pages = need
	}
	base, err := t.iso.AllocSlab(pages)
	if err != nil {
		return vmem.Nil, err
	}
	h, err := NewHeap(t.space, vmem.Range{Start: base, Length: pages * vmem.PageSize})
	if err != nil {
		return vmem.Nil, err
	}
	t.arenas = append(t.arenas, h)
	return h.Alloc(size)
}

// Free releases a block allocated by Malloc.
func (t *ThreadHeap) Free(a vmem.Addr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.arenas {
		if h.Contains(a) {
			return h.Free(a)
		}
	}
	return fmt.Errorf("mem: ThreadHeap.Free(%s): address not in any arena", a)
}

// AllocatedBytes sums live bytes across arenas.
func (t *ThreadHeap) AllocatedBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, h := range t.arenas {
		n += h.AllocatedBytes()
	}
	return n
}

// Arenas returns the address ranges of all arenas (for migration: the
// pages to ship).
func (t *ThreadHeap) Arenas() []vmem.Range {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]vmem.Range, len(t.arenas))
	for i, h := range t.arenas {
		out[i] = h.Region()
	}
	return out
}

// MappedPages returns all mapped heap pages across arenas (the pages
// whose contents must move with the thread).
func (t *ThreadHeap) MappedPages() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []uint64
	for _, h := range t.arenas {
		out = append(out, h.MappedPages()...)
	}
	return out
}

// Rebind re-homes the heap after migration: arenas now operate on the
// destination space (their addresses are unchanged — that is the
// point of isomalloc) and future arenas come from the destination
// PE's allocator.
func (t *ThreadHeap) Rebind(iso *IsoAllocator, space *vmem.Space) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.iso = iso
	t.space = space
	for _, h := range t.arenas {
		h.Rebind(space)
	}
}

// ReleaseAll frees every arena back to its birth allocator — called
// when the thread exits on its birth PE. (A thread that dies away
// from home keeps its slab addresses reserved; the paper's runtime
// does the same, reclaiming them only when the job ends.)
func (t *ThreadHeap) ReleaseAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var firstErr error
	for _, h := range t.arenas {
		for _, b := range h.Blocks() {
			if err := h.Free(b.Addr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := t.iso.FreeSlab(h.Region().Start); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.arenas = nil
	return firstErr
}

// Allocator abstracts "who is malloc talking to": the system heap or
// a thread's isomalloc heap.
type Allocator interface {
	Malloc(size uint64) (vmem.Addr, error)
	Free(a vmem.Addr) error
}

// sysAlloc adapts Heap to Allocator.
type sysAlloc struct{ h *Heap }

func (s sysAlloc) Malloc(size uint64) (vmem.Addr, error) { return s.h.Alloc(size) }
func (s sysAlloc) Free(a vmem.Addr) error                { return s.h.Free(a) }

// AsAllocator adapts a plain Heap to the Allocator interface.
func AsAllocator(h *Heap) Allocator { return sysAlloc{h} }

// Interposer implements the paper's malloc-interposition scheme
// (§3.4.2): "we extended this approach by overriding the system
// malloc/free routines to use the new isomalloc/free when it is
// called within a thread. Of course, malloc/free called from outside
// the threading context ... is still directed to the normal system
// version." The scheduler Enters a thread's allocator before running
// it and Exits afterwards.
type Interposer struct {
	mu      sync.Mutex
	system  Allocator
	current Allocator // nil when outside any thread context
}

// NewInterposer creates an interposer whose out-of-thread allocator
// is system.
func NewInterposer(system Allocator) *Interposer {
	return &Interposer{system: system}
}

// Enter routes subsequent Mallocs to the thread allocator a.
func (ip *Interposer) Enter(a Allocator) {
	ip.mu.Lock()
	ip.current = a
	ip.mu.Unlock()
}

// Exit returns to the system allocator.
func (ip *Interposer) Exit() {
	ip.mu.Lock()
	ip.current = nil
	ip.mu.Unlock()
}

// InThread reports whether a thread allocator is active.
func (ip *Interposer) InThread() bool {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return ip.current != nil
}

// Malloc allocates from the active thread allocator, or the system
// allocator outside thread context.
func (ip *Interposer) Malloc(size uint64) (vmem.Addr, error) {
	ip.mu.Lock()
	a := ip.current
	if a == nil {
		a = ip.system
	}
	ip.mu.Unlock()
	return a.Malloc(size)
}

// Free releases a block through the active allocator.
func (ip *Interposer) Free(addr vmem.Addr) error {
	ip.mu.Lock()
	a := ip.current
	if a == nil {
		a = ip.system
	}
	ip.mu.Unlock()
	return a.Free(addr)
}
