package mem

import (
	"testing"

	"migflow/internal/vmem"
)

func isoFixture(t *testing.T) (IsoRegion, *IsoAllocator, *vmem.Space) {
	t.Helper()
	r, err := NewIsoRegion(DefaultIsoBase, 4096*vmem.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	return r, NewIsoAllocator(r, 0), vmem.NewSpace(0)
}

func TestThreadHeapMallocFree(t *testing.T) {
	_, iso, space := isoFixture(t)
	th := NewThreadHeap(iso, space, 4)
	a, err := th.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Write(a, []byte("thread-private")); err != nil {
		t.Fatalf("block unusable: %v", err)
	}
	if th.AllocatedBytes() == 0 {
		t.Error("AllocatedBytes = 0")
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if th.AllocatedBytes() != 0 {
		t.Error("AllocatedBytes after free != 0")
	}
	if err := th.Free(a); err == nil {
		t.Error("double free should error")
	}
}

func TestThreadHeapGrowsArenas(t *testing.T) {
	_, iso, space := isoFixture(t)
	th := NewThreadHeap(iso, space, 1) // 4 KiB arenas
	for i := 0; i < 10; i++ {
		if _, err := th.Malloc(3000); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(th.Arenas()); got < 5 {
		t.Errorf("arenas = %d, want several (one per ~3 KB block in 4 KiB arenas)", got)
	}
}

func TestThreadHeapOversizedBlock(t *testing.T) {
	_, iso, space := isoFixture(t)
	th := NewThreadHeap(iso, space, 1)
	a, err := th.Malloc(10 * vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10*vmem.PageSize)
	if err := space.Write(a, buf); err != nil {
		t.Errorf("oversized block not fully usable: %v", err)
	}
}

func TestThreadHeapAddressesGloballyUnique(t *testing.T) {
	r, _ := NewIsoRegion(DefaultIsoBase, 4096*vmem.PageSize, 2)
	iso0 := NewIsoAllocator(r, 0)
	iso1 := NewIsoAllocator(r, 1)
	s0, s1 := vmem.NewSpace(0), vmem.NewSpace(0)
	th0 := NewThreadHeap(iso0, s0, 4)
	th1 := NewThreadHeap(iso1, s1, 4)
	a0, err := th0.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := th1.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(a0) != 0 || r.Owner(a1) != 1 {
		t.Errorf("owners: %d, %d", r.Owner(a0), r.Owner(a1))
	}
	if a0 == a1 {
		t.Error("threads on different PEs share an address")
	}
}

func TestThreadHeapRebindAfterMigration(t *testing.T) {
	r, _ := NewIsoRegion(DefaultIsoBase, 4096*vmem.PageSize, 2)
	iso0 := NewIsoAllocator(r, 0)
	iso1 := NewIsoAllocator(r, 1)
	src, dst := vmem.NewSpace(0), vmem.NewSpace(0)
	th := NewThreadHeap(iso0, src, 4)
	a, err := th.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("survives migration")
	if err := src.Write(a, want); err != nil {
		t.Fatal(err)
	}
	// Ship mapped pages to dst at identical addresses (what the
	// isomalloc migration engine does).
	for _, vpn := range th.MappedPages() {
		base := vmem.Addr(vpn << vmem.PageShift)
		data, err := src.CopyOut(base, vmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Map(base, vmem.PageSize, vmem.ProtRW); err != nil {
			t.Fatal(err)
		}
		if err := dst.Write(base, data); err != nil {
			t.Fatal(err)
		}
	}
	th.Rebind(iso1, dst)
	got := make([]byte, len(want))
	if err := dst.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("heap data after migration = %q, want %q", got, want)
	}
	// Post-migration growth draws addresses from the destination slot.
	big, err := th.Malloc(64 * vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(big) != 1 {
		t.Errorf("post-migration arena owner = %d, want 1", r.Owner(big))
	}
}

func TestThreadHeapReleaseAll(t *testing.T) {
	_, iso, space := isoFixture(t)
	th := NewThreadHeap(iso, space, 2)
	for i := 0; i < 5; i++ {
		if _, err := th.Malloc(1000); err != nil {
			t.Fatal(err)
		}
	}
	if iso.LiveSlabs() == 0 {
		t.Fatal("no slabs live")
	}
	if err := th.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if iso.LiveSlabs() != 0 {
		t.Errorf("LiveSlabs after ReleaseAll = %d", iso.LiveSlabs())
	}
	if space.MappedPages() != 0 {
		t.Errorf("pages leaked: %d", space.MappedPages())
	}
}

func TestInterposer(t *testing.T) {
	space := vmem.NewSpace(0)
	sysHeap, err := NewHeap(space, vmem.Range{Start: 0x10000, Length: 16 * vmem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	_, iso, _ := isoFixture(t)
	th := NewThreadHeap(iso, space, 4)

	ip := NewInterposer(AsAllocator(sysHeap))
	// Outside thread context: system heap.
	a, err := ip.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if !sysHeap.Contains(a) {
		t.Error("out-of-thread malloc did not use system heap")
	}
	if ip.InThread() {
		t.Error("InThread before Enter")
	}
	// Inside thread context: isomalloc.
	ip.Enter(th)
	b, err := ip.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if sysHeap.Contains(b) {
		t.Error("in-thread malloc used system heap")
	}
	if !ip.InThread() {
		t.Error("InThread false after Enter")
	}
	if err := ip.Free(b); err != nil {
		t.Fatal(err)
	}
	ip.Exit()
	if err := ip.Free(a); err != nil {
		t.Fatal(err)
	}
}
