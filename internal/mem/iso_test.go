package mem

import (
	"errors"
	"testing"

	"migflow/internal/vmem"
)

func TestIsoRegionSlots(t *testing.T) {
	r, err := NewIsoRegion(DefaultIsoBase, 64*vmem.PageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotSize() != 16*vmem.PageSize {
		t.Errorf("SlotSize = %d", r.SlotSize())
	}
	// Slots tile the region without overlap.
	for pe := 0; pe < 4; pe++ {
		s := r.Slot(pe)
		if s.Length != r.SlotSize() {
			t.Errorf("slot %d length %d", pe, s.Length)
		}
		if pe > 0 && s.Start != r.Slot(pe-1).End() {
			t.Errorf("slot %d not adjacent to slot %d", pe, pe-1)
		}
	}
	if r.Slot(0).Start != r.Start {
		t.Error("slot 0 does not begin at region start")
	}
	if r.Slot(3).End() != r.Start.Add(r.Size) {
		t.Error("last slot does not end at region end")
	}
}

func TestIsoRegionOwner(t *testing.T) {
	r, _ := NewIsoRegion(0x100000, 40*vmem.PageSize, 4)
	for pe := 0; pe < 4; pe++ {
		s := r.Slot(pe)
		if got := r.Owner(s.Start); got != pe {
			t.Errorf("Owner(slot %d start) = %d", pe, got)
		}
		if got := r.Owner(s.End() - 1); got != pe {
			t.Errorf("Owner(slot %d last byte) = %d", pe, got)
		}
	}
	if r.Owner(r.Start-1) != -1 || r.Owner(r.Start.Add(r.Size)) != -1 {
		t.Error("Owner outside region should be -1")
	}
}

func TestIsoRegionValidation(t *testing.T) {
	if _, err := NewIsoRegion(0x1000, vmem.PageSize, 0); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := NewIsoRegion(0x1001, vmem.PageSize*8, 2); err == nil {
		t.Error("unaligned start accepted")
	}
	if _, err := NewIsoRegion(0x1000, 100, 2); err == nil {
		t.Error("too-small region accepted")
	}
	// Size rounds down to whole pages per PE.
	r, err := NewIsoRegion(0x1000, 9*vmem.PageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotSize() != 2*vmem.PageSize {
		t.Errorf("SlotSize = %d, want 2 pages", r.SlotSize())
	}
}

func TestIsoAllocatorUniqueAcrossPEs(t *testing.T) {
	r, _ := NewIsoRegion(0x100000, 1024*vmem.PageSize, 8)
	seen := map[vmem.Addr]bool{}
	for pe := 0; pe < 8; pe++ {
		a := NewIsoAllocator(r, pe)
		for i := 0; i < 10; i++ {
			s, err := a.AllocSlab(4)
			if err != nil {
				t.Fatal(err)
			}
			if seen[s] {
				t.Fatalf("slab %s handed out twice", s)
			}
			seen[s] = true
			if r.Owner(s) != pe {
				t.Errorf("PE %d slab %s lands in slot %d", pe, s, r.Owner(s))
			}
		}
	}
}

func TestIsoAllocatorRecycles(t *testing.T) {
	r, _ := NewIsoRegion(0x100000, 64*vmem.PageSize, 1)
	a := NewIsoAllocator(r, 0)
	s1, err := a.AllocSlab(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FreeSlab(s1); err != nil {
		t.Fatal(err)
	}
	if a.LiveSlabs() != 0 {
		t.Errorf("LiveSlabs = %d", a.LiveSlabs())
	}
	s2, err := a.AllocSlab(8)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Errorf("freed slab not recycled: got %s, want %s", s2, s1)
	}
	if err := a.FreeSlab(0xbeef000); err == nil {
		t.Error("freeing wild slab should error")
	}
}

func TestIsoAllocatorExhaustsSlot(t *testing.T) {
	r, _ := NewIsoRegion(0x100000, 16*vmem.PageSize, 2) // 8 pages per PE
	a := NewIsoAllocator(r, 0)
	if _, err := a.AllocSlab(8); err != nil {
		t.Fatal(err)
	}
	_, err := a.AllocSlab(1)
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Errorf("slot exhaustion: err = %v, want ErrOutOfMemory", err)
	}
}

// TestIsomalloc32BitArithmetic pins the paper's §3.4.2 arithmetic: 10
// threads/PE × 1 MiB × 1000 PEs = ~10 GiB of address space — far
// beyond a 32-bit machine; and even a whole 4 GiB space at 1 MiB per
// thread caps out at 4096 threads.
func TestIsomalloc32BitArithmetic(t *testing.T) {
	demand := AddressSpaceDemand(10, 1<<20, 1000)
	if demand != 10*1000*(1<<20) {
		t.Fatalf("demand = %d", demand)
	}
	if demand <= 4<<30 {
		t.Error("10 GiB should exceed a 32-bit space")
	}
	const space32 = uint64(4) << 30
	if got := space32 / (1 << 20); got != 4096 {
		t.Errorf("threads fitting in 4 GiB at 1 MiB = %d, want 4096", got)
	}
}

// TestIsoRegionExhausts32BitSpace shows a 32-bit PE refusing to
// reserve an isomalloc region bigger than its address space, while a
// 64-bit PE accepts it.
func TestIsoRegionExhausts32BitSpace(t *testing.T) {
	region, err := NewIsoRegion(DefaultIsoBase, 4<<30, 4)
	if err != nil {
		t.Fatal(err)
	}
	space32 := vmem.NewSpace(3 << 30)
	var ex *vmem.ErrExhausted
	if err := space32.Reserve(region.Start, region.Size); !errors.As(err, &ex) {
		t.Errorf("32-bit reserve: err = %v, want ErrExhausted", err)
	}
	space64 := vmem.NewSpace(0)
	if err := space64.Reserve(region.Start, region.Size); err != nil {
		t.Errorf("64-bit reserve failed: %v", err)
	}
}
