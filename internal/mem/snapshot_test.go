package mem

import (
	"bytes"
	"testing"

	"migflow/internal/pup"
	"migflow/internal/vmem"
)

func snapFixture(t *testing.T) (*Heap, *vmem.Space) {
	t.Helper()
	s := vmem.NewSpace(0)
	h, err := NewHeap(s, vmem.Range{Start: 0x100000, Length: 8 * vmem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	return h, s
}

func TestHeapSnapshotRestore(t *testing.T) {
	h, src := snapFixture(t)
	a1, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h.Alloc(5000) // crosses pages
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write(a1, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := src.Write(a2.Add(4500), []byte("omega")); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a1); err != nil { // leave a hole for the free list
		t.Fatal(err)
	}
	a3, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write(a3, []byte("mid")); err != nil {
		t.Fatal(err)
	}

	im, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// PUP round trip of the image itself.
	data, err := pup.Pack(im)
	if err != nil {
		t.Fatal(err)
	}
	var im2 HeapImage
	if err := pup.Unpack(data, &im2); err != nil {
		t.Fatal(err)
	}

	dst := vmem.NewSpace(0)
	h2, err := RestoreHeap(dst, &im2)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata preserved.
	if h2.LiveBlocks() != h.LiveBlocks() || h2.AllocatedBytes() != h.AllocatedBytes() {
		t.Errorf("blocks %d/%d bytes %d/%d", h2.LiveBlocks(), h.LiveBlocks(), h2.AllocatedBytes(), h.AllocatedBytes())
	}
	if h2.FreeSpace() != h.FreeSpace() {
		t.Errorf("free space %d, want %d", h2.FreeSpace(), h.FreeSpace())
	}
	// Contents preserved at identical addresses.
	for _, probe := range []struct {
		at   vmem.Addr
		want string
	}{{a2.Add(4500), "omega"}, {a3, "mid"}} {
		got := make([]byte, len(probe.want))
		if err := dst.Read(probe.at, got); err != nil {
			t.Fatalf("read %s: %v", probe.at, err)
		}
		if string(got) != probe.want {
			t.Errorf("at %s = %q, want %q", probe.at, got, probe.want)
		}
	}
	// The restored heap allocates and frees consistently.
	a4, err := h2.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Free(a4); err != nil {
		t.Fatal(err)
	}
	if err := h2.Free(a2); err != nil {
		t.Fatal(err)
	}
	if err := h2.Free(a3); err != nil {
		t.Fatal(err)
	}
	if h2.LiveBlocks() != 0 {
		t.Errorf("restored heap left %d blocks", h2.LiveBlocks())
	}
	if dst.MappedPages() != 0 {
		t.Errorf("restored heap leaked %d pages", dst.MappedPages())
	}
}

func TestDetachUnmapsKeepsMetadata(t *testing.T) {
	h, src := snapFixture(t)
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	if src.MappedPages() != 0 {
		t.Errorf("detach left %d pages", src.MappedPages())
	}
	if !h.Contains(a) {
		t.Error("detach dropped allocation metadata")
	}
}

func TestRestoreHeapRejectsMalformed(t *testing.T) {
	dst := vmem.NewSpace(0)
	base := uint64(0x100000)
	// Overlapping blocks.
	if _, err := RestoreHeap(dst, &HeapImage{
		Start: base, Length: 4 * vmem.PageSize,
		Blocks: []Block{{vmem.Addr(base), 64}, {vmem.Addr(base + 32), 64}},
	}); err == nil {
		t.Error("overlapping blocks accepted")
	}
	// Block outside the region.
	if _, err := RestoreHeap(vmem.NewSpace(0), &HeapImage{
		Start: base, Length: vmem.PageSize,
		Blocks: []Block{{vmem.Addr(base + 2*vmem.PageSize), 64}},
	}); err == nil {
		t.Error("escaping block accepted")
	}
	// Shipped page with no covering block.
	if _, err := RestoreHeap(vmem.NewSpace(0), &HeapImage{
		Start: base, Length: 4 * vmem.PageSize,
		Runs: []vmem.Run{{Addr: vmem.Addr(base), Data: make([]byte, vmem.PageSize)}},
	}); err == nil {
		t.Error("orphan page accepted")
	}
	// Run that is not page-aligned / whole pages.
	if _, err := RestoreHeap(vmem.NewSpace(0), &HeapImage{
		Start: base, Length: 4 * vmem.PageSize,
		Blocks: []Block{{vmem.Addr(base), 64}},
		Runs:   []vmem.Run{{Addr: vmem.Addr(base + 8), Data: make([]byte, 16)}},
	}); err == nil {
		t.Error("misaligned run accepted")
	}
}

// TestRestoreHeapZeroFillsUnshippedPages: a block whose pages were
// never dirtied ships no runs; the restore must still map the pages
// (zero-filled) so the block is readable.
func TestRestoreHeapZeroFillsUnshippedPages(t *testing.T) {
	dst := vmem.NewSpace(0)
	base := uint64(0x100000)
	h, err := RestoreHeap(dst, &HeapImage{
		Start: base, Length: 4 * vmem.PageSize,
		Blocks: []Block{{vmem.Addr(base), 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(vmem.Addr(base)) {
		t.Fatal("restored heap lost the block")
	}
	v, err := dst.ReadUint64(vmem.Addr(base))
	if err != nil {
		t.Fatalf("unshipped page not mapped: %v", err)
	}
	if v != 0 {
		t.Errorf("unshipped page not zero: %#x", v)
	}
}

func TestThreadHeapSnapshotRoundTrip(t *testing.T) {
	region, err := NewIsoRegion(DefaultIsoBase, 4096*vmem.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	iso0 := NewIsoAllocator(region, 0)
	iso1 := NewIsoAllocator(region, 1)
	src, dst := vmem.NewSpace(0), vmem.NewSpace(0)
	th := NewThreadHeap(iso0, src, 2)
	var addrs []vmem.Addr
	for i := 0; i < 6; i++ {
		a, err := th.Malloc(3000)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.WriteUint64(a, uint64(i)*7); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	im, err := th.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := pup.Pack(im)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Detach(); err != nil {
		t.Fatal(err)
	}
	var im2 ThreadHeapImage
	if err := pup.Unpack(data, &im2); err != nil {
		t.Fatal(err)
	}
	th2, err := RestoreThreadHeap(iso1, dst, &im2)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		v, err := dst.ReadUint64(a)
		if err != nil || v != uint64(i)*7 {
			t.Errorf("block %d = %d/%v", i, v, err)
		}
	}
	if th2.AllocatedBytes() != th.AllocatedBytes() {
		t.Errorf("allocated %d, want %d", th2.AllocatedBytes(), th.AllocatedBytes())
	}
	if len(th2.Arenas()) != len(th.Arenas()) {
		t.Errorf("arenas %d, want %d", len(th2.Arenas()), len(th.Arenas()))
	}
}

func TestHeapImagePupDeterministic(t *testing.T) {
	h, _ := snapFixture(t)
	if _, err := h.Alloc(100); err != nil {
		t.Fatal(err)
	}
	im, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := pup.Pack(im)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := pup.Pack(im)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("snapshot packing nondeterministic")
	}
}

func TestIsoRangeAccessors(t *testing.T) {
	region, err := NewIsoRegion(DefaultIsoBase, 64*vmem.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if region.Range().Length != region.Size {
		t.Error("Range length mismatch")
	}
	a := NewIsoAllocator(region, 1)
	if a.PE() != 1 {
		t.Errorf("PE = %d", a.PE())
	}
	if a.Slot() != region.Slot(1) {
		t.Error("Slot mismatch")
	}
}

func TestIsoSlotPanicsOutOfRange(t *testing.T) {
	region, _ := NewIsoRegion(DefaultIsoBase, 64*vmem.PageSize, 2)
	defer func() {
		if recover() == nil {
			t.Error("Slot(9) did not panic")
		}
	}()
	region.Slot(9)
}

func TestOOMErrorString(t *testing.T) {
	e := &ErrOutOfMemory{Region: vmem.Range{Start: 0x1000, Length: 0x1000}, Size: 64}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}
