package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"migflow/internal/vmem"
)

func testHeap(t *testing.T, pages uint64) (*Heap, *vmem.Space) {
	t.Helper()
	s := vmem.NewSpace(0)
	h, err := NewHeap(s, vmem.Range{Start: 0x100000, Length: pages * vmem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	return h, s
}

func TestHeapAllocFree(t *testing.T) {
	h, s := testHeap(t, 16)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offset()%Align != 0 {
		t.Errorf("addr %s not %d-aligned", a, Align)
	}
	// The block's page is mapped and usable.
	if err := s.Write(a, []byte("payload")); err != nil {
		t.Fatalf("write to allocated block: %v", err)
	}
	if h.AllocatedBytes() == 0 || h.LiveBlocks() != 1 {
		t.Errorf("accounting: bytes=%d blocks=%d", h.AllocatedBytes(), h.LiveBlocks())
	}
	if !h.Contains(a) {
		t.Error("Contains(allocated) = false")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.AllocatedBytes() != 0 || h.LiveBlocks() != 0 {
		t.Errorf("accounting after free: bytes=%d blocks=%d", h.AllocatedBytes(), h.LiveBlocks())
	}
	// Page unmapped once the last block goes.
	if s.MappedPages() != 0 {
		t.Errorf("pages still mapped after free: %d", s.MappedPages())
	}
}

func TestHeapZeroSizeAlloc(t *testing.T) {
	h, _ := testHeap(t, 4)
	a, err := h.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == vmem.Nil {
		t.Error("zero-size alloc returned nil")
	}
}

func TestHeapDoubleFree(t *testing.T) {
	h, _ := testHeap(t, 4)
	a, _ := h.Alloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double free should error")
	}
	if err := h.Free(0xdead0); err == nil {
		t.Error("free of wild address should error")
	}
}

func TestHeapExhaustionAndCoalesce(t *testing.T) {
	h, _ := testHeap(t, 2) // 8 KiB
	var addrs []vmem.Addr
	for {
		a, err := h.Alloc(1024)
		if err != nil {
			var oom *ErrOutOfMemory
			if !errors.As(err, &oom) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) != 8 {
		t.Fatalf("allocated %d KiB blocks from 8 KiB, want 8", len(addrs))
	}
	// Free all; coalescing should restore one big block.
	for _, a := range addrs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.FreeSpace(); got != 2*vmem.PageSize {
		t.Errorf("FreeSpace = %d, want %d", got, 2*vmem.PageSize)
	}
	// And a full-region alloc succeeds again.
	if _, err := h.Alloc(2*vmem.PageSize - Align); err != nil {
		t.Errorf("realloc after coalesce: %v", err)
	}
}

func TestHeapPageSharing(t *testing.T) {
	h, s := testHeap(t, 4)
	a1, _ := h.Alloc(64)
	a2, _ := h.Alloc(64) // same page
	if a1.PageNum() != a2.PageNum() {
		t.Skip("allocator did not co-locate blocks; layout changed")
	}
	if err := h.Free(a1); err != nil {
		t.Fatal(err)
	}
	// Page must survive while a2 lives.
	if err := s.Write(a2, []byte{1}); err != nil {
		t.Errorf("page vanished under live block: %v", err)
	}
	if err := h.Free(a2); err != nil {
		t.Fatal(err)
	}
	if s.MappedPages() != 0 {
		t.Error("page leaked after both blocks freed")
	}
}

func TestHeapBlocksSorted(t *testing.T) {
	h, _ := testHeap(t, 8)
	for i := 0; i < 5; i++ {
		if _, err := h.Alloc(200); err != nil {
			t.Fatal(err)
		}
	}
	bs := h.Blocks()
	if len(bs) != 5 {
		t.Fatalf("Blocks len = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Addr >= bs[i].Addr {
			t.Error("Blocks not sorted")
		}
	}
}

func TestHeapBadRegion(t *testing.T) {
	s := vmem.NewSpace(0)
	if _, err := NewHeap(s, vmem.Range{Start: 0x1001, Length: vmem.PageSize}); err == nil {
		t.Error("unaligned region accepted")
	}
	if _, err := NewHeap(s, vmem.Range{Start: 0x1000, Length: 0}); err == nil {
		t.Error("empty region accepted")
	}
}

// Property: after any interleaving of allocs and frees, allocated
// blocks never overlap and stay inside the region.
func TestQuickHeapNoOverlap(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := vmem.NewSpace(0)
		region := vmem.Range{Start: 0x200000, Length: 32 * vmem.PageSize}
		h, err := NewHeap(s, region)
		if err != nil {
			return false
		}
		var live []vmem.Addr
		for i := 0; i < int(steps)+10; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				a, err := h.Alloc(uint64(rng.Intn(3000) + 1))
				if err != nil {
					continue
				}
				live = append(live, a)
			} else {
				i := rng.Intn(len(live))
				if err := h.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		bs := h.Blocks()
		for i := 1; i < len(bs); i++ {
			if bs[i-1].Addr.Add(bs[i-1].Size) > bs[i].Addr {
				return false // overlap
			}
		}
		for _, b := range bs {
			if b.Addr < region.Start || b.Addr.Add(b.Size) > region.End() {
				return false // escaped region
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHeapRebind(t *testing.T) {
	s1 := vmem.NewSpace(0)
	s2 := vmem.NewSpace(0)
	h, err := NewHeap(s1, vmem.Range{Start: 0x100000, Length: 4 * vmem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate migration: copy the mapped pages into s2, then rebind.
	for _, vpn := range h.MappedPages() {
		base := vmem.Addr(vpn << vmem.PageShift)
		data, err := s1.CopyOut(base, vmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Map(base, vmem.PageSize, vmem.ProtRW); err != nil {
			t.Fatal(err)
		}
		if err := s2.Write(base, data); err != nil {
			t.Fatal(err)
		}
	}
	h.Rebind(s2)
	if h.Space() != s2 {
		t.Error("Rebind did not switch spaces")
	}
	// New allocations land in s2.
	b, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(b, []byte{9}); err != nil {
		t.Errorf("post-rebind block unusable: %v", err)
	}
	_ = a
}
