package mem

import (
	"fmt"
	"sort"
	"sync"

	"migflow/internal/vmem"
)

// IsoRegion is the machine-wide isomalloc region of Figure 2: a range
// of virtual addresses, agreed on by all processors at startup,
// divided into equal per-processor slots. A processor grants local
// threads globally-unique address ranges from its own slot, so a
// thread's stack and heap keep their addresses wherever it migrates.
type IsoRegion struct {
	Start  vmem.Addr
	Size   uint64
	NumPEs int
}

// DefaultIsoBase is where the isomalloc region starts by default —
// "normally the largest space available lies between the process
// stack and the heap".
const DefaultIsoBase vmem.Addr = 0x4000_0000

// NewIsoRegion validates and returns a region. Size is rounded down
// to give every PE a whole number of pages.
func NewIsoRegion(start vmem.Addr, size uint64, numPEs int) (IsoRegion, error) {
	if numPEs <= 0 {
		return IsoRegion{}, fmt.Errorf("mem: NewIsoRegion: numPEs %d must be positive", numPEs)
	}
	if start.Offset() != 0 {
		return IsoRegion{}, fmt.Errorf("mem: NewIsoRegion: start %s must be page-aligned", start)
	}
	perPE := size / uint64(numPEs) &^ uint64(vmem.PageMask)
	if perPE == 0 {
		return IsoRegion{}, fmt.Errorf("mem: NewIsoRegion: size %d too small for %d PEs", size, numPEs)
	}
	return IsoRegion{Start: start, Size: perPE * uint64(numPEs), NumPEs: numPEs}, nil
}

// SlotSize returns the bytes of address space owned by each PE.
func (r IsoRegion) SlotSize() uint64 { return r.Size / uint64(r.NumPEs) }

// Slot returns PE pe's slice of the region.
func (r IsoRegion) Slot(pe int) vmem.Range {
	if pe < 0 || pe >= r.NumPEs {
		panic(fmt.Sprintf("mem: IsoRegion.Slot(%d): out of range [0,%d)", pe, r.NumPEs))
	}
	return vmem.Range{Start: r.Start.Add(uint64(pe) * r.SlotSize()), Length: r.SlotSize()}
}

// Range returns the whole region as a Range.
func (r IsoRegion) Range() vmem.Range { return vmem.Range{Start: r.Start, Length: r.Size} }

// Owner returns which PE's slot contains a, or -1 if outside the
// region.
func (r IsoRegion) Owner(a vmem.Addr) int {
	if a < r.Start || a >= r.Start.Add(r.Size) {
		return -1
	}
	return int(uint64(a-r.Start) / r.SlotSize())
}

// IsoAllocator hands out page-granular, globally-unique address
// slabs from one PE's slot. It allocates *addresses*, not memory:
// callers map pages in their own address space. Freed slabs are
// recycled.
type IsoAllocator struct {
	pe   int
	slot vmem.Range

	mu   sync.Mutex
	next vmem.Addr
	free []Block // sorted, coalesced, page-granular
	live map[vmem.Addr]uint64
}

// NewIsoAllocator creates the allocator for PE pe of region r.
func NewIsoAllocator(r IsoRegion, pe int) *IsoAllocator {
	slot := r.Slot(pe)
	return &IsoAllocator{pe: pe, slot: slot, next: slot.Start, live: make(map[vmem.Addr]uint64)}
}

// PE returns the owning processor index.
func (a *IsoAllocator) PE() int { return a.pe }

// Slot returns the allocator's address range.
func (a *IsoAllocator) Slot() vmem.Range { return a.slot }

// AllocSlab reserves npages pages of globally-unique addresses and
// returns the base address. It fails with ErrOutOfMemory when the
// slot is exhausted — the per-PE share of the isomalloc region is a
// hard bound on locally-born thread state.
func (a *IsoAllocator) AllocSlab(npages uint64) (vmem.Addr, error) {
	if npages == 0 {
		return vmem.Nil, fmt.Errorf("mem: AllocSlab: zero pages")
	}
	size := npages * vmem.PageSize
	a.mu.Lock()
	defer a.mu.Unlock()
	// Reuse a freed slab range first.
	for i := range a.free {
		if a.free[i].Size >= size {
			addr := a.free[i].Addr
			a.free[i].Addr = a.free[i].Addr.Add(size)
			a.free[i].Size -= size
			if a.free[i].Size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.live[addr] = size
			return addr, nil
		}
	}
	if uint64(a.slot.End()-a.next) < size {
		return vmem.Nil, &ErrOutOfMemory{Region: a.slot, Size: size}
	}
	addr := a.next
	a.next = a.next.Add(size)
	a.live[addr] = size
	return addr, nil
}

// FreeSlab returns a slab's addresses to the allocator.
func (a *IsoAllocator) FreeSlab(addr vmem.Addr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("mem: FreeSlab(%s): not a live slab", addr)
	}
	delete(a.live, addr)
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Addr > addr })
	a.free = append(a.free, Block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = Block{addr, size}
	if i+1 < len(a.free) && a.free[i].Addr.Add(a.free[i].Size) == a.free[i+1].Addr {
		a.free[i].Size += a.free[i+1].Size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].Addr.Add(a.free[i-1].Size) == a.free[i].Addr {
		a.free[i-1].Size += a.free[i].Size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// LiveSlabs returns the number of outstanding slabs.
func (a *IsoAllocator) LiveSlabs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live)
}

// AddressSpaceDemand returns the virtual bytes the whole region
// consumes on *every* processor — the n·s·p product that makes
// isomalloc infeasible on 32-bit machines (§3.4.2): with n threads
// per processor, s bytes per thread and p processors, at least n·s·p
// bytes of address space are used on each node.
func AddressSpaceDemand(threadsPerPE int, bytesPerThread uint64, numPEs int) uint64 {
	return uint64(threadsPerPE) * bytesPerThread * uint64(numPEs)
}
