package mem

import (
	"fmt"
	"sort"

	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// HeapImage is the serialized form of one heap arena: its region, its
// live blocks (the allocation metadata that must travel with a
// migrating thread) and a sparse image of its mapped pages. Runs
// carries only pages the owner actually dirtied; RestoreHeap maps
// every block-referenced page zero-filled and overlays the runs, so
// heap bytes on the wire are proportional to written data, not to
// allocation footprint.
type HeapImage struct {
	Start  uint64
	Length uint64
	Blocks []Block
	Runs   []vmem.Run
}

// Pup implements pup.Pupable. The block count is validated against
// the remaining buffer before allocation (corrupt images cannot force
// a huge make), mirroring vmem.PupRuns for the page runs.
func (im *HeapImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.Start); err != nil {
		return err
	}
	if err := p.Uint64(&im.Length); err != nil {
		return err
	}
	nb := uint32(len(im.Blocks))
	if err := p.Uint32(&nb); err != nil {
		return err
	}
	if p.IsUnpacking() {
		const blockWire = 16 // addr + size
		if int64(nb)*blockWire > int64(p.Remaining()) {
			return fmt.Errorf("mem: corrupt image: %d blocks claimed with %d bytes remaining", nb, p.Remaining())
		}
		im.Blocks = make([]Block, nb)
	}
	for i := range im.Blocks {
		a := uint64(im.Blocks[i].Addr)
		if err := p.Uint64(&a); err != nil {
			return err
		}
		if err := p.Uint64(&im.Blocks[i].Size); err != nil {
			return err
		}
		im.Blocks[i].Addr = vmem.Addr(a)
	}
	return vmem.PupRuns(p, &im.Runs)
}

// Snapshot captures the heap for migration: blocks plus the dirty
// mapped pages, read out of the current address space in one sparse
// pass. Dirty bits are left standing — a heap that is snapshotted
// twice without migrating must produce the same image twice.
func (h *Heap) Snapshot() (*HeapImage, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	im := &HeapImage{Start: uint64(h.region.Start), Length: h.region.Length}
	for a, s := range h.allocs {
		im.Blocks = append(im.Blocks, Block{a, s})
	}
	sort.Slice(im.Blocks, func(i, j int) bool { return im.Blocks[i].Addr < im.Blocks[j].Addr })
	runs, err := h.space.CopyOutRuns(h.region.Start, h.region.Length)
	if err != nil {
		return nil, fmt.Errorf("mem: Snapshot: %w", err)
	}
	im.Runs = runs
	return im, nil
}

// Detach unmaps the heap's pages from its current space without
// touching metadata — the source-side teardown after Snapshot.
func (h *Heap) Detach() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for vpn := range h.pageRef {
		if err := h.space.Unmap(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize); err != nil {
			return err
		}
	}
	return nil
}

// RestoreHeap rebuilds a heap from an image in a destination space:
// every block-referenced page is mapped zero-filled at its identical
// address, the shipped runs are written over them, and the free list
// is reconstructed as the complement of the blocks. Pages the source
// never dirtied arrive as the zero fill — exactly what they held.
func RestoreHeap(space *vmem.Space, im *HeapImage) (*Heap, error) {
	region := vmem.Range{Start: vmem.Addr(im.Start), Length: im.Length}
	h, err := NewHeap(space, region)
	if err != nil {
		return nil, err
	}
	if err := vmem.ValidateRuns(im.Runs, region.Start, im.Length); err != nil {
		return nil, fmt.Errorf("mem: RestoreHeap: bad image: %w", err)
	}
	// Rebuild allocation metadata and the free-list complement.
	h.free = nil
	cursor := region.Start
	for _, b := range im.Blocks {
		if b.Addr < cursor || b.Addr.Add(b.Size) > region.End() {
			return nil, fmt.Errorf("mem: RestoreHeap: block %s+%d outside region or overlapping", b.Addr, b.Size)
		}
		if b.Addr > cursor {
			h.free = append(h.free, Block{cursor, uint64(b.Addr - cursor)})
		}
		h.allocs[b.Addr] = b.Size
		h.allocatedBytes += b.Size
		first := b.Addr.PageNum()
		last := (b.Addr + vmem.Addr(b.Size) - 1).PageNum()
		for vpn := first; vpn <= last; vpn++ {
			h.pageRef[vpn]++
		}
		cursor = b.Addr.Add(b.Size)
	}
	if cursor < region.End() {
		h.free = append(h.free, Block{cursor, uint64(region.End() - cursor)})
	}
	// Map every referenced page zero-filled, in address order.
	vpns := make([]uint64, 0, len(h.pageRef))
	for vpn := range h.pageRef {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		if err := space.Map(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize, vmem.ProtRW); err != nil {
			return nil, err
		}
	}
	// Overlay the dirty pages; every shipped page must be covered by a
	// block, or the image is inconsistent with its own metadata.
	for _, run := range im.Runs {
		for off := uint64(0); off < uint64(len(run.Data)); off += vmem.PageSize {
			vpn := run.Addr.Add(off).PageNum()
			if _, ok := h.pageRef[vpn]; !ok {
				return nil, fmt.Errorf("mem: RestoreHeap: image page %#x has no covering block", vpn)
			}
		}
		if err := space.Write(run.Addr, run.Data); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// ThreadHeapImage is the serialized form of a whole thread heap.
type ThreadHeapImage struct {
	ArenaPages uint64
	Arenas     []HeapImage
}

// Pup implements pup.Pupable.
func (im *ThreadHeapImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.ArenaPages); err != nil {
		return err
	}
	n := uint32(len(im.Arenas))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.IsUnpacking() {
		// An arena encodes at least start+length+2 counts = 24 bytes.
		if int64(n)*24 > int64(p.Remaining()) {
			return fmt.Errorf("mem: corrupt image: %d arenas claimed with %d bytes remaining", n, p.Remaining())
		}
		im.Arenas = make([]HeapImage, n)
	}
	for i := range im.Arenas {
		if err := im.Arenas[i].Pup(p); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot captures all arenas.
func (t *ThreadHeap) Snapshot() (*ThreadHeapImage, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	im := &ThreadHeapImage{ArenaPages: t.arenaPages}
	for _, h := range t.arenas {
		hi, err := h.Snapshot()
		if err != nil {
			return nil, err
		}
		im.Arenas = append(im.Arenas, *hi)
	}
	return im, nil
}

// Detach unmaps every arena's pages from the source space. Slabs are
// NOT freed: the thread's address ranges stay allocated machine-wide
// while it lives, so migrating back later cannot collide.
func (t *ThreadHeap) Detach() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.arenas {
		if err := h.Detach(); err != nil {
			return err
		}
	}
	return nil
}

// RestoreThreadHeap rebuilds a thread heap on the destination PE from
// an image: every arena's pages appear at identical addresses; new
// arenas will come from the destination's allocator.
func RestoreThreadHeap(iso *IsoAllocator, space *vmem.Space, im *ThreadHeapImage) (*ThreadHeap, error) {
	t := NewThreadHeap(iso, space, im.ArenaPages)
	for i := range im.Arenas {
		h, err := RestoreHeap(space, &im.Arenas[i])
		if err != nil {
			return nil, err
		}
		t.arenas = append(t.arenas, h)
	}
	return t, nil
}
