package mem

import (
	"fmt"
	"sort"

	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// PageData is one page's contents in a heap image.
type PageData struct {
	VPN  uint64
	Data []byte
}

// HeapImage is the serialized form of one heap arena: its region, its
// live blocks (the allocation metadata that must travel with a
// migrating thread) and the contents of its mapped pages.
type HeapImage struct {
	Start  uint64
	Length uint64
	Blocks []Block
	Pages  []PageData
}

// Pup implements pup.Pupable.
func (im *HeapImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.Start); err != nil {
		return err
	}
	if err := p.Uint64(&im.Length); err != nil {
		return err
	}
	nb := uint32(len(im.Blocks))
	if err := p.Uint32(&nb); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Blocks = make([]Block, nb)
	}
	for i := range im.Blocks {
		a := uint64(im.Blocks[i].Addr)
		if err := p.Uint64(&a); err != nil {
			return err
		}
		if err := p.Uint64(&im.Blocks[i].Size); err != nil {
			return err
		}
		im.Blocks[i].Addr = vmem.Addr(a)
	}
	np := uint32(len(im.Pages))
	if err := p.Uint32(&np); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Pages = make([]PageData, np)
	}
	for i := range im.Pages {
		if err := p.Uint64(&im.Pages[i].VPN); err != nil {
			return err
		}
		if err := p.Bytes(&im.Pages[i].Data); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot captures the heap for migration: blocks plus mapped page
// contents, read out of the current address space.
func (h *Heap) Snapshot() (*HeapImage, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	im := &HeapImage{Start: uint64(h.region.Start), Length: h.region.Length}
	for a, s := range h.allocs {
		im.Blocks = append(im.Blocks, Block{a, s})
	}
	sort.Slice(im.Blocks, func(i, j int) bool { return im.Blocks[i].Addr < im.Blocks[j].Addr })
	vpns := make([]uint64, 0, len(h.pageRef))
	for vpn := range h.pageRef {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		data, err := h.space.CopyOut(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize)
		if err != nil {
			return nil, fmt.Errorf("mem: Snapshot: reading page %#x: %w", vpn, err)
		}
		im.Pages = append(im.Pages, PageData{VPN: vpn, Data: data})
	}
	return im, nil
}

// Detach unmaps the heap's pages from its current space without
// touching metadata — the source-side teardown after Snapshot.
func (h *Heap) Detach() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for vpn := range h.pageRef {
		if err := h.space.Unmap(vmem.Addr(vpn<<vmem.PageShift), vmem.PageSize); err != nil {
			return err
		}
	}
	return nil
}

// RestoreHeap rebuilds a heap from an image in a destination space:
// pages are mapped at identical addresses and filled, the free list
// is reconstructed as the complement of the blocks.
func RestoreHeap(space *vmem.Space, im *HeapImage) (*Heap, error) {
	region := vmem.Range{Start: vmem.Addr(im.Start), Length: im.Length}
	h, err := NewHeap(space, region)
	if err != nil {
		return nil, err
	}
	// Rebuild allocation metadata and the free-list complement.
	h.free = nil
	cursor := region.Start
	for _, b := range im.Blocks {
		if b.Addr < cursor || b.Addr.Add(b.Size) > region.End() {
			return nil, fmt.Errorf("mem: RestoreHeap: block %s+%d outside region or overlapping", b.Addr, b.Size)
		}
		if b.Addr > cursor {
			h.free = append(h.free, Block{cursor, uint64(b.Addr - cursor)})
		}
		h.allocs[b.Addr] = b.Size
		h.allocatedBytes += b.Size
		first := b.Addr.PageNum()
		last := (b.Addr + vmem.Addr(b.Size) - 1).PageNum()
		for vpn := first; vpn <= last; vpn++ {
			h.pageRef[vpn]++
		}
		cursor = b.Addr.Add(b.Size)
	}
	if cursor < region.End() {
		h.free = append(h.free, Block{cursor, uint64(region.End() - cursor)})
	}
	// Map and fill the pages.
	for _, pg := range im.Pages {
		if _, ok := h.pageRef[pg.VPN]; !ok {
			return nil, fmt.Errorf("mem: RestoreHeap: image page %#x has no covering block", pg.VPN)
		}
		base := vmem.Addr(pg.VPN << vmem.PageShift)
		if err := space.Map(base, vmem.PageSize, vmem.ProtRW); err != nil {
			return nil, err
		}
		if err := space.Write(base, pg.Data); err != nil {
			return nil, err
		}
	}
	// Every referenced page must have arrived.
	if len(im.Pages) != len(h.pageRef) {
		return nil, fmt.Errorf("mem: RestoreHeap: image has %d pages, blocks need %d", len(im.Pages), len(h.pageRef))
	}
	return h, nil
}

// ThreadHeapImage is the serialized form of a whole thread heap.
type ThreadHeapImage struct {
	ArenaPages uint64
	Arenas     []HeapImage
}

// Pup implements pup.Pupable.
func (im *ThreadHeapImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.ArenaPages); err != nil {
		return err
	}
	n := uint32(len(im.Arenas))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Arenas = make([]HeapImage, n)
	}
	for i := range im.Arenas {
		if err := im.Arenas[i].Pup(p); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot captures all arenas.
func (t *ThreadHeap) Snapshot() (*ThreadHeapImage, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	im := &ThreadHeapImage{ArenaPages: t.arenaPages}
	for _, h := range t.arenas {
		hi, err := h.Snapshot()
		if err != nil {
			return nil, err
		}
		im.Arenas = append(im.Arenas, *hi)
	}
	return im, nil
}

// Detach unmaps every arena's pages from the source space. Slabs are
// NOT freed: the thread's address ranges stay allocated machine-wide
// while it lives, so migrating back later cannot collide.
func (t *ThreadHeap) Detach() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.arenas {
		if err := h.Detach(); err != nil {
			return err
		}
	}
	return nil
}

// RestoreThreadHeap rebuilds a thread heap on the destination PE from
// an image: every arena's pages appear at identical addresses; new
// arenas will come from the destination's allocator.
func RestoreThreadHeap(iso *IsoAllocator, space *vmem.Space, im *ThreadHeapImage) (*ThreadHeap, error) {
	t := NewThreadHeap(iso, space, im.ArenaPages)
	for i := range im.Arenas {
		h, err := RestoreHeap(space, &im.Arenas[i])
		if err != nil {
			return nil, err
		}
		t.arenas = append(t.arenas, h)
	}
	return t, nil
}
