// Package ampi is an Adaptive-MPI-like layer (§4.1, §4.5): each MPI
// rank is a migratable user-level thread (isomalloc stack + heap,
// privatized globals via swap-global), so ranks vastly outnumber
// processors and the runtime migrates them for load balance without
// any change to "application" code.
//
// The API mirrors the MPI calls the paper names: blocking send and
// receive, barrier, allreduce, MPI_Yield, and MPI_Migrate — the
// collective that measures per-rank loads, runs a balancer, and moves
// threads.
package ampi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/migrate"
	"migflow/internal/pup"
	"migflow/internal/swapglobal"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tags (user tags must be ≥ 0).
const (
	tagBarrier = -100 - iota
	tagBarrierRelease
	tagReduce
	tagReduceResult
)

// CollAlgo selects the collective-communication topology.
type CollAlgo int

const (
	// CollTree (default) runs collectives over a k-ary spanning tree
	// of ranks (arity Options.TreeArity): partial values combine up
	// the tree and results broadcast down, so no rank serializes more
	// than k messages per phase.
	CollTree CollAlgo = iota
	// CollFlat is the paper-era flat algorithm: every rank talks
	// directly to the root, which serializes O(P) messages. Kept for
	// A/B comparison against the trees.
	CollFlat
	// CollTopoTree builds the spanning tree along the machine's
	// torus/PE-group hierarchy (Options.Topo) instead of rank order:
	// ranks first combine within their logical node, node leaders
	// combine within their PE group, and group leaders combine across
	// groups — the same grouping HierarchicalLB exploits — so tree
	// edges follow physical neighbours and collective hop counts drop.
	CollTopoTree
)

// DefaultTreeArity is the spanning-tree fan-out when Options.TreeArity
// is zero.
const DefaultTreeArity = 4

// Topology describes the machine shape collective trees can exploit:
// ranks live on logical nodes arranged in a 1-D torus (ring), and
// nodes belong to contiguous PE groups — the hierarchy
// loadbalance.HierarchicalLB balances along. The zero value disables
// topology modeling entirely (no hop charges, rank-order trees
// unchanged).
type Topology struct {
	// Nodes is the logical node count along the torus. Ranks map to
	// nodes with the job's placement function (block or round-robin),
	// so co-resident ranks share a node. 0 disables topology; under
	// CollTopoTree it defaults to the machine's PE count.
	Nodes int
	// GroupSize is how many consecutive nodes form one group (default
	// loadbalance.DefaultGroupSize) — CollTopoTree keeps tree edges
	// inside a node, then inside a group, before crossing groups.
	GroupSize int
	// HopNs is the virtual time charged per torus hop on every
	// collective tree edge (default Options.MsgOverheadNs). A pure
	// function of the two ranks and the options, so virtual time stays
	// invariant across mode, PE count, and migration.
	HopNs float64
}

// Execution modes: how each rank exists as a flow of control on the
// simulating machine (the paper's §2 taxonomy applied to AMPI
// itself).
const (
	// ModeULT (default): one migratable user-level thread per rank —
	// a parked goroutine with an isomalloc stack, charged the
	// platform's thread-switch curve per activation.
	ModeULT = "ult"
	// ModeEvent: one small state struct per rank in a contiguous
	// per-job store; every blocking call is a continuation dispatched
	// inline by the owning PE's loop (no goroutine, no channel, no
	// stack), charged the platform's EventDispatch curve. Requires a
	// continuation Program (NewProgram); raw func bodies cannot be
	// suspended without a stack.
	ModeEvent = "event"
)

// normalizeMode folds the zero value to ModeULT and rejects unknown
// strings.
func normalizeMode(mode string) (string, error) {
	switch mode {
	case "", ModeULT:
		return ModeULT, nil
	case ModeEvent:
		return ModeEvent, nil
	default:
		return "", fmt.Errorf("ampi: unknown Mode %q (want %q or %q)", mode, ModeULT, ModeEvent)
	}
}

// Options configures a Job.
type Options struct {
	// Strategy is the rank threads' stack technique; default
	// isomalloc (the configuration §4.5 benchmarks).
	Strategy converse.StackStrategy
	// StackSize per rank (default converse.DefaultStackSize).
	StackSize uint64
	// Globals optionally privatizes a module's globals per rank; the
	// machine must have been booted with the same layout.
	Globals *swapglobal.Layout
	// BlockPlacement maps rank r to PE r·P/N (contiguous rank
	// blocks, AMPI's default mapping) instead of round-robin r mod P.
	BlockPlacement bool

	// Collectives selects the collective algorithm (default
	// CollTree).
	Collectives CollAlgo
	// TreeArity is the spanning-tree fan-out k for CollTree (default
	// DefaultTreeArity).
	TreeArity int
	// Topo describes the torus/PE-group machine shape. When set (Nodes
	// > 0) every collective tree edge — rank-order or topology-aware —
	// is charged HopNs per torus hop into virtual time and counted in
	// comm stats (Network.TopoHops), making the rank-order vs
	// CollTopoTree comparison an A/B at identical cost model. The zero
	// value keeps the topology-blind behavior bit-for-bit.
	Topo Topology

	// MsgOverheadNs charges every point-to-point message this many
	// virtual nanoseconds of software overhead on the sender's clock
	// at send and on the receiver's clock at consume — the
	// marshalling/matching CPU cost that makes flat collectives O(P)
	// at the root. Default 0 keeps the pure postal model (message
	// cost appears only as latency).
	MsgOverheadNs float64

	// Aggregate routes application sends (tag ≥ 0) through comm's
	// streaming aggregation: per-destination-PE envelopes amortize
	// the postal Alpha over many small messages. Collective/internal
	// traffic stays on the direct path. Ranks flush their PE's
	// buffers before blocking in Recv and at exit, so aggregation
	// never deadlocks a quiescing machine.
	Aggregate bool
	// AggPolicy tunes flush thresholds when Aggregate is set; zero
	// fields select the comm defaults.
	AggPolicy comm.AggPolicy

	// Mode selects the flow-of-control mechanism behind each rank:
	// ModeULT (default, also the zero value) or ModeEvent. Event mode
	// requires a continuation Program — see NewProgram — and does not
	// support Aggregate. Event ranks migrate like ULT ranks (the
	// Migrate gate, or a runtime-driven Rebalance), but move as
	// ~180-byte continuation records instead of stack images.
	Mode string

	// LocalPUP serializes a rank's PC.Local across a process boundary
	// for sharded runs (shard.go). Packing: called with the rank's
	// Local (never nil) and a packing PUPer; returns the same value.
	// Unpacking: called with nil and an unpacking PUPer; returns the
	// reconstructed state. Sharded cross-process migration of a rank
	// whose Local is non-nil fails without it. In-process migration
	// never needs it — Local rides the rank's slot by reference.
	LocalPUP func(p *pup.PUPer, local any) (any, error)
}

// Job is one AMPI program: size ranks running body, mapped
// round-robin over the machine's PEs.
type Job struct {
	m    *core.Machine
	opts Options
	body func(*Rank)

	size  int
	ranks []*Rank

	// rankOf inverts entity → rank for ULT jobs. Built once at NewJob
	// and never mutated (migration moves a thread, not its identity),
	// so reads are lock-free; it replaces an O(size) scan per Recv.
	rankOf map[comm.EntityID]int

	// Continuation-program state (NewProgram). prog is the shared
	// immutable Proc tree both modes interpret; pcs are the per-rank
	// program contexts in ULT mode; ev is the event engine in event
	// mode (exactly one of ranks/ev is populated for program jobs).
	prog Proc
	pcs  []*PC
	ev   *eventEngine

	mu       sync.Mutex
	lbPlans  map[uint64]loadbalance.Plan // epoch → plan
	lbEpochs map[uint64]int              // epoch → ranks arrived
	traffic  map[[2]int]float64          // rank pair (lo,hi) → bytes

	// LB-gate state for program jobs (the Migrate Proc): every rank
	// parks at the gate; the Run/RunParallel driver services it at
	// quiescence and resumes the ranks post-plan.
	gateMu       sync.Mutex
	gateArrived  int
	gateStrategy loadbalance.Strategy
	lbMoved      int
}

// Rank is one MPI rank: a migratable thread plus a tag/source-matched
// mailbox. The methods on Rank are the MPI interface; they may only
// be called from inside the rank's own body.
type Rank struct {
	job  *Job
	rank int
	th   *converse.Thread
	ctx  *converse.Ctx

	mu      sync.Mutex
	mbox    []*comm.Message
	waiting *matchSpec

	epoch uint64 // MPI_Migrate epochs completed
}

type matchSpec struct {
	src, tag int
}

// NewJob creates size ranks on machine m. Rank r is born on PE
// r mod NumPEs ("AMPI requires the number of AMPI migratable threads
// to be much larger than the actual number of processors").
func NewJob(m *core.Machine, size int, opts Options, body func(*Rank)) (*Job, error) {
	j, err := newJobCommon(m, size, &opts)
	if err != nil {
		return nil, err
	}
	if opts.Mode == ModeEvent {
		return nil, fmt.Errorf("ampi: Mode %q needs a continuation program; use NewProgram (a raw func body cannot be suspended without a stack)", ModeEvent)
	}
	j.body = body
	j.rankOf = make(map[comm.EntityID]int, size)
	for r := 0; r < size; r++ {
		rank := &Rank{job: j, rank: r}
		pe := m.PE(placePE(r, size, m.NumPEs(), opts.BlockPlacement))
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy:  opts.Strategy,
			StackSize: opts.StackSize,
			Globals:   opts.Globals,
		}, func(c *converse.Ctx) {
			rank.ctx = c
			j.body(rank)
			if j.opts.Aggregate {
				// A rank that exits without ever blocking again must
				// not strand coalesced messages in its PE's buffers.
				rank.flushStream()
			}
		})
		if err != nil {
			return nil, fmt.Errorf("ampi: creating rank %d: %w", r, err)
		}
		rank.th = th
		j.ranks = append(j.ranks, rank)
		j.rankOf[comm.EntityID(th.ID())] = r
		if err := m.RegisterEntity(comm.EntityID(th.ID()), pe.Index, rank.deliver); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// newJobCommon validates options shared by NewJob and NewProgram and
// returns the empty job shell.
func newJobCommon(m *core.Machine, size int, opts *Options) (*Job, error) {
	if size < 1 {
		return nil, fmt.Errorf("ampi: size %d must be ≥ 1", size)
	}
	mode, err := normalizeMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	opts.Mode = mode
	if opts.Strategy == nil {
		opts.Strategy = migrate.Isomalloc{}
	}
	if opts.TreeArity < 0 {
		return nil, fmt.Errorf("ampi: TreeArity %d must be ≥ 0", opts.TreeArity)
	}
	if opts.TreeArity == 0 {
		opts.TreeArity = DefaultTreeArity
	}
	switch opts.Collectives {
	case CollTree, CollFlat, CollTopoTree:
	default:
		return nil, fmt.Errorf("ampi: unknown collective algorithm %d", opts.Collectives)
	}
	if opts.Topo.Nodes < 0 || opts.Topo.GroupSize < 0 {
		return nil, fmt.Errorf("ampi: Topology %+v must be non-negative", opts.Topo)
	}
	if opts.Collectives == CollTopoTree && opts.Topo.Nodes == 0 {
		// Topology-aware trees need a shape; default to one logical
		// node per simulating PE. Pass explicit Nodes for predictions
		// that must stay invariant across PE counts.
		opts.Topo.Nodes = m.NumPEs()
	}
	if opts.Topo.Nodes > 0 {
		if opts.Topo.GroupSize == 0 {
			opts.Topo.GroupSize = loadbalance.DefaultGroupSize
		}
		if opts.Topo.HopNs == 0 {
			opts.Topo.HopNs = opts.MsgOverheadNs
		}
	}
	if opts.Mode == ModeEvent && opts.Aggregate {
		return nil, fmt.Errorf("ampi: Aggregate is not supported in %q mode (flush-before-block needs a parkable thread)", ModeEvent)
	}
	if m.Sharded() && opts.Mode != ModeEvent {
		// ULT ranks block real goroutine stacks whose closures cannot
		// cross a process boundary; only continuation records can.
		return nil, fmt.Errorf("ampi: sharded machines support %q mode only", ModeEvent)
	}
	if opts.Aggregate {
		m.Network().EnableAggregation(opts.AggPolicy)
	}
	return &Job{
		m: m, opts: *opts, size: size,
		lbPlans:  make(map[uint64]loadbalance.Plan),
		lbEpochs: make(map[uint64]int),
		traffic:  make(map[[2]int]float64),
	}, nil
}

// placePE maps rank r of size ranks onto one of numPEs processors:
// round-robin by default, contiguous blocks with BlockPlacement.
func placePE(r, size, numPEs int, block bool) int {
	if block {
		return r * numPEs / size
	}
	return r % numPEs
}

// ringDist is the 1-D torus distance between nodes a and b of n.
func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := n - d; alt < d {
		return alt
	}
	return d
}

// edgeHops returns the logical torus hops a collective tree edge
// between ranks a and b crosses: the ring distance between their
// logical nodes under Options.Topo, or 0 when no topology is
// configured. It is a pure function of the two ranks and the job
// options — never of current placement — so hop charges keep virtual
// time invariant across mode, PE count, and migration.
func (j *Job) edgeHops(a, b int) int {
	t := j.opts.Topo
	if t.Nodes <= 0 {
		return 0
	}
	eff := t.Nodes
	if eff > j.size {
		eff = j.size
	}
	na := placePE(a, j.size, eff, j.opts.BlockPlacement)
	nb := placePE(b, j.size, eff, j.opts.BlockPlacement)
	return ringDist(na, nb, eff)
}

// chargeHops records a tree edge's hop count in comm stats and
// returns the virtual-time cost to add.
func (j *Job) chargeHops(a, b int) float64 {
	h := j.edgeHops(a, b)
	if h == 0 {
		return 0
	}
	j.m.Network().ChargeTopoHops(uint64(h))
	return float64(h) * j.opts.Topo.HopNs
}

// Start makes every rank runnable.
func (j *Job) Start() {
	if j.ev != nil {
		j.ev.start()
		return
	}
	for _, r := range j.ranks {
		r.th.Scheduler().Start(r.th)
	}
}

// Run starts the job and drives the machine to quiescence
// (deterministic single-goroutine mode). If the program parks at a
// Migrate gate, the driver services it — measure, plan, move, resume
// — and keeps driving until the program completes. At a full gate
// the machine is quiescent with zero in-flight messages, so moving
// ranks cannot reorder deliveries: per-rank results stay
// bit-identical with and without migration.
func (j *Job) Run() {
	j.Start()
	for {
		j.m.RunUntilQuiescent()
		if !j.gateReady() {
			return
		}
		j.serviceGate()
	}
}

// RunParallel starts the job and drives the machine with one
// goroutine per PE (the wall-clock mode), servicing Migrate gates
// between parallel phases exactly like Run.
func (j *Job) RunParallel() {
	j.Start()
	for {
		j.m.RunParallel(func() bool { return j.Done() || j.gateReady() })
		if !j.gateReady() {
			return
		}
		j.serviceGate()
	}
}

// gateSetStrategy records the gate's strategy (every rank passes the
// same Migrate node of the shared tree, so last-write-wins is fine).
func (j *Job) gateSetStrategy(s loadbalance.Strategy) {
	j.gateMu.Lock()
	j.gateStrategy = s
	j.gateMu.Unlock()
}

// gateArrive registers one rank at the LB gate.
func (j *Job) gateArrive() {
	if j.m.Sharded() {
		// The gate counts arrivals against the full job size, but a
		// sharded worker only runs its local ranks — the gate would
		// never fill. Cross-process migration goes through the shard
		// record API (ShardExtract/ShardInstall) instead.
		panic("ampi: the Migrate gate is not supported in sharded runs; move ranks with ShardExtract/ShardInstall")
	}
	j.gateMu.Lock()
	j.gateArrived++
	if j.gateArrived > j.size {
		j.gateMu.Unlock()
		panic("ampi: more gate arrivals than ranks (Migrate is collective, once per rank per gate)")
	}
	j.gateMu.Unlock()
}

// gateReady reports whether every rank is parked at the gate.
func (j *Job) gateReady() bool {
	j.gateMu.Lock()
	defer j.gateMu.Unlock()
	return j.gateArrived == j.size
}

// serviceGate runs one LB step for a full gate and resumes the
// ranks. The machine is stopped (quiescent) when this runs.
func (j *Job) serviceGate() {
	j.gateMu.Lock()
	strategy := j.gateStrategy
	j.gateArrived = 0
	j.gateStrategy = nil
	j.gateMu.Unlock()
	moved, err := j.Rebalance(strategy)
	if err != nil {
		panic(fmt.Sprintf("ampi: LB gate: %v", err))
	}
	j.gateMu.Lock()
	j.lbMoved += moved
	j.gateMu.Unlock()
	if j.ev != nil {
		j.ev.resumeGate()
		return
	}
	for _, rk := range j.ranks {
		rk.th.Awaken()
	}
}

// LBMoved returns the total ranks moved by Migrate-gate LB steps.
func (j *Job) LBMoved() int {
	j.gateMu.Lock()
	defer j.gateMu.Unlock()
	return j.lbMoved
}

// Size returns the number of ranks.
func (j *Job) Size() int { return j.size }

// Mode returns the job's (normalized) execution mode.
func (j *Job) Mode() string { return j.opts.Mode }

// Machine returns the underlying machine.
func (j *Job) Machine() *core.Machine { return j.m }

// Rank returns rank r's handle (for inspection in tests/harnesses).
func (j *Job) Rank(r int) *Rank { return j.ranks[r] }

// PEOf returns the PE rank r's thread currently runs on — the
// placement workload models consult when grouping messages by
// destination processor.
func (j *Job) PEOf(r int) int {
	if j.ev != nil {
		return j.ev.peOf(r)
	}
	return j.ranks[r].th.Scheduler().PE().Index
}

// Done reports whether every rank has finished its body or program.
func (j *Job) Done() bool {
	if j.ev != nil {
		return j.ev.remaining.Load() == 0
	}
	for _, r := range j.ranks {
		if r.th.State() != converse.Exited {
			return false
		}
	}
	return true
}

// entity returns a rank's comm identity (its thread id, which the
// machine's migration path forwards automatically).
func (j *Job) entity(rank int) comm.EntityID {
	return comm.EntityID(j.ranks[rank].th.ID())
}

// ---------------------------------------------------------------
// Rank: the MPI interface

// Rank returns the caller's rank number.
func (r *Rank) Rank() int { return r.rank }

// Size returns the job's rank count.
func (r *Rank) Size() int { return len(r.job.ranks) }

// PE returns the processor the rank currently runs on.
func (r *Rank) PE() int { return r.ctx.PE().Index }

// Thread exposes the underlying migratable thread.
func (r *Rank) Thread() *converse.Thread { return r.th }

// Ctx exposes the converse context (stack frames, malloc, work).
func (r *Rank) Ctx() *converse.Ctx { return r.ctx }

// Yield is MPI_Yield: give other ranks on this PE the processor.
func (r *Rank) Yield() { r.ctx.Yield() }

// Work models ns nanoseconds of local computation.
func (r *Rank) Work(ns float64) { r.ctx.Work(ns) }

// Wtime is MPI_Wtime: the rank's current virtual time in seconds
// (the clock of whichever PE the rank currently runs on).
func (r *Rank) Wtime() float64 { return r.ctx.PE().Clock.Now() / 1e9 }

// Send sends data to rank dest with the given tag (tag ≥ 0). It is
// buffered-asynchronous, like an eager-protocol MPI_Send.
func (r *Rank) Send(dest, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("ampi: Send tag %d must be ≥ 0", tag)
	}
	return r.send(dest, tag, data)
}

func (r *Rank) send(dest, tag int, data []byte) error { return r.sendv(dest, tag, data, 0) }

// sendv is send carrying an application-level virtual timestamp (the
// continuation-program layer's mode-independent predicted time).
func (r *Rank) sendv(dest, tag int, data []byte, vtime float64) error {
	if dest < 0 || dest >= len(r.job.ranks) {
		return fmt.Errorf("ampi: Send to rank %d of %d", dest, len(r.job.ranks))
	}
	if tag >= 0 && dest != r.rank {
		// Application traffic feeds the communication graph the
		// comm-aware balancer consumes (collectives excluded).
		pair := [2]int{r.rank, dest}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		r.job.mu.Lock()
		r.job.traffic[pair] += float64(len(data)) + 64 // payload + envelope
		r.job.mu.Unlock()
	}
	pe := r.ctx.PE()
	if ovh := r.job.opts.MsgOverheadNs; ovh > 0 {
		pe.Clock.Advance(ovh)
	}
	msg := &comm.Message{
		To:       r.job.entity(dest),
		From:     r.job.entity(r.rank),
		Tag:      tag,
		Data:     data,
		SendTime: pe.Clock.Now(),
		VTime:    vtime,
	}
	ep := r.job.m.Network().Endpoint(pe.Index)
	if r.job.opts.Aggregate && tag >= 0 {
		return ep.SendStream(msg)
	}
	return ep.Send(msg)
}

// sendEdge is send along a collective tree edge: when a topology is
// configured it charges the edge's torus hops to the rank's clock and
// the comm hop counter before the ordinary eager send.
func (r *Rank) sendEdge(dest, tag int, data []byte) error {
	if ns := r.job.chargeHops(r.rank, dest); ns > 0 {
		r.ctx.PE().Clock.Advance(ns)
	}
	return r.send(dest, tag, data)
}

// flushStream pushes any coalesced messages buffered on the rank's
// current PE onto the wire. Called before every block and at exit so
// streamed traffic cannot deadlock: whenever every rank is parked,
// every buffer has been flushed.
func (r *Rank) flushStream() {
	if err := r.job.m.Network().Endpoint(r.ctx.PE().Index).Flush(); err != nil {
		// AMPI never deregisters live ranks, so a flush error is a
		// runtime invariant violation, not an application condition.
		panic(fmt.Sprintf("ampi: stream flush: %v", err))
	}
}

// deliver is the machine's per-entity handler: mailbox append plus
// wakeup if the rank is blocked on a matching Recv.
func (r *Rank) deliver(_ int, msg *comm.Message) {
	r.mu.Lock()
	r.mbox = append(r.mbox, msg)
	wake := r.waiting != nil && r.matchesLocked(r.waiting, msg)
	if wake {
		r.waiting = nil
	}
	r.mu.Unlock()
	if wake {
		r.th.Awaken()
	}
}

func (r *Rank) matchesLocked(spec *matchSpec, m *comm.Message) bool {
	if spec.tag != AnyTag && spec.tag != m.Tag {
		return false
	}
	if spec.src != AnySource && r.job.entity(spec.src) != m.From {
		return false
	}
	return true
}

// takeLocked removes and returns the oldest matching message.
func (r *Rank) takeLocked(spec *matchSpec) *comm.Message {
	for i, m := range r.mbox {
		if r.matchesLocked(spec, m) {
			r.mbox = append(r.mbox[:i], r.mbox[i+1:]...)
			return m
		}
	}
	return nil
}

// Recv blocks until a message from src (or AnySource) with tag (or
// AnyTag) arrives and returns its payload and sender rank.
func (r *Rank) Recv(src, tag int) ([]byte, int, error) {
	if tag < 0 && tag != AnyTag {
		return nil, 0, fmt.Errorf("ampi: Recv tag %d must be ≥ 0 or AnyTag", tag)
	}
	m := r.recv(src, tag)
	return m.Data, r.senderRank(m), nil
}

func (r *Rank) recv(src, tag int) *comm.Message {
	spec := &matchSpec{src: src, tag: tag}
	for {
		r.mu.Lock()
		if m := r.takeLocked(spec); m != nil {
			r.mu.Unlock()
			// The receiver cannot proceed before the message's
			// arrival: synchronize the PE clock at consume time.
			pe := r.ctx.PE()
			pe.Clock.AdvanceTo(m.Arrival)
			if ovh := r.job.opts.MsgOverheadNs; ovh > 0 {
				pe.Clock.Advance(ovh)
			}
			return m
		}
		r.waiting = spec
		r.mu.Unlock()
		if r.job.opts.Aggregate {
			// About to park: force out coalesced messages so a peer
			// waiting on them can run (explicit-flush-on-idle).
			r.flushStream()
		}
		r.ctx.Suspend()
	}
}

func (r *Rank) senderRank(m *comm.Message) int {
	if i, ok := r.job.rankOf[m.From]; ok {
		return i
	}
	return -1
}

// Barrier blocks until every rank has entered it: a gather-release
// over the job's collective topology (spanning tree by default, flat
// through rank 0 with Options.Collectives == CollFlat).
func (r *Rank) Barrier() error {
	n := len(r.job.ranks)
	if n == 1 {
		return nil
	}
	if r.job.opts.Collectives != CollFlat {
		return r.barrierTree()
	}
	if r.rank == 0 {
		for i := 1; i < n; i++ {
			r.recv(AnySource, tagBarrier)
		}
		for i := 1; i < n; i++ {
			if err := r.send(i, tagBarrierRelease, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.send(0, tagBarrier, nil); err != nil {
		return err
	}
	r.recv(0, tagBarrierRelease)
	return nil
}

// Allreduce combines each rank's value with op ("sum", "max", "min")
// and returns the result on every rank, over the job's collective
// topology.
func (r *Rank) Allreduce(op string, v float64) (float64, error) {
	combine, err := combiner(op)
	if err != nil {
		return 0, err
	}
	n := len(r.job.ranks)
	if n == 1 {
		return v, nil
	}
	if r.job.opts.Collectives != CollFlat {
		return r.allreduceTree(combine, v)
	}
	if r.rank == 0 {
		acc := v
		for i := 1; i < n; i++ {
			m := r.recv(AnySource, tagReduce)
			acc = combine(acc, f64(m.Data))
		}
		for i := 1; i < n; i++ {
			if err := r.send(i, tagReduceResult, f64bytes(acc)); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := r.send(0, tagReduce, f64bytes(v)); err != nil {
		return 0, err
	}
	m := r.recv(0, tagReduceResult)
	return f64(m.Data), nil
}

func f64bytes(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func f64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }
