package ampi

// Cross-process migration for sharded event jobs: the continuation
// analogue of shipping a thread's stack image over the socket. An
// in-process move rides eventRecord — the closure (kont) and pc.Local
// stay reachable by reference. Across an OS process boundary nothing
// is reachable, so the record must carry everything the destination
// needs to REBUILD the continuation:
//
//   - the rank's tree PATH — its structural coordinates in the shared
//     immutable program (one index per enclosing Seq/For). Because
//     every worker holds the identical tree, the destination re-seeks
//     by re-descending it: structural nodes consume path frames and
//     jump straight to the blocked statement, so no completed work
//     re-runs and virtual time is untouched.
//   - the blocked Recv's match spec, virtual time, measured load, and
//     buffered messages (the same fields eventRecord pups).
//   - pc.Local, serialized by the program's Options.LocalPUP hook.
//
// Only a rank parked at a plain Recv can cross: a collective wait or
// Waitall holds closure state (accumulator pointers, request slices)
// that tree coordinates cannot re-derive, and ShardExtract refuses.
//
// Protocol (driven by the shard orchestration layer): the source
// worker calls ShardExtract — which atomically flips the directory,
// owner word, and epoch, so stragglers start chasing over the socket —
// and ships the record bytes to the destination worker (a control
// frame) plus a move notice to every other worker (ShardNoteMove).
// The destination calls ShardInstall, which merges the record's
// pending messages AHEAD of anything that already chased its way into
// the slot (the record's are older: they arrived before the move),
// then injects a tagReseek activation through the normal delivery
// path so the re-descent runs on the owning PE's own goroutine.
// Link FIFO guarantees the destination sees the record before any
// message the source forwards after flipping its table. It cannot
// order two different routes, though: a sender that learns the new
// address can reach it directly before its older message finishes
// chasing through the old owner. The per-pair stream numbers the
// record carries (sendSeq/recvSeq, stamped on every sharded payload)
// let deliver hold such an overtaker until the gap fills, so
// matching stays in send order across any number of moves.

import (
	"fmt"
	"sort"

	"migflow/internal/comm"
	"migflow/internal/pup"
)

// tagReseek is the internal activation injected by ShardInstall
// (user tags are ≥ 0; collective tags live in the -100 block).
const tagReseek = -150

// shardPathMax bounds a record's claimed path length (hostile-input
// guard; real programs nest a handful of Seq/For levels).
const shardPathMax = 1 << 16

// ShardOwns reports whether rank r currently resides in this process
// (sharded event jobs).
func (j *Job) ShardOwns(r int) bool {
	e := j.ev
	if e == nil || !e.sharded || r < 0 || r >= e.size {
		return false
	}
	return j.m.LocalPE(e.peOf(r))
}

// ShardMigratable reports whether rank r could be extracted right
// now: resident here, unfinished, and parked at a plain blocking Recv
// with no in-flight collectives.
func (j *Job) ShardMigratable(r int) bool {
	e := j.ev
	if e == nil || !e.sharded || r < 0 || r >= e.size {
		return false
	}
	ranks := e.store()
	if ranks == nil || !j.m.LocalPE(e.peOf(r)) {
		return false
	}
	er := &ranks[r]
	er.mu.Lock()
	defer er.mu.Unlock()
	return !er.done && er.hasWait && er.pc.blockKind == blockRecv &&
		len(er.pc.colls) == 0 && (er.pc.Local == nil || j.opts.LocalPUP != nil)
}

// ShardExtract serializes rank's continuation record for another
// process and commits the move: directory, owner word, and epoch flip
// before it returns, so every later message to the rank forwards over
// the socket. The caller ships the returned bytes to the worker
// owning toPE (ShardInstall) and notifies the rest (ShardNoteMove).
func (j *Job) ShardExtract(rank, toPE int) ([]byte, error) {
	e := j.ev
	if e == nil || !e.sharded {
		return nil, fmt.Errorf("ampi: ShardExtract needs a sharded event job")
	}
	if rank < 0 || rank >= e.size {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d of %d", rank, e.size)
	}
	if toPE < 0 || toPE >= j.m.NumPEs() {
		return nil, fmt.Errorf("ampi: ShardExtract: PE %d out of range", toPE)
	}
	if j.m.LocalPE(toPE) {
		return nil, fmt.Errorf("ampi: ShardExtract: PE %d is local; use Rebalance for in-process moves", toPE)
	}
	ranks := e.store()
	er := &ranks[rank]
	er.mu.Lock()
	defer er.mu.Unlock()
	srcPE := e.peOf(rank)
	if !j.m.LocalPE(srcPE) {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d resides on PE %d, not in this process", rank, srcPE)
	}
	if er.done {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d already finished", rank)
	}
	if !er.hasWait || er.pc.blockKind != blockRecv {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d is not parked at a plain Recv", rank)
	}
	if len(er.pc.colls) != 0 {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d has in-flight nonblocking collectives", rank)
	}
	if er.pc.Local != nil && j.opts.LocalPUP == nil {
		return nil, fmt.Errorf("ampi: ShardExtract: rank %d has program state but the job has no LocalPUP", rank)
	}

	p := pup.NewGrowPacker()
	depart := j.m.PE(srcPE).Clock.Now()
	if err := e.packWireLocked(p, er, toPE, depart); err != nil {
		return nil, err
	}
	data := p.PackedBytes()

	// Commit: one table batch + owner word + epoch bump, exactly the
	// in-process LB sequence, after which stragglers chase via Forward.
	if err := j.m.Network().MoveRangeBatch(e.base, []comm.RangeMove{{Index: rank, To: toPE}}); err != nil {
		return nil, fmt.Errorf("ampi: ShardExtract: %w", err)
	}
	e.pes[rank].Store(int32(toPE))
	e.migEpoch.Add(1)
	er.hasWait, er.kont = false, nil
	er.waiting = matchSpec{}
	er.mbox, er.head = nil, 0
	er.sendSeq, er.recvSeq, er.held = nil, nil, nil
	er.pc.Local = nil
	er.busy = 0
	e.remaining.Add(-1)
	return data, nil
}

// ShardNoteMove applies another process's move to this worker's
// directory and owner word (idempotent). Workers not party to a
// migration still need it so their senders address the new owner.
func (j *Job) ShardNoteMove(rank, toPE int) error {
	e := j.ev
	if e == nil || !e.sharded {
		return fmt.Errorf("ampi: ShardNoteMove needs a sharded event job")
	}
	if rank < 0 || rank >= e.size || toPE < 0 || toPE >= j.m.NumPEs() {
		return fmt.Errorf("ampi: ShardNoteMove: rank %d → PE %d out of range", rank, toPE)
	}
	if e.peOf(rank) == toPE {
		return nil
	}
	if err := j.m.Network().MoveRangeBatch(e.base, []comm.RangeMove{{Index: rank, To: toPE}}); err != nil {
		return fmt.Errorf("ampi: ShardNoteMove: %w", err)
	}
	e.pes[rank].Store(int32(toPE))
	e.migEpoch.Add(1)
	return nil
}

// ShardInstall adopts a record extracted by another process: it flips
// the local directory, rebuilds the rank's slot, merges the record's
// buffered messages ahead of any that chased here first, charges the
// machine's migration bookkeeping, and schedules the reseek
// activation on the owning PE. Returns the installed rank.
func (j *Job) ShardInstall(data []byte) (int, error) {
	e := j.ev
	if e == nil || !e.sharded {
		return -1, fmt.Errorf("ampi: ShardInstall needs a sharded event job")
	}
	u := pup.NewUnpacker(data)
	rec, err := e.unpackWire(u)
	if err != nil {
		return -1, fmt.Errorf("ampi: ShardInstall: %w", err)
	}
	if !j.m.LocalPE(rec.toPE) {
		return -1, fmt.Errorf("ampi: ShardInstall: record for PE %d landed in the wrong process", rec.toPE)
	}
	var local any
	if rec.hasLocal {
		if j.opts.LocalPUP == nil {
			return -1, fmt.Errorf("ampi: ShardInstall: record carries program state but the job has no LocalPUP")
		}
		lu := pup.NewUnpacker(rec.localImg)
		if local, err = j.opts.LocalPUP(lu, nil); err != nil {
			return -1, fmt.Errorf("ampi: ShardInstall: LocalPUP: %w", err)
		}
	}

	if e.peOf(rec.rank) != rec.toPE {
		if err := j.m.Network().MoveRangeBatch(e.base, []comm.RangeMove{{Index: rec.rank, To: rec.toPE}}); err != nil {
			return -1, fmt.Errorf("ampi: ShardInstall: %w", err)
		}
		e.pes[rec.rank].Store(int32(rec.toPE))
	}
	e.migEpoch.Add(1)

	er := &e.store()[rec.rank]
	er.mu.Lock()
	er.pc.vt = rec.vt
	er.busy = rec.busy
	er.waiting = rec.waiting
	er.hasWait, er.kont = false, nil
	er.hasReseek = true
	er.pc.seek, er.pc.seekPos = rec.path, 0
	er.pc.Local = local
	if len(rec.pending) > 0 {
		// The record's messages arrived at the source before the move;
		// anything already buffered here chased the table flip and is
		// strictly younger. Order = record first.
		er.mbox = append(rec.pending, er.mbox[er.head:]...)
		er.head = 0
	}
	// Merge, don't overwrite: a message can slip into the slot between
	// the directory flip above and this rebuild (deliver's owner check
	// passes, the slot is still empty), advancing a stream past the
	// record's snapshot or parking in held. Per-key max keeps both
	// sides' acceptances; the release then drains anything the merged
	// state made in-order — hasWait is false here, so releases only
	// buffer into mbox for the reseek to consume.
	er.sendSeq = mergeSeqMax(er.sendSeq, rec.sendSeq)
	er.recvSeq = mergeSeqMax(er.recvSeq, rec.recvSeq)
	er.held = append(er.held, rec.held...)
	e.releaseHeldLocked(er, rec.toPE)
	er.mu.Unlock()
	e.remaining.Add(1)
	j.m.FinishRemoteMigration(e.idOf(rec.rank), rec.toPE, rec.depart, len(data))

	// The reseek runs as a normal delivery on the owning PE's
	// goroutine — ShardInstall may be called from a transport reader.
	act := &comm.Message{To: e.idOf(rec.rank), From: e.idOf(rec.rank), Tag: tagReseek}
	if err := j.m.Network().DeliverLocal(rec.toPE, []*comm.Message{act}); err != nil {
		return rec.rank, fmt.Errorf("ampi: ShardInstall: scheduling reseek: %w", err)
	}
	return rec.rank, nil
}

// reseekLocked re-runs the program from the root with pc.seek set, so
// the descent jumps straight to the blocked Recv: already-delivered
// matches consume immediately, otherwise the rank re-parks with a
// freshly built continuation. One activation is charged, like any
// dispatch; virtual time only moves if a message is consumed — the
// same instants it would have moved at on the source. er.mu held.
func (e *eventEngine) reseekLocked(er *eventRank, pe int) {
	if !er.hasReseek || er.done {
		return
	}
	er.hasReseek = false
	er.seq++
	e.job.m.PE(pe).Clock.Advance(e.dispatchNs(pe))
	pc := &er.pc
	pc.path = pc.path[:0]
	pc.blockKind = blockNone
	er.tramp.Schedule(func() {
		e.job.prog.run(pc, func() { e.finish(pc.rank) })
	})
	er.tramp.Drain()
	pc.seek, pc.seekPos = nil, 0
}

// shardWire is the decoded cross-process record.
type shardWire struct {
	rank     int
	toPE     int
	depart   float64
	vt       float64
	busy     float64
	waiting  matchSpec
	path     []int32
	hasLocal bool
	localImg []byte
	pending  []*comm.Message
	held     []*comm.Message
	sendSeq  map[int]uint64
	recvSeq  map[int]uint64
}

// recMsgMin is the minimum encoded size of one buffered message:
// From, Tag, Hops, Seq, three timestamps, and the data length prefix.
const recMsgMin = 7*8 + 4

// pupRecMsg moves one buffered message through a record (To is
// implied by the record's rank and restored by the caller).
func pupRecMsg(p *pup.PUPer, m *comm.Message) error {
	from := uint64(m.From)
	if err := p.Uint64(&from); err != nil {
		return err
	}
	if err := p.Int(&m.Tag); err != nil {
		return err
	}
	if err := p.Int(&m.Hops); err != nil {
		return err
	}
	if err := p.Uint64(&m.Seq); err != nil {
		return err
	}
	if err := p.Float64(&m.SendTime); err != nil {
		return err
	}
	if err := p.Float64(&m.Arrival); err != nil {
		return err
	}
	if err := p.Float64(&m.VTime); err != nil {
		return err
	}
	if err := p.Bytes(&m.Data); err != nil {
		return err
	}
	if p.IsUnpacking() {
		m.From = comm.EntityID(from)
	}
	return nil
}

// mergeSeqMax folds src into dst taking the per-key max, reusing
// whichever map exists. Install uses it so stream numbering survives
// both the record's snapshot and any acceptance that beat the record
// into the slot.
func mergeSeqMax(dst, src map[int]uint64) map[int]uint64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		return src
	}
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
		}
	}
	return dst
}

// packSeqMap writes a per-peer stream map sorted by rank, so
// identical state always packs identically.
func packSeqMap(p *pup.PUPer, mp map[int]uint64) error {
	n := len(mp)
	if err := p.Int(&n); err != nil {
		return err
	}
	ranks := make([]int, 0, n)
	for r := range mp {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		k, v := r, mp[r]
		if err := p.Int(&k); err != nil {
			return err
		}
		if err := p.Uint64(&v); err != nil {
			return err
		}
	}
	return nil
}

// unpackSeqMap reads a stream map, validating the claimed entry count
// against the bytes remaining and every rank key against the job.
func (e *eventEngine) unpackSeqMap(p *pup.PUPer) (map[int]uint64, error) {
	var n int
	if err := p.Int(&n); err != nil {
		return nil, err
	}
	if n < 0 || n > p.Remaining()/16 {
		// Division, not n*16: a hostile count near MaxInt64 would
		// overflow the product and slip past the bound.
		return nil, fmt.Errorf("record claims %d stream entries with %d bytes remaining", n, p.Remaining())
	}
	if n == 0 {
		return nil, nil
	}
	mp := make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		var k int
		var v uint64
		if err := p.Int(&k); err != nil {
			return nil, err
		}
		if err := p.Uint64(&v); err != nil {
			return nil, err
		}
		if k < 0 || k >= e.size {
			return nil, fmt.Errorf("record stream entry for rank %d of %d", k, e.size)
		}
		mp[k] = v
	}
	return mp, nil
}

// packWireLocked serializes er for another process; er.mu held.
func (e *eventEngine) packWireLocked(p *pup.PUPer, er *eventRank, toPE int, depart float64) error {
	rank, to := uint64(er.pc.rank), uint64(toPE)
	if err := p.Uint64(&rank); err != nil {
		return err
	}
	if err := p.Uint64(&to); err != nil {
		return err
	}
	if err := p.Float64(&depart); err != nil {
		return err
	}
	if err := p.Float64(&er.pc.vt); err != nil {
		return err
	}
	if err := p.Float64(&er.busy); err != nil {
		return err
	}
	if err := p.Int(&er.waiting.src); err != nil {
		return err
	}
	if err := p.Int(&er.waiting.tag); err != nil {
		return err
	}
	plen := len(er.pc.path)
	if err := p.Int(&plen); err != nil {
		return err
	}
	for i := 0; i < plen; i++ {
		v := int(er.pc.path[i])
		if err := p.Int(&v); err != nil {
			return err
		}
	}
	hasLocal := er.pc.Local != nil
	if err := p.Bool(&hasLocal); err != nil {
		return err
	}
	if hasLocal {
		lp := pup.NewGrowPacker()
		if _, err := e.job.opts.LocalPUP(lp, er.pc.Local); err != nil {
			return fmt.Errorf("ampi: LocalPUP: %w", err)
		}
		img := lp.PackedBytes()
		if err := p.Bytes(&img); err != nil {
			return err
		}
	}
	pending := len(er.mbox) - er.head
	if err := p.Int(&pending); err != nil {
		return err
	}
	for i := 0; i < pending; i++ {
		if err := pupRecMsg(p, er.mbox[er.head+i]); err != nil {
			return err
		}
	}
	nheld := len(er.held)
	if err := p.Int(&nheld); err != nil {
		return err
	}
	for _, m := range er.held {
		if err := pupRecMsg(p, m); err != nil {
			return err
		}
	}
	if err := packSeqMap(p, er.sendSeq); err != nil {
		return err
	}
	return packSeqMap(p, er.recvSeq)
}

// unpackWire decodes a record, validating every count against the
// bytes remaining before allocating (same hardening as the envelope
// codec — records cross the same untrusted wire).
func (e *eventEngine) unpackWire(p *pup.PUPer) (*shardWire, error) {
	rec := &shardWire{}
	var rank, to uint64
	if err := p.Uint64(&rank); err != nil {
		return nil, err
	}
	if err := p.Uint64(&to); err != nil {
		return nil, err
	}
	if rank >= uint64(e.size) {
		return nil, fmt.Errorf("record for rank %d of %d", rank, e.size)
	}
	if to >= uint64(e.job.m.NumPEs()) {
		return nil, fmt.Errorf("record for PE %d of %d", to, e.job.m.NumPEs())
	}
	rec.rank, rec.toPE = int(rank), int(to)
	if err := p.Float64(&rec.depart); err != nil {
		return nil, err
	}
	if err := p.Float64(&rec.vt); err != nil {
		return nil, err
	}
	if err := p.Float64(&rec.busy); err != nil {
		return nil, err
	}
	if err := p.Int(&rec.waiting.src); err != nil {
		return nil, err
	}
	if err := p.Int(&rec.waiting.tag); err != nil {
		return nil, err
	}
	var plen int
	if err := p.Int(&plen); err != nil {
		return nil, err
	}
	if plen < 0 || plen > shardPathMax || plen*8 > p.Remaining() {
		return nil, fmt.Errorf("record claims path of %d frames with %d bytes remaining", plen, p.Remaining())
	}
	rec.path = make([]int32, plen)
	for i := range rec.path {
		var v int
		if err := p.Int(&v); err != nil {
			return nil, err
		}
		rec.path[i] = int32(v)
	}
	if err := p.Bool(&rec.hasLocal); err != nil {
		return nil, err
	}
	if rec.hasLocal {
		if err := p.Bytes(&rec.localImg); err != nil {
			return nil, err
		}
	}
	var err error
	if rec.pending, err = e.unpackMsgs(p, rec.rank, "pending"); err != nil {
		return nil, err
	}
	if rec.held, err = e.unpackMsgs(p, rec.rank, "held"); err != nil {
		return nil, err
	}
	if rec.sendSeq, err = e.unpackSeqMap(p); err != nil {
		return nil, err
	}
	if rec.recvSeq, err = e.unpackSeqMap(p); err != nil {
		return nil, err
	}
	if p.Remaining() != 0 {
		return nil, fmt.Errorf("record carries %d trailing bytes", p.Remaining())
	}
	return rec, nil
}

// unpackMsgs reads one buffered-message list, validating the claimed
// count against the bytes remaining before sizing the slice.
func (e *eventEngine) unpackMsgs(p *pup.PUPer, rank int, what string) ([]*comm.Message, error) {
	var n int
	if err := p.Int(&n); err != nil {
		return nil, err
	}
	if n < 0 || n > p.Remaining()/recMsgMin {
		// Division, not n*recMsgMin, so a hostile count cannot overflow
		// past the bound.
		return nil, fmt.Errorf("record claims %d %s messages with %d bytes remaining", n, what, p.Remaining())
	}
	if n == 0 {
		return nil, nil
	}
	msgs := make([]*comm.Message, n)
	for i := range msgs {
		m := &comm.Message{To: e.idOf(rank)}
		if err := pupRecMsg(p, m); err != nil {
			return nil, err
		}
		msgs[i] = m
	}
	return msgs, nil
}
