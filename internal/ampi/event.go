package ampi

// The event-mode backend: each rank is one eventRank struct in a
// contiguous per-job store — no goroutine, no channel, no stack. A
// blocking point stores a continuation in the rank's slot and returns
// to the owning PE's loop; message delivery (through the machine's
// Pump) resumes exactly the waiting continuation, charging the
// platform's EventDispatch curve per activation instead of a thread
// switch. This is BigSim's tproc store applied to AMPI itself, and
// the reason a million-rank job fits where the ULT backend needs a
// stack and a goroutine per rank.
//
// Concurrency: a rank is owned by the PE it was born on (event ranks
// are pinned — comm.PinnedEntity), and every touch of its slot
// happens on that PE's goroutine (its Pump, or the job-start
// bootstrap thread scheduled there), so slots need no locks. The only
// cross-PE communication is the atomic remaining counter, whose
// final decrement orders the engine's teardown after every other
// PE's last write.

import (
	"fmt"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/sdag"
)

// deregBatchSize bounds how many finished ranks accumulate per PE
// before their directory entries are removed in one batch (each batch
// clones the touched directory shards once, not once per rank).
const deregBatchSize = 4096

// eventRank is one rank's entire flow-of-control state: ~120 bytes
// plus whatever the program keeps in pc.Local, versus a goroutine,
// two channels, and an isomalloc stack for a ULT rank.
type eventRank struct {
	pc eventPC

	// mbox buffers messages that arrived before a matching Recv,
	// consumed from head so takes do not shift the slice.
	mbox []*comm.Message
	head int

	// waiting + kont are the stored continuation of a blocked Recv.
	waiting matchSpec
	hasWait bool
	kont    func(*comm.Message)

	done bool
}

// eventPC embeds the shared program context so &er.pc can be handed
// to the interpreter without a separate allocation per rank.
type eventPC = PC

// eventEngine is the per-job store and dispatcher.
type eventEngine struct {
	job  *Job
	size int
	base comm.EntityID // entity of rank 0 (carries PinnedEntity)

	ranks []eventRank // contiguous store; released at completion

	// dispatch[pe] is the precomputed EventDispatch.At(flows) charge
	// per activation (constant once residency is fixed: ranks never
	// migrate), and tramps[pe] is the PE's continuation trampoline.
	dispatch []float64
	tramps   []sdag.Tramp

	// pendDereg[pe] batches finished ranks' directory removals.
	pendDereg [][]comm.EntityID

	remaining atomic.Int64

	// vts snapshots every rank's final predicted time when the last
	// rank finishes, so results survive the store's release.
	vts []float64
}

// newEventEngine builds the store, reserves a dense pinned entity-ID
// block, and registers locations (one batch) and the shared dispatch
// handler (one range) for all ranks.
func newEventEngine(j *Job) (*eventEngine, error) {
	size := j.size
	numPEs := j.m.NumPEs()
	e := &eventEngine{
		job:       j,
		size:      size,
		base:      comm.PinnedEntity | comm.EntityID(converse.AllocFlowIDs(size)),
		ranks:     make([]eventRank, size),
		dispatch:  make([]float64, numPEs),
		tramps:    make([]sdag.Tramp, numPEs),
		pendDereg: make([][]comm.EntityID, numPEs),
	}
	e.remaining.Store(int64(size))

	flows := make([]int, numPEs)
	pes := make([]int, size)
	for r := 0; r < size; r++ {
		pes[r] = placePE(r, size, numPEs, j.opts.BlockPlacement)
		flows[pes[r]]++
	}
	for p := 0; p < numPEs; p++ {
		if flows[p] > 0 {
			e.dispatch[p] = j.m.PE(p).Prof.EventDispatch.At(flows[p])
		}
	}
	for r := 0; r < size; r++ {
		pc := &e.ranks[r].pc
		pc.job, pc.rank = j, r
		pc.be = e
		pc.tramp = &e.tramps[pes[r]]
	}
	if err := j.m.Network().RegisterBatch(e.base, pes); err != nil {
		return nil, err
	}
	if err := j.m.RegisterEntityRange(e.base, e.base+comm.EntityID(size-1), e.deliver); err != nil {
		j.m.Network().DeregisterBatch(e.allIDs())
		return nil, err
	}
	return e, nil
}

func (e *eventEngine) idOf(rank int) comm.EntityID { return e.base + comm.EntityID(rank) }

// rankIdx inverts idOf; -1 for identities outside the job.
func (e *eventEngine) rankIdx(id comm.EntityID) int {
	if id < e.base || id >= e.base+comm.EntityID(e.size) {
		return -1
	}
	return int(id - e.base)
}

func (e *eventEngine) peIdx(rank int) int {
	return placePE(rank, e.size, e.job.m.NumPEs(), e.job.opts.BlockPlacement)
}

func (e *eventEngine) allIDs() []comm.EntityID {
	ids := make([]comm.EntityID, e.size)
	for r := range ids {
		ids[r] = e.idOf(r)
	}
	return ids
}

// start bootstraps the job: one short-lived thread per populated PE
// dispatches the initial activation of each resident rank, so initial
// work runs on the owning PE under both Run drivers (and in parallel
// under RunParallel).
func (e *eventEngine) start() {
	numPEs := e.job.m.NumPEs()
	for p := 0; p < numPEs; p++ {
		first := make([]int, 0, (e.size+numPEs-1)/numPEs)
		for r := 0; r < e.size; r++ {
			if e.peIdx(r) == p {
				first = append(first, r)
			}
		}
		if len(first) == 0 {
			continue
		}
		list := first
		pe := e.job.m.PE(p)
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy: e.job.opts.Strategy,
		}, func(*converse.Ctx) {
			for _, r := range list {
				e.dispatchStart(r)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("ampi: event bootstrap on PE %d: %v", p, err))
		}
		pe.Sched.Start(th)
	}
}

// dispatchStart runs rank r's program until its first blocking point
// (or completion), charging one activation.
func (e *eventEngine) dispatchStart(r int) {
	p := e.peIdx(r)
	e.job.m.PE(p).Clock.Advance(e.dispatch[p])
	tr := &e.tramps[p]
	tr.Schedule(func() {
		e.job.prog.run(&e.ranks[r].pc, func() { e.finish(r) })
	})
	tr.Drain()
}

// deliver is the shared range handler: it runs on the destination
// PE's goroutine via Machine.Pump. A message either resumes the
// rank's stored continuation (one EventDispatch activation) or
// buffers in its slot.
func (e *eventEngine) deliver(pe int, msg *comm.Message) {
	r := e.rankIdx(msg.To)
	if r < 0 || e.ranks == nil {
		return
	}
	er := &e.ranks[r]
	if er.done {
		return // a straggler for a finished rank (program bug); drop like a closed mailbox
	}
	if er.hasWait && e.matches(er.waiting, msg) {
		er.hasWait = false
		k := er.kont
		er.kont = nil
		p := e.job.m.PE(pe)
		p.Clock.Advance(e.dispatch[pe]) // the activation: continuation re-enters the loop
		p.Clock.AdvanceTo(msg.Arrival)
		if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
			p.Clock.Advance(ovh)
		}
		tr := &e.tramps[pe]
		tr.Schedule(func() { k(msg) })
		tr.Drain()
		return
	}
	er.mbox = append(er.mbox, msg)
}

func (e *eventEngine) matches(spec matchSpec, m *comm.Message) bool {
	if spec.tag != AnyTag && spec.tag != m.Tag {
		return false
	}
	if spec.src != AnySource && e.idOf(spec.src) != m.From {
		return false
	}
	return true
}

// take removes and returns the oldest buffered message matching spec.
func (er *eventRank) take(e *eventEngine, spec matchSpec) *comm.Message {
	for i := er.head; i < len(er.mbox); i++ {
		if e.matches(spec, er.mbox[i]) {
			m := er.mbox[i]
			copy(er.mbox[er.head+1:i+1], er.mbox[er.head:i])
			er.mbox[er.head] = nil
			er.head++
			if er.head == len(er.mbox) {
				er.mbox, er.head = er.mbox[:0], 0
			}
			return m
		}
	}
	return nil
}

// ---------------------------------------------------------------
// backend interface

func (e *eventEngine) send(pc *PC, dest, tag int, data []byte) {
	if dest < 0 || dest >= e.size {
		panic(fmt.Sprintf("ampi: program Send to rank %d of %d", dest, e.size))
	}
	p := e.job.m.PE(e.peIdx(pc.rank))
	if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
		p.Clock.Advance(ovh)
	}
	msg := &comm.Message{
		To:       e.idOf(dest),
		From:     e.idOf(pc.rank),
		Tag:      tag,
		Data:     data,
		SendTime: p.Clock.Now(),
		VTime:    pc.vt,
	}
	if err := e.job.m.Network().Endpoint(p.Index).Send(msg); err != nil {
		panic(fmt.Sprintf("ampi: event send: %v", err))
	}
}

func (e *eventEngine) recv(pc *PC, src, tag int, k func(*comm.Message)) {
	er := &e.ranks[pc.rank]
	spec := matchSpec{src: src, tag: tag}
	if m := er.take(e, spec); m != nil {
		// Consuming a buffered message is not a fresh activation (the
		// rank is already running); only the arrival constraint and
		// software overhead are charged, mirroring the thread path.
		p := e.job.m.PE(e.peIdx(pc.rank))
		p.Clock.AdvanceTo(m.Arrival)
		if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
			p.Clock.Advance(ovh)
		}
		k(m)
		return
	}
	er.waiting, er.hasWait, er.kont = spec, true, k
}

func (e *eventEngine) work(pc *PC, ns float64) {
	e.job.m.PE(e.peIdx(pc.rank)).Clock.Advance(ns)
}

// ---------------------------------------------------------------
// Completion

// finish retires rank r: its slot's buffers, continuation, and
// program state are released immediately, and its directory entry
// joins the owning PE's batched deregistration — so a completed
// million-rank job walks the Machine back to its idle footprint.
func (e *eventEngine) finish(r int) {
	er := &e.ranks[r]
	er.done = true
	er.mbox, er.head = nil, 0
	er.kont, er.hasWait = nil, false
	er.pc.Local = nil
	p := e.peIdx(r)
	e.pendDereg[p] = append(e.pendDereg[p], e.idOf(r))
	if len(e.pendDereg[p]) >= deregBatchSize {
		e.job.m.Network().DeregisterBatch(e.pendDereg[p])
		e.pendDereg[p] = e.pendDereg[p][:0]
	}
	if e.remaining.Add(-1) == 0 {
		e.shutdown()
	}
}

// shutdown runs once, on whichever PE finished the last rank: the
// atomic decrement chain orders it after every other PE's final slot
// writes. It snapshots results, flushes every deregistration batch,
// removes the shared handler range, and releases the store.
func (e *eventEngine) shutdown() {
	e.vts = make([]float64, e.size)
	for r := range e.ranks {
		e.vts[r] = e.ranks[r].pc.vt
	}
	for p := range e.pendDereg {
		e.job.m.Network().DeregisterBatch(e.pendDereg[p])
		e.pendDereg[p] = nil
	}
	e.job.m.DeregisterEntityRange(e.base, e.base+comm.EntityID(e.size-1))
	e.ranks = nil
}

// vtOf returns rank r's predicted time, live or snapshotted.
func (e *eventEngine) vtOf(r int) float64 {
	if e.ranks != nil {
		return e.ranks[r].pc.vt
	}
	return e.vts[r]
}
