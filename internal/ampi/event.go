package ampi

// The event-mode backend: each rank is one eventRank struct in a
// contiguous per-job store — no goroutine, no channel, no stack. A
// blocking point stores a continuation in the rank's slot and returns
// to the owning PE's loop; message delivery (through the machine's
// Pump) resumes exactly the waiting continuation, charging the
// platform's EventDispatch curve per activation instead of a thread
// switch. This is BigSim's tproc store applied to AMPI itself, and
// the reason a million-rank job fits where the ULT backend needs a
// stack and a goroutine per rank.
//
// Migration: an event rank's migratable state is its continuation
// RECORD — rank number, virtual time, measured load, the pending
// receive spec, and any buffered messages: ~180 bytes, serialized
// faithfully through pup (eventRecord implements migrate.Record).
// The continuation closure itself (kont) and the program's Local
// state are SHARED CODE plus state reachable from the record, the
// CPC argument: because every rank runs the same immutable program
// tree, the destination PE needs no stack or code image, only the
// record. Moving a rank is therefore: batch-update the comm range
// table (one epoch bump per LB step), flip the engine's owner word,
// and round-trip the record through Extract/Install — no eviction,
// no vmem image, no adoption.
//
// Concurrency: each rank carries its own mutex. The owning PE's
// dispatch paths (dispatchStart, deliver, resumeGate) hold it while
// running the rank's continuation, and migration's Extract/Install
// take it too — so a mover never observes a half-run activation, and
// a dispatcher never runs a rank that is mid-flight. The lock is
// per-rank, not per-PE, because ownership itself changes: a per-PE
// lock names a PE, and the name goes stale at exactly the moment it
// matters. In-flight messages that raced a move are chased: deliver
// re-checks the owner word (one atomic load; in-process runs skip it
// until the first LB step — migEpoch gates the check — while sharded
// runs always check, since a peer's move can outrun its notice) and
// forwards losers with Endpoint.Forward.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/pup"
	"migflow/internal/sdag"
)

// deregBatchSize bounds how many finished ranks accumulate per PE
// before their directory entries are removed in one batch (each batch
// tombstones range-table entries in place).
const deregBatchSize = 4096

// eventRank is one rank's entire flow-of-control state: ~180 bytes
// plus whatever the program keeps in pc.Local, versus a goroutine,
// two channels, and an isomalloc stack for a ULT rank.
type eventRank struct {
	mu sync.Mutex // guards every field; held while the rank's continuation runs

	pc eventPC

	// mbox buffers messages that arrived before a matching Recv,
	// consumed from head so takes do not shift the slice.
	mbox []*comm.Message
	head int

	// waiting + kont are the stored continuation of a blocked Recv.
	waiting matchSpec
	hasWait bool
	kont    func(*comm.Message)

	// lbKont is the continuation parked at a Migrate gate, resumed by
	// the runtime after the LB step.
	lbKont func()

	// busy accumulates Work nanoseconds since the last LB step — the
	// event-mode load measurement (the record's analogue of a thread's
	// consumed CPU time).
	busy float64

	// tramp is the rank's continuation trampoline (CPS backedges).
	// Per-rank rather than per-PE because it is only ever touched
	// under er.mu: a per-PE trampoline would be shared by whichever
	// goroutines happen to dispatch residents mid-migration.
	tramp sdag.Tramp

	// seq counts activations and buffered deliveries. A migration
	// record carries the seq it was extracted at; if the rank ran
	// again before the record installs (possible only when an LB step
	// races live traffic, never at a quiescent gate), the snapshot is
	// stale and Install yields to the newer in-slot state.
	seq uint64

	// hasReseek marks a slot freshly installed from another process
	// (shard.go): pc.seek holds the shipped tree path, and the next
	// tagReseek activation re-descends the program to the blocked Recv.
	hasReseek bool

	// sendSeq/recvSeq number the per-peer payload streams and held
	// parks out-of-order arrivals, all nil until a sharded run needs
	// them: a message routed straight to a rank's new owner can
	// overtake an older one still chasing through the old owner, and
	// matching is by send order, not arrival order (see deliver).
	sendSeq map[int]uint64
	recvSeq map[int]uint64
	held    []*comm.Message

	done bool
}

// eventPC embeds the shared program context so &er.pc can be handed
// to the interpreter without a separate allocation per rank.
type eventPC = PC

// eventEngine is the per-job store and dispatcher.
type eventEngine struct {
	job  *Job
	size int
	base comm.EntityID // entity of rank 0 (carries PinnedEntity)

	// ranks points at the contiguous store; swapped to nil at
	// completion so straggler deliveries after release are safe.
	ranks atomic.Pointer[[]eventRank]

	// pes[r] is rank r's current owner PE — the engine-side mirror of
	// the comm range table, flipped (with the table, in one batch) by
	// each LB step.
	pes []atomic.Int32

	// dispatch[pe] holds Float64bits of the EventDispatch.At(flows)
	// charge per activation on that PE, recomputed per LB step as
	// residency changes.
	dispatch []atomic.Uint64

	// migEpoch counts LB steps; zero means no rank has ever moved, so
	// deliver can skip the owner check entirely — in-process runs
	// only. Sharded deliver always checks: a peer's move can be in
	// flight toward this worker while the local epoch still reads zero.
	migEpoch atomic.Uint64

	// sharded mirrors the machine: this process runs only the ranks
	// whose owner PE is local. remaining then counts LOCAL unfinished
	// ranks (adjusted by cross-process moves), finish never deregisters
	// or releases the store (peers still forward through the
	// directory), and every rank tracks its program-tree path so a
	// blocked continuation can be re-seeked on another process.
	sharded bool

	// lbMu serializes Rebalance steps (plan → table batch → records).
	lbMu sync.Mutex

	// pendDereg[pe] batches finished ranks' directory removals.
	// deregMu guards the batches: a rank usually finishes on its
	// owner's pump, but a racing LB step can flip the owner word
	// mid-activation, landing two pumps on the same batch.
	deregMu   sync.Mutex
	pendDereg [][]comm.EntityID

	remaining atomic.Int64

	// vts snapshots every rank's final predicted time when the last
	// rank finishes, so results survive the store's release.
	vts []float64
}

// newEventEngine builds the store, reserves a dense pinned entity-ID
// block, and registers one comm range location table and one shared
// dispatch handler range for all ranks.
func newEventEngine(j *Job) (*eventEngine, error) {
	size := j.size
	numPEs := j.m.NumPEs()
	e := &eventEngine{
		job:       j,
		size:      size,
		base:      j.m.Network().AllocFlowIDs(size),
		pes:       make([]atomic.Int32, size),
		dispatch:  make([]atomic.Uint64, numPEs),
		pendDereg: make([][]comm.EntityID, numPEs),
	}
	e.remaining.Store(int64(size))

	store := make([]eventRank, size)
	flows := make([]int, numPEs)
	pes := make([]int, size)
	for r := 0; r < size; r++ {
		pes[r] = placePE(r, size, numPEs, j.opts.BlockPlacement)
		e.pes[r].Store(int32(pes[r]))
		flows[pes[r]]++
	}
	for p := 0; p < numPEs; p++ {
		if flows[p] > 0 {
			e.dispatch[p].Store(math.Float64bits(j.m.PE(p).Prof.EventDispatch.At(flows[p])))
		}
	}
	e.sharded = j.m.Sharded()
	if e.sharded {
		local := int64(0)
		for r := 0; r < size; r++ {
			if j.m.LocalPE(pes[r]) {
				local++
			}
		}
		e.remaining.Store(local)
	}
	for r := 0; r < size; r++ {
		pc := &store[r].pc
		pc.job, pc.rank = j, r
		pc.be = e
		pc.tramp = &store[r].tramp
		if e.sharded {
			pc.path = make([]int32, 0, 8)
		}
	}
	e.ranks.Store(&store)
	if err := j.m.Network().RegisterRange(e.base, pes); err != nil {
		return nil, err
	}
	if err := j.m.RegisterEntityRange(e.base, e.base+comm.EntityID(size-1), e.deliver); err != nil {
		j.m.Network().DeregisterRange(e.base)
		return nil, err
	}
	return e, nil
}

func (e *eventEngine) idOf(rank int) comm.EntityID { return e.base + comm.EntityID(rank) }

// rankIdx inverts idOf; -1 for identities outside the job.
func (e *eventEngine) rankIdx(id comm.EntityID) int {
	if id < e.base || id >= e.base+comm.EntityID(e.size) {
		return -1
	}
	return int(id - e.base)
}

// peOf returns rank r's current owner PE.
func (e *eventEngine) peOf(r int) int { return int(e.pes[r].Load()) }

// dispatchNs returns PE p's per-activation charge.
func (e *eventEngine) dispatchNs(p int) float64 {
	return math.Float64frombits(e.dispatch[p].Load())
}

// store returns the rank slice, or nil after release.
func (e *eventEngine) store() []eventRank {
	if p := e.ranks.Load(); p != nil {
		return *p
	}
	return nil
}

// start bootstraps the job: one short-lived thread per populated PE
// dispatches the initial activation of each resident rank, so initial
// work runs on the owning PE under both Run drivers (and in parallel
// under RunParallel).
func (e *eventEngine) start() {
	if e.sharded {
		e.bootstrap(func(r int) bool { return e.job.m.LocalPE(e.peOf(r)) }, e.dispatchStart)
		return
	}
	e.bootstrap(func(r int) bool { return true }, e.dispatchStart)
}

// bootstrap runs fn(r) for every rank selected by want, grouped by
// current owner PE on a short-lived thread per PE.
func (e *eventEngine) bootstrap(want func(r int) bool, fn func(r int)) {
	numPEs := e.job.m.NumPEs()
	perPE := make([][]int, numPEs)
	for r := 0; r < e.size; r++ {
		if want(r) {
			p := e.peOf(r)
			perPE[p] = append(perPE[p], r)
		}
	}
	for p := 0; p < numPEs; p++ {
		if len(perPE[p]) == 0 {
			continue
		}
		list := perPE[p]
		pe := e.job.m.PE(p)
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy: e.job.opts.Strategy,
		}, func(*converse.Ctx) {
			for _, r := range list {
				fn(r)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("ampi: event bootstrap on PE %d: %v", p, err))
		}
		pe.Sched.Start(th)
	}
}

// dispatchStart runs rank r's program until its first blocking point
// (or completion), charging one activation. The rank's lock is held
// for the whole activation.
func (e *eventEngine) dispatchStart(r int) {
	er := &e.store()[r]
	er.mu.Lock()
	defer er.mu.Unlock()
	er.seq++
	p := e.peOf(r)
	e.job.m.PE(p).Clock.Advance(e.dispatchNs(p))
	er.tramp.Schedule(func() {
		e.job.prog.run(&er.pc, func() { e.finish(r) })
	})
	er.tramp.Drain()
}

// deliver is the shared range handler: it runs on the destination
// PE's goroutine via Machine.Pump. A message either resumes the
// rank's stored continuation (one EventDispatch activation), buffers
// in its slot, or — when the rank moved after the message was sent —
// is forwarded to chase it.
func (e *eventEngine) deliver(pe int, msg *comm.Message) {
	ranks := e.store()
	if ranks == nil {
		return
	}
	r := e.rankIdx(msg.To)
	if r < 0 {
		return
	}
	er := &ranks[r]
	er.mu.Lock()
	if msg.Tag == tagReseek {
		// Internal activation injected by ShardInstall: re-seek the
		// installed continuation on the owning PE's own goroutine, then
		// drain any held arrivals the record's stream state made
		// in-order (the re-parked Recv may be waiting on exactly one).
		e.reseekLocked(er, pe)
		e.releaseHeldLocked(er, pe)
		er.mu.Unlock()
		return
	}
	// Owner check BEFORE the done check: free until the first move
	// ever happens, one atomic load after. A message that raced a move
	// chases the rank to its new PE; the extra hop shows up in Hops
	// and Arrival, and the directory stays O(1) arithmetic either way.
	// The order matters for sharded runs — a rank extracted to another
	// process leaves a cleared slot that is NOT done, and its
	// stragglers must forward, not buffer. Sharded runs always check:
	// migEpoch is LOCAL knowledge, and a sender that learned of a move
	// from the source can reach this worker before the record or MOVED
	// notice does — with the epoch still zero here, skipping the check
	// would absorb the message into a not-yet-installed slot. The
	// stale directory bounces it back toward the old owner, whose
	// flipped table returns it behind the record (link FIFO), so the
	// chase terminates after install.
	if (e.sharded || e.migEpoch.Load() != 0) && e.peOf(r) != pe {
		er.mu.Unlock()
		if err := e.job.m.Network().Endpoint(pe).Forward(msg); err != nil {
			return // rank finished and deregistered mid-chase; drop
		}
		return
	}
	if er.done {
		er.mu.Unlock()
		return // a straggler for a finished rank (program bug); drop like a closed mailbox
	}
	if msg.Seq != 0 {
		// Sequenced stream (sharded runs): accept strictly in send
		// order. A message that crossed a migration on the direct route
		// while an older one is still chasing through the old owner
		// would otherwise match a Recv meant for its predecessor.
		src := e.rankIdx(msg.From)
		if msg.Seq != er.recvSeq[src]+1 {
			er.held = append(er.held, msg)
			er.mu.Unlock()
			return
		}
		er.noteSeq(src, msg.Seq)
	}
	e.acceptLocked(er, pe, msg)
	e.releaseHeldLocked(er, pe)
	er.mu.Unlock()
}

// acceptLocked hands one in-order message to the rank: resume the
// stored continuation if it matches the parked Recv, else buffer.
// er.mu held.
func (e *eventEngine) acceptLocked(er *eventRank, pe int, msg *comm.Message) {
	er.seq++
	if er.hasWait && e.matches(er.waiting, msg) {
		er.hasWait = false
		k := er.kont
		er.kont = nil
		p := e.job.m.PE(pe)
		p.Clock.Advance(e.dispatchNs(pe)) // the activation: continuation re-enters the loop
		p.Clock.AdvanceTo(msg.Arrival)
		if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
			p.Clock.Advance(ovh)
		}
		er.tramp.Schedule(func() { k(msg) })
		er.tramp.Drain()
		return
	}
	er.mbox = append(er.mbox, msg)
}

// noteSeq records the acceptance of seq from peer rank src.
func (er *eventRank) noteSeq(src int, seq uint64) {
	if er.recvSeq == nil {
		er.recvSeq = make(map[int]uint64)
	}
	er.recvSeq[src] = seq
}

// releaseHeldLocked re-examines held arrivals after an acceptance
// closed a stream gap, accepting any that are now next in their
// sender's order; each acceptance can close another gap. A rank that
// finished mid-release drops the rest like its mailbox. er.mu held.
func (e *eventEngine) releaseHeldLocked(er *eventRank, pe int) {
	for progress := len(er.held) > 0; progress; {
		progress = false
		if er.done {
			er.held = nil
			return
		}
		for i, m := range er.held {
			src := e.rankIdx(m.From)
			if m.Seq != er.recvSeq[src]+1 {
				continue
			}
			er.held = append(er.held[:i], er.held[i+1:]...)
			er.noteSeq(src, m.Seq)
			e.acceptLocked(er, pe, m)
			progress = true
			break
		}
	}
}

func (e *eventEngine) matches(spec matchSpec, m *comm.Message) bool {
	if spec.tag != AnyTag && spec.tag != m.Tag {
		return false
	}
	if spec.src != AnySource && e.idOf(spec.src) != m.From {
		return false
	}
	return true
}

// take removes and returns the oldest buffered message matching spec.
func (er *eventRank) take(e *eventEngine, spec matchSpec) *comm.Message {
	for i := er.head; i < len(er.mbox); i++ {
		if e.matches(spec, er.mbox[i]) {
			m := er.mbox[i]
			copy(er.mbox[er.head+1:i+1], er.mbox[er.head:i])
			er.mbox[er.head] = nil
			er.head++
			if er.head == len(er.mbox) {
				er.mbox, er.head = er.mbox[:0], 0
			}
			return m
		}
	}
	return nil
}

// ---------------------------------------------------------------
// backend interface
//
// send/recv/work/lbpoint are always called from a continuation
// already running under the rank's lock (dispatchStart, deliver, or
// resumeGate holds it), so they never lock the rank themselves.

func (e *eventEngine) send(pc *PC, dest, tag int, data []byte) {
	if dest < 0 || dest >= e.size {
		panic(fmt.Sprintf("ampi: program Send to rank %d of %d", dest, e.size))
	}
	p := e.job.m.PE(e.peOf(pc.rank))
	if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
		p.Clock.Advance(ovh)
	}
	msg := &comm.Message{
		To:       e.idOf(dest),
		From:     e.idOf(pc.rank),
		Tag:      tag,
		Data:     data,
		SendTime: p.Clock.Now(),
		VTime:    pc.vt,
	}
	if e.sharded {
		// Number the stream so the receiver can restore send order if
		// this message and a predecessor take different routes across a
		// migration. Non-sharded runs only move ranks at quiescent
		// gates, so their delivery order is already send order — they
		// skip the map work and their envelopes stay byte-identical.
		er := &e.store()[pc.rank]
		if er.sendSeq == nil {
			er.sendSeq = make(map[int]uint64)
		}
		er.sendSeq[dest]++
		msg.Seq = er.sendSeq[dest]
	}
	if err := e.job.m.Network().Endpoint(p.Index).Send(msg); err != nil {
		panic(fmt.Sprintf("ampi: event send: %v", err))
	}
}

func (e *eventEngine) recv(pc *PC, src, tag int, k func(*comm.Message)) {
	er := &e.store()[pc.rank]
	spec := matchSpec{src: src, tag: tag}
	if m := er.take(e, spec); m != nil {
		// Consuming a buffered message is not a fresh activation (the
		// rank is already running); only the arrival constraint and
		// software overhead are charged, mirroring the thread path.
		p := e.job.m.PE(e.peOf(pc.rank))
		p.Clock.AdvanceTo(m.Arrival)
		if ovh := e.job.opts.MsgOverheadNs; ovh > 0 {
			p.Clock.Advance(ovh)
		}
		k(m)
		return
	}
	er.waiting, er.hasWait, er.kont = spec, true, k
}

func (e *eventEngine) work(pc *PC, ns float64) {
	e.store()[pc.rank].busy += ns
	e.job.m.PE(e.peOf(pc.rank)).Clock.Advance(ns)
}

func (e *eventEngine) pe(pc *PC) int { return e.peOf(pc.rank) }

// usestack is a no-op: an event rank's entire migratable state is its
// record; there is no stack to reserve or dirty.
func (e *eventEngine) usestack(pc *PC, n uint64) {}

// lbpoint parks the rank at the job's LB gate: the continuation goes
// into lbKont (the record analogue of a thread suspending in
// MPI_Migrate) and the arrival is registered. The runtime resumes it
// — possibly on a different PE — after the plan is applied. A gate
// sends no messages and never touches vt, so predicted time stays
// bit-identical with and without migration.
func (e *eventEngine) lbpoint(pc *PC, k func()) {
	e.store()[pc.rank].lbKont = k
	pc.job.gateArrive()
}

// ---------------------------------------------------------------
// Migration

// eventRecord is rank r's migratable continuation record — the
// migrate.Record the LB batch hands to core.Machine.MigrateMany. Its
// Extract/Install round trip is a faithful PUP of everything a
// destination PE needs that is not shared program code: identity,
// virtual time, measured load, the pending receive spec, and
// buffered messages.
type eventRecord struct {
	e *eventEngine
	r int
}

func (rec eventRecord) ID() uint64 { return uint64(rec.e.idOf(rec.r)) }

// Extract serializes the record under the rank's lock (so a mover
// never sees a half-run activation).
func (rec eventRecord) Extract(p *pup.PUPer) error {
	ranks := rec.e.store()
	if ranks == nil {
		return fmt.Errorf("ampi: rank %d migrated after job completion", rec.r)
	}
	er := &ranks[rec.r]
	er.mu.Lock()
	defer er.mu.Unlock()
	return er.pupLocked(p)
}

// Install overwrites the rank's state from a prior Extract — the
// other half of the round trip. The slot is addressed by rank, so
// "where the record lands" is the owner word and the comm range
// table, both already flipped by the LB batch.
func (rec eventRecord) Install(data []byte) error {
	ranks := rec.e.store()
	if ranks == nil {
		return fmt.Errorf("ampi: rank %d installed after job completion", rec.r)
	}
	er := &ranks[rec.r]
	er.mu.Lock()
	defer er.mu.Unlock()
	u := pup.NewUnpacker(data)
	return er.pupLocked(u)
}

// pupLocked packs or unpacks the rank's migratable state; er.mu held.
// kont/lbKont (closures over the shared program tree) and pc.Local
// travel by reference — they are reachable state, not wire bytes; the
// wire image is what a distributed implementation would send, and its
// size is what the migration benchmarks report.
func (er *eventRank) pupLocked(p *pup.PUPer) error {
	rank := uint64(er.pc.rank)
	if err := p.Uint64(&rank); err != nil {
		return err
	}
	if p.IsUnpacking() && rank != uint64(er.pc.rank) {
		return fmt.Errorf("ampi: record for rank %d installed into slot %d", rank, er.pc.rank)
	}
	seq := er.seq
	if err := p.Uint64(&seq); err != nil {
		return err
	}
	if p.IsUnpacking() && (er.done || seq != er.seq) {
		// The rank ran (or finished) after this snapshot was
		// extracted — only possible when an LB step races live
		// traffic; a quiescent gate never gets here. The slot already
		// holds the newer state, so the stale image is discarded.
		return nil
	}
	if err := p.Float64(&er.pc.vt); err != nil {
		return err
	}
	if err := p.Float64(&er.busy); err != nil {
		return err
	}
	if err := p.Bool(&er.hasWait); err != nil {
		return err
	}
	if err := p.Int(&er.waiting.src); err != nil {
		return err
	}
	if err := p.Int(&er.waiting.tag); err != nil {
		return err
	}
	pending := len(er.mbox) - er.head
	if err := p.Int(&pending); err != nil {
		return err
	}
	if p.IsUnpacking() {
		er.mbox, er.head = make([]*comm.Message, pending), 0
		for i := range er.mbox {
			er.mbox[i] = &comm.Message{To: er.pc.job.ev.idOf(er.pc.rank)}
		}
	}
	for i := 0; i < pending; i++ {
		m := er.mbox[er.head+i]
		from := uint64(m.From)
		if err := p.Uint64(&from); err != nil {
			return err
		}
		m.From = comm.EntityID(from)
		if err := p.Int(&m.Tag); err != nil {
			return err
		}
		if err := p.Int(&m.Hops); err != nil {
			return err
		}
		if err := p.Float64(&m.SendTime); err != nil {
			return err
		}
		if err := p.Float64(&m.Arrival); err != nil {
			return err
		}
		if err := p.Float64(&m.VTime); err != nil {
			return err
		}
		if err := p.Bytes(&m.Data); err != nil {
			return err
		}
	}
	return nil
}

// collectEventLoads appends every live rank's (id, owner, busy)
// sample to buf — the event-mode measurement walk.
func (e *eventEngine) collectEventLoads(buf []loadbalance.Item) []loadbalance.Item {
	ranks := e.store()
	for r := range ranks {
		er := &ranks[r]
		er.mu.Lock()
		done, busy := er.done, er.busy
		er.mu.Unlock()
		if done {
			continue
		}
		buf = append(buf, loadbalance.Item{ID: uint64(e.idOf(r)), PE: e.peOf(r), Load: busy})
	}
	return buf
}

// applyMoves commits one LB step: ONE comm range-table batch (one
// epoch bump total, not one per rank), the engine's owner words and
// per-PE dispatch charges, then the record round trips through
// core.Machine.MigrateMany — which also charges the postal model for
// each record's bytes and counts it in MigrationStats, exactly as for
// a thread move. Returns ranks moved.
func (e *eventEngine) applyMoves(moves []core.Move, rmoves []comm.RangeMove) (int, error) {
	if len(moves) == 0 {
		return 0, nil
	}
	if err := e.job.m.Network().MoveRangeBatch(e.base, rmoves); err != nil {
		return 0, fmt.Errorf("ampi: event LB table batch: %w", err)
	}
	for _, mv := range rmoves {
		e.pes[mv.Index].Store(int32(mv.To))
	}
	// Residency changed: recompute each PE's activation charge from
	// the live flow counts.
	flows := make([]int, e.job.m.NumPEs())
	ranks := e.store()
	for r := range ranks {
		er := &ranks[r]
		er.mu.Lock()
		done := er.done
		er.mu.Unlock()
		if !done {
			flows[e.peOf(r)]++
		}
	}
	for p := range flows {
		if flows[p] > 0 {
			e.dispatch[p].Store(math.Float64bits(e.job.m.PE(p).Prof.EventDispatch.At(flows[p])))
		}
	}
	e.migEpoch.Add(1)
	moved, err := e.job.m.MigrateMany(moves)
	if err != nil {
		return moved, fmt.Errorf("ampi: event LB record batch: %w", err)
	}
	return moved, nil
}

// resetLoads zeroes the per-rank busy measurements after an LB step.
func (e *eventEngine) resetLoads() {
	ranks := e.store()
	for r := range ranks {
		er := &ranks[r]
		er.mu.Lock()
		er.busy = 0
		er.mu.Unlock()
	}
}

// resumeGate re-dispatches every rank parked at the LB gate, on its
// (possibly new) owner PE, charging one activation each.
func (e *eventEngine) resumeGate() {
	ranks := e.store()
	e.bootstrap(func(r int) bool {
		er := &ranks[r]
		er.mu.Lock()
		parked := er.lbKont != nil
		er.mu.Unlock()
		return parked
	}, e.dispatchResume)
}

// dispatchResume runs rank r's gate continuation under its lock.
func (e *eventEngine) dispatchResume(r int) {
	er := &e.store()[r]
	er.mu.Lock()
	defer er.mu.Unlock()
	k := er.lbKont
	if k == nil {
		return
	}
	er.lbKont = nil
	er.seq++
	p := e.peOf(r)
	e.job.m.PE(p).Clock.Advance(e.dispatchNs(p))
	er.tramp.Schedule(k)
	er.tramp.Drain()
}

// ---------------------------------------------------------------
// Completion

// finish retires rank r: its slot's buffers, continuation, and
// program state are released immediately, and its directory entry
// joins the owning PE's batched deregistration — so a completed
// million-rank job walks the Machine back to its idle footprint.
// Called with er.mu held (from within the rank's final activation).
func (e *eventEngine) finish(r int) {
	er := &e.store()[r]
	er.done = true
	er.mbox, er.head = nil, 0
	er.kont, er.hasWait = nil, false
	er.lbKont = nil
	er.pc.Local = nil
	er.sendSeq, er.recvSeq, er.held = nil, nil, nil
	if e.sharded {
		// Peers may still Forward stragglers through this worker's
		// directory, so entries are never deregistered and the store
		// is never released; the process exit reclaims both. remaining
		// counts local ranks only — the shard layer's termination
		// barrier combines the per-worker Done() signals.
		e.remaining.Add(-1)
		return
	}
	p := e.peOf(r)
	e.deregMu.Lock()
	e.pendDereg[p] = append(e.pendDereg[p], e.idOf(r))
	var flush []comm.EntityID
	if len(e.pendDereg[p]) >= deregBatchSize {
		flush = e.pendDereg[p]
		e.pendDereg[p] = make([]comm.EntityID, 0, deregBatchSize)
	}
	e.deregMu.Unlock()
	if flush != nil {
		e.job.m.Network().DeregisterBatch(flush)
	}
	if e.remaining.Add(-1) == 0 {
		e.shutdown(r)
	}
}

// shutdown runs once, on whichever PE finished the last rank: the
// atomic decrement chain orders it after every other PE's final slot
// writes. It snapshots results, flushes every deregistration batch,
// removes the location table and the shared handler range, and
// releases the store.
// caller is the rank whose final activation triggered shutdown: its
// er.mu is already held, so the snapshot loop must not re-lock it.
// Every other rank is done too, but a straggling external Rebalance
// may still hold (or be about to take) its lock, so the loop locks
// around each read.
func (e *eventEngine) shutdown(caller int) {
	ranks := e.store()
	e.vts = make([]float64, e.size)
	for r := range ranks {
		if r != caller {
			ranks[r].mu.Lock()
		}
		e.vts[r] = ranks[r].pc.vt
		if r != caller {
			ranks[r].mu.Unlock()
		}
	}
	e.deregMu.Lock()
	for p := range e.pendDereg {
		e.job.m.Network().DeregisterBatch(e.pendDereg[p])
		e.pendDereg[p] = nil
	}
	e.deregMu.Unlock()
	e.job.m.DeregisterEntityRange(e.base, e.base+comm.EntityID(e.size-1))
	e.job.m.Network().DeregisterRange(e.base)
	e.ranks.Store(nil)
}

// vtOf returns rank r's predicted time, live or snapshotted.
func (e *eventEngine) vtOf(r int) float64 {
	if ranks := e.store(); ranks != nil {
		er := &ranks[r]
		er.mu.Lock()
		defer er.mu.Unlock()
		return er.pc.vt
	}
	return e.vts[r]
}
