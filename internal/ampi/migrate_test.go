package ampi

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"migflow/internal/core"
	"migflow/internal/loadbalance"
)

// TestMigrationEquivalence is the property test: a randomized
// migration schedule — Migrate gates at random phases of a random
// workload, with a random strategy — must leave per-rank VT, program
// outputs, and network message counts bit-identical to an unmigrated
// run, in BOTH modes and across PE counts. The gate migrates at a
// quiescent point with zero in-flight messages and never touches vt,
// so the flow mechanism AND its placement history are invisible to
// the simulated program.
func TestMigrationEquivalence(t *testing.T) {
	peChoices := []int{2, 3, 4, 5, 8}
	strategies := []loadbalance.Strategy{
		loadbalance.GreedyLB{},
		loadbalance.RotateLB{},
		loadbalance.HierarchicalLB{},
	}
	totalMoved := 0
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 7))
			size := 2 + rng.Intn(30)
			phases := 3 + rng.Intn(6)
			seed := rng.Int63()
			// Random migration schedule: each phase boundary hosts a
			// gate with probability 1/3.
			gates := map[int]loadbalance.Strategy{}
			for p := 0; p < phases; p++ {
				if rng.Intn(3) == 0 {
					gates[p] = strategies[rng.Intn(len(strategies))]
				}
			}
			if len(gates) == 0 {
				gates[rng.Intn(phases)] = strategies[rng.Intn(len(strategies))]
			}
			opts := Options{
				TreeArity:      1 + rng.Intn(4),
				MsgOverheadNs:  float64(rng.Intn(3)) * 175,
				BlockPlacement: rng.Intn(2) == 0,
				StackSize:      32 << 10,
			}
			type result struct {
				vts, out []float64
				sent     uint64
				moved    int
			}
			run := func(mode string, pes int, gates map[int]loadbalance.Strategy) result {
				m := newMachine(t, pes, nil)
				sink := make([]float64, size)
				o := opts
				o.Mode = mode
				job, err := NewProgram(m, size, o, buildMix(seed, size, phases, sink, gates))
				if err != nil {
					t.Fatalf("NewProgram(%s): %v", mode, err)
				}
				job.Run()
				if !job.Done() {
					t.Fatalf("%s/%dPE: job did not complete (size %d, %d gates)", mode, pes, size, len(gates))
				}
				vts := make([]float64, size)
				for r := range vts {
					vts[r] = job.VT(r)
				}
				sent := m.Network().Snapshot().Sent
				return result{vts: vts, out: sink, sent: sent, moved: job.LBMoved()}
			}
			ref := run(ModeULT, peChoices[rng.Intn(len(peChoices))], nil)
			for _, other := range []result{
				run(ModeULT, peChoices[rng.Intn(len(peChoices))], gates),
				run(ModeEvent, peChoices[rng.Intn(len(peChoices))], gates),
				run(ModeEvent, peChoices[rng.Intn(len(peChoices))], gates),
			} {
				totalMoved += other.moved
				if other.sent != ref.sent {
					t.Fatalf("message counts diverged: %d vs %d (size %d, gates %v)", other.sent, ref.sent, size, gates)
				}
				for r := 0; r < size; r++ {
					if math.Float64bits(other.vts[r]) != math.Float64bits(ref.vts[r]) {
						t.Fatalf("rank %d VT diverged after migration: %v vs %v", r, other.vts[r], ref.vts[r])
					}
					if math.Float64bits(other.out[r]) != math.Float64bits(ref.out[r]) {
						t.Fatalf("rank %d output diverged after migration: %v vs %v", r, other.out[r], ref.out[r])
					}
				}
			}
		})
	}
	if totalMoved == 0 {
		t.Fatal("no trial moved a single rank — the property was never exercised")
	}
}

// TestEventGateMovesRecords: a skewed event-mode Jacobi with one
// Migrate gate actually moves ranks, moves them as small records
// (hundreds of bytes, not stack images), keeps the directory
// consistent, and leaves predicted time bit-identical to the
// unmigrated run.
func TestEventGateMovesRecords(t *testing.T) {
	base := JacobiConfig{
		Ranks: 256, Iters: 8, PEs: 4,
		Mode:           ModeEvent,
		WorkSkew:       4,
		BlockPlacement: true,
	}
	ref, err := RunJacobi(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.MigrateAt = 4
	m, job, err := NewJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job.Run()
	if !job.Done() {
		t.Fatal("migrated run did not complete")
	}
	moved := job.LBMoved()
	if moved == 0 {
		t.Fatal("skewed blocks + greedy gate moved nothing")
	}
	count, bytes := m.MigrationStats()
	if count != uint64(moved) {
		t.Fatalf("MigrationStats count %d, want %d", count, moved)
	}
	per := float64(bytes) / float64(count)
	if per > 512 {
		t.Fatalf("event record averaged %.0f B — records must not carry stacks or pages", per)
	}
	if got := job.PredictedNs(); math.Float64bits(got) != math.Float64bits(ref.PredictedNs) {
		t.Fatalf("migration changed predicted time: %v vs %v", got, ref.PredictedNs)
	}
	// The directory agrees with the engine about every rank's home.
	for r := 0; r < cfg.Ranks; r++ {
		id := job.ev.idOf(r)
		if pe, err := m.Network().Locate(id); err == nil {
			if pe != job.PEOf(r) {
				t.Fatalf("rank %d: directory says PE %d, engine says %d", r, pe, job.PEOf(r))
			}
		}
	}
}

// TestEventExternalRebalance drives the runtime-initiated path: park
// every event rank at a gate via RunUntilQuiescent, rotate all of
// them externally with Job.Rebalance, then let the gate's own step
// run and the program finish. Exercises eventRecord's PUP round trip,
// MoveRangeBatch, owner-word flips, and post-move resumption on the
// new PEs.
func TestEventExternalRebalance(t *testing.T) {
	cfg := JacobiConfig{Ranks: 64, Iters: 6, PEs: 4, Mode: ModeEvent, MigrateAt: 3}
	m, job, err := NewJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	m.RunUntilQuiescent()
	if !job.gateReady() {
		t.Fatal("ranks did not park at the gate")
	}
	before := make([]int, cfg.Ranks)
	for r := range before {
		before[r] = job.PEOf(r)
	}
	moved, err := job.Rebalance(loadbalance.RotateLB{})
	if err != nil {
		t.Fatalf("external Rebalance: %v", err)
	}
	if moved != cfg.Ranks {
		t.Fatalf("rotate moved %d of %d ranks", moved, cfg.Ranks)
	}
	if got := m.Network().RangeEpoch(job.ev.base); got != 1 {
		t.Fatalf("range epoch %d after one batch, want 1", got)
	}
	for r := range before {
		want := (before[r] + 1) % cfg.PEs
		if got := job.PEOf(r); got != want {
			t.Fatalf("rank %d on PE %d after rotate, want %d", r, got, want)
		}
		if pe, err := m.Network().Locate(job.ev.idOf(r)); err != nil || pe != want {
			t.Fatalf("rank %d directory: (%d, %v), want %d", r, pe, err, want)
		}
	}
	// The gate is still armed; service it and finish the program.
	job.serviceGate()
	for {
		m.RunUntilQuiescent()
		if !job.gateReady() {
			break
		}
		job.serviceGate()
	}
	if !job.Done() {
		t.Fatal("job did not complete after external rebalance")
	}
}

// TestEventMigrateRaceStress is the -race stress: 10k event ranks
// run a Jacobi ring in parallel while an outside goroutine keeps
// rotating every rank between PEs — deliveries chase moved ranks
// through Endpoint.Forward, the owner words and the range table churn
// under load, and the job must still complete. (VT equality is NOT
// asserted here: in-flight forwarding can reorder same-source
// messages, which gate-quiescent migration — the property test above
// — never can.)
func TestEventMigrateRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := JacobiConfig{Ranks: 10_000, Iters: 10, PEs: 4, Mode: ModeEvent}
	_, job, err := NewJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are expected near completion (ranks finish and
			// tombstone mid-plan); the property under test is safety,
			// not that every rotation lands.
			_, _ = job.Rebalance(loadbalance.RotateLB{})
		}
	}()
	job.RunParallel()
	close(stop)
	wg.Wait()
	if !job.Done() {
		t.Fatal("stressed job did not complete")
	}
}

// TestEventRecordRoundTrip pushes one rank's record through
// Extract/Install directly and checks the wire image is both
// faithful and small — the ~180 B the headline benchmark banks on.
func TestEventRecordRoundTrip(t *testing.T) {
	m := newMachine(t, 2, nil)
	// A program that parks rank 1 in a Recv that never completes
	// while holding buffered state: rank 0 sends two unmatched-tag
	// messages first, then everyone waits at a gate.
	prog := Seq(
		Do(func(pc *PC) {
			pc.Local = &mixState{x: 1.5}
			if pc.Rank() == 0 {
				pc.Send(1, 7, []byte("abcdefgh"))
				pc.Send(1, 7, []byte("ijklmnop"))
			}
			pc.Work(100 * float64(pc.Rank()+1))
		}),
		Migrate(loadbalance.RotateLB{}),
		Call(func(pc *PC) Proc {
			if pc.Rank() != 1 {
				return Do(func(*PC) {})
			}
			return Seq(
				Recv(0, 7, nil),
				Recv(0, 7, nil),
			)
		}),
	)
	job, err := NewProgram(m, 2, Options{Mode: ModeEvent}, prog)
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	m.RunUntilQuiescent()
	if !job.gateReady() {
		t.Fatal("ranks did not reach the gate")
	}
	// Rank 1 sits at the gate with two buffered messages. Move it by
	// hand through the record path and compare state across the trip.
	e := job.ev
	er := &e.store()[1]
	er.mu.Lock()
	vtBefore, busyBefore, pending := er.pc.vt, er.busy, len(er.mbox)-er.head
	er.mu.Unlock()
	if pending != 2 {
		t.Fatalf("rank 1 buffered %d messages, want 2", pending)
	}
	moves := []core.Move{{R: eventRecord{e, 1}, Src: job.PEOf(1), Dest: (job.PEOf(1) + 1) % 2}}
	moved, err := m.MigrateMany(moves)
	if err != nil || moved != 1 {
		t.Fatalf("MigrateMany: (%d, %v)", moved, err)
	}
	_, bytes := m.MigrationStats()
	if bytes == 0 || bytes > 512 {
		t.Fatalf("record image = %d B, want (0, 512]", bytes)
	}
	er.mu.Lock()
	defer er.mu.Unlock()
	if math.Float64bits(er.pc.vt) != math.Float64bits(vtBefore) {
		t.Fatalf("vt changed across round trip: %v vs %v", er.pc.vt, vtBefore)
	}
	if er.busy != busyBefore {
		t.Fatalf("busy changed across round trip: %v vs %v", er.busy, busyBefore)
	}
	if got := len(er.mbox) - er.head; got != 2 {
		t.Fatalf("buffered messages after round trip: %d, want 2", got)
	}
	if string(er.mbox[er.head].Data) != "abcdefgh" || string(er.mbox[er.head+1].Data) != "ijklmnop" {
		t.Fatalf("mbox payloads reordered or corrupted: %q, %q", er.mbox[er.head].Data, er.mbox[er.head+1].Data)
	}
	if er.mbox[er.head].From != e.idOf(0) {
		t.Fatalf("mbox sender lost: %v", er.mbox[er.head].From)
	}
}
