package ampi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestTreeFamilyShape checks the k-ary tree is a well-formed spanning
// tree for many (size, arity, root) combinations: every non-root has
// exactly one parent, parent/child views agree, and the tree is
// connected.
func TestTreeFamilyShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		for _, k := range []int{1, 2, 3, 4, 8} {
			for _, root := range []int{0, 1, n - 1} {
				if root < 0 || root >= n {
					continue
				}
				j := &Job{opts: Options{TreeArity: k}, ranks: make([]*Rank, n)}
				for i := range j.ranks {
					j.ranks[i] = &Rank{job: j, rank: i}
				}
				parents := make(map[int]int)
				for i := 0; i < n; i++ {
					p, children := j.ranks[i].family(root)
					if i == root && p != -1 {
						t.Fatalf("n=%d k=%d root=%d: root has parent %d", n, k, root, p)
					}
					if i != root && (p < 0 || p >= n) {
						t.Fatalf("n=%d k=%d root=%d: rank %d parent %d out of range", n, k, root, i, p)
					}
					if len(children) > k {
						t.Fatalf("n=%d k=%d: rank %d has %d children", n, k, i, len(children))
					}
					for _, c := range children {
						if old, dup := parents[c]; dup {
							t.Fatalf("n=%d k=%d root=%d: rank %d has parents %d and %d", n, k, root, c, old, i)
						}
						parents[c] = i
					}
				}
				if len(parents) != n-1 {
					t.Fatalf("n=%d k=%d root=%d: %d edges, want %d", n, k, root, len(parents), n-1)
				}
				for c, p := range parents {
					gotP, _ := j.ranks[c].family(root)
					if gotP != p {
						t.Fatalf("n=%d k=%d root=%d: rank %d sees parent %d, parent list says %d", n, k, root, c, gotP, p)
					}
					// Walk to the root: bounded by n steps (no cycles).
					cur, steps := c, 0
					for cur != root {
						next, ok := parents[cur]
						if !ok || steps > n {
							t.Fatalf("n=%d k=%d root=%d: rank %d not connected to root", n, k, root, c)
						}
						cur, steps = next, steps+1
					}
				}
			}
		}
	}
}

// TestTreeBarrierArities runs a phased-counter barrier check across
// tree arities, including the degenerate chain (k=1).
func TestTreeBarrierArities(t *testing.T) {
	for _, arity := range []int{1, 2, 3, 8} {
		arity := arity
		t.Run(fmt.Sprintf("k%d", arity), func(t *testing.T) {
			m := newMachine(t, 3, nil)
			const ranks, rounds = 9, 4
			var mu sync.Mutex
			phase := make([]int, ranks)
			j, err := NewJob(m, ranks, Options{Collectives: CollTree, TreeArity: arity}, func(r *Rank) {
				for round := 0; round < rounds; round++ {
					mu.Lock()
					phase[r.Rank()] = round
					mu.Unlock()
					if err := r.Barrier(); err != nil {
						t.Errorf("rank %d: %v", r.Rank(), err)
						return
					}
					// After the barrier no rank may still be in an
					// earlier round.
					mu.Lock()
					for rk, ph := range phase {
						if ph < round {
							t.Errorf("arity %d round %d: rank %d still at %d", arity, round, rk, ph)
						}
					}
					mu.Unlock()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			j.Run()
			if !j.Done() {
				t.Fatal("job deadlocked")
			}
		})
	}
}

// TestFlatVsTreeResultsAgree runs the full collective set under both
// algorithms — including a non-zero root — and demands identical
// results.
func TestFlatVsTreeResultsAgree(t *testing.T) {
	type outcome struct {
		allred float64
		red    float64
		bcast  []byte
		gather [][]byte
	}
	run := func(algo CollAlgo) []outcome {
		m := newMachine(t, 4, nil)
		const ranks, root = 10, 3
		out := make([]outcome, ranks)
		var mu sync.Mutex
		j, err := NewJob(m, ranks, Options{Collectives: algo, TreeArity: 3}, func(r *Rank) {
			ar, err := r.Allreduce("sum", float64(r.Rank()+1))
			if err != nil {
				t.Errorf("Allreduce: %v", err)
				return
			}
			rd, err := r.Reduce(root, "max", float64(r.Rank()*2))
			if err != nil {
				t.Errorf("Reduce: %v", err)
				return
			}
			var seed []byte
			if r.Rank() == root {
				seed = []byte("tree-vs-flat")
			}
			bc, err := r.Bcast(root, seed)
			if err != nil {
				t.Errorf("Bcast: %v", err)
				return
			}
			ga, err := r.Gather(root, []byte{byte(r.Rank()), byte(r.Rank() * 3)})
			if err != nil {
				t.Errorf("Gather: %v", err)
				return
			}
			mu.Lock()
			out[r.Rank()] = outcome{allred: ar, red: rd, bcast: bc, gather: ga}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Run()
		if !j.Done() {
			t.Fatalf("algo %d: job deadlocked", algo)
		}
		return out
	}
	tree, flat := run(CollTree), run(CollFlat)
	for rk := range tree {
		if tree[rk].allred != flat[rk].allred || tree[rk].allred != 55 {
			t.Errorf("rank %d allreduce: tree %g flat %g want 55", rk, tree[rk].allred, flat[rk].allred)
		}
		if tree[rk].red != flat[rk].red {
			t.Errorf("rank %d reduce: tree %g flat %g", rk, tree[rk].red, flat[rk].red)
		}
		if !bytes.Equal(tree[rk].bcast, flat[rk].bcast) {
			t.Errorf("rank %d bcast: tree %q flat %q", rk, tree[rk].bcast, flat[rk].bcast)
		}
		if (rk == 3) != (tree[rk].gather != nil) {
			t.Errorf("rank %d gather presence wrong", rk)
		}
		for i := range tree[rk].gather {
			if !bytes.Equal(tree[rk].gather[i], flat[rk].gather[i]) {
				t.Errorf("rank %d gather[%d]: tree %v flat %v", rk, i, tree[rk].gather[i], flat[rk].gather[i])
			}
		}
	}
}

// TestTreeBackToBackReduce pins the robustness the tree buys: with
// per-edge source-matched messages, consecutive Reduce epochs cannot
// steal each other's contributions even though no release phase
// separates them. (The flat AnySource algorithm cannot make this
// guarantee — the reason it is not the default.)
func TestTreeBackToBackReduce(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks, epochs = 6, 5
	var mu sync.Mutex
	got := make([]float64, epochs)
	j, err := NewJob(m, ranks, Options{Collectives: CollTree, TreeArity: 2}, func(r *Rank) {
		for e := 0; e < epochs; e++ {
			v, err := r.Reduce(0, "sum", float64(r.Rank())+float64(e*100))
			if err != nil {
				t.Errorf("epoch %d: %v", e, err)
				return
			}
			if r.Rank() == 0 {
				mu.Lock()
				got[e] = v
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	for e := 0; e < epochs; e++ {
		want := float64(0+1+2+3+4+5) + float64(e*100*ranks)
		if got[e] != want {
			t.Errorf("epoch %d sum = %g, want %g", e, got[e], want)
		}
	}
}

// TestUnknownReductionOp is the negative test for the shared combiner:
// every reduction entry point must reject an unknown op.
func TestUnknownReductionOp(t *testing.T) {
	m := newMachine(t, 1, nil)
	var allredErr, redErr error
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 0 {
			_, allredErr = r.Allreduce("median", 1)
			_, redErr = r.Reduce(0, "avg", 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if allredErr == nil {
		t.Error("Allreduce accepted unknown op")
	}
	if redErr == nil {
		t.Error("Reduce accepted unknown op")
	}
}

func TestJobOptionValidation(t *testing.T) {
	m := newMachine(t, 1, nil)
	if _, err := NewJob(m, 1, Options{TreeArity: -1}, func(*Rank) {}); err == nil {
		t.Error("negative TreeArity accepted")
	}
	if _, err := NewJob(m, 1, Options{Collectives: CollAlgo(99)}, func(*Rank) {}); err == nil {
		t.Error("unknown collective algorithm accepted")
	}
}

// TestFlatRootSerializes is the virtual-time A/B the trees exist for:
// with a per-message software overhead, the flat barrier's root
// consumes P-1 messages serially — O(P) on its clock — while the tree
// charges O(k·log_k P) per rank. The tree must finish the same
// barriers in substantially less virtual time.
func TestFlatRootSerializes(t *testing.T) {
	const ranks, rounds, ovh = 48, 3, 8000.0
	elapsed := func(algo CollAlgo) float64 {
		m := newMachine(t, 4, nil)
		j, err := NewJob(m, ranks, Options{Collectives: algo, MsgOverheadNs: ovh}, func(r *Rank) {
			for i := 0; i < rounds; i++ {
				if err := r.Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Run()
		if !j.Done() {
			t.Fatal("deadlock")
		}
		return m.MaxTime()
	}
	flat, tree := elapsed(CollFlat), elapsed(CollTree)
	if !(tree < flat) {
		t.Errorf("tree barrier not faster in virtual time: tree %g vs flat %g", tree, flat)
	}
	// The root's serialized receive burden alone is (P-1)·ovh per
	// barrier under flat; the tree's whole critical path is a few
	// tree levels. Demand a clear win, not a rounding error.
	if tree > 0.7*flat {
		t.Errorf("tree win too small: tree %g vs flat %g", tree, flat)
	}
}

// TestGatherUnpackHostile feeds malformed subtree packets to the
// parser.
func TestGatherUnpackHostile(t *testing.T) {
	if _, err := unpackGather([]byte{1, 2, 3}, 4); err == nil {
		t.Error("truncated header accepted")
	}
	bad := packGather([]gatherEntry{{rank: 9, data: []byte("x")}})
	if _, err := unpackGather(bad, 4); err == nil {
		t.Error("out-of-range rank accepted")
	}
	lie := packGather([]gatherEntry{{rank: 1, data: []byte("abc")}})
	lie = lie[:9] // header claims 3 bytes, only 1 present
	if _, err := unpackGather(lie, 4); err == nil {
		t.Error("over-long length accepted")
	}
	good := packGather([]gatherEntry{{rank: 0, data: nil}, {rank: 2, data: []byte("hi")}})
	entries, err := unpackGather(good, 4)
	if err != nil || len(entries) != 2 || entries[1].rank != 2 || string(entries[1].data) != "hi" {
		t.Errorf("round trip failed: %v %v", entries, err)
	}
}
