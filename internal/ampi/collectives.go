package ampi

import (
	"encoding/binary"
	"fmt"
)

// Additional internal collective tags (continuing the block in
// ampi.go; user tags are ≥ 0).
const (
	tagBcast = -200 - iota
	tagReduceRoot
	tagGather
	tagScatter
	tagAlltoall
)

// Bcast broadcasts root's data to every rank and returns the received
// copy (root returns its own data), over the job's collective
// topology (spanning tree by default; CollFlat selects the paper-era
// flat loop at the root).
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Bcast root %d of %d", root, len(r.job.ranks))
	}
	if r.job.opts.Collectives != CollFlat {
		return r.bcastTree(root, data)
	}
	if r.rank == root {
		for i := range r.job.ranks {
			if i == root {
				continue
			}
			if err := r.send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m := r.recv(root, tagBcast)
	return m.Data, nil
}

// Reduce combines every rank's value at root with op ("sum", "max",
// "min"); only root receives the result (other ranks get 0).
func (r *Rank) Reduce(root int, op string, v float64) (float64, error) {
	combine, err := combiner(op)
	if err != nil {
		return 0, err
	}
	if root < 0 || root >= len(r.job.ranks) {
		return 0, fmt.Errorf("ampi: Reduce root %d of %d", root, len(r.job.ranks))
	}
	if r.job.opts.Collectives != CollFlat {
		return r.reduceTree(root, combine, v)
	}
	if r.rank != root {
		return 0, r.send(root, tagReduceRoot, f64bytes(v))
	}
	acc := v
	for i := 1; i < len(r.job.ranks); i++ {
		m := r.recv(AnySource, tagReduceRoot)
		acc = combine(acc, f64(m.Data))
	}
	return acc, nil
}

// Gather collects every rank's data at root, indexed by rank; only
// root receives the slice (others get nil).
func (r *Rank) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Gather root %d of %d", root, len(r.job.ranks))
	}
	if r.job.opts.Collectives != CollFlat {
		return r.gatherTree(root, data)
	}
	if r.rank != root {
		return nil, r.send(root, tagGather, data)
	}
	out := make([][]byte, len(r.job.ranks))
	out[root] = data
	for i := 1; i < len(r.job.ranks); i++ {
		m := r.recv(AnySource, tagGather)
		out[r.senderRank(m)] = m.Data
	}
	return out, nil
}

// Scatter distributes chunks[i] from root to rank i and returns the
// caller's chunk. Root must pass len(chunks) == Size(); other ranks
// pass nil.
func (r *Rank) Scatter(root int, chunks [][]byte) ([]byte, error) {
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Scatter root %d of %d", root, len(r.job.ranks))
	}
	if r.rank == root {
		if len(chunks) != len(r.job.ranks) {
			return nil, fmt.Errorf("ampi: Scatter: %d chunks for %d ranks", len(chunks), len(r.job.ranks))
		}
		for i, c := range chunks {
			if i == root {
				continue
			}
			if err := r.send(i, tagScatter, c); err != nil {
				return nil, err
			}
		}
		return chunks[root], nil
	}
	m := r.recv(root, tagScatter)
	return m.Data, nil
}

// Alltoall exchanges chunks[i] with every rank i and returns the
// received chunks indexed by sender. Every rank must pass Size()
// chunks.
func (r *Rank) Alltoall(chunks [][]byte) ([][]byte, error) {
	n := len(r.job.ranks)
	if len(chunks) != n {
		return nil, fmt.Errorf("ampi: Alltoall: %d chunks for %d ranks", len(chunks), n)
	}
	out := make([][]byte, n)
	out[r.rank] = chunks[r.rank]
	for i := 0; i < n; i++ {
		if i == r.rank {
			continue
		}
		// Tag the payload with the sender rank (AnySource arrival
		// order is arbitrary).
		buf := make([]byte, 4+len(chunks[i]))
		binary.LittleEndian.PutUint32(buf, uint32(r.rank))
		copy(buf[4:], chunks[i])
		if err := r.send(i, tagAlltoall, buf); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n-1; i++ {
		m := r.recv(AnySource, tagAlltoall)
		if len(m.Data) < 4 {
			return nil, fmt.Errorf("ampi: Alltoall: runt message")
		}
		from := int(binary.LittleEndian.Uint32(m.Data))
		if from < 0 || from >= n {
			return nil, fmt.Errorf("ampi: Alltoall: bad sender %d", from)
		}
		out[from] = m.Data[4:]
	}
	return out, nil
}

// Sendrecv performs a simultaneous send and receive — the halo-
// exchange primitive. It is deadlock-free for rings and pairs because
// sends are eager-buffered.
func (r *Rank) Sendrecv(dest, sendTag int, data []byte, src, recvTag int) ([]byte, int, error) {
	if err := r.Send(dest, sendTag, data); err != nil {
		return nil, 0, err
	}
	return r.Recv(src, recvTag)
}

func combiner(op string) (func(a, b float64) float64, error) {
	switch op {
	case "sum":
		return func(a, b float64) float64 { return a + b }, nil
	case "max":
		return func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}, nil
	case "min":
		return func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		}, nil
	}
	return nil, fmt.Errorf("ampi: unknown reduction op %q", op)
}
