package ampi

import (
	"encoding/binary"
	"fmt"
)

// Spanning-tree collectives (CollTree, the default). Every collective
// runs over a k-ary tree of ranks rooted at the operation's root:
// partial values combine up the tree and results broadcast down, so
// no rank ever serializes more than k messages per phase — the
// production Charm++/AMPI shape, versus the paper-era flat algorithms
// (CollFlat) that funnel O(P) messages through one inbox.
//
// Beyond latency, the tree algorithms are *stronger* than the flat
// ones: every tree edge is a specific (parent, child) pair matched by
// source rank, and in-order delivery per (sender, destination) pair
// means back-to-back collectives of the same kind cannot steal each
// other's contributions. The flat Reduce/Gather match AnySource, so a
// fast rank's epoch-N+1 message can be consumed into the root's
// epoch-N combine; they are kept, unchanged, for A/B comparison.

// treeFamily returns rank's parent (-1 for the root) and children in
// the k-ary collective tree of n ranks rooted at root. Ranks are
// renumbered relative to root, so any root yields the same shape. It
// is placement- and mode-independent — both the thread collectives
// below and the continuation-program collectives (program.go) build
// their trees here.
func treeFamily(rank, n, k, root int) (parent int, children []int) {
	rel := (rank - root + n) % n
	parent = -1
	if rel != 0 {
		parent = ((rel-1)/k + root) % n
	}
	for i := 1; i <= k; i++ {
		c := k*rel + i
		if c >= n {
			break
		}
		children = append(children, (c+root)%n)
	}
	return parent, children
}

func (r *Rank) treeFamily(root int) (parent int, children []int) {
	return treeFamily(r.rank, len(r.job.ranks), r.job.opts.TreeArity, root)
}

// barrierTree: arrivals combine up the tree, the release broadcasts
// down. Depth is ceil(log_k P), and every rank handles at most k+1
// messages.
func (r *Rank) barrierTree() error {
	parent, children := r.treeFamily(0)
	for _, c := range children {
		r.recv(c, tagBarrier)
	}
	if parent >= 0 {
		if err := r.send(parent, tagBarrier, nil); err != nil {
			return err
		}
		r.recv(parent, tagBarrierRelease)
	}
	for _, c := range children {
		if err := r.send(c, tagBarrierRelease, nil); err != nil {
			return err
		}
	}
	return nil
}

// allreduceTree combines partial values up the tree rooted at rank 0
// and broadcasts the result down the same edges.
func (r *Rank) allreduceTree(combine func(a, b float64) float64, v float64) (float64, error) {
	parent, children := r.treeFamily(0)
	acc := v
	for _, c := range children {
		m := r.recv(c, tagReduce)
		acc = combine(acc, f64(m.Data))
	}
	if parent >= 0 {
		if err := r.send(parent, tagReduce, f64bytes(acc)); err != nil {
			return 0, err
		}
		acc = f64(r.recv(parent, tagReduceResult).Data)
	}
	for _, c := range children {
		if err := r.send(c, tagReduceResult, f64bytes(acc)); err != nil {
			return 0, err
		}
	}
	return acc, nil
}

// reduceTree combines partial values up the tree; only root gets the
// result (others return 0, like the flat Reduce).
func (r *Rank) reduceTree(root int, combine func(a, b float64) float64, v float64) (float64, error) {
	parent, children := r.treeFamily(root)
	acc := v
	for _, c := range children {
		m := r.recv(c, tagReduceRoot)
		acc = combine(acc, f64(m.Data))
	}
	if parent >= 0 {
		return 0, r.send(parent, tagReduceRoot, f64bytes(acc))
	}
	return acc, nil
}

// bcastTree forwards root's data down the tree.
func (r *Rank) bcastTree(root int, data []byte) ([]byte, error) {
	parent, children := r.treeFamily(root)
	if parent >= 0 {
		data = r.recv(parent, tagBcast).Data
	}
	for _, c := range children {
		if err := r.send(c, tagBcast, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// gatherTree merges (rank, data) entries up the tree: each node packs
// its own entry with its children's subtrees and sends one message to
// its parent, so the root receives exactly its k children's packed
// subtrees instead of P-1 individual messages.
func (r *Rank) gatherTree(root int, data []byte) ([][]byte, error) {
	parent, children := r.treeFamily(root)
	entries := []gatherEntry{{rank: r.rank, data: data}}
	for _, c := range children {
		sub, err := unpackGather(r.recv(c, tagGather).Data, len(r.job.ranks))
		if err != nil {
			return nil, err
		}
		entries = append(entries, sub...)
	}
	if parent >= 0 {
		return nil, r.send(parent, tagGather, packGather(entries))
	}
	out := make([][]byte, len(r.job.ranks))
	for _, e := range entries {
		out[e.rank] = e.data
	}
	return out, nil
}

// gatherEntry is one rank's contribution riding a packed subtree
// message.
type gatherEntry struct {
	rank int
	data []byte
}

// packGather serializes entries as repeated (rank u32, len u32,
// bytes) records.
func packGather(entries []gatherEntry) []byte {
	size := 0
	for _, e := range entries {
		size += 8 + len(e.data)
	}
	buf := make([]byte, 0, size)
	var hdr [8]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(e.rank))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.data)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.data...)
	}
	return buf
}

// unpackGather parses a packed subtree, validating every rank and
// length against the message bounds.
func unpackGather(buf []byte, nranks int) ([]gatherEntry, error) {
	var out []gatherEntry
	for len(buf) > 0 {
		if len(buf) < 8 {
			return nil, fmt.Errorf("ampi: Gather: truncated subtree header")
		}
		rank := int(binary.LittleEndian.Uint32(buf[0:]))
		n := int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		if rank < 0 || rank >= nranks {
			return nil, fmt.Errorf("ampi: Gather: bad rank %d in subtree", rank)
		}
		if n < 0 || n > len(buf) {
			return nil, fmt.Errorf("ampi: Gather: entry length %d exceeds message", n)
		}
		var data []byte
		if n > 0 {
			data = buf[:n]
		}
		out = append(out, gatherEntry{rank: rank, data: data})
		buf = buf[n:]
	}
	return out, nil
}
