package ampi

import (
	"encoding/binary"
	"fmt"
)

// Spanning-tree collectives (CollTree, the default). Every collective
// runs over a k-ary tree of ranks rooted at the operation's root:
// partial values combine up the tree and results broadcast down, so
// no rank ever serializes more than k messages per phase — the
// production Charm++/AMPI shape, versus the paper-era flat algorithms
// (CollFlat) that funnel O(P) messages through one inbox.
//
// Beyond latency, the tree algorithms are *stronger* than the flat
// ones: every tree edge is a specific (parent, child) pair matched by
// source rank, and in-order delivery per (sender, destination) pair
// means back-to-back collectives of the same kind cannot steal each
// other's contributions. The flat Reduce/Gather match AnySource, so a
// fast rank's epoch-N+1 message can be consumed into the root's
// epoch-N combine; they are kept, unchanged, for A/B comparison.
//
// CollTopoTree replaces the rank-order shape with a topology-aware
// one (topoFamily): tree edges follow the torus/PE-group hierarchy,
// so when Options.Topo charges per-hop costs, the same reduction
// crosses fewer hops at identical combine order per node.

// treeFamily returns rank's parent (-1 for the root) and children in
// the k-ary collective tree of n ranks rooted at root. Ranks are
// renumbered relative to root, so any root yields the same shape. It
// is placement- and mode-independent — both the thread collectives
// below and the continuation-program collectives (program.go) build
// their trees here.
func treeFamily(rank, n, k, root int) (parent int, children []int) {
	rel := (rank - root + n) % n
	parent = -1
	if rel != 0 {
		parent = ((rel-1)/k + root) % n
	}
	for i := 1; i <= k; i++ {
		c := k*rel + i
		if c >= n {
			break
		}
		children = append(children, (c+root)%n)
	}
	return parent, children
}

// topoMap is the rank↔(node, index) arithmetic topoFamily runs on:
// ranks in [0, n) map onto eff logical nodes with the same placement
// function the job uses for PEs (contiguous blocks or round-robin),
// so co-resident ranks share a node.
type topoMap struct {
	n, eff, k int
	block     bool
}

// node returns the logical node holding rank x.
func (tm topoMap) node(x int) int { return placePE(x, tm.n, tm.eff, tm.block) }

// rankAt returns node m's i-th resident rank (i < count(m)).
func (tm topoMap) rankAt(m, i int) int {
	if tm.block {
		return (m*tm.n+tm.eff-1)/tm.eff + i
	}
	return m + i*tm.eff
}

// idx returns rank x's index within its node.
func (tm topoMap) idx(x int) int {
	if tm.block {
		return x - tm.rankAt(tm.node(x), 0)
	}
	return x / tm.eff
}

// count returns how many ranks live on node m (≥ 1 for eff ≤ n).
func (tm topoMap) count(m int) int {
	if tm.block {
		lo := (m*tm.n + tm.eff - 1) / tm.eff
		hi := ((m+1)*tm.n + tm.eff - 1) / tm.eff
		if hi > tm.n {
			hi = tm.n
		}
		return hi - lo
	}
	return 1 + (tm.n-1-m)/tm.eff
}

// topoFamily returns rank's parent and children in the topology-aware
// spanning tree of n ranks rooted at root (CollTopoTree). The tree
// follows the torus/PE-group hierarchy of t instead of rank order:
//
//   - ranks on one logical node form a k-ary subtree under the node's
//     first resident (its leader), so those edges cross zero hops;
//   - node leaders within one GroupSize-node group form a k-ary
//     subtree under the group's lead node, so those edges stay short;
//   - group lead nodes form a k-ary tree across groups — only these
//     few edges cross long torus distances.
//
// Like treeFamily, ranks are renumbered relative to root and the
// result depends only on (rank, n, k, root, t, block) — never on
// current placement — so collectives built on it stay deterministic
// and migration-invariant.
func topoFamily(rank, n, k, root int, t Topology, block bool) (parent int, children []int) {
	eff, gsize := t.Nodes, t.GroupSize
	if eff > n {
		eff = n
	}
	if eff <= 0 || gsize <= 0 {
		return treeFamily(rank, n, k, root)
	}
	tm := topoMap{n: n, eff: eff, k: k, block: block}
	abs := func(x int) int { return (x + root) % n }
	rel := (rank - root + n) % n

	m := tm.node(rel)
	i := tm.idx(rel)
	g := m / gsize
	lead := g * gsize // the group's lead node

	parent = -1
	switch {
	case i != 0: // within-node subtree
		parent = abs(tm.rankAt(m, (i-1)/k))
	case m != lead: // node leader under the group's lead node
		parent = abs(tm.rankAt(lead+(m-lead-1)/k, 0))
	case g != 0: // group leader under its parent group's lead node
		parent = abs(tm.rankAt(((g-1)/k)*gsize, 0))
	}

	for c := k*i + 1; c <= k*i+k; c++ {
		if c >= tm.count(m) {
			break
		}
		children = append(children, abs(tm.rankAt(m, c)))
	}
	if i == 0 {
		groupNodes := gsize
		if lead+groupNodes > eff {
			groupNodes = eff - lead
		}
		j := m - lead
		for c := k*j + 1; c <= k*j+k; c++ {
			if c >= groupNodes {
				break
			}
			children = append(children, abs(tm.rankAt(lead+c, 0)))
		}
		if m == lead {
			ngroups := (eff + gsize - 1) / gsize
			for c := k*g + 1; c <= k*g+k; c++ {
				if c >= ngroups {
					break
				}
				children = append(children, abs(tm.rankAt(c*gsize, 0)))
			}
		}
	}
	return parent, children
}

// collFamily returns rank's parent and children in the job's
// collective topology rooted at root: the rank-order k-ary tree
// (CollTree), the topology-aware tree (CollTopoTree), or the
// one-level star (CollFlat; children in rank order, so star
// collectives built on it are deterministic, unlike the blocking flat
// loops' AnySource matching).
func collFamily(rank, n int, opts *Options, root int) (parent int, children []int) {
	switch opts.Collectives {
	case CollFlat:
		if rank == root {
			children = make([]int, 0, n-1)
			for i := 0; i < n; i++ {
				if i != root {
					children = append(children, i)
				}
			}
			return -1, children
		}
		return root, nil
	case CollTopoTree:
		return topoFamily(rank, n, opts.TreeArity, root, opts.Topo, opts.BlockPlacement)
	default:
		return treeFamily(rank, n, opts.TreeArity, root)
	}
}

func (r *Rank) family(root int) (parent int, children []int) {
	return collFamily(r.rank, len(r.job.ranks), &r.job.opts, root)
}

// ---------------------------------------------------------------
// Collective schedules
//
// A collective, for one rank, is a fixed sequence of edge actions:
// sends to and receives from its family, in an order that encodes the
// up-combine/down-broadcast dance. The builders below emit that
// sequence once; the blocking thread collectives (runActs), the
// nonblocking thread requests (CollRequest, nonblocking.go), and both
// program backends (collWaitProc, program.go) all execute the same
// schedule — which is what makes blocking and nonblocking collectives
// bit-identical by construction: a blocking collective IS its
// nonblocking start followed immediately by its wait.

// collAct is one edge action of a collective schedule. Send payloads
// are computed at execution time (an up-phase send depends on data
// combined from earlier receives); receive handlers fold the payload
// into the rank's accumulator.
type collAct struct {
	send bool
	peer int
	tag  int
	data func() []byte      // send payload (nil = empty message)
	on   func([]byte) error // receive handler (nil = discard)
}

// barrierActs: arrivals combine up the tree, the release broadcasts
// down. Depth is ceil(log_k P), and every rank handles at most k+1
// messages.
func barrierActs(parent int, children []int) []collAct {
	var acts []collAct
	for _, c := range children {
		acts = append(acts, collAct{peer: c, tag: tagBarrier})
	}
	if parent >= 0 {
		acts = append(acts,
			collAct{send: true, peer: parent, tag: tagBarrier},
			collAct{peer: parent, tag: tagBarrierRelease})
	}
	for _, c := range children {
		acts = append(acts, collAct{send: true, peer: c, tag: tagBarrierRelease})
	}
	return acts
}

// allreduceActs combines partial values up the tree into *acc and
// broadcasts the result down the same edges.
func allreduceActs(parent int, children []int, acc *float64, combine func(a, b float64) float64) []collAct {
	var acts []collAct
	for _, c := range children {
		acts = append(acts, collAct{peer: c, tag: tagReduce, on: func(d []byte) error {
			*acc = combine(*acc, f64(d))
			return nil
		}})
	}
	if parent >= 0 {
		acts = append(acts,
			collAct{send: true, peer: parent, tag: tagReduce, data: func() []byte { return f64bytes(*acc) }},
			collAct{peer: parent, tag: tagReduceResult, on: func(d []byte) error {
				*acc = f64(d)
				return nil
			}})
	}
	for _, c := range children {
		acts = append(acts, collAct{send: true, peer: c, tag: tagReduceResult, data: func() []byte { return f64bytes(*acc) }})
	}
	return acts
}

// reduceActs combines partial values up the tree into *acc; only the
// root's *acc ends up meaningful.
func reduceActs(parent int, children []int, acc *float64, combine func(a, b float64) float64) []collAct {
	var acts []collAct
	for _, c := range children {
		acts = append(acts, collAct{peer: c, tag: tagReduceRoot, on: func(d []byte) error {
			*acc = combine(*acc, f64(d))
			return nil
		}})
	}
	if parent >= 0 {
		acts = append(acts, collAct{send: true, peer: parent, tag: tagReduceRoot, data: func() []byte { return f64bytes(*acc) }})
	}
	return acts
}

// bcastActs forwards *data (pre-set on the root) down the tree.
func bcastActs(parent int, children []int, data *[]byte) []collAct {
	var acts []collAct
	if parent >= 0 {
		acts = append(acts, collAct{peer: parent, tag: tagBcast, on: func(d []byte) error {
			*data = d
			return nil
		}})
	}
	for _, c := range children {
		acts = append(acts, collAct{send: true, peer: c, tag: tagBcast, data: func() []byte { return *data }})
	}
	return acts
}

// gatherActs merges (rank, data) entries up the tree: *entries starts
// with the rank's own contribution, children's packed subtrees append
// to it, and one packed message goes to the parent — so the root
// receives exactly its children's subtrees instead of P-1 messages.
func gatherActs(parent int, children []int, entries *[]gatherEntry, nranks int) []collAct {
	var acts []collAct
	for _, c := range children {
		acts = append(acts, collAct{peer: c, tag: tagGather, on: func(d []byte) error {
			sub, err := unpackGather(d, nranks)
			if err != nil {
				return err
			}
			*entries = append(*entries, sub...)
			return nil
		}})
	}
	if parent >= 0 {
		acts = append(acts, collAct{send: true, peer: parent, tag: tagGather, data: func() []byte { return packGather(*entries) }})
	}
	return acts
}

// runActs executes a collective schedule synchronously — the blocking
// thread collectives.
func (r *Rank) runActs(acts []collAct) error {
	for _, a := range acts {
		if a.send {
			var payload []byte
			if a.data != nil {
				payload = a.data()
			}
			if err := r.sendEdge(a.peer, a.tag, payload); err != nil {
				return err
			}
			continue
		}
		m := r.recv(a.peer, a.tag)
		if a.on != nil {
			if err := a.on(m.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------
// Blocking tree collectives: schedule + immediate execution.

func (r *Rank) barrierTree() error {
	parent, children := r.family(0)
	return r.runActs(barrierActs(parent, children))
}

// allreduceTree combines partial values up the tree rooted at rank 0
// and broadcasts the result down the same edges.
func (r *Rank) allreduceTree(combine func(a, b float64) float64, v float64) (float64, error) {
	parent, children := r.family(0)
	acc := new(float64)
	*acc = v
	if err := r.runActs(allreduceActs(parent, children, acc, combine)); err != nil {
		return 0, err
	}
	return *acc, nil
}

// reduceTree combines partial values up the tree; only root gets the
// result (others return 0, like the flat Reduce).
func (r *Rank) reduceTree(root int, combine func(a, b float64) float64, v float64) (float64, error) {
	parent, children := r.family(root)
	acc := new(float64)
	*acc = v
	if err := r.runActs(reduceActs(parent, children, acc, combine)); err != nil {
		return 0, err
	}
	if parent >= 0 {
		return 0, nil
	}
	return *acc, nil
}

// bcastTree forwards root's data down the tree.
func (r *Rank) bcastTree(root int, data []byte) ([]byte, error) {
	parent, children := r.family(root)
	buf := new([]byte)
	*buf = data
	if err := r.runActs(bcastActs(parent, children, buf)); err != nil {
		return nil, err
	}
	return *buf, nil
}

// gatherTree merges (rank, data) entries up the tree: each node packs
// its own entry with its children's subtrees and sends one message to
// its parent, so the root receives exactly its k children's packed
// subtrees instead of P-1 individual messages.
func (r *Rank) gatherTree(root int, data []byte) ([][]byte, error) {
	parent, children := r.family(root)
	entries := &[]gatherEntry{{rank: r.rank, data: data}}
	if err := r.runActs(gatherActs(parent, children, entries, len(r.job.ranks))); err != nil {
		return nil, err
	}
	if parent >= 0 {
		return nil, nil
	}
	out := make([][]byte, len(r.job.ranks))
	for _, e := range *entries {
		out[e.rank] = e.data
	}
	return out, nil
}

// gatherEntry is one rank's contribution riding a packed subtree
// message.
type gatherEntry struct {
	rank int
	data []byte
}

// packGather serializes entries as repeated (rank u32, len u32,
// bytes) records.
func packGather(entries []gatherEntry) []byte {
	size := 0
	for _, e := range entries {
		size += 8 + len(e.data)
	}
	buf := make([]byte, 0, size)
	var hdr [8]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(e.rank))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.data)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.data...)
	}
	return buf
}

// unpackGather parses a packed subtree, validating every rank and
// length against the message bounds.
func unpackGather(buf []byte, nranks int) ([]gatherEntry, error) {
	var out []gatherEntry
	for len(buf) > 0 {
		if len(buf) < 8 {
			return nil, fmt.Errorf("ampi: Gather: truncated subtree header")
		}
		rank := int(binary.LittleEndian.Uint32(buf[0:]))
		n := int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
		if rank < 0 || rank >= nranks {
			return nil, fmt.Errorf("ampi: Gather: bad rank %d in subtree", rank)
		}
		if n < 0 || n > len(buf) {
			return nil, fmt.Errorf("ampi: Gather: entry length %d exceeds message", n)
		}
		var data []byte
		if n > 0 {
			data = buf[:n]
		}
		out = append(out, gatherEntry{rank: rank, data: data})
		buf = buf[n:]
	}
	return out, nil
}
