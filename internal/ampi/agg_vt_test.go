package ampi

// The aggregation VT-invariance property: streaming aggregation —
// including MaxDelay deadline flushes and the Adaptive backpressure
// mode — is a wall-clock optimization only. Whatever envelopes the
// policy composes, every rank's virtual time must equal the
// unaggregated run bit for bit, because VT is computed per message
// (consume charges VTime + Cost(len)) and never sees envelope
// boundaries. A policy that leaked into VT would desync the sharded
// equivalence suite in ways this test catches at the source.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"migflow/internal/comm"
)

// jacobiVT runs one ULT-mode Jacobi config to completion and returns
// the per-rank VT bit patterns.
func jacobiVT(t *testing.T, cfg JacobiConfig) []uint64 {
	t.Helper()
	_, job, err := NewJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job.Run()
	if !job.Done() {
		t.Fatal("jacobi did not complete")
	}
	bits := make([]uint64, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		bits[r] = math.Float64bits(job.VT(r))
	}
	return bits
}

// TestAggregationPolicyVTInvariance is the property test across
// random policies: tiny and huge thresholds, zero and short MaxDelay
// deadlines, adaptive on and off — all must reproduce the
// unaggregated per-rank VT exactly.
func TestAggregationPolicyVTInvariance(t *testing.T) {
	base := JacobiConfig{
		Mode: ModeULT, Ranks: 24, Iters: 8, PEs: 4,
		HaloBytes: 16, WorkNs: 900, ReduceEvery: 2, BlockPlacement: true,
	}
	want := jacobiVT(t, base)

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		pol := comm.AggPolicy{
			MaxPayloads: 1 + rng.Intn(32),
			MaxBytes:    32 + rng.Intn(1<<14),
			MaxDelay:    time.Duration(rng.Intn(3)) * time.Millisecond,
			Adaptive:    rng.Intn(2) == 1,
		}
		cfg := base
		cfg.Aggregate = true
		cfg.AggPolicy = pol
		got := jacobiVT(t, cfg)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("trial %d (policy %+v): rank %d VT %v, want %v — aggregation leaked into virtual time",
					trial, pol, r, math.Float64frombits(got[r]), math.Float64frombits(want[r]))
			}
		}
	}
}
