package ampi

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
)

// benchRanks is the headline event-mode rank count; AMPI_BENCH_RANKS
// overrides it (CI smoke runs use a tiny value, `make bench-ampi`
// defaults to the full million).
func benchRanks(b *testing.B) int {
	if s := os.Getenv("AMPI_BENCH_RANKS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			b.Fatalf("bad AMPI_BENCH_RANKS %q", s)
		}
		return n
	}
	return 1_000_000
}

// measureRankFootprint builds (without running) a Jacobi job and
// returns resident bytes per rank, then drains the job so ULT
// goroutines exit before the timed runs start.
func measureRankFootprint(b *testing.B, cfg JacobiConfig) float64 {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	_, job, err := NewJacobi(cfg)
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	resident := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
	if resident < 0 {
		resident = 0
	}
	job.Run()
	return float64(resident) / float64(cfg.Ranks)
}

// BenchmarkAMPIJacobi is the rank-backend A/B plus the headline run:
// the same Jacobi job with ULT and event ranks at a size both can
// hold, then event ranks alone at AMPI_BENCH_RANKS (default one
// million — the scale where a stack per rank stops being a number and
// becomes a decision). ns/step is real wall clock per iteration;
// B/rank is the resident footprint of the built job before any
// message flows.
func BenchmarkAMPIJacobi(b *testing.B) {
	headline := benchRanks(b)
	ab := 16_384
	if headline < ab {
		ab = headline
	}
	cases := []struct {
		mode  string
		ranks int
		iters int
	}{
		{ModeULT, ab, 8},
		{ModeEvent, ab, 8},
	}
	if headline > ab {
		cases = append(cases, struct {
			mode  string
			ranks int
			iters int
		}{ModeEvent, headline, 2})
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/r%d", c.mode, c.ranks), func(b *testing.B) {
			cfg := JacobiConfig{
				Ranks: c.ranks, Iters: c.iters, PEs: 8, Mode: c.mode,
				ReduceEvery: 4, BlockPlacement: true,
			}
			if err := cfg.defaults(); err != nil {
				b.Fatal(err)
			}
			bpr := measureRankFootprint(b, cfg)
			var stepNs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunJacobi(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stepNs += res.StepWallNs
			}
			b.StopTimer()
			// Reported after the loop: ResetTimer discards metrics.
			b.ReportMetric(stepNs/float64(b.N), "ns/step")
			b.ReportMetric(float64(c.ranks), "ranks")
			b.ReportMetric(bpr, "B/rank")
		})
	}
}
