package ampi

// Hostile-input hardening for the cross-process record codec: claimed
// counts near MaxInt64 must fail the bound check cleanly instead of
// overflowing the product and attempting a huge allocation.

import (
	"testing"

	"migflow/internal/core"
	"migflow/internal/pup"
)

func newShardedEventJob(t *testing.T) *Job {
	t.Helper()
	m, err := core.NewMachine(core.Config{NumPEs: 4, LocalPELo: 0, LocalPEHi: 2})
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewProgram(m, 4, Options{Mode: ModeEvent}, Seq())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestShardRecordHostileCounts(t *testing.T) {
	e := newShardedEventJob(t).ev

	// n*16 would overflow to exactly 0 for 1<<60, slipping past a
	// multiplied bound; the division form must reject it.
	for _, n := range []int{-1, 1 << 60, 1<<63 - 1} {
		p := pup.NewGrowPacker()
		v := n
		if err := p.Int(&v); err != nil {
			t.Fatal(err)
		}
		if _, err := e.unpackSeqMap(pup.NewUnpacker(p.PackedBytes())); err == nil {
			t.Fatalf("unpackSeqMap accepted hostile count %d", n)
		}
	}
	// n*recMsgMin overflows to 0 for 1<<62 (recMsgMin = 60 = 4·15).
	for _, n := range []int{-1, 1 << 62, 1<<63 - 1} {
		p := pup.NewGrowPacker()
		v := n
		if err := p.Int(&v); err != nil {
			t.Fatal(err)
		}
		if _, err := e.unpackMsgs(pup.NewUnpacker(p.PackedBytes()), 0, "pending"); err == nil {
			t.Fatalf("unpackMsgs accepted hostile count %d", n)
		}
	}
}

func TestShardInstallRejectsGarbage(t *testing.T) {
	j := newShardedEventJob(t)
	for _, data := range [][]byte{nil, {1}, {1, 2, 3}, make([]byte, 64)} {
		if _, err := j.ShardInstall(data); err == nil {
			t.Fatalf("ShardInstall accepted %d-byte garbage record", len(data))
		}
	}
}

func TestMergeSeqMax(t *testing.T) {
	if got := mergeSeqMax(nil, nil); got != nil {
		t.Fatalf("merge of two nils = %v", got)
	}
	src := map[int]uint64{1: 5, 2: 3}
	if got := mergeSeqMax(nil, src); len(got) != 2 || got[1] != 5 {
		t.Fatalf("merge into nil = %v", got)
	}
	dst := map[int]uint64{1: 7, 3: 1}
	got := mergeSeqMax(dst, src)
	want := map[int]uint64{1: 7, 2: 3, 3: 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("merged[%d] = %d, want %d (full: %v)", k, got[k], v, got)
		}
	}
}
