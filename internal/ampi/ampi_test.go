package ampi

import (
	"fmt"
	"sync"
	"testing"

	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/migrate"
	"migflow/internal/swapglobal"
)

func newMachine(t testing.TB, pes int, layout *swapglobal.Layout) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{NumPEs: pes, Globals: layout})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJobValidation(t *testing.T) {
	m := newMachine(t, 2, nil)
	if _, err := NewJob(m, 0, Options{}, func(*Rank) {}); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	m := newMachine(t, 2, nil)
	var mu sync.Mutex
	pes := make(map[int]int)
	j, err := NewJob(m, 5, Options{}, func(r *Rank) {
		mu.Lock()
		pes[r.Rank()] = r.PE()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job not done")
	}
	for rank, pe := range pes {
		if pe != rank%2 {
			t.Errorf("rank %d on PE %d, want %d", rank, pe, rank%2)
		}
	}
	if j.Size() != 5 || j.Machine() != m {
		t.Error("accessors wrong")
	}
}

func TestSendRecv(t *testing.T) {
	m := newMachine(t, 2, nil)
	var got []byte
	var from int
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 0 {
			if err := r.Send(1, 7, []byte("halo exchange")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			data, src, err := r.Recv(0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got, from = data, src
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if string(got) != "halo exchange" || from != 0 {
		t.Errorf("got %q from %d", got, from)
	}
}

func TestRecvWildcardsAndOrdering(t *testing.T) {
	m := newMachine(t, 2, nil)
	var tags []int
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 0 {
			for _, tag := range []int{3, 1, 2} {
				if err := r.Send(1, tag, nil); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		} else {
			// Tag-selective first, then wildcards drain in order.
			_, _, _ = r.Recv(AnySource, 2)
			tags = append(tags, 2)
			for i := 0; i < 2; i++ {
				m, _, _ := r.recvTag()
				tags = append(tags, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if fmt.Sprint(tags) != "[2 3 1]" {
		t.Errorf("tags = %v", tags)
	}
}

// recvTag is a test helper: receive anything, return the tag.
func (r *Rank) recvTag() (int, int, error) {
	m := r.recv(AnySource, AnyTag)
	return m.Tag, r.senderRank(m), nil
}

func TestSendValidation(t *testing.T) {
	m := newMachine(t, 1, nil)
	var errNegTag, errBadDest error
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		errNegTag = r.Send(0, -3, nil)
		errBadDest = r.Send(99, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if errNegTag == nil {
		t.Error("negative tag accepted")
	}
	if errBadDest == nil {
		t.Error("bad destination accepted")
	}
}

func TestBarrier(t *testing.T) {
	m := newMachine(t, 3, nil)
	const ranks = 7
	var mu sync.Mutex
	phase := make([]int, ranks)
	minPhaseAtExit := ranks
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		mu.Lock()
		phase[r.Rank()] = 1
		mu.Unlock()
		if err := r.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
			return
		}
		// After the barrier, every rank must have reached phase 1.
		mu.Lock()
		min := 1
		for _, p := range phase {
			if p < min {
				min = p
			}
		}
		if min < minPhaseAtExit {
			minPhaseAtExit = min
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("barrier deadlocked")
	}
	if minPhaseAtExit != 1 {
		t.Errorf("a rank left the barrier before all entered (min phase %d)", minPhaseAtExit)
	}
}

func TestAllreduce(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 5
	sums := make([]float64, ranks)
	maxs := make([]float64, ranks)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		v := float64(r.Rank() + 1)
		s, err := r.Allreduce("sum", v)
		if err != nil {
			t.Errorf("sum: %v", err)
			return
		}
		sums[r.Rank()] = s
		mx, err := r.Allreduce("max", v)
		if err != nil {
			t.Errorf("max: %v", err)
			return
		}
		maxs[r.Rank()] = mx
		if _, err := r.Allreduce("median", v); err == nil {
			t.Error("unknown op accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	for rk := 0; rk < ranks; rk++ {
		if sums[rk] != 15 {
			t.Errorf("rank %d sum = %g, want 15", rk, sums[rk])
		}
		if maxs[rk] != 5 {
			t.Errorf("rank %d max = %g, want 5", rk, maxs[rk])
		}
	}
}

func TestSingleRankCollectives(t *testing.T) {
	m := newMachine(t, 1, nil)
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		if err := r.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
		}
		if v, err := r.Allreduce("sum", 3); err != nil || v != 3 {
			t.Errorf("allreduce = %g/%v", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
}

// TestMigrateBalancesLoad is the §4.5 story in miniature: imbalanced
// ranks (rank 0..2 heavy on PE 0/1) call MPI_Migrate with GreedyLB;
// afterwards the measured per-PE loads even out and messaging still
// works.
func TestMigrateBalancesLoad(t *testing.T) {
	layout := swapglobal.NewLayout()
	layout.Declare("iter", 8)
	m := newMachine(t, 2, layout)
	const ranks = 8
	var mu sync.Mutex
	endPEs := make(map[int]int)
	var moved int
	j, err := NewJob(m, ranks, Options{Globals: layout}, func(r *Rank) {
		// Heavy work on low ranks: all land on both PEs round-robin,
		// but the heavy ones (0,2,4,6) are all even → all on PE 0.
		work := 1000.0
		if r.Rank()%2 == 0 {
			work = 100000
		}
		r.Work(work)
		n, err := r.Migrate(loadbalance.GreedyLB{})
		if err != nil {
			t.Errorf("rank %d Migrate: %v", r.Rank(), err)
			return
		}
		mu.Lock()
		if n > moved {
			moved = n
		}
		mu.Unlock()
		// Post-migration: second work phase and a token ring to prove
		// communication survives migration.
		r.Work(work)
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		if err := r.Send(next, 1, []byte{byte(r.Rank())}); err != nil {
			t.Errorf("ring send: %v", err)
			return
		}
		data, _, err := r.Recv(prev, 1)
		if err != nil || len(data) != 1 || int(data[0]) != prev {
			t.Errorf("rank %d ring recv = %v/%v", r.Rank(), data, err)
		}
		mu.Lock()
		endPEs[r.Rank()] = r.PE()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job hung")
	}
	if moved == 0 {
		t.Error("no ranks migrated despite imbalance")
	}
	// The heavy ranks must have spread across both PEs.
	heavy := map[int]int{}
	for rk, pe := range endPEs {
		if rk%2 == 0 {
			heavy[pe]++
		}
	}
	if heavy[0] == 4 || heavy[1] == 4 {
		t.Errorf("heavy ranks not spread: %v", heavy)
	}
	// Post-LB measured loads are balanced.
	loads := j.PELoads()
	if ib := loadbalance.Imbalance(loads); ib > 1.3 {
		t.Errorf("post-LB imbalance = %g (loads %v)", ib, loads)
	}
	count, _ := m.MigrationStats()
	if count == 0 {
		t.Error("machine recorded no migrations")
	}
}

func TestMigrateWithStackCopyThreads(t *testing.T) {
	// The same LB flow works with the other stack techniques.
	m := newMachine(t, 2, nil)
	j, err := NewJob(m, 4, Options{Strategy: migrate.MemoryAlias{}}, func(r *Rank) {
		r.Work(float64((r.Rank() + 1) * 10000))
		if _, err := r.Migrate(loadbalance.GreedyLB{}); err != nil {
			t.Errorf("Migrate: %v", err)
		}
		if err := r.Barrier(); err != nil {
			t.Errorf("post barrier: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job hung")
	}
}

// TestRebalanceExternal drives the runtime-initiated LB mode: ranks
// never call MPI_Migrate; the runtime moves them while they are
// parked in Recv, and messaging resumes on the new placement.
func TestRebalanceExternal(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 8
	var mu sync.Mutex
	endPE := make(map[int]int)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		work := 1000.0
		if r.Rank()%2 == 0 {
			work = 100000 // heavy ranks all born on PE 0 (round robin)
		}
		r.Work(work)
		// Park waiting for the controller's post-LB "go" token.
		_, _, _ = r.Recv(AnySource, 1)
		r.Work(work)
		mu.Lock()
		endPE[r.Rank()] = r.PE()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	m.RunUntilQuiescent() // phase 1 done; everyone parked in Recv
	if j.Done() {
		t.Fatal("job finished before the rebalance point")
	}
	moved, err := j.Rebalance(loadbalance.GreedyLB{})
	if err != nil {
		t.Fatal(err)
	}
	// The controller (outside the job) releases the ranks.
	for i := 0; i < ranks; i++ {
		msg := &comm.Message{To: comm.EntityID(j.Rank(i).Thread().ID()), Tag: 1}
		if err := m.Network().Endpoint(0).Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntilQuiescent()
	if !j.Done() {
		t.Fatal("job hung after external rebalance")
	}
	if moved == 0 {
		t.Error("no ranks moved")
	}
	heavy := map[int]int{}
	for rk, pe := range endPE {
		if rk%2 == 0 {
			heavy[pe]++
		}
	}
	if heavy[0] == 4 || heavy[1] == 4 {
		t.Errorf("heavy ranks not spread: %v", heavy)
	}
	if err2 := func() error { _, err := j.Rebalance(nil); return err }(); err2 == nil {
		t.Error("nil strategy accepted")
	}
}

// TestCommAwareRebalance: ranks in a communication ring, all equal
// load, spread round-robin. The comm-aware balancer co-locates ring
// neighbours; plain greedy ignores the graph. Cross-PE traffic under
// the comm-aware placement must be lower.
func TestCommAwareRebalance(t *testing.T) {
	run := func(strategy loadbalance.Strategy) float64 {
		m := newMachine(t, 4, nil)
		const ranks = 16
		j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
			// Phase 1: ring exchange to populate the traffic graph.
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() + r.Size() - 1) % r.Size()
			payload := make([]byte, 4096)
			if err := r.Send(next, 1, payload); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if _, _, err := r.Recv(prev, 1); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			r.Work(10000)
			// Park for the controller-driven rebalance.
			_, _, _ = r.Recv(AnySource, 9)
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Start()
		m.RunUntilQuiescent()
		if _, err := j.Rebalance(strategy); err != nil {
			t.Fatal(err)
		}
		// Measure the ring's cross-PE traffic under the new placement.
		cross := loadbalance.CrossTraffic(j.LoadDatabase(), j.CommGraph(), nil)
		// Release and finish.
		for i := 0; i < j.Size(); i++ {
			msg := &comm.Message{To: comm.EntityID(j.Rank(i).Thread().ID()), Tag: 9}
			if err := m.Network().Endpoint(0).Send(msg); err != nil {
				t.Fatal(err)
			}
		}
		m.RunUntilQuiescent()
		if !j.Done() {
			t.Fatal("job hung")
		}
		return cross
	}
	greedyCross := run(loadbalance.GreedyLB{})
	commCross := run(loadbalance.CommAwareLB{Alpha: 1})
	if !(commCross < greedyCross) {
		t.Errorf("comm-aware cross traffic %g not below greedy %g", commCross, greedyCross)
	}
}

// TestMultipleEpochs calls MPI_Migrate twice: each epoch computes its
// own plan from loads measured since the previous one, and the
// machinery stays consistent across repeated migrations.
func TestMultipleEpochs(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 6
	var mu sync.Mutex
	finished := 0
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		// Epoch 1: even ranks heavy.
		work := 1000.0
		if r.Rank()%2 == 0 {
			work = 50000
		}
		r.Work(work)
		if _, err := r.Migrate(loadbalance.GreedyLB{}); err != nil {
			t.Errorf("epoch 1: %v", err)
			return
		}
		// Epoch 2: odd ranks heavy — the opposite skew.
		work = 1000.0
		if r.Rank()%2 == 1 {
			work = 50000
		}
		r.Work(work)
		if _, err := r.Migrate(loadbalance.GreedyLB{}); err != nil {
			t.Errorf("epoch 2: %v", err)
			return
		}
		mu.Lock()
		finished++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if finished != ranks {
		t.Fatalf("finished = %d", finished)
	}
	// Two distinct epochs were planned.
	j.mu.Lock()
	nplans := len(j.lbPlans)
	j.mu.Unlock()
	if nplans != 2 {
		t.Errorf("epochs planned = %d, want 2", nplans)
	}
	count, _ := m.MigrationStats()
	if count == 0 {
		t.Error("no migrations across epochs")
	}
}

func TestMigrateNilStrategy(t *testing.T) {
	m := newMachine(t, 1, nil)
	var got error
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		_, got = r.Migrate(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if got == nil {
		t.Error("nil strategy accepted")
	}
}
