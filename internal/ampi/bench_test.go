package ampi

import (
	"fmt"
	"testing"
)

// collBench drives b.N back-to-back collectives through one job and
// reports both wall time (ns/op) and modeled virtual time per
// collective (vns/op, from the machine's max PE clock). Sub-benchmark
// names avoid '-' so benchjson's name/GOMAXPROCS split stays clean.
func collBench(b *testing.B, ranks int, algo CollAlgo, op func(*Rank) error) {
	m := newMachine(b, 8, nil)
	j, err := NewJob(m, ranks, Options{Collectives: algo, MsgOverheadNs: 1000}, func(r *Rank) {
		for i := 0; i < b.N; i++ {
			if err := op(r); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	j.Run()
	b.StopTimer()
	if !j.Done() {
		b.Fatal("job deadlocked")
	}
	b.ReportMetric(m.MaxTime()/float64(b.N), "vns/op")
}

// BenchmarkCollBarrier A/Bs the flat rank-0 barrier against the k-ary
// tree at P ∈ {8, 64, 256} on 8 PEs. The vns/op metric shows the
// modeled win (root serialization is O(P) flat, O(k·log_k P) tree);
// ns/op shows the host-side cost of the extra tree phases.
func BenchmarkCollBarrier(b *testing.B) {
	for _, algo := range []CollAlgo{CollFlat, CollTree} {
		for _, p := range []int{8, 64, 256} {
			name := fmt.Sprintf("%s/P%d", algoName(algo), p)
			b.Run(name, func(b *testing.B) {
				collBench(b, p, algo, func(r *Rank) error { return r.Barrier() })
			})
		}
	}
}

// BenchmarkCollAllreduce is the same A/B for a value-carrying
// collective.
func BenchmarkCollAllreduce(b *testing.B) {
	for _, algo := range []CollAlgo{CollFlat, CollTree} {
		for _, p := range []int{8, 64, 256} {
			name := fmt.Sprintf("%s/P%d", algoName(algo), p)
			b.Run(name, func(b *testing.B) {
				collBench(b, p, algo, func(r *Rank) error {
					_, err := r.Allreduce("sum", float64(r.Rank()))
					return err
				})
			})
		}
	}
}

func algoName(a CollAlgo) string {
	switch a {
	case CollFlat:
		return "flat"
	case CollTopoTree:
		return "topo"
	}
	return "tree"
}

// BenchmarkCollTopoTree A/Bs rank-order spanning trees against
// topology-aware ones on an 8-node torus (groups of 4), charging one
// HopNs per node-to-node hop a tree edge crosses. Both runs must
// produce the same reduction bits; the topo tree must cross fewer
// hops (reported as hops/op) and therefore finish in less virtual
// time (vns/op).
func BenchmarkCollTopoTree(b *testing.B) {
	topo := Topology{Nodes: 8, GroupSize: 4, HopNs: 2000}
	for _, p := range []int{64, 256} {
		var rankOrderHops float64
		for _, algo := range []CollAlgo{CollTree, CollTopoTree} {
			algo := algo
			b.Run(fmt.Sprintf("%s/P%d", algoName(algo), p), func(b *testing.B) {
				m := newMachine(b, 8, nil)
				j, err := NewJob(m, p, Options{
					Collectives: algo, MsgOverheadNs: 1000,
					Topo: topo, BlockPlacement: true,
				}, func(r *Rank) {
					for i := 0; i < b.N; i++ {
						v, err := r.Allreduce("max", float64(r.Rank()))
						if err != nil {
							b.Error(err)
							return
						}
						if v != float64(p-1) {
							b.Errorf("allreduce max = %g, want %d", v, p-1)
							return
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				j.Run()
				b.StopTimer()
				if !j.Done() {
					b.Fatal("job deadlocked")
				}
				hops := float64(m.Network().TopoHops()) / float64(b.N)
				b.ReportMetric(m.MaxTime()/float64(b.N), "vns/op")
				b.ReportMetric(hops, "hops")
				if algo == CollTopoTree {
					if !(hops < rankOrderHops) {
						b.Fatalf("topo tree crossed %.0f hops/op, rank-order %.0f — no win", hops, rankOrderHops)
					}
				} else {
					rankOrderHops = hops
				}
			})
		}
	}
}
