package ampi

import "fmt"

// Request is a nonblocking-operation handle (MPI_Request). Sends
// complete immediately (eager buffering, like small-message MPI);
// receives complete at Wait.
type Request struct {
	rank *Rank
	recv *matchSpec // nil for sends
	done bool
	data []byte
	from int
}

// Isend starts a nonblocking send. With eager buffering the data is
// already on the wire when Isend returns, so the request is complete;
// the handle exists for MPI-shaped code.
func (r *Rank) Isend(dest, tag int, data []byte) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("ampi: Isend tag %d must be ≥ 0", tag)
	}
	if err := r.send(dest, tag, data); err != nil {
		return nil, err
	}
	return &Request{rank: r, done: true}, nil
}

// Irecv posts a nonblocking receive; matching happens at Wait. (Real
// MPI matches at arrival; for the post-compute-wait pattern the
// semantics coincide. Overlapping wildcard Irecvs should Wait in
// post order.)
func (r *Rank) Irecv(src, tag int) (*Request, error) {
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("ampi: Irecv tag %d must be ≥ 0 or AnyTag", tag)
	}
	return &Request{rank: r, recv: &matchSpec{src: src, tag: tag}}, nil
}

// Test reports whether the request has completed, without blocking.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	q.rank.mu.Lock()
	defer q.rank.mu.Unlock()
	for _, m := range q.rank.mbox {
		if q.rank.matchesLocked(q.recv, m) {
			return true
		}
	}
	return false
}

// Wait blocks until the request completes and, for receives, returns
// the payload and sender rank.
func (r *Rank) Wait(q *Request) ([]byte, int, error) {
	if q.rank != r {
		return nil, 0, fmt.Errorf("ampi: Wait on another rank's request")
	}
	if q.done {
		return q.data, q.from, nil
	}
	m := r.recv(q.recv.src, q.recv.tag)
	q.done = true
	q.data = m.Data
	q.from = r.senderRank(m)
	return q.data, q.from, nil
}

// Waitall completes every request in order.
func (r *Rank) Waitall(qs []*Request) error {
	for _, q := range qs {
		if _, _, err := r.Wait(q); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------
// Nonblocking collectives (MPI-3 I-collectives).
//
// A CollRequest is an in-progress collective schedule (tree.go): the
// Ixxx call runs the schedule's leading sends — with eager buffering
// a leaf's contribution is on the wire before the call returns — and
// Wait executes the rest (receives and the sends that depend on
// them). Because the blocking collectives execute the *same* schedule
// front to back, a blocking call is exactly Ixxx + Wait: results and
// virtual-time charges are bit-identical by construction, and the gap
// between start and wait is where compute overlaps communication.
//
// Like MPI, collectives of the same kind must complete in program
// order: do not start another collective that shares this one's tags
// (the same Ixxx kind, or its blocking form) before Wait returns.

// CollRequest is a nonblocking-collective handle. After Wait, the
// operation's result is in Value (reductions), Data (Bcast), or
// Parts (Gather, root only).
type CollRequest struct {
	r      *Rank
	acts   []collAct
	next   int
	finish func()
	done   bool

	Value float64  // Iallreduce / Ireduce (root) result
	Data  []byte   // Ibcast result
	Parts [][]byte // Igather result (root only)
}

// startColl builds the request and runs the schedule's leading sends.
func (r *Rank) startColl(acts []collAct, finish func()) (*CollRequest, error) {
	q := &CollRequest{r: r, acts: acts, finish: finish}
	for q.next < len(acts) && acts[q.next].send {
		a := acts[q.next]
		var payload []byte
		if a.data != nil {
			payload = a.data()
		}
		if err := r.sendEdge(a.peer, a.tag, payload); err != nil {
			return nil, err
		}
		q.next++
	}
	return q, nil
}

// Wait completes the collective: remaining receives block (in
// schedule order), dependent sends go out, and the result fields are
// filled. Waiting twice is a no-op.
func (q *CollRequest) Wait() error {
	if q.done {
		return nil
	}
	for q.next < len(q.acts) {
		a := q.acts[q.next]
		if a.send {
			var payload []byte
			if a.data != nil {
				payload = a.data()
			}
			if err := q.r.sendEdge(a.peer, a.tag, payload); err != nil {
				return err
			}
		} else {
			m := q.r.recv(a.peer, a.tag)
			if a.on != nil {
				if err := a.on(m.Data); err != nil {
					return err
				}
			}
		}
		q.next++
	}
	q.done = true
	if q.finish != nil {
		q.finish()
	}
	return nil
}

// Done reports whether the collective has completed (Wait returned).
func (q *CollRequest) Done() bool { return q.done }

// Ibarrier starts a nonblocking barrier; Wait returns once every rank
// has entered it.
func (r *Rank) Ibarrier() (*CollRequest, error) {
	parent, children := r.family(0)
	return r.startColl(barrierActs(parent, children), nil)
}

// Iallreduce starts a nonblocking Allreduce of v under op ("sum",
// "max", "min"); Wait fills Value on every rank.
func (r *Rank) Iallreduce(op string, v float64) (*CollRequest, error) {
	combine, err := combiner(op)
	if err != nil {
		return nil, err
	}
	parent, children := r.family(0)
	acc := new(float64)
	*acc = v
	var q *CollRequest
	q, err = r.startColl(allreduceActs(parent, children, acc, combine), func() { q.Value = *acc })
	return q, err
}

// Ireduce starts a nonblocking Reduce at root; Wait fills Value on
// the root (0 elsewhere, like the blocking Reduce).
func (r *Rank) Ireduce(root int, op string, v float64) (*CollRequest, error) {
	combine, err := combiner(op)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Ireduce root %d of %d", root, len(r.job.ranks))
	}
	parent, children := r.family(root)
	acc := new(float64)
	*acc = v
	var q *CollRequest
	q, err = r.startColl(reduceActs(parent, children, acc, combine), func() {
		if parent < 0 {
			q.Value = *acc
		}
	})
	return q, err
}

// Ibcast starts a nonblocking broadcast of root's data; Wait fills
// Data on every rank (root keeps its own copy).
func (r *Rank) Ibcast(root int, data []byte) (*CollRequest, error) {
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Ibcast root %d of %d", root, len(r.job.ranks))
	}
	parent, children := r.family(root)
	buf := new([]byte)
	*buf = data
	var q *CollRequest
	q, err := r.startColl(bcastActs(parent, children, buf), func() { q.Data = *buf })
	return q, err
}

// Igather starts a nonblocking Gather at root; Wait fills Parts
// (indexed by rank) on the root only.
func (r *Rank) Igather(root int, data []byte) (*CollRequest, error) {
	if root < 0 || root >= len(r.job.ranks) {
		return nil, fmt.Errorf("ampi: Igather root %d of %d", root, len(r.job.ranks))
	}
	parent, children := r.family(root)
	entries := &[]gatherEntry{{rank: r.rank, data: data}}
	var q *CollRequest
	q, err := r.startColl(gatherActs(parent, children, entries, len(r.job.ranks)), func() {
		if parent < 0 {
			out := make([][]byte, len(r.job.ranks))
			for _, e := range *entries {
				out[e.rank] = e.data
			}
			q.Parts = out
		}
	})
	return q, err
}
