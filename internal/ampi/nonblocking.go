package ampi

import "fmt"

// Request is a nonblocking-operation handle (MPI_Request). Sends
// complete immediately (eager buffering, like small-message MPI);
// receives complete at Wait.
type Request struct {
	rank *Rank
	recv *matchSpec // nil for sends
	done bool
	data []byte
	from int
}

// Isend starts a nonblocking send. With eager buffering the data is
// already on the wire when Isend returns, so the request is complete;
// the handle exists for MPI-shaped code.
func (r *Rank) Isend(dest, tag int, data []byte) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("ampi: Isend tag %d must be ≥ 0", tag)
	}
	if err := r.send(dest, tag, data); err != nil {
		return nil, err
	}
	return &Request{rank: r, done: true}, nil
}

// Irecv posts a nonblocking receive; matching happens at Wait. (Real
// MPI matches at arrival; for the post-compute-wait pattern the
// semantics coincide. Overlapping wildcard Irecvs should Wait in
// post order.)
func (r *Rank) Irecv(src, tag int) (*Request, error) {
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("ampi: Irecv tag %d must be ≥ 0 or AnyTag", tag)
	}
	return &Request{rank: r, recv: &matchSpec{src: src, tag: tag}}, nil
}

// Test reports whether the request has completed, without blocking.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	q.rank.mu.Lock()
	defer q.rank.mu.Unlock()
	for _, m := range q.rank.mbox {
		if q.rank.matchesLocked(q.recv, m) {
			return true
		}
	}
	return false
}

// Wait blocks until the request completes and, for receives, returns
// the payload and sender rank.
func (r *Rank) Wait(q *Request) ([]byte, int, error) {
	if q.rank != r {
		return nil, 0, fmt.Errorf("ampi: Wait on another rank's request")
	}
	if q.done {
		return q.data, q.from, nil
	}
	m := r.recv(q.recv.src, q.recv.tag)
	q.done = true
	q.data = m.Data
	q.from = r.senderRank(m)
	return q.data, q.from, nil
}

// Waitall completes every request in order.
func (r *Rank) Waitall(qs []*Request) error {
	for _, q := range qs {
		if _, _, err := r.Wait(q); err != nil {
			return err
		}
	}
	return nil
}
