package ampi

import (
	"math"
	"os"
	"strconv"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/loadbalance"
	"migflow/internal/migrate"
)

// eventMigRanks is the headline LB-step rank count; EVENTMIG_RANKS
// overrides it (CI smoke runs use a tiny value, `make
// bench-eventmigrate` defaults to the full million).
func eventMigRanks(b *testing.B) int {
	if s := os.Getenv("EVENTMIG_RANKS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			b.Fatalf("bad EVENTMIG_RANKS %q", s)
		}
		return n
	}
	return 1_000_000
}

// parkAtGate builds a Jacobi job with one Migrate gate and drives it
// until every rank is parked there — the quiescent point an LB step
// operates at. The returned job has an armed gate; finishParked
// releases it and runs the program to completion.
func parkAtGate(b *testing.B, cfg JacobiConfig) (*Job, func()) {
	cfg.MigrateAt = 1
	if cfg.LB == nil {
		cfg.LB = loadbalance.GreedyLB{}
	}
	m, job, err := NewJacobi(cfg)
	if err != nil {
		b.Fatal(err)
	}
	job.Start()
	m.RunUntilQuiescent()
	if !job.gateReady() {
		b.Fatal("ranks did not park at the gate")
	}
	return job, func() {
		job.serviceGate()
		for {
			m.RunUntilQuiescent()
			if !job.gateReady() {
				break
			}
			job.serviceGate()
		}
		if !job.Done() {
			b.Fatal("job did not complete after the measured LB steps")
		}
	}
}

// BenchmarkEventMigrate is the migration-mechanism A/B: the identical
// Jacobi job parked at an LB gate, every rank rotated to the next PE
// per op. Event ranks move as ~180-byte continuation records through
// the same BulkMigrate pipeline ULT ranks push stack images through —
// ns/rank and B/rank are the two numbers the tentpole claims a ≥10x
// win on (vs isomalloc, the paper's preferred ULT technique).
func BenchmarkEventMigrate(b *testing.B) {
	headline := eventMigRanks(b)
	ab := 16_384
	if headline < ab {
		ab = headline
	}
	cases := []struct {
		name     string
		mode     string
		ranks    int
		strategy converse.StackStrategy
	}{
		{"event/r" + strconv.Itoa(ab), ModeEvent, ab, nil},
		{"ult-isomalloc/r" + strconv.Itoa(ab), ModeULT, ab, migrate.Isomalloc{}},
		{"ult-stackcopy/r" + strconv.Itoa(ab), ModeULT, ab, migrate.StackCopy{}},
		{"ult-memalias/r" + strconv.Itoa(ab), ModeULT, ab, migrate.MemoryAlias{}},
	}
	if headline > ab {
		cases = append(cases, struct {
			name     string
			mode     string
			ranks    int
			strategy converse.StackStrategy
		}{"event/r" + strconv.Itoa(headline), ModeEvent, headline, nil})
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := JacobiConfig{
				Ranks: c.ranks, Iters: 2, PEs: 8,
				Mode: c.mode, Strategy: c.strategy, BlockPlacement: true,
			}
			if c.mode == ModeULT {
				// A realistic thread carries live frames; half the
				// 16 KiB stack is what each ULT migration must ship.
				cfg.StackUse = 8 << 10
			}
			job, finish := parkAtGate(b, cfg)
			m := job.Machine()
			count0, bytes0 := m.MigrationStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				moved, err := job.Rebalance(loadbalance.RotateLB{})
				if err != nil {
					b.Fatal(err)
				}
				if moved != c.ranks {
					b.Fatalf("rotate moved %d of %d ranks", moved, c.ranks)
				}
			}
			b.StopTimer()
			count1, bytes1 := m.MigrationStats()
			moved := count1 - count0
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(moved), "ns/rank")
			b.ReportMetric(float64(bytes1-bytes0)/float64(moved), "B/rank")
			b.ReportMetric(float64(c.ranks), "ranks")
			finish()
		})
	}
}

// BenchmarkEventLBStepMillion is the headline scale run: one full LB
// step — measure skewed loads, plan greedily, move every reassigned
// rank's record — over EVENTMIG_RANKS event ranks (default one
// million). Virtual time is summed before and after each step and
// must not change by a bit: migration is invisible to the simulation.
func BenchmarkEventLBStepMillion(b *testing.B) {
	ranks := eventMigRanks(b)
	job, finish := parkAtGate(b, JacobiConfig{
		Ranks: ranks, Iters: 2, PEs: 8,
		Mode: ModeEvent, WorkSkew: 4, BlockPlacement: true,
	})
	m := job.Machine()
	vtSum := func() float64 {
		var s float64
		for r := 0; r < ranks; r++ {
			s += job.VT(r)
		}
		return s
	}
	before := vtSum()
	count0, bytes0 := m.MigrationStats()
	var movedTotal int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate greedy (fixes the skew) and rotate (restores
		// imbalance) so every op has real work to plan and move.
		var strat loadbalance.Strategy = loadbalance.GreedyLB{}
		if i%2 == 1 {
			strat = loadbalance.RotateLB{}
		}
		moved, err := job.Rebalance(strat)
		if err != nil {
			b.Fatal(err)
		}
		movedTotal += moved
	}
	b.StopTimer()
	if after := vtSum(); math.Float64bits(after) != math.Float64bits(before) {
		b.Fatalf("LB step changed virtual time: %v vs %v", after, before)
	}
	frac := float64(movedTotal) / float64(b.N) / float64(ranks)
	if frac < 0.01 {
		b.Fatalf("LB step moved %.2f%% of ranks, want ≥ 1%%", frac*100)
	}
	count1, bytes1 := m.MigrationStats()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/step")
	b.ReportMetric(frac*100, "moved%")
	b.ReportMetric(float64(bytes1-bytes0)/float64(count1-count0), "B/rank")
	b.ReportMetric(float64(ranks), "ranks")
	finish()
}
