package ampi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"migflow/internal/loadbalance"
)

// mixState is the per-rank Local state the randomized mix and the
// nonblocking tests use (jacobiState has no request slots).
type mixState struct {
	x    float64
	reqs []*Req
}

// TestModeValidation: unknown Mode strings are rejected everywhere,
// the zero value selects ULT, and the event-mode restrictions hold.
func TestModeValidation(t *testing.T) {
	m := newMachine(t, 2, nil)
	if _, err := NewJob(m, 2, Options{Mode: "fibers"}, func(*Rank) {}); err == nil {
		t.Fatal("NewJob accepted Mode \"fibers\"")
	}
	if _, err := NewProgram(m, 2, Options{Mode: "EVENT"}, Do(func(*PC) {})); err == nil {
		t.Fatal("NewProgram accepted Mode \"EVENT\" (modes are case-sensitive)")
	}
	if _, err := NewJob(m, 2, Options{Mode: ModeEvent}, func(*Rank) {}); err == nil {
		t.Fatal("NewJob accepted event mode for a raw func body")
	}
	if _, err := NewProgram(m, 2, Options{Mode: ModeEvent, Aggregate: true}, Do(func(*PC) {})); err == nil {
		t.Fatal("NewProgram accepted event mode with Aggregate")
	}
	j, err := NewJob(m, 2, Options{}, func(*Rank) {})
	if err != nil {
		t.Fatalf("zero-value Mode: %v", err)
	}
	if j.Mode() != ModeULT {
		t.Fatalf("zero-value Mode normalized to %q, want %q", j.Mode(), ModeULT)
	}
}

// runJacobiOn runs a Jacobi program on a fresh machine and returns
// per-rank VTs and the network message count.
func runJacobiOn(t *testing.T, cfg JacobiConfig, pes int, mode string) ([]float64, uint64) {
	t.Helper()
	m := newMachine(t, pes, nil)
	cfg.Mode = mode
	job, err := NewProgram(m, cfg.Ranks, Options{
		Mode:           mode,
		BlockPlacement: cfg.BlockPlacement,
		MsgOverheadNs:  cfg.MsgOverheadNs,
		StackSize:      32 << 10,
	}, JacobiProgram(cfg))
	if err != nil {
		t.Fatalf("NewProgram(%s, %d ranks): %v", mode, cfg.Ranks, err)
	}
	job.Run()
	if !job.Done() {
		t.Fatalf("%s job with %d ranks on %d PEs did not complete", mode, cfg.Ranks, pes)
	}
	vts := make([]float64, cfg.Ranks)
	for r := range vts {
		vts[r] = job.VT(r)
	}
	sent := m.Network().Snapshot().Sent
	return vts, sent
}

// TestJacobiModesAgree is the smoke version of the equivalence
// property: one config, both modes, several PE counts, bit-identical
// VT and equal message counts.
func TestJacobiModesAgree(t *testing.T) {
	cfg := JacobiConfig{Ranks: 12, Iters: 5, ReduceEvery: 2, MsgOverheadNs: 250}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	ref, refSent := runJacobiOn(t, cfg, 1, ModeULT)
	for _, pes := range []int{1, 2, 3, 4} {
		for _, mode := range []string{ModeULT, ModeEvent} {
			vts, sent := runJacobiOn(t, cfg, pes, mode)
			if sent != refSent {
				t.Fatalf("%s/%dPE sent %d messages, want %d", mode, pes, sent, refSent)
			}
			for r := range vts {
				if vts[r] != ref[r] {
					t.Fatalf("%s/%dPE rank %d VT %v, want %v", mode, pes, r, vts[r], ref[r])
				}
			}
		}
	}
}

// buildMix deterministically generates a random workload program
// (from seed): a sequence of halo exchanges, collectives, nonblocking
// pairs, and local work. Every rank folds everything it observes into
// an accumulator and writes it to sink[rank] at the end, so two runs
// agree iff every received value and every reduction agreed.
// gates, when non-nil, inserts a Migrate LB gate after each phase
// index present in the map (the migration-equivalence property test's
// randomized migration schedule).
func buildMix(seed int64, size, phases int, sink []float64, gates map[int]loadbalance.Strategy) Proc {
	rng := rand.New(rand.NewSource(seed))
	acc := func(pc *PC, v float64) {
		st := pc.Local.(*mixState)
		st.x = st.x*0.5 + v + float64(pc.rank)*1e-3
	}
	var ps []Proc
	ps = append(ps, Do(func(pc *PC) {
		pc.Local = &mixState{x: float64(pc.rank + 1)}
	}))
	for p := 0; p < phases; p++ {
		switch rng.Intn(8) {
		case 0: // ring exchange via Sendrecv
			tagA := rng.Intn(4)
			ps = append(ps, Call(func(pc *PC) Proc {
				n := pc.Size()
				right := (pc.rank + 1) % n
				left := (pc.rank - 1 + n) % n
				return Sendrecv(right, tagA,
					func(pc *PC) []byte { return f64bytes(pc.Local.(*mixState).x) },
					left, tagA,
					func(pc *PC, data []byte, from int) { acc(pc, f64(data)+float64(from)) })
			}))
		case 1:
			ps = append(ps, Barrier())
		case 2:
			op := []string{"sum", "max", "min"}[rng.Intn(3)]
			ps = append(ps, Allreduce(op,
				func(pc *PC) float64 { return pc.Local.(*mixState).x },
				func(pc *PC, v float64) { acc(pc, v) }))
		case 3:
			root := rng.Intn(size)
			ps = append(ps, Bcast(root,
				func(pc *PC) []byte { return f64bytes(pc.Local.(*mixState).x * 2) },
				func(pc *PC, data []byte) { acc(pc, f64(data)) }))
		case 4:
			root := rng.Intn(size)
			ps = append(ps, Gather(root,
				func(pc *PC) []byte { return f64bytes(pc.Local.(*mixState).x) },
				func(pc *PC, parts [][]byte) {
					s := 0.0
					for _, p := range parts {
						s += f64(p)
					}
					acc(pc, s)
				}))
		case 5:
			root := rng.Intn(size)
			ps = append(ps, Scatter(root,
				func(pc *PC) [][]byte {
					chunks := make([][]byte, pc.Size())
					for i := range chunks {
						chunks[i] = f64bytes(pc.Local.(*mixState).x + float64(i))
					}
					return chunks
				},
				func(pc *PC, data []byte) { acc(pc, f64(data)) }))
		case 6:
			root := rng.Intn(size)
			op := []string{"sum", "max"}[rng.Intn(2)]
			ps = append(ps, Reduce(root, op,
				func(pc *PC) float64 { return pc.Local.(*mixState).x },
				func(pc *PC, v float64) { acc(pc, v) }))
		case 7: // nonblocking pair exchange + work
			work := float64(rng.Intn(5000))
			tag := 9
			ps = append(ps, Call(func(pc *PC) Proc {
				n := pc.Size()
				peer := pc.rank ^ 1
				if peer >= n {
					peer = pc.rank
				}
				return Seq(
					Do(func(pc *PC) {
						st := pc.Local.(*mixState)
						pc.Work(work)
						pc.Isend(peer, tag, f64bytes(st.x))
						st.reqs = []*Req{pc.Irecv(peer, tag)}
					}),
					Waitall(func(pc *PC) []*Req { return pc.Local.(*mixState).reqs }),
					Do(func(pc *PC) {
						st := pc.Local.(*mixState)
						acc(pc, f64(st.reqs[0].Data)+float64(st.reqs[0].From))
						st.reqs = nil
					}),
				)
			}))
		}
		if s, ok := gates[p]; ok {
			ps = append(ps, Migrate(s))
		}
	}
	ps = append(ps, Do(func(pc *PC) {
		sink[pc.rank] = pc.Local.(*mixState).x
	}))
	return Seq(ps...)
}

// TestCrossBackendEquivalence: ≥10 randomized trials over size, PE
// count, and workload mix. For each trial the ULT reference run and
// event runs on two different PE counts must produce bit-identical
// per-rank VT, bit-identical program outputs, and equal network
// message counts — the flow mechanism must be invisible to the
// simulated program.
func TestCrossBackendEquivalence(t *testing.T) {
	peChoices := []int{1, 2, 3, 4, 5, 8}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 13))
			size := 1 + rng.Intn(40)
			phases := 3 + rng.Intn(6)
			seed := rng.Int63()
			opts := Options{
				TreeArity:      1 + rng.Intn(4),
				MsgOverheadNs:  float64(rng.Intn(3)) * 175,
				BlockPlacement: rng.Intn(2) == 0,
				StackSize:      32 << 10,
			}
			if rng.Intn(3) == 0 {
				opts.Collectives = CollFlat
			}
			type result struct {
				vts, out []float64
				sent     uint64
			}
			run := func(mode string, pes int) result {
				m := newMachine(t, pes, nil)
				sink := make([]float64, size)
				o := opts
				o.Mode = mode
				job, err := NewProgram(m, size, o, buildMix(seed, size, phases, sink, nil))
				if err != nil {
					t.Fatalf("NewProgram(%s): %v", mode, err)
				}
				job.Run()
				if !job.Done() {
					t.Fatalf("%s/%dPE: job did not complete (size %d)", mode, pes, size)
				}
				vts := make([]float64, size)
				for r := range vts {
					vts[r] = job.VT(r)
				}
				sent := m.Network().Snapshot().Sent
				return result{vts: vts, out: sink, sent: sent}
			}
			ref := run(ModeULT, peChoices[rng.Intn(len(peChoices))])
			for _, other := range []result{
				run(ModeEvent, peChoices[rng.Intn(len(peChoices))]),
				run(ModeEvent, peChoices[rng.Intn(len(peChoices))]),
				run(ModeULT, peChoices[rng.Intn(len(peChoices))]),
			} {
				if other.sent != ref.sent {
					t.Fatalf("message counts diverged: %d vs %d (size %d, phases %d)", other.sent, ref.sent, size, phases)
				}
				for r := 0; r < size; r++ {
					if math.Float64bits(other.vts[r]) != math.Float64bits(ref.vts[r]) {
						t.Fatalf("rank %d VT diverged: %v vs %v", r, other.vts[r], ref.vts[r])
					}
					if math.Float64bits(other.out[r]) != math.Float64bits(ref.out[r]) {
						t.Fatalf("rank %d output diverged: %v vs %v", r, other.out[r], ref.out[r])
					}
				}
			}
		})
	}
}

// TestEventWildcardRecvOrder: wildcard receives in event mode match
// the OLDEST buffered message, and a by-source receive takes from the
// middle of the buffer without disturbing arrival order.
func TestEventWildcardRecvOrder(t *testing.T) {
	m := newMachine(t, 1, nil)
	var order []int
	prog := Call(func(pc *PC) Proc {
		if pc.Rank() != 0 {
			return Do(func(pc *PC) { pc.Send(0, pc.Rank(), f64bytes(float64(pc.Rank()))) })
		}
		return Seq(
			Recv(2, AnyTag, func(_ *PC, data []byte, from int) {
				order = append(order, from)
			}),
			Recv(AnySource, AnyTag, func(_ *PC, data []byte, from int) {
				order = append(order, from)
			}),
			Recv(AnySource, AnyTag, func(_ *PC, data []byte, from int) {
				order = append(order, from)
			}),
		)
	})
	job, err := NewProgram(m, 4, Options{Mode: ModeEvent}, prog)
	if err != nil {
		t.Fatal(err)
	}
	job.Run()
	if !job.Done() {
		t.Fatal("job did not complete")
	}
	// Ranks 1,2,3 send in dispatch order; rank 0 first takes rank 2's
	// (by source, mid-buffer), then the wildcard takes the oldest
	// remaining (1), then 3.
	want := []int{2, 1, 3}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("receive order %v, want %v", order, want)
	}
}

// TestEventIrecvWaitallAcrossPEs: nonblocking receives posted before
// their sends complete across 4 PEs under the parallel driver.
func TestEventIrecvWaitallAcrossPEs(t *testing.T) {
	const size = 64
	m := newMachine(t, 4, nil)
	got := make([]float64, size)
	prog := Call(func(pc *PC) Proc {
		n := pc.Size()
		near := (pc.rank + 1) % n
		far := (pc.rank + n/2) % n
		return Seq(
			Do(func(pc *PC) {
				st := &mixState{}
				pc.Local = st
				st.reqs = []*Req{
					pc.Irecv((pc.rank-1+n)%n, 5),
					pc.Irecv((pc.rank-n/2+n)%n, 6),
				}
				pc.Send(near, 5, f64bytes(float64(pc.rank)))
				pc.Send(far, 6, f64bytes(float64(pc.rank)*10))
			}),
			Waitall(func(pc *PC) []*Req { return pc.Local.(*mixState).reqs }),
			Do(func(pc *PC) {
				rs := pc.Local.(*mixState).reqs
				got[pc.rank] = f64(rs[0].Data) + f64(rs[1].Data)
			}),
		)
	})
	job, err := NewProgram(m, size, Options{Mode: ModeEvent}, prog)
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	m.RunParallel(job.Done)
	if !job.Done() {
		t.Fatal("job did not complete")
	}
	for r := 0; r < size; r++ {
		want := float64((r-1+size)%size) + float64((r-size/2+size)%size)*10
		if got[r] != want {
			t.Fatalf("rank %d combined %v, want %v", r, got[r], want)
		}
	}
}

// TestEventStress drives ≥100k event ranks through a halo exchange
// under the parallel driver — with -race this is the satellite's
// concurrency stress (the same binary runs it race-free in the plain
// suite).
func TestEventStress(t *testing.T) {
	ranks := 100_000
	if testing.Short() {
		ranks = 10_000
	}
	m := newMachine(t, 4, nil)
	cfg := JacobiConfig{Ranks: ranks, Iters: 2, Mode: ModeEvent, BlockPlacement: true}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	job, err := NewProgram(m, ranks, Options{Mode: ModeEvent, BlockPlacement: true}, JacobiProgram(cfg))
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	m.RunParallel(job.Done)
	if !job.Done() {
		t.Fatal("stress job did not complete")
	}
	if vt := job.PredictedNs(); vt <= 0 {
		t.Fatalf("predicted time %v, want > 0", vt)
	}
}

// TestEventFootprintReleased: a completed event job must return the
// Machine to its idle footprint — directory entries gone, the shared
// handler range gone, and the contiguous store released.
func TestEventFootprintReleased(t *testing.T) {
	const ranks = 50_000
	m := newMachine(t, 2, nil)
	baseEntities := m.Network().NumEntities()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	cfg := JacobiConfig{Ranks: ranks, Iters: 2, Mode: ModeEvent}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	job, err := NewProgram(m, ranks, Options{Mode: ModeEvent}, JacobiProgram(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Network().NumEntities(); got != baseEntities+ranks {
		t.Fatalf("registered entities %d, want %d", got, baseEntities+ranks)
	}
	job.Run()
	if !job.Done() {
		t.Fatal("job did not complete")
	}
	if got := m.Network().NumEntities(); got != baseEntities {
		t.Fatalf("after completion the directory holds %d entities, want %d", got, baseEntities)
	}
	if got := m.NumEntityRanges(); got != 0 {
		t.Fatalf("after completion %d entity ranges remain, want 0", got)
	}
	if job.ev.store() != nil {
		t.Fatal("after completion the contiguous store was not released")
	}
	// VT results must survive the release.
	if vt := job.PredictedNs(); vt <= 0 {
		t.Fatalf("predicted time %v after release, want > 0", vt)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapInuse) - int64(before.HeapInuse)
	// 50k retired ranks should leave only the VT snapshot (8 B/rank)
	// plus noise; 64 B/rank of slack is an order of magnitude of
	// headroom without being flaky.
	if limit := int64(ranks * 64); delta > limit {
		t.Fatalf("heap grew %d bytes after a completed %d-rank job (limit %d)", delta, ranks, limit)
	}
}
