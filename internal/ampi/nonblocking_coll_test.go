package ampi

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"migflow/internal/loadbalance"
)

// ncOut is one rank's collective results in the equivalence tests.
type ncOut struct {
	allred float64
	red    float64
	bcast  []byte
	parts  [][]byte
	vt     float64
}

// TestThreadNonblockingMatchesBlocking runs the full collective set
// through the thread (Rank) API twice — once blocking, once as
// Ixxx + Wait — and demands identical results and identical modeled
// time: the blocking calls execute the same schedules, so splitting
// them may not change a single charge.
func TestThreadNonblockingMatchesBlocking(t *testing.T) {
	const ranks, root = 12, 3
	run := func(split bool) ([]ncOut, float64) {
		m := newMachine(t, 4, nil)
		out := make([]ncOut, ranks)
		var mu sync.Mutex
		j, err := NewJob(m, ranks, Options{Collectives: CollTree, TreeArity: 2, MsgOverheadNs: 500}, func(r *Rank) {
			var o ncOut
			var seed []byte
			if r.Rank() == root {
				seed = []byte("split-phase")
			}
			if split {
				if q, err := r.Ibarrier(); err != nil {
					t.Error(err)
					return
				} else if err := q.Wait(); err != nil {
					t.Error(err)
					return
				}
				q, err := r.Iallreduce("sum", float64(r.Rank()+1))
				if err != nil {
					t.Error(err)
					return
				}
				if err := q.Wait(); err != nil {
					t.Error(err)
					return
				}
				o.allred = q.Value
				if q, err = r.Ireduce(root, "max", float64(r.Rank()*3)); err != nil {
					t.Error(err)
					return
				}
				if err := q.Wait(); err != nil {
					t.Error(err)
					return
				}
				o.red = q.Value
				if q, err = r.Ibcast(root, seed); err != nil {
					t.Error(err)
					return
				}
				if err := q.Wait(); err != nil {
					t.Error(err)
					return
				}
				o.bcast = q.Data
				if q, err = r.Igather(root, []byte{byte(r.Rank())}); err != nil {
					t.Error(err)
					return
				}
				if err := q.Wait(); err != nil {
					t.Error(err)
					return
				}
				o.parts = q.Parts
			} else {
				if err := r.Barrier(); err != nil {
					t.Error(err)
					return
				}
				var err error
				if o.allred, err = r.Allreduce("sum", float64(r.Rank()+1)); err != nil {
					t.Error(err)
					return
				}
				if o.red, err = r.Reduce(root, "max", float64(r.Rank()*3)); err != nil {
					t.Error(err)
					return
				}
				if o.bcast, err = r.Bcast(root, seed); err != nil {
					t.Error(err)
					return
				}
				if o.parts, err = r.Gather(root, []byte{byte(r.Rank())}); err != nil {
					t.Error(err)
					return
				}
			}
			mu.Lock()
			out[r.Rank()] = o
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Run()
		if !j.Done() {
			t.Fatal("job deadlocked")
		}
		return out, m.MaxTime()
	}
	blk, blkT := run(false)
	spl, splT := run(true)
	if math.Float64bits(blkT) != math.Float64bits(splT) {
		t.Errorf("modeled time diverged: blocking %g, split %g", blkT, splT)
	}
	for rk := range blk {
		if blk[rk].allred != spl[rk].allred || blk[rk].red != spl[rk].red {
			t.Errorf("rank %d reductions diverged: %+v vs %+v", rk, blk[rk], spl[rk])
		}
		if !bytes.Equal(blk[rk].bcast, spl[rk].bcast) {
			t.Errorf("rank %d bcast diverged: %q vs %q", rk, blk[rk].bcast, spl[rk].bcast)
		}
		if len(blk[rk].parts) != len(spl[rk].parts) {
			t.Errorf("rank %d gather diverged", rk)
		}
	}
}

// TestThreadIcollOverlapWindow pins the point of the split: Test on
// an unfinished CollRequest is answerable (Done is false before Wait,
// true after), a leaf's contribution is already in flight at start,
// and interleaving independent point-to-point traffic between start
// and wait neither corrupts the collective nor the messages.
func TestThreadIcollOverlapWindow(t *testing.T) {
	const ranks = 8
	m := newMachine(t, 2, nil)
	var mu sync.Mutex
	sums := make([]float64, ranks)
	j, err := NewJob(m, ranks, Options{Collectives: CollTree}, func(r *Rank) {
		q, err := r.Iallreduce("sum", 1)
		if err != nil {
			t.Error(err)
			return
		}
		if q.Done() {
			t.Errorf("rank %d: request done before Wait", r.Rank())
		}
		// Unrelated halo traffic inside the overlap window.
		peer := (r.Rank() + 1) % ranks
		if err := r.Send(peer, 7, []byte{byte(r.Rank())}); err != nil {
			t.Error(err)
			return
		}
		if data, _, err := r.Recv((r.Rank()+ranks-1)%ranks, 7); err != nil || data[0] != byte((r.Rank()+ranks-1)%ranks) {
			t.Errorf("rank %d: halo inside window broken: %v %v", r.Rank(), data, err)
			return
		}
		if err := q.Wait(); err != nil {
			t.Error(err)
			return
		}
		if !q.Done() {
			t.Errorf("rank %d: request not done after Wait", r.Rank())
		}
		if err := q.Wait(); err != nil { // second Wait is a no-op
			t.Error(err)
		}
		mu.Lock()
		sums[r.Rank()] = q.Value
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job deadlocked")
	}
	for rk, v := range sums {
		if v != ranks {
			t.Errorf("rank %d sum = %g, want %d", rk, v, ranks)
		}
	}
}

// ncProgram builds the program-API equivalence workload. gap selects
// what separates each collective's start from its wait:
// "none" (adjacent — the blocking decomposition), "work" (compute in
// the overlap window), or "migrate" (a full LB gate between the
// halves — collectives in flight across a migration).
func ncProgram(gap string, out *[]ncOut, mu *sync.Mutex) Proc {
	const root = 2
	gapProc := func() Proc {
		switch gap {
		case "work":
			return Do(func(pc *PC) { pc.Work(700) })
		case "migrate":
			return Migrate(loadbalance.GreedyLB{})
		}
		return Seq()
	}
	arS, arW := Iallreduce("sum",
		func(pc *PC) float64 { return float64(pc.Rank() + 1) },
		func(pc *PC, v float64) { pc.Local.(*ncOut).allred = v })
	rdS, rdW := Ireduce(root, "max",
		func(pc *PC) float64 { return float64(pc.Rank() * 3) },
		func(pc *PC, v float64) { pc.Local.(*ncOut).red = v })
	bcS, bcW := Ibcast(root,
		func(pc *PC) []byte { return []byte("program-split") },
		func(pc *PC, b []byte) { pc.Local.(*ncOut).bcast = b })
	gaS, gaW := Igather(root,
		func(pc *PC) []byte { return []byte{byte(pc.Rank())} },
		func(pc *PC, parts [][]byte) { pc.Local.(*ncOut).parts = parts })
	baS, baW := Ibarrier()
	return Seq(
		Do(func(pc *PC) {
			pc.Local = &ncOut{}
			pc.Work(float64(10 * (pc.Rank() + 1))) // skew so LB has something to move
		}),
		baS, gapProc(), baW,
		arS, gapProc(), arW,
		rdS, gapProc(), rdW,
		bcS, gapProc(), bcW,
		gaS, gapProc(), gaW,
		Do(func(pc *PC) {
			o := *pc.Local.(*ncOut)
			o.vt = pc.VT()
			mu.Lock()
			(*out)[pc.Rank()] = o
			mu.Unlock()
		}),
	)
}

// TestNonblockingCollEquivalence is the acceptance matrix: the same
// split-phase collective program across mode (ult|event) × PE count ×
// gap (adjacent | work in the window | LB gate in the window) must
// produce bit-identical per-rank virtual times and results within
// each gap variant — the flow backend, the placement, and a
// mid-collective migration are all invisible to the simulated
// program. The "none" variant must additionally match the blocking
// forms exactly, which it does by construction (blocking = start;wait).
func TestNonblockingCollEquivalence(t *testing.T) {
	const ranks = 24
	run := func(gap, mode string, pes int) []ncOut {
		var mu sync.Mutex
		out := make([]ncOut, ranks)
		m := newMachine(t, pes, nil)
		// The logical topology is fixed (not tied to the PE count):
		// hop charges and the tree shape are pure functions of rank
		// and Options, which is what keeps VT invariant across
		// placements.
		j, err := NewProgram(m, ranks, Options{
			Mode: mode, MsgOverheadNs: 250, BlockPlacement: true,
			Collectives: CollTopoTree, Topo: Topology{Nodes: 6, GroupSize: 2},
		}, ncProgram(gap, &out, &mu))
		if err != nil {
			t.Fatal(err)
		}
		j.Run()
		if !j.Done() {
			t.Fatalf("gap=%s mode=%s pes=%d: job deadlocked", gap, mode, pes)
		}
		return out
	}
	for _, gap := range []string{"none", "work", "migrate"} {
		gap := gap
		t.Run(gap, func(t *testing.T) {
			ref := run(gap, ModeULT, 4)
			for _, mode := range []string{ModeULT, ModeEvent} {
				for _, pes := range []int{1, 4, 6} {
					got := run(gap, mode, pes)
					for rk := range got {
						label := fmt.Sprintf("gap=%s mode=%s pes=%d rank=%d", gap, mode, pes, rk)
						if math.Float64bits(got[rk].vt) != math.Float64bits(ref[rk].vt) {
							t.Fatalf("%s: VT %g differs from reference %g", label, got[rk].vt, ref[rk].vt)
						}
						if got[rk].allred != ref[rk].allred || got[rk].allred != ranks*(ranks+1)/2 {
							t.Fatalf("%s: allreduce %g, ref %g", label, got[rk].allred, ref[rk].allred)
						}
						if got[rk].red != ref[rk].red {
							t.Fatalf("%s: reduce %g, ref %g", label, got[rk].red, ref[rk].red)
						}
						if !bytes.Equal(got[rk].bcast, []byte("program-split")) {
							t.Fatalf("%s: bcast %q", label, got[rk].bcast)
						}
						if (rk == 2) != (got[rk].parts != nil) {
							t.Fatalf("%s: gather presence wrong", label)
						}
					}
				}
			}
		})
	}
	// The work-gap schedule must be cheaper than serializing the same
	// work after blocking collectives: overlap hides the tree latency.
	serial := run("none", ModeULT, 4)
	overlap := run("work", ModeULT, 4)
	extra := 5 * 700.0 // five gaps of Work(700) per rank
	if !(overlap[ranks-1].vt < serial[ranks-1].vt+extra) {
		t.Errorf("overlap bought nothing: split VT %g vs blocking-then-work %g",
			overlap[ranks-1].vt, serial[ranks-1].vt+extra)
	}
}
