package ampi

import (
	"math"
	"testing"
)

// TestJacobiOverlapHidesLatency is the Jacobi A/B the split-phase
// schedule exists for: with a per-message software overhead making
// the exchange a visible fraction of each iteration, the overlapped
// schedule must finish in less virtual time than the blocking one,
// in both flow backends, with bit-identical predictions between them
// and unchanged message counts.
func TestJacobiOverlapHidesLatency(t *testing.T) {
	base := JacobiConfig{
		Ranks: 64, Iters: 12, PEs: 4,
		WorkNs: 2000, MsgOverheadNs: 400, ReduceEvery: 3,
		BlockPlacement: true,
	}
	run := func(mode string, overlap bool) JacobiResult {
		cfg := base
		cfg.Mode = mode
		cfg.Overlap = overlap
		res, err := RunJacobi(cfg)
		if err != nil {
			t.Fatalf("mode=%s overlap=%v: %v", mode, overlap, err)
		}
		return res
	}
	for _, overlap := range []bool{false, true} {
		ult := run(ModeULT, overlap)
		evt := run(ModeEvent, overlap)
		if math.Float64bits(ult.PredictedNs) != math.Float64bits(evt.PredictedNs) {
			t.Errorf("overlap=%v: prediction diverged between backends: %g (ult) vs %g (event)",
				overlap, ult.PredictedNs, evt.PredictedNs)
		}
		if ult.Msgs != evt.Msgs {
			t.Errorf("overlap=%v: message count diverged: %d vs %d", overlap, ult.Msgs, evt.Msgs)
		}
	}
	blocking := run(ModeULT, false)
	overlap := run(ModeULT, true)
	if !(overlap.PredictedNs < blocking.PredictedNs) {
		t.Errorf("overlap did not lower predicted time: %g vs blocking %g",
			overlap.PredictedNs, blocking.PredictedNs)
	}
	if overlap.Msgs != blocking.Msgs {
		t.Errorf("overlap changed message count: %d vs %d", overlap.Msgs, blocking.Msgs)
	}
}

// TestJacobiTopoTreeFewerHops runs the same Jacobi job under
// rank-order and topology-aware collective trees: identical
// residual-reduction behavior (same prediction structure aside from
// hop charges), strictly fewer torus hops for the topo tree.
func TestJacobiTopoTreeFewerHops(t *testing.T) {
	run := func(algo CollAlgo) JacobiResult {
		res, err := RunJacobi(JacobiConfig{
			Ranks: 96, Iters: 6, PEs: 4, ReduceEvery: 2,
			BlockPlacement: true,
			Collectives:    algo,
			Topo:           Topology{Nodes: 8, GroupSize: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rankOrder := run(CollTree)
	topo := run(CollTopoTree)
	if rankOrder.Hops == 0 || topo.Hops == 0 {
		t.Fatalf("hop accounting inert: rank-order %d, topo %d", rankOrder.Hops, topo.Hops)
	}
	if !(topo.Hops < rankOrder.Hops) {
		t.Errorf("topo tree crossed %d hops, rank-order %d — no win", topo.Hops, rankOrder.Hops)
	}
}
