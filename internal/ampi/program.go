package ampi

// Continuation programs: the CPC idea ("compiling blocking threads to
// events through continuations") applied to AMPI ranks. A Program is
// an immutable tree of Proc combinators — Do/Seq/For/Recv/collectives
// — shared by every rank of a job, the way bigsim.stepBody is shared
// by both BigSim backends. The SAME tree is interpreted by two
// backends selected with Options.Mode:
//
//   - ModeULT: each rank is a migratable user-level thread; Recv and
//     the collectives block the thread exactly like the classic Rank
//     API, and each activation pays the platform's thread-switch
//     curve.
//   - ModeEvent: each rank is a small state struct in a contiguous
//     per-job store (event.go); every blocking point stores a
//     continuation and returns to the owning PE's loop, and each
//     activation pays the (much cheaper) EventDispatch curve.
//
// Because all communication, computation, and virtual-time accounting
// live in this shared layer, a program's predicted virtual time (VT)
// and its message counts are bit-identical across mode × PE count —
// the property TestCrossBackendEquivalence enforces. Only what the
// *simulating* machine is charged (PE clocks, wall time, memory)
// depends on the mode.

import (
	"fmt"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/sdag"
	"migflow/internal/vmem"
)

// Proc is one statement of a continuation program. Implementations
// run by either completing inline and invoking k, or storing k (via
// the backend) to be resumed by a message.
type Proc interface {
	run(pc *PC, k func())
}

// backend is what a Proc needs from the flow-of-control mechanism
// behind a rank. Exactly two implementations exist: ultBE (thread
// blocks) and *eventEngine (continuation parks).
type backend interface {
	// send transmits data to dest, stamping pc.vt into the message's
	// VTime and charging the simulating PE's clock for send overhead.
	send(pc *PC, dest, tag int, data []byte)
	// recv arranges for k to run with the oldest message matching
	// (src, tag), suspending the flow if none is buffered, and
	// synchronizes the simulating PE clock with the message's arrival.
	recv(pc *PC, src, tag int, k func(*comm.Message))
	// work charges ns nanoseconds of computation to the simulating PE.
	work(pc *PC, ns float64)
	// pe reports which simulating PE the rank currently runs on —
	// placement-dependent by design (per-PE makespan accounting).
	pe(pc *PC) int
	// lbpoint parks the flow at the job's collective LB gate; the
	// runtime resumes k after the rebalance, possibly on another PE.
	lbpoint(pc *PC, k func())
	// usestack models per-rank live frames: ULT ranks push and dirty
	// a frame of n bytes (which every later migration must carry);
	// event ranks have no stack, so it is a no-op — the asymmetry the
	// migration-cost comparison measures.
	usestack(pc *PC, n uint64)
}

// PC is one rank's program context: its identity, its predicted
// virtual time, and its backend. Program callbacks receive the PC and
// may call its Send/Work/Isend/Irecv methods; blocking is expressed
// only through Proc combinators, never by a callback that waits.
type PC struct {
	job  *Job
	rank int

	// vt is the rank's predicted virtual time in nanoseconds — the
	// mode- and placement-independent clock of the *target* program,
	// advanced by Work, send overhead, and message arrival
	// constraints. It is deliberately distinct from the simulating PE
	// clocks, which depend on mode and rank placement.
	vt float64

	// Local is the rank's program-private state (halo buffers, loop
	// accumulators). The event engine frees it when the rank's program
	// completes.
	Local any

	// colls holds the rank's in-flight nonblocking collectives, keyed
	// by their program-tree site (collDef). Like Local it rides the
	// rank's slot by reference, so an outstanding collective survives
	// migration between its start and wait halves.
	colls map[*collDef]*collRun

	be    backend
	tramp *sdag.Tramp

	// path, when non-nil, tracks the rank's structural position in the
	// shared program tree: one frame per enclosing Seq/For giving the
	// current statement/iteration index. Cross-process migration ships
	// it so the destination can re-seek the blocked continuation by
	// re-descending the (identical) tree — closures don't cross a
	// process boundary, tree coordinates do. Nil (the default) costs
	// one nil check per structural node; sharded event jobs enable it.
	path []int32

	// seek/seekPos replay a shipped path during a reseek descent:
	// every Seq/For consumes one frame to jump straight to the blocked
	// statement without re-running completed ones. Exhausted (or nil)
	// outside a reseek.
	seek    []int32
	seekPos int

	// blockKind records which combinator parked the rank (only
	// maintained when path tracking is on): cross-process migration is
	// supported at a plain Recv, whose spec the record carries; a
	// collective wait or Waitall holds closure state that cannot be
	// re-derived from tree coordinates alone.
	blockKind uint8
}

// blockKind values.
const (
	blockNone uint8 = iota
	blockRecv
	blockColl
	blockWaitall
)

// pathPush opens a structural frame (Seq/For entry).
func (pc *PC) pathPush() {
	if pc.path != nil {
		pc.path = append(pc.path, 0)
	}
}

// pathSet updates the innermost frame's index.
func (pc *PC) pathSet(v int32) {
	if pc.path != nil {
		pc.path[len(pc.path)-1] = v
	}
}

// pathPop closes the innermost frame (Seq/For completion).
func (pc *PC) pathPop() {
	if pc.path != nil {
		pc.path = pc.path[:len(pc.path)-1]
	}
}

// seekFrame consumes one replay frame during a reseek descent, or
// returns 0 (start from the beginning) when not seeking.
func (pc *PC) seekFrame() int {
	if pc.seekPos < len(pc.seek) {
		v := pc.seek[pc.seekPos]
		pc.seekPos++
		return int(v)
	}
	return 0
}

// Rank returns the rank number.
func (pc *PC) Rank() int { return pc.rank }

// Size returns the job's rank count.
func (pc *PC) Size() int { return pc.job.size }

// VT returns the rank's predicted virtual time in nanoseconds.
func (pc *PC) VT() float64 { return pc.vt }

// PE returns the simulating PE the rank currently runs on. Unlike VT
// it is placement-dependent — it changes when the rank migrates —
// and exists precisely for per-PE accounting (a zone step charging
// its busy time to the processor that executed it).
func (pc *PC) PE() int { return pc.be.pe(pc) }

// UseStack models the rank holding n bytes of live stack frames from
// here on: ULT ranks really push and dirty the frame (so every later
// migration ships it); event ranks keep nothing — a continuation has
// no stack to carry. No effect on virtual time in either mode.
func (pc *PC) UseStack(n uint64) { pc.be.usestack(pc, n) }

// Work models ns nanoseconds of local computation: it advances the
// rank's predicted time and charges the simulating PE.
func (pc *PC) Work(ns float64) {
	pc.vt += ns
	pc.be.work(pc, ns)
}

// Send sends data to rank dest with tag ≥ 0 (eager-buffered, like
// MPI_Send). Invalid destinations panic: a program is trusted code,
// not a fallible caller.
func (pc *PC) Send(dest, tag int, data []byte) {
	if tag < 0 {
		panic(fmt.Sprintf("ampi: program Send tag %d must be ≥ 0", tag))
	}
	pc.sendRaw(dest, tag, data)
}

// sendRaw is Send without the user-tag restriction (collectives use
// negative internal tags). The mode-independent half of the cost
// model lives here: send overhead advances vt, and the message
// carries vt for the receiver's arrival constraint.
func (pc *PC) sendRaw(dest, tag int, data []byte) {
	if ovh := pc.job.opts.MsgOverheadNs; ovh > 0 {
		pc.vt += ovh
	}
	pc.be.send(pc, dest, tag, data)
}

// sendEdge is sendRaw along a collective tree edge: when a topology
// is configured, the edge's torus hops are charged into vt and the
// comm hop counter before the send. Hop distance is a pure function
// of the two ranks and the job options, keeping vt mode-, placement-
// and PE-count-invariant.
func (pc *PC) sendEdge(peer, tag int, data []byte) {
	if ns := pc.job.chargeHops(pc.rank, peer); ns > 0 {
		pc.vt += ns
	}
	pc.sendRaw(peer, tag, data)
}

// consume applies the mode-independent receive cost model: the
// receiver cannot proceed before the sender's virtual time plus one
// uniform network hop, then pays the per-message software overhead.
// The latency model is applied to the *logical* message regardless of
// where the two ranks physically live, which is what makes vt
// invariant across PE counts and placements.
func (pc *PC) consume(m *comm.Message) {
	lat := pc.job.m.Network().Latency()
	if at := m.VTime + lat.Cost(len(m.Data)); at > pc.vt {
		pc.vt = at
	}
	if ovh := pc.job.opts.MsgOverheadNs; ovh > 0 {
		pc.vt += ovh
	}
}

// Req is a nonblocking-operation handle inside a program (the
// continuation analogue of Rank's Request). Completed receives expose
// Data and From.
type Req struct {
	done   bool
	isRecv bool
	src    int
	tag    int

	Data []byte
	From int
}

// Done reports whether the request has completed.
func (q *Req) Done() bool { return q.done }

// Isend sends eagerly and returns an already-completed request.
func (pc *PC) Isend(dest, tag int, data []byte) *Req {
	if tag < 0 {
		panic(fmt.Sprintf("ampi: program Isend tag %d must be ≥ 0", tag))
	}
	pc.sendRaw(dest, tag, data)
	return &Req{done: true}
}

// Irecv posts a nonblocking receive for (src, tag) — matching happens
// at Waitall, like the thread API's Irecv/Wait.
func (pc *PC) Irecv(src, tag int) *Req {
	if tag < 0 && tag != AnyTag {
		panic(fmt.Sprintf("ampi: program Irecv tag %d must be ≥ 0 or AnyTag", tag))
	}
	return &Req{isRecv: true, src: src, tag: tag}
}

// ---------------------------------------------------------------
// Primitives

type doProc struct{ fn func(*PC) }

// Do wraps non-blocking code: it runs to completion (sends, work,
// local updates) and never suspends — the program analogue of
// sdag.Atomic.
func Do(fn func(*PC)) Proc { return doProc{fn} }

func (p doProc) run(pc *PC, k func()) {
	p.fn(pc)
	k()
}

type seqProc struct{ ps []Proc }

// Seq runs statements in order, each starting when its predecessor
// completes.
func Seq(ps ...Proc) Proc { return seqProc{ps} }

func (s seqProc) run(pc *PC, k func()) {
	pc.pathPush()
	var step func(i int)
	step = func(i int) {
		if i >= len(s.ps) {
			pc.pathPop()
			k()
			return
		}
		pc.pathSet(int32(i))
		s.ps[i].run(pc, func() {
			pc.tramp.Schedule(func() { step(i + 1) })
		})
	}
	step(pc.seekFrame())
}

type forProc struct {
	n    int
	body func(i int) Proc
}

// For runs body(0) … body(n-1) in sequence — the outer iteration loop
// of a stencil program. The loop backedge goes through the rank's
// trampoline, so deep iteration counts cost no stack.
func For(n int, body func(i int) Proc) Proc { return forProc{n, body} }

func (f forProc) run(pc *PC, k func()) {
	pc.pathPush()
	var iter func(i int)
	iter = func(i int) {
		if i >= f.n {
			pc.pathPop()
			k()
			return
		}
		pc.pathSet(int32(i))
		f.body(i).run(pc, func() {
			pc.tramp.Schedule(func() { iter(i + 1) })
		})
	}
	iter(pc.seekFrame())
}

type callProc struct{ gen func(*PC) Proc }

// Call generates a statement per rank at run time — how one shared
// program expresses rank-dependent structure (a tree collective's
// node has its own parent and children; closures generated here carry
// per-execution state safely).
func Call(gen func(*PC) Proc) Proc { return callProc{gen} }

func (c callProc) run(pc *PC, k func()) {
	c.gen(pc).run(pc, k)
}

type recvProc struct {
	src, tag int
	then     func(pc *PC, data []byte, from int)
}

// Recv blocks until a message from src (or AnySource) with tag (or
// AnyTag) arrives, applies the receive cost model, and runs then (if
// non-nil) with the payload and sender rank.
func Recv(src, tag int, then func(pc *PC, data []byte, from int)) Proc {
	return recvProc{src: src, tag: tag, then: then}
}

func (r recvProc) run(pc *PC, k func()) {
	pc.blockKind = blockRecv
	pc.be.recv(pc, r.src, r.tag, func(m *comm.Message) {
		pc.consume(m)
		if r.then != nil {
			r.then(pc, m.Data, pc.job.senderOf(m.From))
		}
		k()
	})
}

type waitallProc struct{ reqs func(*PC) []*Req }

// Waitall completes every request returned by reqs, in order (like
// the thread API's Waitall): pending receives block and fill their
// Data/From; nil or completed entries are skipped.
func Waitall(reqs func(*PC) []*Req) Proc { return waitallProc{reqs} }

func (wp waitallProc) run(pc *PC, k func()) {
	rs := wp.reqs(pc)
	var step func(i int)
	step = func(i int) {
		for i < len(rs) && (rs[i] == nil || rs[i].done || !rs[i].isRecv) {
			i++
		}
		if i >= len(rs) {
			k()
			return
		}
		q := rs[i]
		pc.blockKind = blockWaitall
		pc.be.recv(pc, q.src, q.tag, func(m *comm.Message) {
			pc.consume(m)
			q.done, q.Data, q.From = true, m.Data, pc.job.senderOf(m.From)
			pc.tramp.Schedule(func() { step(i + 1) })
		})
	}
	step(0)
}

type migrateProc struct{ strategy loadbalance.Strategy }

// Migrate is the program form of MPI_Migrate: a collective
// load-balancing gate. EVERY rank must reach it (a program where
// some rank exits first deadlocks, as in MPI). When the last rank
// arrives the runtime — the Run/RunParallel driver, at quiescence —
// measures per-rank loads, plans with strategy, moves ULT ranks as
// threads and event ranks as ~180-byte continuation records through
// the same core.Machine.MigrateMany batch, and resumes every rank on
// its assigned PE. The gate sends no messages and never advances vt,
// so predicted time stays bit-identical whether or not anything
// moved.
func Migrate(strategy loadbalance.Strategy) Proc {
	if strategy == nil {
		panic("ampi: Migrate: nil strategy")
	}
	return migrateProc{strategy}
}

func (mp migrateProc) run(pc *PC, k func()) {
	pc.job.gateSetStrategy(mp.strategy)
	pc.be.lbpoint(pc, k)
}

// Sendrecv is the halo-exchange primitive: an eager send followed by
// a blocking receive (deadlock-free for rings and pairs).
func Sendrecv(dest, sendTag int, data func(*PC) []byte, src, recvTag int, then func(pc *PC, data []byte, from int)) Proc {
	return Seq(
		Do(func(pc *PC) { pc.Send(dest, sendTag, data(pc)) }),
		Recv(src, recvTag, then),
	)
}

// ---------------------------------------------------------------
// Collectives
//
// Every collective is compiled from the primitives above plus
// treeFamily — per-source-matched tree edges, deterministic child
// order — so a reduction combines in the same order in every mode and
// on every PE count, keeping results (and therefore vt) bit-identical.
// CollFlat selects the paper-era flat topology; the program variant
// receives from specific sources in rank order (deterministic by
// construction, unlike the thread API's AnySource flat loops).

// family returns pc's parent and children in the job's collective
// topology rooted at root: the k-ary tree for CollTree, the
// topology-aware tree for CollTopoTree, or the one-level star for
// CollFlat.
func family(pc *PC, root int) (parent int, children []int) {
	return collFamily(pc.rank, pc.Size(), &pc.job.opts, root)
}

// Every collective executes a collective schedule (tree.go): a fixed
// per-rank sequence of tree-edge sends and receives. The blocking
// form is literally its nonblocking start half followed immediately
// by its wait half, which is what makes blocking and nonblocking
// collectives bit-identical in virtual time and results — the
// equivalence the CI race tests pin. The nonblocking (start, wait)
// pairs let a program put Work (or halo exchange) between the two
// halves, hiding the collective's latency under compute.
//
// Like MPI, collectives must complete in program order: the wait half
// must run before the same site starts again (enforced per rank), and
// no other collective of the same kind may run between a start and
// its wait — same-kind operations share tags, so an interloper could
// consume the in-flight contributions. Different kinds interleave
// freely.

// collDef identifies one collective site in the program tree. Each
// rank keys its in-flight run state by the site, so one shared
// definition serves every rank and every loop iteration.
type collDef struct{ name string }

// collRun is one rank's in-flight collective: the schedule, the
// cursor, and the completion callback.
type collRun struct {
	acts   []collAct
	next   int
	finish func(*PC)
}

// sendPrefix executes the schedule's pending leading sends.
func (run *collRun) sendPrefix(pc *PC) {
	for run.next < len(run.acts) && run.acts[run.next].send {
		a := run.acts[run.next]
		var payload []byte
		if a.data != nil {
			payload = a.data()
		}
		pc.sendEdge(a.peer, a.tag, payload)
		run.next++
	}
}

// startColl registers the run under its site and fires its leading
// sends — with eager buffering the rank's contribution is in flight
// before the start Proc completes.
func (pc *PC) startColl(d *collDef, run *collRun) {
	if pc.colls == nil {
		pc.colls = make(map[*collDef]*collRun)
	}
	if _, dup := pc.colls[d]; dup {
		panic(fmt.Sprintf("ampi: rank %d: %s started again before its wait completed", pc.rank, d.name))
	}
	run.sendPrefix(pc)
	pc.colls[d] = run
}

// collWaitProc completes a started collective: remaining receives
// park the flow (one at a time — the event backend holds a single
// continuation), dependent sends go out, and finish delivers the
// result.
type collWaitProc struct{ d *collDef }

func (wp collWaitProc) run(pc *PC, k func()) {
	run, ok := pc.colls[wp.d]
	if !ok {
		panic(fmt.Sprintf("ampi: rank %d: wait for %s with no matching start", pc.rank, wp.d.name))
	}
	var step func()
	step = func() {
		run.sendPrefix(pc)
		if run.next >= len(run.acts) {
			delete(pc.colls, wp.d)
			if run.finish != nil {
				run.finish(pc)
			}
			k()
			return
		}
		a := run.acts[run.next]
		pc.blockKind = blockColl
		pc.be.recv(pc, a.peer, a.tag, func(m *comm.Message) {
			pc.consume(m)
			if a.on != nil {
				if err := a.on(m.Data); err != nil {
					panic(err)
				}
			}
			run.next++
			pc.tramp.Schedule(step)
		})
	}
	step()
}

// icoll builds a (start, wait) Proc pair around a run constructor.
func icoll(name string, build func(*PC) *collRun) (start, wait Proc) {
	d := &collDef{name}
	return Do(func(pc *PC) { pc.startColl(d, build(pc)) }), collWaitProc{d}
}

func barrierRun(pc *PC) *collRun {
	parent, children := family(pc, 0)
	return &collRun{acts: barrierActs(parent, children)}
}

func reduceRun(pc *PC, root int, op string, val func(*PC) float64, then func(*PC, float64)) *collRun {
	combine := mustCombiner(op)
	parent, children := family(pc, root)
	acc := new(float64)
	*acc = val(pc)
	run := &collRun{acts: reduceActs(parent, children, acc, combine)}
	if then != nil && parent < 0 {
		run.finish = func(pc *PC) { then(pc, *acc) }
	}
	return run
}

func allreduceRun(pc *PC, op string, val func(*PC) float64, then func(*PC, float64)) *collRun {
	combine := mustCombiner(op)
	parent, children := family(pc, 0)
	acc := new(float64)
	*acc = val(pc)
	run := &collRun{acts: allreduceActs(parent, children, acc, combine)}
	if then != nil {
		run.finish = func(pc *PC) { then(pc, *acc) }
	}
	return run
}

func bcastRun(pc *PC, root int, val func(*PC) []byte, then func(*PC, []byte)) *collRun {
	parent, children := family(pc, root)
	data := new([]byte)
	if parent < 0 {
		*data = val(pc)
	}
	run := &collRun{acts: bcastActs(parent, children, data)}
	if then != nil {
		run.finish = func(pc *PC) { then(pc, *data) }
	}
	return run
}

func gatherRun(pc *PC, root int, val func(*PC) []byte, then func(*PC, [][]byte)) *collRun {
	parent, children := family(pc, root)
	entries := &[]gatherEntry{{rank: pc.rank, data: val(pc)}}
	run := &collRun{acts: gatherActs(parent, children, entries, pc.Size())}
	if then != nil && parent < 0 {
		run.finish = func(pc *PC) {
			out := make([][]byte, pc.Size())
			for _, e := range *entries {
				out[e.rank] = e.data
			}
			then(pc, out)
		}
	}
	return run
}

// Barrier blocks until every rank has entered it: arrivals combine up
// the topology, the release broadcasts down.
func Barrier() Proc {
	start, wait := icoll("Barrier", barrierRun)
	return Seq(start, wait)
}

// Ibarrier is the nonblocking Barrier: start fires the rank's arrival
// up the tree, wait blocks until the release comes down. Statements
// between the two run while other ranks are still arriving.
func Ibarrier() (start, wait Proc) {
	return icoll("Ibarrier", barrierRun)
}

// Reduce combines every rank's value (from val) at root with op
// ("sum", "max", "min"); then runs on root only.
func Reduce(root int, op string, val func(*PC) float64, then func(*PC, float64)) Proc {
	start, wait := icoll("Reduce", func(pc *PC) *collRun { return reduceRun(pc, root, op, val, then) })
	return Seq(start, wait)
}

// Ireduce is the nonblocking Reduce: val is read at start, then runs
// (on root) at wait.
func Ireduce(root int, op string, val func(*PC) float64, then func(*PC, float64)) (start, wait Proc) {
	return icoll("Ireduce", func(pc *PC) *collRun { return reduceRun(pc, root, op, val, then) })
}

// Allreduce combines every rank's value with op and delivers the
// result to then on every rank.
func Allreduce(op string, val func(*PC) float64, then func(*PC, float64)) Proc {
	start, wait := icoll("Allreduce", func(pc *PC) *collRun { return allreduceRun(pc, op, val, then) })
	return Seq(start, wait)
}

// Iallreduce is the nonblocking Allreduce: val is read at start (a
// leaf's contribution is on the wire before start completes), then
// runs with the combined result at wait — so Work placed between the
// two halves overlaps the reduction's tree latency.
func Iallreduce(op string, val func(*PC) float64, then func(*PC, float64)) (start, wait Proc) {
	return icoll("Iallreduce", func(pc *PC) *collRun { return allreduceRun(pc, op, val, then) })
}

// Bcast broadcasts root's data (from val, called on root only) down
// the topology; then runs on every rank with the received copy.
func Bcast(root int, val func(*PC) []byte, then func(*PC, []byte)) Proc {
	start, wait := icoll("Bcast", func(pc *PC) *collRun { return bcastRun(pc, root, val, then) })
	return Seq(start, wait)
}

// Ibcast is the nonblocking Bcast: root's sends fire at start, every
// rank's then runs at wait.
func Ibcast(root int, val func(*PC) []byte, then func(*PC, []byte)) (start, wait Proc) {
	return icoll("Ibcast", func(pc *PC) *collRun { return bcastRun(pc, root, val, then) })
}

// Gather collects every rank's data (from val) at root, indexed by
// rank; then runs on root only. Subtrees pack their entries into one
// message per edge, like the thread API's gatherTree.
func Gather(root int, val func(*PC) []byte, then func(*PC, [][]byte)) Proc {
	start, wait := icoll("Gather", func(pc *PC) *collRun { return gatherRun(pc, root, val, then) })
	return Seq(start, wait)
}

// Igather is the nonblocking Gather: leaf contributions fire at
// start, the root's then runs at wait.
func Igather(root int, val func(*PC) []byte, then func(*PC, [][]byte)) (start, wait Proc) {
	return icoll("Igather", func(pc *PC) *collRun { return gatherRun(pc, root, val, then) })
}

// Scatter distributes chunks (from val, called on root only; one
// chunk per rank) from root; then runs on every rank with its chunk.
func Scatter(root int, val func(*PC) [][]byte, then func(*PC, []byte)) Proc {
	return Call(func(pc *PC) Proc {
		if pc.rank == root {
			return Do(func(pc *PC) {
				chunks := val(pc)
				if len(chunks) != pc.Size() {
					panic(fmt.Sprintf("ampi: Scatter: %d chunks for %d ranks", len(chunks), pc.Size()))
				}
				for i, c := range chunks {
					if i != root {
						pc.sendRaw(i, tagScatter, c)
					}
				}
				if then != nil {
					then(pc, chunks[root])
				}
			})
		}
		return Recv(root, tagScatter, func(pc *PC, data []byte, _ int) {
			if then != nil {
				then(pc, data)
			}
		})
	})
}

// Alltoall exchanges chunks[i] (from val; one per rank) with every
// rank i; then runs with the received chunks indexed by sender.
// Receives match each peer specifically, in rank order, so no payload
// prefix is needed and the exchange is deterministic.
func Alltoall(val func(*PC) [][]byte, then func(*PC, [][]byte)) Proc {
	return Call(func(pc *PC) Proc {
		out := new([][]byte)
		var ps []Proc
		ps = append(ps, Do(func(pc *PC) {
			chunks := val(pc)
			if len(chunks) != pc.Size() {
				panic(fmt.Sprintf("ampi: Alltoall: %d chunks for %d ranks", len(chunks), pc.Size()))
			}
			*out = make([][]byte, pc.Size())
			(*out)[pc.rank] = chunks[pc.rank]
			for i, c := range chunks {
				if i != pc.rank {
					pc.sendRaw(i, tagAlltoall, c)
				}
			}
		}))
		for i := 0; i < pc.Size(); i++ {
			if i == pc.rank {
				continue
			}
			i := i
			ps = append(ps, Recv(i, tagAlltoall, func(pc *PC, data []byte, _ int) {
				(*out)[i] = data
			}))
		}
		if then != nil {
			ps = append(ps, Do(func(pc *PC) { then(pc, *out) }))
		}
		return Seq(ps...)
	})
}

func mustCombiner(op string) func(a, b float64) float64 {
	combine, err := combiner(op)
	if err != nil {
		panic(err)
	}
	return combine
}

// ---------------------------------------------------------------
// Job plumbing

// NewProgram creates size ranks on machine m, each running the shared
// continuation program prog under the mode selected by opts.Mode. In
// ULT mode every rank is a migratable thread interpreting prog; in
// event mode ranks are contiguous state structs dispatched by their
// PEs' loops (event.go).
func NewProgram(m *core.Machine, size int, opts Options, prog Proc) (*Job, error) {
	if prog == nil {
		return nil, fmt.Errorf("ampi: NewProgram: nil program")
	}
	j, err := newJobCommon(m, size, &opts)
	if err != nil {
		return nil, err
	}
	j.prog = prog
	if j.opts.Mode == ModeEvent {
		if j.ev, err = newEventEngine(j); err != nil {
			return nil, err
		}
		return j, nil
	}
	j.rankOf = make(map[comm.EntityID]int, size)
	j.pcs = make([]*PC, size)
	for r := 0; r < size; r++ {
		rank := &Rank{job: j, rank: r}
		pc := &PC{job: j, rank: r, tramp: &sdag.Tramp{}}
		pc.be = ultBE{rank}
		j.pcs[r] = pc
		pe := m.PE(placePE(r, size, m.NumPEs(), j.opts.BlockPlacement))
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy:  j.opts.Strategy,
			StackSize: j.opts.StackSize,
			Globals:   j.opts.Globals,
		}, func(c *converse.Ctx) {
			rank.ctx = c
			runProgram(pc, j.prog)
			if j.opts.Aggregate {
				rank.flushStream()
			}
		})
		if err != nil {
			return nil, fmt.Errorf("ampi: creating rank %d: %w", r, err)
		}
		rank.th = th
		j.ranks = append(j.ranks, rank)
		j.rankOf[comm.EntityID(th.ID())] = r
		if err := m.RegisterEntity(comm.EntityID(th.ID()), pe.Index, rank.deliver); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// runProgram interprets prog to completion on the calling thread (the
// ULT backend): blocking points suspend the thread, and the
// trampoline keeps CPS depth bounded between them.
func runProgram(pc *PC, prog Proc) {
	done := false
	pc.tramp.Schedule(func() { prog.run(pc, func() { done = true }) })
	pc.tramp.Drain()
	if !done {
		panic(fmt.Sprintf("ampi: rank %d program stopped before completion (a Recv with no matching sender?)", pc.rank))
	}
}

// ultBE interprets program blocking points against the rank's thread:
// recv parks the thread via the classic mailbox path, so the
// scheduler charges the usual thread-switch curve per activation.
type ultBE struct{ r *Rank }

func (b ultBE) send(pc *PC, dest, tag int, data []byte) {
	if err := b.r.sendv(dest, tag, data, pc.vt); err != nil {
		panic(err)
	}
}

func (b ultBE) recv(pc *PC, src, tag int, k func(*comm.Message)) {
	k(b.r.recv(src, tag))
}

func (b ultBE) work(pc *PC, ns float64) { b.r.ctx.Work(ns) }

func (b ultBE) pe(pc *PC) int { return b.r.ctx.PE().Index }

// lbpoint suspends the rank's thread at the gate; the driver's
// serviceGate migrates it (as a suspended thread, via the ordinary
// bulk path) and Awakens it on the destination.
func (b ultBE) lbpoint(pc *PC, k func()) {
	pc.job.gateArrive()
	b.r.ctx.Suspend()
	k()
}

func (b ultBE) usestack(pc *PC, n uint64) {
	if n == 0 {
		return
	}
	frame, err := b.r.ctx.PushFrame(n)
	if err != nil {
		panic(fmt.Sprintf("ampi: rank %d UseStack(%d): %v", pc.rank, n, err))
	}
	// Dirty one word per page so the frame is live data the stack
	// strategy must actually move, not just reserved address space.
	space := b.r.ctx.Space()
	for off := uint64(0); off+8 <= n; off += vmem.PageSize {
		if err := space.WriteUint64(frame.Add(off), off); err != nil {
			panic(fmt.Sprintf("ampi: rank %d UseStack dirty: %v", pc.rank, err))
		}
	}
}

// senderOf maps a message's From identity back to its rank.
func (j *Job) senderOf(from comm.EntityID) int {
	if j.ev != nil {
		return j.ev.rankIdx(from)
	}
	if i, ok := j.rankOf[from]; ok {
		return i
	}
	return -1
}

// VT returns rank r's predicted virtual time in nanoseconds (program
// jobs only). It is bit-identical across modes and PE counts for the
// same program and job options.
func (j *Job) VT(r int) float64 {
	if j.ev != nil {
		return j.ev.vtOf(r)
	}
	if j.pcs != nil {
		return j.pcs[r].vt
	}
	return 0
}

// PredictedNs returns the program's predicted parallel completion
// time: the maximum rank VT.
func (j *Job) PredictedNs() float64 {
	var max float64
	for r := 0; r < j.size; r++ {
		if vt := j.VT(r); vt > max {
			max = vt
		}
	}
	return max
}
