package ampi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// topoJob builds an offline Job literal just big enough for family()
// and edgeHops() — the same pattern TestTreeFamilyShape uses.
func topoJob(n, k, nodes, gsize int, block bool) *Job {
	j := &Job{
		size: n,
		opts: Options{
			Collectives:    CollTopoTree,
			TreeArity:      k,
			Topo:           Topology{Nodes: nodes, GroupSize: gsize},
			BlockPlacement: block,
		},
		ranks: make([]*Rank, n),
	}
	for i := range j.ranks {
		j.ranks[i] = &Rank{job: j, rank: i}
	}
	return j
}

// TestTopoFamilyShape checks the topology-aware tree is a well-formed
// spanning tree across sizes, arities, roots, node counts, group
// sizes, and both placements: every non-root has exactly one parent,
// parent/child views agree, and every rank reaches the root.
func TestTopoFamilyShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16, 33, 64} {
		for _, k := range []int{1, 2, 4} {
			for _, nodes := range []int{1, 2, 4, 7, 16} {
				for _, gsize := range []int{1, 2, 4} {
					for _, block := range []bool{false, true} {
						for _, root := range []int{0, 1, n - 1} {
							if root < 0 || root >= n {
								continue
							}
							j := topoJob(n, k, nodes, gsize, block)
							label := fmt.Sprintf("n=%d k=%d nodes=%d g=%d block=%v root=%d",
								n, k, nodes, gsize, block, root)
							parents := make(map[int]int)
							for i := 0; i < n; i++ {
								p, children := j.ranks[i].family(root)
								if i == root && p != -1 {
									t.Fatalf("%s: root has parent %d", label, p)
								}
								if i != root && (p < 0 || p >= n) {
									t.Fatalf("%s: rank %d parent %d out of range", label, i, p)
								}
								for _, c := range children {
									if c < 0 || c >= n || c == i {
										t.Fatalf("%s: rank %d has bad child %d", label, i, c)
									}
									if old, dup := parents[c]; dup {
										t.Fatalf("%s: rank %d has parents %d and %d", label, c, old, i)
									}
									parents[c] = i
								}
							}
							if len(parents) != n-1 {
								t.Fatalf("%s: %d edges, want %d", label, len(parents), n-1)
							}
							for c, p := range parents {
								gotP, _ := j.ranks[c].family(root)
								if gotP != p {
									t.Fatalf("%s: rank %d sees parent %d, parent list says %d", label, c, gotP, p)
								}
								cur, steps := c, 0
								for cur != root {
									next, ok := parents[cur]
									if !ok || steps > n {
										t.Fatalf("%s: rank %d not connected to root", label, c)
									}
									cur, steps = next, steps+1
								}
							}
						}
					}
				}
			}
		}
	}
}

// treeEdgeHops sums edgeHops over every tree edge of the given
// collective algorithm on j's topology.
func treeEdgeHops(j *Job, root int) int {
	total := 0
	for i := range j.ranks {
		p, _ := j.ranks[i].family(root)
		if p >= 0 {
			total += j.edgeHops(i, p)
		}
	}
	return total
}

// TestTopoHopsAtMostRankOrder is the hop-count property on torus
// layouts: for every configuration, the topology-aware tree's edges
// cross no more node-to-node hops than the rank-order tree's, and on
// multi-rank-per-node layouts strictly fewer somewhere.
func TestTopoHopsAtMostRankOrder(t *testing.T) {
	anyStrict := false
	for _, n := range []int{16, 48, 64, 100} {
		for _, nodes := range []int{4, 8, 16} {
			for _, gsize := range []int{2, 4} {
				for _, block := range []bool{false, true} {
					for _, root := range []int{0, 3} {
						topo := topoJob(n, 2, nodes, gsize, block)
						rankOrder := topoJob(n, 2, nodes, gsize, block)
						rankOrder.opts.Collectives = CollTree
						th := treeEdgeHops(topo, root)
						rh := treeEdgeHops(rankOrder, root)
						if th > rh {
							t.Errorf("n=%d nodes=%d g=%d block=%v root=%d: topo %d hops > rank-order %d",
								n, nodes, gsize, block, root, th, rh)
						}
						if th < rh {
							anyStrict = true
						}
					}
				}
			}
		}
	}
	if !anyStrict {
		t.Error("topology tree never beat rank-order on any layout")
	}
}

// TestTopoTreeCollectivesAgree runs the full collective set under the
// rank-order and the topology-aware tree — including a non-zero root
// — and demands bit-identical results. (Values are small integers,
// exact in float64, so combine-order differences cannot hide behind
// rounding.)
func TestTopoTreeCollectivesAgree(t *testing.T) {
	type outcome struct {
		allred float64
		red    float64
		bcast  []byte
		gather [][]byte
	}
	run := func(algo CollAlgo) []outcome {
		m := newMachine(t, 4, nil)
		const ranks, root = 24, 5
		out := make([]outcome, ranks)
		var mu sync.Mutex
		j, err := NewJob(m, ranks, Options{
			Collectives: algo, TreeArity: 2, BlockPlacement: true,
			Topo: Topology{Nodes: 4, GroupSize: 2},
		}, func(r *Rank) {
			ar, err := r.Allreduce("sum", float64(r.Rank()+1))
			if err != nil {
				t.Errorf("Allreduce: %v", err)
				return
			}
			rd, err := r.Reduce(root, "max", float64(r.Rank()*2))
			if err != nil {
				t.Errorf("Reduce: %v", err)
				return
			}
			var seed []byte
			if r.Rank() == root {
				seed = []byte("topo-vs-rank-order")
			}
			bc, err := r.Bcast(root, seed)
			if err != nil {
				t.Errorf("Bcast: %v", err)
				return
			}
			ga, err := r.Gather(root, []byte{byte(r.Rank())})
			if err != nil {
				t.Errorf("Gather: %v", err)
				return
			}
			mu.Lock()
			out[r.Rank()] = outcome{allred: ar, red: rd, bcast: bc, gather: ga}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Run()
		if !j.Done() {
			t.Fatalf("algo %d: job deadlocked", algo)
		}
		return out
	}
	topo, rank := run(CollTopoTree), run(CollTree)
	for rk := range topo {
		if topo[rk].allred != rank[rk].allred || topo[rk].allred != 300 {
			t.Errorf("rank %d allreduce: topo %g rank-order %g want 300", rk, topo[rk].allred, rank[rk].allred)
		}
		if topo[rk].red != rank[rk].red {
			t.Errorf("rank %d reduce: topo %g rank-order %g", rk, topo[rk].red, rank[rk].red)
		}
		if !bytes.Equal(topo[rk].bcast, rank[rk].bcast) {
			t.Errorf("rank %d bcast: topo %q rank-order %q", rk, topo[rk].bcast, rank[rk].bcast)
		}
		if (rk == 5) != (topo[rk].gather != nil) {
			t.Errorf("rank %d gather presence wrong", rk)
		}
		for i := range topo[rk].gather {
			if !bytes.Equal(topo[rk].gather[i], rank[rk].gather[i]) {
				t.Errorf("rank %d gather[%d]: topo %v rank-order %v", rk, i, topo[rk].gather[i], rank[rk].gather[i])
			}
		}
	}
}

// TestTopoOptionValidation covers the new Options surface: negative
// topology fields are rejected, CollTopoTree defaults its node count
// to the PE count, and hop accounting stays off with a zero Topology.
func TestTopoOptionValidation(t *testing.T) {
	m := newMachine(t, 2, nil)
	if _, err := NewJob(m, 2, Options{Topo: Topology{Nodes: -1}}, func(*Rank) {}); err == nil {
		t.Error("negative Topo.Nodes accepted")
	}
	if _, err := NewJob(m, 2, Options{Topo: Topology{Nodes: 2, GroupSize: -3}}, func(*Rank) {}); err == nil {
		t.Error("negative Topo.GroupSize accepted")
	}
	j, err := NewJob(m, 4, Options{Collectives: CollTopoTree}, func(r *Rank) {
		if err := r.Barrier(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("CollTopoTree job with defaulted topology deadlocked")
	}
	if hops := m.Network().TopoHops(); hops == 0 {
		t.Error("defaulted CollTopoTree charged no hops")
	}
	// Zero topology = no hop accounting.
	m2 := newMachine(t, 2, nil)
	j2, err := NewJob(m2, 4, Options{}, func(r *Rank) {
		if err := r.Barrier(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j2.Run()
	if hops := m2.Network().TopoHops(); hops != 0 {
		t.Errorf("topology-blind job charged %d hops", hops)
	}
}
