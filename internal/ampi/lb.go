package ampi

import (
	"fmt"

	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
)

// Migrate is MPI_Migrate: a collective load-balancing point. Every
// rank must call it. The runtime measures each rank's CPU time since
// the previous Migrate, runs the strategy once per epoch, and each
// rank then migrates to its assigned PE (threads move with isomalloc
// + swap-global, so the "application" code above this call never
// changes — the §4.5 configuration). It returns the number of ranks
// the plan moved.
func (r *Rank) Migrate(strategy loadbalance.Strategy) (int, error) {
	if strategy == nil {
		return 0, fmt.Errorf("ampi: Migrate: nil strategy")
	}
	// Everyone must have finished the epoch's work before loads are
	// read.
	if err := r.Barrier(); err != nil {
		return 0, err
	}
	epoch := r.epoch
	r.epoch++
	plan := r.job.planForEpoch(epoch, strategy)
	moved := 0
	for _, to := range plan {
		_ = to
		moved++
	}
	if dest, ok := plan[uint64(r.th.ID())]; ok && dest != r.PE() {
		r.ctx.MigrateTo(dest)
	}
	// Re-synchronize so no rank races ahead while others are still
	// in flight, then reset the load measurements for the next epoch.
	if err := r.Barrier(); err != nil {
		return 0, err
	}
	r.th.ResetCPUTime()
	return moved, nil
}

// planForEpoch computes (once per epoch) the strategy's plan from the
// measured per-rank loads. The load database is exactly what the
// paper's runtime gathers: thread id, current PE, consumed CPU time.
func (j *Job) planForEpoch(epoch uint64, strategy loadbalance.Strategy) loadbalance.Plan {
	j.mu.Lock()
	defer j.mu.Unlock()
	if p, ok := j.lbPlans[epoch]; ok {
		return p
	}
	items := make([]loadbalance.Item, 0, len(j.ranks))
	for _, rk := range j.ranks {
		items = append(items, loadbalance.Item{
			ID:   uint64(rk.th.ID()),
			PE:   rk.th.Scheduler().PE().Index,
			Load: rk.th.CPUTime(),
		})
	}
	p := strategy.Plan(items, j.m.NumPEs())
	j.lbPlans[epoch] = p
	return p
}

// Rebalance is the runtime-driven balancing mode: called from
// *outside* the job at a quiescent point, it plans over the measured
// loads and moves ranks with forced (external) migration — no
// MPI_Migrate call appears in the application at all. Ranks blocked
// in Recv keep waiting on their new PE. The whole plan is issued as
// ONE bulk batch (core.Machine.MigrateMany), so extraction on the
// overloaded PEs overlaps installation on the underloaded ones. It
// returns the number of ranks moved.
func (j *Job) Rebalance(strategy loadbalance.Strategy) (int, error) {
	if strategy == nil {
		return 0, fmt.Errorf("ampi: Rebalance: nil strategy")
	}
	var plan loadbalance.Plan
	if ca, ok := strategy.(loadbalance.CommAware); ok {
		plan = ca.PlanComm(j.LoadDatabase(), j.CommGraph(), j.m.NumPEs())
	} else {
		plan = strategy.Plan(j.LoadDatabase(), j.m.NumPEs())
	}
	var moves []core.Move
	for _, rk := range j.ranks {
		if rk.th.State() == converse.Exited {
			continue
		}
		dest, ok := plan[uint64(rk.th.ID())]
		if !ok || dest == rk.th.Scheduler().PE().Index {
			continue
		}
		moves = append(moves, core.Move{T: rk.th, Dest: dest})
	}
	moved, err := j.m.MigrateMany(moves)
	if err != nil {
		return moved, fmt.Errorf("ampi: Rebalance: %w", err)
	}
	for _, rk := range j.ranks {
		rk.th.ResetCPUTime()
	}
	return moved, nil
}

// CommGraph returns the measured application traffic between ranks
// as edges keyed by thread id — the input to communication-aware
// balancing.
func (j *Job) CommGraph() []loadbalance.Edge {
	j.mu.Lock()
	defer j.mu.Unlock()
	edges := make([]loadbalance.Edge, 0, len(j.traffic))
	for pair, bytes := range j.traffic {
		edges = append(edges, loadbalance.Edge{
			A:     uint64(j.ranks[pair[0]].th.ID()),
			B:     uint64(j.ranks[pair[1]].th.ID()),
			Bytes: bytes,
		})
	}
	return edges
}

// LoadDatabase returns the current measured loads (for harness
// reporting).
func (j *Job) LoadDatabase() []loadbalance.Item {
	items := make([]loadbalance.Item, 0, len(j.ranks))
	for _, rk := range j.ranks {
		items = append(items, loadbalance.Item{
			ID:   uint64(rk.th.ID()),
			PE:   rk.th.Scheduler().PE().Index,
			Load: rk.th.CPUTime(),
		})
	}
	return items
}

// PELoads sums the measured load per PE.
func (j *Job) PELoads() []float64 {
	return loadbalance.PELoads(j.LoadDatabase(), j.m.NumPEs(), nil)
}
