package ampi

import (
	"fmt"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
)

// Migrate is MPI_Migrate: a collective load-balancing point. Every
// rank must call it. The runtime measures each rank's CPU time since
// the previous Migrate, runs the strategy once per epoch, and each
// rank then migrates to its assigned PE (threads move with isomalloc
// + swap-global, so the "application" code above this call never
// changes — the §4.5 configuration). It returns the number of ranks
// the plan moved.
func (r *Rank) Migrate(strategy loadbalance.Strategy) (int, error) {
	if strategy == nil {
		return 0, fmt.Errorf("ampi: Migrate: nil strategy")
	}
	// Everyone must have finished the epoch's work before loads are
	// read.
	if err := r.Barrier(); err != nil {
		return 0, err
	}
	epoch := r.epoch
	r.epoch++
	plan := r.job.planForEpoch(epoch, strategy)
	moved := 0
	for _, to := range plan {
		_ = to
		moved++
	}
	if dest, ok := plan[uint64(r.th.ID())]; ok && dest != r.PE() {
		r.ctx.MigrateTo(dest)
	}
	// Re-synchronize so no rank races ahead while others are still
	// in flight, then reset the load measurements for the next epoch.
	if err := r.Barrier(); err != nil {
		return 0, err
	}
	r.th.ResetCPUTime()
	return moved, nil
}

// planForEpoch computes (once per epoch) the strategy's plan from the
// measured per-rank loads. The load database is exactly what the
// paper's runtime gathers: thread id, current PE, consumed CPU time.
// The measurement walk is a single pass (one LoadSample per thread)
// into a pooled buffer, so an LB step allocates no database.
func (j *Job) planForEpoch(epoch uint64, strategy loadbalance.Strategy) loadbalance.Plan {
	j.mu.Lock()
	defer j.mu.Unlock()
	if p, ok := j.lbPlans[epoch]; ok {
		return p
	}
	buf := loadbalance.AcquireItems()
	*buf = j.collectLoads(*buf)
	p := strategy.Plan(*buf, j.m.NumPEs())
	loadbalance.ReleaseItems(buf)
	j.lbPlans[epoch] = p
	return p
}

// collectLoads appends every rank's (id, PE, load) sample to buf — the
// single-pass measurement walk shared by the MPI_Migrate and
// runtime-driven balancing paths.
func (j *Job) collectLoads(buf []loadbalance.Item) []loadbalance.Item {
	for _, rk := range j.ranks {
		pe, load := rk.th.LoadSample()
		buf = append(buf, loadbalance.Item{ID: uint64(rk.th.ID()), PE: pe, Load: load})
	}
	return buf
}

// Rebalance is the runtime-driven balancing mode: called from
// *outside* the job at a quiescent point (or by the Migrate gate's
// driver), it plans over the measured loads and moves ranks with
// forced migration — no MPI_Migrate call appears in the application
// at all. One strategy serves both backends: ULT ranks move as
// threads (stack images through the bulk pipeline), event ranks as
// continuation records — the SAME core.Machine.MigrateMany batch
// API, so a mixed runtime could balance both populations with one
// plan. Ranks blocked in Recv keep waiting on their new PE. It
// returns the number of ranks moved.
func (j *Job) Rebalance(strategy loadbalance.Strategy) (int, error) {
	if strategy == nil {
		return 0, fmt.Errorf("ampi: Rebalance: nil strategy")
	}
	if j.ev != nil {
		return j.rebalanceEvent(strategy)
	}
	buf := loadbalance.AcquireItems()
	*buf = j.collectLoads(*buf)
	var plan loadbalance.Plan
	if ca, ok := strategy.(loadbalance.CommAware); ok {
		plan = ca.PlanComm(*buf, j.CommGraph(), j.m.NumPEs())
	} else {
		plan = strategy.Plan(*buf, j.m.NumPEs())
	}
	loadbalance.ReleaseItems(buf)
	var moves []core.Move
	for _, rk := range j.ranks {
		if rk.th.State() == converse.Exited {
			continue
		}
		dest, ok := plan[uint64(rk.th.ID())]
		if !ok || dest == rk.th.Scheduler().PE().Index {
			continue
		}
		moves = append(moves, core.Move{T: rk.th, Dest: dest})
	}
	moved, err := j.m.MigrateMany(moves)
	if err != nil {
		return moved, fmt.Errorf("ampi: Rebalance: %w", err)
	}
	for _, rk := range j.ranks {
		rk.th.ResetCPUTime()
	}
	return moved, nil
}

// rebalanceEvent is the event-mode LB step: measure every live
// rank's accumulated busy time (under its lock), plan, then commit —
// ONE comm range-table batch (a single epoch bump re-arms the
// deliver-side owner check), the engine's owner words and dispatch
// charges, and one MigrateMany batch of ~180-byte continuation
// records. The records' PUP round trips and network charges go
// through exactly the machinery a thread move uses, minus eviction,
// vmem imaging, and adoption.
func (j *Job) rebalanceEvent(strategy loadbalance.Strategy) (int, error) {
	e := j.ev
	e.lbMu.Lock()
	defer e.lbMu.Unlock()
	if e.store() == nil {
		return 0, nil // job already completed
	}
	buf := loadbalance.AcquireItems()
	*buf = e.collectEventLoads(*buf)
	plan := strategy.Plan(*buf, j.m.NumPEs())
	loadbalance.ReleaseItems(buf)
	var moves []core.Move
	var rmoves []comm.RangeMove
	// Walk ranks in order (plan map iteration is randomized) so the
	// batch — and everything downstream of it — is deterministic.
	for r := 0; r < e.size; r++ {
		dest, ok := plan[uint64(e.idOf(r))]
		if !ok {
			continue
		}
		src := e.peOf(r)
		if dest == src {
			continue
		}
		rmoves = append(rmoves, comm.RangeMove{Index: r, To: dest})
		moves = append(moves, core.Move{R: eventRecord{e, r}, Src: src, Dest: dest})
	}
	moved, err := e.applyMoves(moves, rmoves)
	e.resetLoads()
	return moved, err
}

// CommGraph returns the measured application traffic between ranks
// as edges keyed by thread id — the input to communication-aware
// balancing.
func (j *Job) CommGraph() []loadbalance.Edge {
	j.mu.Lock()
	defer j.mu.Unlock()
	edges := make([]loadbalance.Edge, 0, len(j.traffic))
	for pair, bytes := range j.traffic {
		edges = append(edges, loadbalance.Edge{
			A:     uint64(j.ranks[pair[0]].th.ID()),
			B:     uint64(j.ranks[pair[1]].th.ID()),
			Bytes: bytes,
		})
	}
	return edges
}

// LoadDatabase returns the current measured loads (for harness
// reporting). The returned slice is the caller's to keep.
func (j *Job) LoadDatabase() []loadbalance.Item {
	return j.collectLoads(make([]loadbalance.Item, 0, len(j.ranks)))
}

// PELoads sums the measured load per PE.
func (j *Job) PELoads() []float64 {
	buf := loadbalance.AcquireItems()
	*buf = j.collectLoads(*buf)
	loads := loadbalance.PELoads(*buf, j.m.NumPEs(), nil)
	loadbalance.ReleaseItems(buf)
	return loads
}
