package ampi

import (
	"testing"

	"migflow/internal/loadbalance"
)

func TestYieldAndWtime(t *testing.T) {
	m := newMachine(t, 1, nil)
	var order []int
	var t0, t1 float64
	for id := 0; id < 2; id++ {
		id := id
		j, err := NewJob(m, 1, Options{}, func(r *Rank) {
			order = append(order, id)
			t0 = r.Wtime()
			r.Yield() // MPI_Yield: let the other job's rank run
			r.Work(1e6)
			t1 = r.Wtime()
			order = append(order, id)
		})
		if err != nil {
			t.Fatal(err)
		}
		j.Start()
	}
	m.RunUntilQuiescent()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// Yield interleaved the two single-rank jobs on the one PE.
	if order[0] == order[1] {
		t.Errorf("no interleave: %v", order)
	}
	if !(t1 > t0) {
		t.Errorf("Wtime did not advance: %g → %g", t0, t1)
	}
	if t1-t0 < 1e-3 { // 1e6 ns = 1e-3 s
		t.Errorf("Wtime delta %g s, want ≥ 0.001", t1-t0)
	}
}

func TestCombinerOps(t *testing.T) {
	for _, op := range []string{"sum", "max", "min"} {
		f, err := combiner(op)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		got := f(3, 5)
		switch op {
		case "sum":
			if got != 8 {
				t.Errorf("sum = %g", got)
			}
		case "max":
			if got != 5 {
				t.Errorf("max = %g", got)
			}
		case "min":
			if got != 3 {
				t.Errorf("min = %g", got)
			}
		}
		// Symmetric check with reversed args.
		if op == "max" && f(5, 3) != 5 {
			t.Error("max not symmetric")
		}
		if op == "min" && f(5, 3) != 3 {
			t.Error("min not symmetric")
		}
	}
	if _, err := combiner("mode"); err == nil {
		t.Error("unknown combiner accepted")
	}
}

func TestReduceBadRootAndOp(t *testing.T) {
	m := newMachine(t, 1, nil)
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		if _, err := r.Reduce(9, "sum", 1); err == nil {
			t.Error("bad Reduce root accepted")
		}
		if _, err := r.Reduce(0, "median", 1); err == nil {
			t.Error("bad Reduce op accepted")
		}
		if _, err := r.Gather(9, nil); err == nil {
			t.Error("bad Gather root accepted")
		}
		if _, err := r.Scatter(9, nil); err == nil {
			t.Error("bad Scatter root accepted")
		}
		if _, err := r.Alltoall(nil); err == nil {
			t.Error("bad Alltoall chunks accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
}

func TestSendrecvBadArgs(t *testing.T) {
	m := newMachine(t, 1, nil)
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		if _, _, err := r.Sendrecv(99, 1, nil, 0, 1); err == nil {
			t.Error("bad Sendrecv dest accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
}

func TestLoadDatabaseShape(t *testing.T) {
	m := newMachine(t, 2, nil)
	j, err := NewJob(m, 4, Options{}, func(r *Rank) {
		r.Work(float64(1000 * (r.Rank() + 1)))
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	db := j.LoadDatabase()
	if len(db) != 4 {
		t.Fatalf("db = %v", db)
	}
	var total float64
	for _, it := range db {
		total += it.Load
	}
	if total != 1000+2000+3000+4000 {
		t.Errorf("total load = %g", total)
	}
	if loads := j.PELoads(); len(loads) != 2 {
		t.Errorf("PELoads = %v", loads)
	}
	_ = loadbalance.Imbalance(j.PELoads())
}
