package ampi

// A 1-D Jacobi relaxation expressed as a continuation Program — the
// workload the mode comparison (and the million-rank headline run)
// uses. Each rank holds one cell, exchanges halo values with its ring
// neighbours every iteration, relaxes, and optionally joins a
// residual Allreduce — the paper's §4.5 stencil shape reduced to its
// communication skeleton. One shared Proc tree serves both modes, so
// predicted time and message counts cannot diverge between them.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// Halo tags (user tag space).
const (
	tagHaloLeft  = 0 // sent toward the left neighbour
	tagHaloRight = 1 // sent toward the right neighbour
)

// JacobiConfig sizes one Jacobi run.
type JacobiConfig struct {
	Ranks int
	Iters int
	// PEs is the simulating-processor count (RunJacobi builds its own
	// machine); default 4.
	PEs int
	// Mode is ampi.ModeULT or ampi.ModeEvent ("" = ULT).
	Mode string

	// HaloBytes is the halo payload size (≥ 8; default 8 — one
	// float64 cell).
	HaloBytes int
	// WorkNs models the per-iteration relaxation compute (default
	// 1000).
	WorkNs float64
	// WorkSkew makes per-rank compute uneven: rank r works
	// WorkNs·(1 + WorkSkew·r/(Ranks-1)) per iteration. Deterministic
	// per rank, so VT stays placement-invariant; it exists to give a
	// load balancer something to fix.
	WorkSkew float64
	// ReduceEvery joins a "max" residual Allreduce every k iterations
	// (0 = never).
	ReduceEvery int
	// Overlap turns each iteration split-phase: halos go out first,
	// the relaxation work runs while they are in flight, and only then
	// are the neighbour halos consumed — so exchange latency hides
	// under compute instead of adding to it. The residual Allreduce
	// pipelines too (Iallreduce): iteration j starts the reduction and
	// iteration j+1 collects it under its own work, so the global
	// residual lags one reduce period. Cell values and residuals are
	// identical to the blocking schedule; only predicted time drops.
	Overlap bool

	// Collectives selects the collective topology (default CollTree;
	// CollTopoTree follows Topo's torus/PE-group hierarchy).
	Collectives CollAlgo
	// Topo is the torus/PE-group shape for hop accounting and
	// CollTopoTree (zero value = topology-blind).
	Topo Topology

	// MigrateAt inserts one collective LB gate (Migrate) after
	// iteration MigrateAt (1-based; 0 = never). The gate measures
	// per-rank loads, plans with LB, and moves ranks — threads in ULT
	// mode, continuation records in event mode.
	MigrateAt int
	// LB is the gate's strategy (default loadbalance.GreedyLB when
	// MigrateAt > 0).
	LB loadbalance.Strategy

	// BlockPlacement maps contiguous rank blocks per PE (so ring
	// neighbours are usually co-resident) instead of round-robin.
	BlockPlacement bool
	// Strategy is the ULT stack-migration technique (§3.4):
	// migrate.StackCopy/Isomalloc/MemoryAlias. Nil uses the runtime
	// default; ignored in event mode, where ranks move as records.
	Strategy converse.StackStrategy
	// StackSize is the per-rank stack in ULT mode (default 16 KiB —
	// the program needs no real frames, but every ULT rank pays for
	// one).
	StackSize uint64
	// StackUse makes each ULT rank push and dirty this many bytes of
	// live frames at startup (pc.UseStack) — the payload every later
	// thread migration must carry. Event ranks ignore it: a
	// continuation record has no stack. Must leave headroom below
	// StackSize.
	StackUse uint64
	// MsgOverheadNs is Options.MsgOverheadNs.
	MsgOverheadNs float64

	// Aggregate routes halo sends through comm's streaming
	// aggregation (Options.Aggregate; ULT mode only). AggPolicy tunes
	// the flush thresholds — including MaxDelay deadlines and the
	// Adaptive backpressure mode, neither of which may change any
	// rank's virtual time (the invariance property test runs random
	// policies through here).
	Aggregate bool
	AggPolicy comm.AggPolicy

	// Observe, when set, runs at the very end of each rank's program
	// with the rank's final cell state — how the cross-process
	// equivalence harness captures per-rank results without keeping
	// Local alive past completion. It runs in whatever process the
	// rank finishes in.
	Observe func(rank int, cell JacobiCell) `json:"-"`
}

// JacobiCell is one rank's final state as seen by Observe.
type JacobiCell struct {
	X      float64 // the cell value
	Resid  float64 // |Δx| of the last relaxation
	Global float64 // last Allreduce result (zero if ReduceEvery = 0)
}

func (c *JacobiConfig) defaults() error {
	if c.Ranks < 1 || c.Iters < 1 {
		return fmt.Errorf("ampi: Jacobi needs ≥ 1 rank and ≥ 1 iteration (got %d, %d)", c.Ranks, c.Iters)
	}
	if c.PEs == 0 {
		c.PEs = 4
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 8
	}
	if c.HaloBytes < 8 {
		return fmt.Errorf("ampi: Jacobi HaloBytes %d must be ≥ 8", c.HaloBytes)
	}
	if c.WorkNs == 0 {
		c.WorkNs = 1000
	}
	if c.StackSize == 0 {
		c.StackSize = 16 << 10
	}
	if c.MigrateAt < 0 || c.MigrateAt > c.Iters {
		return fmt.Errorf("ampi: Jacobi MigrateAt %d must be in [0, Iters]", c.MigrateAt)
	}
	if c.MigrateAt > 0 && c.LB == nil {
		c.LB = loadbalance.GreedyLB{}
	}
	return nil
}

// jacobiState is one rank's program-private state.
type jacobiState struct {
	x           float64 // the cell
	left, right float64 // received halos
	resid       float64 // |Δx| of the last relaxation
	global      float64 // last Allreduce result
}

// JacobiProgram builds the shared step-body program. iters and the
// exchange/relax/reduce structure are identical for every rank; the
// per-rank neighbours come from Call.
func JacobiProgram(cfg JacobiConfig) Proc {
	pack := func(v float64) []byte {
		b := make([]byte, cfg.HaloBytes)
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		return b
	}
	workOf := func(pc *PC) float64 {
		if cfg.WorkSkew == 0 || cfg.Ranks < 2 {
			return cfg.WorkNs
		}
		return cfg.WorkNs * (1 + cfg.WorkSkew*float64(pc.rank)/float64(cfg.Ranks-1))
	}
	// One pipelined residual reduction site for overlap mode: the
	// reducing iteration starts it after relaxing, the next iteration
	// collects it under its own work (or the epilogue does, when the
	// last iteration is the reducing one). One site suffices — at most
	// one reduction is ever outstanding.
	var arStart, arWait Proc
	if cfg.Overlap && cfg.ReduceEvery > 0 {
		arStart, arWait = Iallreduce("max",
			func(pc *PC) float64 { return pc.Local.(*jacobiState).resid },
			func(pc *PC, v float64) { pc.Local.(*jacobiState).global = v })
	}
	sendHalos := Do(func(pc *PC) {
		n := pc.Size()
		st := pc.Local.(*jacobiState)
		pc.Send((pc.rank-1+n)%n, tagHaloLeft, pack(st.x))
		pc.Send((pc.rank+1)%n, tagHaloRight, pack(st.x))
	})
	relax := func(pc *PC) {
		st := pc.Local.(*jacobiState)
		next := (st.left + st.x + st.right) / 3
		st.resid = math.Abs(next - st.x)
		st.x = next
	}
	step := func(i int) Proc {
		return Call(func(pc *PC) Proc {
			n := pc.Size()
			left := (pc.rank - 1 + n) % n
			right := (pc.rank + 1) % n
			// The message my right neighbour sent "toward the left"
			// is mine, and symmetrically for the left.
			recvRight := Recv(right, tagHaloLeft, func(pc *PC, data []byte, _ int) {
				pc.Local.(*jacobiState).right = f64(data)
			})
			recvLeft := Recv(left, tagHaloRight, func(pc *PC, data []byte, _ int) {
				pc.Local.(*jacobiState).left = f64(data)
			})
			reduceNow := cfg.ReduceEvery > 0 && (i+1)%cfg.ReduceEvery == 0
			var ps []Proc
			if cfg.Overlap {
				// Split-phase: halos fly while this iteration's work
				// runs; the previous iteration's reduction (if any)
				// completes under that work too.
				ps = append(ps, sendHalos, Do(func(pc *PC) { pc.Work(workOf(pc)) }))
				if cfg.ReduceEvery > 0 && i > 0 && i%cfg.ReduceEvery == 0 {
					ps = append(ps, arWait)
				}
				ps = append(ps, recvRight, recvLeft, Do(relax))
				if reduceNow {
					ps = append(ps, arStart)
				}
			} else {
				ps = append(ps, sendHalos, recvRight, recvLeft,
					Do(func(pc *PC) {
						relax(pc)
						pc.Work(workOf(pc))
					}))
				if reduceNow {
					ps = append(ps, Allreduce("max",
						func(pc *PC) float64 { return pc.Local.(*jacobiState).resid },
						func(pc *PC, v float64) { pc.Local.(*jacobiState).global = v }))
				}
			}
			if cfg.MigrateAt > 0 && i+1 == cfg.MigrateAt {
				ps = append(ps, Migrate(cfg.LB))
			}
			return Seq(ps...)
		})
	}
	body := []Proc{
		Do(func(pc *PC) {
			// Deterministic per-rank initial condition.
			pc.Local = &jacobiState{x: float64(pc.rank%97) / 97}
			pc.UseStack(cfg.StackUse)
		}),
		For(cfg.Iters, step),
	}
	if cfg.Overlap && cfg.ReduceEvery > 0 && cfg.Iters%cfg.ReduceEvery == 0 {
		// The last iteration started a reduction; collect it.
		body = append(body, arWait)
	}
	if cfg.Observe != nil {
		body = append(body, Do(func(pc *PC) {
			st := pc.Local.(*jacobiState)
			cfg.Observe(pc.rank, JacobiCell{X: st.x, Resid: st.resid, Global: st.global})
		}))
	}
	return Seq(body...)
}

// jacobiLocalPUP serializes jacobiState for cross-process migration
// (Options.LocalPUP).
func jacobiLocalPUP(p *pup.PUPer, local any) (any, error) {
	st, _ := local.(*jacobiState)
	if st == nil {
		st = &jacobiState{}
	}
	for _, f := range []*float64{&st.x, &st.left, &st.right, &st.resid, &st.global} {
		if err := p.Float64(f); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// JacobiResult reports one run.
type JacobiResult struct {
	PredictedNs float64 // max rank VT — mode- and PE-count-invariant
	Msgs        uint64  // network messages sent
	WallNs      float64 // real elapsed time of the whole run
	StepWallNs  float64 // WallNs / Iters
	Moved       int     // ranks moved by the Migrate gate (MigrateAt > 0)
	Hops        uint64  // collective-tree topology hops (zero unless Topo set)
}

// NewJacobi boots a machine sized for the config and builds (but does
// not start) the Jacobi job on it — the build/run split lets the
// benchmarks measure the store's resident footprint before any
// message flows.
func NewJacobi(cfg JacobiConfig) (*core.Machine, *Job, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	mc := core.Config{NumPEs: cfg.PEs}
	if cfg.Mode != ModeEvent {
		// Size each PE's isomalloc slot for its resident rank stacks
		// (plus thread heaps and guard slack) — the ULT backend's
		// per-rank memory is the point of the comparison.
		perPE := uint64((cfg.Ranks + cfg.PEs - 1) / cfg.PEs)
		stackPages := vmem.RoundUpPages(cfg.StackSize)/vmem.PageSize + 2
		if pages := perPE*(stackPages+8) + 1024; pages > core.DefaultIsoSlotPages {
			mc.IsoSlotPages = pages
		}
	}
	m, err := core.NewMachine(mc)
	if err != nil {
		return nil, nil, err
	}
	job, err := NewJacobiOn(m, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, job, nil
}

// NewJacobiOn builds the Jacobi job on an existing machine — the
// entry point sharded workers use, where the machine carries a local
// PE range and a socket transport. cfg.PEs must match the machine.
func NewJacobiOn(m *core.Machine, cfg JacobiConfig) (*Job, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.PEs != m.NumPEs() {
		return nil, fmt.Errorf("ampi: Jacobi config wants %d PEs, machine has %d", cfg.PEs, m.NumPEs())
	}
	return NewProgram(m, cfg.Ranks, Options{
		Mode:           cfg.Mode,
		StackSize:      cfg.StackSize,
		BlockPlacement: cfg.BlockPlacement,
		MsgOverheadNs:  cfg.MsgOverheadNs,
		Strategy:       cfg.Strategy,
		Collectives:    cfg.Collectives,
		Topo:           cfg.Topo,
		Aggregate:      cfg.Aggregate,
		AggPolicy:      cfg.AggPolicy,
		LocalPUP:       jacobiLocalPUP,
	}, JacobiProgram(cfg))
}

// RunJacobi boots a machine sized for the config, runs the Jacobi
// program in the configured mode, and reports predicted time, message
// count, and wall clock.
func RunJacobi(cfg JacobiConfig) (JacobiResult, error) {
	if err := cfg.defaults(); err != nil {
		return JacobiResult{}, err
	}
	m, job, err := NewJacobi(cfg)
	if err != nil {
		return JacobiResult{}, err
	}
	t0 := time.Now()
	job.Run()
	wall := float64(time.Since(t0).Nanoseconds())
	if !job.Done() {
		return JacobiResult{}, fmt.Errorf("ampi: Jacobi run did not complete (%d ranks, mode %s)", cfg.Ranks, job.Mode())
	}
	stats := m.Network().Snapshot()
	return JacobiResult{
		PredictedNs: job.PredictedNs(),
		Msgs:        stats.Sent,
		WallNs:      wall,
		StepWallNs:  wall / float64(cfg.Iters),
		Moved:       job.LBMoved(),
		Hops:        m.Network().TopoHops(),
	}, nil
}
