package ampi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestBcast(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 5
	var mu sync.Mutex
	got := make([][]byte, ranks)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		var data []byte
		if r.Rank() == 2 {
			data = []byte("from root two")
		}
		out, err := r.Bcast(2, data)
		if err != nil {
			t.Errorf("rank %d Bcast: %v", r.Rank(), err)
			return
		}
		mu.Lock()
		got[r.Rank()] = out
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	for rk, d := range got {
		if string(d) != "from root two" {
			t.Errorf("rank %d got %q", rk, d)
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	m := newMachine(t, 1, nil)
	var errs error
	j, err := NewJob(m, 1, Options{}, func(r *Rank) {
		_, errs = r.Bcast(5, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if errs == nil {
		t.Error("bad root accepted")
	}
}

func TestReduceAtRoot(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 6
	var rootGot float64
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		v, err := r.Reduce(0, "max", float64(r.Rank()*10))
		if err != nil {
			t.Errorf("Reduce: %v", err)
			return
		}
		if r.Rank() == 0 {
			rootGot = v
		} else if v != 0 {
			t.Errorf("non-root rank %d got %g", r.Rank(), v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if rootGot != 50 {
		t.Errorf("root max = %g, want 50", rootGot)
	}
}

func TestGatherScatter(t *testing.T) {
	m := newMachine(t, 3, nil)
	const ranks = 4
	var gathered [][]byte
	var mu sync.Mutex
	scattered := make(map[int]string)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		// Gather rank names at root 1.
		out, err := r.Gather(1, []byte(fmt.Sprintf("rank-%d", r.Rank())))
		if err != nil {
			t.Errorf("Gather: %v", err)
			return
		}
		if r.Rank() == 1 {
			gathered = out
		}
		// Scatter chunks from root 1.
		var chunks [][]byte
		if r.Rank() == 1 {
			for i := 0; i < ranks; i++ {
				chunks = append(chunks, []byte(fmt.Sprintf("chunk-%d", i)))
			}
		}
		c, err := r.Scatter(1, chunks)
		if err != nil {
			t.Errorf("Scatter: %v", err)
			return
		}
		mu.Lock()
		scattered[r.Rank()] = string(c)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if len(gathered) != ranks {
		t.Fatalf("gathered %d", len(gathered))
	}
	for i, d := range gathered {
		if string(d) != fmt.Sprintf("rank-%d", i) {
			t.Errorf("gathered[%d] = %q", i, d)
		}
	}
	for i := 0; i < ranks; i++ {
		if scattered[i] != fmt.Sprintf("chunk-%d", i) {
			t.Errorf("scattered[%d] = %q", i, scattered[i])
		}
	}
}

func TestScatterValidation(t *testing.T) {
	m := newMachine(t, 1, nil)
	var err1 error
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 0 {
			_, err1 = r.Scatter(0, [][]byte{{1}}) // wrong chunk count
			// Unblock rank 1 (its Scatter waits for a chunk).
			_ = r.Send(1, 0, nil)
		} else {
			_, _, _ = r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 would block in Scatter; to keep it simple rank 1 never
	// calls Scatter in this test.
	j.Run()
	if err1 == nil {
		t.Error("wrong chunk count accepted")
	}
}

func TestAlltoall(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 4
	var mu sync.Mutex
	results := make(map[int][][]byte)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		chunks := make([][]byte, ranks)
		for i := range chunks {
			chunks[i] = []byte(fmt.Sprintf("%d->%d", r.Rank(), i))
		}
		out, err := r.Alltoall(chunks)
		if err != nil {
			t.Errorf("Alltoall: %v", err)
			return
		}
		mu.Lock()
		results[r.Rank()] = out
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	for rk := 0; rk < ranks; rk++ {
		for from := 0; from < ranks; from++ {
			want := fmt.Sprintf("%d->%d", from, rk)
			if string(results[rk][from]) != want {
				t.Errorf("rank %d from %d = %q, want %q", rk, from, results[rk][from], want)
			}
		}
	}
}

func TestSendrecvRing(t *testing.T) {
	m := newMachine(t, 2, nil)
	const ranks = 5
	var mu sync.Mutex
	froms := make(map[int]int)
	j, err := NewJob(m, ranks, Options{}, func(r *Rank) {
		next := (r.Rank() + 1) % ranks
		prev := (r.Rank() + ranks - 1) % ranks
		data, from, err := r.Sendrecv(next, 3, []byte{byte(r.Rank())}, prev, 3)
		if err != nil {
			t.Errorf("Sendrecv: %v", err)
			return
		}
		if int(data[0]) != prev {
			t.Errorf("rank %d payload from %d", r.Rank(), data[0])
		}
		mu.Lock()
		froms[r.Rank()] = from
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	for rk, from := range froms {
		if from != (rk+ranks-1)%ranks {
			t.Errorf("rank %d got from %d", rk, from)
		}
	}
}

func TestNonblocking(t *testing.T) {
	m := newMachine(t, 2, nil)
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 0 {
			req, err := r.Isend(1, 9, []byte("overlapped"))
			if err != nil {
				t.Errorf("Isend: %v", err)
				return
			}
			if !req.Test() {
				t.Error("eager Isend should be complete")
			}
			if err := r.Waitall([]*Request{req}); err != nil {
				t.Errorf("Waitall: %v", err)
			}
		} else {
			req, err := r.Irecv(0, 9)
			if err != nil {
				t.Errorf("Irecv: %v", err)
				return
			}
			r.Work(1000) // "overlap" computation
			data, from, err := r.Wait(req)
			if err != nil || string(data) != "overlapped" || from != 0 {
				t.Errorf("Wait = %q/%d/%v", data, from, err)
			}
			// Waiting again returns the same completed result.
			if d2, _, _ := r.Wait(req); !bytes.Equal(d2, data) {
				t.Error("second Wait changed result")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job hung")
	}
}

func TestNonblockingValidation(t *testing.T) {
	m := newMachine(t, 1, nil)
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() != 0 {
			return
		}
		if _, err := r.Isend(1, -1, nil); err == nil {
			t.Error("negative Isend tag accepted")
		}
		if _, err := r.Irecv(0, -5); err == nil {
			t.Error("negative Irecv tag accepted")
		}
		// Wait on another rank's request.
		other := &Request{rank: r.job.Rank(1)}
		if _, _, err := r.Wait(other); err == nil {
			t.Error("cross-rank Wait accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
}

func TestIrecvTestBeforeArrival(t *testing.T) {
	m := newMachine(t, 2, nil)
	j, err := NewJob(m, 2, Options{}, func(r *Rank) {
		if r.Rank() == 1 {
			req, err := r.Irecv(0, 4)
			if err != nil {
				t.Error(err)
				return
			}
			if req.Test() {
				t.Error("Test true before any message")
			}
			// Tell rank 0 to send, then wait.
			if err := r.Send(0, 5, nil); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := r.Wait(req); err != nil {
				t.Error(err)
			}
		} else {
			_, _, _ = r.Recv(1, 5)
			_ = r.Send(1, 4, []byte("now"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("job hung")
	}
}
