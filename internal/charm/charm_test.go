package charm

import (
	"testing"

	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/pup"
)

// counter is a chare that counts tokens and forwards them around a
// ring until they have made `laps` full laps.
type counter struct {
	Index int
	Seen  uint64
	Laps  uint64
	ring  *Array // rebound by the test after migration (code, not state)
	done  func(index int)
}

func (c *counter) Pup(p *pup.PUPer) error {
	if err := p.Int(&c.Index); err != nil {
		return err
	}
	if err := p.Uint64(&c.Seen); err != nil {
		return err
	}
	return p.Uint64(&c.Laps)
}

const entryToken = 1

func (c *counter) Recv(ctx *Ctx, entry int, data []byte) {
	if entry != entryToken {
		return
	}
	c.Seen++
	next := (ctx.Index() + 1) % ctx.Len()
	if next == 0 {
		c.Laps++
		if c.Laps >= 2 {
			if c.done != nil {
				c.done(ctx.Index())
			}
			return
		}
	}
	if err := ctx.Send(next, entryToken, nil); err != nil {
		panic(err)
	}
}

func newMachine(t testing.TB, pes int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArrayValidation(t *testing.T) {
	m := newMachine(t, 2)
	if _, err := NewArray(m, 0, func(int) Element { return &counter{} }); err == nil {
		t.Error("zero elements accepted")
	}
}

func TestRingOfChares(t *testing.T) {
	m := newMachine(t, 2)
	finished := -1
	els := make([]*counter, 4)
	a, err := NewArray(m, 4, func(i int) Element {
		els[i] = &counter{Index: i, done: func(idx int) { finished = idx }}
		return els[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	// Elements placed round robin.
	for i := 0; i < 4; i++ {
		if a.PEOf(i) != i%2 {
			t.Errorf("element %d on PE %d", i, a.PEOf(i))
		}
	}
	if err := a.Send(0, 0, entryToken, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	if finished == -1 {
		t.Fatal("ring never completed")
	}
	// Two laps: element 0 saw the initial token plus one wrap... each
	// element saw 2 tokens.
	for i, el := range els {
		if el.Seen != 2 {
			t.Errorf("element %d saw %d tokens", i, el.Seen)
		}
	}
	if a.Delivers() != 8 {
		t.Errorf("delivers = %d, want 8", a.Delivers())
	}
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestBroadcastAndReduction(t *testing.T) {
	m := newMachine(t, 3)
	type red struct{ v float64 }
	result := make(chan red, 1)
	a, err := NewArray(m, 6, func(i int) Element {
		return elementFunc(func(ctx *Ctx, entry int, data []byte) {
			// Contribute index+1 to a sum reduction.
			err := ctx.Contribute(1, "sum", float64(ctx.Index()+1), func(v float64) {
				result <- red{v}
			})
			if err != nil {
				t.Errorf("contribute: %v", err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Broadcast(0, 5, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	select {
	case r := <-result:
		if r.v != 21 {
			t.Errorf("reduction = %g, want 21", r.v)
		}
	default:
		t.Fatal("reduction never completed")
	}
}

// elementFunc adapts a function to Element with empty state.
type elementFunc func(ctx *Ctx, entry int, data []byte)

func (f elementFunc) Pup(*pup.PUPer) error                { return nil }
func (f elementFunc) Recv(c *Ctx, entry int, data []byte) { f(c, entry, data) }

func TestReductionOpMismatch(t *testing.T) {
	m := newMachine(t, 1)
	a, err := NewArray(m, 2, func(i int) Element { return elementFunc(func(*Ctx, int, []byte) {}) })
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Contribute(9, "sum", 1, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Contribute(9, "max", 1, func(float64) {}); err == nil {
		t.Error("op mismatch accepted")
	}
	if err := a.Contribute(10, "max", 1, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Contribute(10, "median", 1, func(float64) {}); err == nil {
		t.Error("unknown op accepted")
	}
}

// tally is a stateful chare that only counts deliveries.
type tally struct{ Seen uint64 }

func (c *tally) Pup(p *pup.PUPer) error { return p.Uint64(&c.Seen) }
func (c *tally) Recv(ctx *Ctx, entry int, data []byte) {
	c.Seen++
	ctx.Work(10)
}

// TestElementMigration migrates a stateful chare mid-run: its state
// (the Seen counter) must survive the PUP round trip, its messages
// must forward, and execution must continue on the new PE.
func TestElementMigration(t *testing.T) {
	m := newMachine(t, 2)
	var el *tally
	a, err := NewArray(m, 1, func(i int) Element {
		c := &tally{}
		if el == nil {
			el = c // remember only the original object
		}
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate state.
	if err := a.Send(0, 0, entryToken, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	if el.Seen != 1 {
		t.Fatalf("Seen = %d", el.Seen)
	}
	if err := a.MigrateElement(0, 1); err != nil {
		t.Fatal(err)
	}
	if a.PEOf(0) != 1 {
		t.Errorf("element on PE %d after migration", a.PEOf(0))
	}
	// The replacement object must carry the old state.
	if err := a.Send(0, 0, entryToken, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	// el points at the OLD object; fetch the live one.
	live := a.elements[0].(*tally)
	if live.Seen != 2 {
		t.Errorf("migrated element Seen = %d, want 2 (state lost?)", live.Seen)
	}
	if live == el {
		t.Error("element object not rebuilt through PUP")
	}
	// Directory errors.
	if err := a.MigrateElement(5, 0); err == nil {
		t.Error("bad index accepted")
	}
	if err := a.MigrateElement(0, 9); err == nil {
		t.Error("bad destination accepted")
	}
	// Destination clock advanced by the shipped bytes.
	if m.PE(1).Clock.Now() == 0 {
		t.Error("migration charged no network time")
	}
}

// weighted is a chare whose entry method does work proportional to
// its index — a graded load like BT-MZ zones.
type weighted struct{ Index int }

func (c *weighted) Pup(p *pup.PUPer) error { return p.Int(&c.Index) }
func (c *weighted) Recv(ctx *Ctx, entry int, data []byte) {
	ctx.Work(float64((c.Index + 1) * 10000))
}

// TestArrayRebalance measures graded chare loads and migrates
// elements to even them out — object-level LB on the event-driven
// layer.
func TestArrayRebalance(t *testing.T) {
	m := newMachine(t, 2)
	a, err := NewArray(m, 8, func(i int) Element { return &weighted{Index: i} })
	if err != nil {
		t.Fatal(err)
	}
	// One measurement round. Round-robin placement puts the heavy
	// elements (odd indices) all on PE 1.
	if err := a.Broadcast(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	before := loadbalance.Imbalance(a.PELoads())
	moved, err := a.Rebalance(loadbalance.GreedyLB{})
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no elements moved")
	}
	// Second round on the new placement: loads even out.
	if err := a.Broadcast(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	after := loadbalance.Imbalance(a.PELoads())
	if !(after < before) {
		t.Errorf("imbalance %g → %g", before, after)
	}
	if after > 1.2 {
		t.Errorf("post-LB imbalance %g", after)
	}
	// Elements still alive and stateful after migration.
	for i := 0; i < 8; i++ {
		if got := a.elements[i].(*weighted).Index; got != i {
			t.Errorf("element %d state = %d after rebalance", i, got)
		}
	}
	if _, err := a.Rebalance(nil); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestSendValidation(t *testing.T) {
	m := newMachine(t, 1)
	a, err := NewArray(m, 2, func(i int) Element { return elementFunc(func(*Ctx, int, []byte) {}) })
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 7, 0, nil); err == nil {
		t.Error("bad element index accepted")
	}
}
