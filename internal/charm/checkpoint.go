package charm

import (
	"fmt"

	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/pup"
)

// Checkpointing chare arrays (§3: "Migration techniques can also be
// used to implement checkpoint/restart for fault tolerance — under
// this model, checkpointing is simply migration to disk or the local
// memory of a remote processor"). Event-driven objects are between
// entry methods whenever the machine is quiescent, so a checkpoint is
// exactly the PUP image of every element plus its placement.

// arrayImage is the wire form of a whole array.
type arrayImage struct {
	N     int
	PEs   []uint64
	Elems [][]byte
}

func (im *arrayImage) Pup(p *pup.PUPer) error {
	if err := p.Int(&im.N); err != nil {
		return err
	}
	if err := p.Uint64s(&im.PEs); err != nil {
		return err
	}
	n := uint32(len(im.Elems))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.IsUnpacking() {
		im.Elems = make([][]byte, n)
	}
	for i := range im.Elems {
		if err := p.Bytes(&im.Elems[i]); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint serializes the whole array — every element through its
// Pup method, plus current placement. Take checkpoints at quiescence
// (e.g. after Machine.RunUntilQuiescent); an element mid-flight
// (migrating) is an error.
func (a *Array) Checkpoint() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	im := &arrayImage{N: a.n}
	// One pooled packer, Reset per element: the buffer converges on
	// the largest element and the loop stops allocating wire buffers
	// (each element's exact-size image is still copied out, since it
	// must outlive the packer).
	p := pup.AcquirePacker()
	defer p.Release()
	for i := 0; i < a.n; i++ {
		el := a.elements[i]
		if el == nil {
			return nil, fmt.Errorf("charm: Checkpoint: element %d is migrating", i)
		}
		p.Reset()
		if err := el.Pup(p); err != nil {
			return nil, fmt.Errorf("charm: Checkpoint: element %d: %w", i, err)
		}
		data := make([]byte, len(p.PackedBytes()))
		copy(data, p.PackedBytes())
		im.Elems = append(im.Elems, data)
		im.PEs = append(im.PEs, uint64(a.pe[i]))
	}
	return pup.Pack(im)
}

// BuddyCheckpoint is the paper's double in-memory checkpoint:
// "checkpointing is simply migration to disk or the local memory of a
// remote processor". Each element's image is kept twice — in its home
// PE's memory and in its buddy's ((home+1) mod P) — so the loss of
// any single PE leaves at least one copy of every element's
// checkpoint on a survivor.
type BuddyCheckpoint struct {
	n      int
	homePE []int // first copy lives here
	buddy  []int // second copy lives here
	images [][]byte
}

// CheckpointToBuddies captures every element twice: one image copy in
// the element's home PE memory, one in its buddy's. Take at
// quiescence.
func (a *Array) CheckpointToBuddies() (*BuddyCheckpoint, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	numPEs := a.m.NumPEs()
	if numPEs < 2 {
		return nil, fmt.Errorf("charm: buddy checkpoint needs ≥ 2 PEs")
	}
	ck := &BuddyCheckpoint{n: a.n}
	p := pup.AcquirePacker()
	defer p.Release()
	for i := 0; i < a.n; i++ {
		el := a.elements[i]
		if el == nil {
			return nil, fmt.Errorf("charm: CheckpointToBuddies: element %d is migrating", i)
		}
		p.Reset()
		if err := el.Pup(p); err != nil {
			return nil, fmt.Errorf("charm: CheckpointToBuddies: element %d: %w", i, err)
		}
		data := make([]byte, len(p.PackedBytes()))
		copy(data, p.PackedBytes())
		ck.images = append(ck.images, data)
		ck.homePE = append(ck.homePE, a.pe[i])
		ck.buddy = append(ck.buddy, (a.pe[i]+1)%numPEs)
	}
	return ck, nil
}

// SurvivesFailure reports whether losing PE failed leaves a complete
// checkpoint: every element keeps at least one of its two copies.
// With distinct home and buddy PEs this always holds for a single
// failure — the point of doubling.
func (ck *BuddyCheckpoint) SurvivesFailure(failed int) bool {
	for i := 0; i < ck.n; i++ {
		if ck.homePE[i] == failed && ck.buddy[i] == failed {
			return false
		}
	}
	return true
}

// RestoreFromBuddies rolls the whole array back to the checkpoint —
// the consistent cut — after PE failed is lost: every element is
// rebuilt from a surviving copy, and elements that lived on the
// failed PE restart on their buddies (where their second copy already
// sits, so no post-failure transfer from a dead node is needed).
func (a *Array) RestoreFromBuddies(ck *BuddyCheckpoint, failed int) error {
	if ck.n != a.n {
		return fmt.Errorf("charm: RestoreFromBuddies: checkpoint has %d elements, array %d", ck.n, a.n)
	}
	if !ck.SurvivesFailure(failed) {
		return fmt.Errorf("charm: RestoreFromBuddies: both copies of some element were on PE %d", failed)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := 0; i < a.n; i++ {
		fresh := a.factory(i)
		if err := pup.Unpack(ck.images[i], fresh); err != nil {
			return fmt.Errorf("charm: RestoreFromBuddies: element %d: %w", i, err)
		}
		a.elements[i] = fresh
		dest := ck.homePE[i]
		if dest == failed {
			dest = ck.buddy[i] // restart where the surviving copy sits
		}
		if a.pe[i] != dest {
			if err := a.m.Network().MigrateEntity(a.entities[i], dest); err != nil {
				return err
			}
			a.pe[i] = dest
		}
	}
	return nil
}

// RestoreArray rebuilds an array on machine m from a checkpoint:
// every element is factory-fresh and then unpacked from its image,
// placed on its recorded PE (folded modulo the new machine's size, so
// a checkpoint restores onto a smaller machine too — restart after
// losing nodes).
func RestoreArray(m *core.Machine, factory Factory, data []byte) (*Array, error) {
	var im arrayImage
	if err := pup.Unpack(data, &im); err != nil {
		return nil, fmt.Errorf("charm: RestoreArray: %w", err)
	}
	if im.N <= 0 || len(im.Elems) != im.N || len(im.PEs) != im.N {
		return nil, fmt.Errorf("charm: RestoreArray: malformed image (n=%d elems=%d pes=%d)", im.N, len(im.Elems), len(im.PEs))
	}
	a := &Array{
		m: m, n: im.N, factory: factory,
		entities:   make([]comm.EntityID, im.N),
		elements:   make([]Element, im.N),
		pe:         make([]int, im.N),
		loadNs:     make([]float64, im.N),
		reductions: make(map[int]*reduction),
	}
	for i := 0; i < im.N; i++ {
		el := factory(i)
		if err := pup.Unpack(im.Elems[i], el); err != nil {
			return nil, fmt.Errorf("charm: RestoreArray: element %d: %w", i, err)
		}
		a.elements[i] = el
		a.pe[i] = int(im.PEs[i]) % m.NumPEs()
		a.entities[i] = newEntityID()
		i := i
		if err := m.RegisterEntity(a.entities[i], a.pe[i], func(pe int, msg *comm.Message) {
			a.dispatch(i, pe, msg)
		}); err != nil {
			return nil, err
		}
	}
	return a, nil
}
