package charm

import (
	"testing"

	"migflow/internal/core"
)

func TestCheckpointRestore(t *testing.T) {
	m := newMachine(t, 2)
	a, err := NewArray(m, 4, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	// Build up state: 3 deliveries to element 1, one to element 3.
	for i := 0; i < 3; i++ {
		if err := a.Send(0, 1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send(0, 3, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()

	blob, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate past the checkpoint.
	if err := a.Send(0, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	if a.elements[1].(*tally).Seen != 4 {
		t.Fatalf("pre-restore state = %d", a.elements[1].(*tally).Seen)
	}

	// Restore into a brand-new machine: the checkpointed state, not
	// the mutated one.
	m2, err := core.NewMachine(core.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreArray(m2, func(i int) Element { return &tally{} }, blob)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("restored Len = %d", b.Len())
	}
	if got := b.elements[1].(*tally).Seen; got != 3 {
		t.Errorf("restored element 1 Seen = %d, want 3", got)
	}
	if got := b.elements[3].(*tally).Seen; got != 1 {
		t.Errorf("restored element 3 Seen = %d, want 1", got)
	}
	if got := b.elements[0].(*tally).Seen; got != 0 {
		t.Errorf("restored element 0 Seen = %d, want 0", got)
	}
	// Placement preserved.
	for i := 0; i < 4; i++ {
		if b.PEOf(i) != a.PEOf(i) {
			t.Errorf("element %d restored on PE %d, was %d", i, b.PEOf(i), a.PEOf(i))
		}
	}
	// The restored array is live: messages keep working.
	if err := b.Send(0, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	m2.RunUntilQuiescent()
	if got := b.elements[1].(*tally).Seen; got != 4 {
		t.Errorf("restored array not live: Seen = %d", got)
	}
	// And the original is unaffected by the restore.
	if a.elements[1].(*tally).Seen != 4 {
		t.Error("original array mutated by restore")
	}
}

// TestRestoreOntoSmallerMachine folds placements onto the surviving
// PEs — restart after losing nodes.
func TestRestoreOntoSmallerMachine(t *testing.T) {
	m := newMachine(t, 4)
	a, err := NewArray(m, 8, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.NewMachine(core.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreArray(m2, func(i int) Element { return &tally{} }, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if pe := b.PEOf(i); pe < 0 || pe >= 2 {
			t.Errorf("element %d on PE %d of a 2-PE machine", i, pe)
		}
	}
}

// TestBuddyCheckpointSurvivesPEFailure walks the §3 double in-memory
// checkpoint story: checkpoint to buddies, lose a PE, roll everything
// back to the consistent cut with failed elements re-homed.
func TestBuddyCheckpointSurvivesPEFailure(t *testing.T) {
	m := newMachine(t, 3)
	a, err := NewArray(m, 6, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	// State: 2 ticks everywhere.
	for round := 0; round < 2; round++ {
		if err := a.Broadcast(0, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntilQuiescent()
	ck, err := a.CheckpointToBuddies()
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 3; pe++ {
		if !ck.SurvivesFailure(pe) {
			t.Errorf("checkpoint does not survive losing PE %d", pe)
		}
	}
	// Progress past the checkpoint (these ticks will be rolled back).
	if err := a.Broadcast(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	// PE 0 "fails": restore the consistent cut.
	if err := a.RestoreFromBuddies(ck, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := a.elements[i].(*tally).Seen; got != 2 {
			t.Errorf("element %d rolled back to %d ticks, want 2", i, got)
		}
		if a.PEOf(i) == 0 {
			t.Errorf("element %d still homed on the failed PE", i)
		}
	}
	// The restored array keeps running on the survivors.
	if err := a.Broadcast(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	for i := 0; i < 6; i++ {
		if got := a.elements[i].(*tally).Seen; got != 3 {
			t.Errorf("element %d after restart = %d ticks, want 3", i, got)
		}
	}
}

func TestBuddyCheckpointValidation(t *testing.T) {
	m1 := newMachine(t, 1)
	a1, err := NewArray(m1, 2, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.CheckpointToBuddies(); err == nil {
		t.Error("buddy checkpoint on one PE accepted")
	}
	m, _ := core.NewMachine(core.Config{NumPEs: 2})
	a, err := NewArray(m, 2, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	ck, err := a.CheckpointToBuddies()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArray(m, 3, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFromBuddies(ck, 0); err == nil {
		t.Error("size-mismatched restore accepted")
	}
}

func TestCheckpointWhileMigratingFails(t *testing.T) {
	m := newMachine(t, 2)
	a, err := NewArray(m, 2, func(i int) Element { return &tally{} })
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	a.elements[0] = nil // simulate in-flight migration
	a.mu.Unlock()
	if _, err := a.Checkpoint(); err == nil {
		t.Error("checkpoint of migrating element accepted")
	}
}

func TestRestoreMalformed(t *testing.T) {
	m := newMachine(t, 2)
	if _, err := RestoreArray(m, func(i int) Element { return &tally{} }, []byte{1, 2, 3}); err == nil {
		t.Error("garbage blob accepted")
	}
}
