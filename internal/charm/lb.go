package charm

import (
	"fmt"

	"migflow/internal/loadbalance"
)

// Object-level load balancing — the lineage the paper cites for
// event-driven objects ([11] "Handling application-induced load
// imbalance using parallel objects", [41]): measure each chare's
// consumed work, plan with a strategy, and migrate elements. Because
// chares only hold state between entry methods, any quiescent moment
// is a safe balancing point.

// LoadDatabase returns the measured per-element loads (element index
// as ID).
func (a *Array) LoadDatabase() []loadbalance.Item {
	a.mu.Lock()
	defer a.mu.Unlock()
	items := make([]loadbalance.Item, a.n)
	for i := 0; i < a.n; i++ {
		items[i] = loadbalance.Item{ID: uint64(i), PE: a.pe[i], Load: a.loadNs[i]}
	}
	return items
}

// PELoads sums measured element loads per PE.
func (a *Array) PELoads() []float64 {
	return loadbalance.PELoads(a.LoadDatabase(), a.m.NumPEs(), nil)
}

// Rebalance plans over the measured loads and migrates elements
// accordingly, then resets the measurements for the next epoch. Call
// at quiescence. It returns the number of elements moved.
func (a *Array) Rebalance(strategy loadbalance.Strategy) (int, error) {
	if strategy == nil {
		return 0, fmt.Errorf("charm: Rebalance: nil strategy")
	}
	plan := strategy.Plan(a.LoadDatabase(), a.m.NumPEs())
	moved := 0
	for i := 0; i < a.n; i++ {
		dest, ok := plan[uint64(i)]
		if !ok || dest == a.PEOf(i) {
			continue
		}
		if err := a.MigrateElement(i, dest); err != nil {
			return moved, fmt.Errorf("charm: Rebalance: element %d: %w", i, err)
		}
		moved++
	}
	a.mu.Lock()
	for i := range a.loadNs {
		a.loadNs[i] = 0
	}
	a.mu.Unlock()
	return moved, nil
}
