// Package charm is a Charm++-like parallel-object layer: arrays of
// location-independent, message-driven objects (chares) with entry
// methods, broadcasts, reductions, and the easy migration of §3.2 —
// "the entire execution state normally consists of a few application
// data structures and the name of the next event to run, so to
// migrate to a new processor we need only copy these data structures
// to a new processor and begin executing the next event."
//
// Elements serialize through PUP; migration moves an element's bytes
// between PEs between entry-method executions, and the communication
// directory forwards in-flight messages.
package charm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/pup"
)

// entityBase keeps chare entity ids out of the thread-id space.
var nextEntity atomic.Uint64

func newEntityID() comm.EntityID {
	return comm.EntityID(1<<32 + nextEntity.Add(1))
}

// Element is one chare: user state plus an entry-method dispatcher.
// Recv must not block — event-driven objects suspend by returning
// (§2.4); multi-step coordination belongs in an sdag program or a
// coro state machine inside the element.
type Element interface {
	pup.Pupable
	Recv(ctx *Ctx, entry int, data []byte)
}

// Factory creates an empty element for index i (initial placement and
// migration unpacking).
type Factory func(i int) Element

// Array is a distributed chare array of n elements, placed
// round-robin over the machine's PEs at creation.
type Array struct {
	m       *core.Machine
	n       int
	factory Factory

	mu       sync.Mutex
	entities []comm.EntityID
	elements []Element // index → live element (nil while migrating)
	pe       []int     // index → current PE
	loadNs   []float64 // index → measured work since last rebalance
	delivers uint64

	reductions map[int]*reduction
}

type reduction struct {
	op       string
	value    float64
	count    int
	callback func(float64)
}

// NewArray creates and places n elements.
func NewArray(m *core.Machine, n int, factory Factory) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("charm: array size %d must be ≥ 1", n)
	}
	a := &Array{
		m: m, n: n, factory: factory,
		entities:   make([]comm.EntityID, n),
		elements:   make([]Element, n),
		pe:         make([]int, n),
		loadNs:     make([]float64, n),
		reductions: make(map[int]*reduction),
	}
	for i := 0; i < n; i++ {
		a.entities[i] = newEntityID()
		a.elements[i] = factory(i)
		a.pe[i] = i % m.NumPEs()
		i := i
		if err := m.RegisterEntity(a.entities[i], a.pe[i], func(pe int, msg *comm.Message) {
			a.dispatch(i, pe, msg)
		}); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Len returns the element count.
func (a *Array) Len() int { return a.n }

// PEOf returns the PE currently hosting element i.
func (a *Array) PEOf(i int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pe[i]
}

// Delivers returns how many entry methods have executed.
func (a *Array) Delivers() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.delivers
}

// dispatch runs one entry method (event-driven: a plain call).
func (a *Array) dispatch(i, pe int, msg *comm.Message) {
	a.mu.Lock()
	el := a.elements[i]
	a.delivers++
	a.mu.Unlock()
	if el == nil {
		panic(fmt.Sprintf("charm: element %d received a message while migrating", i))
	}
	// A chare's execution is driven by the message: the entry method
	// cannot begin before the message arrives.
	a.m.PE(pe).Clock.AdvanceTo(msg.Arrival)
	el.Recv(&Ctx{array: a, index: i, pe: pe}, msg.Tag, msg.Data)
}

// Send invokes entry method entry on element to, from PE fromPE.
func (a *Array) Send(fromPE, to, entry int, data []byte) error {
	if to < 0 || to >= a.n {
		return fmt.Errorf("charm: send to element %d of %d", to, a.n)
	}
	msg := &comm.Message{
		To:       a.entities[to],
		Tag:      entry,
		Data:     data,
		SendTime: a.m.PE(fromPE).Clock.Now(),
	}
	return a.m.Network().Endpoint(fromPE).Send(msg)
}

// Broadcast invokes entry on every element.
func (a *Array) Broadcast(fromPE, entry int, data []byte) error {
	for i := 0; i < a.n; i++ {
		if err := a.Send(fromPE, i, entry, data); err != nil {
			return err
		}
	}
	return nil
}

// MigrateElement moves element i to PE dest between entry-method
// executions: PUP out, PUP into a factory-fresh element, update the
// directory so in-flight messages forward.
func (a *Array) MigrateElement(i, dest int) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("charm: migrate of element %d of %d", i, a.n)
	}
	if dest < 0 || dest >= a.m.NumPEs() {
		return fmt.Errorf("charm: migrate to PE %d of %d", dest, a.m.NumPEs())
	}
	a.mu.Lock()
	el := a.elements[i]
	a.elements[i] = nil // in flight
	a.mu.Unlock()
	data, err := pup.Pack(el)
	if err != nil {
		return fmt.Errorf("charm: packing element %d: %w", i, err)
	}
	fresh := a.factory(i)
	if err := pup.Unpack(data, fresh); err != nil {
		return fmt.Errorf("charm: unpacking element %d: %w", i, err)
	}
	if err := a.m.Network().MigrateEntity(a.entities[i], dest); err != nil {
		return err
	}
	a.mu.Lock()
	a.elements[i] = fresh
	from := a.pe[i]
	a.pe[i] = dest
	a.mu.Unlock()
	// The element's bytes crossed the network.
	cost := a.m.Network().Latency().Cost(len(data))
	a.m.PE(dest).Clock.AdvanceTo(a.m.PE(from).Clock.Now() + cost)
	return nil
}

// Contribute adds a value to reduction id with the given op ("sum",
// "max"); when all elements have contributed, callback runs once with
// the result (the first contributor's callback wins, mirroring a
// reduction client on the root).
func (a *Array) Contribute(id int, op string, v float64, callback func(float64)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	red, ok := a.reductions[id]
	if !ok {
		red = &reduction{op: op, value: v, callback: callback}
		a.reductions[id] = red
		red.count = 1
	} else {
		if red.op != op {
			return fmt.Errorf("charm: reduction %d op mismatch: %s vs %s", id, red.op, op)
		}
		switch op {
		case "sum":
			red.value += v
		case "max":
			if v > red.value {
				red.value = v
			}
		default:
			return fmt.Errorf("charm: unknown reduction op %q", op)
		}
		red.count++
	}
	if red.count == a.n {
		delete(a.reductions, id)
		cb := red.callback
		val := red.value
		a.mu.Unlock()
		cb(val)
		a.mu.Lock()
	}
	return nil
}

// Ctx is the context an entry method receives.
type Ctx struct {
	array *Array
	index int
	pe    int
}

// Index returns the element's array index.
func (c *Ctx) Index() int { return c.index }

// Len returns the array's element count.
func (c *Ctx) Len() int { return c.array.n }

// PE returns the processor executing this entry method.
func (c *Ctx) PE() int { return c.pe }

// Send invokes an entry method on a peer element.
func (c *Ctx) Send(to, entry int, data []byte) error {
	return c.array.Send(c.pe, to, entry, data)
}

// Contribute joins a reduction.
func (c *Ctx) Contribute(id int, op string, v float64, callback func(float64)) error {
	return c.array.Contribute(id, op, v, callback)
}

// Work charges ns of modeled computation to the executing PE and to
// this element's measured load (the object-level load database).
func (c *Ctx) Work(ns float64) {
	c.array.m.PE(c.pe).Clock.Advance(ns)
	c.array.mu.Lock()
	c.array.loadNs[c.index] += ns
	c.array.mu.Unlock()
}
