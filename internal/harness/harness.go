// Package harness regenerates every table and figure of the paper's
// evaluation (§4) as plain-text reports and as data points consumable
// by the benchmark suite and the cmd/ tools. One function per
// experiment; DESIGN.md's per-experiment index maps each to its
// module stack.
package harness

import (
	"fmt"
	"io"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/flows"
	"migflow/internal/loadbalance"
	"migflow/internal/mem"
	"migflow/internal/migrate"
	"migflow/internal/npb"
	"migflow/internal/platform"
	"migflow/internal/vmem"
)

// Table1 renders the portability matrix of migratable-thread
// techniques (§3.4.4) from the platform capability predicates.
func Table1(w io.Writer) {
	profs := platform.Profiles()
	fmt.Fprintf(w, "Table 1: portability of migratable thread techniques\n")
	fmt.Fprintf(w, "%-14s", "Thread")
	for _, name := range platform.Table1Order() {
		fmt.Fprintf(w, "%-10s", name)
	}
	fmt.Fprintln(w)
	for _, tech := range platform.Techniques() {
		fmt.Fprintf(w, "%-14s", tech)
		for _, name := range platform.Table1Order() {
			fmt.Fprintf(w, "%-10s", profs[name].Supports(tech))
		}
		fmt.Fprintln(w)
	}
}

// Table2Row is one probed limit row.
type Table2Row struct {
	Kind   flows.Kind
	Limits map[string]int // platform name → probed max
}

// Table2 probes each mechanism's practical creation limit on every
// platform (create-until-failure against the simulated kernels).
func Table2(w io.Writer, cap int) ([]Table2Row, error) {
	kinds := []flows.Kind{flows.KindProcess, flows.KindKThread, flows.KindUserThread}
	names := platform.Table2Order()
	var rows []Table2Row
	fmt.Fprintf(w, "Table 2: practical limits for flow-of-control mechanisms (probe cap %d)\n", cap)
	fmt.Fprintf(w, "%-16s", "Flow of control")
	for _, n := range names {
		fmt.Fprintf(w, "%-14s", n)
	}
	fmt.Fprintln(w)
	for _, kind := range kinds {
		row := Table2Row{Kind: kind, Limits: map[string]int{}}
		fmt.Fprintf(w, "%-16s", kind)
		for _, n := range names {
			prof, err := platform.ByName(n)
			if err != nil {
				return nil, err
			}
			m, err := flows.New(kind, prof, nil)
			if err != nil {
				return nil, err
			}
			got := m.Probe(cap)
			row.Limits[n] = got
			suffix := ""
			if got == cap {
				suffix = "+"
			}
			fmt.Fprintf(w, "%-14s", fmt.Sprintf("%d%s", got, suffix))
		}
		fmt.Fprintln(w)
		rows = append(rows, row)
	}
	return rows, nil
}

// FigureSwitchCurves regenerates one of Figures 4-8: context-switch
// time vs number of flows for every mechanism on the platform.
func FigureSwitchCurves(w io.Writer, profName string, counts []int, rounds int) (map[flows.Kind][]flows.Point, error) {
	prof, err := platform.ByName(profName)
	if err != nil {
		return nil, err
	}
	out := make(map[flows.Kind][]flows.Point)
	fmt.Fprintf(w, "Context switch time vs number of flows on %s (%s)\n", prof.Display, prof.Name)
	fmt.Fprintf(w, "%-8s", "flows")
	for _, k := range flows.Kinds() {
		fmt.Fprintf(w, "%14s", k)
	}
	fmt.Fprintln(w, "   (ns/switch, simulated)")
	for _, k := range flows.Kinds() {
		pts, err := flows.Curve(k, prof, counts, rounds)
		if err != nil {
			continue // mechanism unsupported on this platform
		}
		out[k] = pts
	}
	for _, n := range counts {
		fmt.Fprintf(w, "%-8d", n)
		for _, k := range flows.Kinds() {
			v := "-"
			for _, pt := range out[k] {
				if pt.Flows == n {
					v = fmt.Sprintf("%.0f", pt.NsPerYield)
				}
			}
			fmt.Fprintf(w, "%14s", v)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// Fig9Point is one Figure 9 measurement: context-switch cost at a
// stack size for one migratable-thread technique.
type Fig9Point struct {
	Strategy  string
	StackSize uint64
	WallNs    float64 // real wall-clock ns per switch (this repo's work)
	VirtualNs float64 // simulated ns per switch (platform cost model)
}

// Fig9Measure runs the Figure 9 microbenchmark: two threads on one PE
// yield back and forth `switches` times, each having consumed
// (stackSize - one page) of its stack via alloca (PushFrame); the
// per-switch cost is reported in both time bases.
func Fig9Measure(strategy converse.StackStrategy, stackSize uint64, switches int) (Fig9Point, error) {
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, 2*vmem.RoundUpPages(stackSize)+512*vmem.PageSize, 1)
	if err != nil {
		return Fig9Point{}, err
	}
	pe, err := converse.NewPE(converse.PEConfig{
		Index: 0, Profile: platform.LinuxX86(), IsoRegion: region,
	})
	if err != nil {
		return Fig9Point{}, err
	}
	use := stackSize - vmem.PageSize // headroom like a real frame
	body := func(c *converse.Ctx) {
		if _, err := c.PushFrame(use); err != nil {
			panic(err)
		}
		// Touch the frame so stack-copying moves real, dirty bytes.
		if err := c.Space().Write(c.Thread().SP(), []byte("dirty")); err != nil {
			panic(err)
		}
		for i := 0; i < switches; i++ {
			c.Yield()
		}
	}
	for i := 0; i < 2; i++ {
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{
			Strategy:  strategy,
			StackSize: stackSize,
		}, body)
		if err != nil {
			return Fig9Point{}, err
		}
		pe.Sched.Start(th)
	}
	v0 := pe.Clock.Now()
	t0 := time.Now()
	pe.Sched.RunUntilIdle()
	wall := time.Since(t0)
	nswitch := float64(pe.Sched.Switches())
	return Fig9Point{
		Strategy:  strategy.Name(),
		StackSize: stackSize,
		WallNs:    float64(wall.Nanoseconds()) / nswitch,
		VirtualNs: (pe.Clock.Now() - v0) / nswitch,
	}, nil
}

// Figure9 sweeps stack sizes for the three techniques.
func Figure9(w io.Writer, sizes []uint64, switches int) ([]Fig9Point, error) {
	var out []Fig9Point
	fmt.Fprintln(w, "Figure 9: context switch time vs stack size (x86 Linux profile)")
	fmt.Fprintf(w, "%-10s", "stack")
	for _, s := range migrate.All() {
		fmt.Fprintf(w, "%16s", s.Name()+"(sim)")
	}
	for _, s := range migrate.All() {
		fmt.Fprintf(w, "%17s", s.Name()+"(wall)")
	}
	fmt.Fprintln(w, "   ns/switch")
	for _, size := range sizes {
		var sim, wall []string
		for _, s := range migrate.All() {
			pt, err := Fig9Measure(s, size, switches)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
			sim = append(sim, fmt.Sprintf("%.0f", pt.VirtualNs))
			wall = append(wall, fmt.Sprintf("%.0f", pt.WallNs))
		}
		fmt.Fprintf(w, "%-10s", byteSize(size))
		for _, v := range sim {
			fmt.Fprintf(w, "%16s", v)
		}
		for _, v := range wall {
			fmt.Fprintf(w, "%17s", v)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// Figure12 runs the BT-MZ cases with and without LB.
func Figure12(w io.Writer, steps int) ([][2]*npb.Result, error) {
	return Figure12Opt(w, steps, ampi.CollTree, false, comm.AggPolicy{})
}

// Figure12Opt is Figure12 with the collective algorithm, boundary-
// exchange aggregation, and flush policy selectable; aggregated runs
// report the envelope traffic alongside the timing columns.
func Figure12Opt(w io.Writer, steps int, coll ampi.CollAlgo, aggregate bool, pol comm.AggPolicy) ([][2]*npb.Result, error) {
	return Figure12With(w, steps, Fig12Config{Coll: coll, Aggregate: aggregate, AggPolicy: pol})
}

// Fig12Config selects the optional mechanisms for a Figure 12 run:
// collective algorithm, boundary-exchange aggregation, the measured
// load balancer for the "LB" column (nil means GreedyLB), and idle-
// cycle work stealing (off by default — the deterministic path).
type Fig12Config struct {
	Coll      ampi.CollAlgo
	Aggregate bool
	AggPolicy comm.AggPolicy
	// LB is the strategy for the balanced column (nil → GreedyLB).
	LB loadbalance.Strategy
	// Steal drives both columns with the wall-clock parallel runner and
	// idle-cycle stealing instead of the deterministic sequential pump.
	Steal bool
	// WorkChunks splits each rank's per-step solve into this many
	// Work+Yield slices (steal points); ≤1 keeps the single-shot solve.
	WorkChunks int
	// Overlap makes the halo exchange split-phase (Params.Overlap):
	// receives posted and halos sent before the solve, completed after
	// it, so exchange cost hides under compute.
	Overlap bool
	// ReduceEvery joins a residual-proxy Allreduce every k steps —
	// pipelined (Iallreduce) when Overlap is on.
	ReduceEvery int
	// Topo charges collective tree edges logical torus hops
	// (Params.Topo) and adds a hops column to the table.
	Topo ampi.Topology
}

// Figure12With is the fully-configurable Figure 12 driver. With the
// zero Fig12Config (plus a Coll choice) its output is byte-identical
// to Figure12Opt; enabling Steal appends a per-case stolen-threads
// column from the runtime's steal counters.
func Figure12With(w io.Writer, steps int, cfg Fig12Config) ([][2]*npb.Result, error) {
	strat := cfg.LB
	if strat == nil {
		strat = loadbalance.GreedyLB{}
	}
	var out [][2]*npb.Result
	mode := ""
	if cfg.Coll == ampi.CollFlat {
		mode += ", flat collectives"
	}
	if cfg.Aggregate {
		mode += ", aggregated exchange"
	}
	if cfg.Steal {
		mode += ", idle stealing"
	}
	if cfg.Overlap {
		mode += ", split-phase overlap"
	}
	topo := cfg.Topo.Nodes > 0 || cfg.Coll == ampi.CollTopoTree
	fmt.Fprintf(w, "Figure 12: NAS BT-MZ with and without thread-migration load balancing%s\n", mode)
	fmt.Fprintf(w, "%-10s %14s %14s %9s %7s %10s", "case", "noLB time(ms)", "LB time(ms)", "speedup", "moved", "envelopes")
	if cfg.Steal {
		fmt.Fprintf(w, " %7s", "stolen")
	}
	if topo {
		fmt.Fprintf(w, " %7s", "hops")
	}
	fmt.Fprintln(w)
	for _, p := range npb.Cases(steps, nil) {
		p.Collectives = cfg.Coll
		p.Aggregate = cfg.Aggregate
		p.AggPolicy = cfg.AggPolicy
		p.Steal = cfg.Steal
		p.WorkChunks = cfg.WorkChunks
		p.Overlap = cfg.Overlap
		p.ReduceEvery = cfg.ReduceEvery
		p.Topo = cfg.Topo
		base, err := npb.Run(p)
		if err != nil {
			return nil, err
		}
		q := p
		q.LB = strat
		lb, err := npb.Run(q)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %8.2fx %7d %10d",
			p.Label(), base.TimeNs/1e6, lb.TimeNs/1e6, base.TimeNs/lb.TimeNs, lb.MovedRanks, lb.Envelopes)
		if cfg.Steal {
			fmt.Fprintf(w, " %7d", base.Steals.Moved+lb.Steals.Moved)
		}
		if topo {
			fmt.Fprintf(w, " %7d", lb.TopoHops)
		}
		fmt.Fprintln(w)
		out = append(out, [2]*npb.Result{base, lb})
	}
	return out, nil
}

// BlockingModels runs the §2.2-2.3 blocking-call study: the makespan
// of an I/O-mixed workload on one processor under N:1 user threads,
// 1:1 kernel threads, N:M hybrids, and scheduler activations.
func BlockingModels(w io.Writer, prof *platform.Profile) (map[string]float64, error) {
	work := flows.BlockingWorkload{Flows: 16, Bursts: 10, ComputeNs: 20_000, IONs: 100_000}
	cases := []struct {
		name  string
		model flows.BlockingModel
		m     int
	}{
		{"N:1 user threads", flows.ModelN1, 0},
		{"N:M hybrid (M=2)", flows.ModelNM, 2},
		{"N:M hybrid (M=8)", flows.ModelNM, 8},
		{"1:1 kernel threads", flows.Model1to1, 0},
		{"scheduler activations", flows.ModelActivations, 0},
	}
	fmt.Fprintf(w, "Blocking calls under each threading model (§2.2-2.3) on %s\n", prof.Name)
	fmt.Fprintf(w, "  workload: %d flows × %d bursts of %.0f µs compute + %.0f µs blocking I/O\n",
		work.Flows, work.Bursts, work.ComputeNs/1000, work.IONs/1000)
	out := make(map[string]float64)
	for _, c := range cases {
		v, err := flows.SimulateBlocking(c.model, prof, work, c.m)
		if err != nil {
			return nil, err
		}
		out[c.name] = v
		fmt.Fprintf(w, "  %-24s %10.2f ms\n", c.name, v/1e6)
	}
	fmt.Fprintln(w, "  (N:1 serializes every blocking call — the §2.3 disadvantage;")
	fmt.Fprintln(w, "   interception/N:M/activations recover the overlap at user-switch prices)")
	return out, nil
}

// IsoCapacityPoint is one row of the §3.4.2 address-space experiment.
type IsoCapacityPoint struct {
	Bits      int
	StackSize uint64
	Threads   int
}

// IsoCapacity reproduces §3.4.2's address-space arithmetic as a live
// probe: allocate isomalloc stack slabs (address space only — frames
// are never touched, exactly like remote threads' claims) until the
// per-PE slot is exhausted, on a 32-bit node versus a 64-bit node.
// The paper: "Even if the entire 32-bit address space were available
// for thread stacks, if each thread uses 1 megabyte, there would only
// be room for 4,096 threads."
func IsoCapacity(w io.Writer, stackSizes []uint64, cap int) ([]IsoCapacityPoint, error) {
	type machineClass struct {
		bits      int
		slotBytes uint64
	}
	classes := []machineClass{
		{32, 2 << 30},  // a 32-bit node: ~2 GiB usable for the region
		{64, 64 << 30}, // a 64-bit node: terabytes available; 64 GiB region here
	}
	var out []IsoCapacityPoint
	fmt.Fprintln(w, "Isomalloc address-space capacity (§3.4.2): max threads per PE before the slot exhausts")
	fmt.Fprintf(w, "%-12s %14s %14s\n", "stack size", "32-bit node", "64-bit node")
	for _, size := range stackSizes {
		var row []int
		for _, mc := range classes {
			region, err := mem.NewIsoRegion(mem.DefaultIsoBase, mc.slotBytes, 1)
			if err != nil {
				return nil, err
			}
			iso := mem.NewIsoAllocator(region, 0)
			pages := vmem.RoundUpPages(size)/vmem.PageSize + 1 // + guard page
			n := 0
			for n < cap {
				if _, err := iso.AllocSlab(pages); err != nil {
					break
				}
				n++
			}
			row = append(row, n)
			out = append(out, IsoCapacityPoint{Bits: mc.bits, StackSize: size, Threads: n})
		}
		plus := func(n int) string {
			if n == cap {
				return fmt.Sprintf("%d+", n)
			}
			return fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "%-12s %14s %14s\n", byteSize(size), plus(row[0]), plus(row[1]))
	}
	fmt.Fprintln(w, "(paper: a full 4 GiB space fits only 4,096 one-megabyte threads;")
	fmt.Fprintln(w, " 64-bit machines \"never suffer from this problem\")")
	return out, nil
}

func byteSize(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
