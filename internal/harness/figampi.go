package harness

import (
	"fmt"
	"io"
	"runtime"

	"migflow/internal/ampi"
)

// JacobiModePoint is one JacobiMode row: the same AMPI Jacobi job run
// through both rank backends.
type JacobiModePoint struct {
	PEs         int
	RanksPE     int
	ULTStepNs   float64 // real wall clock per iteration, ULT ranks
	EventStepNs float64 // real wall clock per iteration, event ranks
	PredictedNs float64 // predicted target time of the whole run (mode-invariant)
}

// JacobiBackend runs the AMPI 1-D Jacobi workload in one mode across
// simulating-PE counts — the §4 flows question asked of AMPI itself
// rather than BigSim: what does it cost to give every MPI rank a
// user-level thread (stack + scheduler slot) versus an event-driven
// continuation record?
// migrateAt > 0 inserts one collective LB gate after that iteration
// (ULT ranks move as threads, event ranks as continuation records)
// and adds a moved-ranks column.
// overlap runs the split-phase schedule (halos and the pipelined
// residual Iallreduce fly under the relaxation work) instead of the
// blocking one — same cell values, lower predicted time.
func JacobiBackend(w io.Writer, ranks, iters int, peCounts []int, mode string, migrateAt int, overlap bool) error {
	flowDesc := "one ULT each"
	if mode == ampi.ModeEvent {
		flowDesc = "continuation records"
	}
	if overlap {
		flowDesc += ", split-phase overlap"
	}
	fmt.Fprintf(w, "AMPI Jacobi: wall time per iteration (%d ranks, %s)\n", ranks, flowDesc)
	fmt.Fprintf(w, "%8s %10s %14s %14s %8s\n", "simPEs", "ranks/PE", "step(ms)", "predicted(ms)", "moved")
	for _, p := range peCounts {
		if p > ranks {
			break
		}
		res, err := ampi.RunJacobi(ampi.JacobiConfig{
			Ranks: ranks, Iters: iters, PEs: p, Mode: mode,
			ReduceEvery: 4, BlockPlacement: true, Overlap: overlap,
			MigrateAt: migrateAt, WorkSkew: skewFor(migrateAt),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %10d %14.3f %14.3f %8d\n",
			p, ranks/p, res.StepWallNs/1e6, res.PredictedNs/1e6, res.Moved)
	}
	return nil
}

// skewFor enables a deterministic per-rank work gradient whenever a
// migration gate is requested, so the balancer has imbalance to fix.
func skewFor(migrateAt int) float64 {
	if migrateAt > 0 {
		return 2
	}
	return 0
}

// JacobiMode is the flows A/B applied to AMPI: every simulating-PE
// count runs the same Jacobi job through BOTH rank backends, the
// predicted target time is checked bit-identical between them (the
// flow mechanism must be invisible to the simulated program), and the
// table gains a ULT-vs-event column pair.
// migrateAt > 0 adds the same LB gate to both backends; the
// prediction stays bit-identical because migration never touches
// virtual time.
// overlap selects the split-phase schedule for both backends — the
// bit-identity requirement applies to it unchanged.
func JacobiMode(w io.Writer, ranks, iters int, peCounts []int, migrateAt int, overlap bool) ([]JacobiModePoint, error) {
	variant := ""
	if overlap {
		variant = ", split-phase overlap"
	}
	fmt.Fprintf(w, "AMPI Jacobi (flows A/B): ULT vs event-driven ranks (%d ranks, %d iterations%s)\n", ranks, iters, variant)
	fmt.Fprintf(w, "%8s %10s %14s %14s %10s %14s\n",
		"simPEs", "ranks/PE", "ult/step(ms)", "event/step(ms)", "ult/event", "predicted(ms)")
	var out []JacobiModePoint
	for _, p := range peCounts {
		if p > ranks {
			break
		}
		run := func(mode string) (ampi.JacobiResult, error) {
			return ampi.RunJacobi(ampi.JacobiConfig{
				Ranks: ranks, Iters: iters, PEs: p, Mode: mode,
				ReduceEvery: 4, BlockPlacement: true, Overlap: overlap,
				MigrateAt: migrateAt, WorkSkew: skewFor(migrateAt),
			})
		}
		ult, err := run(ampi.ModeULT)
		if err != nil {
			return nil, err
		}
		evt, err := run(ampi.ModeEvent)
		if err != nil {
			return nil, err
		}
		if ult.PredictedNs != evt.PredictedNs {
			return nil, fmt.Errorf("harness: Jacobi prediction diverged between rank backends: %g (ult) vs %g (event)",
				ult.PredictedNs, evt.PredictedNs)
		}
		if ult.Msgs != evt.Msgs {
			return nil, fmt.Errorf("harness: Jacobi message count diverged between rank backends: %d (ult) vs %d (event)",
				ult.Msgs, evt.Msgs)
		}
		fmt.Fprintf(w, "%8d %10d %14.3f %14.3f %9.2fx %14.3f\n",
			p, ranks/p, ult.StepWallNs/1e6, evt.StepWallNs/1e6,
			ult.StepWallNs/evt.StepWallNs, ult.PredictedNs/1e6)
		out = append(out, JacobiModePoint{
			PEs: p, RanksPE: ranks / p,
			ULTStepNs: ult.StepWallNs, EventStepNs: evt.StepWallNs,
			PredictedNs: ult.PredictedNs,
		})
	}
	return out, nil
}

// RankFootprint builds (without running) a Jacobi job in cfg's mode
// and returns the marginal resident bytes (heap + goroutine stacks)
// and goroutines per rank — FlowFootprint's question asked of AMPI's
// two rank backends.
func RankFootprint(cfg ampi.JacobiConfig) (bytesPerRank, goroutinesPerRank float64, err error) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	_, job, err := ampi.NewJacobi(cfg)
	if err != nil {
		return 0, 0, err
	}
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	g1 := runtime.NumGoroutine()
	ranks := float64(cfg.Ranks)
	resident := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
	if resident < 0 {
		resident = 0
	}
	job.Run() // drain the job so ULT goroutines exit before returning
	return float64(resident) / ranks, float64(g1-g0) / ranks, nil
}
