package harness

// The split-phase overlap and topology-aware collective study: the
// same skewed BT-MZ zone job run with blocking and with split-phase
// (nonblocking) halo exchange + pipelined residual reduction, on both
// flow backends, plus the rank-order-vs-topology spanning-tree hop
// comparison. This is the table `flowbench -overlap` and the
// bench-collectives JSON derive from.

import (
	"fmt"
	"io"

	"migflow/internal/ampi"
	"migflow/internal/npb"
)

// OverlapPoint is one OverlapStudy row.
type OverlapPoint struct {
	Mode      string
	Overlap   bool
	TimeNs    float64 // modeled makespan (solve/comm overlapped when Overlap)
	CommNs    float64 // halo-exchange component
	Predicted float64 // virtual-time makespan (mode-invariant)
	Hops      uint64  // topology hops charged by collective tree edges
}

// overlapClass is the study's skewed zone grid: small enough for CI,
// graded 20:1 so the exchange is a visible fraction of each step.
var overlapClass = npb.GradedClass("Z256", 16, 16, 1<<17, 20, 50)

// OverlapStudy runs BT-MZ (one zone per rank, skewed 20:1) with the
// halo exchange blocking and split-phase, through both flow backends,
// under topology-aware collective trees. The split-phase schedule
// must win on this class — its exchange cost hides under the solve —
// and the study fails loudly if it does not, so regressions in the
// nonblocking path cannot ship silently.
func OverlapStudy(w io.Writer, steps, npes int) ([]OverlapPoint, error) {
	if steps < 4 {
		steps = 4
	}
	fmt.Fprintf(w, "BT-MZ split-phase overlap: %d zone-ranks on %d PEs, %d steps, reduce every 4\n",
		overlapClass.NumZones(), npes, steps)
	fmt.Fprintf(w, "%6s %8s %12s %12s %14s %8s\n",
		"mode", "overlap", "time(ms)", "comm(ms)", "predicted(ms)", "hops")
	var out []OverlapPoint
	for _, mode := range []string{ampi.ModeULT, ampi.ModeEvent} {
		var off *npb.Result
		for _, overlap := range []bool{false, true} {
			r, err := npb.Run(npb.Params{
				Class: overlapClass, NProcs: overlapClass.NumZones(), NPEs: npes,
				Steps: steps, Mode: mode, Overlap: overlap, ReduceEvery: 4,
				Collectives: ampi.CollTopoTree,
				Topo:        ampi.Topology{Nodes: npes, GroupSize: 4},
			})
			if err != nil {
				return nil, err
			}
			onOff := "off"
			if overlap {
				onOff = "on"
			}
			fmt.Fprintf(w, "%6s %8s %12.2f %12.2f %14.3f %8d\n",
				mode, onOff, r.TimeNs/1e6, r.CommNs/1e6, r.PredictedNs/1e6, r.TopoHops)
			out = append(out, OverlapPoint{
				Mode: mode, Overlap: overlap,
				TimeNs: r.TimeNs, CommNs: r.CommNs,
				Predicted: r.PredictedNs, Hops: r.TopoHops,
			})
			if overlap {
				if !(r.TimeNs < off.TimeNs) {
					return nil, fmt.Errorf("harness: overlap did not help in %s mode: %.2f ms on vs %.2f ms off",
						mode, r.TimeNs/1e6, off.TimeNs/1e6)
				}
				if !(r.PredictedNs < off.PredictedNs) {
					return nil, fmt.Errorf("harness: overlap did not lower predicted time in %s mode: %.3f ms on vs %.3f ms off",
						mode, r.PredictedNs/1e6, off.PredictedNs/1e6)
				}
				fmt.Fprintf(w, "%6s %8s   modeled speedup %.2fx, predicted %.2fx\n",
					"", "", off.TimeNs/r.TimeNs, off.PredictedNs/r.PredictedNs)
			} else {
				off = r
			}
		}
	}
	return out, nil
}

// TopoTreeStudy compares collective spanning trees built in rank
// order against topology-aware ones on the same torus/PE-group
// layout: the reduction result must be bit-identical while the
// topology tree crosses fewer node-to-node hops.
func TopoTreeStudy(w io.Writer, ranks, npes int) error {
	run := func(algo ampi.CollAlgo) (ampi.JacobiResult, error) {
		return ampi.RunJacobi(ampi.JacobiConfig{
			Ranks: ranks, Iters: 8, PEs: npes, ReduceEvery: 2,
			BlockPlacement: true,
			Collectives:    algo,
			Topo:           ampi.Topology{Nodes: npes, GroupSize: 4},
		})
	}
	rankOrder, err := run(ampi.CollTree)
	if err != nil {
		return err
	}
	topo, err := run(ampi.CollTopoTree)
	if err != nil {
		return err
	}
	if topo.Hops >= rankOrder.Hops {
		return fmt.Errorf("harness: topology tree crossed %d hops, rank-order %d — no win", topo.Hops, rankOrder.Hops)
	}
	fmt.Fprintf(w, "Collective spanning trees, %d ranks on %d nodes (groups of 4):\n", ranks, npes)
	fmt.Fprintf(w, "  %-12s %6d hops\n", "rank-order", rankOrder.Hops)
	fmt.Fprintf(w, "  %-12s %6d hops  (%.1f%% fewer, same reduction bits)\n",
		"topo-aware", topo.Hops, 100*(1-float64(topo.Hops)/float64(rankOrder.Hops)))
	return nil
}
