package harness

import (
	"bytes"
	"migflow/internal/platform"
	"strings"
	"testing"

	"migflow/internal/bigsim"
	"migflow/internal/flows"
	"migflow/internal/migrate"
	"migflow/internal/vmem"
)

func TestTable1Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Stack Copy", "Isomalloc", "Memory Alias", "bgl", "windows", "No", "Maybe", "Yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Probe(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(&buf, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check against the paper's Table 2.
	byKind := map[flows.Kind]Table2Row{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	if got := byKind[flows.KindProcess].Limits["ibm-sp"]; got != 100 {
		t.Errorf("IBM SP process limit = %d, want 100", got)
	}
	if got := byKind[flows.KindKThread].Limits["linux-x86"]; got != 250 {
		t.Errorf("Linux pthread limit = %d, want 250", got)
	}
	if got := byKind[flows.KindUserThread].Limits["ibm-sp"]; got != 15000 {
		t.Errorf("IBM SP ULT limit = %d, want 15000", got)
	}
	if got := byKind[flows.KindUserThread].Limits["linux-x86"]; got != 100000 {
		t.Errorf("Linux ULT probe = %d, want cap (unbounded)", got)
	}
}

func TestFigureSwitchCurves(t *testing.T) {
	var buf bytes.Buffer
	curves, err := FigureSwitchCurves(&buf, "linux-x86", []int{2, 16, 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves[flows.KindUserThread]) != 3 {
		t.Errorf("ULT curve has %d points", len(curves[flows.KindUserThread]))
	}
	// Figure 4 ordering at every point.
	for i := range curves[flows.KindUserThread] {
		u := curves[flows.KindUserThread][i].NsPerYield
		p := curves[flows.KindProcess][i].NsPerYield
		if !(u < p) {
			t.Errorf("point %d: ULT %g not faster than process %g", i, u, p)
		}
	}
	if _, err := FigureSwitchCurves(&buf, "vax", []int{2}, 1); err == nil {
		t.Error("unknown platform accepted")
	}
}

// TestFig9Shape pins the Figure 9 result in *virtual* time (the
// stable basis): isomalloc is flat and fastest everywhere; stack
// copying is cheap for small stacks but grows linearly, becoming
// "unusably slow" past ~20 KB; memory aliasing is a flat ~4-6 µs, so
// the copy and alias curves cross between small and large stacks.
func TestFig9Shape(t *testing.T) {
	get := func(s string, size uint64) Fig9Point {
		strat, err := migrate.ByName(s)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Fig9Measure(strat, size, 40)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	for _, size := range []uint64{8 << 10, 64 << 10, 512 << 10} {
		sc := get(migrate.NameStackCopy, size)
		iso := get(migrate.NameIsomalloc, size)
		al := get(migrate.NameMemAlias, size)
		// Isomalloc is the fastest overall at every size.
		if !(iso.VirtualNs < al.VirtualNs && iso.VirtualNs < sc.VirtualNs) {
			t.Errorf("size %d: isomalloc not fastest: iso=%g alias=%g copy=%g",
				size, iso.VirtualNs, al.VirtualNs, sc.VirtualNs)
		}
	}
	// The crossover: below ~20 KB copying beats aliasing; well above
	// it, aliasing wins.
	if sc, al := get(migrate.NameStackCopy, 8<<10), get(migrate.NameMemAlias, 8<<10); !(sc.VirtualNs < al.VirtualNs) {
		t.Errorf("8KB: copy %g should beat alias %g", sc.VirtualNs, al.VirtualNs)
	}
	if sc, al := get(migrate.NameStackCopy, 512<<10), get(migrate.NameMemAlias, 512<<10); !(al.VirtualNs < sc.VirtualNs) {
		t.Errorf("512KB: alias %g should beat copy %g", al.VirtualNs, sc.VirtualNs)
	}
	// Stack copy cost grows ~linearly with stack size.
	small := get(migrate.NameStackCopy, 8<<10)
	big := get(migrate.NameStackCopy, 512<<10)
	if ratio := big.VirtualNs / small.VirtualNs; ratio < 10 {
		t.Errorf("stack-copy cost grew only %.1fx over a 64x stack growth", ratio)
	}
	// Isomalloc stays flat.
	isoSmall := get(migrate.NameIsomalloc, 8<<10)
	isoBig := get(migrate.NameIsomalloc, 512<<10)
	if ratio := isoBig.VirtualNs / isoSmall.VirtualNs; ratio > 1.2 {
		t.Errorf("isomalloc cost grew %.2fx with stack size; should be flat", ratio)
	}
	// Memory aliasing grows only slowly (page-table work).
	alSmall := get(migrate.NameMemAlias, 8<<10)
	alBig := get(migrate.NameMemAlias, 512<<10)
	if ratio := alBig.VirtualNs / alSmall.VirtualNs; ratio > 4 {
		t.Errorf("memalias cost grew %.2fx; should grow only slowly", ratio)
	}
}

func TestFigure9Render(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure9(&buf, []uint64{8 << 10, 32 << 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Errorf("points = %d, want 6", len(pts))
	}
	if !strings.Contains(buf.String(), "8KB") {
		t.Error("output missing size labels")
	}
}

func TestFigure10(t *testing.T) {
	var buf bytes.Buffer
	res := Figure10(&buf, 200000)
	if res.MinimalNs <= 0 {
		t.Error("minimal swap measured nothing")
	}
	// The §4.3 ordering: minimal < full < full+sigmask.
	if !(res.MinimalNs < res.FullNs && res.FullNs < res.SigmaskNs) {
		t.Errorf("ordering broken: minimal=%g full=%g sigmask=%g",
			res.MinimalNs, res.FullNs, res.SigmaskNs)
	}
}

func TestFigure11(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure11(&buf, 8, 8, 4, 3, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[2].StepTimeNs < pts[0].StepTimeNs) {
		t.Error("no scaling from 1 to 4 PEs")
	}
}

func TestFigure11Mode(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure11Mode(&buf, 8, 8, 4, 3, []int{1, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !(p.EventStepNs < p.ULTStepNs) {
			t.Errorf("simPEs=%d: event step %g not below ult %g", p.SimPEs, p.EventStepNs, p.ULTStepNs)
		}
		if p.PredictedNs <= 0 {
			t.Errorf("simPEs=%d: predicted %g", p.SimPEs, p.PredictedNs)
		}
	}
	// The prediction is backend- and PE-count-invariant.
	if pts[0].PredictedNs != pts[1].PredictedNs {
		t.Errorf("prediction varies with simPEs: %g vs %g", pts[0].PredictedNs, pts[1].PredictedNs)
	}
	if !strings.Contains(buf.String(), "ult/event") {
		t.Error("report missing ult/event column")
	}
}

func TestFlowFootprint(t *testing.T) {
	cfg := bigsim.Config{
		X: 8, Y: 8, Z: 4, SimPEs: 4,
		AtomsPerCell: 10, WorkPerAtomNs: 5, GhostBytes: 256,
	}
	cfg.Mode = bigsim.ModeEvent
	_, gEvent, err := FlowFootprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gEvent != 0 {
		t.Errorf("event mode spends %g goroutines/flow, want 0", gEvent)
	}
	cfg.Mode = bigsim.ModeULT
	_, gULT, err := FlowFootprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gULT < 0.99 || gULT > 1.01 {
		t.Errorf("ult mode spends %g goroutines/flow, want 1", gULT)
	}
}

func TestFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	pairs, err := Figure12(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("cases = %d", len(pairs))
	}
	for _, pr := range pairs {
		if !(pr[1].TimeNs <= pr[0].TimeNs*1.02) {
			t.Errorf("%s: LB made it worse: %g vs %g", pr[0].Params.Label(), pr[1].TimeNs, pr[0].TimeNs)
		}
	}
}

// TestIsoCapacity pins the §3.4.2 arithmetic: 1 MiB threads exhaust
// a 32-bit node's slot in the low thousands while a 64-bit node
// shrugs.
func TestIsoCapacity(t *testing.T) {
	var buf bytes.Buffer
	pts, err := IsoCapacity(&buf, []uint64{1 << 20}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	p32, p64 := pts[0], pts[1]
	if p32.Bits != 32 || p64.Bits != 64 {
		t.Fatalf("order: %+v", pts)
	}
	// 2 GiB / (1 MiB + guard page) ≈ 2039.
	if p32.Threads < 1500 || p32.Threads > 2100 {
		t.Errorf("32-bit capacity = %d, want ≈ 2000", p32.Threads)
	}
	if p64.Threads < 30*p32.Threads {
		t.Errorf("64-bit capacity %d not ≫ 32-bit %d", p64.Threads, p32.Threads)
	}
	if !strings.Contains(buf.String(), "1MB") {
		t.Error("report missing size label")
	}
}

func TestByteSize(t *testing.T) {
	if byteSize(8<<20) != "8MB" || byteSize(64<<10) != "64KB" || byteSize(100) != "100B" {
		t.Error("byteSize formatting wrong")
	}
}

func TestFig9MeasureRejectsHugeRegionless(t *testing.T) {
	// Smallest sanity: a page-size stack still works.
	strat, _ := migrate.ByName(migrate.NameIsomalloc)
	if _, err := Fig9Measure(strat, 2*vmem.PageSize, 5); err != nil {
		t.Errorf("tiny stack measure failed: %v", err)
	}
}

func TestBlockingModelsRender(t *testing.T) {
	var buf bytes.Buffer
	out, err := BlockingModels(&buf, platform.LinuxX86())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("cases = %d", len(out))
	}
	if out["N:1 user threads"] <= out["1:1 kernel threads"] {
		t.Error("N:1 should be the slowest")
	}
	if !strings.Contains(buf.String(), "N:M hybrid (M=8)") {
		t.Error("report missing N:M row")
	}
}
