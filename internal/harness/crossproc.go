package harness

// Cross-process equivalence table: one row per (app, transport)
// configuration comparing the in-process ring-buffer run against the
// same job sharded over OS processes. The headline column is bitwise
// VT equality — the sharded machine is only correct if it is
// indistinguishable from the 1-process one.

import (
	"fmt"
	"io"
)

// CrossProcessRow is one app/transport configuration's outcome.
type CrossProcessRow struct {
	App     string
	Flows   int // event ranks (or simulating PEs for bigsim)
	Workers int
	Net     string // "inproc", "unix", "tcp"
	// PredictedMs is the job's predicted completion (max rank VT),
	// in milliseconds.
	PredictedMs float64
	// WallMs is the harness wall-clock for the whole run, including
	// process spawn and rendezvous.
	WallMs float64
	// Envelopes and EnvBytes count coalesced cross-process frames;
	// zero for in-process rows.
	Envelopes uint64
	EnvBytes  uint64
	// Moved counts event ranks migrated across a live socket.
	Moved int64
	// Bitwise reports whether every rank VT (and app numeric state)
	// matched the in-process reference bit for bit.
	Bitwise bool
}

// CrossProcessTable renders the equivalence sweep.
func CrossProcessTable(w io.Writer, title string, rows []CrossProcessRow) {
	fmt.Fprintf(w, "Cross-process equivalence: %s\n", title)
	fmt.Fprintf(w, "%-8s %8s %8s %7s %14s %10s %10s %10s %7s %8s\n",
		"app", "flows", "workers", "net", "predicted(ms)", "wall(ms)", "envelopes", "env-bytes", "moved", "bitwise")
	for _, r := range rows {
		bit := "OK"
		if !r.Bitwise {
			bit = "FAIL"
		}
		fmt.Fprintf(w, "%-8s %8d %8d %7s %14.3f %10.1f %10d %10d %7d %8s\n",
			r.App, r.Flows, r.Workers, r.Net, r.PredictedMs, r.WallMs,
			r.Envelopes, r.EnvBytes, r.Moved, bit)
	}
}
