package harness

import (
	"fmt"
	"io"
	"time"

	"migflow/internal/bigsim"
	"migflow/internal/converse"
)

// Fig10Result reports the minimal-context-switch study (§4.3).
type Fig10Result struct {
	MinimalNs   float64 // callee-saved-only swap (Figure 10 routine)
	FullNs      float64 // save-everything swap
	SigmaskNs   float64 // save-everything + signal-mask "system call"
	ChannelNs   float64 // goroutine channel handoff (this harness's carrier)
	SchedulerNs float64 // the full migratable-thread scheduler path
}

// Figure10 measures the swap routines in wall-clock time. iters
// should be large (≥ 1e6) for stable numbers.
func Figure10(w io.Writer, iters int) Fig10Result {
	var a, b converse.RegContext
	var live7 [converse.CalleeSavedRegs]uint64
	var liveF [converse.FullRegs]uint64
	sp := uint64(0x1000)
	mask := uint64(0)

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		converse.MinimalSwap(&a, &b, &live7, &sp)
	}
	minimal := seconds(t0) / float64(iters)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		converse.FullSwap(&a, &b, &liveF, &sp)
	}
	full := seconds(t0) / float64(iters)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		converse.SigmaskSwap(&a, &b, &liveF, &sp, &mask)
	}
	sigmask := seconds(t0) / float64(iters)

	// Channel handoff between two goroutines: the control-flow
	// carrier this repository substitutes for the assembly swap.
	ping := make(chan struct{})
	pong := make(chan struct{})
	go func() {
		for range ping {
			pong <- struct{}{}
		}
	}()
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		ping <- struct{}{}
		<-pong
	}
	channel := seconds(t0) / float64(iters) / 2 // two handoffs per round trip
	close(ping)

	// The full scheduler path: two FastThreads yielding.
	s := converse.NewFastScheduler()
	const schedIters = 20000
	for i := 0; i < 2; i++ {
		th := s.Create(func(c *converse.FastCtx) {
			for j := 0; j < schedIters; j++ {
				c.Yield()
			}
		})
		s.Start(th)
	}
	t0 = time.Now()
	s.RunUntilIdle()
	sched := seconds(t0) / float64(2*schedIters)

	res := Fig10Result{
		MinimalNs: minimal, FullNs: full, SigmaskNs: sigmask,
		ChannelNs: channel, SchedulerNs: sched,
	}
	fmt.Fprintln(w, "Figure 10 / §4.3: minimal user-level context switch (wall clock)")
	fmt.Fprintf(w, "  callee-saved-only swap (Fig 10 routine): %8.1f ns\n", res.MinimalNs)
	fmt.Fprintf(w, "  save-everything swap:                    %8.1f ns\n", res.FullNs)
	fmt.Fprintf(w, "  + signal-mask system call:               %8.1f ns\n", res.SigmaskNs)
	fmt.Fprintf(w, "  goroutine channel handoff:               %8.1f ns\n", res.ChannelNs)
	fmt.Fprintf(w, "  full user-level scheduler path:          %8.1f ns\n", res.SchedulerNs)
	fmt.Fprintln(w, "  (paper: 16-18 ns for the assembly routine on a 2.2 GHz Athlon64)")
	return res
}

func seconds(t0 time.Time) float64 { return float64(time.Since(t0).Nanoseconds()) }

// Fig11Point is one Figure 11 measurement.
type Fig11Point struct {
	SimPEs     int
	ThreadsPE  int
	StepTimeNs float64
	WallNs     float64
	// EnvelopesPerStep is the mean coalesced cross-PE envelope count
	// (aggregated runs only; 0 otherwise).
	EnvelopesPerStep float64
}

// Figure11 sweeps simulating-PE counts for a fixed target machine.
func Figure11(w io.Writer, x, y, z, steps int, peCounts []int) ([]Fig11Point, error) {
	return Figure11Opt(w, x, y, z, steps, peCounts, false)
}

// Figure11Opt is Figure11 with the ghost exchange optionally routed
// through streaming aggregation (one envelope per (src,dst) simulating
// PE pair per step instead of one message per ghost).
func Figure11Opt(w io.Writer, x, y, z, steps int, peCounts []int, aggregate bool) ([]Fig11Point, error) {
	targets := x * y * z
	mode := ""
	if aggregate {
		mode = ", aggregated ghost exchange"
	}
	fmt.Fprintf(w, "Figure 11: BigSim simulation time per step (%d target processors, one ULT each%s)\n", targets, mode)
	fmt.Fprintf(w, "%8s %12s %16s %10s %10s\n", "simPEs", "ULTs/simPE", "time/step(ms)", "speedup", "env/step")
	var out []Fig11Point
	var base float64
	for _, p := range peCounts {
		if p > targets {
			break
		}
		cfg := bigsim.DefaultConfig()
		cfg.X, cfg.Y, cfg.Z, cfg.SimPEs = x, y, z, p
		cfg.Aggregate = aggregate
		sim, err := bigsim.New(cfg)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		stats := sim.Run(steps)
		wall := seconds(t0)
		sim.Close()
		mean := bigsim.MeanStepTime(stats)
		var env float64
		for _, st := range stats {
			env += float64(st.Envelopes)
		}
		env /= float64(len(stats))
		if base == 0 {
			base = mean
		}
		fmt.Fprintf(w, "%8d %12d %16.3f %9.2fx %10.0f\n", p, targets/p, mean/1e6, base/mean, env)
		out = append(out, Fig11Point{
			SimPEs: p, ThreadsPE: targets / p, StepTimeNs: mean, WallNs: wall,
			EnvelopesPerStep: env,
		})
	}
	return out, nil
}
