package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"migflow/internal/bigsim"
	"migflow/internal/converse"
)

// Fig10Result reports the minimal-context-switch study (§4.3).
type Fig10Result struct {
	MinimalNs   float64 // callee-saved-only swap (Figure 10 routine)
	FullNs      float64 // save-everything swap
	SigmaskNs   float64 // save-everything + signal-mask "system call"
	ChannelNs   float64 // goroutine channel handoff (this harness's carrier)
	SchedulerNs float64 // the full migratable-thread scheduler path
}

// Figure10 measures the swap routines in wall-clock time. iters
// should be large (≥ 1e6) for stable numbers.
func Figure10(w io.Writer, iters int) Fig10Result {
	var a, b converse.RegContext
	var live7 [converse.CalleeSavedRegs]uint64
	var liveF [converse.FullRegs]uint64
	sp := uint64(0x1000)
	mask := uint64(0)

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		converse.MinimalSwap(&a, &b, &live7, &sp)
	}
	minimal := seconds(t0) / float64(iters)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		converse.FullSwap(&a, &b, &liveF, &sp)
	}
	full := seconds(t0) / float64(iters)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		converse.SigmaskSwap(&a, &b, &liveF, &sp, &mask)
	}
	sigmask := seconds(t0) / float64(iters)

	// Channel handoff between two goroutines: the control-flow
	// carrier this repository substitutes for the assembly swap.
	ping := make(chan struct{})
	pong := make(chan struct{})
	go func() {
		for range ping {
			pong <- struct{}{}
		}
	}()
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		ping <- struct{}{}
		<-pong
	}
	channel := seconds(t0) / float64(iters) / 2 // two handoffs per round trip
	close(ping)

	// The full scheduler path: two FastThreads yielding.
	s := converse.NewFastScheduler()
	const schedIters = 20000
	for i := 0; i < 2; i++ {
		th := s.Create(func(c *converse.FastCtx) {
			for j := 0; j < schedIters; j++ {
				c.Yield()
			}
		})
		s.Start(th)
	}
	t0 = time.Now()
	s.RunUntilIdle()
	sched := seconds(t0) / float64(2*schedIters)

	res := Fig10Result{
		MinimalNs: minimal, FullNs: full, SigmaskNs: sigmask,
		ChannelNs: channel, SchedulerNs: sched,
	}
	fmt.Fprintln(w, "Figure 10 / §4.3: minimal user-level context switch (wall clock)")
	fmt.Fprintf(w, "  callee-saved-only swap (Fig 10 routine): %8.1f ns\n", res.MinimalNs)
	fmt.Fprintf(w, "  save-everything swap:                    %8.1f ns\n", res.FullNs)
	fmt.Fprintf(w, "  + signal-mask system call:               %8.1f ns\n", res.SigmaskNs)
	fmt.Fprintf(w, "  goroutine channel handoff:               %8.1f ns\n", res.ChannelNs)
	fmt.Fprintf(w, "  full user-level scheduler path:          %8.1f ns\n", res.SchedulerNs)
	fmt.Fprintln(w, "  (paper: 16-18 ns for the assembly routine on a 2.2 GHz Athlon64)")
	return res
}

func seconds(t0 time.Time) float64 { return float64(time.Since(t0).Nanoseconds()) }

// Fig11Point is one Figure 11 measurement.
type Fig11Point struct {
	SimPEs     int
	ThreadsPE  int
	StepTimeNs float64
	WallNs     float64
	// EnvelopesPerStep is the mean coalesced cross-PE envelope count
	// (aggregated runs only; 0 otherwise).
	EnvelopesPerStep float64
}

// Figure11 sweeps simulating-PE counts for a fixed target machine.
func Figure11(w io.Writer, x, y, z, steps int, peCounts []int) ([]Fig11Point, error) {
	return Figure11Opt(w, x, y, z, steps, peCounts, false)
}

// Figure11Opt is Figure11 with the ghost exchange optionally routed
// through streaming aggregation (one envelope per (src,dst) simulating
// PE pair per step instead of one message per ghost).
func Figure11Opt(w io.Writer, x, y, z, steps int, peCounts []int, aggregate bool) ([]Fig11Point, error) {
	return Figure11Backend(w, x, y, z, steps, peCounts, aggregate, bigsim.ModeULT)
}

// Figure11Backend is Figure11Opt with a selectable execution backend:
// bigsim.ModeULT (one parked goroutine per target processor, the
// paper's user-level thread) or bigsim.ModeEvent (step bodies
// dispatched inline as event-driven objects — the only backend that
// reaches the paper's 200,000-target scale in modest memory).
func Figure11Backend(w io.Writer, x, y, z, steps int, peCounts []int, aggregate bool, mode string) ([]Fig11Point, error) {
	targets := x * y * z
	opt := ""
	if aggregate {
		opt = ", aggregated ghost exchange"
	}
	flowDesc, flowCol := "one ULT each", "ULTs/simPE"
	if mode == bigsim.ModeEvent {
		flowDesc, flowCol = "event-driven objects", "flows/simPE"
	}
	fmt.Fprintf(w, "Figure 11: BigSim simulation time per step (%d target processors, %s%s)\n", targets, flowDesc, opt)
	fmt.Fprintf(w, "%8s %12s %16s %10s %10s\n", "simPEs", flowCol, "time/step(ms)", "speedup", "env/step")
	var out []Fig11Point
	var base float64
	for _, p := range peCounts {
		if p > targets {
			break
		}
		cfg := bigsim.DefaultConfig()
		cfg.X, cfg.Y, cfg.Z, cfg.SimPEs = x, y, z, p
		cfg.Aggregate = aggregate
		cfg.Mode = mode
		sim, err := bigsim.New(cfg)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		stats := sim.Run(steps)
		wall := seconds(t0)
		sim.Close()
		mean := bigsim.MeanStepTime(stats)
		var env float64
		for _, st := range stats {
			env += float64(st.Envelopes)
		}
		env /= float64(len(stats))
		if base == 0 {
			base = mean
		}
		fmt.Fprintf(w, "%8d %12d %16.3f %9.2fx %10.0f\n", p, targets/p, mean/1e6, base/mean, env)
		out = append(out, Fig11Point{
			SimPEs: p, ThreadsPE: targets / p, StepTimeNs: mean, WallNs: wall,
			EnvelopesPerStep: env,
		})
	}
	return out, nil
}

// Fig11ModePoint is one Figure11Mode row: the same simulation run
// through both execution backends.
type Fig11ModePoint struct {
	SimPEs      int
	FlowsPE     int
	ULTStepNs   float64 // mean simulated time/step, ULT backend
	EventStepNs float64 // mean simulated time/step, event backend
	ULTWallNs   float64 // real wall clock of the whole run
	EventWallNs float64
	PredictedNs float64 // mean predicted target-machine time/step (backend-invariant)
}

// Figure11Mode is the paper's flows comparison run end-to-end: each
// simulating-PE count is run through BOTH backends, the target-machine
// prediction is checked bit-identical between them, and the table
// gains a ULT-vs-event column pair. The ult/event ratio is the
// measured end-to-end cost of giving every target processor a
// user-level thread instead of an event-driven object.
func Figure11Mode(w io.Writer, x, y, z, steps int, peCounts []int, aggregate bool) ([]Fig11ModePoint, error) {
	targets := x * y * z
	opt := ""
	if aggregate {
		opt = ", aggregated ghost exchange"
	}
	fmt.Fprintf(w, "Figure 11 (flows A/B): ULT vs event-driven backends (%d target processors%s)\n", targets, opt)
	fmt.Fprintf(w, "%8s %12s %14s %14s %10s %14s\n",
		"simPEs", "flows/simPE", "ult/step(ms)", "event/step(ms)", "ult/event", "predicted(ms)")
	var out []Fig11ModePoint
	for _, p := range peCounts {
		if p > targets {
			break
		}
		run := func(mode string) ([]bigsim.StepStats, float64, error) {
			cfg := bigsim.DefaultConfig()
			cfg.X, cfg.Y, cfg.Z, cfg.SimPEs = x, y, z, p
			cfg.Aggregate = aggregate
			cfg.Mode = mode
			sim, err := bigsim.New(cfg)
			if err != nil {
				return nil, 0, err
			}
			defer sim.Close()
			t0 := time.Now()
			stats := sim.Run(steps)
			return stats, seconds(t0), nil
		}
		ult, ultWall, err := run(bigsim.ModeULT)
		if err != nil {
			return nil, err
		}
		evt, evtWall, err := run(bigsim.ModeEvent)
		if err != nil {
			return nil, err
		}
		var predicted float64
		for i := range ult {
			if ult[i].PredictedTargetNs != evt[i].PredictedTargetNs {
				return nil, fmt.Errorf("harness: step %d prediction diverged between backends: %g (ult) vs %g (event)",
					i, ult[i].PredictedTargetNs, evt[i].PredictedTargetNs)
			}
			predicted += ult[i].PredictedTargetNs
		}
		predicted /= float64(len(ult))
		ultMean, evtMean := bigsim.MeanStepTime(ult), bigsim.MeanStepTime(evt)
		fmt.Fprintf(w, "%8d %12d %14.3f %14.3f %9.2fx %14.3f\n",
			p, targets/p, ultMean/1e6, evtMean/1e6, ultMean/evtMean, predicted/1e6)
		out = append(out, Fig11ModePoint{
			SimPEs: p, FlowsPE: targets / p,
			ULTStepNs: ultMean, EventStepNs: evtMean,
			ULTWallNs: ultWall, EventWallNs: evtWall,
			PredictedNs: predicted,
		})
	}
	return out, nil
}

// FlowFootprint builds a simulator from cfg, runs one step so every
// flow's state (and, in ULT mode, stack) is faulted in, and returns
// the marginal resident bytes (heap + goroutine stacks) and
// goroutines per flow — Table 2's "how many flows fit" question asked
// of the two BigSim backends.
func FlowFootprint(cfg bigsim.Config) (bytesPerFlow, goroutinesPerFlow float64, err error) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	sim, err := bigsim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	sim.Step()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	g1 := runtime.NumGoroutine()
	flows := float64(sim.NumTargets())
	resident := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
	if resident < 0 {
		resident = 0
	}
	sim.Close()
	return float64(resident) / flows, float64(g1-g0) / flows, nil
}
