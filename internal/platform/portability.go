package platform

// Support is a cell of the paper's Table 1 portability matrix.
type Support int

// Support levels, in Table 1's vocabulary: "Yes" means implemented,
// "Maybe" means no theoretical obstacle but no implementation, "No"
// means the technique is impossible on the machine.
const (
	No Support = iota
	Maybe
	Yes
)

func (s Support) String() string {
	switch s {
	case No:
		return "No"
	case Maybe:
		return "Maybe"
	case Yes:
		return "Yes"
	}
	return "?"
}

// Technique identifies one of the three migratable-thread techniques
// of §3.4.
type Technique int

// The three thread-migration techniques.
const (
	StackCopy Technique = iota
	Isomalloc
	MemoryAlias
)

func (t Technique) String() string {
	switch t {
	case StackCopy:
		return "Stack Copy"
	case Isomalloc:
		return "Isomalloc"
	case MemoryAlias:
		return "Memory Alias"
	}
	return "?"
}

// Techniques lists all three, in Table 1 row order.
func Techniques() []Technique { return []Technique{StackCopy, Isomalloc, MemoryAlias} }

// Supports derives a Table 1 cell from the platform's capability
// predicates:
//
//   - Stack copy needs a QuickThreads port (implementation exists →
//     Yes) and a fixed system stack base; it is never impossible.
//   - Isomalloc needs fixed-address mmap; an equivalent call
//     (MapViewOfFileEx) downgrades to Maybe; with neither it is
//     impossible (BG/L).
//   - Memory aliasing needs mmap too, but the paper showed a small
//     microkernel extension suffices on BG/L, so a heap-remap
//     extension (or an mmap equivalent) gives Maybe.
func (p *Profile) Supports(t Technique) Support {
	switch t {
	case StackCopy:
		if p.QuickThreadsPort && p.FixedStackBase {
			return Yes
		}
		return Maybe
	case Isomalloc:
		if p.HasMmap {
			return Yes
		}
		if p.MmapEquivalent {
			return Maybe
		}
		return No
	case MemoryAlias:
		if p.HasMmap {
			return Yes
		}
		if p.HeapRemapExt || p.MmapEquivalent {
			return Maybe
		}
		return No
	}
	return No
}

// Table1Order lists platform names in the column order of Table 1.
func Table1Order() []string {
	return []string{"linux-x86", "ia64", "opteron", "mac-g5", "ibm-sp", "sun-solaris9", "alpha-es45", "bgl", "windows"}
}

// Table2Order lists platform names in the column order of Table 2.
func Table2Order() []string {
	return []string{"linux-x86", "sun-solaris9", "ibm-sp", "alpha-es45", "mac-g5", "ia64"}
}
