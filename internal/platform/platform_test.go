package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostCurveAt(t *testing.T) {
	c := CostCurve{Base: 100, PerFlowLog: 10, PerFlowLinear: 2}
	if got := c.At(1); got != 100+2 {
		t.Errorf("At(1) = %g, want 102", got)
	}
	want := 100 + 10*math.Log2(8) + 2*8
	if got := c.At(8); math.Abs(got-want) > 1e-9 {
		t.Errorf("At(8) = %g, want %g", got, want)
	}
	// Clamp: n < 1 behaves like 1.
	if got := c.At(0); got != c.At(1) {
		t.Errorf("At(0) = %g, want At(1) = %g", got, c.At(1))
	}
}

func TestCostCurvesMonotone(t *testing.T) {
	for name, p := range Profiles() {
		for _, kind := range []string{"process", "kthread", "uthread", "ampi", "event"} {
			c, err := p.SwitchCost(kind)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			prev := c.At(1)
			for _, n := range []int{2, 10, 100, 1000, 10000} {
				cur := c.At(n)
				if cur < prev {
					t.Errorf("%s %s: cost decreased from %g to %g at n=%d", name, kind, prev, cur, n)
				}
				prev = cur
			}
		}
	}
}

func TestSwitchCostUnknownKind(t *testing.T) {
	if _, err := LinuxX86().SwitchCost("fiber"); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestProfilesLookup(t *testing.T) {
	p, err := ByName("linux-x86")
	if err != nil || p.Name != "linux-x86" {
		t.Fatalf("ByName: %v, %v", p, err)
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("ByName of unknown platform should error")
	}
}

// TestTable1MatchesPaper pins the derived portability matrix to the
// paper's Table 1, cell for cell.
func TestTable1MatchesPaper(t *testing.T) {
	want := map[string][3]Support{ // StackCopy, Isomalloc, MemoryAlias
		"linux-x86":    {Yes, Yes, Yes},
		"ia64":         {Maybe, Yes, Yes},
		"opteron":      {Yes, Yes, Yes},
		"mac-g5":       {Maybe, Yes, Yes},
		"ibm-sp":       {Yes, Yes, Yes},
		"sun-solaris9": {Yes, Yes, Yes},
		"alpha-es45":   {Yes, Yes, Yes},
		"bgl":          {Maybe, No, Maybe},
		"windows":      {Yes, Maybe, Maybe},
	}
	ps := Profiles()
	for name, row := range want {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		for i, tech := range Techniques() {
			if got := p.Supports(tech); got != row[i] {
				t.Errorf("Table1[%s][%s] = %s, want %s", name, tech, got, row[i])
			}
		}
	}
	if len(Table1Order()) != len(want) {
		t.Errorf("Table1Order has %d platforms, want %d", len(Table1Order()), len(want))
	}
}

// TestTable2MatchesPaper pins the limits to the paper's Table 2.
func TestTable2MatchesPaper(t *testing.T) {
	type row struct{ proc, kthread, uthread Limit }
	want := map[string]row{
		"linux-x86":    {Limit{8000, false}, Limit{250, false}, Limit{90000, true}},
		"sun-solaris9": {Limit{25000, false}, Limit{3000, false}, Limit{90000, true}},
		"ibm-sp":       {Limit{100, false}, Limit{2000, false}, Limit{15000, false}},
		"alpha-es45":   {Limit{1000, false}, Limit{90000, true}, Limit{90000, true}},
		"mac-g5":       {Limit{500, false}, Limit{7000, false}, Limit{90000, true}},
		"ia64":         {Limit{50000, true}, Limit{30000, true}, Limit{50000, true}},
	}
	ps := Profiles()
	for name, w := range want {
		p := ps[name]
		if p.MaxProcesses != w.proc {
			t.Errorf("%s MaxProcesses = %v, want %v", name, p.MaxProcesses, w.proc)
		}
		if p.MaxKernelThreads != w.kthread {
			t.Errorf("%s MaxKernelThreads = %v, want %v", name, p.MaxKernelThreads, w.kthread)
		}
		if p.MaxUserThreads != w.uthread {
			t.Errorf("%s MaxUserThreads = %v, want %v", name, p.MaxUserThreads, w.uthread)
		}
	}
}

// TestULTFastestExceptSPAndAlpha pins the headline qualitative result
// of Figures 4-8: user-level threads switch fastest except on the two
// machines whose kernels ignored sched_yield.
func TestULTFastestExceptSPAndAlpha(t *testing.T) {
	for name, p := range Profiles() {
		if !p.KernelThreadsOK {
			continue // BG/L has no kernel flows to compare against
		}
		for _, n := range []int{4, 64, 1024} {
			u, _ := p.MeasuredYieldCost("uthread", n)
			proc, _ := p.MeasuredYieldCost("process", n)
			kt, _ := p.MeasuredYieldCost("kthread", n)
			if p.YieldIgnored {
				// Artifact: kernel flows *appear* faster.
				if !(proc < u && kt < u) {
					t.Errorf("%s (yield ignored) at n=%d: expected artificially low kernel times, got proc=%g kt=%g ult=%g", name, n, proc, kt, u)
				}
				// The true cost curves still rank ULTs fastest.
				if !(p.UThreadSwitch.At(n) < p.ProcSwitch.At(n)) {
					t.Errorf("%s at n=%d: true ULT cost should beat true process cost", name, n)
				}
			} else {
				if !(u < proc && u < kt) {
					t.Errorf("%s at n=%d: ULT not fastest: proc=%g kt=%g ult=%g", name, n, proc, kt, u)
				}
			}
			// AMPI threads pay an overhead above plain Cth everywhere.
			if a := p.AMPISwitch.At(n); a <= u {
				t.Errorf("%s at n=%d: AMPI %g not above Cth %g", name, n, a, u)
			}
		}
	}
}

func TestYieldIgnoredCurvesAreFlatArtifacts(t *testing.T) {
	for _, p := range []*Profile{IBMSP(), AlphaES45()} {
		if !p.YieldIgnored {
			t.Fatalf("%s should have YieldIgnored", p.Name)
		}
	}
	if LinuxX86().YieldIgnored {
		t.Error("linux-x86 should not ignore sched_yield")
	}
}

func TestVirtLimits(t *testing.T) {
	for name, p := range Profiles() {
		switch p.Bits {
		case 32:
			if p.VirtLimit == 0 || p.VirtLimit > 4<<30 {
				t.Errorf("%s: 32-bit platform with virt limit %d", name, p.VirtLimit)
			}
		case 64:
			if p.VirtLimit != 0 {
				t.Errorf("%s: 64-bit platform should be unlimited, got %d", name, p.VirtLimit)
			}
		default:
			t.Errorf("%s: bad Bits %d", name, p.Bits)
		}
	}
}

func TestLimitString(t *testing.T) {
	if got := (Limit{90000, true}).String(); got != "90000+" {
		t.Errorf("Limit+ string = %q", got)
	}
	if got := (Limit{250, false}).String(); got != "250" {
		t.Errorf("Limit string = %q", got)
	}
	if (Limit{90000, true}).Bounded() {
		t.Error("Plus limit should be unbounded")
	}
}

func TestSupportStrings(t *testing.T) {
	for _, s := range []Support{No, Maybe, Yes, Support(9)} {
		if s.String() == "" {
			t.Error("empty support string")
		}
	}
	for _, tech := range append(Techniques(), Technique(9)) {
		if tech.String() == "" {
			t.Error("empty technique string")
		}
	}
}

// Property: cost curves are non-negative and non-decreasing for any
// flow count.
func TestQuickCurveNonDecreasing(t *testing.T) {
	p := LinuxX86()
	f := func(a, b uint16) bool {
		n1, n2 := int(a)+1, int(b)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		c := p.ProcSwitch
		return c.At(n1) >= 0 && c.At(n1) <= c.At(n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
