// Package platform encodes the 2005/2006-era machines of the paper's
// evaluation as data: per-mechanism context-switch cost curves
// (Figures 4-8), practical limits on flows of control (Table 2), and
// the capability predicates from which the portability matrix of
// migratable-thread techniques (Table 1) is derived.
//
// The simulated kernel (internal/oskernel) charges these costs to a
// virtual clock; the mechanisms themselves are real code. Absolute
// numbers are calibrated to the paper's qualitative results (who
// wins, growth with flow count, the sched_yield artifact on IBM SP
// and Alpha); they are not measurements of this repository.
package platform

import (
	"fmt"
	"math"
)

// CostCurve models a context-switch (or dispatch) cost as a function
// of the number of runnable flows: Base + PerFlowLog*log2(n) +
// PerFlowLinear*n nanoseconds. The logarithmic term models tree-based
// run queues and cache effects; the linear term models O(n) scanning
// schedulers such as the pre-O(1) Linux 2.4 run queue.
type CostCurve struct {
	Base          float64 // ns at one flow
	PerFlowLog    float64 // ns multiplied by log2(nflows)
	PerFlowLinear float64 // ns per runnable flow
}

// At returns the per-switch cost in nanoseconds with n runnable flows.
func (c CostCurve) At(n int) float64 {
	if n < 1 {
		n = 1
	}
	return c.Base + c.PerFlowLog*math.Log2(float64(n)) + c.PerFlowLinear*float64(n)
}

// Limit is a practical limit on the number of flows of a kind, as in
// Table 2. Plus reproduces the paper's "90000+" entries: the probe
// reached N without hitting the limit.
type Limit struct {
	N    int
	Plus bool
}

func (l Limit) String() string {
	if l.Plus {
		return fmt.Sprintf("%d+", l.N)
	}
	return fmt.Sprintf("%d", l.N)
}

// Bounded reports whether creating more than N flows must fail.
func (l Limit) Bounded() bool { return !l.Plus }

// Profile describes one platform: identity, virtual-memory geometry,
// kernel behaviour, limits, and cost curves.
type Profile struct {
	Name    string // stable key, e.g. "linux-x86"
	Display string // e.g. "Linux 2.4 / 1.6 GHz Pentium M"

	// Address-space geometry.
	Bits      int    // pointer width: 32 or 64
	VirtLimit uint64 // usable virtual bytes per process (0 = unlimited)

	// Capabilities behind the Table 1 portability matrix.
	HasMmap           bool // anonymous fixed-address mmap available
	MmapEquivalent    bool // e.g. Windows MapViewOfFileEx: possible with small effort
	HeapRemapExt      bool // BG/L microkernel extension remapping heap over stack
	QuickThreadsPort  bool // the stack-copy implementation has been ported
	FixedStackBase    bool // system stack base identical across nodes (no ASLR)
	KernelThreadsOK   bool // pthreads supported at all (BG/L: no)
	ProcessControlsOK bool // fork/system/exec supported (BG/L, ASCI Red: no)

	// sched_yield fidelity: on IBM SP and Alpha the OS appeared to
	// ignore repeated sched_yield calls, producing artificially low
	// process/kernel-thread switch times (Figures 7 and 8).
	YieldIgnored bool

	// Table 2 practical limits.
	MaxProcesses     Limit
	MaxKernelThreads Limit
	MaxUserThreads   Limit

	// Figure 4-8 cost curves (ns/switch as a function of flows).
	ProcSwitch    CostCurve
	KThreadSwitch CostCurve
	UThreadSwitch CostCurve
	AMPISwitch    CostCurve
	EventDispatch CostCurve

	// Creation costs (ns).
	ProcCreate    float64
	KThreadCreate float64
	UThreadCreate float64

	// Micro-costs used by the migratable-thread strategies.
	SyscallOverhead float64 // ns per syscall entry/exit (mmap, yield)
	MmapCall        float64 // ns per mmap/munmap call (memory aliasing)
	PageMapCost     float64 // ns per page of page-table update
	MemcpyPerKB     float64 // ns to copy 1 KiB (stack copying)
}

// SwitchCost returns the per-switch cost curve for the named
// mechanism kind ("process", "kthread", "uthread", "ampi", "event").
func (p *Profile) SwitchCost(kind string) (CostCurve, error) {
	switch kind {
	case "process":
		return p.ProcSwitch, nil
	case "kthread":
		return p.KThreadSwitch, nil
	case "uthread":
		return p.UThreadSwitch, nil
	case "ampi":
		return p.AMPISwitch, nil
	case "event":
		return p.EventDispatch, nil
	}
	return CostCurve{}, fmt.Errorf("platform: unknown mechanism kind %q", kind)
}

// MeasuredYieldCost returns the per-switch cost a sched_yield
// microbenchmark *observes* for the given mechanism kind with n
// runnable flows. On platforms whose kernels ignore repeated
// sched_yield (IBM SP, Alpha — Figures 7 and 8), the observed cost of
// process and kernel-thread "switches" collapses to the bare syscall
// overhead because no switch actually happens; user-level mechanisms
// are unaffected since their yields never enter the kernel.
func (p *Profile) MeasuredYieldCost(kind string, n int) (float64, error) {
	if p.YieldIgnored && (kind == "process" || kind == "kthread") {
		return p.SyscallOverhead, nil
	}
	c, err := p.SwitchCost(kind)
	if err != nil {
		return 0, err
	}
	return c.At(n), nil
}

const (
	gib = uint64(1) << 30
)

// unbounded marks Table 2 entries the paper reports as "N+".
func unbounded(n int) Limit { return Limit{N: n, Plus: true} }
func bounded(n int) Limit   { return Limit{N: n} }

// Profiles returns all built-in platform profiles keyed by Name.
func Profiles() map[string]*Profile {
	ps := []*Profile{LinuxX86(), MacG5(), SunSolaris(), IBMSP(), AlphaES45(), IA64(), Opteron(), BlueGeneL(), Windows()}
	m := make(map[string]*Profile, len(ps))
	for _, p := range ps {
		m[p.Name] = p
	}
	return m
}

// ByName returns the named profile or an error listing valid names.
func ByName(name string) (*Profile, error) {
	ps := Profiles()
	if p, ok := ps[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	return nil, fmt.Errorf("platform: unknown platform %q (have %v)", name, names)
}

// LinuxX86 models the paper's x86 laptop: 1.6 GHz Pentium M, Linux
// 2.4.25 / glibc 2.3.3 (Red Hat 9). The 2.4 scheduler scans the run
// queue, so process/kthread switch cost grows linearly; RH9's
// LinuxThreads caps pthreads per process at ~250 (Table 2).
func LinuxX86() *Profile {
	return &Profile{
		Name: "linux-x86", Display: "Linux 2.4 (RH9) / 1.6 GHz Pentium M",
		Bits: 32, VirtLimit: 3 * gib,
		HasMmap: true, QuickThreadsPort: true, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     bounded(8000),
		MaxKernelThreads: bounded(250),
		MaxUserThreads:   unbounded(90000),
		ProcSwitch:       CostCurve{Base: 1900, PerFlowLog: 120, PerFlowLinear: 0.9},
		KThreadSwitch:    CostCurve{Base: 1400, PerFlowLog: 100, PerFlowLinear: 0.8},
		UThreadSwitch:    CostCurve{Base: 280, PerFlowLog: 35},
		AMPISwitch:       CostCurve{Base: 480, PerFlowLog: 45},
		EventDispatch:    CostCurve{Base: 55, PerFlowLog: 4},
		ProcCreate:       250_000, KThreadCreate: 45_000, UThreadCreate: 2_500,
		SyscallOverhead: 450, MmapCall: 2_800, PageMapCost: 12, MemcpyPerKB: 240,
	}
}

// MacG5 models the Turing cluster nodes: 2 GHz PowerPC G5, Mac OS X.
func MacG5() *Profile {
	return &Profile{
		Name: "mac-g5", Display: "Mac OS X / 2 GHz PowerPC G5",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: false, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     bounded(500),
		MaxKernelThreads: bounded(7000),
		MaxUserThreads:   unbounded(90000),
		ProcSwitch:       CostCurve{Base: 4200, PerFlowLog: 260},
		KThreadSwitch:    CostCurve{Base: 3100, PerFlowLog: 190},
		UThreadSwitch:    CostCurve{Base: 430, PerFlowLog: 50},
		AMPISwitch:       CostCurve{Base: 730, PerFlowLog: 65},
		EventDispatch:    CostCurve{Base: 70, PerFlowLog: 5},
		ProcCreate:       480_000, KThreadCreate: 90_000, UThreadCreate: 3_200,
		SyscallOverhead: 700, MmapCall: 4_500, PageMapCost: 16, MemcpyPerKB: 210,
	}
}

// SunSolaris models the 700 MHz SunBlade 1000 running Solaris 9.
func SunSolaris() *Profile {
	return &Profile{
		Name: "sun-solaris9", Display: "Solaris 9 / 700 MHz SunBlade 1000",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: true, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     bounded(25000),
		MaxKernelThreads: bounded(3000),
		MaxUserThreads:   unbounded(90000),
		ProcSwitch:       CostCurve{Base: 3400, PerFlowLog: 230},
		KThreadSwitch:    CostCurve{Base: 2700, PerFlowLog: 170},
		UThreadSwitch:    CostCurve{Base: 620, PerFlowLog: 70},
		AMPISwitch:       CostCurve{Base: 940, PerFlowLog: 90},
		EventDispatch:    CostCurve{Base: 120, PerFlowLog: 8},
		ProcCreate:       600_000, KThreadCreate: 110_000, UThreadCreate: 5_000,
		SyscallOverhead: 900, MmapCall: 5_200, PageMapCost: 21, MemcpyPerKB: 480,
	}
}

// IBMSP models one 1.3 GHz Power4 "Regatta" node of cu.ncsa.uiuc.edu
// running AIX 5.1. Its per-user process limit was only 100; repeated
// sched_yield appeared to be ignored, so measured process and kernel
// thread switch times were artificially low (Figure 7).
func IBMSP() *Profile {
	return &Profile{
		Name: "ibm-sp", Display: "AIX 5.1 / 1.3 GHz Power4 (IBM SP)",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: true, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		YieldIgnored:     true,
		MaxProcesses:     bounded(100),
		MaxKernelThreads: bounded(2000),
		MaxUserThreads:   bounded(15000),
		ProcSwitch:       CostCurve{Base: 2900, PerFlowLog: 200},
		KThreadSwitch:    CostCurve{Base: 2300, PerFlowLog: 150},
		UThreadSwitch:    CostCurve{Base: 520}, // flat on SP per the paper
		AMPISwitch:       CostCurve{Base: 830},
		EventDispatch:    CostCurve{Base: 80, PerFlowLog: 5},
		ProcCreate:       420_000, KThreadCreate: 80_000, UThreadCreate: 4_100,
		SyscallOverhead: 290, MmapCall: 3_900, PageMapCost: 15, MemcpyPerKB: 190,
	}
}

// AlphaES45 models one 1 GHz ES45 AlphaServer node of lemieux.psc.edu
// running Tru64; it also ignored repeated sched_yield (Figure 8) and
// allowed more than 90000 kernel threads (Table 2).
func AlphaES45() *Profile {
	return &Profile{
		Name: "alpha-es45", Display: "Tru64 / 1 GHz AlphaServer ES45",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: true, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		YieldIgnored:     true,
		MaxProcesses:     bounded(1000),
		MaxKernelThreads: unbounded(90000),
		MaxUserThreads:   unbounded(90000),
		ProcSwitch:       CostCurve{Base: 2600, PerFlowLog: 180},
		KThreadSwitch:    CostCurve{Base: 2100, PerFlowLog: 140},
		UThreadSwitch:    CostCurve{Base: 680, PerFlowLog: 75},
		AMPISwitch:       CostCurve{Base: 1050, PerFlowLog: 95},
		EventDispatch:    CostCurve{Base: 90, PerFlowLog: 6},
		ProcCreate:       380_000, KThreadCreate: 70_000, UThreadCreate: 3_800,
		SyscallOverhead: 550, MmapCall: 3_600, PageMapCost: 14, MemcpyPerKB: 260,
	}
}

// IA64 models an Itanium Linux node: 64-bit, no QuickThreads port
// (Table 1 "Maybe" for stack copy), generous limits (Table 2).
func IA64() *Profile {
	return &Profile{
		Name: "ia64", Display: "Linux / Itanium 2 (IA-64)",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: false, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     unbounded(50000),
		MaxKernelThreads: unbounded(30000),
		MaxUserThreads:   unbounded(50000),
		ProcSwitch:       CostCurve{Base: 2400, PerFlowLog: 160},
		KThreadSwitch:    CostCurve{Base: 1900, PerFlowLog: 130},
		UThreadSwitch:    CostCurve{Base: 410, PerFlowLog: 45},
		AMPISwitch:       CostCurve{Base: 690, PerFlowLog: 60},
		EventDispatch:    CostCurve{Base: 65, PerFlowLog: 5},
		ProcCreate:       300_000, KThreadCreate: 55_000, UThreadCreate: 2_900,
		SyscallOverhead: 500, MmapCall: 3_100, PageMapCost: 13, MemcpyPerKB: 200,
	}
}

// Opteron models a 2.2 GHz Athlon64/Opteron Linux node (the machine of
// the 16/18 ns minimal-swap measurement in §4.3).
func Opteron() *Profile {
	return &Profile{
		Name: "opteron", Display: "Linux / 2.2 GHz Opteron (x86-64)",
		Bits: 64, VirtLimit: 0,
		HasMmap: true, QuickThreadsPort: true, FixedStackBase: true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     bounded(8000),
		MaxKernelThreads: bounded(2000),
		MaxUserThreads:   unbounded(90000),
		ProcSwitch:       CostCurve{Base: 1500, PerFlowLog: 100},
		KThreadSwitch:    CostCurve{Base: 1100, PerFlowLog: 80},
		UThreadSwitch:    CostCurve{Base: 210, PerFlowLog: 28},
		AMPISwitch:       CostCurve{Base: 360, PerFlowLog: 38},
		EventDispatch:    CostCurve{Base: 40, PerFlowLog: 3},
		ProcCreate:       180_000, KThreadCreate: 35_000, UThreadCreate: 1_900,
		SyscallOverhead: 350, MmapCall: 2_200, PageMapCost: 10, MemcpyPerKB: 160,
	}
}

// BlueGeneL models a BG/L compute node: 32-bit PowerPC 440 under a
// microkernel without fork/exec, without pthreads, and without mmap —
// but with the paper's proposed heap-remap extension (§3.4.4), which
// makes memory aliasing a "Maybe" while isomalloc stays impossible.
func BlueGeneL() *Profile {
	return &Profile{
		Name: "bgl", Display: "Blue Gene/L microkernel / 700 MHz PPC440",
		Bits: 32, VirtLimit: 1 * gib,
		HasMmap: false, HeapRemapExt: true, QuickThreadsPort: false,
		FixedStackBase:  true,
		KernelThreadsOK: false, ProcessControlsOK: false,
		MaxProcesses:     bounded(1), // one app image per node
		MaxKernelThreads: bounded(0),
		MaxUserThreads:   unbounded(40000),
		UThreadSwitch:    CostCurve{Base: 900, PerFlowLog: 90},
		AMPISwitch:       CostCurve{Base: 1300, PerFlowLog: 110},
		EventDispatch:    CostCurve{Base: 150, PerFlowLog: 9},
		UThreadCreate:    6_000,
		SyscallOverhead:  800, PageMapCost: 25, MemcpyPerKB: 600,
	}
}

// Windows models a 32-bit Windows node: no mmap, but MapViewOfFileEx
// is an equivalent, so isomalloc and memory aliasing are "Maybe";
// QuickThreads-based stack copy was ported ("Yes" in Table 1).
func Windows() *Profile {
	return &Profile{
		Name: "windows", Display: "Windows / x86",
		Bits: 32, VirtLimit: 2 * gib,
		HasMmap: false, MmapEquivalent: true, QuickThreadsPort: true,
		FixedStackBase:  true,
		KernelThreadsOK: true, ProcessControlsOK: true,
		MaxProcesses:     bounded(2000),
		MaxKernelThreads: bounded(2000),
		MaxUserThreads:   unbounded(50000),
		ProcSwitch:       CostCurve{Base: 5200, PerFlowLog: 300},
		KThreadSwitch:    CostCurve{Base: 2600, PerFlowLog: 170},
		UThreadSwitch:    CostCurve{Base: 520, PerFlowLog: 55},
		AMPISwitch:       CostCurve{Base: 860, PerFlowLog: 75},
		EventDispatch:    CostCurve{Base: 75, PerFlowLog: 5},
		ProcCreate:       900_000, KThreadCreate: 60_000, UThreadCreate: 3_000,
		SyscallOverhead: 650, MmapCall: 5_000, PageMapCost: 19, MemcpyPerKB: 230,
	}
}
