package flows

import (
	"testing"

	"migflow/internal/platform"
)

func blockingWorkload() BlockingWorkload {
	return BlockingWorkload{Flows: 16, Bursts: 10, ComputeNs: 20_000, IONs: 100_000}
}

func simulate(t *testing.T, model BlockingModel, m int) float64 {
	t.Helper()
	v, err := SimulateBlocking(model, platform.LinuxX86(), blockingWorkload(), m)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestBlockingModelRanking pins §2.2-2.3's qualitative result: pure
// N:1 user threads serialize all blocking I/O and lose badly; 1:1
// kernel threads, adequate N:M, and scheduler activations overlap
// I/O with computation.
func TestBlockingModelRanking(t *testing.T) {
	n1 := simulate(t, ModelN1, 0)
	k11 := simulate(t, Model1to1, 0)
	nm := simulate(t, ModelNM, 8)
	act := simulate(t, ModelActivations, 0)

	w := blockingWorkload()
	totalCompute := float64(w.Flows*w.Bursts) * w.ComputeNs
	totalIO := float64(w.Flows*w.Bursts) * w.IONs

	// N:1 pays every I/O serially.
	if n1 < totalCompute+totalIO {
		t.Errorf("N:1 = %g, should include all serialized I/O (≥ %g)", n1, totalCompute+totalIO)
	}
	// The overlapping models finish in far less than compute+IO.
	for _, v := range []struct {
		name string
		got  float64
	}{{"1:1", k11}, {"N:M", nm}, {"activations", act}} {
		if v.got > totalCompute+totalIO/2 {
			t.Errorf("%s = %g, overlap missing (bound %g)", v.name, v.got, totalCompute+totalIO/2)
		}
		if !(v.got < n1/2) {
			t.Errorf("%s = %g not ≪ N:1 %g", v.name, v.got, n1)
		}
	}
	// User-level switching beats kernel switching when both overlap.
	if !(nm < k11) {
		t.Errorf("N:M (%g) should beat 1:1 (%g) on switch costs", nm, k11)
	}
	if !(act < k11) {
		t.Errorf("activations (%g) should beat 1:1 (%g)", act, k11)
	}
}

// TestNMDegradesWithFewEntities: M=1 behaves like N:1 (the single
// kernel entity blocks); growing M approaches full overlap.
func TestNMDegradesWithFewEntities(t *testing.T) {
	m1 := simulate(t, ModelNM, 1)
	m2 := simulate(t, ModelNM, 2)
	m8 := simulate(t, ModelNM, 8)
	n1 := simulate(t, ModelN1, 0)
	if !(m8 < m2 && m2 < m1) {
		t.Errorf("N:M makespans not improving with M: m1=%g m2=%g m8=%g", m1, m2, m8)
	}
	// With one entity, nearly everything serializes, like N:1.
	if m1 < n1*0.8 {
		t.Errorf("N:M with M=1 (%g) should approach N:1 (%g)", m1, n1)
	}
}

func TestBlockingComputeOnly(t *testing.T) {
	w := BlockingWorkload{Flows: 4, Bursts: 3, ComputeNs: 1000, IONs: 0}
	v, err := SimulateBlocking(ModelN1, platform.LinuxX86(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No I/O: makespan = compute + switches, identical across models.
	v2, err := SimulateBlocking(Model1to1, platform.LinuxX86(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v2 <= 0 {
		t.Fatal("empty makespans")
	}
	if !(v < v2) {
		t.Errorf("without I/O, ULT switching (%g) should still beat kernel switching (%g)", v, v2)
	}
}

func TestBlockingValidation(t *testing.T) {
	if _, err := SimulateBlocking(ModelN1, platform.LinuxX86(), BlockingWorkload{}, 0); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := SimulateBlocking(ModelNM, platform.LinuxX86(), blockingWorkload(), 0); err == nil {
		t.Error("N:M with zero entities accepted")
	}
}

func TestBlockingModelStrings(t *testing.T) {
	for _, m := range []BlockingModel{Model1to1, ModelN1, ModelNM, ModelActivations, BlockingModel(9)} {
		if m.String() == "" {
			t.Error("empty model string")
		}
	}
}
