// Package flows puts the paper's four flow-of-control mechanisms
// (§2: processes, kernel threads, user-level threads, event-driven
// objects) behind one interface so the evaluation harness can probe
// creation limits (Table 2) and run the yield microbenchmark
// (Figures 4-8) uniformly across platforms.
package flows

import (
	"fmt"

	"migflow/internal/oskernel"
	"migflow/internal/platform"
	"migflow/internal/simclock"
)

// Kind names a mechanism.
type Kind string

// The mechanisms of §2 (plus the AMPI migratable-thread variant
// measured alongside plain user-level threads in Figures 4-8).
const (
	KindProcess     Kind = "process"
	KindKThread     Kind = "kthread"
	KindUserThread  Kind = "uthread"
	KindAMPIThread  Kind = "ampi"
	KindEventObject Kind = "event"
)

// Kinds lists the mechanisms in figure-legend order.
func Kinds() []Kind {
	return []Kind{KindProcess, KindKThread, KindUserThread, KindAMPIThread, KindEventObject}
}

// Mechanism abstracts one flow-of-control implementation on one
// (simulated) platform.
type Mechanism interface {
	// Kind returns the mechanism name.
	Kind() Kind
	// Probe creates flows until creation fails or cap is reached and
	// returns how many were created (the Table 2 probe). All created
	// flows are destroyed before returning.
	Probe(cap int) int
	// BenchYield runs the Figure 4-8 microbenchmark: n flows each
	// yield once per round, for rounds rounds; it returns the
	// observed virtual nanoseconds per flow per context switch.
	BenchYield(n, rounds int) (float64, error)
}

// New builds the mechanism of the given kind on a fresh simulated
// kernel for the platform.
func New(kind Kind, prof *platform.Profile, clock *simclock.Clock) (Mechanism, error) {
	if clock == nil {
		clock = simclock.New()
	}
	k := oskernel.New(prof, clock)
	switch kind {
	case KindProcess:
		return &processMech{k: k}, nil
	case KindKThread:
		return &kthreadMech{k: k}, nil
	case KindUserThread:
		return &ultMech{k: k, kind: KindUserThread}, nil
	case KindAMPIThread:
		return &ultMech{k: k, kind: KindAMPIThread}, nil
	case KindEventObject:
		return &eventMech{k: k}, nil
	}
	return nil, fmt.Errorf("flows: unknown kind %q", kind)
}

// processMech: flows are OS processes created with fork() and
// yielding with sched_yield() (§4.1).
type processMech struct{ k *oskernel.Kernel }

func (m *processMech) Kind() Kind { return KindProcess }

func (m *processMech) Probe(cap int) int { return oskernel.ProbeProcessLimit(m.k, cap) }

func (m *processMech) BenchYield(n, rounds int) (float64, error) {
	procs := make([]*oskernel.Process, 0, n)
	defer func() {
		for _, p := range procs {
			p.Exit()
		}
	}()
	for i := 0; i < n; i++ {
		p, err := m.k.Fork()
		if err != nil {
			return 0, fmt.Errorf("flows: only %d of %d processes creatable: %w", i, n, err)
		}
		procs = append(procs, p)
	}
	return m.k.YieldRounds("process", n, rounds)
}

// kthreadMech: flows are pthreads in one process.
type kthreadMech struct{ k *oskernel.Kernel }

func (m *kthreadMech) Kind() Kind { return KindKThread }

func (m *kthreadMech) Probe(cap int) int { return oskernel.ProbeThreadLimit(m.k, cap) }

func (m *kthreadMech) BenchYield(n, rounds int) (float64, error) {
	p, err := m.k.Fork()
	if err != nil {
		return 0, err
	}
	defer p.Exit()
	for i := 0; i < n; i++ {
		if _, err := p.CreateThread(); err != nil {
			return 0, fmt.Errorf("flows: only %d of %d kernel threads creatable: %w", i, n, err)
		}
	}
	return m.k.YieldRounds("kthread", n, rounds)
}

// ultMech: user-level threads — plain Cth (uthread) or migratable
// AMPI (isomalloc + privatization overhead). Creation is bounded by
// memory and the platform's practical ULT limit; the kernel is not
// involved in scheduling.
type ultMech struct {
	k    *oskernel.Kernel
	kind Kind
}

func (m *ultMech) Kind() Kind { return m.kind }

func (m *ultMech) Probe(cap int) int {
	lim := m.k.Profile().MaxUserThreads
	n := 0
	for n < cap {
		if lim.Bounded() && n >= lim.N {
			break
		}
		m.k.Clock().Advance(m.k.Profile().UThreadCreate)
		n++
	}
	return n
}

func (m *ultMech) BenchYield(n, rounds int) (float64, error) {
	if lim := m.k.Profile().MaxUserThreads; lim.Bounded() && n > lim.N {
		return 0, fmt.Errorf("flows: %d user threads exceed the platform limit %d", n, lim.N)
	}
	return m.k.YieldRounds(string(m.kind), n, rounds)
}

// eventMech: event-driven objects (§2.4) — suspending is a return,
// resuming is a function call; the "switch" is a scheduler dispatch.
type eventMech struct{ k *oskernel.Kernel }

func (m *eventMech) Kind() Kind { return KindEventObject }

func (m *eventMech) Probe(cap int) int {
	// Objects are plain data: bounded by memory only.
	return cap
}

func (m *eventMech) BenchYield(n, rounds int) (float64, error) {
	return m.k.YieldRounds("event", n, rounds)
}

// Curve runs BenchYield over a sweep of flow counts, returning one
// (flows, ns/switch) point per count — the series plotted in Figures
// 4-8. Counts that exceed the mechanism's platform limit are skipped
// (the paper's curves also stop at each mechanism's limit).
type Point struct {
	Flows      int
	NsPerYield float64
}

// Curve produces the figure series for one mechanism kind on prof.
func Curve(kind Kind, prof *platform.Profile, counts []int, rounds int) ([]Point, error) {
	var pts []Point
	for _, n := range counts {
		m, err := New(kind, prof, nil)
		if err != nil {
			return nil, err
		}
		ns, err := m.BenchYield(n, rounds)
		if err != nil {
			continue // beyond this mechanism's limit on this platform
		}
		pts = append(pts, Point{Flows: n, NsPerYield: ns})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("flows: no measurable points for %s on %s", kind, prof.Name)
	}
	return pts, nil
}
