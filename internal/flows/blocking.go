package flows

import (
	"container/heap"
	"fmt"

	"migflow/internal/platform"
)

// Blocking-call behaviour (§2.2-2.3). The paper's central tradeoff:
//
//   - Kernel threads (1:1): "when a kernel thread makes a blocking
//     call, only that thread blocks" — but every switch pays kernel
//     prices.
//   - Pure user-level threads (N:1): "when a user-level thread makes
//     a blocking call ... the kernel suspends the entire calling
//     process, even though another user-level thread might be ready
//     to run."
//   - N:M scheduling maps N user threads onto M kernel entities:
//     cheap user switches, and up to M concurrent blocking calls —
//     but "there are two parties ... involved in each thread
//     operation, which is complex", and the M+1-th blocking call
//     stalls the processor.
//   - Scheduler activations: the kernel upcalls on every block, so
//     the user scheduler always keeps running — at an upcall cost.
//
// SimulateBlocking is a small discrete-event simulation of one
// processor running n flows, each alternating CPU bursts with
// blocking I/O, under each model. The makespans reproduce the
// paper's qualitative ranking.

// BlockingModel selects the threading model.
type BlockingModel int

// The four models of §2.2-2.3.
const (
	// Model1to1: one kernel thread per flow.
	Model1to1 BlockingModel = iota
	// ModelN1: pure user-level threads, blocking calls block the
	// whole process.
	ModelN1
	// ModelNM: N user threads on M kernel entities.
	ModelNM
	// ModelActivations: scheduler activations — kernel upcalls
	// replace stalls.
	ModelActivations
)

func (m BlockingModel) String() string {
	switch m {
	case Model1to1:
		return "1:1 kernel threads"
	case ModelN1:
		return "N:1 user threads"
	case ModelNM:
		return "N:M hybrid"
	case ModelActivations:
		return "scheduler activations"
	}
	return fmt.Sprintf("BlockingModel(%d)", int(m))
}

// BlockingWorkload describes the per-flow behaviour.
type BlockingWorkload struct {
	Flows     int     // concurrent flows on the processor
	Bursts    int     // CPU bursts per flow
	ComputeNs float64 // length of each burst
	IONs      float64 // blocking I/O after each burst
}

// UpcallOverheadNs is the scheduler-activation upcall cost per block
// — a lightweight kernel→user notification, cheaper than a full
// kernel context switch but not free.
const UpcallOverheadNs = 600

// SimulateBlocking returns the virtual makespan of the workload on
// one processor of the given platform under the model. m is the
// kernel-entity count for ModelNM (ignored otherwise).
func SimulateBlocking(model BlockingModel, prof *platform.Profile, w BlockingWorkload, m int) (float64, error) {
	if w.Flows <= 0 || w.Bursts <= 0 {
		return 0, fmt.Errorf("flows: SimulateBlocking: empty workload")
	}
	if model == ModelNM && m <= 0 {
		return 0, fmt.Errorf("flows: SimulateBlocking: N:M needs m ≥ 1 kernel entities")
	}

	// Per-switch cost by model: kernel threads pay kernel prices,
	// the user-level models pay ULT prices.
	switchCost := prof.UThreadSwitch.At(w.Flows)
	if model == Model1to1 {
		switchCost = prof.KThreadSwitch.At(w.Flows)
	}

	type flowState struct {
		burstsLeft int
	}
	flows := make([]flowState, w.Flows)
	for i := range flows {
		flows[i].burstsLeft = w.Bursts
	}

	// Ready queue (indices) and pending I/O completions (min-heap of
	// times, paired with flow ids).
	ready := make([]int, w.Flows)
	for i := range ready {
		ready[i] = i
	}
	io := &ioHeap{}
	now := 0.0
	blocked := 0 // flows currently in the kernel doing I/O

	// canOverlap reports whether, with `blocked` flows already in
	// blocking calls, the processor can keep executing ready flows.
	canOverlap := func() bool {
		switch model {
		case ModelN1:
			return false // the whole process is suspended
		case ModelNM:
			return blocked < m // one kernel entity must remain on-CPU
		default:
			return true
		}
	}

	for len(ready) > 0 || io.Len() > 0 {
		if len(ready) == 0 || !canOverlap() && blocked > 0 {
			// Processor stalls until the next I/O completion.
			if io.Len() == 0 {
				return 0, fmt.Errorf("flows: SimulateBlocking: deadlock (no ready flows, no I/O)")
			}
			ev := heap.Pop(io).(ioEvent)
			if ev.at > now {
				now = ev.at
			}
			blocked--
			if ev.flow >= 0 {
				ready = append(ready, ev.flow)
			}
			continue
		}
		// Run the next ready flow for one burst.
		f := ready[0]
		ready = ready[1:]
		now += switchCost + w.ComputeNs
		flows[f].burstsLeft--
		if flows[f].burstsLeft == 0 && w.IONs == 0 {
			continue // finished
		}
		// Issue the blocking call (also after the last burst: the
		// final write/flush).
		if model == ModelActivations {
			now += UpcallOverheadNs
		}
		if w.IONs > 0 {
			blocked++
			if flows[f].burstsLeft > 0 {
				heap.Push(io, ioEvent{at: now + w.IONs, flow: f})
			} else {
				// Final I/O: completes off-CPU; nothing to requeue,
				// but it still occupies a kernel entity until done.
				heap.Push(io, ioEvent{at: now + w.IONs, flow: -1})
			}
		}
	}
	// Drain remaining completions: the job ends when the last I/O is
	// done.
	end := now
	for io.Len() > 0 {
		ev := heap.Pop(io).(ioEvent)
		if ev.at > end {
			end = ev.at
		}
	}
	return end, nil
}

type ioEvent struct {
	at   float64
	flow int
}

type ioHeap []ioEvent

func (h ioHeap) Len() int           { return len(h) }
func (h ioHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h ioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ioHeap) Push(x any)        { *h = append(*h, x.(ioEvent)) }
func (h *ioHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
