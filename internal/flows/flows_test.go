package flows

import (
	"testing"

	"migflow/internal/platform"
)

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("warp", platform.LinuxX86(), nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindsComplete(t *testing.T) {
	if len(Kinds()) != 5 {
		t.Errorf("Kinds() = %v", Kinds())
	}
	for _, k := range Kinds() {
		m, err := New(k, platform.LinuxX86(), nil)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if m.Kind() != k {
			t.Errorf("Kind = %s, want %s", m.Kind(), k)
		}
	}
}

// TestProbesReproduceTable2 reruns the Table 2 probes through the
// Mechanism interface for every platform in the table.
func TestProbesReproduceTable2(t *testing.T) {
	const cap = 100000
	for _, name := range platform.Table2Order() {
		prof, err := platform.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		expect := func(kind Kind, lim platform.Limit) {
			m, err := New(kind, prof, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := m.Probe(cap)
			if lim.Bounded() && got != lim.N {
				t.Errorf("%s %s probe = %d, want %d", name, kind, got, lim.N)
			}
			if !lim.Bounded() && got != cap {
				t.Errorf("%s %s probe = %d, want cap %d (unbounded)", name, kind, got, cap)
			}
		}
		expect(KindProcess, prof.MaxProcesses)
		expect(KindKThread, prof.MaxKernelThreads)
		expect(KindUserThread, prof.MaxUserThreads)
	}
}

func TestEventObjectsUnbounded(t *testing.T) {
	m, err := New(KindEventObject, platform.LinuxX86(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Probe(12345); got != 12345 {
		t.Errorf("event probe = %d", got)
	}
}

func TestBenchYieldRespectsLimits(t *testing.T) {
	prof := platform.LinuxX86() // 250 pthreads max
	m, err := New(KindKThread, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BenchYield(1000, 1); err == nil {
		t.Error("benchmark beyond the pthread limit accepted")
	}
	if _, err := m.BenchYield(100, 2); err != nil {
		t.Errorf("within-limit bench failed: %v", err)
	}
	u, err := New(KindUserThread, platform.IBMSP(), nil) // 15000 cap
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.BenchYield(20000, 1); err == nil {
		t.Error("ULT bench beyond SP's 15000 limit accepted")
	}
}

// TestCurveShapeLinux pins the Figure 4 ordering on the Linux
// profile: ULT beats AMPI beats kernel flows, at every point.
func TestCurveShapeLinux(t *testing.T) {
	prof := platform.LinuxX86()
	counts := []int{2, 8, 32, 128}
	get := func(kind Kind) []Point {
		pts, err := Curve(kind, prof, counts, 3)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	ult, ampi, proc, kt := get(KindUserThread), get(KindAMPIThread), get(KindProcess), get(KindKThread)
	for i := range counts {
		if !(ult[i].NsPerYield < ampi[i].NsPerYield) {
			t.Errorf("n=%d: ULT %g !< AMPI %g", counts[i], ult[i].NsPerYield, ampi[i].NsPerYield)
		}
		if !(ampi[i].NsPerYield < kt[i].NsPerYield && kt[i].NsPerYield < proc[i].NsPerYield) {
			t.Errorf("n=%d: ordering broken: ampi=%g kt=%g proc=%g", counts[i], ampi[i].NsPerYield, kt[i].NsPerYield, proc[i].NsPerYield)
		}
	}
	// ULT time grows slowly with the number of flows.
	if !(ult[len(ult)-1].NsPerYield > ult[0].NsPerYield) {
		t.Error("ULT curve should grow with flow count on Linux")
	}
}

// TestCurveArtifactIBMSP pins the Figure 7 artifact: the kernel-flow
// curves sit *below* the ULT curve because sched_yield is ignored.
func TestCurveArtifactIBMSP(t *testing.T) {
	prof := platform.IBMSP()
	counts := []int{2, 8, 32}
	proc, err := Curve(KindProcess, prof, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ult, err := Curve(KindUserThread, prof, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if !(proc[i].NsPerYield < ult[i].NsPerYield) {
			t.Errorf("n=%d: SP artifact missing: proc=%g ult=%g", counts[i], proc[i].NsPerYield, ult[i].NsPerYield)
		}
	}
}

// TestCurveSkipsOverLimitPoints checks the curve stops where the
// mechanism's limit cuts it off, like the paper's plots.
func TestCurveSkipsOverLimitPoints(t *testing.T) {
	prof := platform.LinuxX86()
	pts, err := Curve(KindKThread, prof, []int{100, 200, 5000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("curve has %d points, want 2 (5000 > pthread limit)", len(pts))
	}
	if _, err := Curve(KindProcess, platform.IBMSP(), []int{5000}, 1); err == nil {
		t.Error("curve with zero measurable points should error")
	}
}

// TestProcessBenchCleansUp ensures BenchYield does not leak processes
// into the kernel table.
func TestProcessBenchCleansUp(t *testing.T) {
	prof := platform.IBMSP() // limit 100
	m, err := New(KindProcess, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.BenchYield(100, 1); err != nil {
			t.Fatalf("run %d: %v (processes leaked?)", i, err)
		}
	}
}
