package core

import (
	"fmt"
	"math/rand"

	"migflow/internal/comm"
	"migflow/internal/migrate"
)

// StealStats reports the machine's idle-cycle work stealing activity:
// how many victim probes idle PEs made, how many found a queue worth
// robbing, and how many threads actually moved. Stolen threads also
// appear in MigrationStats — a steal is an ordinary migration
// initiated by the thief.
type StealStats struct {
	Attempts uint64 // victim probes made by idle PEs
	Hits     uint64 // probes that transferred at least one thread
	Moved    uint64 // threads moved by stealing
}

// StealStats returns the machine's cumulative work-stealing counters.
func (m *Machine) StealStats() StealStats {
	return StealStats{
		Attempts: m.stealAttempts.Load(),
		Hits:     m.stealHits.Load(),
		Moved:    m.stealMoved.Load(),
	}
}

// stealInto is the idle-steal phase run by PE thief's idle handler:
// bounded randomized two-choice probing — pick two distinct victims,
// rob the modeled-busier one — with each transfer going through the
// normal migration data path. A probe only fires when the victim has
// charged strictly more virtual Work than the thief: wall-clock
// idleness alone is a poor signal (on a loaded host every scheduler
// goroutine drains its queue "instantly"), so without the load gate a
// first-to-idle PE becomes a work magnet and concentrates the very
// imbalance stealing is meant to shed. It reports whether any thread
// moved (the thief's queue is then non-empty).
func (m *Machine) stealInto(thief int, rng *rand.Rand) bool {
	if len(m.pes) < 2 {
		return false
	}
	attempts := m.cfg.StealAttempts
	if attempts <= 0 {
		attempts = DefaultStealAttempts
	}
	for a := 0; a < attempts; a++ {
		victim := m.pickVictim(thief, rng)
		m.stealAttempts.Add(1)
		if m.pes[victim].Sched.BusyNs() <= m.pes[thief].Sched.BusyNs() {
			continue // victim is no more loaded than us — not a steal target
		}
		stolen := m.pes[victim].Sched.TryStealHalf(m.cfg.StealMax)
		if len(stolen) == 0 {
			continue
		}
		for _, t := range stolen {
			// The thread is already evicted (Migrating); MigrateNow
			// runs the ordinary extract → PUP → install pipeline and
			// finishMigration charges the network and forwards the
			// thread's communication endpoint. A failure here is a
			// runtime invariant violation, exactly as on the
			// self-initiated path.
			nbytes, err := migrate.MigrateNow(t, m.pes[victim], m.pes[thief], m.layout)
			if err != nil {
				panic(fmt.Sprintf("core: stealing thread %d from PE %d to %d: %v", t.ID(), victim, thief, err))
			}
			if err := m.finishMigration(comm.EntityID(t.ID()), victim, thief, nbytes); err != nil {
				panic(fmt.Sprintf("core: stealing thread %d from PE %d to %d: %v", t.ID(), victim, thief, err))
			}
		}
		m.stealHits.Add(1)
		m.stealMoved.Add(uint64(len(stolen)))
		return true
	}
	return false
}

// pickVictim implements two-choice victim selection: draw two distinct
// PEs other than the thief and return the one that has charged more
// modeled Work (lock-free peek), breaking ties toward the deeper
// ready queue. With only two PEs there is one candidate.
func (m *Machine) pickVictim(thief int, rng *rand.Rand) int {
	n := len(m.pes)
	v1 := rng.Intn(n - 1)
	if v1 >= thief {
		v1++
	}
	if n == 2 {
		return v1
	}
	// Uniform draw over the PEs excluding the thief and the first
	// pick: shift past each excluded index in ascending order.
	v2 := rng.Intn(n - 2)
	lo, hi := thief, v1
	if lo > hi {
		lo, hi = hi, lo
	}
	if v2 >= lo {
		v2++
	}
	if v2 >= hi {
		v2++
	}
	b1, b2 := m.pes[v1].Sched.BusyNs(), m.pes[v2].Sched.BusyNs()
	if b2 > b1 {
		return v2
	}
	if b2 == b1 && m.pes[v2].Sched.ReadyLenHint() > m.pes[v1].Sched.ReadyLenHint() {
		return v2
	}
	return v1
}
