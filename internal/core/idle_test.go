package core

import (
	"sync/atomic"
	"testing"
	"time"

	"migflow/internal/converse"
	"migflow/internal/migrate"
)

// TestRunParallelQuiescentNoSpin: a machine in RunParallel with
// nothing to do must block in its wake gates, not poll. Each PE gets
// one fruitless poll when it first goes idle; across a 100 ms
// quiescent window no more may accumulate (the old implementation
// spun through Gosched and racked up millions).
func TestRunParallelQuiescentNoSpin(t *testing.T) {
	const pes = 4
	m, err := NewMachine(Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	go func() {
		time.Sleep(100 * time.Millisecond)
		done.Store(true)
		m.Wake()
	}()
	m.RunParallel(done.Load)
	if polls := m.IdlePolls(); polls > 2*pes {
		t.Errorf("quiescent machine made %d idle polls, want ≤ %d (block, don't spin)", polls, 2*pes)
	}
}

// TestRunParallelIdlePEDoesNotSpin: while one PE works through a long
// run of yields, a PE with no work must park on its gate rather than
// poll in step with its neighbour's context switches.
func TestRunParallelIdlePEDoesNotSpin(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		for i := 0; i < 200; i++ {
			c.Yield()
		}
		done.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunParallel(done.Load)
	if polls := m.IdlePolls(); polls > 16 {
		t.Errorf("idle PE made %d polls during neighbour's 200 yields, want a handful", polls)
	}
}
