// Package core assembles the whole simulated parallel machine: N PEs
// (each a converse scheduler over its own simulated address space and
// isomalloc slot), the location-independent network, and the thread
// migration engine, wired so a thread's MigrateTo moves its state
// through PUP across address spaces and its messages keep arriving.
//
// This is the runtime a user of the library boots first; everything
// in the paper's evaluation runs on top of a Machine.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/migrate"
	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
	"migflow/internal/vmem"
)

// Config configures a Machine.
type Config struct {
	// NumPEs is the processor count (required, ≥ 1).
	NumPEs int
	// Platform profile; defaults to the Opteron cluster node.
	Platform *platform.Profile
	// Globals optionally declares the job's swap-global module.
	Globals *swapglobal.Layout
	// Latency is the interconnect model; defaults to
	// comm.DefaultLatency (Myrinet-class).
	Latency comm.LatencyModel
	// IsoSlotPages is each PE's isomalloc slot size in pages;
	// defaults to 16384 pages (64 MiB) per PE.
	IsoSlotPages uint64
}

// DefaultIsoSlotPages is the per-PE isomalloc slot if unset.
const DefaultIsoSlotPages = 16384

// Machine is one booted parallel machine.
type Machine struct {
	cfg    Config
	pes    []*converse.PE
	net    *comm.Network
	layout *swapglobal.Layout

	mu         sync.Mutex
	migrations uint64
	migBytes   uint64

	// tlog, when enabled, receives scheduler and migration events.
	tlog *trace.Log

	// delivery is the fallback invoked for pumped messages whose
	// entity has no dedicated handler.
	delivery func(pe int, msg *comm.Message)
	// handlers routes pumped messages by destination entity
	// (registered by AMPI ranks, chare elements, ...).
	handlers map[comm.EntityID]func(pe int, msg *comm.Message)
}

// NewMachine boots the machine: one address space, kernel heap,
// isomalloc slot, (optional) GOT and scheduler per PE, all agreeing
// on the isomalloc region, plus the network and migration wiring.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumPEs < 1 {
		return nil, fmt.Errorf("core: NumPEs %d must be ≥ 1", cfg.NumPEs)
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.Opteron()
	}
	if cfg.Latency == (comm.LatencyModel{}) {
		cfg.Latency = comm.DefaultLatency
	}
	if cfg.IsoSlotPages == 0 {
		cfg.IsoSlotPages = DefaultIsoSlotPages
	}
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase,
		uint64(cfg.NumPEs)*cfg.IsoSlotPages*vmem.PageSize, cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		net:      comm.NewNetwork(cfg.NumPEs, cfg.Latency),
		layout:   cfg.Globals,
		handlers: make(map[comm.EntityID]func(int, *comm.Message)),
	}
	for i := 0; i < cfg.NumPEs; i++ {
		pe, err := converse.NewPE(converse.PEConfig{
			Index:     i,
			Profile:   cfg.Platform,
			Clock:     simclock.New(),
			IsoRegion: region,
			Globals:   cfg.Globals,
		})
		if err != nil {
			return nil, fmt.Errorf("core: booting PE %d: %w", i, err)
		}
		m.pes = append(m.pes, pe)
	}
	for i, pe := range m.pes {
		i, pe := i, pe
		pe.Sched.SetMigrateHandler(func(t *converse.Thread, dest int) {
			if err := m.migrateThread(t, i, dest); err != nil {
				panic(fmt.Sprintf("core: migrating thread %d from PE %d to %d: %v", t.ID(), i, dest, err))
			}
		})
	}
	return m, nil
}

// NumPEs returns the processor count.
func (m *Machine) NumPEs() int { return len(m.pes) }

// PE returns processor i.
func (m *Machine) PE(i int) *converse.PE { return m.pes[i] }

// Network returns the machine's interconnect.
func (m *Machine) Network() *comm.Network { return m.net }

// Layout returns the job's swap-global module layout (may be nil).
func (m *Machine) Layout() *swapglobal.Layout { return m.layout }

// MaxTime returns the maximum virtual time across PE clocks — the
// parallel execution time of the job so far.
func (m *Machine) MaxTime() float64 {
	var max float64
	for _, pe := range m.pes {
		if t := pe.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// EnableTracing attaches a fresh event log to every PE and returns
// it. Call before running threads.
func (m *Machine) EnableTracing() *trace.Log {
	l := trace.New()
	m.mu.Lock()
	m.tlog = l
	m.mu.Unlock()
	for _, pe := range m.pes {
		pe.Trace = l
	}
	return l
}

// MigrationStats returns (migrations performed, total serialized
// bytes moved).
func (m *Machine) MigrationStats() (count, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations, m.migBytes
}

// SetDeliveryHandler registers the fallback function Pump calls for
// arriving messages without a per-entity handler.
func (m *Machine) SetDeliveryHandler(fn func(pe int, msg *comm.Message)) {
	m.mu.Lock()
	m.delivery = fn
	m.mu.Unlock()
}

// RegisterEntity places a communication entity on a PE and routes its
// incoming messages to handler. AMPI ranks and chare elements live in
// this directory; migration keeps it current.
func (m *Machine) RegisterEntity(id comm.EntityID, pe int, handler func(pe int, msg *comm.Message)) error {
	if err := m.net.Register(id, pe); err != nil {
		return err
	}
	m.mu.Lock()
	m.handlers[id] = handler
	m.mu.Unlock()
	return nil
}

// DeregisterEntity removes an entity and its handler.
func (m *Machine) DeregisterEntity(id comm.EntityID) {
	m.net.Deregister(id)
	m.mu.Lock()
	delete(m.handlers, id)
	m.mu.Unlock()
}

// migrateThread executes one migration: PUP round trip between the
// address spaces, ownership transfer, directory update, and network
// cost charging (the image crosses the interconnect).
func (m *Machine) migrateThread(t *converse.Thread, src, dest int) error {
	if dest < 0 || dest >= len(m.pes) {
		return fmt.Errorf("core: destination PE %d out of range", dest)
	}
	nbytes, err := migrate.MigrateNow(t, m.pes[src], m.pes[dest], m.layout)
	if err != nil {
		return err
	}
	// The image crossed the network: charge the postal model and
	// synchronize the destination clock.
	cost := m.net.Latency().Cost(nbytes)
	arrive := m.pes[src].Clock.Now() + cost
	m.pes[dest].Clock.AdvanceTo(arrive)
	// Forward the thread's communication endpoint if registered.
	if _, err := m.net.Locate(comm.EntityID(t.ID())); err == nil {
		if err := m.net.MigrateEntity(comm.EntityID(t.ID()), dest); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.migrations++
	m.migBytes += uint64(nbytes)
	tlog := m.tlog
	m.mu.Unlock()
	if tlog != nil {
		tlog.Record(trace.Event{TimeNs: m.pes[src].Clock.Now(), PE: src, Kind: trace.EvMigrateOut, Thread: uint64(t.ID()), Arg: uint64(dest)})
		tlog.Record(trace.Event{TimeNs: arrive, PE: dest, Kind: trace.EvMigrateIn, Thread: uint64(t.ID()), Arg: uint64(nbytes)})
	}
	return nil
}

// Pump drains PE pe's network inbox through the delivery handler,
// advancing the PE clock to each message's arrival time. It returns
// the number of messages processed.
// Pump does NOT advance the PE clock: a message's arrival time is
// charged when it is *consumed* (AMPI Recv, chare dispatch), not when
// the transport hands it over — otherwise a fast sender's timestamp
// would serialize a receiver that still has independent work to do.
func (m *Machine) Pump(pe int) int {
	n := 0
	for {
		msg := m.net.Endpoint(pe).Poll()
		if msg == nil {
			return n
		}
		m.mu.Lock()
		fn := m.handlers[msg.To]
		if fn == nil {
			fn = m.delivery
		}
		m.mu.Unlock()
		if fn != nil {
			fn(pe, msg)
		}
		n++
	}
}

// RunUntilQuiescent drives all PEs deterministically from one
// goroutine: round-robin each scheduler to idle and pump the network,
// until no PE has ready threads and no messages are in flight.
// Suspended threads may remain (they are not work).
func (m *Machine) RunUntilQuiescent() {
	for {
		progress := false
		for i, pe := range m.pes {
			if m.Pump(i) > 0 {
				progress = true
			}
			if pe.Sched.ReadyLen() > 0 {
				pe.Sched.RunUntilIdle()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// RunParallel runs every PE scheduler in its own goroutine — the
// wall-clock execution mode. Each idle scheduler pumps its inbox and
// re-checks; when done() reports true, all schedulers stop and
// RunParallel returns. done is called concurrently and must be
// thread-safe.
func (m *Machine) RunParallel(done func() bool) {
	var wg sync.WaitGroup
	for i, pe := range m.pes {
		i, pe := i, pe
		pe.Sched.SetIdleHandler(func() bool {
			if done() {
				return false
			}
			if m.Pump(i) == 0 {
				runtime.Gosched() // idle: let other PEs make progress
			}
			return true
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			pe.Sched.Run()
		}()
	}
	wg.Wait()
}
