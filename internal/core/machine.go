// Package core assembles the whole simulated parallel machine: N PEs
// (each a converse scheduler over its own simulated address space and
// isomalloc slot), the location-independent network, and the thread
// migration engine, wired so a thread's MigrateTo moves its state
// through PUP across address spaces and its messages keep arriving.
//
// This is the runtime a user of the library boots first; everything
// in the paper's evaluation runs on top of a Machine.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/migrate"
	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
	"migflow/internal/vmem"
)

// Config configures a Machine.
type Config struct {
	// NumPEs is the processor count (required, ≥ 1).
	NumPEs int
	// Platform profile; defaults to the Opteron cluster node.
	Platform *platform.Profile
	// Globals optionally declares the job's swap-global module.
	Globals *swapglobal.Layout
	// Latency is the interconnect model; defaults to
	// comm.DefaultLatency (Myrinet-class).
	Latency comm.LatencyModel
	// IsoSlotPages is each PE's isomalloc slot size in pages;
	// defaults to 16384 pages (64 MiB) per PE.
	IsoSlotPages uint64

	// Steal enables idle-cycle work stealing in RunParallel: a PE that
	// pumps its inbox and finds nothing probes two random victims and
	// takes half of the deeper ready queue before blocking on its wake
	// gate. Stolen threads are re-homed through the normal migration
	// path, so PUP, the location directory, and virtual-clock charging
	// all behave as in any other migration. Off by default: stealing
	// absorbs transient imbalance at idle cost only, but its timing is
	// wall-clock dependent, so deterministic runs (RunUntilQuiescent
	// and reproducible RunParallel figures) leave it disabled.
	Steal bool
	// StealAttempts bounds how many two-choice probes an idle PE makes
	// per idle episode before giving up and blocking; default 2.
	StealAttempts int
	// StealMax caps the threads taken per successful steal; 0 means
	// half the victim's ready queue.
	StealMax int

	// LocalPELo/LocalPEHi shard the machine across OS processes: this
	// process drives only PEs [LocalPELo, LocalPEHi) while the full
	// NumPEs-wide network directory and clock arrays stay global, so
	// entity IDs, placements, and virtual-time accounting are identical
	// to an unsharded run. Both zero (the default) means every PE is
	// local. A sharded machine needs a comm.Transport attached to its
	// network (see comm.SocketTransport) before traffic flows, and is
	// incompatible with work stealing — a remote PE's ready queue is in
	// another process.
	LocalPELo, LocalPEHi int
}

// DefaultStealAttempts is the idle-phase probe bound when
// Config.StealAttempts is zero.
const DefaultStealAttempts = 2

// DefaultIsoSlotPages is the per-PE isomalloc slot if unset.
const DefaultIsoSlotPages = 16384

// Machine is one booted parallel machine.
type Machine struct {
	cfg    Config
	pes    []*converse.PE
	net    *comm.Network
	layout *swapglobal.Layout

	mu         sync.Mutex
	migrations uint64
	migBytes   uint64

	// tlog, when enabled, receives scheduler and migration events.
	tlog *trace.Log

	// delivery is the fallback invoked for pumped messages whose
	// entity has no dedicated handler.
	delivery atomic.Pointer[func(pe int, msg *comm.Message)]
	// handlers routes pumped messages by destination entity
	// (registered by AMPI ranks, chare elements, ...). A sync.Map so
	// Pump's per-message lookup takes no lock: the table is
	// read-mostly — entities register once and are looked up on every
	// message by every PE concurrently.
	handlers sync.Map // comm.EntityID -> func(pe int, msg *comm.Message)

	// ranges routes pumped messages for dense entity-ID blocks that
	// share one handler (event-mode AMPI jobs: a million ranks, one
	// dispatch function). A copy-on-write slice — consulted only after
	// a handlers miss, read with one atomic load, rewritten under mu
	// on the rare register/deregister.
	ranges atomic.Pointer[[]entityRange]

	// idlePolls counts idle-handler iterations in RunParallel that
	// polled the network and found nothing — a liveness diagnostic: a
	// quiescent machine should block, not accumulate these.
	idlePolls atomic.Uint64

	// Work-stealing counters (see StealStats).
	stealAttempts atomic.Uint64
	stealHits     atomic.Uint64
	stealMoved    atomic.Uint64

	// gates holds one wake gate per PE while RunParallel is active.
	gates []*wakeGate
}

// NewMachine boots the machine: one address space, kernel heap,
// isomalloc slot, (optional) GOT and scheduler per PE, all agreeing
// on the isomalloc region, plus the network and migration wiring.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumPEs < 1 {
		return nil, fmt.Errorf("core: NumPEs %d must be ≥ 1", cfg.NumPEs)
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.Opteron()
	}
	if cfg.Latency == (comm.LatencyModel{}) {
		cfg.Latency = comm.DefaultLatency
	}
	if cfg.IsoSlotPages == 0 {
		cfg.IsoSlotPages = DefaultIsoSlotPages
	}
	if cfg.LocalPELo == 0 && cfg.LocalPEHi == 0 {
		cfg.LocalPEHi = cfg.NumPEs
	}
	if cfg.LocalPELo < 0 || cfg.LocalPEHi > cfg.NumPEs || cfg.LocalPELo >= cfg.LocalPEHi {
		return nil, fmt.Errorf("core: local PE range [%d,%d) invalid for %d PEs", cfg.LocalPELo, cfg.LocalPEHi, cfg.NumPEs)
	}
	if cfg.Steal && (cfg.LocalPELo != 0 || cfg.LocalPEHi != cfg.NumPEs) {
		return nil, fmt.Errorf("core: work stealing is incompatible with a sharded machine")
	}
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase,
		uint64(cfg.NumPEs)*cfg.IsoSlotPages*vmem.PageSize, cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:    cfg,
		net:    comm.NewNetwork(cfg.NumPEs, cfg.Latency),
		layout: cfg.Globals,
	}
	for i := 0; i < cfg.NumPEs; i++ {
		pe, err := converse.NewPE(converse.PEConfig{
			Index:     i,
			Profile:   cfg.Platform,
			Clock:     simclock.New(),
			IsoRegion: region,
			Globals:   cfg.Globals,
		})
		if err != nil {
			return nil, fmt.Errorf("core: booting PE %d: %w", i, err)
		}
		m.pes = append(m.pes, pe)
	}
	for i, pe := range m.pes {
		i, pe := i, pe
		pe.Sched.SetMigrateHandler(func(t *converse.Thread, dest int) {
			if err := m.migrateThread(t, i, dest); err != nil {
				panic(fmt.Sprintf("core: migrating thread %d from PE %d to %d: %v", t.ID(), i, dest, err))
			}
		})
	}
	return m, nil
}

// NumPEs returns the processor count.
func (m *Machine) NumPEs() int { return len(m.pes) }

// LocalPEs returns the [lo, hi) range of PEs this process drives —
// [0, NumPEs) unless the machine is sharded.
func (m *Machine) LocalPEs() (lo, hi int) { return m.cfg.LocalPELo, m.cfg.LocalPEHi }

// Sharded reports whether this machine drives only a subset of its
// PEs (other subsets live in other OS processes).
func (m *Machine) Sharded() bool {
	return m.cfg.LocalPELo != 0 || m.cfg.LocalPEHi != len(m.pes)
}

// LocalPE reports whether PE pe is driven by this process.
func (m *Machine) LocalPE(pe int) bool {
	return pe >= m.cfg.LocalPELo && pe < m.cfg.LocalPEHi
}

// PE returns processor i.
func (m *Machine) PE(i int) *converse.PE { return m.pes[i] }

// Network returns the machine's interconnect.
func (m *Machine) Network() *comm.Network { return m.net }

// Layout returns the job's swap-global module layout (may be nil).
func (m *Machine) Layout() *swapglobal.Layout { return m.layout }

// MaxTime returns the maximum virtual time across PE clocks — the
// parallel execution time of the job so far.
func (m *Machine) MaxTime() float64 {
	var max float64
	for _, pe := range m.pes {
		if t := pe.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// EnableTracing attaches a fresh event log to every PE and returns
// it. Call before running threads.
func (m *Machine) EnableTracing() *trace.Log {
	l := trace.New()
	m.mu.Lock()
	m.tlog = l
	m.mu.Unlock()
	for _, pe := range m.pes {
		pe.Trace = l
	}
	return l
}

// MigrationStats returns (migrations performed, total serialized
// bytes moved).
func (m *Machine) MigrationStats() (count, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations, m.migBytes
}

// SetDeliveryHandler registers the fallback function Pump calls for
// arriving messages without a per-entity handler.
func (m *Machine) SetDeliveryHandler(fn func(pe int, msg *comm.Message)) {
	if fn == nil {
		m.delivery.Store(nil)
		return
	}
	m.delivery.Store(&fn)
}

// RegisterEntity places a communication entity on a PE and routes its
// incoming messages to handler. AMPI ranks and chare elements live in
// this directory; migration keeps it current.
func (m *Machine) RegisterEntity(id comm.EntityID, pe int, handler func(pe int, msg *comm.Message)) error {
	if err := m.net.Register(id, pe); err != nil {
		return err
	}
	m.handlers.Store(id, handler)
	return nil
}

// DeregisterEntity removes an entity and its handler.
func (m *Machine) DeregisterEntity(id comm.EntityID) {
	m.net.Deregister(id)
	m.handlers.Delete(id)
}

// entityRange is one dense ID block sharing a handler: [lo, hi].
type entityRange struct {
	lo, hi  comm.EntityID
	handler func(pe int, msg *comm.Message)
}

// RegisterEntityRange routes pumped messages for every entity in
// [lo, hi] (inclusive) through handler. It does NOT touch the network
// directory — the caller registers the entities' locations (usually
// with comm's RegisterBatch). One range entry replaces what would be
// hi-lo+1 sync.Map entries and closures for a large event-mode job.
func (m *Machine) RegisterEntityRange(lo, hi comm.EntityID, handler func(pe int, msg *comm.Message)) error {
	if hi < lo {
		return fmt.Errorf("core: RegisterEntityRange(%d, %d): empty range", lo, hi)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var next []entityRange
	if old := m.ranges.Load(); old != nil {
		for _, r := range *old {
			if lo <= r.hi && r.lo <= hi {
				return fmt.Errorf("core: entity range [%d, %d] overlaps [%d, %d]", lo, hi, r.lo, r.hi)
			}
		}
		next = append(next, *old...)
	}
	next = append(next, entityRange{lo: lo, hi: hi, handler: handler})
	m.ranges.Store(&next)
	return nil
}

// DeregisterEntityRange removes the range handler registered at
// exactly [lo, hi]. Directory entries are, symmetrically, the
// caller's to remove.
func (m *Machine) DeregisterEntityRange(lo, hi comm.EntityID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.ranges.Load()
	if old == nil {
		return
	}
	next := make([]entityRange, 0, len(*old))
	for _, r := range *old {
		if r.lo == lo && r.hi == hi {
			continue
		}
		next = append(next, r)
	}
	m.ranges.Store(&next)
}

// NumEntityRanges returns how many range handlers are installed — a
// footprint diagnostic (a finished event-mode job removes its range).
func (m *Machine) NumEntityRanges() int {
	if rs := m.ranges.Load(); rs != nil {
		return len(*rs)
	}
	return 0
}

// rangeHandler returns the range handler covering id, or nil.
func (m *Machine) rangeHandler(id comm.EntityID) func(pe int, msg *comm.Message) {
	if rs := m.ranges.Load(); rs != nil {
		for _, r := range *rs {
			if r.lo <= id && id <= r.hi {
				return r.handler
			}
		}
	}
	return nil
}

// migrateThread executes one migration: PUP round trip between the
// address spaces, ownership transfer, directory update, and network
// cost charging (the image crosses the interconnect).
func (m *Machine) migrateThread(t *converse.Thread, src, dest int) error {
	if dest < 0 || dest >= len(m.pes) {
		return fmt.Errorf("core: destination PE %d out of range", dest)
	}
	nbytes, err := migrate.MigrateNow(t, m.pes[src], m.pes[dest], m.layout)
	if err != nil {
		return err
	}
	return m.finishMigration(comm.EntityID(t.ID()), src, dest, nbytes)
}

// finishMigration is the machine-level bookkeeping shared by every
// migration path (self-initiated, external, bulk, record): the image
// crossed the network, so charge the postal model and synchronize the
// destination clock, forward the flow's communication endpoint if
// registered, and account stats and trace events. Directly addressed
// (pinned) ids live in range location tables whose entries the owning
// engine updates in one batch per LB step — the per-entity
// MigrateEntity path would refuse them, and is skipped.
func (m *Machine) finishMigration(id comm.EntityID, src, dest, nbytes int) error {
	cost := m.net.Latency().Cost(nbytes)
	arrive := m.pes[src].Clock.Now() + cost
	m.pes[dest].Clock.AdvanceTo(arrive)
	if !id.Pinned() {
		if _, err := m.net.Locate(id); err == nil {
			if err := m.net.MigrateEntity(id, dest); err != nil {
				return err
			}
		}
	}
	m.mu.Lock()
	m.migrations++
	m.migBytes += uint64(nbytes)
	tlog := m.tlog
	m.mu.Unlock()
	if tlog != nil {
		tlog.Record(trace.Event{TimeNs: m.pes[src].Clock.Now(), PE: src, Kind: trace.EvMigrateOut, Thread: uint64(id), Arg: uint64(dest)})
		tlog.Record(trace.Event{TimeNs: arrive, PE: dest, Kind: trace.EvMigrateIn, Thread: uint64(id), Arg: uint64(nbytes)})
	}
	return nil
}

// FinishRemoteMigration charges the machine-level bookkeeping for a
// migration record that arrived from another OS process (sharded
// runs): the image crossed the interconnect from a PE this process
// does not simulate, so the sender ships its clock reading (departNs)
// inside the record and the destination clock synchronizes against
// departure plus the postal cost of the record's bytes — the same
// model finishMigration applies in-process. Directory updates are the
// shard layer's job (range tables flip by batch on every worker).
func (m *Machine) FinishRemoteMigration(id comm.EntityID, dest int, departNs float64, nbytes int) {
	cost := m.net.Latency().Cost(nbytes)
	arrive := departNs + cost
	m.pes[dest].Clock.AdvanceTo(arrive)
	m.mu.Lock()
	m.migrations++
	m.migBytes += uint64(nbytes)
	tlog := m.tlog
	m.mu.Unlock()
	if tlog != nil {
		tlog.Record(trace.Event{TimeNs: arrive, PE: dest, Kind: trace.EvMigrateIn, Thread: uint64(id), Arg: uint64(nbytes)})
	}
}

// Pump drains PE pe's network inbox through the delivery handler,
// advancing the PE clock to each message's arrival time. It returns
// the number of messages processed.
// Pump does NOT advance the PE clock: a message's arrival time is
// charged when it is *consumed* (AMPI Recv, chare dispatch), not when
// the transport hands it over — otherwise a fast sender's timestamp
// would serialize a receiver that still has independent work to do.
func (m *Machine) Pump(pe int) int {
	ep := m.net.Endpoint(pe)
	n := 0
	for {
		msg := ep.Poll()
		if msg == nil {
			return n
		}
		var fn func(int, *comm.Message)
		if h, ok := m.handlers.Load(msg.To); ok {
			fn = h.(func(int, *comm.Message))
		} else if rh := m.rangeHandler(msg.To); rh != nil {
			fn = rh
		} else if p := m.delivery.Load(); p != nil {
			fn = *p
		}
		if fn != nil {
			fn(pe, msg)
		}
		n++
	}
}

// RunUntilQuiescent drives all PEs deterministically from one
// goroutine: round-robin each scheduler to idle and pump the network,
// until no PE has ready threads and no messages are in flight.
// Suspended threads may remain (they are not work).
func (m *Machine) RunUntilQuiescent() {
	for {
		progress := false
		for i := m.cfg.LocalPELo; i < m.cfg.LocalPEHi; i++ {
			pe := m.pes[i]
			if m.Pump(i) > 0 {
				progress = true
			}
			if pe.Sched.ReadyLen() > 0 {
				pe.Sched.RunUntilIdle()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// RunParallel runs every PE scheduler in its own goroutine — the
// wall-clock execution mode. An idle PE pumps its inbox once and, if
// nothing arrived and nothing became runnable, blocks on its wake
// gate; message delivery, thread enqueues, and termination all fire
// the gate, so idle PEs consume no CPU instead of spinning. When
// done() reports true, all schedulers stop and RunParallel returns.
//
// done is called concurrently and must be thread-safe. It is
// re-evaluated whenever a PE goes idle or is woken; if it flips from
// a goroutine outside the machine (not a thread body or message
// handler), call Wake so blocked PEs notice.
func (m *Machine) RunParallel(done func() bool) {
	gates := make([]*wakeGate, len(m.pes))
	for i := m.cfg.LocalPELo; i < m.cfg.LocalPEHi; i++ {
		gates[i] = newWakeGate()
	}
	m.mu.Lock()
	m.gates = gates
	m.mu.Unlock()
	wakeAll := func() {
		for _, g := range gates {
			if g != nil {
				g.wake()
			}
		}
	}
	var wg sync.WaitGroup
	for i := m.cfg.LocalPELo; i < m.cfg.LocalPEHi; i++ {
		i, pe := i, m.pes[i]
		ep := m.net.Endpoint(i)
		ep.SetWakeHook(gates[i].wake)
		pe.Sched.SetWakeHook(gates[i].wake)
		// Steal RNG: one per PE goroutine (only this PE's idle handler
		// touches it), deterministically seeded by PE index so victim
		// sequences are reproducible given an interleaving.
		rng := rand.New(rand.NewSource(int64(i)*0x9E3779B9 + 1))
		pe.Sched.SetIdleHandler(func() bool {
			// Snapshot the gate BEFORE checking for work: any wake
			// that fires after this point re-opens the channel we
			// block on, so a delivery racing with the checks below
			// cannot be lost.
			ch := gates[i].arm()
			if done() {
				wakeAll() // other PEs may be blocked; have them re-check
				return false
			}
			if m.Pump(i) > 0 || pe.Sched.ReadyLen() > 0 {
				return true
			}
			// Idle-steal phase: absorb a neighbour's transient backlog
			// before parking. On success the stolen threads are already
			// enqueued here; re-enter the scheduler loop.
			if m.cfg.Steal && m.stealInto(i, rng) {
				return true
			}
			m.idlePolls.Add(1)
			<-ch
			return true
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			pe.Sched.Run()
		}()
	}
	wg.Wait()
	for i := m.cfg.LocalPELo; i < m.cfg.LocalPEHi; i++ {
		m.net.Endpoint(i).SetWakeHook(nil)
		m.pes[i].Sched.SetWakeHook(nil)
	}
	m.mu.Lock()
	m.gates = nil
	m.mu.Unlock()
}

// Wake re-evaluates every blocked idle PE. Callers that flip the
// RunParallel done condition from outside the machine use it to make
// termination observable.
func (m *Machine) Wake() {
	m.mu.Lock()
	gates := m.gates
	m.mu.Unlock()
	for _, g := range gates {
		if g != nil {
			g.wake()
		}
	}
}

// IdlePolls returns how many idle-handler iterations polled the
// network and found no work since the machine booted. A machine
// blocked in RunParallel with nothing to do accumulates at most a few
// per wake event; a busy-spinning implementation accumulates millions.
func (m *Machine) IdlePolls() uint64 { return m.idlePolls.Load() }

// wakeGate parks one idle PE. armed returns the channel to block on;
// wake closes the current channel (releasing the waiter) and installs
// a fresh one. The snapshot-then-check protocol in the idle handler
// makes wakeups impossible to lose: every wake that matters happens
// after the snapshot and therefore closes the snapshotted channel.
// Wakes arriving while the PE is not armed (it is busy running
// threads) are no-ops, so a busy phase costs deliverers nothing but
// the flag check.
type wakeGate struct {
	mu    sync.Mutex
	ch    chan struct{}
	armed bool
}

func newWakeGate() *wakeGate {
	return &wakeGate{ch: make(chan struct{})}
}

func (g *wakeGate) arm() <-chan struct{} {
	g.mu.Lock()
	g.armed = true
	ch := g.ch
	g.mu.Unlock()
	return ch
}

func (g *wakeGate) wake() {
	g.mu.Lock()
	if g.armed {
		close(g.ch)
		g.ch = make(chan struct{})
		g.armed = false
	}
	g.mu.Unlock()
}
