package core

import (
	"fmt"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/migrate"
	"migflow/internal/trace"
)

// MigrateExternal forcibly moves a non-running thread (Ready or
// Suspended) from its current PE to dest, without the thread's
// cooperation — the load balancer's and fault-tolerance layer's
// migration primitive. Directory entries and network costs are
// handled like a self-initiated migration.
func (m *Machine) MigrateExternal(t *converse.Thread, dest int) error {
	if dest < 0 || dest >= len(m.pes) {
		return fmt.Errorf("core: MigrateExternal: PE %d out of range", dest)
	}
	src := t.Scheduler().PE()
	if src.Index == dest {
		return nil
	}
	nbytes, err := migrate.MigrateExternal(t, src, m.pes[dest], m.layout)
	if err != nil {
		return err
	}
	cost := m.net.Latency().Cost(nbytes)
	m.pes[dest].Clock.AdvanceTo(src.Clock.Now() + cost)
	if _, err := m.net.Locate(comm.EntityID(t.ID())); err == nil {
		if err := m.net.MigrateEntity(comm.EntityID(t.ID()), dest); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.migrations++
	m.migBytes += uint64(nbytes)
	tlog := m.tlog
	m.mu.Unlock()
	if tlog != nil {
		tlog.Record(trace.Event{TimeNs: src.Clock.Now(), PE: src.Index, Kind: trace.EvMigrateOut, Thread: uint64(t.ID()), Arg: uint64(dest)})
		tlog.Record(trace.Event{TimeNs: src.Clock.Now() + cost, PE: dest, Kind: trace.EvMigrateIn, Thread: uint64(t.ID()), Arg: uint64(nbytes)})
	}
	return nil
}

// Vacate evacuates every thread from PE pe, spreading them round-
// robin over the surviving PEs — the paper's proactive
// fault-tolerance scenario ("to vacate a node that is expected to
// fail or be shut down", §3). The PE must be quiescent (no Running
// thread): call from outside the machine's scheduling loops, or
// after RunUntilQuiescent. It returns how many threads moved.
func (m *Machine) Vacate(pe int) (int, error) {
	if pe < 0 || pe >= len(m.pes) {
		return 0, fmt.Errorf("core: Vacate: PE %d out of range", pe)
	}
	if len(m.pes) < 2 {
		return 0, fmt.Errorf("core: Vacate: no surviving PE to evacuate to")
	}
	moved := 0
	next := 0
	for _, t := range m.pes[pe].Sched.Threads() {
		if next == pe {
			next = (next + 1) % len(m.pes)
		}
		if err := m.MigrateExternal(t, next); err != nil {
			return moved, fmt.Errorf("core: Vacate PE %d: thread %d: %w", pe, t.ID(), err)
		}
		moved++
		next = (next + 1) % len(m.pes)
	}
	return moved, nil
}
