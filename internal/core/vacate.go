package core

import (
	"errors"
	"fmt"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/migrate"
)

// MigrateExternal forcibly moves a non-running thread (Ready or
// Suspended) from its current PE to dest, without the thread's
// cooperation — the load balancer's and fault-tolerance layer's
// migration primitive. Directory entries and network costs are
// handled like a self-initiated migration.
func (m *Machine) MigrateExternal(t *converse.Thread, dest int) error {
	if dest < 0 || dest >= len(m.pes) {
		return fmt.Errorf("core: MigrateExternal: PE %d out of range", dest)
	}
	src := t.Scheduler().PE()
	if src.Index == dest {
		return nil
	}
	nbytes, err := migrate.MigrateExternal(t, src, m.pes[dest], m.layout)
	if err != nil {
		return err
	}
	return m.finishMigration(comm.EntityID(t.ID()), src.Index, dest, nbytes)
}

// Move is one entry in a batch migration: thread T — or record R,
// when non-nil — goes to PE Dest. Record moves also name their source
// PE in Src (a thread's source is its scheduler; a record has none).
type Move struct {
	T    *converse.Thread
	R    migrate.Record
	Src  int
	Dest int
}

// MigrateMany moves a batch of non-running threads in one pipelined
// bulk operation (migrate.BulkMigrate): extraction and serialization
// on the source PEs overlap installation on the destinations across a
// bounded worker pool, so one load-balancing step issues one batch
// instead of N serial extract→install round trips. Moves whose thread
// is already on its destination are skipped. It returns how many
// threads moved and the first error encountered; a failed move does
// not abort the rest of the batch.
func (m *Machine) MigrateMany(moves []Move) (int, error) {
	ops := make([]migrate.Op, 0, len(moves))
	for _, mv := range moves {
		if mv.Dest < 0 || mv.Dest >= len(m.pes) {
			return 0, fmt.Errorf("core: MigrateMany: PE %d out of range", mv.Dest)
		}
		if mv.R != nil {
			if mv.Src < 0 || mv.Src >= len(m.pes) {
				return 0, fmt.Errorf("core: MigrateMany: record %d source PE %d out of range", mv.R.ID(), mv.Src)
			}
			if mv.Src == mv.Dest {
				continue
			}
			ops = append(ops, migrate.Op{R: mv.R, Src: m.pes[mv.Src], Dst: m.pes[mv.Dest]})
			continue
		}
		src := mv.T.Scheduler().PE()
		if src.Index == mv.Dest {
			continue
		}
		ops = append(ops, migrate.Op{T: mv.T, Src: src, Dst: m.pes[mv.Dest]})
	}
	results := migrate.BulkMigrate(ops, m.layout, 0)
	moved := 0
	var firstErr error
	for i, res := range results {
		if res.Err != nil {
			// A thread that raced us — started running, was stolen by
			// an idle PE, migrated in another batch, or exited — is
			// simply not moved this round; the balancer will see it
			// again next epoch. Anything else is a real failure.
			if errors.Is(res.Err, converse.ErrNotEvictable) {
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("core: MigrateMany: flow %d: %w", opFlowID(ops[i]), res.Err)
			}
			continue
		}
		if err := m.finishMigration(opFlowID(ops[i]), ops[i].Src.Index, ops[i].Dst.Index, res.Bytes); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

// opFlowID names an op's flow: the record's entity id or the thread's
// id (thread ids double as entity ids throughout the runtime).
func opFlowID(op migrate.Op) comm.EntityID {
	if op.R != nil {
		return comm.EntityID(op.R.ID())
	}
	return comm.EntityID(op.T.ID())
}

// Vacate evacuates every thread from PE pe in one bulk batch,
// spreading them round-robin over the surviving PEs — the paper's
// proactive fault-tolerance scenario ("to vacate a node that is
// expected to fail or be shut down", §3). The PE must be quiescent
// (no Running thread): call from outside the machine's scheduling
// loops, or after RunUntilQuiescent. It returns how many threads
// moved.
func (m *Machine) Vacate(pe int) (int, error) {
	if pe < 0 || pe >= len(m.pes) {
		return 0, fmt.Errorf("core: Vacate: PE %d out of range", pe)
	}
	if len(m.pes) < 2 {
		return 0, fmt.Errorf("core: Vacate: no surviving PE to evacuate to")
	}
	var moves []Move
	next := 0
	for _, t := range m.pes[pe].Sched.Threads() {
		if next == pe {
			next = (next + 1) % len(m.pes)
		}
		moves = append(moves, Move{T: t, Dest: next})
		next = (next + 1) % len(m.pes)
	}
	moved, err := m.MigrateMany(moves)
	if err != nil {
		return moved, fmt.Errorf("core: Vacate PE %d: %w", pe, err)
	}
	return moved, nil
}
