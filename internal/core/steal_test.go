package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/migrate"
)

// TestStealRedistributes: a machine with stealing enabled and all the
// work parked on PE 0 must finish with other PEs having executed some
// of it. Work charges make PE 0 the modeled-busy victim; the other
// PEs start modeled-idle so the busy gate lets them rob it. Real jobs
// re-probe when message traffic fires their wake gates; this job has
// no traffic, so a background Wake pump stands in for it.
func TestStealRedistributes(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 4, Steal: true, StealAttempts: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var done atomic.Int64
	ranOn := make([]atomic.Int64, 4)
	for i := 0; i < n; i++ {
		th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{
			Strategy: migrate.Isomalloc{},
		}, func(c *converse.Ctx) {
			for k := 0; k < 8; k++ {
				c.Work(50_000)
				ranOn[c.PE().Index].Add(1)
				// Yield the OS thread too: modeled Work is wall-instant,
				// so without this PE 0 drains its whole queue before the
				// woken thieves ever get scheduled to probe it.
				runtime.Gosched()
				c.Yield()
			}
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.PE(0).Sched.Start(th)
	}
	stop := make(chan struct{})
	var wakers sync.WaitGroup
	wakers.Add(1)
	go func() {
		defer wakers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Wake()
				runtime.Gosched()
			}
		}
	}()
	m.RunParallel(func() bool { return done.Load() == n })
	close(stop)
	wakers.Wait()
	if done.Load() != n {
		t.Fatalf("only %d/%d threads finished", done.Load(), n)
	}
	st := m.StealStats()
	if st.Moved == 0 {
		t.Fatalf("no threads stolen from a 16-deep queue: %+v", st)
	}
	var elsewhere int64
	for pe := 1; pe < 4; pe++ {
		elsewhere += ranOn[pe].Load()
	}
	if elsewhere == 0 {
		t.Errorf("all work slices ran on PE 0 despite %d steals", st.Moved)
	}
	t.Logf("steals: %+v, slices off PE0: %d/%d", st, elsewhere, n*8)
}

// TestStealDisabledByDefault: without Config.Steal the idle handler
// must never rob a queue, keeping RunParallel placement-deterministic.
func TestStealDisabledByDefault(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	const n = 8
	for i := 0; i < n; i++ {
		th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{
			Strategy: migrate.Isomalloc{},
		}, func(c *converse.Ctx) {
			c.Work(1000)
			c.Yield()
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.PE(0).Sched.Start(th)
	}
	m.RunParallel(func() bool { return done.Load() == n })
	if st := m.StealStats(); st.Attempts != 0 || st.Moved != 0 {
		t.Fatalf("stealing disabled but stats = %+v", st)
	}
}

// TestWakeDuringTeardown hammers Machine.Wake from outside while
// RunParallel repeatedly starts and tears down: the gates slice is
// installed and nilled under the machine lock, so concurrent Wake
// calls must neither race nor panic — including after the final
// teardown when gates is nil.
func TestWakeDuringTeardown(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Wake()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		m.RunParallel(func() bool { return true })
	}
	close(stop)
	wg.Wait()
	m.Wake() // after teardown: gates nil, must be a no-op
}

// TestStealVacateRace races three migration initiators over the same
// thread population: the idle thieves inside RunParallel, bulk Vacate
// batches, and random MigrateMany batches from an outside goroutine.
// Threads that are Running, already Migrating, or owned by a different
// scheduler than the batch snapshot saw must be skipped (ErrNotEvictable),
// never corrupted — run under -race.
func TestStealVacateRace(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 4, Steal: true, StealAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var done atomic.Int64
	threads := make([]*converse.Thread, 0, n)
	for i := 0; i < n; i++ {
		pe := i % 4
		th, err := m.PE(pe).Sched.CthCreate(converse.ThreadOptions{
			Strategy: migrate.Isomalloc{},
		}, func(c *converse.Ctx) {
			for k := 0; k < 10; k++ {
				c.Work(10_000)
				c.Yield()
			}
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.PE(pe).Sched.Start(th)
		threads = append(threads, th)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			switch rng.Intn(2) {
			case 0:
				if _, err := m.Vacate(rng.Intn(4)); err != nil {
					t.Errorf("Vacate: %v", err)
					return
				}
			case 1:
				var moves []Move
				for _, th := range threads {
					if rng.Intn(4) == 0 {
						moves = append(moves, Move{T: th, Dest: rng.Intn(4)})
					}
				}
				if _, err := m.MigrateMany(moves); err != nil {
					t.Errorf("MigrateMany: %v", err)
					return
				}
			}
		}
	}()
	m.RunParallel(func() bool { return done.Load() == n })
	stop.Store(true)
	wg.Wait()
	if done.Load() != n {
		t.Fatalf("only %d/%d threads finished", done.Load(), n)
	}
	for _, th := range threads {
		if th.State() != converse.Exited {
			t.Errorf("thread %d ended %s, want exited", th.ID(), th.State())
		}
	}
}
