package core

import (
	"sync/atomic"
	"testing"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/migrate"
)

// BenchmarkPump measures the message dispatch path under PE
// concurrency: 8 PEs, each sending to its own local entity and
// pumping its own inbox. A per-message global handler-table lock
// serializes all 8 PEs; the benchmark exposes that directly.
func BenchmarkPump(b *testing.B) {
	const pes = 8
	m, err := NewMachine(Config{NumPEs: pes})
	if err != nil {
		b.Fatal(err)
	}
	var handled atomic.Uint64
	for pe := 0; pe < pes; pe++ {
		if err := m.RegisterEntity(comm.EntityID(pe+1), pe, func(pe int, msg *comm.Message) {
			handled.Add(1)
		}); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.SetParallelism(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pe := int(next.Add(1)-1) % pes
		ep := m.Network().Endpoint(pe)
		msg := &comm.Message{To: comm.EntityID(pe + 1)}
		for pb.Next() {
			msg.Hops = 0
			if err := ep.Send(msg); err != nil {
				b.Error(err)
				return
			}
			if m.Pump(pe) == 0 {
				b.Error("pump found no message")
				return
			}
		}
	})
}

// BenchmarkMigrate measures one end-to-end machine-level migration:
// eviction, PUP round trip, install, directory update, and network
// cost charging, with the thread's comm entity registered so the
// location directory is updated on every hop.
func BenchmarkMigrate(b *testing.B) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{
		Strategy:  migrate.Isomalloc{},
		StackSize: 16 << 10,
	}, func(c *converse.Ctx) {
		for i := 0; i < n; i++ {
			c.MigrateTo(1 - c.PE().Index)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Network().Register(comm.EntityID(th.ID()), 0); err != nil {
		b.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	b.ReportAllocs()
	b.ResetTimer()
	m.RunUntilQuiescent()
	b.StopTimer()
	count, _ := m.MigrationStats()
	if count < uint64(n) {
		b.Fatalf("only %d of %d migrations ran", count, n)
	}
}
