package core

import (
	"testing"

	"migflow/internal/converse"
	"migflow/internal/migrate"
)

// TestAdoptSuspendedOwnsThread: when a wake races with an external
// migration, AdoptSuspended must still record the thread in the
// destination's thread table. The pending-wake branch used to enqueue
// the thread without inserting it into the table, so Threads() omitted
// it and the exit-time reap deleted a key that was never there.
func TestAdoptSuspendedOwnsThread(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	resumed := false
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.Suspend()
		resumed = true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent() // thread now Suspended on PE 0
	if _, err := m.PE(0).Sched.Evict(th); err != nil {
		t.Fatal(err)
	}
	th.Awaken() // wake lands mid-flight
	im, err := migrate.Extract(th, m.PE(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := migrate.Install(th, m.PE(1), im, nil); err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Disown(th)
	m.PE(1).Sched.AdoptSuspended(th)

	owned := false
	for _, o := range m.PE(1).Sched.Threads() {
		if o == th {
			owned = true
		}
	}
	if !owned {
		t.Error("adopted thread missing from destination Threads()")
	}
	if got := m.PE(1).Sched.Live(); got != 1 {
		t.Errorf("destination Live() = %d, want 1", got)
	}

	m.RunUntilQuiescent()
	if !resumed {
		t.Error("pending wake not honoured")
	}
	// Reap accounting must return to zero — with the thread missing
	// from the table, live and the table drifted apart here.
	if got := m.PE(1).Sched.Live(); got != 0 {
		t.Errorf("Live() after exit = %d, want 0", got)
	}
	if got := len(m.PE(1).Sched.Threads()); got != 0 {
		t.Errorf("Threads() after exit has %d entries, want 0", got)
	}
}
