package core

import (
	"testing"

	"migflow/internal/comm"
)

func TestDeregisterEntity(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	handled := 0
	if err := m.RegisterEntity(42, 1, func(int, *comm.Message) { handled++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.Network().Endpoint(0).Send(&comm.Message{To: 42}); err != nil {
		t.Fatal(err)
	}
	m.Pump(1)
	if handled != 1 {
		t.Fatalf("handled = %d", handled)
	}
	m.DeregisterEntity(42)
	if err := m.Network().Endpoint(0).Send(&comm.Message{To: 42}); err == nil {
		t.Error("send to deregistered entity accepted")
	}
	if _, err := m.Network().Locate(42); err == nil {
		t.Error("entity still in the directory")
	}
	// Double-register after deregister works.
	if err := m.RegisterEntity(42, 0, func(int, *comm.Message) {}); err != nil {
		t.Errorf("re-register: %v", err)
	}
}
