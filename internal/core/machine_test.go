package core

import (
	"sync/atomic"
	"testing"

	"migflow/internal/comm"
	"migflow/internal/converse"
	"migflow/internal/migrate"
	"migflow/internal/platform"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{NumPEs: 0}); err == nil {
		t.Error("zero PEs accepted")
	}
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPEs() != 2 || m.PE(0) == nil || m.PE(1) == nil {
		t.Error("machine malformed")
	}
	if m.PE(0).Prof.Name != "opteron" {
		t.Errorf("default platform = %s", m.PE(0).Prof.Name)
	}
	if m.Network().NumPEs() != 2 {
		t.Error("network size mismatch")
	}
	if m.Layout() != nil {
		t.Error("layout should default nil")
	}
}

func TestMachine32BitPlatformTooSmall(t *testing.T) {
	// 256 PEs × 64 MiB slots = 16 GiB of isomalloc region: a 32-bit
	// node cannot boot this job (the §3.4.2 scaling wall).
	_, err := NewMachine(Config{NumPEs: 256, Platform: platform.LinuxX86()})
	if err == nil {
		t.Fatal("32-bit machine booted a 16 GiB isomalloc region")
	}
	// Shrinking the per-PE slot (fewer/smaller threads) fits.
	if _, err := NewMachine(Config{NumPEs: 256, Platform: platform.LinuxX86(), IsoSlotPages: 512}); err != nil {
		t.Errorf("small-slot 32-bit boot failed: %v", err)
	}
}

func TestRunUntilQuiescentMigration(t *testing.T) {
	layout := swapglobal.NewLayout()
	layout.Declare("home", 8)
	m, err := NewMachine(Config{NumPEs: 3, Globals: layout})
	if err != nil {
		t.Fatal(err)
	}
	visited := []int{}
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{
		Strategy: migrate.Isomalloc{}, Globals: layout,
	}, func(c *converse.Ctx) {
		for dest := 0; dest < 3; dest++ {
			c.MigrateTo(dest)
			visited = append(visited, c.PE().Index)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent()
	if len(visited) != 3 || visited[0] != 0 || visited[1] != 1 || visited[2] != 2 {
		t.Errorf("visited = %v", visited)
	}
	count, bytes := m.MigrationStats()
	if count != 2 || bytes == 0 {
		t.Errorf("stats = %d migrations, %d bytes", count, bytes)
	}
	// Migration charged network time to the destination clocks.
	if m.PE(2).Clock.Now() == 0 {
		t.Error("destination clock not advanced by migration")
	}
	if m.MaxTime() == 0 {
		t.Error("MaxTime = 0")
	}
}

func TestMigrationUpdatesDirectory(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.MigrateTo(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	id := comm.EntityID(th.ID())
	if err := m.Network().Register(id, 0); err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent()
	pe, err := m.Network().Locate(id)
	if err != nil || pe != 1 {
		t.Errorf("directory says PE %d/%v, want 1", pe, err)
	}
}

func TestPumpDelivers(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	m.SetDeliveryHandler(func(pe int, msg *comm.Message) {
		got = append(got, msg.Tag)
	})
	if err := m.Network().Register(7, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Network().Endpoint(0).Send(&comm.Message{To: 7, Tag: i, SendTime: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Pump(1); n != 3 {
		t.Errorf("Pump = %d", n)
	}
	if len(got) != 3 {
		t.Errorf("delivered %d", len(got))
	}
	if m.Pump(1) != 0 {
		t.Error("second pump found phantom messages")
	}
}

func TestRunParallel(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var finished atomic.Int64
	const perPE = 5
	for i := 0; i < m.NumPEs(); i++ {
		for j := 0; j < perPE; j++ {
			th, err := m.PE(i).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
				for k := 0; k < 3; k++ {
					c.Yield()
				}
				finished.Add(1)
			})
			if err != nil {
				t.Fatal(err)
			}
			m.PE(i).Sched.Start(th)
		}
	}
	m.RunParallel(func() bool {
		return finished.Load() == int64(m.NumPEs()*perPE)
	})
	if finished.Load() != int64(m.NumPEs()*perPE) {
		t.Errorf("finished = %d", finished.Load())
	}
}

// TestTracing runs a migrating job with tracing enabled and checks
// the timeline invariants the analysis relies on.
func TestTracing(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	log := m.EnableTracing()
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.Yield()
		c.MigrateTo(1)
		c.Work(5000)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent()

	counts := log.Counts()
	if counts[trace.EvCreate] != 1 || counts[trace.EvExit] != 1 {
		t.Errorf("lifecycle events: %v", counts)
	}
	if counts[trace.EvMigrateOut] != 1 || counts[trace.EvMigrateIn] != 1 {
		t.Errorf("migration events: %v", counts)
	}
	if counts[trace.EvSwitchIn] != counts[trace.EvSwitchOut] {
		t.Errorf("unbalanced switches: %v", counts)
	}
	// Per PE: in/out strictly alternate and times are monotone.
	for pe := 0; pe < 2; pe++ {
		in := false
		last := -1.0
		for _, e := range log.Events() {
			if e.PE != pe {
				continue
			}
			if e.TimeNs < last {
				t.Errorf("PE %d: time went backwards at %v", pe, e)
			}
			last = e.TimeNs
			switch e.Kind {
			case trace.EvSwitchIn:
				if in {
					t.Errorf("PE %d: nested switch-in", pe)
				}
				in = true
			case trace.EvSwitchOut:
				if !in {
					t.Errorf("PE %d: switch-out without in", pe)
				}
				in = false
			}
		}
		if in {
			t.Errorf("PE %d: timeline ends switched in", pe)
		}
	}
	stats := trace.Utilization(log, 2)
	if stats[1].BusyNs <= 0 {
		t.Errorf("PE 1 busy = %g after running the migrated thread", stats[1].BusyNs)
	}
}

func TestRunParallelWithMigration(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	endPE := -1
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.MigrateTo(1)
		endPE = c.PE().Index
		done.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunParallel(done.Load)
	if endPE != 1 {
		t.Errorf("thread ended on PE %d", endPE)
	}
}
