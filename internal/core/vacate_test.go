package core

import (
	"testing"

	"migflow/internal/converse"
	"migflow/internal/migrate"
	"migflow/internal/swapglobal"
)

// TestMigrateExternalReady forcibly moves a runnable thread between
// PEs; it must run to completion on the destination with its state
// intact.
func TestMigrateExternalReady(t *testing.T) {
	layout := swapglobal.NewLayout()
	layout.Declare("x", 8)
	m, err := NewMachine(Config{NumPEs: 2, Globals: layout})
	if err != nil {
		t.Fatal(err)
	}
	ranOn := -1
	var sawX uint64
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{
		Strategy: migrate.Isomalloc{}, Globals: layout,
	}, func(c *converse.Ctx) {
		ranOn = c.PE().Index
		sawX, _ = c.GlobalsGOT().LoadUint64("x")
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th) // Ready on PE 0, never run
	// Pre-set its privatized global directly through its instance.
	addr, err := th.Globals().VarAddr("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PE(0).Space.WriteUint64(addr, 77); err != nil {
		t.Fatal(err)
	}
	if err := m.MigrateExternal(th, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.PE(0).Sched.ReadyLen(); got != 0 {
		t.Errorf("source still has %d ready threads", got)
	}
	m.RunUntilQuiescent()
	if ranOn != 1 {
		t.Errorf("thread ran on PE %d, want 1", ranOn)
	}
	if sawX != 77 {
		t.Errorf("global after forced migration = %d, want 77", sawX)
	}
}

// TestMigrateExternalSuspended moves a thread blocked in Suspend; it
// must keep waiting on the destination and resume there when woken.
func TestMigrateExternalSuspended(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	resumedOn := -1
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.Suspend()
		resumedOn = c.PE().Index
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent() // thread now Suspended on PE 0
	if th.State() != converse.Suspended {
		t.Fatalf("state = %s", th.State())
	}
	if err := m.MigrateExternal(th, 1); err != nil {
		t.Fatal(err)
	}
	if th.State() != converse.Suspended {
		t.Fatalf("state after external migration = %s, want suspended", th.State())
	}
	if m.PE(1).Sched.Live() != 1 || m.PE(0).Sched.Live() != 0 {
		t.Errorf("ownership not transferred: live %d/%d", m.PE(0).Sched.Live(), m.PE(1).Sched.Live())
	}
	th.Awaken()
	m.RunUntilQuiescent()
	if resumedOn != 1 {
		t.Errorf("resumed on PE %d, want 1", resumedOn)
	}
}

// TestWakeDuringFlight delivers an Awaken between eviction and
// adoption; the wake must not be lost.
func TestWakeDuringFlight(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	resumed := false
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
		c.Suspend()
		resumed = true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent()
	// Simulate the race: evict, wake mid-flight, then complete the
	// move by hand.
	if _, err := m.PE(0).Sched.Evict(th); err != nil {
		t.Fatal(err)
	}
	th.Awaken() // in flight: must be remembered
	im, err := migrate.Extract(th, m.PE(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := migrate.Install(th, m.PE(1), im, nil); err != nil {
		t.Fatal(err)
	}
	m.PE(0).Sched.Disown(th)
	m.PE(1).Sched.AdoptSuspended(th)
	if th.State() != converse.Ready {
		t.Fatalf("state = %s, want ready (pending wake honoured)", th.State())
	}
	m.RunUntilQuiescent()
	if !resumed {
		t.Error("wake lost during flight")
	}
}

func TestEvictValidation(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	// Created (never started): not evictable.
	if _, err := m.PE(0).Sched.Evict(th); err == nil {
		t.Error("evicting a Created thread accepted")
	}
	m.PE(0).Sched.Start(th)
	m.RunUntilQuiescent()
	// Exited: not evictable.
	if _, err := m.PE(0).Sched.Evict(th); err == nil {
		t.Error("evicting an Exited thread accepted")
	}
}

// TestVacate evacuates a full PE: runnable and suspended threads of
// all three stack techniques all land on survivors and finish.
func TestVacate(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 3})
	if err != nil {
		t.Fatal(err)
	}
	const perStrat = 2
	finished := 0
	var threads []*converse.Thread
	for _, strat := range migrate.All() {
		for i := 0; i < perStrat; i++ {
			th, err := m.PE(0).Sched.CthCreate(converse.ThreadOptions{Strategy: strat, StackSize: 4096 * 4}, func(c *converse.Ctx) {
				c.Suspend() // park until the post-vacate wake
				if c.PE().Index == 0 {
					t.Error("thread resumed on the vacated PE")
				}
				finished++
			})
			if err != nil {
				t.Fatal(err)
			}
			m.PE(0).Sched.Start(th)
			threads = append(threads, th)
		}
	}
	m.RunUntilQuiescent() // all suspended on PE 0
	moved, err := m.Vacate(0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3*perStrat {
		t.Errorf("moved %d, want %d", moved, 3*perStrat)
	}
	if m.PE(0).Sched.Live() != 0 {
		t.Errorf("PE 0 still owns %d threads", m.PE(0).Sched.Live())
	}
	// Survivors share the evacuees.
	if m.PE(1).Sched.Live()+m.PE(2).Sched.Live() != 3*perStrat {
		t.Errorf("survivors own %d+%d", m.PE(1).Sched.Live(), m.PE(2).Sched.Live())
	}
	for _, th := range threads {
		th.Awaken()
	}
	m.RunUntilQuiescent()
	if finished != 3*perStrat {
		t.Errorf("finished = %d", finished)
	}
}

func TestVacateValidation(t *testing.T) {
	m, err := NewMachine(Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Vacate(0); err == nil {
		t.Error("vacating the only PE accepted")
	}
	if _, err := m.Vacate(5); err == nil {
		t.Error("vacating a bad PE accepted")
	}
}
