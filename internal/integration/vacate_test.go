package integration

import (
	"sync"
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/trace"
)

// TestJobSurvivesVacate composes the whole stack: an AMPI job runs a
// phase, the runtime evacuates PE 0 while every rank is parked, and
// the job finishes — including an Allreduce whose root migrated —
// with correct results and a consistent trace.
func TestJobSurvivesVacate(t *testing.T) {
	m, err := core.NewMachine(core.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	tlog := m.EnableTracing()
	const ranks = 12
	var mu sync.Mutex
	sums := make([]float64, ranks)
	endPE := make([]int, ranks)
	j, err := ampi.NewJob(m, ranks, ampi.Options{}, func(r *ampi.Rank) {
		r.Work(10_000)
		// Wait for the controller's go-ahead (the vacate happens
		// while everyone is parked here).
		if _, _, err := r.Recv(ampi.AnySource, 9); err != nil {
			t.Errorf("rank %d recv: %v", r.Rank(), err)
			return
		}
		// Phase 2 includes a collective: its gather root (rank 0) was
		// born on the vacated PE and has moved.
		v, err := r.Allreduce("sum", float64(r.Rank()))
		if err != nil {
			t.Errorf("rank %d allreduce: %v", r.Rank(), err)
			return
		}
		r.Work(10_000)
		mu.Lock()
		sums[r.Rank()] = v
		endPE[r.Rank()] = r.PE()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	m.RunUntilQuiescent() // phase 1 done; all parked in Recv

	if got := m.PE(0).Sched.Live(); got != 3 {
		t.Fatalf("PE 0 owns %d ranks before vacate", got)
	}
	moved, err := m.Vacate(0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("moved %d", moved)
	}
	// Release every rank from the controller.
	for i := 0; i < ranks; i++ {
		msg := &comm.Message{To: comm.EntityID(j.Rank(i).Thread().ID()), Tag: 9}
		if err := m.Network().Endpoint(1).Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntilQuiescent()
	if !j.Done() {
		t.Fatal("job hung after vacate")
	}
	const want = float64(ranks * (ranks - 1) / 2)
	for rk, s := range sums {
		if s != want {
			t.Errorf("rank %d allreduce = %g, want %g", rk, s, want)
		}
		if endPE[rk] == 0 {
			t.Errorf("rank %d finished on the vacated PE", rk)
		}
	}
	c := tlog.Counts()
	if c[trace.EvMigrateOut] != 3 {
		t.Errorf("trace migrations = %d, want 3", c[trace.EvMigrateOut])
	}
	// The evacuated machine can still rebalance onto the survivors.
	if _, err := j.Rebalance(loadbalance.GreedyLB{}); err != nil {
		t.Errorf("post-vacate rebalance: %v", err)
	}
}
