// Package integration holds cross-layer scenario tests: whole-stack
// flows that single-package tests cannot exercise.
package integration

import (
	"encoding/binary"
	"math"
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/charm"
	"migflow/internal/core"
	"migflow/internal/coro"
	"migflow/internal/pup"
	"migflow/internal/sdag"
)

// The paper's §2 taxonomy: the same computation can be organized as
// blocking threads, as an SDAG-coordinated event-driven object, or as
// a hand-rolled return-switch coroutine. This test runs one program —
// a 1-D Jacobi iteration with ghost exchange over a ring — in all
// three styles and demands bit-identical numerical results.

const (
	nStrips  = 4
	nCells   = 8
	nIters   = 10
	tagLeft  = 1
	tagRight = 2
)

// jacobiInit gives strip i its initial cells.
func jacobiInit(i int) []float64 {
	g := make([]float64, nCells)
	for j := range g {
		if (i*nCells+j)%3 == 0 {
			g[j] = float64(i + 1)
		}
	}
	return g
}

// sweep advances one strip one iteration given its ghosts.
func sweep(grid []float64, left, right float64) []float64 {
	next := make([]float64, len(grid))
	for i := range grid {
		l, r := left, right
		if i > 0 {
			l = grid[i-1]
		}
		if i < len(grid)-1 {
			r = grid[i+1]
		}
		next[i] = 0.5 * (l + r)
	}
	return next
}

func f64b(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func bf64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// checksum folds a final grid state into one comparable value.
func checksum(grids [][]float64) []float64 {
	var flat []float64
	for _, g := range grids {
		flat = append(flat, g...)
	}
	return flat
}

// Style 1: blocking AMPI threads.
func runThreads(t *testing.T) []float64 {
	m, err := core.NewMachine(core.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	grids := make([][]float64, nStrips)
	j, err := ampi.NewJob(m, nStrips, ampi.Options{}, func(r *ampi.Rank) {
		grid := jacobiInit(r.Rank())
		left := (r.Rank() + nStrips - 1) % nStrips
		right := (r.Rank() + 1) % nStrips
		for it := 0; it < nIters; it++ {
			if err := r.Send(left, tagRight, f64b(grid[0])); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if err := r.Send(right, tagLeft, f64b(grid[nCells-1])); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			lb, _, err := r.Recv(left, tagLeft)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			rb, _, err := r.Recv(right, tagRight)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			grid = sweep(grid, bf64(lb), bf64(rb))
		}
		grids[r.Rank()] = grid
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Run()
	if !j.Done() {
		t.Fatal("thread style hung")
	}
	return checksum(grids)
}

// Style 2: SDAG-coordinated chares.
type sdagStrip struct {
	index       int
	grid        []float64
	left, right float64
	prog        *sdag.Executor
	out         *[][]float64
}

func (s *sdagStrip) Pup(p *pup.PUPer) error { return p.Float64s(&s.grid) }

func (s *sdagStrip) program(ctx *charm.Ctx) sdag.Stmt {
	leftIdx := (s.index + nStrips - 1) % nStrips
	rightIdx := (s.index + 1) % nStrips
	return sdag.For(nIters, func(it int) sdag.Stmt {
		ref := uint64(it)
		return sdag.Seq(
			sdag.Atomic(func() {
				if err := ctx.Send(leftIdx, tagRight, refMsg(ref, s.grid[0])); err != nil {
					panic(err)
				}
				if err := ctx.Send(rightIdx, tagLeft, refMsg(ref, s.grid[nCells-1])); err != nil {
					panic(err)
				}
			}),
			sdag.Overlap(
				sdag.WhenRef(tagLeft, ref, func(m sdag.Msg) { s.left = m.(float64) }),
				sdag.WhenRef(tagRight, ref, func(m sdag.Msg) { s.right = m.(float64) }),
			),
			sdag.Atomic(func() {
				s.grid = sweep(s.grid, s.left, s.right)
				if it == nIters-1 {
					(*s.out)[s.index] = s.grid
				}
			}),
		)
	})
}

// refMsg encodes (ref, value) in the payload so the receiving strip
// can route by iteration.
func refMsg(ref uint64, v float64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, ref)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(v))
	return b
}

func (s *sdagStrip) Recv(ctx *charm.Ctx, entry int, data []byte) {
	if s.prog == nil {
		s.prog = sdag.Run(s.program(ctx))
	}
	if entry == 0 {
		return // bootstrap
	}
	ref := binary.LittleEndian.Uint64(data)
	v := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	s.prog.DeliverRef(entry, ref, v)
}

func runSDAG(t *testing.T) []float64 {
	m, err := core.NewMachine(core.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	grids := make([][]float64, nStrips)
	arr, err := charm.NewArray(m, nStrips, func(i int) charm.Element {
		return &sdagStrip{index: i, grid: jacobiInit(i), out: &grids}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Broadcast(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.RunUntilQuiescent()
	for i, g := range grids {
		if g == nil {
			t.Fatalf("sdag strip %d never finished", i)
		}
	}
	return checksum(grids)
}

// Style 3: return-switch coroutines driven by a hand-written
// scheduler loop (the §2.4.1 style — all state parked manually; here
// the grid lives beside the coroutine, the ghosts and iteration
// counter in its State).
func runCoro(t *testing.T) []float64 {
	grids := make([][]float64, nStrips)
	for i := range grids {
		grids[i] = jacobiInit(i)
	}
	// The "network": ghost values posted for (strip, side, iter).
	type key struct {
		strip, side int
		iter        uint64
	}
	mail := map[key]float64{}
	post := func(strip, side int, iter uint64, v float64) { mail[key{strip, side, iter}] = v }

	// The return-switch pattern: every suspension is a `return` with
	// the label to resume at; every local that must survive lives in
	// the State ("iter") — forget one and it silently resets (§2.4.1:
	// "confusing, error-prone and tough to debug").
	const (
		labelSend = coro.Begin
		labelWait = 1
	)
	mkStep := func(i int) coro.Step {
		return func(s *coro.State, _ uint64) (uint64, int, bool) {
			switch s.Line() {
			case labelSend: // send ghosts for the current iteration
				it := s.Get("iter")
				left := (i + nStrips - 1) % nStrips
				right := (i + 1) % nStrips
				post(left, 1, it, grids[i][0])         // neighbour's right ghost
				post(right, 0, it, grids[i][nCells-1]) // neighbour's left ghost
				return 0, labelWait, false
			case labelWait: // resume here until both ghosts arrived
				it := s.Get("iter")
				lk, rk := key{i, 0, it}, key{i, 1, it}
				lv, lok := mail[lk]
				rv, rok := mail[rk]
				if !lok || !rok {
					return 0, labelWait, false
				}
				delete(mail, lk)
				delete(mail, rk)
				grids[i] = sweep(grids[i], lv, rv)
				s.Set("iter", it+1)
				if it+1 == nIters {
					return 0, labelWait, true
				}
				return 0, labelSend, false
			}
			panic("bad label")
		}
	}
	var cs []*coro.Coroutine
	for i := 0; i < nStrips; i++ {
		cs = append(cs, coro.New(mkStep(i)))
	}
	// Scheduler: round-robin resume until all done.
	for guard := 0; ; guard++ {
		if guard > 100000 {
			t.Fatal("coro style did not converge")
		}
		alldone := true
		for _, c := range cs {
			if !c.Done() {
				alldone = false
				if _, err := c.Resume(0); err != nil {
					t.Fatal(err)
				}
			}
		}
		if alldone {
			break
		}
	}
	return checksum(grids)
}

// TestThreeStylesAgree pins the §2 equivalence: the same computation
// in thread, SDAG, and return-switch styles produces identical
// numbers.
func TestThreeStylesAgree(t *testing.T) {
	a := runThreads(t)
	b := runSDAG(t)
	c := runCoro(t)
	if len(a) != len(b) || len(b) != len(c) {
		t.Fatalf("lengths: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("threads vs sdag differ at %d: %g vs %g", i, a[i], b[i])
		}
		if math.Float64bits(a[i]) != math.Float64bits(c[i]) {
			t.Fatalf("threads vs coro differ at %d: %g vs %g", i, a[i], c[i])
		}
	}
}
