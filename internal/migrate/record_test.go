package migrate

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// fakeRecord is a minimal Record: a few scalar fields plus a byte
// payload, the same shape as an event-mode continuation record.
type fakeRecord struct {
	mu      sync.Mutex
	id      uint64
	vt      float64
	hops    int
	payload []byte

	extracts int
	installs int
	failOn   string // "extract" or "install" forces an error
}

func (r *fakeRecord) ID() uint64 { return r.id }

func (r *fakeRecord) Extract(p *pup.PUPer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failOn == "extract" {
		return errors.New("forced extract failure")
	}
	r.extracts++
	if err := p.Uint64(&r.id); err != nil {
		return err
	}
	if err := p.Float64(&r.vt); err != nil {
		return err
	}
	if err := p.Int(&r.hops); err != nil {
		return err
	}
	return p.Bytes(&r.payload)
}

func (r *fakeRecord) Install(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failOn == "install" {
		return errors.New("forced install failure")
	}
	r.installs++
	// Scramble first so the test proves the bytes round-trip.
	r.vt, r.hops, r.payload = -1, -1, nil
	u := pup.NewUnpacker(data)
	if err := u.Uint64(&r.id); err != nil {
		return err
	}
	if err := u.Float64(&r.vt); err != nil {
		return err
	}
	if err := u.Int(&r.hops); err != nil {
		return err
	}
	return u.Bytes(&r.payload)
}

// TestBulkMigrateRecords sends a mixed batch — threads interleaved
// with records — through BulkMigrate and checks that record ops skip
// eviction/adoption entirely while still reporting wire bytes, and
// that a record's state survives the Extract → Install round trip.
func TestBulkMigrateRecords(t *testing.T) {
	const nr = 8
	m := newMachine(t, 4, nil)
	// One real thread to interleave with the records.
	var fail string
	th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{
		Strategy:  Isomalloc{},
		StackSize: 4 * vmem.PageSize,
	}, func(c *converse.Ctx) {
		c.Suspend()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.pes[0].Sched.Start(th)
	m.runAll()

	recs := make([]*fakeRecord, nr)
	ops := make([]Op, 0, nr+1)
	for i := range recs {
		recs[i] = &fakeRecord{
			id:      uint64(1000 + i),
			vt:      float64(i) * 1.5,
			hops:    i,
			payload: []byte(fmt.Sprintf("continuation-%d", i)),
		}
		ops = append(ops, Op{R: recs[i], Src: m.pes[i%2], Dst: m.pes[2+i%2]})
	}
	ops = append(ops, Op{T: th, Src: m.pes[0], Dst: m.pes[3]})

	results := BulkMigrate(ops, nil, 3)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
		if res.Bytes <= 0 {
			t.Errorf("op %d reports %d bytes", i, res.Bytes)
		}
	}
	for i, r := range recs {
		if r.extracts != 1 || r.installs != 1 {
			t.Errorf("record %d: %d extracts, %d installs", i, r.extracts, r.installs)
		}
		if r.id != uint64(1000+i) || r.vt != float64(i)*1.5 || r.hops != i {
			t.Errorf("record %d scalars did not round-trip: id=%d vt=%g hops=%d", i, r.id, r.vt, r.hops)
		}
		if string(r.payload) != fmt.Sprintf("continuation-%d", i) {
			t.Errorf("record %d payload = %q", i, r.payload)
		}
		// A continuation record is ~180 B, not a stack image.
		if results[i].Bytes > 512 {
			t.Errorf("record %d image is %d bytes — record path should not carry pages", i, results[i].Bytes)
		}
		if results[i].Suspended {
			t.Errorf("record %d reported suspended", i)
		}
	}
	if th.Scheduler() != m.pes[3].Sched {
		t.Error("interleaved thread did not move")
	}
	th.Awaken()
	m.runAll()
	if fail != "" {
		t.Error(fail)
	}
}

// TestBulkMigrateRecordErrors checks failure isolation: a record that
// fails to extract or install gets its own Result.Err and does not
// disturb the rest of the batch.
func TestBulkMigrateRecordErrors(t *testing.T) {
	m := newMachine(t, 2, nil)
	good := &fakeRecord{id: 1, payload: []byte("ok")}
	badX := &fakeRecord{id: 2, failOn: "extract"}
	badI := &fakeRecord{id: 3, failOn: "install"}
	ops := []Op{
		{R: badX, Src: m.pes[0], Dst: m.pes[1]},
		{R: good, Src: m.pes[0], Dst: m.pes[1]},
		{R: badI, Src: m.pes[0], Dst: m.pes[1]},
	}
	results := BulkMigrate(ops, nil, 1)
	if results[0].Err == nil {
		t.Error("extract failure not reported")
	}
	if results[1].Err != nil {
		t.Errorf("good record failed: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Error("install failure not reported")
	}
	if good.extracts != 1 || good.installs != 1 {
		t.Errorf("good record: %d extracts, %d installs", good.extracts, good.installs)
	}
}
