// Package migrate implements the paper's three thread-migration
// techniques (§3.4) as converse.StackStrategy implementations, plus
// the migration engine that extracts a thread's full migratable state
// (stack, heap, privatized globals), serializes it with PUP, and
// installs it on a destination PE:
//
//   - StackCopy (§3.4.1): every thread executes at one canonical
//     stack address; each context switch copies the live stack bytes
//     out/in. Migration is trivial; switching costs grow with stack
//     use (Figure 9) and only one thread may be active per address
//     space.
//   - Isomalloc (§3.4.2, Figure 2): each stack gets globally unique
//     addresses from the PE's isomalloc slot; context switches move
//     nothing; migration copies pages to identical addresses. Costs
//     virtual address space proportional to *all* threads machine-
//     wide — fatal on 32-bit nodes.
//   - MemoryAlias (§3.4.3, Figure 3): stacks live in physical frames;
//     each switch maps the incoming thread's frames at the canonical
//     address (one simulated mmap) instead of copying. Small address
//     space use, no copying, but a per-switch remap cost and the
//     exclusive-activation limit.
package migrate

import (
	"encoding/binary"
	"fmt"

	"migflow/internal/converse"
	"migflow/internal/platform"
	"migflow/internal/vmem"
)

// Strategy names (StackImage.Strategy values).
const (
	NameStackCopy = "stackcopy"
	NameIsomalloc = "isomalloc"
	NameMemAlias  = "memalias"
)

// ByName returns the named strategy.
func ByName(name string) (converse.StackStrategy, error) {
	switch name {
	case NameStackCopy:
		return StackCopy{}, nil
	case NameIsomalloc:
		return Isomalloc{}, nil
	case NameMemAlias:
		return MemoryAlias{}, nil
	}
	return nil, fmt.Errorf("migrate: unknown strategy %q", name)
}

// All returns the three strategies in Table 1 row order.
func All() []converse.StackStrategy {
	return []converse.StackStrategy{StackCopy{}, Isomalloc{}, MemoryAlias{}}
}

// checkSupported refuses techniques the platform cannot run,
// enforcing Table 1 at thread-creation time ("No" fails; "Maybe"
// fails too — no implementation exists on that machine).
func checkSupported(pe *converse.PE, tech platform.Technique) error {
	if s := pe.Prof.Supports(tech); s != platform.Yes {
		return fmt.Errorf("migrate: %s is %s on %s", tech, s, pe.Prof.Name)
	}
	return nil
}

// checkPageMultiple enforces the shared stack-size contract: every
// strategy works in whole pages (sparse images, frame lists and iso
// slabs all assume it), so a size that is not a positive page
// multiple is rejected identically everywhere instead of being
// silently truncated by one strategy and padded by another.
func checkPageMultiple(strategy string, size uint64) error {
	if size == 0 || size%vmem.PageSize != 0 {
		return fmt.Errorf("migrate: %s: stack size %d is not a positive multiple of the %d-byte page (round with vmem.RoundUpPages)",
			strategy, size, vmem.PageSize)
	}
	return nil
}

// checkImage validates an untrusted incoming StackImage before any of
// its runs are written into mapped memory.
func checkImage(strategy string, im *converse.StackImage) error {
	if err := checkPageMultiple(strategy, im.Size); err != nil {
		return err
	}
	if err := vmem.ValidateRuns(im.Runs, vmem.Addr(im.Base), im.Size); err != nil {
		return fmt.Errorf("migrate: %s: bad image: %w", strategy, err)
	}
	return nil
}

// isZeroPage reports whether b is all zero bytes (stack-copy's sparse
// scan). b is always a whole page, so the 8-byte strides never leave
// a tail.
func isZeroPage(b []byte) bool {
	for ; len(b) >= 8; b = b[8:] {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
	}
	return true
}

// sparseFromBuf builds the run list for a dense buffer based at base,
// omitting all-zero pages and copying the rest (the image must not
// alias the source buffer).
func sparseFromBuf(buf []byte, base vmem.Addr) []vmem.Run {
	var runs []vmem.Run
	var cur *vmem.Run
	for off := uint64(0); off < uint64(len(buf)); off += vmem.PageSize {
		page := buf[off : off+vmem.PageSize]
		if isZeroPage(page) {
			cur = nil
			continue
		}
		if cur == nil {
			runs = append(runs, vmem.Run{Addr: base.Add(off)})
			cur = &runs[len(runs)-1]
		}
		cur.Data = append(cur.Data, page...)
	}
	return runs
}

// ---------------------------------------------------------------
// Stack copying (§3.4.1)

// StackCopy is the naive technique: one system-wide stack address,
// data copied in and out around every run.
type StackCopy struct{}

type stackCopyRef struct {
	size    uint64
	backing []byte // stack contents while switched out
	in      bool
	// maxUsed is the high-water live-byte count ever copied out to
	// backing. Stacks grow down and backing starts zeroed, so bytes
	// below size-maxUsed have never been written — Extract's sparse
	// scan can skip them without looking.
	maxUsed uint64
}

func (r *stackCopyRef) Base() vmem.Addr { return converse.CanonicalStackBase }
func (r *stackCopyRef) Size() uint64    { return r.size }

// Name implements converse.StackStrategy.
func (StackCopy) Name() string { return NameStackCopy }

// Exclusive implements converse.StackStrategy: only one stack-copy
// thread can occupy the canonical address.
func (StackCopy) Exclusive() bool { return true }

// New allocates the thread's backing store. It fails on platforms
// whose system stack base differs across nodes (stack-address
// randomization) — the Table 1 restriction.
func (StackCopy) New(pe *converse.PE, size uint64) (converse.StackRef, error) {
	if err := checkSupported(pe, platform.StackCopy); err != nil {
		return nil, err
	}
	if err := checkPageMultiple(NameStackCopy, size); err != nil {
		return nil, err
	}
	return &stackCopyRef{size: size, backing: make([]byte, size)}, nil
}

// SwitchIn maps the canonical region and copies the live stack bytes
// into place, charging the platform's memcpy cost for the bytes
// moved.
func (StackCopy) SwitchIn(pe *converse.PE, s converse.StackRef, used uint64) error {
	r := s.(*stackCopyRef)
	if r.in {
		return fmt.Errorf("migrate: stackcopy: double switch-in")
	}
	if err := pe.Space.Map(r.Base(), r.size, vmem.ProtRW); err != nil {
		return err
	}
	if used > 0 {
		// The live region is the top `used` bytes (stacks grow down).
		off := r.size - used
		if err := pe.Space.Write(r.Base().Add(off), r.backing[off:]); err != nil {
			return err
		}
	}
	pe.Clock.Advance(pe.Prof.MemcpyPerKB * float64(used) / 1024)
	r.in = true
	return nil
}

// SwitchOut copies the live bytes back to the backing store and
// unmaps the canonical region.
func (StackCopy) SwitchOut(pe *converse.PE, s converse.StackRef, used uint64) error {
	r := s.(*stackCopyRef)
	if !r.in {
		return fmt.Errorf("migrate: stackcopy: switch-out while not in")
	}
	if used > 0 {
		off := r.size - used
		if err := pe.Space.Read(r.Base().Add(off), r.backing[off:]); err != nil {
			return err
		}
		if used > r.maxUsed {
			r.maxUsed = used
		}
	}
	if err := pe.Space.Unmap(r.Base(), r.size); err != nil {
		return err
	}
	pe.Clock.Advance(pe.Prof.MemcpyPerKB * float64(used) / 1024)
	r.in = false
	return nil
}

// Extract captures the backing store as a sparse image; because every
// node uses the same canonical address, "migrating a thread is
// simple". The run data is copied — the image must stay valid even if
// the source ref is switched in or released afterwards — and all-zero
// pages are dropped (a deep stack that has unwound ships almost
// nothing).
func (StackCopy) Extract(pe *converse.PE, s converse.StackRef) (*converse.StackImage, error) {
	r := s.(*stackCopyRef)
	if r.in {
		return nil, fmt.Errorf("migrate: stackcopy: extract while switched in")
	}
	// Only the high-water live region can be nonzero; start the scan
	// at its page boundary.
	start := (r.size - min(r.maxUsed, r.size)) &^ (vmem.PageSize - 1)
	return &converse.StackImage{
		Strategy: NameStackCopy,
		Base:     uint64(r.Base()),
		Size:     r.size,
		Runs:     sparseFromBuf(r.backing[start:], r.Base().Add(start)),
	}, nil
}

// Install recreates the backing store on the destination.
func (StackCopy) Install(pe *converse.PE, im *converse.StackImage) (converse.StackRef, error) {
	if err := checkSupported(pe, platform.StackCopy); err != nil {
		return nil, err
	}
	if im.Base != uint64(converse.CanonicalStackBase) {
		return nil, fmt.Errorf("migrate: stackcopy: image base %#x differs from canonical %#x — stack bases must agree across nodes",
			im.Base, uint64(converse.CanonicalStackBase))
	}
	if err := checkImage(NameStackCopy, im); err != nil {
		return nil, err
	}
	// The fresh backing store is the zero fill; runs overlay the dirty
	// pages. The live high-water mark resumes at the lowest shipped
	// page (everything below it is zero by construction).
	backing := make([]byte, im.Size)
	maxUsed := uint64(0)
	for _, run := range im.Runs {
		copy(backing[run.Addr-vmem.Addr(im.Base):], run.Data)
	}
	if len(im.Runs) > 0 {
		maxUsed = im.Size - uint64(im.Runs[0].Addr-vmem.Addr(im.Base))
	}
	return &stackCopyRef{size: im.Size, backing: backing, maxUsed: maxUsed}, nil
}

// Release drops the backing store.
func (StackCopy) Release(pe *converse.PE, s converse.StackRef) error {
	r := s.(*stackCopyRef)
	if r.in {
		if err := pe.Space.Unmap(r.Base(), r.size); err != nil {
			return err
		}
		r.in = false
	}
	r.backing = nil
	return nil
}

// ---------------------------------------------------------------
// Isomalloc (§3.4.2)

// Isomalloc gives each stack globally-unique addresses; switches are
// free, migration copies pages to identical addresses on the
// destination. A PROT_NONE guard page sits below every stack, so
// running off the bottom faults immediately instead of silently
// corrupting the adjacent slab (another thread's stack or heap).
type Isomalloc struct{}

type isoRef struct {
	base vmem.Addr // usable base (guard page sits just below)
	size uint64
}

func (r *isoRef) Base() vmem.Addr { return r.base }
func (r *isoRef) Size() uint64    { return r.size }

// slab returns the underlying allocation (guard + stack).
func (r *isoRef) slab() (vmem.Addr, uint64) {
	return r.base - vmem.PageSize, r.size + vmem.PageSize
}

// Name implements converse.StackStrategy.
func (Isomalloc) Name() string { return NameIsomalloc }

// Exclusive implements converse.StackStrategy: unique addresses mean
// any number of isomalloc threads can be active, "which allows the
// straightforward exploitation of SMP machines".
func (Isomalloc) Exclusive() bool { return false }

// New carves a slab of globally-unique addresses from the PE's
// isomalloc slot and maps it. On 32-bit platforms this is where
// address space runs out.
func (Isomalloc) New(pe *converse.PE, size uint64) (converse.StackRef, error) {
	if err := checkSupported(pe, platform.Isomalloc); err != nil {
		return nil, err
	}
	if err := checkPageMultiple(NameIsomalloc, size); err != nil {
		return nil, err
	}
	slabBase, err := pe.Iso.AllocSlab(size/vmem.PageSize + 1)
	if err != nil {
		return nil, err
	}
	if err := mapIsoStack(pe, slabBase, size); err != nil {
		_ = pe.Iso.FreeSlab(slabBase)
		return nil, err
	}
	return &isoRef{base: slabBase + vmem.PageSize, size: size}, nil
}

// mapIsoStack installs the guard page and the usable stack region.
func mapIsoStack(pe *converse.PE, slabBase vmem.Addr, size uint64) error {
	if err := pe.Space.Map(slabBase, vmem.PageSize, vmem.ProtNone); err != nil {
		return err
	}
	if err := pe.Space.Map(slabBase+vmem.PageSize, size, vmem.ProtRW); err != nil {
		_ = pe.Space.Unmap(slabBase, vmem.PageSize)
		return err
	}
	return nil
}

// SwitchIn is free: "no data needs to be moved when switching
// threads".
func (Isomalloc) SwitchIn(pe *converse.PE, s converse.StackRef, used uint64) error { return nil }

// SwitchOut is likewise free.
func (Isomalloc) SwitchOut(pe *converse.PE, s converse.StackRef, used uint64) error { return nil }

// Extract copies the stack's dirty pages out as sparse runs and
// unmaps the slab locally; the addresses stay reserved machine-wide,
// so the destination can map the same range. Pages the thread never
// wrote are still zero (Map guarantees zero fill) and ship as
// nothing.
func (Isomalloc) Extract(pe *converse.PE, s converse.StackRef) (*converse.StackImage, error) {
	r := s.(*isoRef)
	runs, err := pe.Space.CopyOutRuns(r.base, r.size)
	if err != nil {
		return nil, err
	}
	slabBase, slabSize := r.slab()
	if err := pe.Space.Unmap(slabBase, slabSize); err != nil {
		return nil, err
	}
	// The slab is NOT returned to the allocator: the range belongs to
	// the thread machine-wide for as long as it lives, so it stays
	// free for the thread to map wherever it migrates.
	return &converse.StackImage{
		Strategy: NameIsomalloc,
		Base:     uint64(r.base),
		Size:     r.size,
		Runs:     runs,
	}, nil
}

// Install maps the same unique addresses on the destination (zero
// filled) and writes the shipped runs back — no pointer inside the
// stack needs updating, and unshipped pages are already zero.
func (Isomalloc) Install(pe *converse.PE, im *converse.StackImage) (converse.StackRef, error) {
	if err := checkSupported(pe, platform.Isomalloc); err != nil {
		return nil, err
	}
	if err := checkImage(NameIsomalloc, im); err != nil {
		return nil, err
	}
	base := vmem.Addr(im.Base)
	if err := mapIsoStack(pe, base-vmem.PageSize, im.Size); err != nil {
		return nil, err
	}
	for _, run := range im.Runs {
		if err := pe.Space.Write(run.Addr, run.Data); err != nil {
			return nil, err
		}
	}
	return &isoRef{base: base, size: im.Size}, nil
}

// Release unmaps the stack and, on the birth PE, returns the slab.
func (Isomalloc) Release(pe *converse.PE, s converse.StackRef) error {
	r := s.(*isoRef)
	slabBase, slabSize := r.slab()
	if err := pe.Space.Unmap(slabBase, slabSize); err != nil {
		return err
	}
	// FreeSlab fails harmlessly when the thread dies away from home;
	// the address range stays reserved, as in the paper's runtime.
	_ = pe.Iso.FreeSlab(slabBase)
	return nil
}

// ---------------------------------------------------------------
// Memory aliasing (§3.4.3, Figure 3)

// MemoryAlias stores each stack in physical frames and maps them at
// the canonical address to run the thread — "simulating the copy
// using the virtual memory hardware".
//
// UseMicrokernelExt enables the technique on machines without mmap
// but with the paper's proposed microkernel extension (§3.4.4: "we
// have shown our scheme for memory aliasing can be supported by
// adding a small extension to the BlueGene/L microkernel to allow
// user processes to remap their heap data over the stack location").
type MemoryAlias struct {
	UseMicrokernelExt bool
}

type aliasRef struct {
	size   uint64
	frames []*vmem.Frame
	in     bool
}

func (r *aliasRef) Base() vmem.Addr { return converse.CanonicalStackBase }
func (r *aliasRef) Size() uint64    { return r.size }

// Name implements converse.StackStrategy.
func (MemoryAlias) Name() string { return NameMemAlias }

// Exclusive implements converse.StackStrategy: like stack copying,
// only one thread can occupy the canonical address at a time.
func (MemoryAlias) Exclusive() bool { return true }

// supported checks Table 1 plus the microkernel-extension escape.
func (m MemoryAlias) supported(pe *converse.PE) error {
	if m.UseMicrokernelExt && pe.Prof.HeapRemapExt {
		return nil // the paper's BG/L extension is in play
	}
	return checkSupported(pe, platform.MemoryAlias)
}

// New allocates the thread's physical frames; no virtual addresses
// are consumed until the thread runs.
func (m MemoryAlias) New(pe *converse.PE, size uint64) (converse.StackRef, error) {
	if err := m.supported(pe); err != nil {
		return nil, err
	}
	// Whole pages only: size/PageSize would otherwise drop a trailing
	// partial page and silently lose stack bytes.
	if err := checkPageMultiple(NameMemAlias, size); err != nil {
		return nil, err
	}
	frames := make([]*vmem.Frame, size/vmem.PageSize)
	for i := range frames {
		frames[i] = vmem.NewFrame()
	}
	return &aliasRef{size: size, frames: frames}, nil
}

// SwitchIn maps the thread's frames at the canonical stack address —
// one mmap call plus per-page page-table work, no data copied.
func (MemoryAlias) SwitchIn(pe *converse.PE, s converse.StackRef, used uint64) error {
	r := s.(*aliasRef)
	if r.in {
		return fmt.Errorf("migrate: memalias: double switch-in")
	}
	if err := pe.Space.MapFrames(r.Base(), r.frames, vmem.ProtRW); err != nil {
		return err
	}
	pe.Clock.Advance(pe.Prof.MmapCall + pe.Prof.PageMapCost*float64(len(r.frames)))
	r.in = true
	return nil
}

// SwitchOut unmaps the canonical region; the frames retain the data.
func (MemoryAlias) SwitchOut(pe *converse.PE, s converse.StackRef, used uint64) error {
	r := s.(*aliasRef)
	if !r.in {
		return fmt.Errorf("migrate: memalias: switch-out while not in")
	}
	if err := pe.Space.Unmap(r.Base(), r.size); err != nil {
		return err
	}
	pe.Clock.Advance(pe.Prof.MmapCall + pe.Prof.PageMapCost*float64(len(r.frames)))
	r.in = false
	return nil
}

// Extract serializes the dirty frames' contents as sparse runs
// (frames the thread never wrote are still zero and ship as
// nothing). Run data is copied out of the frames so the image stays
// valid after the ref is released.
func (MemoryAlias) Extract(pe *converse.PE, s converse.StackRef) (*converse.StackImage, error) {
	r := s.(*aliasRef)
	if r.in {
		return nil, fmt.Errorf("migrate: memalias: extract while switched in")
	}
	var runs []vmem.Run
	var cur *vmem.Run
	for i, f := range r.frames {
		if !f.Dirty() {
			cur = nil
			continue
		}
		if cur == nil {
			runs = append(runs, vmem.Run{Addr: r.Base().Add(uint64(i) * vmem.PageSize)})
			cur = &runs[len(runs)-1]
		}
		cur.Data = append(cur.Data, f.Data()...)
	}
	return &converse.StackImage{
		Strategy: NameMemAlias,
		Base:     uint64(r.Base()),
		Size:     r.size,
		Runs:     runs,
	}, nil
}

// Install rebuilds the frames on the destination: fresh zero frames
// for the whole stack, shipped runs copied over their pages. The
// copied frames are marked dirty by hand — the bytes arrive through
// Frame.Data, not Space.Write, and a clean frame must stay all-zero
// or the *next* extract would drop live pages.
func (m MemoryAlias) Install(pe *converse.PE, im *converse.StackImage) (converse.StackRef, error) {
	if err := m.supported(pe); err != nil {
		return nil, err
	}
	if err := checkImage(NameMemAlias, im); err != nil {
		return nil, err
	}
	r := &aliasRef{size: im.Size, frames: make([]*vmem.Frame, im.Size/vmem.PageSize)}
	for i := range r.frames {
		r.frames[i] = vmem.NewFrame()
	}
	for _, run := range im.Runs {
		fi := (uint64(run.Addr) - im.Base) / vmem.PageSize
		for off := uint64(0); off < uint64(len(run.Data)); off += vmem.PageSize {
			f := r.frames[fi+off/vmem.PageSize]
			copy(f.Data(), run.Data[off:off+vmem.PageSize])
			f.MarkDirty()
		}
	}
	return r, nil
}

// Release drops the frames.
func (MemoryAlias) Release(pe *converse.PE, s converse.StackRef) error {
	r := s.(*aliasRef)
	if r.in {
		if err := pe.Space.Unmap(r.Base(), r.size); err != nil {
			return err
		}
		r.in = false
	}
	r.frames = nil
	return nil
}
