package migrate

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/pup"
	"migflow/internal/vmem"
)

// TestMigrateExternalSuspended: a thread blocked in Suspend is
// forcibly moved by each strategy; it must keep waiting on the
// destination and finish correctly when awakened there — the load
// balancer's "ranks blocked in Recv keep waiting on their new PE"
// contract.
func TestMigrateExternalSuspended(t *testing.T) {
	for _, strat := range All() {
		t.Run(strat.Name(), func(t *testing.T) {
			m := newMachine(t, 2, nil)
			var fail string
			done := false
			th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{
				Strategy:  strat,
				StackSize: 4 * vmem.PageSize,
			}, func(c *converse.Ctx) {
				frame, err := c.PushFrame(64)
				if err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteUint64(frame, 0xC0FFEE); err != nil {
					fail = err.Error()
					return
				}
				blk, err := c.Malloc(256)
				if err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteUint64(blk, 0xBEEF); err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteAddr(frame.Add(8), blk); err != nil {
					fail = err.Error()
					return
				}
				c.Suspend() // ... forcibly migrated while parked here ...
				if c.PE().Index != 1 {
					fail = fmt.Sprintf("awoke on PE %d, want 1", c.PE().Index)
					return
				}
				if v, err := c.Space().ReadUint64(frame); err != nil || v != 0xC0FFEE {
					fail = fmt.Sprintf("stack after forced move = %#x/%v", v, err)
					return
				}
				p, err := c.Space().ReadAddr(frame.Add(8))
				if err != nil {
					fail = err.Error()
					return
				}
				if v, err := c.Space().ReadUint64(p); err != nil || v != 0xBEEF {
					fail = fmt.Sprintf("heap after forced move = %#x/%v", v, err)
					return
				}
				done = true
			})
			if err != nil {
				t.Fatal(err)
			}
			m.pes[0].Sched.Start(th)
			m.runAll() // runs until the thread suspends
			if th.State() != converse.Suspended {
				t.Fatalf("thread state = %s, want Suspended", th.State())
			}
			n, err := MigrateExternal(th, m.pes[0], m.pes[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			if n <= 0 {
				t.Error("no bytes reported for the image")
			}
			if th.State() != converse.Suspended {
				t.Errorf("thread state after move = %s, want still Suspended", th.State())
			}
			if th.Scheduler() != m.pes[1].Sched {
				t.Error("thread not owned by destination scheduler")
			}
			th.Awaken()
			m.runAll()
			if fail != "" {
				t.Fatal(fail)
			}
			if !done || th.State() != converse.Exited {
				t.Errorf("done=%v state=%s", done, th.State())
			}
		})
	}
}

// TestSparseImageMatchesDense is the round-trip property test: for
// every strategy, a stack with a few dirtied pages extracts to a
// sparse image whose dense materialization is byte-identical to the
// stack's full contents before extraction, and installing the sparse
// image reproduces those exact bytes on the destination.
func TestSparseImageMatchesDense(t *testing.T) {
	const pages = 16
	for _, strat := range All() {
		for seed := int64(1); seed <= 4; seed++ {
			strat, seed := strat, seed
			t.Run(fmt.Sprintf("%s/seed%d", strat.Name(), seed), func(t *testing.T) {
				m := newMachine(t, 2, nil)
				src, dst := m.pes[0], m.pes[1]
				size := uint64(pages * vmem.PageSize)
				ref, err := strat.New(src, size)
				if err != nil {
					t.Fatal(err)
				}
				if err := strat.SwitchIn(src, ref, size); err != nil {
					t.Fatal(err)
				}
				base := ref.Base()
				// Dirty a random subset of pages with random bytes.
				rng := rand.New(rand.NewSource(seed))
				touched := 0
				for pg := 0; pg < pages; pg++ {
					if rng.Intn(3) != 0 {
						continue
					}
					touched++
					buf := make([]byte, rng.Intn(int(vmem.PageSize)-1)+1)
					rng.Read(buf)
					if err := src.Space.Write(base.Add(uint64(pg)*vmem.PageSize), buf); err != nil {
						t.Fatal(err)
					}
				}
				dense, err := src.Space.CopyOut(base, size)
				if err != nil {
					t.Fatal(err)
				}
				if err := strat.SwitchOut(src, ref, size); err != nil {
					t.Fatal(err)
				}
				im, err := strat.Extract(src, ref)
				if err != nil {
					t.Fatal(err)
				}
				// Sparseness: the image ships at most the touched pages
				// (stack copying also writes during switch in/out, so
				// allow its full live region; iso/alias must be exact).
				if strat.Name() != NameStackCopy && im.Payload() > touched*int(vmem.PageSize) {
					t.Errorf("image ships %d bytes for %d touched pages", im.Payload(), touched)
				}
				// Property 1: dense materialization of the sparse image
				// equals the source's dense contents.
				if got := vmem.DenseFromRuns(im.Runs, base, size); !bytes.Equal(got, dense) {
					t.Fatal("sparse image diverges from dense contents")
				}
				// PUP round trip of the image (the wire crossing).
				var im2 converse.StackImage
				data, err := pup.Pack(im)
				if err != nil {
					t.Fatal(err)
				}
				if err := pup.Unpack(data, &im2); err != nil {
					t.Fatal(err)
				}
				// Property 2: install + switch in reproduces the exact
				// bytes on the destination.
				ref2, err := strat.Install(dst, &im2)
				if err != nil {
					t.Fatal(err)
				}
				if err := strat.SwitchIn(dst, ref2, size); err != nil {
					t.Fatal(err)
				}
				got, err := dst.Space.CopyOut(ref2.Base(), size)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, dense) {
					t.Fatal("installed stack diverges from source bytes")
				}
			})
		}
	}
}

// TestBulkMigrateMovesBatch: a batch of suspended threads crosses in
// one BulkMigrate call; every thread lands on its destination with
// state intact and finishes there.
func TestBulkMigrateMovesBatch(t *testing.T) {
	const n = 12
	m := newMachine(t, 4, nil)
	fails := make([]string, n)
	threads := make([]*converse.Thread, n)
	for i := 0; i < n; i++ {
		i := i
		strat := All()[i%len(All())]
		th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{
			Strategy:  strat,
			StackSize: 4 * vmem.PageSize,
		}, func(c *converse.Ctx) {
			frame, err := c.PushFrame(64)
			if err != nil {
				fails[i] = err.Error()
				return
			}
			if err := c.Space().WriteUint64(frame, uint64(0x1000+i)); err != nil {
				fails[i] = err.Error()
				return
			}
			c.Suspend()
			if v, err := c.Space().ReadUint64(frame); err != nil || v != uint64(0x1000+i) {
				fails[i] = fmt.Sprintf("stack after bulk move = %#x/%v", v, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
		m.pes[0].Sched.Start(th)
	}
	m.runAll()
	// Exclusive strategies share one canonical stack address per
	// space, but suspended threads are all switched out, so a batch
	// mixing all three strategies is fine.
	ops := make([]Op, n)
	for i, th := range threads {
		ops[i] = Op{T: th, Src: m.pes[0], Dst: m.pes[1+i%3]}
	}
	results := BulkMigrate(ops, nil, 4)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
		if !res.Suspended {
			t.Errorf("op %d not reported suspended", i)
		}
		if res.Bytes <= 0 {
			t.Errorf("op %d reports %d bytes", i, res.Bytes)
		}
		if threads[i].Scheduler() != m.pes[1+i%3].Sched {
			t.Errorf("thread %d on wrong PE", i)
		}
	}
	for _, th := range threads {
		th.Awaken()
	}
	m.runAll()
	for i, f := range fails {
		if f != "" {
			t.Errorf("thread %d: %s", i, f)
		}
		if threads[i].State() != converse.Exited {
			t.Errorf("thread %d state = %s", i, threads[i].State())
		}
	}
}

// TestBulkMigrateConcurrentStress is the -race stress test: many
// isomalloc threads bulk-migrate concurrently between overlapping
// source and destination PEs, repeatedly. Isomalloc is used because
// its per-thread unique addresses make concurrent installs into one
// space legal (the exclusive strategies still work in a batch, but
// this test maximizes genuinely parallel page traffic).
func TestBulkMigrateConcurrentStress(t *testing.T) {
	const n = 24
	m := newMachine(t, 4, nil)
	fails := make([]string, n)
	threads := make([]*converse.Thread, n)
	for i := 0; i < n; i++ {
		i := i
		th, err := m.pes[i%4].Sched.CthCreate(converse.ThreadOptions{
			Strategy:  Isomalloc{},
			StackSize: 4 * vmem.PageSize,
		}, func(c *converse.Ctx) {
			frame, err := c.PushFrame(64)
			if err != nil {
				fails[i] = err.Error()
				return
			}
			if err := c.Space().WriteUint64(frame, uint64(i)*7); err != nil {
				fails[i] = err.Error()
				return
			}
			c.Suspend()
			if v, err := c.Space().ReadUint64(frame); err != nil || v != uint64(i)*7 {
				fails[i] = fmt.Sprintf("stack = %#x/%v", v, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
		m.pes[i%4].Sched.Start(th)
	}
	m.runAll()
	for round := 0; round < 4; round++ {
		ops := make([]Op, n)
		for i, th := range threads {
			src := th.Scheduler().PE()
			ops[i] = Op{T: th, Src: src, Dst: m.pes[(src.Index+1+i%3)%4]}
		}
		results := BulkMigrate(ops, nil, 8)
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, res.Err)
			}
		}
	}
	for _, th := range threads {
		th.Awaken()
	}
	m.runAll()
	for i, f := range fails {
		if f != "" {
			t.Errorf("thread %d: %s", i, f)
		}
		if threads[i].State() != converse.Exited {
			t.Errorf("thread %d state = %s", i, threads[i].State())
		}
	}
}
