package migrate

import (
	"fmt"

	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/pup"
	"migflow/internal/swapglobal"
	"migflow/internal/vmem"
)

// ThreadImage is the complete wire form of a migrating thread: the
// metadata the paper calls "user state" — stack pointer, stack pages,
// heap arenas with allocation metadata, privatized-global slot values
// — everything except kernel state, which (as in the paper, §3.1.3)
// is not migrated.
type ThreadImage struct {
	ID    uint64
	Prio  int64
	SP    uint64
	Stack converse.StackImage
	Heap  mem.ThreadHeapImage

	HasGlobals bool
	GlobalVars []uint64
}

// Pup implements pup.Pupable.
func (im *ThreadImage) Pup(p *pup.PUPer) error {
	if err := p.Uint64(&im.ID); err != nil {
		return err
	}
	if err := p.Int64(&im.Prio); err != nil {
		return err
	}
	if err := p.Uint64(&im.SP); err != nil {
		return err
	}
	if err := im.Stack.Pup(p); err != nil {
		return err
	}
	if err := im.Heap.Pup(p); err != nil {
		return err
	}
	if err := p.Bool(&im.HasGlobals); err != nil {
		return err
	}
	return p.Uint64s(&im.GlobalVars)
}

// Extract pulls a Migrating thread's state off the source PE:
// serializes stack and heap, unmaps their pages locally. After
// Extract the thread owns no resources on src.
func Extract(t *converse.Thread, src *converse.PE) (*ThreadImage, error) {
	if t.State() != converse.Migrating {
		return nil, fmt.Errorf("migrate: Extract on %s thread %d", t.State(), t.ID())
	}
	stackIm, err := t.Strategy().Extract(src, t.Stack())
	if err != nil {
		return nil, fmt.Errorf("migrate: extracting stack of thread %d: %w", t.ID(), err)
	}
	heapIm, err := t.Heap().Snapshot()
	if err != nil {
		return nil, fmt.Errorf("migrate: snapshotting heap of thread %d: %w", t.ID(), err)
	}
	if err := t.Heap().Detach(); err != nil {
		return nil, fmt.Errorf("migrate: detaching heap of thread %d: %w", t.ID(), err)
	}
	im := &ThreadImage{
		ID:    uint64(t.ID()),
		Prio:  int64(t.Priority()),
		SP:    uint64(t.SP()),
		Stack: *stackIm,
		Heap:  *heapIm,
	}
	if g := t.Globals(); g != nil {
		im.HasGlobals = true
		for _, a := range g.Image() {
			im.GlobalVars = append(im.GlobalVars, uint64(a))
		}
	}
	return im, nil
}

// Install rebuilds the thread's state on the destination PE from an
// image and hands the state back to the thread. layout is the job's
// swap-global module (may be nil when the image has no globals).
func Install(t *converse.Thread, dst *converse.PE, im *ThreadImage, layout *swapglobal.Layout) error {
	strat, err := ByName(im.Stack.Strategy)
	if err != nil {
		return err
	}
	stack, err := strat.Install(dst, &im.Stack)
	if err != nil {
		return fmt.Errorf("migrate: installing stack of thread %d: %w", im.ID, err)
	}
	heap, err := mem.RestoreThreadHeap(dst.Iso, dst.Space, &im.Heap)
	if err != nil {
		return fmt.Errorf("migrate: restoring heap of thread %d: %w", im.ID, err)
	}
	var globals *swapglobal.Instance
	if im.HasGlobals {
		if layout == nil {
			return fmt.Errorf("migrate: thread %d has globals but no layout supplied", im.ID)
		}
		vars := make([]vmem.Addr, len(im.GlobalVars))
		for i, a := range im.GlobalVars {
			vars[i] = vmem.Addr(a)
		}
		globals, err = swapglobal.RestoreInstance(layout, vars)
		if err != nil {
			return err
		}
	}
	t.Reinstall(stack, vmem.Addr(im.SP), heap, globals)
	return nil
}

// MigrateNow performs one complete synchronous migration: extract on
// src, PUP round trip (the bytes that would cross the network),
// install on dst, and scheduler ownership transfer. It returns the
// serialized size so callers can charge network costs.
func MigrateNow(t *converse.Thread, src, dst *converse.PE, layout *swapglobal.Layout) (int, error) {
	n, _, err := moveThread(t, src, dst, layout, false)
	return n, err
}

// MigrateExternal forcibly migrates a thread that is NOT running —
// Ready or Suspended — from src to dst: the "asynchronous arbitrary
// point" migration a load balancer or node-vacation service performs
// without the thread's cooperation (§3: "migration can allow all the
// work to be moved off a processor ... to vacate a node that is
// expected to fail"). A thread that was waiting for an event keeps
// waiting on the destination; a runnable thread becomes runnable
// there.
func MigrateExternal(t *converse.Thread, src, dst *converse.PE, layout *swapglobal.Layout) (int, error) {
	wasSuspended, err := src.Sched.Evict(t)
	if err != nil {
		return 0, err
	}
	n, _, err := moveThread(t, src, dst, layout, wasSuspended)
	return n, err
}

func moveThread(t *converse.Thread, src, dst *converse.PE, layout *swapglobal.Layout, suspended bool) (int, *ThreadImage, error) {
	im, err := Extract(t, src)
	if err != nil {
		return 0, nil, err
	}
	// Single-pass pack into a pooled buffer, unpacked in place: the
	// PUP round trip is still byte-faithful to what would cross the
	// network, but steady-state migration allocates no wire buffers
	// (unpacking copies every field out, so im2 does not alias the
	// pooled bytes).
	p := pup.AcquirePacker()
	defer p.Release()
	if err := im.Pup(p); err != nil {
		return 0, nil, err
	}
	n := len(p.PackedBytes())
	var im2 ThreadImage
	if err := pup.Unpack(p.PackedBytes(), &im2); err != nil {
		return 0, nil, err
	}
	if err := Install(t, dst, &im2, layout); err != nil {
		return 0, nil, err
	}
	src.Sched.Disown(t)
	if suspended {
		dst.Sched.AdoptSuspended(t)
	} else {
		dst.Sched.Adopt(t)
	}
	return n, &im2, nil
}
