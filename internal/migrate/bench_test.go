package migrate

import (
	"testing"

	"migflow/internal/converse"
	"migflow/internal/vmem"
)

// benchStack is the benchmark stack size: the ISSUE's "mostly-idle
// 64 KiB stack".
const benchStack = 64 << 10

// suspendedThread parks one thread with a benchStack-sized stack on
// m.pes[0]. full=false leaves the stack mostly idle (one live frame,
// one dirty page); full=true dirties every page first — the
// worst-case image that matches what the dense path always shipped.
func suspendedThread(b *testing.B, m *machine, strat converse.StackStrategy, full bool) *converse.Thread {
	return suspendedThreadOn(b, m, m.pes[0], strat, full)
}

// suspendedThreadOn is suspendedThread with an explicit home PE, so
// batch benchmarks can spread their fixtures instead of funnelling
// every source-side extract through one scheduler lock.
func suspendedThreadOn(b *testing.B, m *machine, pe *converse.PE, strat converse.StackStrategy, full bool) *converse.Thread {
	b.Helper()
	th, err := pe.Sched.CthCreate(converse.ThreadOptions{
		Strategy:  strat,
		StackSize: benchStack,
	}, func(c *converse.Ctx) {
		if full {
			frame, err := c.PushFrame(benchStack - 4*vmem.PageSize)
			if err != nil {
				b.Error(err)
				return
			}
			for off := uint64(0); off < benchStack-5*vmem.PageSize; off += vmem.PageSize {
				if err := c.Space().WriteUint64(frame.Add(off), off); err != nil {
					b.Error(err)
					return
				}
			}
		} else {
			frame, err := c.PushFrame(64)
			if err != nil {
				b.Error(err)
				return
			}
			if err := c.Space().WriteUint64(frame, 0x1D1E); err != nil {
				b.Error(err)
				return
			}
		}
		c.Suspend()
	})
	if err != nil {
		b.Fatal(err)
	}
	pe.Sched.Start(th)
	m.runAll()
	if th.State() != converse.Suspended {
		b.Fatalf("fixture thread state = %s", th.State())
	}
	return th
}

// benchMigrate ping-pongs one suspended thread between two PEs
// through the full external-migration path (evict, extract, PUP round
// trip, install, re-adopt).
func benchMigrate(b *testing.B, strat converse.StackStrategy, full bool) {
	m := newMachine(b, 2, nil)
	th := suspendedThread(b, m, strat, full)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := m.pes[i%2], m.pes[1-i%2]
		if _, err := MigrateExternal(th, src, dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-strategy migration benchmarks. The "idle64k" variant is the
// sparse path's showcase (a 64 KiB stack with one live page); the
// "full64k" variant dirties every page, which is what the dense path
// shipped for EVERY stack regardless of use.

func BenchmarkMigrateStackCopy(b *testing.B) {
	b.Run("idle64k", func(b *testing.B) { benchMigrate(b, StackCopy{}, false) })
	b.Run("full64k", func(b *testing.B) { benchMigrate(b, StackCopy{}, true) })
}

func BenchmarkMigrateIsomalloc(b *testing.B) {
	b.Run("idle64k", func(b *testing.B) { benchMigrate(b, Isomalloc{}, false) })
	b.Run("full64k", func(b *testing.B) { benchMigrate(b, Isomalloc{}, true) })
}

func BenchmarkMigrateMemAlias(b *testing.B) {
	b.Run("idle64k", func(b *testing.B) { benchMigrate(b, MemoryAlias{}, false) })
	b.Run("full64k", func(b *testing.B) { benchMigrate(b, MemoryAlias{}, true) })
}

// BenchmarkLBStep compares one load-balancer step moving a whole
// batch of threads serially (N MigrateExternal calls) against the
// pipelined BulkMigrate — the number that matters for measurement-
// based LB at scale. Each op is a full eviction + sparse extract +
// PUP + install of an idle 64 KiB-stack thread.
func BenchmarkLBStep(b *testing.B) {
	const batch = 32
	setup := func(b *testing.B) (*machine, []*converse.Thread) {
		m := newMachine(b, 4, nil)
		threads := make([]*converse.Thread, batch)
		for i := range threads {
			threads[i] = suspendedThreadOn(b, m, m.pes[i%4], Isomalloc{}, false)
		}
		return m, threads
	}
	// One LB step: move every thread from its current PE to the
	// "mirror" PE (0↔2, 1↔3), alternating each iteration.
	b.Run("serial32", func(b *testing.B) {
		m, threads := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, th := range threads {
				src := th.Scheduler().PE()
				if _, err := MigrateExternal(th, src, m.pes[(src.Index+2)%4], nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch32", func(b *testing.B) {
		m, threads := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops := make([]Op, batch)
			for j, th := range threads {
				src := th.Scheduler().PE()
				ops[j] = Op{T: th, Src: src, Dst: m.pes[(src.Index+2)%4]}
			}
			for j, res := range BulkMigrate(ops, nil, 0) {
				if res.Err != nil {
					b.Fatalf("op %d: %v", j, res.Err)
				}
			}
		}
	})
}
