package migrate

import (
	"bytes"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/platform"
	"migflow/internal/vmem"
)

func newPE(t testing.TB, idx, n int, prof *platform.Profile) *converse.PE {
	t.Helper()
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, uint64(n)*4096*vmem.PageSize, n)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := converse.NewPE(converse.PEConfig{Index: idx, Profile: prof, IsoRegion: region})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestByNameAndAll(t *testing.T) {
	for _, name := range []string{NameStackCopy, NameIsomalloc, NameMemAlias} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Errorf("ByName(%q) = %v/%v", name, s, err)
		}
	}
	if _, err := ByName("teleport"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if len(All()) != 3 {
		t.Error("All() should have 3 strategies")
	}
}

func TestExclusivity(t *testing.T) {
	if !(StackCopy{}).Exclusive() || !(MemoryAlias{}).Exclusive() {
		t.Error("copy/alias strategies must be exclusive")
	}
	if (Isomalloc{}).Exclusive() {
		t.Error("isomalloc must not be exclusive")
	}
}

// TestStrategyDataPersistence checks, for each technique, that stack
// bytes written while switched in survive switch-out/switch-in — the
// core contract behind "all references to the original stack's data
// remain valid".
func TestStrategyDataPersistence(t *testing.T) {
	const size = 4 * vmem.PageSize
	for _, strat := range All() {
		t.Run(strat.Name(), func(t *testing.T) {
			pe := newPE(t, 0, 1, platform.Opteron())
			ref, err := strat.New(pe, size)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Size() != size {
				t.Errorf("Size = %d", ref.Size())
			}
			if err := strat.SwitchIn(pe, ref, 0); err != nil {
				t.Fatal(err)
			}
			payload := []byte("stack bytes must survive")
			at := ref.Base().Add(size - 64)
			if err := pe.Space.Write(at, payload); err != nil {
				t.Fatal(err)
			}
			used := uint64(64)
			if err := strat.SwitchOut(pe, ref, used); err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchIn(pe, ref, used); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if err := pe.Space.Read(at, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("data after switch cycle = %q, want %q", got, payload)
			}
			if err := strat.SwitchOut(pe, ref, used); err != nil {
				t.Fatal(err)
			}
			if err := strat.Release(pe, ref); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExclusiveCanonicalAddress shows the §3.4.1 limitation directly:
// with an exclusive technique, a second thread cannot be switched in
// while the first occupies the canonical stack address.
func TestExclusiveCanonicalAddress(t *testing.T) {
	for _, strat := range []converse.StackStrategy{StackCopy{}, MemoryAlias{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			pe := newPE(t, 0, 1, platform.Opteron())
			a, err := strat.New(pe, vmem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			b, err := strat.New(pe, vmem.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchIn(pe, a, 0); err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchIn(pe, b, 0); err == nil {
				t.Error("two exclusive stacks switched in simultaneously")
			}
			if err := strat.SwitchOut(pe, a, 0); err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchIn(pe, b, 0); err != nil {
				t.Errorf("switch-in after partner out: %v", err)
			}
			_ = strat.SwitchOut(pe, b, 0)
		})
	}
}

// TestIsomallocConcurrentStacks shows the complementary strength:
// isomalloc stacks are all addressable at once (SMP exploitation).
func TestIsomallocConcurrentStacks(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	s := Isomalloc{}
	a, err := s.New(pe, vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.New(pe, vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base() == b.Base() {
		t.Fatal("two isomalloc stacks share an address")
	}
	if err := pe.Space.Write(a.Base(), []byte{1}); err != nil {
		t.Errorf("stack A not addressable: %v", err)
	}
	if err := pe.Space.Write(b.Base(), []byte{2}); err != nil {
		t.Errorf("stack B not addressable: %v", err)
	}
}

// TestVirtualAddressFootprint verifies the §3.4.3 claim: exclusive
// techniques consume canonical-region address space only while a
// thread is switched in, while isomalloc stacks hold their addresses
// permanently.
func TestVirtualAddressFootprint(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	canon := converse.CanonicalStackBase
	for _, strat := range []converse.StackStrategy{StackCopy{}, MemoryAlias{}} {
		ref, err := strat.New(pe, vmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if pe.Space.Mapped(canon, vmem.PageSize) {
			t.Errorf("%s: canonical region mapped before switch-in", strat.Name())
		}
		if err := strat.SwitchIn(pe, ref, 0); err != nil {
			t.Fatal(err)
		}
		if !pe.Space.Mapped(canon, vmem.PageSize) {
			t.Errorf("%s: canonical region not mapped while in", strat.Name())
		}
		if err := strat.SwitchOut(pe, ref, 0); err != nil {
			t.Fatal(err)
		}
		if pe.Space.Mapped(canon, vmem.PageSize) {
			t.Errorf("%s: canonical region leaked after switch-out", strat.Name())
		}
		_ = strat.Release(pe, ref)
	}
	iso := Isomalloc{}
	ref, err := iso.New(pe, vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Space.Mapped(ref.Base(), vmem.PageSize) {
		t.Error("isomalloc stack not permanently mapped")
	}
}

// TestTable1Enforcement pins strategy availability to the platform
// capability matrix at thread-creation time.
func TestTable1Enforcement(t *testing.T) {
	cases := []struct {
		prof  *platform.Profile
		strat converse.StackStrategy
		ok    bool
	}{
		{platform.Opteron(), StackCopy{}, true},
		{platform.MacG5(), StackCopy{}, false},       // "Maybe": no QuickThreads port
		{platform.IA64(), StackCopy{}, false},        // "Maybe"
		{platform.BlueGeneL(), Isomalloc{}, false},   // "No": no mmap
		{platform.BlueGeneL(), MemoryAlias{}, false}, // "Maybe": needs microkernel ext
		{platform.Windows(), Isomalloc{}, false},     // "Maybe": MapViewOfFileEx port
		{platform.MacG5(), Isomalloc{}, true},
		{platform.MacG5(), MemoryAlias{}, true},
	}
	for _, c := range cases {
		pe := newPE(t, 0, 1, c.prof)
		_, err := c.strat.New(pe, vmem.PageSize)
		if c.ok && err != nil {
			t.Errorf("%s on %s: unexpected error %v", c.strat.Name(), c.prof.Name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s on %s: should be refused (Table 1)", c.strat.Name(), c.prof.Name)
		}
	}
}

// TestBGLMicrokernelExtension: memory aliasing is "Maybe" on BG/L by
// default, but the paper's microkernel extension makes it work — on a
// machine with only 40 MB-scale address space where isomalloc is
// impossible.
func TestBGLMicrokernelExtension(t *testing.T) {
	pe := newPE(t, 0, 1, platform.BlueGeneL())
	if _, err := (MemoryAlias{}).New(pe, vmem.PageSize); err == nil {
		t.Fatal("memalias on stock BG/L accepted")
	}
	ext := MemoryAlias{UseMicrokernelExt: true}
	ref, err := ext.New(pe, 2*vmem.PageSize)
	if err != nil {
		t.Fatalf("extension-enabled memalias refused: %v", err)
	}
	if err := ext.SwitchIn(pe, ref, 0); err != nil {
		t.Fatal(err)
	}
	if err := pe.Space.Write(ref.Base(), []byte("bgl")); err != nil {
		t.Fatal(err)
	}
	if err := ext.SwitchOut(pe, ref, 0); err != nil {
		t.Fatal(err)
	}
	// Extract/Install works under the extension too.
	im, err := ext.Extract(pe, ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ext.Install(pe, im); err != nil {
		t.Fatal(err)
	}
	// The extension must not smuggle the flag onto machines where the
	// extension does not exist (plain Windows: no HeapRemapExt).
	win := newPE(t, 0, 1, platform.Windows())
	if _, err := ext.New(win, vmem.PageSize); err == nil {
		t.Error("extension flag enabled memalias on a machine without the extension")
	}
}

// TestExtractInstallRoundTrip migrates a bare stack between two PEs
// for each technique and verifies byte-exact restoration.
func TestExtractInstallRoundTrip(t *testing.T) {
	const size = 2 * vmem.PageSize
	for _, strat := range All() {
		t.Run(strat.Name(), func(t *testing.T) {
			region, err := mem.NewIsoRegion(mem.DefaultIsoBase, 8192*vmem.PageSize, 2)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(i int) *converse.PE {
				pe, err := converse.NewPE(converse.PEConfig{Index: i, Profile: platform.Opteron(), IsoRegion: region})
				if err != nil {
					t.Fatal(err)
				}
				return pe
			}
			src, dst := mk(0), mk(1)
			ref, err := strat.New(src, size)
			if err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchIn(src, ref, 0); err != nil {
				t.Fatal(err)
			}
			base := ref.Base()
			if err := src.Space.WriteUint64(base.Add(128), 0xfeedface); err != nil {
				t.Fatal(err)
			}
			// A self-referential pointer: the crux of §3.4 — it must
			// stay valid without any fixup.
			ptrAt := base.Add(256)
			target := base.Add(512)
			if err := src.Space.WriteAddr(ptrAt, target); err != nil {
				t.Fatal(err)
			}
			if err := src.Space.WriteUint64(target, 0xdeadbeef); err != nil {
				t.Fatal(err)
			}
			if err := strat.SwitchOut(src, ref, size); err != nil {
				t.Fatal(err)
			}
			im, err := strat.Extract(src, ref)
			if err != nil {
				t.Fatal(err)
			}
			ref2, err := strat.Install(dst, im)
			if err != nil {
				t.Fatal(err)
			}
			if ref2.Base() != base {
				t.Fatalf("stack moved: %s → %s", base, ref2.Base())
			}
			if err := strat.SwitchIn(dst, ref2, size); err != nil {
				t.Fatal(err)
			}
			if v, err := dst.Space.ReadUint64(base.Add(128)); err != nil || v != 0xfeedface {
				t.Errorf("plain value = %#x/%v", v, err)
			}
			p, err := dst.Space.ReadAddr(ptrAt)
			if err != nil {
				t.Fatal(err)
			}
			// Chase the migrated pointer on the destination.
			if v, err := dst.Space.ReadUint64(p); err != nil || v != 0xdeadbeef {
				t.Errorf("chased pointer = %#x/%v, want 0xdeadbeef", v, err)
			}
		})
	}
}

func TestExtractWhileSwitchedInFails(t *testing.T) {
	for _, strat := range []converse.StackStrategy{StackCopy{}, MemoryAlias{}} {
		pe := newPE(t, 0, 1, platform.Opteron())
		ref, err := strat.New(pe, vmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := strat.SwitchIn(pe, ref, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := strat.Extract(pe, ref); err == nil {
			t.Errorf("%s: extract while switched in accepted", strat.Name())
		}
	}
}

func TestStackCopyInstallValidation(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	s := StackCopy{}
	if _, err := s.Install(pe, &converse.StackImage{Strategy: NameStackCopy, Base: 0x1234000, Size: vmem.PageSize,
		Runs: []vmem.Run{{Addr: 0x1234000, Data: make([]byte, vmem.PageSize)}}}); err == nil {
		t.Error("mismatched canonical base accepted")
	}
	canonical := uint64(converse.CanonicalStackBase)
	if _, err := s.Install(pe, &converse.StackImage{Strategy: NameStackCopy, Base: canonical, Size: vmem.PageSize,
		Runs: []vmem.Run{{Addr: converse.CanonicalStackBase, Data: []byte{1}}}}); err == nil {
		t.Error("partial-page run accepted")
	}
	if _, err := s.Install(pe, &converse.StackImage{Strategy: NameStackCopy, Base: canonical, Size: vmem.PageSize,
		Runs: []vmem.Run{{Addr: converse.CanonicalStackBase.Add(vmem.PageSize), Data: make([]byte, vmem.PageSize)}}}); err == nil {
		t.Error("out-of-range run accepted")
	}
	if _, err := s.Install(pe, &converse.StackImage{Strategy: NameStackCopy, Base: canonical, Size: vmem.PageSize + 1}); err == nil {
		t.Error("non-page-multiple size accepted")
	}
	a := MemoryAlias{}
	if _, err := a.Install(pe, &converse.StackImage{Strategy: NameMemAlias, Base: canonical, Size: vmem.PageSize,
		Runs: []vmem.Run{{Addr: converse.CanonicalStackBase, Data: []byte{1}}}}); err == nil {
		t.Error("partial-page alias run accepted")
	}
	if _, err := a.Install(pe, &converse.StackImage{Strategy: NameMemAlias, Base: canonical, Size: vmem.PageSize + 1}); err == nil {
		t.Error("non-page-multiple alias size accepted")
	}
}

// TestStrategyNewRejectsPartialPage: all three strategies refuse a
// stack size that is not a whole number of pages — the trailing
// partial page used to be silently truncated by memalias.
func TestStrategyNewRejectsPartialPage(t *testing.T) {
	for _, strat := range All() {
		pe := newPE(t, 0, 1, platform.Opteron())
		if _, err := strat.New(pe, vmem.PageSize+100); err == nil {
			t.Errorf("%s: non-page-multiple stack size accepted", strat.Name())
		}
		if _, err := strat.New(pe, 0); err == nil {
			t.Errorf("%s: zero stack size accepted", strat.Name())
		}
	}
}

func TestDoubleSwitchErrors(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	s := StackCopy{}
	ref, err := s.New(pe, vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchOut(pe, ref, 0); err == nil {
		t.Error("switch-out while not in accepted")
	}
	if err := s.SwitchIn(pe, ref, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchIn(pe, ref, 0); err == nil {
		t.Error("double switch-in accepted")
	}
	// Release while switched in cleans up the canonical mapping.
	if err := s.Release(pe, ref); err != nil {
		t.Fatal(err)
	}
	if pe.Space.Mapped(converse.CanonicalStackBase, vmem.PageSize) {
		t.Error("release leaked the canonical mapping")
	}
}

// TestIsomallocGuardPage: writing just below the stack base hits the
// PROT_NONE guard instead of a neighbouring slab.
func TestIsomallocGuardPage(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	s := Isomalloc{}
	a, err := s.New(pe, 2*vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.New(pe, 2*vmem.PageSize) // adjacent slab above
	if err != nil {
		t.Fatal(err)
	}
	var f *vmem.Fault
	err = pe.Space.Write(a.Base()-8, []byte("overflow"))
	if !errorsAs(err, &f) || f.Reason != "protection" {
		t.Errorf("underflow write: err = %v, want protection fault", err)
	}
	// Writing below b's base likewise faults rather than landing in
	// a's stack.
	if err := pe.Space.Write(b.Base()-8, []byte("overflow")); !errorsAs(err, &f) {
		t.Errorf("neighbour underflow: err = %v, want fault", err)
	}
	// Guard survives migration: extract/install keeps it.
	if err := s.SwitchOut(pe, a, 0); err != nil {
		t.Fatal(err)
	}
	im, err := s.Extract(pe, a)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Install(pe, im)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Space.Write(a2.Base()-8, []byte("x")); !errorsAs(err, &f) {
		t.Errorf("guard lost after migration: err = %v", err)
	}
	// Release reclaims guard and stack together.
	if err := s.Release(pe, a2); err != nil {
		t.Fatal(err)
	}
}

func errorsAs(err error, target **vmem.Fault) bool {
	f, ok := err.(*vmem.Fault)
	if ok {
		*target = f
	}
	return ok
}

func TestMemAliasFramesShareNoCopies(t *testing.T) {
	pe := newPE(t, 0, 1, platform.Opteron())
	s := MemoryAlias{}
	ref, err := s.New(pe, vmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchIn(pe, ref, 0); err != nil {
		t.Fatal(err)
	}
	if err := pe.Space.Write(converse.CanonicalStackBase, []byte("aliased")); err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchOut(pe, ref, 0); err != nil {
		t.Fatal(err)
	}
	// The data lives in the frames even though nothing is mapped.
	ar := ref.(*aliasRef)
	if string(ar.frames[0].Data()[:7]) != "aliased" {
		t.Error("frame does not hold the written data")
	}
}
