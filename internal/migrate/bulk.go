package migrate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"migflow/internal/converse"
	"migflow/internal/pup"
	"migflow/internal/swapglobal"
)

// Record is a migratable flow that is NOT a thread: a compact,
// self-describing state record (an event-mode AMPI continuation, ~180
// bytes) that serializes and reinstates itself. Unlike a thread, a
// record has no stack, heap, or scheduler entry — Extract/Install ARE
// the whole migration, so the bulk pipeline skips eviction, vmem
// image validation, and adoption entirely.
type Record interface {
	// ID names the record (its comm entity id) for error reporting.
	ID() uint64
	// Extract serializes the record's migratable state into p.
	Extract(p *pup.PUPer) error
	// Install overwrites the record's state from a prior Extract's
	// bytes, completing the move.
	Install(data []byte) error
}

// Op is one move in a bulk migration: thread T (or record R, when
// non-nil) leaves Src for Dst. A thread must be Ready or Suspended
// (not Running) — the same contract as MigrateExternal. Exactly one
// of T and R is set.
type Op struct {
	T   *converse.Thread
	R   Record
	Src *converse.PE
	Dst *converse.PE
}

// Result reports one Op's outcome. Bytes is the serialized image size
// (what would cross the network); Suspended records whether the
// thread was waiting (and so keeps waiting on Dst). A failed op
// leaves its thread untouched on the source when the failure happened
// before extraction; failures during install are reported in Err and
// the thread's state is whatever the partial install left (as with a
// real mid-migration node fault).
type Result struct {
	Bytes     int
	Suspended bool
	Err       error
}

// BulkMigrate moves a batch of threads with a two-stage pipeline:
// stage one evicts, extracts and serializes on the source PEs; stage
// two deserializes, installs and re-adopts on the destinations. Each
// stage runs on a bounded worker pool (workers <= 0 selects
// GOMAXPROCS) connected by a buffered channel, so source-side page
// copying for thread k overlaps destination-side page mapping for
// thread k-1 — one LB step issues one batch instead of N serial
// extract→install round trips.
//
// Ops are processed grouped by (source, destination) PE regardless of
// their order in the slice: a real LB emits moves in object order,
// which ping-pongs between PEs; grouping keeps each PE's space and
// scheduler structures hot across consecutive ops. When only one
// worker can run (workers == 1, or a single-processor host), the
// pipeline degenerates to an inline loop over the grouped ops with a
// single reused packer — same semantics, none of the channel
// machinery.
//
// Every packer is pooled and every op gets an independent Result;
// one thread's failure does not abort the rest of the batch.
// Correctness relies on the per-structure locks already guarding
// Scheduler, Space, IsoAllocator and ThreadHeap — ops may touch the
// same PEs concurrently.
func BulkMigrate(ops []Op, layout *swapglobal.Layout, workers int) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}

	// Group ops by (src, dst) for locality; results stay indexed by
	// the caller's op order.
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := ops[order[a]], ops[order[b]]
		if oa.Src.Index != ob.Src.Index {
			return oa.Src.Index < ob.Src.Index
		}
		return oa.Dst.Index < ob.Dst.Index
	})

	// packOne evicts op i and serializes its image into p (which must
	// be empty). It reports whether the thread was suspended; on error
	// it fills results[i] and returns false, false. Record ops skip
	// eviction: a record is not scheduled, and its Extract is
	// internally synchronized against deliveries.
	packOne := func(i int, p *pup.PUPer) (suspended, ok bool) {
		op := ops[i]
		if op.R != nil {
			if err := op.R.Extract(p); err != nil {
				results[i].Err = err
				return false, false
			}
			return false, true
		}
		wasSuspended, err := op.Src.Sched.Evict(op.T)
		if err != nil {
			results[i].Err = err
			return false, false
		}
		im, err := Extract(op.T, op.Src)
		if err != nil {
			results[i].Err = err
			return false, false
		}
		if err := im.Pup(p); err != nil {
			results[i].Err = err
			return false, false
		}
		return wasSuspended, true
	}

	// installOne deserializes data onto op i's destination and hands
	// the thread over, filling results[i] either way.
	installOne := func(i int, data []byte, suspended bool) {
		op := ops[i]
		if op.R != nil {
			if err := op.R.Install(data); err != nil {
				results[i].Err = fmt.Errorf("migrate: bulk install of record %d: %w", op.R.ID(), err)
				return
			}
			results[i].Bytes = len(data)
			return
		}
		var im ThreadImage
		if err := pup.Unpack(data, &im); err != nil {
			results[i].Err = fmt.Errorf("migrate: bulk unpack of thread %d: %w", op.T.ID(), err)
			return
		}
		if err := Install(op.T, op.Dst, &im, layout); err != nil {
			results[i].Err = err
			return
		}
		op.Src.Sched.Disown(op.T)
		if suspended {
			op.Dst.Sched.AdoptSuspended(op.T)
		} else {
			op.Dst.Sched.Adopt(op.T)
		}
		results[i].Bytes = len(data)
		results[i].Suspended = suspended
	}

	if workers == 1 || runtime.GOMAXPROCS(0) == 1 {
		p := pup.AcquirePacker()
		defer p.Release()
		for _, i := range order {
			p.Reset()
			if suspended, ok := packOne(i, p); ok {
				installOne(i, p.PackedBytes(), suspended)
			}
		}
		return results
	}

	type packed struct {
		idx       int
		p         *pup.PUPer // pooled packer handed across; stage two releases it
		suspended bool
	}
	work := make(chan int, len(ops))
	packedCh := make(chan packed, workers)

	var extractWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		extractWG.Add(1)
		go func() {
			defer extractWG.Done()
			for i := range work {
				// The packer crosses the channel with its bytes in place —
				// no wire-buffer copy; the install worker releases it back
				// to the pool.
				p := pup.AcquirePacker()
				suspended, ok := packOne(i, p)
				if !ok {
					p.Release()
					continue
				}
				packedCh <- packed{idx: i, p: p, suspended: suspended}
			}
		}()
	}

	var installWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		installWG.Add(1)
		go func() {
			defer installWG.Done()
			for pk := range packedCh {
				installOne(pk.idx, pk.p.PackedBytes(), pk.suspended)
				pk.p.Release()
			}
		}()
	}

	for _, i := range order {
		work <- i
	}
	close(work)
	extractWG.Wait()
	close(packedCh)
	installWG.Wait()
	return results
}
