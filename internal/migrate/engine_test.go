package migrate

import (
	"fmt"
	"math/rand"
	"testing"

	"migflow/internal/converse"
	"migflow/internal/mem"
	"migflow/internal/platform"
	"migflow/internal/pup"
	"migflow/internal/swapglobal"
	"migflow/internal/vmem"
)

// machine is a minimal multi-PE fixture with migration wired up.
type machine struct {
	pes    []*converse.PE
	layout *swapglobal.Layout
}

func newMachine(t testing.TB, n int, layout *swapglobal.Layout) *machine {
	t.Helper()
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, uint64(n)*4096*vmem.PageSize, n)
	if err != nil {
		t.Fatal(err)
	}
	m := &machine{layout: layout}
	for i := 0; i < n; i++ {
		pe, err := converse.NewPE(converse.PEConfig{
			Index: i, Profile: platform.Opteron(), IsoRegion: region, Globals: layout,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.pes = append(m.pes, pe)
	}
	for _, pe := range m.pes {
		pe := pe
		pe.Sched.SetMigrateHandler(func(th *converse.Thread, dest int) {
			if _, err := MigrateNow(th, pe, m.pes[dest], m.layout); err != nil {
				t.Errorf("migration of thread %d to PE %d failed: %v", th.ID(), dest, err)
			}
		})
	}
	return m
}

// runAll drives every PE's scheduler round-robin until all are idle —
// a deterministic single-goroutine stand-in for N scheduler loops.
func (m *machine) runAll() {
	for {
		progress := false
		for _, pe := range m.pes {
			if pe.Sched.ReadyLen() > 0 {
				pe.Sched.RunUntilIdle()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// TestFullThreadMigration is the end-to-end §3.4 scenario for every
// technique: a thread fills its stack, heap and privatized global
// with known values, migrates twice (0→1→2), and verifies everything
// — including a heap pointer stored *in* the stack — after each hop.
func TestFullThreadMigration(t *testing.T) {
	for _, strat := range All() {
		t.Run(strat.Name(), func(t *testing.T) {
			layout := swapglobal.NewLayout()
			layout.Declare("g", 8)
			m := newMachine(t, 3, layout)
			var fail string
			checks := 0
			th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{
				Strategy:  strat,
				StackSize: 4 * vmem.PageSize,
				Globals:   layout,
			}, func(c *converse.Ctx) {
				// Stack frame with a known value.
				frame, err := c.PushFrame(64)
				if err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteUint64(frame, 0x5AFE); err != nil {
					fail = err.Error()
					return
				}
				// Heap block, pointer to it stored in the stack.
				blk, err := c.Malloc(1000)
				if err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteUint64(blk, 0xB10C); err != nil {
					fail = err.Error()
					return
				}
				if err := c.Space().WriteAddr(frame.Add(8), blk); err != nil {
					fail = err.Error()
					return
				}
				// Privatized global.
				if err := c.GlobalsGOT().StoreUint64("g", 0x6B0B); err != nil {
					fail = err.Error()
					return
				}

				verify := func(where string) bool {
					if v, err := c.Space().ReadUint64(frame); err != nil || v != 0x5AFE {
						fail = fmt.Sprintf("%s: stack = %#x/%v", where, v, err)
						return false
					}
					p, err := c.Space().ReadAddr(frame.Add(8))
					if err != nil {
						fail = fmt.Sprintf("%s: pointer load: %v", where, err)
						return false
					}
					if v, err := c.Space().ReadUint64(p); err != nil || v != 0xB10C {
						fail = fmt.Sprintf("%s: heap via stack pointer = %#x/%v", where, v, err)
						return false
					}
					if v, err := c.GlobalsGOT().LoadUint64("g"); err != nil || v != 0x6B0B {
						fail = fmt.Sprintf("%s: global = %#x/%v", where, v, err)
						return false
					}
					checks++
					return true
				}

				if !verify("before migration") {
					return
				}
				c.MigrateTo(1)
				if c.PE().Index != 1 {
					fail = fmt.Sprintf("after first hop on PE %d, want 1", c.PE().Index)
					return
				}
				if !verify("on PE 1") {
					return
				}
				// Mutate everything, hop again.
				if err := c.Space().WriteUint64(frame, 0x5AFE2); err != nil {
					fail = err.Error()
					return
				}
				if err := c.GlobalsGOT().StoreUint64("g", 0x6B0B2); err != nil {
					fail = err.Error()
					return
				}
				c.MigrateTo(2)
				if v, _ := c.Space().ReadUint64(frame); v != 0x5AFE2 {
					fail = fmt.Sprintf("on PE 2: mutated stack = %#x", v)
					return
				}
				if v, _ := c.GlobalsGOT().LoadUint64("g"); v != 0x6B0B2 {
					fail = fmt.Sprintf("on PE 2: mutated global = %#x", v)
					return
				}
				// Post-migration allocation still works.
				if _, err := c.Malloc(64); err != nil {
					fail = fmt.Sprintf("post-migration malloc: %v", err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			m.pes[0].Sched.Start(th)
			m.runAll()
			if fail != "" {
				t.Fatal(fail)
			}
			if checks != 2 {
				t.Errorf("verify ran %d times, want 2", checks)
			}
			if th.State() != converse.Exited {
				t.Errorf("thread state = %s", th.State())
			}
			// Ownership moved: PE 0 and 1 have no live threads; PE 2
			// reaped the exited thread.
			for i, pe := range m.pes {
				if pe.Sched.Live() != 0 {
					t.Errorf("PE %d Live = %d", i, pe.Sched.Live())
				}
			}
		})
	}
}

func TestMigrateToSelfIsNoop(t *testing.T) {
	m := newMachine(t, 2, nil)
	hops := 0
	th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{Strategy: Isomalloc{}}, func(c *converse.Ctx) {
		c.MigrateTo(0) // same PE: must not migrate
		hops = c.PE().Index
	})
	if err != nil {
		t.Fatal(err)
	}
	m.pes[0].Sched.Start(th)
	m.runAll()
	if hops != 0 {
		t.Errorf("thread ended on PE %d", hops)
	}
}

func TestExtractRequiresMigratingState(t *testing.T) {
	m := newMachine(t, 2, nil)
	th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{Strategy: Isomalloc{}}, func(c *converse.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(th, m.pes[0]); err == nil {
		t.Error("Extract of a non-migrating thread accepted")
	}
}

func TestThreadImagePupRoundTrip(t *testing.T) {
	im := &ThreadImage{
		ID: 7, Prio: -2, SP: 0x1000_0100,
		Stack: converse.StackImage{Strategy: NameIsomalloc, Base: 0x40000000, Size: 4096,
			Runs: []vmem.Run{{Addr: 0x40000000, Data: make([]byte, 4096)}}},
		Heap: mem.ThreadHeapImage{ArenaPages: 4, Arenas: []mem.HeapImage{{
			Start: 0x50000000, Length: 16384,
			Blocks: []mem.Block{{Addr: 0x50000000, Size: 64}},
			Runs:   []vmem.Run{{Addr: 0x50000000, Data: make([]byte, 4096)}},
		}}},
		HasGlobals: true,
		GlobalVars: []uint64{0x50000000},
	}
	im.Stack.Runs[0].Data[0] = 0xEE
	data, err := pup.Pack(im)
	if err != nil {
		t.Fatal(err)
	}
	var out ThreadImage
	if err := pup.Unpack(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Prio != -2 || out.SP != 0x1000_0100 {
		t.Errorf("metadata mangled: %+v", out)
	}
	if out.Stack.Runs[0].Data[0] != 0xEE || out.Stack.Strategy != NameIsomalloc {
		t.Error("stack image mangled")
	}
	if len(out.Heap.Arenas) != 1 || out.Heap.Arenas[0].Blocks[0].Size != 64 {
		t.Error("heap image mangled")
	}
	if !out.HasGlobals || out.GlobalVars[0] != 0x50000000 {
		t.Error("globals mangled")
	}
}

// TestMigrationFuzzer migrates a thread at random points between
// random PEs while it builds up stack frames and heap blocks with a
// seeded PRNG, continuously checking a full checksum of its state.
func TestMigrationFuzzer(t *testing.T) {
	for _, strat := range All() {
		for seed := int64(1); seed <= 3; seed++ {
			strat, seed := strat, seed
			t.Run(fmt.Sprintf("%s/seed%d", strat.Name(), seed), func(t *testing.T) {
				layout := swapglobal.NewLayout()
				layout.Declare("acc", 8)
				m := newMachine(t, 4, layout)
				rng := rand.New(rand.NewSource(seed))
				var fail string
				th, err := m.pes[0].Sched.CthCreate(converse.ThreadOptions{
					Strategy: strat, StackSize: 8 * vmem.PageSize, Globals: layout,
				}, func(c *converse.Ctx) {
					type cell struct {
						addr vmem.Addr
						val  uint64
					}
					var cells []cell
					write := func(a vmem.Addr, v uint64) bool {
						if err := c.Space().WriteUint64(a, v); err != nil {
							fail = err.Error()
							return false
						}
						cells = append(cells, cell{a, v})
						return true
					}
					for step := 0; step < 60; step++ {
						switch rng.Intn(4) {
						case 0: // push a frame and fill it
							f, err := c.PushFrame(uint64(rng.Intn(200) + 16))
							if err != nil {
								continue // stack full: fine
							}
							if !write(f, rng.Uint64()) {
								return
							}
						case 1: // heap block
							b, err := c.Malloc(uint64(rng.Intn(2000) + 8))
							if err != nil {
								fail = err.Error()
								return
							}
							if !write(b, rng.Uint64()) {
								return
							}
						case 2: // global accumulate
							v, err := c.GlobalsGOT().LoadUint64("acc")
							if err != nil {
								fail = err.Error()
								return
							}
							if err := c.GlobalsGOT().StoreUint64("acc", v+1); err != nil {
								fail = err.Error()
								return
							}
						case 3: // migrate somewhere
							c.MigrateTo(rng.Intn(4))
						}
						// Verify every recorded cell, every step.
						for _, cl := range cells {
							v, err := c.Space().ReadUint64(cl.addr)
							if err != nil {
								fail = fmt.Sprintf("step %d: read %s: %v", step, cl.addr, err)
								return
							}
							if v != cl.val {
								fail = fmt.Sprintf("step %d: cell %s = %#x, want %#x", step, cl.addr, v, cl.val)
								return
							}
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				m.pes[0].Sched.Start(th)
				m.runAll()
				if fail != "" {
					t.Fatal(fail)
				}
			})
		}
	}
}
