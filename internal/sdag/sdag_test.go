package sdag

import (
	"fmt"
	"testing"
)

func TestAtomicSeq(t *testing.T) {
	var order []int
	ex := Run(Seq(
		Atomic(func() { order = append(order, 1) }),
		Atomic(func() { order = append(order, 2) }),
		Atomic(func() { order = append(order, 3) }),
	))
	if !ex.Finished() {
		t.Fatal("pure-atomic program should finish synchronously")
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("order = %v", order)
	}
}

func TestWhenBlocksUntilDelivery(t *testing.T) {
	var got Msg
	ex := Run(When(7, func(m Msg) { got = m }))
	if ex.Finished() {
		t.Fatal("When finished without a message")
	}
	if ex.PendingWhens() != 1 {
		t.Fatalf("PendingWhens = %d", ex.PendingWhens())
	}
	ex.Deliver(3, "wrong tag") // buffered, not matched
	if ex.Finished() {
		t.Fatal("wrong tag finished the When")
	}
	if ex.BufferedMessages() != 1 {
		t.Errorf("BufferedMessages = %d", ex.BufferedMessages())
	}
	ex.Deliver(7, "payload")
	if !ex.Finished() {
		t.Fatal("not finished after matching delivery")
	}
	if got != "payload" {
		t.Errorf("body got %v", got)
	}
}

func TestEarlyMessageBuffered(t *testing.T) {
	var got Msg
	prog := Seq(
		Atomic(func() {}),
		When(1, func(m Msg) { got = m }),
	)
	ex := Run(prog)
	// With the runtime already past the atomic, deliver then re-check.
	ex.Deliver(1, 42)
	if !ex.Finished() || got != 42 {
		t.Errorf("finished=%v got=%v", ex.Finished(), got)
	}
	// And the true early case: message delivered before Run reaches
	// the When — achieved with a When nested after another When.
	var second Msg
	ex2 := Run(Seq(
		When(1, func(Msg) {}),
		When(2, func(m Msg) { second = m }),
	))
	ex2.Deliver(2, "early") // program is still blocked on tag 1
	if ex2.Finished() {
		t.Fatal("finished out of order")
	}
	ex2.Deliver(1, "first")
	if !ex2.Finished() || second != "early" {
		t.Errorf("finished=%v second=%v", ex2.Finished(), second)
	}
}

func TestOverlapAnyOrder(t *testing.T) {
	for _, order := range [][2]int{{1, 2}, {2, 1}} {
		var seen []int
		ex := Run(Seq(
			Overlap(
				When(1, func(Msg) { seen = append(seen, 1) }),
				When(2, func(Msg) { seen = append(seen, 2) }),
			),
			Atomic(func() { seen = append(seen, 99) }),
		))
		ex.Deliver(order[0], nil)
		if ex.Finished() {
			t.Fatal("overlap finished after one of two")
		}
		ex.Deliver(order[1], nil)
		if !ex.Finished() {
			t.Fatal("overlap not finished after both")
		}
		if seen[2] != 99 {
			t.Errorf("continuation ran early: %v", seen)
		}
	}
}

func TestEmptyOverlap(t *testing.T) {
	if !Run(Overlap()).Finished() {
		t.Error("empty overlap should finish immediately")
	}
}

func TestForLoop(t *testing.T) {
	var is []int
	ex := Run(For(4, func(i int) Stmt {
		return Atomic(func() { is = append(is, i) })
	}))
	if !ex.Finished() || fmt.Sprint(is) != "[0 1 2 3]" {
		t.Errorf("finished=%v is=%v", ex.Finished(), is)
	}
}

func TestForDeepDoesNotOverflowStack(t *testing.T) {
	n := 0
	ex := Run(For(200000, func(int) Stmt { return Atomic(func() { n++ }) }))
	if !ex.Finished() || n != 200000 {
		t.Errorf("finished=%v n=%d", ex.Finished(), n)
	}
}

func TestWhile(t *testing.T) {
	i := 0
	ex := Run(While(func() bool { return i < 5 }, func() Stmt {
		return Atomic(func() { i++ })
	}))
	if !ex.Finished() || i != 5 {
		t.Errorf("finished=%v i=%d", ex.Finished(), i)
	}
}

// TestFigure1Stencil runs the paper's exact example: MAX_ITER
// iterations of send / overlap{when left, when right} / doWork, with
// messages arriving in varying orders, including an iteration where
// both strips arrive "early" (buffered during doWork of the previous
// iteration is impossible here, but right-before-left order is).
func TestFigure1Stencil(t *testing.T) {
	const maxIter = 3
	const (
		tagLeft  = 1
		tagRight = 2
	)
	var log []string
	lifeCycle := For(maxIter, func(i int) Stmt {
		return Seq(
			Atomic(func() { log = append(log, fmt.Sprintf("send%d", i)) }),
			Overlap(
				When(tagLeft, func(m Msg) { log = append(log, fmt.Sprintf("left%d", i)) }),
				When(tagRight, func(m Msg) { log = append(log, fmt.Sprintf("right%d", i)) }),
			),
			Atomic(func() { log = append(log, fmt.Sprintf("work%d", i)) }),
		)
	})
	ex := Run(lifeCycle)
	orders := [][2]int{{tagLeft, tagRight}, {tagRight, tagLeft}, {tagRight, tagLeft}}
	for i := 0; i < maxIter; i++ {
		if ex.Finished() {
			t.Fatalf("finished before iteration %d", i)
		}
		ex.Deliver(orders[i][0], nil)
		ex.Deliver(orders[i][1], nil)
	}
	if !ex.Finished() {
		t.Fatalf("not finished: %s", ex)
	}
	want := "[send0 left0 right0 work0 send1 right1 left1 work1 send2 right2 left2 work2]"
	if fmt.Sprint(log) != want {
		t.Errorf("log = %v\nwant %s", log, want)
	}
}

// TestStencilMessagesForNextIterationBuffered delivers both strips of
// iteration 1 while iteration 0 is still waiting: they must buffer
// and satisfy iteration 1's whens later (in-order tags).
func TestStencilMessagesBufferAcrossIterations(t *testing.T) {
	count := 0
	prog := For(2, func(i int) Stmt {
		return Overlap(
			When(1, func(Msg) { count++ }),
			When(2, func(Msg) { count++ }),
		)
	})
	ex := Run(prog)
	// All four messages up front, scrambled.
	ex.Deliver(2, nil)
	ex.Deliver(2, nil)
	ex.Deliver(1, nil)
	ex.Deliver(1, nil)
	if !ex.Finished() || count != 4 {
		t.Errorf("finished=%v count=%d", ex.Finished(), count)
	}
}

func TestWhenRefMatching(t *testing.T) {
	var got []uint64
	ex := Run(Seq(
		WhenRef(1, 7, func(m Msg) { got = append(got, 7) }),
		WhenRef(1, 8, func(m Msg) { got = append(got, 8) }),
	))
	// Wrong ref buffers; right ref fires.
	ex.DeliverRef(1, 8, nil)
	if len(got) != 0 {
		t.Fatalf("ref 8 fired the ref-7 when: %v", got)
	}
	if ex.BufferedMessages() != 1 {
		t.Fatalf("buffered = %d", ex.BufferedMessages())
	}
	ex.DeliverRef(1, 7, nil)
	// After ref 7 fires, the second when finds the buffered ref 8.
	if !ex.Finished() || fmt.Sprint(got) != "[7 8]" {
		t.Errorf("finished=%v got=%v", ex.Finished(), got)
	}
}

func TestWhenUnfilteredMatchesAnyRef(t *testing.T) {
	fired := false
	ex := Run(When(1, func(Msg) { fired = true }))
	ex.DeliverRef(1, 99, nil)
	if !fired || !ex.Finished() {
		t.Error("unfiltered When should match any ref")
	}
}

// TestIterationRefnums is the idiom WhenRef exists for: two
// overlapping iterations' ghost messages kept apart by refnum even
// when they arrive out of order.
func TestIterationRefnums(t *testing.T) {
	var order []uint64
	ex := Run(For(2, func(i int) Stmt {
		iter := uint64(i)
		return WhenRef(1, iter, func(Msg) { order = append(order, iter) })
	}))
	// Iteration 1's message arrives first: must buffer, not satisfy
	// iteration 0's when.
	ex.DeliverRef(1, 1, nil)
	if len(order) != 0 {
		t.Fatalf("iteration 1 message consumed early: %v", order)
	}
	ex.DeliverRef(1, 0, nil)
	if !ex.Finished() || fmt.Sprint(order) != "[0 1]" {
		t.Errorf("finished=%v order=%v", ex.Finished(), order)
	}
}

func TestCaseFirstWins(t *testing.T) {
	winner := -1
	ex := Run(Seq(
		Case(
			When(1, func(Msg) { winner = 1 }),
			When(2, func(Msg) { winner = 2 }),
		),
		Atomic(func() {}),
	))
	if ex.PendingWhens() != 2 {
		t.Fatalf("pending = %d", ex.PendingWhens())
	}
	ex.Deliver(2, nil)
	if !ex.Finished() || winner != 2 {
		t.Fatalf("finished=%v winner=%d", ex.Finished(), winner)
	}
	// The losing alternative is cancelled: a later tag-1 message
	// simply buffers.
	ex.Deliver(1, nil)
	if ex.BufferedMessages() != 1 {
		t.Errorf("loser consumed a message after cancellation")
	}
	if winner != 2 {
		t.Errorf("loser fired late: winner=%d", winner)
	}
}

func TestCaseBufferedAlternative(t *testing.T) {
	winner := -1
	prog := Seq(
		When(9, func(Msg) {}),
		Case(
			When(1, func(Msg) { winner = 1 }),
			When(2, func(Msg) { winner = 2 }),
		),
	)
	ex := Run(prog)
	ex.Deliver(1, nil) // buffered: Case not reached yet
	ex.Deliver(9, nil) // now the Case starts and finds tag 1 buffered
	if !ex.Finished() || winner != 1 {
		t.Errorf("finished=%v winner=%d", ex.Finished(), winner)
	}
}

func TestCaseValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty Case", func() { Case() })
	mustPanic("non-When child", func() { Case(Atomic(func() {})) })
}

// TestMidQueueTakeKeepsArrivalOrder: consuming a ref-matched message
// from the middle of a tag's buffer must leave the remaining messages
// in arrival order.
func TestMidQueueTakeKeepsArrivalOrder(t *testing.T) {
	var got []uint64
	rec := func(m Msg) { got = append(got, m.(uint64)) }
	ex := Run(Seq(
		When(0, func(Msg) {}),
		WhenRef(1, 2, rec),
		When(1, rec),
		When(1, rec),
	))
	ex.DeliverRef(1, 1, uint64(1))
	ex.DeliverRef(1, 2, uint64(2))
	ex.DeliverRef(1, 3, uint64(3))
	if ex.BufferedMessages() != 3 {
		t.Fatalf("buffered = %d", ex.BufferedMessages())
	}
	ex.Deliver(0, nil)
	if !ex.Finished() || fmt.Sprint(got) != "[2 1 3]" {
		t.Errorf("finished=%v got=%v, want [2 1 3]", ex.Finished(), got)
	}
}

// TestCancelledWaitersCompacted: a delivery must fire the live waiter
// behind cancelled Case losers on the same tag, and the cancelled
// entries must not count as pending.
func TestCancelledWaitersCompacted(t *testing.T) {
	winner := ""
	ex := Run(Seq(
		Case(
			When(1, func(Msg) { winner = "a" }),
			When(2, func(Msg) { winner = "b" }),
			When(3, func(Msg) { winner = "c" }),
		),
		When(2, func(Msg) { winner = "d" }),
	))
	ex.Deliver(1, nil) // fires a; cancels the tag-2 and tag-3 losers
	if winner != "a" {
		t.Fatalf("winner = %q", winner)
	}
	if ex.PendingWhens() != 1 {
		t.Fatalf("PendingWhens = %d, want 1 (cancelled losers must not count)", ex.PendingWhens())
	}
	ex.Deliver(2, nil) // must reach the live waiter past the cancelled one
	if !ex.Finished() || winner != "d" {
		t.Errorf("finished=%v winner=%q", ex.Finished(), winner)
	}
}

func TestNopAndString(t *testing.T) {
	ex := Run(Nop())
	if !ex.Finished() {
		t.Error("Nop did not finish")
	}
	if ex.String() == "" {
		t.Error("empty String")
	}
}
