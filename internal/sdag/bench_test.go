package sdag

import "testing"

// BenchmarkDeliver exercises the executor's hot paths: the trampoline
// queue (drain), waiter installation/removal (takeWaiter), and the
// buffered-message queue (install). Sub-benchmarks:
//
//   - deepFor: a deep For loop of Whens driven one Deliver at a time —
//     every iteration schedules continuations through drain and
//     installs/removes one waiter.
//   - bufferedBacklog: all messages delivered up front while the
//     program is blocked, so every When of the For loop consumes from
//     a long buffered backlog (the chare-mailbox pattern).
//   - caseChurn: a For of Cases — each iteration installs several
//     alternatives and cancels the losers, so takeWaiter must skip
//     and compact cancelled waiters on later deliveries.
//   - refBacklog: ref-filtered Whens consuming a buffered backlog
//     delivered in reverse ref order (mid-queue removal).
func BenchmarkDeliver(b *testing.B) {
	b.Run("deepFor", func(b *testing.B) {
		ex := Run(For(b.N, func(int) Stmt {
			return When(1, func(Msg) {})
		}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Deliver(1, nil)
		}
		if !ex.Finished() {
			b.Fatal("not finished")
		}
	})
	b.Run("bufferedBacklog", func(b *testing.B) {
		ex := Run(Seq(
			When(0, func(Msg) {}),
			For(b.N, func(int) Stmt { return When(1, func(Msg) {}) }),
		))
		for i := 0; i < b.N; i++ {
			ex.Deliver(1, nil) // buffers: program is blocked on tag 0
		}
		b.ResetTimer()
		ex.Deliver(0, nil) // unblocks: the For drains the whole backlog
		b.StopTimer()
		if !ex.Finished() {
			b.Fatal("not finished")
		}
	})
	b.Run("caseChurn", func(b *testing.B) {
		const alts = 8
		ex := Run(For(b.N, func(int) Stmt {
			ws := make([]Stmt, alts)
			for t := 0; t < alts; t++ {
				ws[t] = When(t+1, func(Msg) {})
			}
			return Case(ws...)
		}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Fire a different alternative each iteration so cancelled
			// siblings pile up on every tag's waiting list.
			ex.Deliver(i%alts+1, nil)
		}
		if !ex.Finished() {
			b.Fatal("not finished")
		}
	})
	b.Run("refBacklog", func(b *testing.B) {
		const window = 256
		ex := Run(Seq(
			When(0, func(Msg) {}),
			For(b.N, func(i int) Stmt {
				return WhenRef(1, uint64(i%window), func(Msg) {})
			}),
		))
		// Buffer each window of refs in reverse order so every WhenRef
		// matches toward the back of the live buffered region.
		for base := 0; base < b.N; base += window {
			hi := base + window
			if hi > b.N {
				hi = b.N
			}
			for i := hi - 1; i >= base; i-- {
				ex.DeliverRef(1, uint64(i%window), nil)
			}
		}
		b.ResetTimer()
		ex.Deliver(0, nil)
		b.StopTimer()
		if !ex.Finished() {
			b.Fatal("not finished")
		}
	})
}
