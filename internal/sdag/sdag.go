// Package sdag implements Structured Dagger (§2.4.2, Figure 1): a
// coordination language expressing the life cycle of a message-driven
// object with sequential (Seq), message-triggered (When), unordered
// (Overlap), iterative (For) and plain-code (Atomic) constructs. The
// combinators compile to an event-driven finite-state machine: no
// thread, no stack — suspension is a return to the scheduler, and an
// incoming message resumes exactly the waiting construct.
//
// The package reproduces the paper's example program:
//
//	for (i=0; i<MAX_ITER; i++) {
//	  atomic {sendStripToLeftAndRight();}
//	  overlap {
//	    when getStripFromLeft(msg)  { atomic { copyStripFromLeft(msg); } }
//	    when getStripFromRight(msg) { atomic { copyStripFromRight(msg); } }
//	  }
//	  atomic { doWork(); }
//	}
//
// as sdag.For(MAX_ITER, func(i) Stmt { ... }) — see the stencil
// example and tests.
package sdag

import "fmt"

// Msg is an incoming message payload.
type Msg any

// Stmt is one SDAG construct. Statements are immutable programs; an
// Executor instantiates and runs them.
type Stmt interface {
	// start begins the statement; done must be called exactly once
	// when it completes. Implementations must not block.
	start(ex *Executor, done func())
}

// Tramp is a reusable continuation trampoline: Schedule enqueues a
// continuation, Drain runs enqueued continuations (and whatever they
// enqueue) to quiescence from a bounded stack. Deeply nested
// event-driven control flow — SDAG For loops, AMPI continuation
// programs — becomes iteration instead of recursion. The queue is
// walked with a head index and truncated once empty, so one backing
// array is reused across the whole program instead of re-slicing (and
// eventually re-allocating) on every continuation. A Tramp is not
// safe for concurrent use; each executing flow (or each owning PE)
// gets its own.
type Tramp struct {
	work     []func()
	head     int // next work entry to run; the buffer is reused across drains
	draining bool
}

// Schedule enqueues fn to run in the current (or next) Drain.
func (t *Tramp) Schedule(fn func()) { t.work = append(t.work, fn) }

// Drain runs queued continuations to quiescence. Re-entrant calls
// (a continuation delivering a message that schedules more work) are
// no-ops: the outermost Drain picks the new work up.
func (t *Tramp) Drain() {
	if t.draining {
		return
	}
	t.draining = true
	for t.head < len(t.work) {
		fn := t.work[t.head]
		t.work[t.head] = nil // release the closure
		t.head++
		fn()
	}
	t.work, t.head = t.work[:0], 0
	t.draining = false
}

// Executor runs one SDAG program against a mailbox of tagged
// messages. Deliver may be called at any time; messages with no
// waiting When are buffered in arrival order, exactly like a chare's
// message queue.
type Executor struct {
	waiting  map[int][]*waiter
	buffered map[int]*msgQueue
	tramp    Tramp // trampoline queue: avoids unbounded recursion
	finished bool
}

type waiter struct {
	fn        func(Msg)
	done      func()
	ref       uint64 // reference-number filter (hasRef)
	hasRef    bool
	cancelled bool // a sibling in a Case fired first
}

// matches reports whether the waiter accepts a message with the given
// reference number.
func (w *waiter) matches(ref uint64) bool {
	return !w.cancelled && (!w.hasRef || w.ref == ref)
}

type refMsg struct {
	ref uint64
	m   Msg
}

// msgQueue is one tag's buffered messages: a slice consumed from a
// head index so the common oldest-first take is O(1) and the backing
// array's capacity is reused, instead of shifting the whole suffix
// down on every consumption.
type msgQueue struct {
	head int
	ms   []refMsg
}

func (q *msgQueue) len() int { return len(q.ms) - q.head }

func (q *msgQueue) push(m refMsg) { q.ms = append(q.ms, m) }

// takeMatch removes and returns the oldest buffered message accepted
// by the (hasRef, ref) filter. A mid-queue hit shifts the (typically
// empty) live prefix up by one rather than the whole suffix down.
func (q *msgQueue) takeMatch(hasRef bool, ref uint64) (Msg, bool) {
	for i := q.head; i < len(q.ms); i++ {
		if !hasRef || q.ms[i].ref == ref {
			m := q.ms[i].m
			copy(q.ms[q.head+1:i+1], q.ms[q.head:i])
			q.ms[q.head] = refMsg{}
			q.head++
			if q.head == len(q.ms) {
				q.ms, q.head = q.ms[:0], 0
			}
			return m, true
		}
	}
	return nil, false
}

// Run starts program s and returns its executor. The program runs
// until it needs a message; drive it with Deliver and observe
// Finished.
func Run(s Stmt) *Executor {
	ex := &Executor{
		waiting:  make(map[int][]*waiter),
		buffered: make(map[int]*msgQueue),
	}
	ex.schedule(func() { s.start(ex, func() { ex.finished = true }) })
	ex.drain()
	return ex
}

// Finished reports whether the whole program has completed.
func (ex *Executor) Finished() bool { return ex.finished }

// PendingWhens returns how many When constructs are waiting.
func (ex *Executor) PendingWhens() int {
	n := 0
	for _, ws := range ex.waiting {
		for _, w := range ws {
			if !w.cancelled {
				n++
			}
		}
	}
	return n
}

// BufferedMessages returns how many delivered messages await a When.
func (ex *Executor) BufferedMessages() int {
	n := 0
	for _, q := range ex.buffered {
		n += q.len()
	}
	return n
}

// Deliver hands a tagged message to the program: it resumes the
// oldest matching When waiting on the tag, or is buffered.
func (ex *Executor) Deliver(tag int, m Msg) { ex.DeliverRef(tag, 0, m) }

// DeliverRef delivers a message carrying a reference number, matching
// SDAG's when entry[ref](...) constructs: a When with a reference
// filter fires only on an equal ref; an unfiltered When fires on any.
func (ex *Executor) DeliverRef(tag int, ref uint64, m Msg) {
	if w := ex.takeWaiter(tag, ref); w != nil {
		ex.schedule(func() {
			w.fn(m)
			w.done()
		})
	} else {
		q := ex.buffered[tag]
		if q == nil {
			q = &msgQueue{}
			ex.buffered[tag] = q
		}
		q.push(refMsg{ref: ref, m: m})
	}
	ex.drain()
}

// takeWaiter removes and returns the oldest live waiter on tag that
// accepts ref. One compacting pass drops every cancelled waiter and
// closes the gap in place — no repeated suffix shifts.
func (ex *Executor) takeWaiter(tag int, ref uint64) *waiter {
	ws := ex.waiting[tag]
	if len(ws) == 0 {
		return nil
	}
	var found *waiter
	kept := ws[:0]
	for _, w := range ws {
		if w.cancelled {
			continue
		}
		if found == nil && w.matches(ref) {
			found = w
			continue
		}
		kept = append(kept, w)
	}
	// Zero the tail so dropped waiters don't pin their closures.
	for i := len(kept); i < len(ws); i++ {
		ws[i] = nil
	}
	ex.waiting[tag] = kept
	return found
}

func (ex *Executor) schedule(fn func()) { ex.tramp.Schedule(fn) }

// drain runs queued continuations to quiescence (a trampoline: deep
// For loops become iteration, not recursion).
func (ex *Executor) drain() { ex.tramp.Drain() }

// ---------------------------------------------------------------
// Constructs

type atomicStmt struct{ fn func() }

// Atomic wraps sequential code: it runs to completion without
// suspending (the paper's atomic construct encapsulating plain C++).
func Atomic(fn func()) Stmt { return atomicStmt{fn} }

func (a atomicStmt) start(ex *Executor, done func()) {
	a.fn()
	done()
}

type seqStmt struct{ stmts []Stmt }

// Seq runs statements in order, each starting when its predecessor
// completes.
func Seq(stmts ...Stmt) Stmt { return seqStmt{stmts} }

func (s seqStmt) start(ex *Executor, done func()) {
	var run func(i int)
	run = func(i int) {
		if i >= len(s.stmts) {
			done()
			return
		}
		s.stmts[i].start(ex, func() {
			ex.schedule(func() { run(i + 1) })
		})
	}
	run(0)
}

type whenStmt struct {
	tag    int
	ref    uint64
	hasRef bool
	body   func(Msg)
}

// When suspends until a message with the given tag arrives, then runs
// body with it. If a matching message is already buffered it fires
// immediately.
func When(tag int, body func(Msg)) Stmt { return whenStmt{tag: tag, body: body} }

// WhenRef is When with a reference number: only a message delivered
// with DeliverRef(tag, ref, ...) and an equal ref fires it — SDAG's
// when entry[ref](...) construct, used to keep iterations of
// overlapping exchanges apart.
func WhenRef(tag int, ref uint64, body func(Msg)) Stmt {
	return whenStmt{tag: tag, ref: ref, hasRef: true, body: body}
}

// install registers the when (consuming a buffered message if one
// matches) and returns the waiter, or nil if it fired from the
// buffer.
func (w whenStmt) install(ex *Executor, done func()) *waiter {
	if q := ex.buffered[w.tag]; q != nil {
		if m, ok := q.takeMatch(w.hasRef, w.ref); ok {
			ex.schedule(func() {
				w.body(m)
				done()
			})
			return nil
		}
	}
	wt := &waiter{fn: w.body, done: done, ref: w.ref, hasRef: w.hasRef}
	ex.waiting[w.tag] = append(ex.waiting[w.tag], wt)
	return wt
}

func (w whenStmt) start(ex *Executor, done func()) {
	w.install(ex, done)
}

type overlapStmt struct{ stmts []Stmt }

// Overlap runs its children concurrently in any completion order and
// finishes when all have finished — "the two events ... can occur and
// be processed in any order".
func Overlap(stmts ...Stmt) Stmt { return overlapStmt{stmts} }

func (o overlapStmt) start(ex *Executor, done func()) {
	if len(o.stmts) == 0 {
		done()
		return
	}
	remaining := len(o.stmts)
	child := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for _, s := range o.stmts {
		s := s
		ex.schedule(func() { s.start(ex, child) })
	}
}

type forStmt struct {
	n    int
	body func(i int) Stmt
}

// For runs body(0) ... body(n-1) in sequence — the outer iteration
// loop of Figure 1.
func For(n int, body func(i int) Stmt) Stmt { return forStmt{n, body} }

func (f forStmt) start(ex *Executor, done func()) {
	var iter func(i int)
	iter = func(i int) {
		if i >= f.n {
			done()
			return
		}
		f.body(i).start(ex, func() {
			ex.schedule(func() { iter(i + 1) })
		})
	}
	iter(0)
}

type whileStmt struct {
	cond func() bool
	body func() Stmt
}

// While runs body() repeatedly while cond() holds (checked before
// each iteration).
func While(cond func() bool, body func() Stmt) Stmt { return whileStmt{cond, body} }

func (w whileStmt) start(ex *Executor, done func()) {
	var iter func()
	iter = func() {
		if !w.cond() {
			done()
			return
		}
		w.body().start(ex, func() {
			ex.schedule(iter)
		})
	}
	iter()
}

type caseStmt struct{ whens []whenStmt }

// Case waits on several When alternatives and completes when the
// FIRST one fires; the others are cancelled (their messages, should
// they arrive later, buffer for future whens). All children must be
// When or WhenRef constructs; anything else panics at build time.
func Case(alternatives ...Stmt) Stmt {
	c := caseStmt{}
	for _, s := range alternatives {
		w, ok := s.(whenStmt)
		if !ok {
			panic(fmt.Sprintf("sdag: Case alternatives must be When/WhenRef, got %T", s))
		}
		c.whens = append(c.whens, w)
	}
	if len(c.whens) == 0 {
		panic("sdag: empty Case")
	}
	return c
}

func (c caseStmt) start(ex *Executor, done func()) {
	fired := false
	var installed []*waiter
	fire := func(body func(Msg), m Msg) {
		if fired {
			return
		}
		fired = true
		for _, w := range installed {
			if w != nil {
				w.cancelled = true
			}
		}
		body(m)
		done()
	}
	for _, w := range c.whens {
		w := w
		wrapped := whenStmt{tag: w.tag, ref: w.ref, hasRef: w.hasRef, body: func(m Msg) {
			fire(w.body, m)
		}}
		wt := wrapped.install(ex, func() {})
		installed = append(installed, wt)
		if wt == nil {
			// Fired synchronously from the buffer: the scheduled
			// closure will run fire(); stop installing alternatives.
			break
		}
	}
}

// Nop is an empty statement.
func Nop() Stmt { return Atomic(func() {}) }

// String diagnostics for the executor.
func (ex *Executor) String() string {
	return fmt.Sprintf("sdag.Executor{finished=%v whens=%d buffered=%d}", ex.finished, ex.PendingWhens(), ex.BufferedMessages())
}
