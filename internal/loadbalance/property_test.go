package loadbalance

import (
	"math/rand"
	"testing"
)

// randomItems draws a load database with deliberate tie pressure: half
// the trials draw loads from a small integer set so equal loads (the
// heap/linear tie-break hazard) occur constantly.
func randomItems(rng *rand.Rand, n, numPEs int) []Item {
	items := make([]Item, n)
	ties := rng.Intn(2) == 0
	for i := range items {
		var load float64
		if ties {
			load = float64(rng.Intn(4)) * 100
		} else {
			load = rng.Float64() * 1000
		}
		items[i] = Item{ID: uint64(i), PE: rng.Intn(numPEs), Load: load}
	}
	return items
}

func plansEqual(a, b Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for id, to := range a {
		if b[id] != to {
			return false
		}
	}
	return true
}

// TestHeapGreedyMatchesLinear: the heap rewrite of GreedyLB must be a
// pure speedup — on random databases (including heavy load ties) it
// produces the exact plan of the preserved seed linear-scan
// implementation, hence also the same Imbalance.
func TestHeapGreedyMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		p := 1 + rng.Intn(64)
		items := randomItems(rng, n, p)
		heapPlan := GreedyLB{}.Plan(items, p)
		linPlan := LinearGreedyLB{}.Plan(items, p)
		if !plansEqual(heapPlan, linPlan) {
			t.Fatalf("trial %d (n=%d p=%d): heap plan diverges from seed linear plan\nheap: %v\nlinear: %v",
				trial, n, p, heapPlan, linPlan)
		}
		hi := Imbalance(PELoads(items, p, heapPlan))
		li := Imbalance(PELoads(items, p, linPlan))
		if hi != li {
			t.Fatalf("trial %d (n=%d p=%d): imbalance heap %v != linear %v", trial, n, p, hi, li)
		}
	}
}

// TestStrategiesDeterministicAndInRange: every strategy under test
// must give byte-identical plans on repeated runs over the same
// database (LB steps must be reproducible) and never route an item to
// an out-of-range PE.
func TestStrategiesDeterministicAndInRange(t *testing.T) {
	strategies := []Strategy{
		GreedyLB{},
		LinearGreedyLB{},
		HierarchicalLB{},
		HierarchicalLB{GroupSize: 3, Threshold: 1.02},
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		p := 1 + rng.Intn(64)
		items := randomItems(rng, n, p)
		for _, s := range strategies {
			first := s.Plan(items, p)
			for id, to := range first {
				if to < 0 || to >= p {
					t.Fatalf("trial %d: %s maps item %d to PE %d of %d", trial, s.Name(), id, to, p)
				}
			}
			again := s.Plan(items, p)
			if !plansEqual(first, again) {
				t.Fatalf("trial %d: %s nondeterministic over identical input (n=%d p=%d)",
					trial, s.Name(), n, p)
			}
		}
	}
}

// TestHierImprovesImbalance: on a skewed database the hierarchical
// plan must not be worse than leaving items in place, and on multi-
// group machines it should land near the global greedy balance.
func TestHierImprovesImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := 16 + rng.Intn(48)
		n := 4*p + rng.Intn(300)
		items := make([]Item, n)
		for i := range items {
			// Skew: everything starts on the first quarter of the PEs.
			items[i] = Item{ID: uint64(i), PE: rng.Intn(1 + p/4), Load: 1 + rng.Float64()*1000}
		}
		before := Imbalance(PELoads(items, p, nil))
		hier := Imbalance(PELoads(items, p, HierarchicalLB{}.Plan(items, p)))
		if hier > before {
			t.Fatalf("trial %d (n=%d p=%d): hier worsened imbalance %v -> %v", trial, n, p, before, hier)
		}
		greedy := Imbalance(PELoads(items, p, GreedyLB{}.Plan(items, p)))
		// The two-level scheme trades some balance for plan cost, but a
		// 4x-overweighted quarter must still get substantially flattened.
		if hier > 2*greedy && hier > 1.5 {
			t.Errorf("trial %d (n=%d p=%d): hier imbalance %v far off greedy %v", trial, n, p, hier, greedy)
		}
	}
}
