package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ringWorkload: n equal items in a communication ring (each talks to
// its neighbours), all born on PE 0.
func ringWorkload(n int, bytes float64) ([]Item, []Edge) {
	items := make([]Item, n)
	var edges []Edge
	for i := 0; i < n; i++ {
		items[i] = Item{ID: uint64(i), PE: 0, Load: 100}
		edges = append(edges, Edge{A: uint64(i), B: uint64((i + 1) % n), Bytes: bytes})
	}
	return items, edges
}

func TestCommAwareReducesTraffic(t *testing.T) {
	items, edges := ringWorkload(16, 1000)
	greedy := GreedyLB{}.Plan(items, 4)
	comm := CommAwareLB{Alpha: 1}.PlanComm(items, edges, 4)

	gCross := CrossTraffic(items, edges, greedy)
	cCross := CrossTraffic(items, edges, comm)
	if !(cCross < gCross) {
		t.Errorf("comm-aware traffic %g not below greedy %g", cCross, gCross)
	}
	// A ring of 16 on 4 PEs can be cut into 4 contiguous arcs: 4 cut
	// edges is optimal.
	if cCross > 6*1000 {
		t.Errorf("comm-aware left %g bytes of cross traffic (optimal 4000)", cCross)
	}
	// Balance must not collapse: equal items, so per-PE counts stay
	// within one of each other at reasonable Alpha.
	if ib := Imbalance(PELoads(items, 4, comm)); ib > 1.25 {
		t.Errorf("comm-aware imbalance %g", ib)
	}
}

func TestCommAwareAlphaZeroIsGreedy(t *testing.T) {
	items, edges := ringWorkload(12, 500)
	a := CommAwareLB{Alpha: 0}.PlanComm(items, edges, 3)
	g := GreedyLB{}.Plan(items, 3)
	// Same balance quality (plans may differ in labels).
	if Imbalance(PELoads(items, 3, a)) != Imbalance(PELoads(items, 3, g)) {
		t.Errorf("alpha=0 balance differs from greedy")
	}
}

func TestCommAwareHugeAlphaClusters(t *testing.T) {
	// With overwhelming Alpha and the capacity ceiling lifted,
	// everything that communicates clusters on one PE (balance
	// sacrificed entirely).
	items, edges := ringWorkload(8, 1e9)
	plan := CommAwareLB{Alpha: 1e6, Slack: 100}.PlanComm(items, edges, 4)
	if CrossTraffic(items, edges, plan) != 0 {
		t.Errorf("huge alpha left cross traffic %g", CrossTraffic(items, edges, plan))
	}
}

func TestCommAwareNoGraph(t *testing.T) {
	items, _ := ringWorkload(8, 0)
	plan := CommAwareLB{Alpha: 1}.Plan(items, 2)
	if ib := Imbalance(PELoads(items, 2, plan)); ib > 1.01 {
		t.Errorf("graph-free plan imbalance %g", ib)
	}
	if (CommAwareLB{}).Name() != "commaware" {
		t.Error("name wrong")
	}
}

func TestCrossTrafficAccounting(t *testing.T) {
	items := []Item{{ID: 1, PE: 0, Load: 1}, {ID: 2, PE: 1, Load: 1}}
	edges := []Edge{{A: 1, B: 2, Bytes: 700}}
	if got := CrossTraffic(items, edges, nil); got != 700 {
		t.Errorf("split pair traffic = %g", got)
	}
	if got := CrossTraffic(items, edges, Plan{2: 0}); got != 0 {
		t.Errorf("co-located traffic = %g", got)
	}
}

// Property: for random workloads, comm-aware plans are valid and
// never produce more cross traffic than ignoring the graph entirely
// (with matched tie-breaking this holds for Alpha ≥ 0 on equal
// loads; we assert validity plus the weaker no-catastrophe bound).
func TestQuickCommAwareValid(t *testing.T) {
	f := func(seed int64, nItems, nPEs uint8) bool {
		n := int(nItems%24) + 2
		p := int(nPEs%6) + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i), PE: rng.Intn(p), Load: float64(rng.Intn(100) + 1)}
		}
		var edges []Edge
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, Edge{A: uint64(a), B: uint64(b), Bytes: float64(rng.Intn(1000))})
			}
		}
		plan := CommAwareLB{Alpha: 0.5}.PlanComm(items, edges, p)
		for _, pe := range plan {
			if pe < 0 || pe >= p {
				return false
			}
		}
		// Every item placed exactly once (plan only holds moves).
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
