package loadbalance

import (
	"sort"
)

// DefaultGroupSize is HierarchicalLB's PEs-per-group when unset.
const DefaultGroupSize = 8

// HierarchicalLB splits the machine into contiguous PE groups and
// balances in two levels: a group-local greedy re-map (each group
// plans only over its own items and PEs, O(n_g log g) apiece), then a
// top-level refine over group aggregates that shifts items from
// overloaded groups to underloaded ones. This is the paper's answer
// to centralized-LB scaling (§4.5): no step ever scans all n items
// against all P PEs, so the plan cost stays near O(n log g + moves)
// as the machine grows, at a small balance penalty versus the global
// greedy re-map.
type HierarchicalLB struct {
	// GroupSize is the number of PEs per group (default
	// DefaultGroupSize; the last group may be smaller).
	GroupSize int
	// Threshold is the top-level overload ratio versus the group's
	// capacity-weighted average that triggers cross-group moves
	// (default 1.05).
	Threshold float64
}

// Name implements Strategy.
func (HierarchicalLB) Name() string { return "hier" }

// Plan implements Strategy. The plan is deterministic: ties
// everywhere break on item ID or PE/group index.
func (h HierarchicalLB) Plan(items []Item, numPEs int) Plan {
	if numPEs <= 0 || len(items) == 0 {
		return Plan{}
	}
	g := h.GroupSize
	if g <= 0 {
		g = DefaultGroupSize
	}
	if g > numPEs {
		g = numPEs
	}
	thresh := h.Threshold
	if thresh == 0 {
		thresh = 1.05
	}
	ngroups := (numPEs + g - 1) / g
	if ngroups == 1 {
		return GreedyLB{}.Plan(items, numPEs)
	}
	groupOf := func(pe int) int { return pe / g }
	groupBase := func(grp int) int { return grp * g }
	groupPEs := func(grp int) int {
		if n := numPEs - grp*g; n < g {
			return n
		}
		return g
	}

	// Phase 1 — group-local greedy: each group re-maps the items it
	// currently holds onto its own PEs.
	perGroup := make([][]Item, ngroups)
	var total float64
	for _, it := range items {
		grp := groupOf(it.PE)
		if grp < 0 || grp >= ngroups {
			grp = 0 // defensive: a corrupt PE still yields an in-range plan
		}
		perGroup[grp] = append(perGroup[grp], it)
		total += it.Load
	}
	cur := make(map[uint64]int, len(items)) // item ID → assigned PE
	peLoad := make([]float64, numPEs)
	groupLoad := make([]float64, ngroups)
	for grp := range perGroup {
		sorted := sortedByLoadDesc(perGroup[grp])
		hp := newPEHeap(groupPEs(grp), groupBase(grp))
		for _, it := range sorted {
			pe := hp.minPE()
			hp.addToMin(it.Load)
			cur[it.ID] = pe
			peLoad[pe] += it.Load
			groupLoad[grp] += it.Load
		}
	}
	if total == 0 {
		return diffPlan(items, cur)
	}

	// Phase 2 — top-level refine over group aggregates. Groups are
	// compared by load relative to capacity (the last group may have
	// fewer PEs); the most-overloaded group donates its largest item
	// that fits under the receiver's threshold, falling back to the
	// largest that still strictly improves the donor's relative load.
	avgPE := total / float64(numPEs)
	target := make([]float64, ngroups)
	donors := make([][]Item, ngroups) // per group, ascending (Load, ID)
	for grp := range donors {
		target[grp] = avgPE * float64(groupPEs(grp))
		donors[grp] = append(donors[grp], perGroup[grp]...)
		sort.Slice(donors[grp], func(i, j int) bool {
			a, b := donors[grp][i], donors[grp][j]
			if a.Load != b.Load {
				return a.Load < b.Load
			}
			return a.ID < b.ID
		})
	}
	rel := func(grp int) float64 { return groupLoad[grp] / target[grp] }
	for iter := 0; iter < 4*len(items); iter++ {
		maxG, minG := 0, 0
		for grp := 1; grp < ngroups; grp++ {
			if rel(grp) > rel(maxG) {
				maxG = grp
			}
			if rel(grp) < rel(minG) {
				minG = grp
			}
		}
		if rel(maxG) <= thresh || maxG == minG {
			break
		}
		ds := donors[maxG]
		pick := -1
		for i := len(ds) - 1; i >= 0; i-- { // largest first
			if (groupLoad[minG]+ds[i].Load)/target[minG] <= thresh {
				pick = i
				break
			}
		}
		if pick == -1 {
			for i := len(ds) - 1; i >= 0; i-- {
				if (groupLoad[minG]+ds[i].Load)/target[minG] < rel(maxG) {
					pick = i
					break
				}
			}
		}
		if pick == -1 {
			break // no cross-group move improves the maximum
		}
		it := ds[pick]
		donors[maxG] = append(ds[:pick], ds[pick+1:]...)
		// Receiving PE: least-loaded in the receiving group (a scan
		// over at most g PEs, ties to the lower index).
		base, n := groupBase(minG), groupPEs(minG)
		best := base
		for pe := base + 1; pe < base+n; pe++ {
			if peLoad[pe] < peLoad[best] {
				best = pe
			}
		}
		peLoad[cur[it.ID]] -= it.Load
		peLoad[best] += it.Load
		groupLoad[maxG] -= it.Load
		groupLoad[minG] += it.Load
		cur[it.ID] = best
		// Keep the receiver's donor list ordered for future rounds.
		j := sort.Search(len(donors[minG]), func(k int) bool {
			d := donors[minG][k]
			if d.Load != it.Load {
				return d.Load > it.Load
			}
			return d.ID > it.ID
		})
		donors[minG] = append(donors[minG], Item{})
		copy(donors[minG][j+1:], donors[minG][j:])
		donors[minG][j] = it
	}
	return diffPlan(items, cur)
}

// diffPlan converts a full assignment into the sparse Plan form
// (items that stay put are omitted).
func diffPlan(items []Item, cur map[uint64]int) Plan {
	plan := make(Plan)
	for _, it := range items {
		if to, ok := cur[it.ID]; ok && to != it.PE {
			plan[it.ID] = to
		}
	}
	return plan
}
