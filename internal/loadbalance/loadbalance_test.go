package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func skewed() []Item {
	// Heavily imbalanced: all big items on PE 0, as BT-MZ creates.
	return []Item{
		{ID: 1, PE: 0, Load: 100},
		{ID: 2, PE: 0, Load: 90},
		{ID: 3, PE: 0, Load: 80},
		{ID: 4, PE: 0, Load: 10},
		{ID: 5, PE: 1, Load: 5},
		{ID: 6, PE: 2, Load: 5},
		{ID: 7, PE: 3, Load: 5},
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"greedy", "refine", "rotate", "commaware"} {
		s, err := ByName(n)
		if err != nil || s.Name() != n {
			t.Errorf("ByName(%q) = %v/%v", n, s, err)
		}
	}
	if _, err := ByName("psychic"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestImbalanceMetric(t *testing.T) {
	if got := Imbalance([]float64{10, 10, 10}); got != 1 {
		t.Errorf("balanced imbalance = %g", got)
	}
	if got := Imbalance([]float64{30, 0, 0}); got != 3 {
		t.Errorf("imbalance = %g, want 3", got)
	}
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty imbalance = %g", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Errorf("zero imbalance = %g", got)
	}
}

func TestGreedyBalances(t *testing.T) {
	items := skewed()
	before := Imbalance(PELoads(items, 4, nil))
	plan := GreedyLB{}.Plan(items, 4)
	after := Imbalance(PELoads(items, 4, plan))
	if !(after < before) {
		t.Errorf("greedy did not improve: %g → %g", before, after)
	}
	if after > 1.5 {
		t.Errorf("greedy left imbalance %g", after)
	}
}

func TestRefineMovesLess(t *testing.T) {
	items := skewed()
	greedy := GreedyLB{}.Plan(items, 4)
	refine := RefineLB{}.Plan(items, 4)
	ib := Imbalance(PELoads(items, 4, refine))
	if ib > 2.0 {
		t.Errorf("refine left imbalance %g", ib)
	}
	if Migrations(items, refine) > Migrations(items, greedy) {
		t.Errorf("refine migrated more (%d) than greedy (%d)",
			Migrations(items, refine), Migrations(items, greedy))
	}
	if before := Imbalance(PELoads(items, 4, nil)); !(ib < before) {
		t.Errorf("refine did not improve imbalance: %g → %g", before, ib)
	}
}

func TestRefineNoopWhenBalanced(t *testing.T) {
	items := []Item{
		{ID: 1, PE: 0, Load: 10},
		{ID: 2, PE: 1, Load: 10},
		{ID: 3, PE: 2, Load: 10},
	}
	if plan := (RefineLB{}).Plan(items, 3); Migrations(items, plan) != 0 {
		t.Errorf("refine moved items in a balanced system: %v", plan)
	}
}

func TestRotate(t *testing.T) {
	items := skewed()
	plan := RotateLB{}.Plan(items, 4)
	for _, it := range items {
		if plan[it.ID] != (it.PE+1)%4 {
			t.Errorf("item %d: %d → %d", it.ID, it.PE, plan[it.ID])
		}
	}
	if len(RotateLB{}.Plan(items, 1)) != 0 {
		t.Error("rotate on one PE should be empty")
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, s := range []Strategy{GreedyLB{}, RefineLB{}, RotateLB{}} {
		if p := s.Plan(nil, 4); len(p) != 0 {
			t.Errorf("%s on no items: %v", s.Name(), p)
		}
		if p := s.Plan(skewed(), 0); len(p) != 0 {
			t.Errorf("%s on zero PEs: %v", s.Name(), p)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	items := skewed()
	p1 := GreedyLB{}.Plan(items, 4)
	p2 := GreedyLB{}.Plan(items, 4)
	for id, pe := range p1 {
		if p2[id] != pe {
			t.Fatalf("nondeterministic plan at item %d", id)
		}
	}
}

// Property: for any random load set, greedy's post-plan maximum PE
// load respects the LPT bound (≤ 4/3·OPT ≤ 4/3·max(avg, biggest
// item)), it never noticeably worsens an already-random placement,
// and every destination is a valid PE. (Greedy is NOT guaranteed to
// beat every lucky placement exactly — LPT is a 4/3-approximation —
// so the comparison carries the approximation slack.)
func TestQuickGreedyLPTBound(t *testing.T) {
	f := func(seed int64, nItems uint8, nPEs uint8) bool {
		numPEs := int(nPEs%8) + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, int(nItems)+1)
		var total, biggest float64
		for i := range items {
			items[i] = Item{ID: uint64(i + 1), PE: rng.Intn(numPEs), Load: float64(rng.Intn(1000) + 1)}
			total += items[i].Load
			if items[i].Load > biggest {
				biggest = items[i].Load
			}
		}
		optLower := total / float64(numPEs)
		if biggest > optLower {
			optLower = biggest
		}
		plan := GreedyLB{}.Plan(items, numPEs)
		loads := PELoads(items, numPEs, plan)
		var maxLoad float64
		for _, l := range loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if maxLoad > optLower*4.0/3.0+1e-9 {
			return false // violates the LPT guarantee
		}
		// Never worse than the original placement beyond the
		// approximation slack.
		beforeMax := 0.0
		for _, l := range PELoads(items, numPEs, nil) {
			if l > beforeMax {
				beforeMax = l
			}
		}
		if maxLoad > beforeMax*4.0/3.0+1e-9 {
			return false
		}
		for _, pe := range plan {
			if pe < 0 || pe >= numPEs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: refine strictly reduces the max PE load whenever the
// system is overloaded beyond threshold and a receiver exists.
func TestQuickRefineReducesMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numPEs := 4
		items := make([]Item, 12)
		for i := range items {
			items[i] = Item{ID: uint64(i + 1), PE: 0, Load: float64(rng.Intn(100) + 1)}
		}
		before := PELoads(items, numPEs, nil)
		plan := RefineLB{}.Plan(items, numPEs)
		after := PELoads(items, numPEs, plan)
		maxB, maxA := before[0], 0.0
		for _, l := range after {
			if l > maxA {
				maxA = l
			}
		}
		return maxA < maxB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
