package loadbalance

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchItems builds a fixed-seed random load database: n items spread
// over numPEs with loads drawn from a heavy-tailed-ish mix so the
// greedy heap actually churns.
func benchItems(n, numPEs int) []Item {
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	for i := range items {
		load := rng.Float64() * 1e6
		if rng.Intn(10) == 0 {
			load *= 20 // occasional BT-MZ-style oversized zone
		}
		items[i] = Item{ID: uint64(i), PE: rng.Intn(numPEs), Load: load}
	}
	return items
}

// BenchmarkLBPlan A/Bs the planning cost of the seed linear-scan
// greedy (O(n·P)) against the heap greedy (O(n log P)) and the
// two-level hierarchical strategy at P ∈ {8, 64, 256} × n ∈ {1k, 16k}
// items. Sub-benchmark names avoid '-' so benchjson's
// name/GOMAXPROCS split stays clean.
func BenchmarkLBPlan(b *testing.B) {
	strategies := []struct {
		name string
		s    Strategy
	}{
		{"linear", LinearGreedyLB{}},
		{"heap", GreedyLB{}},
		{"hier", HierarchicalLB{}},
	}
	for _, st := range strategies {
		for _, p := range []int{8, 64, 256} {
			for _, n := range []int{1000, 16000} {
				items := benchItems(n, p)
				b.Run(fmt.Sprintf("%s/P%d/N%d", st.name, p, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						_ = st.s.Plan(items, p)
					}
				})
			}
		}
	}
}
