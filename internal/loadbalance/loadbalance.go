// Package loadbalance implements the measurement-based load balancing
// of §4.5: the runtime measures each migratable object's (or AMPI
// thread's) consumed CPU time, a strategy computes a new
// object-to-processor assignment, and thread migration carries it
// out. Strategies mirror the classic Charm++ balancers: GreedyLB
// (global re-map, longest-processing-time-first), RefineLB (move
// objects off overloaded PEs only), and RotateLB (a correctness
// shaker that moves every object).
package loadbalance

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Item is one migratable unit in the load database.
type Item struct {
	ID   uint64  // stable identity (thread/chare id)
	PE   int     // current processor
	Load float64 // measured ns of work per step
}

// Plan maps item IDs to destination PEs; items absent from the map
// stay where they are.
type Plan map[uint64]int

// Strategy computes a Plan from the measured load database.
type Strategy interface {
	Name() string
	Plan(items []Item, numPEs int) Plan
}

// ByName returns the named strategy:
//
//   - "greedy": GreedyLB, global longest-processing-time-first re-map
//     over a PE min-heap — near-optimal balance, aggressive migration.
//   - "refine": RefineLB, moves items off overloaded PEs only.
//   - "rotate": RotateLB, shifts every item one PE (migration shaker).
//   - "commaware": CommAwareLB, trades load balance against measured
//     rank-to-rank traffic.
//   - "hier": HierarchicalLB, group-local greedy plus a top-level
//     refine over group aggregates — the decentralized scheme that
//     keeps LB-step cost from growing with machine size.
func ByName(name string) (Strategy, error) {
	switch name {
	case "greedy":
		return GreedyLB{}, nil
	case "refine":
		return RefineLB{Threshold: 1.05}, nil
	case "rotate":
		return RotateLB{}, nil
	case "commaware":
		// Alpha ≈ the interconnect's per-byte cost in ns (see
		// comm.DefaultLatency): a byte kept on-node is a nanosecond
		// of load the balancer may trade away.
		return CommAwareLB{Alpha: 4}, nil
	case "hier":
		return HierarchicalLB{}, nil
	}
	return nil, fmt.Errorf("loadbalance: unknown strategy %q", name)
}

// itemPool recycles measurement buffers so the per-epoch load walk
// (collect loads → plan → discard) stops allocating a fresh database
// every LB step.
var itemPool = sync.Pool{New: func() any { s := make([]Item, 0, 256); return &s }}

// AcquireItems returns an empty Item buffer with pooled capacity.
// Fill it, plan over it, then hand it back with ReleaseItems; no
// Strategy retains the slice after Plan returns.
func AcquireItems() *[]Item {
	p := itemPool.Get().(*[]Item)
	*p = (*p)[:0]
	return p
}

// ReleaseItems returns a buffer obtained from AcquireItems to the
// pool. The caller must not touch the slice afterwards.
func ReleaseItems(p *[]Item) {
	if p != nil {
		itemPool.Put(p)
	}
}

// PELoads sums item loads per PE under an optional plan.
func PELoads(items []Item, numPEs int, plan Plan) []float64 {
	loads := make([]float64, numPEs)
	for _, it := range items {
		pe := it.PE
		if plan != nil {
			if to, ok := plan[it.ID]; ok {
				pe = to
			}
		}
		loads[pe] += it.Load
	}
	return loads
}

// Imbalance returns max/avg PE load — 1.0 is perfect balance. An
// empty or zero-load set reports 1.0.
func Imbalance(loads []float64) float64 {
	var max, sum float64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 || len(loads) == 0 {
		return 1
	}
	avg := sum / float64(len(loads))
	return max / avg
}

// Assignment is one realized plan entry: item ID moves to PE Dest.
type Assignment struct {
	ID   uint64
	Dest int
}

// Moves materializes a plan against the load database as the ordered
// list of items that actually change PE (items the plan leaves in
// place, or does not mention, are omitted) — the input shape a bulk
// migration step consumes.
func (p Plan) Moves(items []Item) []Assignment {
	var out []Assignment
	for _, it := range items {
		if to, ok := p[it.ID]; ok && to != it.PE {
			out = append(out, Assignment{ID: it.ID, Dest: to})
		}
	}
	return out
}

// Migrations counts items a plan actually moves.
func Migrations(items []Item, plan Plan) int {
	n := 0
	for _, it := range items {
		if to, ok := plan[it.ID]; ok && to != it.PE {
			n++
		}
	}
	return n
}

// GreedyLB is the classic greedy balancer: assign items in
// descending-load order, each to the currently least-loaded PE. It
// produces near-optimal balance but ignores current placement, so it
// migrates aggressively. The least-loaded PE comes off a min-heap, so
// a plan costs O(n log P) instead of the seed's O(n·P) rescan — and
// because the heap breaks load ties by PE index exactly as the linear
// scan's strict-less did, the plans are bit-identical.
type GreedyLB struct{}

// Name implements Strategy.
func (GreedyLB) Name() string { return "greedy" }

// Plan implements Strategy.
func (GreedyLB) Plan(items []Item, numPEs int) Plan {
	if numPEs <= 0 {
		return Plan{}
	}
	sorted := sortedByLoadDesc(items)
	h := newPEHeap(numPEs, 0)
	plan := make(Plan, len(items))
	for _, it := range sorted {
		best := h.minPE()
		h.addToMin(it.Load)
		if best != it.PE {
			plan[it.ID] = best
		}
	}
	return plan
}

// sortedByLoadDesc copies items into descending-load order with
// deterministic ID tie-break — the assignment order every greedy
// variant consumes.
func sortedByLoadDesc(items []Item) []Item {
	sorted := append([]Item(nil), items...)
	slices.SortFunc(sorted, func(a, b Item) int {
		if a.Load != b.Load {
			if a.Load > b.Load {
				return -1
			}
			return 1
		}
		// Deterministic ties: lower ID first.
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return sorted
}

// peHeap is a min-heap of (load, PE) pairs, load ties broken by lower
// PE index — the same PE the seed's first-strictly-smaller linear scan
// selected, which keeps heap plans identical to linear-scan plans.
type peHeap struct {
	load []float64
	pe   []int
}

// newPEHeap builds a heap over PEs [base, base+n) with zero loads.
// Ascending index order with equal loads is already heap-ordered.
func newPEHeap(n, base int) *peHeap {
	h := &peHeap{load: make([]float64, n), pe: make([]int, n)}
	for i := range h.pe {
		h.pe[i] = base + i
	}
	return h
}

// minPE returns the least-loaded PE (lowest index among ties).
func (h *peHeap) minPE() int { return h.pe[0] }

// addToMin adds load to the current minimum PE and restores heap
// order in O(log P). The sift-down is hand-rolled on the parallel
// arrays rather than going through container/heap: the interface
// Less/Swap calls per level dominate the whole plan at large P.
func (h *peHeap) addToMin(load float64) {
	l, p := h.load, h.pe
	l[0] += load
	n := len(p)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && (l[r] < l[c] || (l[r] == l[c] && p[r] < p[c])) {
			c = r
		}
		// Stop once the smaller child is not strictly less than the
		// sifted entry (load, then PE index — the linear scan's order).
		if l[c] > l[i] || (l[c] == l[i] && p[c] > p[i]) {
			break
		}
		l[i], l[c] = l[c], l[i]
		p[i], p[c] = p[c], p[i]
		i = c
	}
}

// LinearGreedyLB is the seed GreedyLB: identical assignment policy,
// but each item rescans all P PEs for the minimum — O(n·P). It is kept
// (unregistered in ByName) as the reference implementation the heap
// version is property-tested and benchmarked against.
type LinearGreedyLB struct{}

// Name implements Strategy.
func (LinearGreedyLB) Name() string { return "greedy-linear" }

// Plan implements Strategy. The body is the seed verbatim (including
// its sort.Slice), so benchmarks against it measure the real
// before/after of the heap rewrite.
func (LinearGreedyLB) Plan(items []Item, numPEs int) Plan {
	if numPEs <= 0 {
		return Plan{}
	}
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load {
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].ID < sorted[j].ID // deterministic ties
	})
	loads := make([]float64, numPEs)
	plan := make(Plan, len(items))
	for _, it := range sorted {
		best := 0
		for pe := 1; pe < numPEs; pe++ {
			if loads[pe] < loads[best] {
				best = pe
			}
		}
		loads[best] += it.Load
		if best != it.PE {
			plan[it.ID] = best
		}
	}
	return plan
}

// RefineLB only moves items off PEs whose load exceeds Threshold ×
// average, preferring the smallest sufficient items — fewer
// migrations than GreedyLB at slightly worse balance.
type RefineLB struct {
	// Threshold is the overload ratio that triggers moves (e.g. 1.05
	// = 5% above average). Zero means 1.05.
	Threshold float64
}

// Name implements Strategy.
func (r RefineLB) Name() string { return "refine" }

// Plan implements Strategy: repeatedly move one item from the
// most-loaded PE to the least-loaded PE — preferring the largest item
// that fits under the threshold, falling back to the largest that
// still strictly improves the maximum — until the maximum is within
// threshold or no move helps.
func (r RefineLB) Plan(items []Item, numPEs int) Plan {
	if numPEs <= 0 || len(items) == 0 {
		return Plan{}
	}
	thresh := r.Threshold
	if thresh == 0 {
		thresh = 1.05
	}
	loads := PELoads(items, numPEs, nil)
	var total float64
	for _, l := range loads {
		total += l
	}
	avg := total / float64(numPEs)
	if avg == 0 {
		return Plan{}
	}
	// Working assignment, updated as items move.
	cur := make(map[uint64]int, len(items))
	perPE := make([][]Item, numPEs)
	for _, it := range items {
		cur[it.ID] = it.PE
		perPE[it.PE] = append(perPE[it.PE], it)
	}
	for pe := range perPE {
		sort.Slice(perPE[pe], func(i, j int) bool {
			if perPE[pe][i].Load != perPE[pe][j].Load {
				return perPE[pe][i].Load < perPE[pe][j].Load
			}
			return perPE[pe][i].ID < perPE[pe][j].ID
		})
	}
	for iter := 0; iter < 4*len(items); iter++ {
		maxPE, minPE := 0, 0
		for pe := 1; pe < numPEs; pe++ {
			if loads[pe] > loads[maxPE] {
				maxPE = pe
			}
			if loads[pe] < loads[minPE] {
				minPE = pe
			}
		}
		if loads[maxPE] <= thresh*avg || maxPE == minPE {
			break
		}
		donors := perPE[maxPE]
		pick := -1
		for i := len(donors) - 1; i >= 0; i-- { // largest first
			if loads[minPE]+donors[i].Load <= thresh*avg {
				pick = i
				break
			}
		}
		if pick == -1 {
			for i := len(donors) - 1; i >= 0; i-- {
				if loads[minPE]+donors[i].Load < loads[maxPE] {
					pick = i
					break
				}
			}
		}
		if pick == -1 {
			break // no move improves the maximum
		}
		it := donors[pick]
		perPE[maxPE] = append(donors[:pick], donors[pick+1:]...)
		loads[maxPE] -= it.Load
		loads[minPE] += it.Load
		cur[it.ID] = minPE
		// Keep the receiver's list sorted for future donations.
		j := sort.Search(len(perPE[minPE]), func(k int) bool {
			if perPE[minPE][k].Load != it.Load {
				return perPE[minPE][k].Load > it.Load
			}
			return perPE[minPE][k].ID > it.ID
		})
		perPE[minPE] = append(perPE[minPE], Item{})
		copy(perPE[minPE][j+1:], perPE[minPE][j:])
		perPE[minPE][j] = it
	}
	plan := make(Plan)
	for _, it := range items {
		if cur[it.ID] != it.PE {
			plan[it.ID] = cur[it.ID]
		}
	}
	return plan
}

// RotateLB moves every item to (PE+1) mod numPEs — useless for
// balance, invaluable for exercising migration machinery.
type RotateLB struct{}

// Name implements Strategy.
func (RotateLB) Name() string { return "rotate" }

// Plan implements Strategy.
func (RotateLB) Plan(items []Item, numPEs int) Plan {
	plan := make(Plan, len(items))
	if numPEs <= 1 {
		return plan
	}
	for _, it := range items {
		plan[it.ID] = (it.PE + 1) % numPEs
	}
	return plan
}
