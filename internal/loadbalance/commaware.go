package loadbalance

import "sort"

// Communication-aware balancing — the paper's second use of migration
// (§3): "Migration can improve communication performance, by moving
// pieces of work that communicate with each other closer together."
// The load database gains a communication graph; CommAwareLB trades
// balance against cross-PE traffic.

// Edge is measured traffic between two items (undirected, summed over
// both directions).
type Edge struct {
	A, B  uint64
	Bytes float64
}

// CommAware is implemented by strategies that can use a communication
// graph; runtimes that track per-pair traffic call PlanComm instead
// of Plan.
type CommAware interface {
	PlanComm(items []Item, edges []Edge, numPEs int) Plan
}

// CrossTraffic sums edge bytes whose endpoints land on different PEs
// under the plan.
func CrossTraffic(items []Item, edges []Edge, plan Plan) float64 {
	loc := make(map[uint64]int, len(items))
	for _, it := range items {
		pe := it.PE
		if to, ok := plan[it.ID]; ok {
			pe = to
		}
		loc[it.ID] = pe
	}
	var cross float64
	for _, e := range edges {
		if loc[e.A] != loc[e.B] {
			cross += e.Bytes
		}
	}
	return cross
}

// CommAwareLB is a greedy balancer with communication affinity: items
// are placed heaviest-first on the PE minimizing
//
//	projected load  −  Alpha × (bytes already co-located with the item)
//
// subject to a capacity ceiling of Slack × average load per PE
// (default 1.15), which keeps affinity from chaining a whole
// communication cluster onto one processor. Alpha converts bytes of
// avoided traffic into nanoseconds of load the balancer will trade
// (e.g. the per-byte wire cost); Alpha = 0 degenerates to GreedyLB.
type CommAwareLB struct {
	Alpha float64
	// Slack bounds per-PE load at Slack × average; 0 means 1.15.
	Slack float64
}

// Name implements Strategy.
func (CommAwareLB) Name() string { return "commaware" }

// Plan implements Strategy (no graph available: plain greedy).
func (l CommAwareLB) Plan(items []Item, numPEs int) Plan {
	return l.PlanComm(items, nil, numPEs)
}

// PlanComm implements CommAware.
func (l CommAwareLB) PlanComm(items []Item, edges []Edge, numPEs int) Plan {
	if numPEs <= 0 || len(items) == 0 {
		return Plan{}
	}
	// Adjacency: item → (peer → bytes).
	adj := make(map[uint64]map[uint64]float64, len(items))
	for _, e := range edges {
		if adj[e.A] == nil {
			adj[e.A] = make(map[uint64]float64)
		}
		if adj[e.B] == nil {
			adj[e.B] = make(map[uint64]float64)
		}
		adj[e.A][e.B] += e.Bytes
		adj[e.B][e.A] += e.Bytes
	}
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load {
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].ID < sorted[j].ID
	})
	slack := l.Slack
	if slack == 0 {
		slack = 1.15
	}
	var total float64
	for _, it := range items {
		total += it.Load
	}
	ceil := slack * total / float64(numPEs)

	loads := make([]float64, numPEs)
	placed := make(map[uint64]int, len(items))
	plan := make(Plan, len(items))
	for _, it := range sorted {
		best, bestScore := -1, 0.0
		minPE := 0
		for pe := 0; pe < numPEs; pe++ {
			if loads[pe] < loads[minPE] {
				minPE = pe
			}
			if loads[pe]+it.Load > ceil {
				continue // over capacity: affinity may not overload
			}
			score := loads[pe] + it.Load
			// Attraction: bytes to already-placed peers on pe.
			for peer, bytes := range adj[it.ID] {
				if p, ok := placed[peer]; ok && p == pe {
					score -= l.Alpha * bytes
				}
			}
			if best == -1 || score < bestScore {
				best, bestScore = pe, score
			}
		}
		if best == -1 {
			best = minPE // nothing fits under the ceiling: least-loaded
		}
		loads[best] += it.Load
		placed[it.ID] = best
		if best != it.PE {
			plan[it.ID] = best
		}
	}
	return plan
}
