// Package coro implements return-switch coroutines (§2.4.1): a
// subroutine "suspends" by returning a label and "resumes" by being
// called again with that label, dispatching on it to jump back to
// where it left off — the Duff's-device coroutine trick of Tatham's
// "Coroutines in C", without threads or stacks.
//
// Because the technique stores no machine state, a coroutine's entire
// execution state is the label plus whatever locals the programmer
// manually parks in the State — which is both why these objects are
// trivially migratable (§3.2) and why the paper calls the style
// "confusing, error-prone and tough to debug": forget to park a
// local and it silently resets on every resume.
package coro

import (
	"fmt"
	"sort"

	"migflow/internal/pup"
)

// Begin is the label a fresh coroutine starts from.
const Begin = 0

// State is the manually-managed persistent state of one coroutine:
// the resume label and a register file of named locals. It is
// pup.Pupable, so a suspended coroutine can migrate as a few bytes.
type State struct {
	line   int
	locals map[string]uint64
}

// NewState returns a state at Begin with no locals.
func NewState() *State {
	return &State{line: Begin, locals: make(map[string]uint64)}
}

// Line returns the saved resume label.
func (s *State) Line() int { return s.line }

// Get reads a parked local (zero if never set).
func (s *State) Get(name string) uint64 { return s.locals[name] }

// Set parks a local so it survives suspension.
func (s *State) Set(name string, v uint64) { s.locals[name] = v }

// Pup implements pup.Pupable.
func (s *State) Pup(p *pup.PUPer) error {
	if err := p.Int(&s.line); err != nil {
		return err
	}
	names := make([]string, 0, len(s.locals))
	for k := range s.locals {
		names = append(names, k)
	}
	// Canonical order for byte-stable packing.
	sort.Strings(names)
	n := uint32(len(names))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.IsUnpacking() {
		s.locals = make(map[string]uint64, n)
		for i := uint32(0); i < n; i++ {
			var k string
			var v uint64
			if err := p.String(&k); err != nil {
				return err
			}
			if err := p.Uint64(&v); err != nil {
				return err
			}
			s.locals[k] = v
		}
		return nil
	}
	for _, k := range names {
		v := s.locals[k]
		if err := p.String(&k); err != nil {
			return err
		}
		if err := p.Uint64(&v); err != nil {
			return err
		}
	}
	return nil
}

// Step is one activation of the coroutine body: it receives the
// state (dispatch on s.Line() to resume) and an input value, and
// returns the coroutine's yield. To suspend, return with next set to
// the label to resume at and done=false; to finish, return done=true.
type Step func(s *State, in uint64) (yield uint64, next int, done bool)

// Coroutine pairs a body with its state.
type Coroutine struct {
	body Step
	s    *State
	done bool
}

// New returns a coroutine at Begin.
func New(body Step) *Coroutine {
	return &Coroutine{body: body, s: NewState()}
}

// Restore rebuilds a coroutine around migrated state — event-object
// migration (§3.2): "copy these data structures to a new processor
// and begin executing the next event". The body is code, present in
// every process image; only the state moved.
func Restore(body Step, s *State) *Coroutine {
	return &Coroutine{body: body, s: s}
}

// State exposes the coroutine's state (for migration).
func (c *Coroutine) State() *State { return c.s }

// Done reports whether the coroutine has finished.
func (c *Coroutine) Done() bool { return c.done }

// Resume runs the body from its saved label. Resuming a finished
// coroutine is an error.
func (c *Coroutine) Resume(in uint64) (uint64, error) {
	if c.done {
		return 0, fmt.Errorf("coro: resume of finished coroutine")
	}
	yield, next, done := c.body(c.s, in)
	c.s.line = next
	c.done = done
	return yield, nil
}
