package coro

import (
	"testing"

	"migflow/internal/pup"
)

// rangeCoro yields 0..n-1 then finishes, parking its counter in the
// state (the return-switch pattern).
func rangeCoro(n uint64) Step {
	return func(s *State, _ uint64) (uint64, int, bool) {
		switch s.Line() {
		case Begin:
			s.Set("i", 0)
			fallthrough
		case 1:
			i := s.Get("i")
			if i >= n {
				return 0, 1, true
			}
			s.Set("i", i+1)
			return i, 1, false
		}
		panic("bad label")
	}
}

func TestGenerator(t *testing.T) {
	c := New(rangeCoro(4))
	var got []uint64
	for !c.Done() {
		v, err := c.Resume(0)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Done() {
			got = append(got, v)
		}
	}
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("yields = %v", got)
	}
	if _, err := c.Resume(0); err == nil {
		t.Error("resume after done accepted")
	}
}

// TestAccumulator exercises passing values *into* a suspended
// coroutine.
func TestAccumulator(t *testing.T) {
	acc := func(s *State, in uint64) (uint64, int, bool) {
		sum := s.Get("sum") + in
		s.Set("sum", sum)
		return sum, 1, false
	}
	c := New(acc)
	for _, v := range []uint64{5, 7, 9} {
		if _, err := c.Resume(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.State().Get("sum"); got != 21 {
		t.Errorf("sum = %d", got)
	}
}

// TestMigration suspends a coroutine, PUPs its state across a
// simulated migration, restores it against the same code, and
// continues — the event-object migration story of §3.2.
func TestMigration(t *testing.T) {
	c := New(rangeCoro(6))
	for i := 0; i < 3; i++ {
		if _, err := c.Resume(0); err != nil {
			t.Fatal(err)
		}
	}
	data, err := pup.Pack(c.State())
	if err != nil {
		t.Fatal(err)
	}
	// "Arrive" elsewhere: fresh state object, same body.
	s2 := NewState()
	if err := pup.Unpack(data, s2); err != nil {
		t.Fatal(err)
	}
	c2 := Restore(rangeCoro(6), s2)
	v, err := c2.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("resumed at %d, want 3 (continuing where it left off)", v)
	}
}

// TestForgottenLocalResets documents the pitfall the paper warns
// about: a local kept in a plain Go variable (not parked in State)
// resets on every resume.
func TestForgottenLocalResets(t *testing.T) {
	buggy := func(s *State, _ uint64) (uint64, int, bool) {
		i := uint64(0) // "local variable" not parked: reborn every call
		i++
		return i, 1, false
	}
	c := New(buggy)
	a, _ := c.Resume(0)
	b, _ := c.Resume(0)
	if a != 1 || b != 1 {
		t.Errorf("expected the bug: both resumes yield 1, got %d then %d", a, b)
	}
}

func TestStatePupEmpty(t *testing.T) {
	s := NewState()
	data, err := pup.Pack(s)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewState()
	s2.Set("junk", 1)
	if err := pup.Unpack(data, s2); err != nil {
		t.Fatal(err)
	}
	if s2.Get("junk") != 0 {
		t.Error("unpack did not replace locals")
	}
}

func TestStatePupDeterministic(t *testing.T) {
	s := NewState()
	s.Set("b", 2)
	s.Set("a", 1)
	s.Set("c", 3)
	d1, err := pup.Pack(s)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := pup.Pack(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("packing not deterministic")
	}
}
