package npb

import (
	"fmt"
	"math"
	"testing"

	"migflow/internal/loadbalance"
)

func TestClassByName(t *testing.T) {
	a, err := ClassByName("A")
	if err != nil || a.NumZones() != 16 {
		t.Errorf("class A: %+v, %v", a, err)
	}
	b, err := ClassByName("B")
	if err != nil || b.NumZones() != 64 {
		t.Errorf("class B: %+v, %v", b, err)
	}
	if _, err := ClassByName("Z"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestZoneSizesGrading(t *testing.T) {
	for _, c := range []Class{ClassA, ClassB} {
		sizes := c.ZoneSizes()
		if len(sizes) != c.NumZones() {
			t.Fatalf("%s: %d sizes", c.Name, len(sizes))
		}
		min, max, sum := math.Inf(1), 0.0, 0.0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			sum += s
		}
		// The BT-MZ grading: largest/smallest ≈ 20.
		if r := max / min; math.Abs(r-c.Ratio) > 0.5 {
			t.Errorf("%s: size ratio = %g, want ≈ %g", c.Name, r, c.Ratio)
		}
		if math.Abs(sum-c.Points)/c.Points > 1e-9 {
			t.Errorf("%s: sizes sum to %g, want %g", c.Name, sum, c.Points)
		}
	}
}

func TestAssignZones(t *testing.T) {
	sizes := ClassA.ZoneSizes()
	asg := AssignZones(sizes, 8)
	if len(asg) != 8 {
		t.Fatalf("ranks = %d", len(asg))
	}
	seen := map[int]bool{}
	loads := make([]float64, 8)
	for r, zs := range asg {
		for _, z := range zs {
			if seen[z] {
				t.Errorf("zone %d assigned twice", z)
			}
			seen[z] = true
			loads[r] += sizes[z]
		}
	}
	if len(seen) != 16 {
		t.Errorf("assigned %d zones", len(seen))
	}
	// Greedy packing keeps per-rank loads reasonably even when ranks
	// hold multiple zones.
	if ib := loadbalance.Imbalance(loads); ib > 2.0 {
		t.Errorf("greedy zone assignment imbalance = %g", ib)
	}
	// One-zone-per-rank granularity cannot be balanced: rank loads
	// then vary by the zone-size ratio.
	asg = AssignZones(sizes, 16)
	loads = make([]float64, 16)
	for r, zs := range asg {
		if len(zs) != 1 {
			t.Errorf("rank %d owns %d zones, want 1", r, len(zs))
		}
		for _, z := range zs {
			loads[r] += sizes[z]
		}
	}
	if ib := loadbalance.Imbalance(loads); ib < 2 {
		t.Errorf("one-zone ranks should be imbalanced, got %g", ib)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Params{Class: ClassA, NProcs: 0, NPEs: 1}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := Run(Params{Class: ClassA, NProcs: 64, NPEs: 4}); err == nil {
		t.Error("more ranks than zones accepted")
	}
}

func TestLabel(t *testing.T) {
	p := Params{Class: ClassA, NProcs: 8, NPEs: 4}
	if p.Label() != "A.8,4PE" {
		t.Errorf("Label = %q", p.Label())
	}
}

// TestLBImprovesA84 is Figure 12's first bar pair: A.8,4PE with and
// without thread-migration load balancing.
func TestLBImprovesA84(t *testing.T) {
	base := Params{Class: ClassA, NProcs: 8, NPEs: 4, Steps: 6}
	noLB, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withParams := base
	withParams.LB = loadbalance.GreedyLB{}
	withLB, err := Run(withParams)
	if err != nil {
		t.Fatal(err)
	}
	if !(withLB.TimeNs < noLB.TimeNs) {
		t.Errorf("LB did not help: %g → %g", noLB.TimeNs, withLB.TimeNs)
	}
	if withLB.MovedRanks == 0 || withLB.Migrations == 0 {
		t.Errorf("no migrations: moved=%d migs=%d", withLB.MovedRanks, withLB.Migrations)
	}
	if noLB.Migrations != 0 {
		t.Errorf("baseline migrated %d times", noLB.Migrations)
	}
	if !(withLB.Imbalance < noLB.Imbalance) {
		t.Errorf("imbalance not reduced: %g → %g", noLB.Imbalance, withLB.Imbalance)
	}
}

// TestClassBConvergence is Figure 12's headline observation: "for all
// three class B tests on 8 processors ... the execution times after
// load balancing are about the same, while there is a dramatic
// variation in execution times before load balancing."
func TestClassBConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var with, without []float64
	for _, nprocs := range []int{16, 32, 64} {
		// Enough steps that the single pre-LB measurement step
		// amortizes, as in the full-length benchmark.
		p := Params{Class: ClassB, NProcs: nprocs, NPEs: 8, Steps: 20}
		r0, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		p.LB = loadbalance.GreedyLB{}
		r1, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		without = append(without, r0.TimeNs)
		with = append(with, r1.TimeNs)
	}
	spread := func(v []float64) float64 {
		min, max := v[0], v[0]
		for _, x := range v {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max / min
	}
	if s := spread(with); s > 1.25 {
		t.Errorf("post-LB times not converged: spread %.2f (%v)", s, with)
	}
	if s := spread(without); s < 1.3 {
		t.Errorf("pre-LB times show no dramatic variation: spread %.2f (%v)", s, without)
	}
	for i := range with {
		if !(with[i] < without[i]) {
			t.Errorf("case %d: LB did not help (%g vs %g)", i, with[i], without[i])
		}
	}
}

// TestBTMZMostImbalanced pins the paper's benchmark choice: "Among
// these tests, BT-MZ creates the most dramatic load imbalance" —
// SP-MZ and LU-MZ partition into equal zones and barely benefit from
// LB.
func TestBTMZMostImbalanced(t *testing.T) {
	imb := func(c Class) float64 {
		r, err := Run(Params{Class: c, NProcs: 8, NPEs: 4, Steps: 4})
		if err != nil {
			t.Fatal(err)
		}
		return r.Imbalance
	}
	bt, sp, lu := imb(ClassA), imb(SPClassA), imb(LUClassA)
	if !(bt > sp && bt > lu) {
		t.Errorf("BT-MZ imbalance %g not the worst (SP %g, LU %g)", bt, sp, lu)
	}
	if sp > 1.05 || lu > 1.05 {
		t.Errorf("equal-zone benchmarks should be balanced: SP %g LU %g", sp, lu)
	}
}

func TestZoneNeighbors(t *testing.T) {
	c := ClassA // 4x4
	// Corner zone 0: right and up only.
	if got := fmt.Sprint(c.ZoneNeighbors(0)); got != "[1 4]" {
		t.Errorf("corner neighbors = %s", got)
	}
	// Interior zone 5 (x=1,y=1): all four.
	if got := len(c.ZoneNeighbors(5)); got != 4 {
		t.Errorf("interior neighbors = %d", got)
	}
	// Edge zone 3 (x=3,y=0): left and up.
	if got := fmt.Sprint(c.ZoneNeighbors(3)); got != "[2 7]" {
		t.Errorf("edge neighbors = %s", got)
	}
	// Adjacency is symmetric.
	for z := 0; z < c.NumZones(); z++ {
		for _, nb := range c.ZoneNeighbors(z) {
			found := false
			for _, back := range c.ZoneNeighbors(nb) {
				if back == z {
					found = true
				}
			}
			if !found {
				t.Errorf("adjacency not symmetric: %d→%d", z, nb)
			}
		}
	}
}

func TestClassByNameAll(t *testing.T) {
	for _, name := range []string{"A", "B", "SP-A", "LU-A"} {
		c, err := ClassByName(name)
		if err != nil || c.Name != name {
			t.Errorf("ClassByName(%q) = %v/%v", name, c.Name, err)
		}
	}
}

func TestCasesList(t *testing.T) {
	cs := Cases(5, nil)
	if len(cs) != 5 {
		t.Fatalf("cases = %d", len(cs))
	}
	if cs[0].Label() != "A.8,4PE" || cs[4].Label() != "B.64,8PE" {
		t.Errorf("case labels: %s ... %s", cs[0].Label(), cs[4].Label())
	}
}
