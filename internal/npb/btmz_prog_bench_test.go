package npb

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/loadbalance"
)

// BenchmarkBTMZEventLB is the skewed-zone LB study at event scale:
// one zone per event rank on the graded 64×64 class (and, at full
// EVENTMIG_RANKS, a 320×320 = 102,400-zone grid — territory where a
// thread per zone is not a configuration anyone runs). Each case
// reports the modeled makespan with and without the LB gate plus the
// migration traffic the improvement cost.
func BenchmarkBTMZEventLB(b *testing.B) {
	full := 1_000_000
	if s := os.Getenv("EVENTMIG_RANKS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			b.Fatalf("bad EVENTMIG_RANKS %q", s)
		}
		full = n
	}
	classes := []Class{ClassZ4K}
	if full >= 100_000 {
		classes = append(classes, GradedClass("Z100K", 320, 320, 1<<27, 20, 50))
	}
	for _, class := range classes {
		b.Run(fmt.Sprintf("%s/z%d", class.Name, class.NumZones()), func(b *testing.B) {
			base := Params{
				Class: class, NProcs: class.NumZones(), NPEs: 8,
				Steps: 3, Mode: ampi.ModeEvent,
			}
			var before, after *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if before, err = Run(base); err != nil {
					b.Fatal(err)
				}
				p := base
				p.LB = loadbalance.GreedyLB{}
				if after, err = Run(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if after.MovedRanks == 0 || after.TimeNs >= before.TimeNs {
				b.Fatalf("LB did not improve makespan: %.0f → %.0f ns (%d moved)",
					before.TimeNs, after.TimeNs, after.MovedRanks)
			}
			b.ReportMetric(before.TimeNs/1e6, "noLB-ms")
			b.ReportMetric(after.TimeNs/1e6, "LB-ms")
			b.ReportMetric(float64(after.MovedRanks), "moved")
			b.ReportMetric(float64(after.MigratedBytes)/float64(after.MovedRanks), "B/rank")
		})
	}
}

// BenchmarkBTMZOverlap is the split-phase A/B on the skewed graded
// class, per flow backend: the same zone job with the halo exchange
// blocking (off-ms) and split-phase with a pipelined residual
// Iallreduce (on-ms), under topology-aware collective trees. The
// overlapped schedule must beat the blocking one — a step costs
// max(solve, exchange) instead of their sum — and the hops metric
// records the torus hops the collective tree edges crossed.
func BenchmarkBTMZOverlap(b *testing.B) {
	class := GradedClass("Z256", 16, 16, 1<<17, 20, 50)
	for _, mode := range []string{ampi.ModeULT, ampi.ModeEvent} {
		b.Run(mode, func(b *testing.B) {
			base := Params{
				Class: class, NProcs: class.NumZones(), NPEs: 8,
				Steps: 12, Mode: mode, ReduceEvery: 4,
				Collectives: ampi.CollTopoTree,
				Topo:        ampi.Topology{Nodes: 8, GroupSize: 4},
			}
			var off, on *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if off, err = Run(base); err != nil {
					b.Fatal(err)
				}
				p := base
				p.Overlap = true
				if on, err = Run(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if !(on.TimeNs < off.TimeNs) {
				b.Fatalf("overlap did not improve makespan: %.0f → %.0f ns", off.TimeNs, on.TimeNs)
			}
			if !(on.PredictedNs < off.PredictedNs) {
				b.Fatalf("overlap did not lower predicted time: %.0f → %.0f ns", off.PredictedNs, on.PredictedNs)
			}
			b.ReportMetric(off.TimeNs/1e6, "off-ms")
			b.ReportMetric(on.TimeNs/1e6, "on-ms")
			b.ReportMetric(float64(on.TopoHops), "hops")
		})
	}
}
