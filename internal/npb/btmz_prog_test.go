package npb

import (
	"math"
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/loadbalance"
)

// TestProgramModesAgree: the shared step body interpreted by threads
// and by event records must predict bit-identical makespans — both
// the placement-derived TimeNs (no LB, so placements coincide) and
// the placement-invariant PredictedNs.
func TestProgramModesAgree(t *testing.T) {
	for _, base := range []Params{
		{Class: ClassA, NProcs: 8, NPEs: 4, Steps: 6},
		{Class: ClassB, NProcs: 64, NPEs: 8, Steps: 4},
		{Class: ClassZ4K, NProcs: 512, NPEs: 8, Steps: 3},
	} {
		p := base
		p.Mode = ampi.ModeULT
		ult, err := Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		p.Mode = ampi.ModeEvent
		ev, err := Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		if math.Float64bits(ult.TimeNs) != math.Float64bits(ev.TimeNs) {
			t.Errorf("%s: TimeNs diverged: ult %v, event %v", base.Label(), ult.TimeNs, ev.TimeNs)
		}
		if math.Float64bits(ult.PredictedNs) != math.Float64bits(ev.PredictedNs) {
			t.Errorf("%s: PredictedNs diverged: ult %v, event %v", base.Label(), ult.PredictedNs, ev.PredictedNs)
		}
		if ult.PredictedNs == 0 {
			t.Errorf("%s: program mode reported zero predicted makespan", base.Label())
		}
	}
}

// TestProgramPredictedInvariantUnderLB: PredictedNs is virtual time,
// so even when the two modes' LB gates move different ranks (thread
// loads are measured CPU, event loads are modeled busy-ns), the
// predicted makespan must not budge — and must match the ungated run.
func TestProgramPredictedInvariantUnderLB(t *testing.T) {
	base := Params{Class: ClassZ4K, NProcs: 256, NPEs: 8, Steps: 4, Mode: ampi.ModeEvent}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ampi.ModeULT, ampi.ModeEvent} {
		p := base
		p.Mode = mode
		p.LB = loadbalance.GreedyLB{}
		got, err := Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		if got.MovedRanks == 0 {
			t.Errorf("%s: skewed zones + greedy gate moved nothing", p.Label())
		}
		if math.Float64bits(got.PredictedNs) != math.Float64bits(ref.PredictedNs) {
			t.Errorf("%s: LB changed PredictedNs: %v vs %v", p.Label(), got.PredictedNs, ref.PredictedNs)
		}
	}
}

// TestEventLBImprovesSkewedMakespan is the acceptance run shrunk to
// CI scale: the skewed 4,096-zone class, one zone per event rank, LB
// gate after the measurement step. Block placement concentrates the
// graded (large) zones on the last PEs, so the balancer has real
// imbalance to fix and TimeNs must drop.
func TestEventLBImprovesSkewedMakespan(t *testing.T) {
	base := Params{Class: ClassZ4K, NProcs: ClassZ4K.NumZones(), NPEs: 8, Steps: 4, Mode: ampi.ModeEvent}
	before, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.LB = loadbalance.GreedyLB{}
	after, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if after.MovedRanks == 0 {
		t.Fatal("LB gate moved nothing on the skewed class")
	}
	if after.TimeNs >= before.TimeNs {
		t.Fatalf("LB did not improve makespan: %.0f → %.0f ns", before.TimeNs, after.TimeNs)
	}
	if after.Imbalance >= before.Imbalance {
		t.Fatalf("LB did not improve imbalance: %.3f → %.3f", before.Imbalance, after.Imbalance)
	}
	// Moving a zone cost a record, not a stack: the whole 4,096-rank
	// reshuffle must stay in hundreds of bytes per rank.
	if per := float64(after.Migrations) / float64(after.MovedRanks); per != 1 {
		t.Fatalf("migration count %v != moved ranks %v", after.Migrations, after.MovedRanks)
	}
	t.Logf("skewed %s: %.2f ms → %.2f ms (moved %d ranks, imbalance %.3f → %.3f)",
		p.Label(), before.TimeNs/1e6, after.TimeNs/1e6, after.MovedRanks, before.Imbalance, after.Imbalance)
}

// TestBTMZOverlapImproves is the split-phase acceptance at CI scale:
// on the skewed graded class the overlapped schedule (nonblocking
// halo exchange + pipelined residual Iallreduce) must beat blocking
// in every execution path — the legacy thread job and both program
// backends — and the program backends must still agree bit-for-bit
// with each other under overlap.
func TestBTMZOverlapImproves(t *testing.T) {
	class := GradedClass("Z256", 16, 16, 1<<17, 20, 50)
	base := Params{
		Class: class, NProcs: class.NumZones(), NPEs: 8,
		Steps: 8, ReduceEvery: 4,
		Collectives: ampi.CollTopoTree,
		Topo:        ampi.Topology{Nodes: 8, GroupSize: 4},
	}
	for _, mode := range []string{"", ampi.ModeULT, ampi.ModeEvent} {
		p := base
		p.Mode = mode
		off, err := Run(p)
		if err != nil {
			t.Fatalf("mode=%q off: %v", mode, err)
		}
		p.Overlap = true
		on, err := Run(p)
		if err != nil {
			t.Fatalf("mode=%q on: %v", mode, err)
		}
		if !(on.TimeNs < off.TimeNs) {
			t.Errorf("mode=%q: overlap did not improve makespan: %.0f → %.0f ns", mode, off.TimeNs, on.TimeNs)
		}
		if mode != "" && !(on.PredictedNs < off.PredictedNs) {
			t.Errorf("mode=%q: overlap did not lower predicted time: %.0f → %.0f ns", mode, off.PredictedNs, on.PredictedNs)
		}
		if on.TopoHops == 0 {
			t.Errorf("mode=%q: topo trees charged no hops", mode)
		}
	}
	// Modes must stay bit-identical with overlap on.
	p := base
	p.Overlap = true
	p.Mode = ampi.ModeULT
	ult, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Mode = ampi.ModeEvent
	evt, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ult.PredictedNs) != math.Float64bits(evt.PredictedNs) {
		t.Errorf("overlap: PredictedNs diverged: ult %v, event %v", ult.PredictedNs, evt.PredictedNs)
	}
	if math.Float64bits(ult.TimeNs) != math.Float64bits(evt.TimeNs) {
		t.Errorf("overlap: TimeNs diverged: ult %v, event %v", ult.TimeNs, evt.TimeNs)
	}
}

// TestProgramModeRejectsBadCombos: mode validation happens before any
// machine is built.
func TestProgramModeRejectsBadCombos(t *testing.T) {
	if _, err := Run(Params{Class: ClassA, NProcs: 8, NPEs: 4, Mode: "fiber"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(Params{Class: ClassA, NProcs: 8, NPEs: 4, Mode: ampi.ModeEvent, Steal: true}); err == nil {
		t.Error("event mode + Steal accepted")
	}
	if _, err := Run(Params{Class: ClassA, NProcs: 8, NPEs: 4, ReduceEvery: -1}); err == nil {
		t.Error("negative ReduceEvery accepted")
	}
}
