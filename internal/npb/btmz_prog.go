package npb

// Program-mode BT-MZ: the zone step expressed once as an ampi.Proc
// and interpreted by either flow backend — Params.Mode "ult" runs it
// on migratable threads, "event" on ~180-byte continuation records.
// The step body (solve → halo sends → deterministic specific-source
// receives → optional LB gate) is shared verbatim, so the predicted
// makespan is bit-identical across modes; only the migration
// mechanism differs. This is the configuration that scales the
// paper's Figure 12 study to zone counts (10^5+) where per-zone
// threads stop being affordable and per-zone event ranks do not.

import (
	"fmt"
	"math"
	"sort"

	"migflow/internal/ampi"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
)

// GradedClass builds a custom zone grid with BT-MZ's geometric size
// grading — the knob the large-scale LB studies turn. ratio 1 models
// SP/LU-MZ's equal zones; ratio 20 matches BT-MZ; larger ratios
// sharpen the imbalance the balancer must fix.
func GradedClass(name string, nx, ny int, points, ratio, workPerPointNs float64) Class {
	return Class{Name: name, ZonesX: nx, ZonesY: ny, WorkPerPointNs: workPerPointNs, Points: points, Ratio: ratio}
}

// ClassZ4K is the skewed 4,096-zone (64×64) study class: one zone
// per rank, graded 20:1, sized so CI-scale runs stay fast.
var ClassZ4K = GradedClass("Z4K", 64, 64, 1<<22, 20, 50)

// btmzTopology is the zone→rank assignment and the per-rank halo
// pattern both Run paths derive from a Params.
type btmzTopology struct {
	sizes    []float64
	zones    [][]int
	myWork   []float64 // modeled solver ns per rank per step
	sendTo   [][]int   // rank → destination ranks, one per crossing pair
	recvFrom [][]int   // rank → source ranks (with multiplicity), sorted
}

func buildTopology(p Params) btmzTopology {
	t := btmzTopology{sizes: p.Class.ZoneSizes()}
	t.zones = AssignZones(t.sizes, p.NProcs)
	owner := make([]int, p.Class.NumZones())
	for r, zs := range t.zones {
		for _, z := range zs {
			owner[z] = r
		}
	}
	t.myWork = make([]float64, p.NProcs)
	t.sendTo = make([][]int, p.NProcs)
	t.recvFrom = make([][]int, p.NProcs)
	for r, zs := range t.zones {
		for _, z := range zs {
			t.myWork[r] += t.sizes[z] * p.Class.WorkPerPointNs
			for _, nb := range p.Class.ZoneNeighbors(z) {
				if owner[nb] != r {
					t.sendTo[r] = append(t.sendTo[r], owner[nb])
					t.recvFrom[owner[nb]] = append(t.recvFrom[owner[nb]], r)
				}
			}
		}
	}
	// Receives name their sources in sorted order: the matching
	// sequence is then a pure function of the topology, not of
	// message arrival races — what makes the makespan reproducible
	// and mode-invariant.
	for r := range t.recvFrom {
		sort.Ints(t.recvFrom[r])
	}
	return t
}

// btmzProgram builds the shared step body. workPE[step][rank]
// records where each rank's solve actually ran; the makespan sums
// are taken in rank order afterwards, so the per-PE totals are a
// pure function of placement — not of the two backends' different
// scheduling (and float-accumulation) orders. The halo-exchange
// critical path is len(sendTo[r])·Cost(HaloBytes),
// placement-independent.
func btmzProgram(p Params, t btmzTopology, workPE [][]int32) ampi.Proc {
	halo := make([]byte, p.HaloBytes)
	// One pipelined residual-reduction site (Overlap + ReduceEvery):
	// the reduce step starts it, the next reduce step (or the
	// epilogue) collects it — at most one outstanding at a time.
	var arStart, arWait ampi.Proc
	if p.Overlap && p.ReduceEvery > 0 {
		arStart, arWait = ampi.Iallreduce("max",
			func(pc *ampi.PC) float64 { return t.myWork[pc.Rank()] }, nil)
	}
	step := func(i int) ampi.Proc {
		return ampi.Call(func(pc *ampi.PC) ampi.Proc {
			r := pc.Rank()
			reduceNow := p.ReduceEvery > 0 && (i+1)%p.ReduceEvery == 0
			var ps []ampi.Proc
			if p.Overlap {
				// Split-phase: halos leave before the solve, so their
				// flight time hides under it; a reduction started last
				// reduce step completes under this solve too.
				ps = append(ps, ampi.Do(func(pc *ampi.PC) {
					for _, dest := range t.sendTo[r] {
						pc.Send(dest, 1, halo)
					}
					pc.Work(t.myWork[r])
					workPE[i][r] = int32(pc.PE())
				}))
				if p.ReduceEvery > 0 && i > 0 && i%p.ReduceEvery == 0 {
					ps = append(ps, arWait)
				}
			} else {
				ps = append(ps, ampi.Do(func(pc *ampi.PC) {
					pc.Work(t.myWork[r])
					workPE[i][r] = int32(pc.PE())
					for _, dest := range t.sendTo[r] {
						pc.Send(dest, 1, halo)
					}
				}))
			}
			for _, src := range t.recvFrom[r] {
				ps = append(ps, ampi.Recv(src, 1, nil))
			}
			if reduceNow {
				if p.Overlap {
					ps = append(ps, arStart)
				} else {
					ps = append(ps, ampi.Allreduce("max",
						func(pc *ampi.PC) float64 { return t.myWork[pc.Rank()] }, nil))
				}
			}
			// After the first (measurement) step, everyone meets at
			// the LB gate — threads move as stacks, event ranks as
			// records, one plan either way.
			if i == 0 && p.LB != nil {
				ps = append(ps, ampi.Migrate(p.LB))
			}
			return ampi.Seq(ps...)
		})
	}
	body := []ampi.Proc{ampi.For(p.Steps, step)}
	if p.Overlap && p.ReduceEvery > 0 && p.Steps%p.ReduceEvery == 0 {
		// The last step started a reduction; collect it.
		body = append(body, arWait)
	}
	return ampi.Seq(body...)
}

// ProgramJob builds the program-mode BT-MZ job on an existing machine
// without running it — the entry point sharded workers use, where the
// machine carries a local PE range and a socket transport. The same
// deterministic topology and program tree are built in every process,
// which is what makes the per-rank VT of a 2-process run bitwise
// equal to the in-process one. Defaults mirror Run's.
func ProgramJob(m *core.Machine, p Params) (*ampi.Job, error) {
	if p.Mode == "" {
		return nil, fmt.Errorf("npb: ProgramJob needs a program Mode")
	}
	if p.NProcs < 1 || p.NPEs < 1 || p.NPEs != m.NumPEs() {
		return nil, fmt.Errorf("npb: bad params for machine with %d PEs: %+v", m.NumPEs(), p)
	}
	if p.NProcs > p.Class.NumZones() {
		return nil, fmt.Errorf("npb: %d ranks exceed %d zones", p.NProcs, p.Class.NumZones())
	}
	if p.Steps == 0 {
		p.Steps = 10
	}
	if p.HaloBytes == 0 {
		p.HaloBytes = 4096
	}
	t := buildTopology(p)
	workPE := make([][]int32, p.Steps)
	for i := range workPE {
		workPE[i] = make([]int32, p.NProcs)
	}
	return ampi.NewProgram(m, p.NProcs, ampi.Options{
		Mode:           p.Mode,
		BlockPlacement: true,
		Collectives:    p.Collectives,
		Topo:           p.Topo,
	}, btmzProgram(p, t, workPE))
}

// runProgram is the Params.Mode != "" execution path.
func runProgram(p Params) (*Result, error) {
	if p.Mode != ampi.ModeULT && p.Mode != ampi.ModeEvent {
		return nil, fmt.Errorf("npb: unknown mode %q (want %q or %q)", p.Mode, ampi.ModeULT, ampi.ModeEvent)
	}
	if p.Steal || p.Aggregate || p.Trace {
		return nil, fmt.Errorf("npb: program mode does not support Steal/Aggregate/Trace")
	}
	t := buildTopology(p)
	m, err := core.NewMachine(core.Config{NumPEs: p.NPEs})
	if err != nil {
		return nil, err
	}
	workPE := make([][]int32, p.Steps)
	for i := range workPE {
		workPE[i] = make([]int32, p.NProcs)
	}
	job, err := ampi.NewProgram(m, p.NProcs, ampi.Options{
		Mode:           p.Mode,
		BlockPlacement: true,
		Collectives:    p.Collectives,
		Topo:           p.Topo,
	}, btmzProgram(p, t, workPE))
	if err != nil {
		return nil, err
	}
	job.Run()
	if !job.Done() {
		return nil, fmt.Errorf("npb: program-mode job did not complete (deadlock?)")
	}
	lat := m.Network().Latency()
	commStep := 0.0
	for r := range t.sendTo {
		if c := float64(len(t.sendTo[r])) * lat.Cost(p.HaloBytes); c > commStep {
			commStep = c
		}
	}
	migs, migBytes := m.MigrationStats()
	var total float64
	busy := make([]float64, p.NPEs)
	for _, pes := range workPE {
		for i := range busy {
			busy[i] = 0
		}
		for r, pe := range pes {
			busy[pe] += t.myWork[r]
		}
		max := 0.0
		for _, b := range busy {
			if b > max {
				max = b
			}
		}
		if p.Overlap {
			// Split-phase steps cost the longer of solve and exchange.
			total += math.Max(max, commStep)
		} else {
			total += max + commStep
		}
	}
	if migs > 0 {
		total += lat.Cost(int(migBytes)) / float64(p.NPEs)
	}
	// Modeled per-PE load under the final placement (one step's
	// solver work) — the Imbalance the balancer left behind.
	loads := make([]float64, p.NPEs)
	for r := range t.myWork {
		loads[job.PEOf(r)] += t.myWork[r]
	}
	return &Result{
		Params:      p,
		TimeNs:      total,
		CommNs:      commStep * float64(p.Steps),
		PredictedNs: job.PredictedNs(),
		PELoads:     loads,
		Imbalance:     loadbalance.Imbalance(loads),
		Migrations:    migs,
		MigratedBytes: migBytes,
		MovedRanks:    job.LBMoved(),
		TopoHops:      m.Network().TopoHops(),
	}, nil
}
