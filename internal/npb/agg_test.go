package npb

import (
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/loadbalance"
)

// TestAggDeterministicAndBusyInvariant is the aggregation contract on
// the workload level: repeated runs of each mode are bit-identical,
// the solver (busy) component TimeNs−CommNs never changes with
// aggregation, and only the modeled exchange cost and envelope
// counters move.
func TestAggDeterministicAndBusyInvariant(t *testing.T) {
	// 16 ranks packed on 4 PEs: several of any rank's neighbour ranks
	// share a destination PE, so envelopes genuinely coalesce.
	base := Params{Class: ClassA, NProcs: 16, NPEs: 4, Steps: 4, LB: loadbalance.GreedyLB{}}
	run := func(agg bool) *Result {
		p := base
		p.Aggregate = agg
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct, direct2 := run(false), run(false)
	aggd, aggd2 := run(true), run(true)
	if direct.TimeNs != direct2.TimeNs || aggd.TimeNs != aggd2.TimeNs {
		t.Fatalf("nondeterministic: direct %g/%g agg %g/%g",
			direct.TimeNs, direct2.TimeNs, aggd.TimeNs, aggd2.TimeNs)
	}
	if db, ab := direct.TimeNs-direct.CommNs, aggd.TimeNs-aggd.CommNs; db != ab {
		t.Errorf("busy component changed under aggregation: %g vs %g", db, ab)
	}
	if !(aggd.CommNs < direct.CommNs) {
		t.Errorf("aggregated exchange %g not cheaper than per-message %g", aggd.CommNs, direct.CommNs)
	}
	if direct.Envelopes != 0 || direct.AggPayloads != 0 {
		t.Errorf("per-message run reported envelopes: %d/%d", direct.Envelopes, direct.AggPayloads)
	}
	if aggd.Envelopes == 0 || aggd.AggPayloads < aggd.Envelopes {
		t.Errorf("bad envelope counters: %d envelopes, %d payloads", aggd.Envelopes, aggd.AggPayloads)
	}
	if aggd.MovedRanks != direct.MovedRanks || aggd.Imbalance != direct.Imbalance {
		t.Errorf("aggregation perturbed load balancing: moved %d/%d imbalance %g/%g",
			aggd.MovedRanks, direct.MovedRanks, aggd.Imbalance, direct.Imbalance)
	}
}

// TestAggWithFlatCollectives: both axes of Options compose — the
// exchange aggregates while the LB barrier runs the flat algorithm.
func TestAggWithFlatCollectives(t *testing.T) {
	res, err := Run(Params{
		Class: ClassA, NProcs: 8, NPEs: 4, Steps: 3,
		LB: loadbalance.GreedyLB{}, Aggregate: true, Collectives: ampi.CollFlat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Envelopes == 0 {
		t.Error("no envelopes with aggregation enabled")
	}
}

// BenchmarkBTMZExchange wall-times the A.16,8PE case per-message
// versus aggregated.
func BenchmarkBTMZExchange(b *testing.B) {
	run := func(b *testing.B, agg bool) {
		for i := 0; i < b.N; i++ {
			_, err := Run(Params{Class: ClassA, NProcs: 16, NPEs: 8, Steps: 3, Aggregate: agg})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("direct", func(b *testing.B) { run(b, false) })
	b.Run("agg", func(b *testing.B) { run(b, true) })
}
