// Package npb implements a synthetic analog of the NAS Parallel
// Benchmark Multi-Zone BT ("BT-MZ", §4.5): the overall mesh is
// partitioned into zones whose sizes are graded geometrically, so
// zone work varies by more than an order of magnitude — "BT-MZ
// creates the most dramatic load imbalance" in the suite. Zones are
// assigned to AMPI ranks (migratable threads), ranks to PEs
// round-robin; each step every rank solves its zones (modeled work
// proportional to zone points) and exchanges boundary data with its
// neighbour ranks.
//
// Run executes the benchmark with or without AMPI thread migration
// (isomalloc + swap-global, exactly the §4.5 configuration) and
// reports total execution time — the bars of Figure 12.
package npb

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/loadbalance"
	"migflow/internal/swapglobal"
	"migflow/internal/trace"
)

// Class is a BT-MZ problem class: the zone grid and total work scale.
// Real BT-MZ grades zone sizes so the largest-to-smallest ratio is
// roughly 20; Ratio reproduces that.
type Class struct {
	Name   string
	ZonesX int
	ZonesY int
	// WorkPerPointNs converts zone points to modeled solver time.
	WorkPerPointNs float64
	// Points is the total mesh points across all zones.
	Points float64
	// Ratio is largest/smallest zone size.
	Ratio float64
}

// The standard BT-MZ classes used in Figure 12. Zone counts follow
// the NPB spec (A: 4×4, B: 8×8); total points are scaled for
// simulation.
var (
	ClassA = Class{Name: "A", ZonesX: 4, ZonesY: 4, WorkPerPointNs: 50, Points: 1 << 20, Ratio: 20}
	ClassB = Class{Name: "B", ZonesX: 8, ZonesY: 8, WorkPerPointNs: 50, Points: 4 << 20, Ratio: 20}

	// SPClassA and LUClassA model the suite's other two benchmarks:
	// SP-MZ and LU-MZ partition their meshes into *equal-size* zones
	// (Ratio 1), so they exhibit little load imbalance — the paper
	// picks BT-MZ precisely because "BT-MZ creates the most dramatic
	// load imbalance" among the three.
	SPClassA = Class{Name: "SP-A", ZonesX: 4, ZonesY: 4, WorkPerPointNs: 50, Points: 1 << 20, Ratio: 1}
	LUClassA = Class{Name: "LU-A", ZonesX: 4, ZonesY: 4, WorkPerPointNs: 80, Points: 1 << 20, Ratio: 1}
)

// ClassByName resolves "A", "B", "SP-A" or "LU-A".
func ClassByName(name string) (Class, error) {
	switch name {
	case "A":
		return ClassA, nil
	case "B":
		return ClassB, nil
	case "SP-A":
		return SPClassA, nil
	case "LU-A":
		return LUClassA, nil
	case "Z4K":
		return ClassZ4K, nil
	}
	return Class{}, fmt.Errorf("npb: unknown class %q", name)
}

// ZoneNeighbors returns zone z's 2-D grid neighbours (no wraparound:
// the multi-zone meshes are bounded).
func (c Class) ZoneNeighbors(z int) []int {
	x, y := z%c.ZonesX, z/c.ZonesX
	var out []int
	if x > 0 {
		out = append(out, z-1)
	}
	if x < c.ZonesX-1 {
		out = append(out, z+1)
	}
	if y > 0 {
		out = append(out, z-c.ZonesX)
	}
	if y < c.ZonesY-1 {
		out = append(out, z+c.ZonesX)
	}
	return out
}

// NumZones returns the class's zone count.
func (c Class) NumZones() int { return c.ZonesX * c.ZonesY }

// ZoneSizes returns each zone's point count. Sizes grow
// geometrically along x and y so that size(last)/size(first) ≈
// Ratio, then are normalized to sum to Points.
func (c Class) ZoneSizes() []float64 {
	nx, ny := c.ZonesX, c.ZonesY
	// Per-dimension growth factor: ratio^(1/((nx-1)+(ny-1))).
	steps := float64(nx - 1 + ny - 1)
	g := 1.0
	if steps > 0 {
		g = math.Pow(c.Ratio, 1/steps)
	}
	sizes := make([]float64, 0, nx*ny)
	var sum float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			s := math.Pow(g, float64(x+y))
			sizes = append(sizes, s)
			sum += s
		}
	}
	for i := range sizes {
		sizes[i] *= c.Points / sum
	}
	return sizes
}

// AssignZones reproduces BT-MZ's own zone-to-process balancing:
// zones sorted by size descending, each assigned greedily to the
// least-loaded rank. Per-rank balance is good when ranks hold several
// zones and degrades as ranks approach one-zone granularity — which,
// combined with AMPI's block rank-to-PE mapping, produces the
// "dramatic variation in execution times before load balancing"
// across B.16/B.32/B.64 that Figure 12 shows.
func AssignZones(sizes []float64, nranks int) [][]int {
	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if sizes[idx[a]] != sizes[idx[b]] {
			return sizes[idx[a]] > sizes[idx[b]]
		}
		return idx[a] < idx[b]
	})
	loads := make([]float64, nranks)
	out := make([][]int, nranks)
	for _, z := range idx {
		best := 0
		for r := 1; r < nranks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		loads[best] += sizes[z]
		out[best] = append(out[best], z)
	}
	return out
}

// Params configures one Figure 12 case, e.g. {ClassA, 8, 4} is
// "A.8,4PE".
type Params struct {
	Class  Class
	NProcs int // AMPI ranks
	NPEs   int // physical processors
	Steps  int // solver timesteps
	// Mode selects the execution path: "" is the legacy thread job
	// (NewJob rank bodies, byte-identical to prior releases);
	// ampi.ModeULT and ampi.ModeEvent run the same zone step as a
	// continuation Program on the respective flow backend. Program
	// mode is what reaches 10^5+ zones: each zone-rank is then a
	// ~180-byte record instead of a stack. Incompatible with
	// Steal/Aggregate/Trace.
	Mode string
	// LB, when non-nil, triggers MPI_Migrate with this strategy after
	// the warm-up step.
	LB loadbalance.Strategy
	// HaloBytes per neighbour exchange.
	HaloBytes int
	// Trace enables Projections-style event logging; the log lands in
	// Result.Trace.
	Trace bool
	// Collectives selects the AMPI collective topology (tree by
	// default; CollFlat for A/B; CollTopoTree follows Topo).
	Collectives ampi.CollAlgo
	// Topo is the torus/PE-group shape collective trees can exploit:
	// when set, every collective tree edge is charged per-hop cost and
	// counted in Result.TopoHops (ampi.Topology docs).
	Topo ampi.Topology
	// Overlap makes the halo exchange split-phase: receives are
	// posted and halos sent before the solve, and the exchange
	// completes (Waitall) after it — so exchange latency hides under
	// solver work, and the per-step modeled time becomes
	// max(solve, exchange) instead of solve + exchange. The residual
	// reduction (ReduceEvery) pipelines the same way: each reduction
	// starts after its step's exchange and is collected a reduce
	// period later.
	Overlap bool
	// ReduceEvery joins a "max" residual-proxy Allreduce every k
	// steps (0 = never) — blocking by default, pipelined
	// (Iallreduce + deferred Wait) with Overlap.
	ReduceEvery int
	// Aggregate routes the boundary exchange through comm streaming
	// aggregation: each rank's halos coalesce per destination PE, so
	// the modeled per-step exchange pays one Alpha per (rank, dest-PE)
	// envelope instead of one per message. The solver (busy) component
	// of TimeNs is unaffected.
	Aggregate bool
	// AggPolicy tunes the coalescing buffers (zero value = defaults).
	AggPolicy comm.AggPolicy
	// Steal runs the job in the wall-clock parallel driver with
	// idle-cycle work stealing enabled: idle PEs pull ready ranks off
	// loaded neighbours, so solver work lands where the free cycles
	// are. Off (the default) keeps the deterministic
	// RunUntilQuiescent driver and bit-stable figures.
	Steal bool
	// WorkChunks splits each step's solve into this many Work+Yield
	// slices (default 1 = one indivisible solve). Chunking models the
	// solver's directional sweeps and is what gives the stealer
	// re-placement points mid-step.
	WorkChunks int
	// SpinScale is the steal-mode execution rate: modeled solver
	// nanoseconds per wall-clock nanosecond of actual spinning (default
	// DefaultSpinScale). Stealing is driven by real idleness, so in
	// steal mode each work slice occupies the PE's scheduler goroutine
	// for slice/SpinScale of wall time — that is what makes a PE
	// holding 10x the modeled work actually finish last, and its ready
	// ranks actually available to idle thieves. Ignored unless Steal.
	SpinScale float64
}

// DefaultSpinScale compresses modeled solver time 50:1 into wall
// time for steal-mode runs.
const DefaultSpinScale = 50

// Label renders the paper's case naming ("A.8,4PE"), suffixed with
// the flow mode for program-mode runs ("Z4K.4096,8PE/event").
func (p Params) Label() string {
	l := fmt.Sprintf("%s.%d,%dPE", p.Class.Name, p.NProcs, p.NPEs)
	if p.Mode != "" {
		l += "/" + p.Mode
	}
	return l
}

// Result is one benchmark execution.
type Result struct {
	Params Params
	// TimeNs is the modeled parallel execution time: per step, the
	// maximum over PEs of the solver work that actually ran there
	// (reflecting where each rank was at that moment, i.e. the
	// migrations), plus halo-exchange latency, plus the one-time
	// migration transfer cost.
	TimeNs float64
	// PredictedNs is the program-mode virtual-time makespan (max rank
	// VT) — placement-invariant, so it is bit-identical across modes
	// and across LB decisions (zero in legacy mode, which has no VT).
	PredictedNs float64
	CommNs      float64   // halo-exchange component of TimeNs
	PELoads    []float64 // measured per-PE work (current placement)
	Imbalance  float64   // max/avg of PELoads
	Migrations    uint64
	MigratedBytes uint64
	MovedRanks    int
	// Envelopes/AggPayloads report the streaming-aggregation traffic
	// (zero unless Params.Aggregate).
	Envelopes   uint64
	AggPayloads uint64
	// Steals reports the work-stealing counters (zero unless
	// Params.Steal).
	Steals core.StealStats
	// TopoHops counts the logical torus hops collective tree edges
	// crossed (zero unless Params.Topo is set).
	TopoHops uint64
	// Trace is the event log when Params.Trace was set (nil
	// otherwise).
	Trace *trace.Log
}

// Run executes the benchmark on a fresh machine.
func Run(p Params) (*Result, error) {
	if p.NProcs < 1 || p.NPEs < 1 {
		return nil, fmt.Errorf("npb: bad params %+v", p)
	}
	if p.NProcs > p.Class.NumZones() {
		return nil, fmt.Errorf("npb: %d ranks exceed %d zones", p.NProcs, p.Class.NumZones())
	}
	if p.Steps == 0 {
		p.Steps = 10
	}
	if p.HaloBytes == 0 {
		p.HaloBytes = 4096
	}
	if p.ReduceEvery < 0 {
		return nil, fmt.Errorf("npb: ReduceEvery %d must be ≥ 0", p.ReduceEvery)
	}
	if p.Mode != "" {
		return runProgram(p)
	}
	layout := swapglobal.NewLayout()
	layout.Declare("step", 8) // the solver's "global" iteration counter
	layout.Declare("residual", 8)
	m, err := core.NewMachine(core.Config{NumPEs: p.NPEs, Globals: layout, Steal: p.Steal})
	if err != nil {
		return nil, err
	}
	var tlog *trace.Log
	if p.Trace {
		tlog = m.EnableTracing()
	}
	sizes := p.Class.ZoneSizes()
	zones := AssignZones(sizes, p.NProcs)
	// Zone ownership and per-rank halo pattern: one message per
	// zone-neighbour pair that crosses ranks (both directions).
	owner := make([]int, p.Class.NumZones())
	for r, zs := range zones {
		for _, z := range zs {
			owner[z] = r
		}
	}
	sendTo := make([][]int, p.NProcs) // rank → destination ranks, one per crossing pair
	expectIn := make([]int, p.NProcs) // rank → inbound halo messages per step
	for r, zs := range zones {
		for _, z := range zs {
			for _, nb := range p.Class.ZoneNeighbors(z) {
				if owner[nb] != r {
					sendTo[r] = append(sendTo[r], owner[nb])
					expectIn[owner[nb]]++
				}
			}
		}
	}

	spinScale := p.SpinScale
	if spinScale <= 0 {
		spinScale = DefaultSpinScale
	}
	var mu sync.Mutex
	moved := 0
	// stepBusy[step][pe] accumulates solver work as it actually ran:
	// the per-step parallel time is its max over PEs. stepComm[step]
	// is the critical-path exchange cost: the worst rank's outbound
	// halo traffic, per-message or per dest-PE envelope.
	stepBusy := make([][]float64, p.Steps)
	for i := range stepBusy {
		stepBusy[i] = make([]float64, p.NPEs)
	}
	stepComm := make([]float64, p.Steps)
	lat := m.Network().Latency()
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var job *ampi.Job // captured: rank bodies consult placement via PEOf
	opts := ampi.Options{
		Globals:        layout,
		BlockPlacement: true,
		Collectives:    p.Collectives,
		Topo:           p.Topo,
		Aggregate:      p.Aggregate,
		AggPolicy:      p.AggPolicy,
	}
	job, err = ampi.NewJob(m, p.NProcs, opts, func(r *ampi.Rank) {
		// NOTE: the GOT is per-PE (part of the process image), so it
		// must be re-fetched after any potential migration.
		got := func() *swapglobal.GOT { return r.Ctx().GlobalsGOT() }
		var myWork float64
		for _, z := range zones[r.Rank()] {
			myWork += sizes[z] * p.Class.WorkPerPointNs
		}
		halo := make([]byte, p.HaloBytes)
		// Pipelined residual reduction (Overlap + ReduceEvery): the
		// reduction started at the previous reduce step is collected
		// just before the next one starts, so its tree latency hides
		// under the intervening solves.
		var ar *ampi.CollRequest
		for step := 0; step < p.Steps; step++ {
			// Privatized global: each rank tracks its own step
			// counter, unchanged application style under AMPI.
			if err := got().StoreUint64("step", uint64(step)); err != nil {
				fail(err)
				return
			}
			// Solve the rank's zones. With WorkChunks > 1 the solve is
			// sliced into directional sweeps separated by yields — each
			// yield is a point where an idle PE may steal this rank, so
			// the remaining sweeps run (and are charged) where the free
			// cycles are. chunks == 1 charges the whole solve at once,
			// byte-identical to the unsliced model.
			solve := func() {
				chunks := p.WorkChunks
				if chunks < 1 {
					chunks = 1
				}
				slice := myWork / float64(chunks)
				for k := 0; k < chunks; k++ {
					r.Work(slice)
					if p.Steal {
						// Occupy the PE for wall time proportional to the
						// modeled slice, so real idleness tracks modeled
						// load and thieves pull from genuinely busy PEs.
						spinWall(slice / spinScale)
					}
					mu.Lock()
					stepBusy[step][r.PE()] += slice
					mu.Unlock()
					if chunks > 1 {
						r.Yield()
					}
				}
			}
			// Boundary exchange along the real zone adjacency: one
			// halo message per crossing zone-neighbour pair, sent
			// nonblocking, then receive the expected inbound count.
			// With Overlap the receives are posted and the halos sent
			// BEFORE the solve, and the exchange completes after it —
			// the MPI-3 split-phase pattern the request objects exist
			// for.
			var reqs []*ampi.Request
			if p.Overlap {
				for i := 0; i < expectIn[r.Rank()]; i++ {
					q, err := r.Irecv(ampi.AnySource, 1)
					if err != nil {
						fail(err)
						return
					}
					reqs = append(reqs, q)
				}
				for _, dest := range sendTo[r.Rank()] {
					if _, err := r.Isend(dest, 1, halo); err != nil {
						fail(err)
						return
					}
				}
			}
			solve()
			if !p.Overlap {
				for _, dest := range sendTo[r.Rank()] {
					if _, err := r.Isend(dest, 1, halo); err != nil {
						fail(err)
						return
					}
				}
			}
			// Critical-path exchange model for this step: the worst
			// rank's outbound halo cost. Aggregation coalesces one
			// envelope per destination PE under the current placement
			// (stable during the exchange — migration happens only at
			// the step-0 barrier below).
			var commCost float64
			if p.Aggregate {
				perPE := make(map[int]int)
				for _, dest := range sendTo[r.Rank()] {
					perPE[job.PEOf(dest)] += p.HaloBytes
				}
				for _, bytes := range perPE {
					commCost += lat.Cost(bytes)
				}
			} else {
				commCost = float64(len(sendTo[r.Rank()])) * lat.Cost(p.HaloBytes)
			}
			mu.Lock()
			if commCost > stepComm[step] {
				stepComm[step] = commCost
			}
			mu.Unlock()
			if p.Overlap {
				if err := r.Waitall(reqs); err != nil {
					fail(err)
					return
				}
			} else {
				for i := 0; i < expectIn[r.Rank()]; i++ {
					if _, _, err := r.Recv(ampi.AnySource, 1); err != nil {
						fail(err)
						return
					}
				}
			}
			// Residual-proxy reduction every ReduceEvery steps:
			// blocking, or started now and collected a period later
			// under Overlap.
			if p.ReduceEvery > 0 && (step+1)%p.ReduceEvery == 0 {
				if p.Overlap {
					if ar != nil {
						if err := ar.Wait(); err != nil {
							fail(err)
							return
						}
					}
					q, err := r.Iallreduce("max", myWork)
					if err != nil {
						fail(err)
						return
					}
					ar = q
				} else if _, err := r.Allreduce("max", myWork); err != nil {
					fail(err)
					return
				}
			}
			// After the first (measurement) step, rebalance.
			if step == 0 && p.LB != nil {
				n, err := r.Migrate(p.LB)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				if n > moved {
					moved = n
				}
				mu.Unlock()
			}
			if v, err := got().LoadUint64("step"); err != nil || v != uint64(step) {
				fail(fmt.Errorf("rank %d: privatized step = %d/%v, want %d", r.Rank(), v, err, step))
				return
			}
		}
		// Collect the reduction the last reduce step left in flight.
		if ar != nil {
			if err := ar.Wait(); err != nil {
				fail(err)
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if p.Steal {
		// Wall-clock parallel driver: one goroutine per PE, idle PEs
		// steal ready ranks before blocking on their wake gates.
		job.Start()
		m.RunParallel(job.Done)
	} else {
		job.Run()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !job.Done() {
		return nil, fmt.Errorf("npb: job did not complete (deadlock?)")
	}
	migs, migBytes := m.MigrationStats()
	var total, commTotal float64
	for step, busy := range stepBusy {
		var max float64
		for _, b := range busy {
			if b > max {
				max = b
			}
		}
		if p.Overlap {
			// Split-phase exchange: the halos fly while the solve
			// runs, so a step costs whichever is longer, not the sum.
			total += math.Max(max, stepComm[step])
		} else {
			total += max + stepComm[step]
		}
		commTotal += stepComm[step]
	}
	// Migration transfers cross the network once, spread over PEs.
	if migs > 0 {
		total += lat.Cost(int(migBytes)) / float64(p.NPEs)
	}
	// Per-PE measured work under the current (post-LB if any)
	// placement: CPU time since the last Migrate reset.
	loads := job.PELoads()
	stats := m.Network().Snapshot()
	res := &Result{
		Params:      p,
		TimeNs:      total,
		CommNs:      commTotal,
		PELoads:     loads,
		Imbalance:     loadbalance.Imbalance(loads),
		Migrations:    migs,
		MigratedBytes: migBytes,
		MovedRanks:    moved,
		Envelopes:   stats.Envelopes,
		AggPayloads: stats.AggPayloads,
		Steals:      m.StealStats(),
		TopoHops:    m.Network().TopoHops(),
		Trace:       tlog,
	}
	return res, nil
}

// spinWall occupies the calling goroutine for ns wall-clock
// nanoseconds — the steal-mode stand-in for actually executing a
// solver sweep. It yields the processor each iteration so that on a
// host with few OS threads the other PEs' schedulers (and woken
// thieves) still interleave with a long-grinding victim, as they
// would on real per-PE processors.
func spinWall(ns float64) {
	d := time.Duration(ns)
	if d <= 0 {
		return
	}
	for t0 := time.Now(); time.Since(t0) < d; {
		runtime.Gosched()
	}
}

// Cases returns the Figure 12 case list.
func Cases(steps int, lb loadbalance.Strategy) []Params {
	mk := func(c Class, nprocs, npes int) Params {
		return Params{Class: c, NProcs: nprocs, NPEs: npes, Steps: steps, LB: lb}
	}
	return []Params{
		mk(ClassA, 8, 4),
		mk(ClassA, 16, 8),
		mk(ClassB, 16, 8),
		mk(ClassB, 32, 8),
		mk(ClassB, 64, 8),
	}
}
