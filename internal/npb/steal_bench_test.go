package npb

import "testing"

// BenchmarkStealMakespan A/Bs the modeled BT-MZ makespan with idle-
// cycle work stealing off versus on, on the most skewed Figure 12
// configuration (B.64,8PE: one ratio-20 zone per rank, block
// placement concentrating the biggest zones on PE 0). WorkChunks
// slices each rank's solve so thieves get re-placement points
// mid-step. The vns/op metric is the modeled makespan per run —
// "on" beating "off" is the whole point of the feature.
func BenchmarkStealMakespan(b *testing.B) {
	for _, mode := range []struct {
		name  string
		steal bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var total float64
			var stolen uint64
			for i := 0; i < b.N; i++ {
				r, err := Run(Params{
					Class: ClassB, NProcs: 64, NPEs: 8, Steps: 4,
					WorkChunks: 4, Steal: mode.steal,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += r.TimeNs
				stolen += r.Steals.Moved
			}
			b.ReportMetric(total/float64(b.N), "vns/op")
			b.ReportMetric(float64(stolen)/float64(b.N), "stolen/op")
		})
	}
}
