// PUP wire codec for Message envelopes — the serialization half of
// the socket transport. An envelope is the unit that crosses a
// process boundary: the destination PE plus every payload the sender
// coalesced for it (one message for a direct Send, a TRAM-flushed
// batch for SendStream traffic).
//
// Wire layout (little-endian, fixed-width — no varints, so float64
// timestamps cross bit-exactly):
//
//	u32 dstPE
//	u32 count
//	count × { u64 To, u64 From, i64 Tag, i64 Hops, u64 Seq,
//	          f64 SendTime, f64 Arrival, f64 VTime,
//	          u32 dataLen, dataLen bytes }
//
// Decoding is hardened against hostile input in the style of
// internal/pup: every length prefix is validated against the bytes
// actually remaining before any allocation — a forged count or
// dataLen fails cleanly instead of allocating gigabytes. The fuzz
// target in wire_test.go drives arbitrary byte strings through
// DecodeEnvelope and round-trips whatever decodes.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"migflow/internal/pup"
)

// msgWireMin is the minimum encoded size of one Message: eight
// fixed 8-byte fields plus the 4-byte data length prefix.
const msgWireMin = 8*8 + 4

// envWireMin is the minimum encoded size of an envelope header.
const envWireMin = 4 + 4

// pupMessage visits every wire field of m.
func pupMessage(p *pup.PUPer, m *Message) error {
	to, from := uint64(m.To), uint64(m.From)
	tag, hops := int64(m.Tag), int64(m.Hops)
	if err := p.Uint64(&to); err != nil {
		return err
	}
	if err := p.Uint64(&from); err != nil {
		return err
	}
	if err := p.Int64(&tag); err != nil {
		return err
	}
	if err := p.Int64(&hops); err != nil {
		return err
	}
	if err := p.Uint64(&m.Seq); err != nil {
		return err
	}
	if err := p.Float64(&m.SendTime); err != nil {
		return err
	}
	if err := p.Float64(&m.Arrival); err != nil {
		return err
	}
	if err := p.Float64(&m.VTime); err != nil {
		return err
	}
	if err := p.Bytes(&m.Data); err != nil {
		return err
	}
	if p.IsUnpacking() {
		m.To, m.From = EntityID(to), EntityID(from)
		m.Tag, m.Hops = int(tag), int(hops)
	}
	return nil
}

// EncodeEnvelope packs an envelope of payloads bound for PE pe.
func EncodeEnvelope(pe int, msgs []*Message) ([]byte, error) {
	p := pup.NewGrowPacker()
	dst, count := uint32(pe), uint32(len(msgs))
	if err := p.Uint32(&dst); err != nil {
		return nil, err
	}
	if err := p.Uint32(&count); err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if err := pupMessage(p, m); err != nil {
			return nil, err
		}
	}
	return p.PackedBytes(), nil
}

// envelopeWireSize is the exact encoded size of an envelope for
// msgs, so the send path can draw a right-sized recycled buffer and
// append without a single reallocation.
func envelopeWireSize(msgs []*Message) int {
	n := envWireMin
	for _, m := range msgs {
		n += msgWireMin + len(m.Data)
	}
	return n
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendEnvelope appends the envelope image for PE pe onto dst —
// byte-for-byte the output of EncodeEnvelope (wire_test.go asserts
// the equivalence), but allocation-free when dst has the capacity
// (use envelopeWireSize). This is the hot-path encoder both
// multi-process transports use; EncodeEnvelope stays as the
// reference implementation and the convenience entry point.
func appendEnvelope(dst []byte, pe int, msgs []*Message) []byte {
	dst = appendU32(dst, uint32(pe))
	dst = appendU32(dst, uint32(len(msgs)))
	for _, m := range msgs {
		dst = appendU64(dst, uint64(m.To))
		dst = appendU64(dst, uint64(m.From))
		dst = appendU64(dst, uint64(int64(m.Tag)))
		dst = appendU64(dst, uint64(int64(m.Hops)))
		dst = appendU64(dst, m.Seq)
		dst = appendU64(dst, math.Float64bits(m.SendTime))
		dst = appendU64(dst, math.Float64bits(m.Arrival))
		dst = appendU64(dst, math.Float64bits(m.VTime))
		dst = appendU32(dst, uint32(len(m.Data)))
		dst = append(dst, m.Data...)
	}
	return dst
}

// DecodeEnvelope unpacks one envelope. The claimed message count is
// validated against the remaining bytes (each message needs at least
// msgWireMin) before the slice is sized, and each payload's length
// prefix is validated by pup.Bytes before its allocation, so a
// hostile or truncated image errors without amplification. Trailing
// garbage after the last message is an error too — an envelope is
// exactly its contents.
func DecodeEnvelope(data []byte) (pe int, msgs []*Message, err error) {
	if len(data) < envWireMin {
		return 0, nil, fmt.Errorf("comm: envelope truncated: %d bytes", len(data))
	}
	dst := binary.LittleEndian.Uint32(data)
	count := binary.LittleEndian.Uint32(data[4:])
	rest := data[envWireMin:]
	if int64(count)*msgWireMin > int64(len(rest)) {
		return 0, nil, fmt.Errorf("comm: corrupt envelope: claims %d messages with %d bytes remaining", count, len(rest))
	}
	// Batch allocation: one Message block, one pointer slice, one
	// shared data arena — three allocations per envelope no matter how
	// many payloads it coalesced, which is what keeps the streamed
	// receive path near zero allocs per message. The arena is sized
	// from the envelope arithmetic (whatever isn't fixed fields is
	// payload), so a forged dataLen can only fail the bounds checks
	// below, never oversize an allocation. Holding one decoded
	// message's Data alive keeps its envelope-mates' data reachable
	// too; receivers that retain payloads long-term should copy.
	block := make([]Message, count)
	msgs = make([]*Message, count)
	arena := make([]byte, len(rest)-int(count)*msgWireMin)
	off, ao := 0, 0
	for i := range block {
		m := &block[i]
		f := rest[off:]
		m.To = EntityID(binary.LittleEndian.Uint64(f))
		m.From = EntityID(binary.LittleEndian.Uint64(f[8:]))
		m.Tag = int(int64(binary.LittleEndian.Uint64(f[16:])))
		m.Hops = int(int64(binary.LittleEndian.Uint64(f[24:])))
		m.Seq = binary.LittleEndian.Uint64(f[32:])
		m.SendTime = math.Float64frombits(binary.LittleEndian.Uint64(f[40:]))
		m.Arrival = math.Float64frombits(binary.LittleEndian.Uint64(f[48:]))
		m.VTime = math.Float64frombits(binary.LittleEndian.Uint64(f[56:]))
		n := int(binary.LittleEndian.Uint32(f[64:]))
		off += msgWireMin
		// Remaining fixed fields bound the payload room left: a forged
		// length that would eat another message's fields fails here.
		if n > len(rest)-off-(len(block)-1-i)*msgWireMin || n > len(arena)-ao {
			return 0, nil, fmt.Errorf("comm: corrupt envelope message %d: data length %d", i, n)
		}
		m.Data = arena[ao : ao+n : ao+n]
		copy(m.Data, rest[off:off+n])
		off += n
		ao += n
		msgs[i] = m
	}
	if off != len(rest) {
		return 0, nil, fmt.Errorf("comm: envelope carries %d trailing bytes", len(rest)-off)
	}
	return int(dst), msgs, nil
}
