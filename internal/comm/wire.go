// PUP wire codec for Message envelopes — the serialization half of
// the socket transport. An envelope is the unit that crosses a
// process boundary: the destination PE plus every payload the sender
// coalesced for it (one message for a direct Send, a TRAM-flushed
// batch for SendStream traffic).
//
// Wire layout (little-endian, fixed-width — no varints, so float64
// timestamps cross bit-exactly):
//
//	u32 dstPE
//	u32 count
//	count × { u64 To, u64 From, i64 Tag, i64 Hops, u64 Seq,
//	          f64 SendTime, f64 Arrival, f64 VTime,
//	          u32 dataLen, dataLen bytes }
//
// Decoding is hardened against hostile input in the style of
// internal/pup: every length prefix is validated against the bytes
// actually remaining before any allocation — a forged count or
// dataLen fails cleanly instead of allocating gigabytes. The fuzz
// target in wire_test.go drives arbitrary byte strings through
// DecodeEnvelope and round-trips whatever decodes.
package comm

import (
	"fmt"

	"migflow/internal/pup"
)

// msgWireMin is the minimum encoded size of one Message: eight
// fixed 8-byte fields plus the 4-byte data length prefix.
const msgWireMin = 8*8 + 4

// envWireMin is the minimum encoded size of an envelope header.
const envWireMin = 4 + 4

// pupMessage visits every wire field of m.
func pupMessage(p *pup.PUPer, m *Message) error {
	to, from := uint64(m.To), uint64(m.From)
	tag, hops := int64(m.Tag), int64(m.Hops)
	if err := p.Uint64(&to); err != nil {
		return err
	}
	if err := p.Uint64(&from); err != nil {
		return err
	}
	if err := p.Int64(&tag); err != nil {
		return err
	}
	if err := p.Int64(&hops); err != nil {
		return err
	}
	if err := p.Uint64(&m.Seq); err != nil {
		return err
	}
	if err := p.Float64(&m.SendTime); err != nil {
		return err
	}
	if err := p.Float64(&m.Arrival); err != nil {
		return err
	}
	if err := p.Float64(&m.VTime); err != nil {
		return err
	}
	if err := p.Bytes(&m.Data); err != nil {
		return err
	}
	if p.IsUnpacking() {
		m.To, m.From = EntityID(to), EntityID(from)
		m.Tag, m.Hops = int(tag), int(hops)
	}
	return nil
}

// EncodeEnvelope packs an envelope of payloads bound for PE pe.
func EncodeEnvelope(pe int, msgs []*Message) ([]byte, error) {
	p := pup.NewGrowPacker()
	dst, count := uint32(pe), uint32(len(msgs))
	if err := p.Uint32(&dst); err != nil {
		return nil, err
	}
	if err := p.Uint32(&count); err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if err := pupMessage(p, m); err != nil {
			return nil, err
		}
	}
	return p.PackedBytes(), nil
}

// DecodeEnvelope unpacks one envelope. The claimed message count is
// validated against the remaining bytes (each message needs at least
// msgWireMin) before the slice is sized, and each payload's length
// prefix is validated by pup.Bytes before its allocation, so a
// hostile or truncated image errors without amplification. Trailing
// garbage after the last message is an error too — an envelope is
// exactly its contents.
func DecodeEnvelope(data []byte) (pe int, msgs []*Message, err error) {
	if len(data) < envWireMin {
		return 0, nil, fmt.Errorf("comm: envelope truncated: %d bytes", len(data))
	}
	p := pup.NewUnpacker(data)
	var dst, count uint32
	if err := p.Uint32(&dst); err != nil {
		return 0, nil, err
	}
	if err := p.Uint32(&count); err != nil {
		return 0, nil, err
	}
	if int64(count)*msgWireMin > int64(p.Remaining()) {
		return 0, nil, fmt.Errorf("comm: corrupt envelope: claims %d messages with %d bytes remaining", count, p.Remaining())
	}
	msgs = make([]*Message, count)
	for i := range msgs {
		m := &Message{}
		if err := pupMessage(p, m); err != nil {
			return 0, nil, fmt.Errorf("comm: corrupt envelope message %d: %w", i, err)
		}
		msgs[i] = m
	}
	if p.Remaining() != 0 {
		return 0, nil, fmt.Errorf("comm: envelope carries %d trailing bytes", p.Remaining())
	}
	return int(dst), msgs, nil
}
