//go:build !unix

package comm

import (
	"fmt"
	"os"
)

// Non-unix platforms have no shared mapping shim; the shard layer
// falls back to the socket fabric when ring setup fails.
func mmapShared(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("comm: shm transport requires a unix platform")
}

func munmapShared(b []byte) error { return nil }
