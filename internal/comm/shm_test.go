package comm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// twoShmShards mirrors twoShards over the shared-memory fabric: two
// sharded 4-PE networks in one process, linked by a ring mesh in a
// temp directory. ringBytes sizes the rings (0 = a small 64 KiB so
// tests exercise realistic occupancy).
func twoShmShards(t *testing.T, ringBytes int) (n0, n1 *Network, t0, t1 *ShmTransport) {
	t.Helper()
	if ringBytes == 0 {
		ringBytes = 1 << 16
	}
	dir := t.TempDir()
	if err := CreateShmMesh(dir, 2, ringBytes); err != nil {
		t.Fatal(err)
	}
	owner := func(pe int) int { return pe / 2 }
	lat := LatencyModel{Alpha: 100, BetaPerByte: 1}
	n0, n1 = NewNetwork(4, lat), NewNetwork(4, lat)
	var err error
	if t0, err = NewShmTransport(0, 2, owner, dir); err != nil {
		t.Fatal(err)
	}
	if t1, err = NewShmTransport(1, 2, owner, dir); err != nil {
		t.Fatal(err)
	}
	if err := t0.Attach(n0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Attach(n1, 2, 4); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		t0.Retire()
		t1.Retire()
		t0.Close()
		t1.Close()
	})
	return n0, n1, t0, t1
}

func shmStart(t *testing.T, t0, t1 *ShmTransport) {
	t.Helper()
	if err := t0.Start(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Start(); err != nil {
		t.Fatal(err)
	}
}

// TestShmTransportSend is TestSocketTransportSend over the ring
// fabric: bit-identical delivery, same latency accounting, in order.
func TestShmTransportSend(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, 0)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(9), 2); err != nil {
			t.Fatal(err)
		}
	}
	shmStart(t, t0, t1)

	const count = 50
	for i := 0; i < count; i++ {
		msg := &Message{To: 9, From: 1, Tag: i, Data: []byte{byte(i), 2, 3, 4}, SendTime: float64(i) * 10, VTime: float64(i)}
		if err := n0.Endpoint(0).Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	dst := n1.Endpoint(2)
	waitFor(t, "cross-ring delivery", func() bool { return dst.Pending() == count })
	for i := 0; i < count; i++ {
		m := dst.Poll()
		if m.Tag != i {
			t.Fatalf("out of order: got tag %d at position %d", m.Tag, i)
		}
		wantArrival := float64(i)*10 + n0.Latency().Cost(4)
		if m.Arrival != wantArrival || m.Hops != 1 || m.VTime != float64(i) {
			t.Fatalf("msg %d: arrival %v want %v, hops %d, vtime %v", i, m.Arrival, wantArrival, m.Hops, m.VTime)
		}
	}
	if s := n0.Snapshot(); s.RemoteEnvelopes != count || s.RemotePayloads != count {
		t.Fatalf("sender snapshot: %+v", s)
	}
	if st := t0.SocketStats(); st.FramesSent != count || st.WriteSyscalls != 0 {
		t.Fatalf("shm stats (no syscalls, one frame per send): %+v", st)
	}
}

// TestShmTransportAggregated checks a flushed TRAM bucket crosses the
// ring as one frame.
func TestShmTransportAggregated(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, 0)
	for _, n := range []*Network{n0, n1} {
		for i := 0; i < 8; i++ {
			if err := n.Register(EntityID(100+i), 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	n0.EnableAggregation(AggPolicy{MaxPayloads: 8})
	shmStart(t, t0, t1)

	src := n0.Endpoint(1)
	for i := 0; i < 8; i++ {
		if err := src.SendStream(&Message{To: EntityID(100 + i), From: 1, Data: []byte("abcd")}); err != nil {
			t.Fatal(err)
		}
	}
	dst := n1.Endpoint(3)
	waitFor(t, "aggregated delivery", func() bool { return dst.Pending() == 8 })
	if s := n0.Snapshot(); s.RemoteEnvelopes != 1 || s.RemotePayloads != 8 {
		t.Fatalf("remote envelope should carry all 8 payloads in one frame: %+v", s)
	}
	if st := t0.SocketStats(); st.FramesSent != 1 {
		t.Fatalf("ring frames: %+v", st)
	}
}

// TestShmTransportForward chases a migrated entity across the rings.
func TestShmTransportForward(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, 0)
	base := PinnedEntity | EntityID(1<<20)
	for _, n := range []*Network{n0, n1} {
		if err := n.RegisterRange(base, []int{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	shmStart(t, t0, t1)

	msg := &Message{To: base, From: 99, Data: []byte("chase me"), SendTime: 5}
	if err := n1.Endpoint(2).Send(msg); err != nil {
		t.Fatal(err)
	}
	old := n0.Endpoint(1)
	waitFor(t, "first hop", func() bool { return old.Pending() == 1 })
	got := old.Poll()

	for _, n := range []*Network{n0, n1} {
		if err := n.MoveRangeBatch(base, []RangeMove{{Index: 0, To: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.Forward(got); err != nil {
		t.Fatal(err)
	}
	dst := n1.Endpoint(3)
	waitFor(t, "forwarded delivery", func() bool { return dst.Pending() == 1 })
	m := dst.Poll()
	if m.Hops != 2 || string(m.Data) != "chase me" {
		t.Fatalf("forwarded message: hops %d, data %q", m.Hops, m.Data)
	}
}

// TestShmTransportControl checks ring FIFO: an envelope published
// before a control frame is delivered before it.
func TestShmTransportControl(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, 0)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(5), 0); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []string
	t0.SetControlHandler(func(from int, kind uint32, payload []byte) {
		mu.Lock()
		got = append(got, fmt.Sprintf("%d/%d/%s", from, kind, payload))
		mu.Unlock()
	})
	shmStart(t, t0, t1)

	if err := n1.Endpoint(3).Send(&Message{To: 5, From: 2, Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	if err := t1.SendControl(0, 7, []byte("done")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "control frame", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	if n0.Endpoint(0).Pending() != 1 {
		t.Fatal("envelope must precede the control frame in ring FIFO")
	}
	mu.Lock()
	if got[0] != "1/7/done" {
		t.Fatalf("control frame: %q", got[0])
	}
	mu.Unlock()
}

// TestShmTransportWrapAround drives far more bytes than the ring
// holds through a deliberately tiny ring, so the cursors wrap many
// times and frames straddle the boundary — order and content must
// survive, with the writer blocking (not corrupting) when full.
func TestShmTransportWrapAround(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, shmMinRing)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(9), 2); err != nil {
			t.Fatal(err)
		}
	}
	shmStart(t, t0, t1)

	const count = 500
	payload := make([]byte, 100) // ~172-byte frames vs a 4 KiB ring
	done := make(chan error, 1)
	go func() {
		for i := 0; i < count; i++ {
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := n0.Endpoint(0).Send(&Message{To: 9, From: 1, Tag: i, Data: payload}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	dst := n1.Endpoint(2)
	for i := 0; i < count; i++ {
		waitFor(t, "wrapped delivery", func() bool { return dst.Pending() > 0 })
		m := dst.Poll()
		if m.Tag != i {
			t.Fatalf("out of order after wrap: tag %d at %d", m.Tag, i)
		}
		for j, b := range m.Data {
			if b != byte(i+j) {
				t.Fatalf("frame %d corrupted at byte %d: %d != %d", i, j, b, byte(i+j))
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShmFrameTooLarge checks a frame that cannot ever fit the ring
// is rejected instead of deadlocking the writer.
func TestShmFrameTooLarge(t *testing.T) {
	_, _, t0, t1 := twoShmShards(t, shmMinRing)
	shmStart(t, t0, t1)
	if err := t0.SendControl(1, 9, make([]byte, 2*shmMinRing)); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

// heapRing builds a shmRing over process memory (no file, no mmap) so
// hostile-image tests and the fuzz target can scribble on it cheaply.
// Backed by a []uint64 so the header atomics are aligned.
func heapRing(capacity int) *shmRing {
	words := make([]uint64, (shmHdrSize+capacity)/8)
	mem := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	return &shmRing{
		mem:      mem,
		data:     mem[shmHdrSize:],
		capacity: uint64(capacity),
		head:     (*atomic.Uint64)(unsafe.Pointer(&mem[shmOffHead])),
		tail:     (*atomic.Uint64)(unsafe.Pointer(&mem[shmOffTail])),
		wclosed:  (*atomic.Uint32)(unsafe.Pointer(&mem[shmOffWCl])),
		rclosed:  (*atomic.Uint32)(unsafe.Pointer(&mem[shmOffRCl])),
	}
}

// publishRaw plants raw bytes as the ring's published region without
// any framing discipline — the hostile writer.
func publishRaw(r *shmRing, img []byte) {
	copy(r.data, img)
	r.head.Store(0)
	r.tail.Store(uint64(len(img)))
}

// TestShmRingHostile mirrors TestWireHostile for the ring framing:
// torn headers, zero-length frames, oversized claims, and claims
// beyond the published region must all error cleanly — never panic,
// never allocate beyond the claim ceiling.
func TestShmRingHostile(t *testing.T) {
	cases := []struct {
		name string
		img  []byte
	}{
		{"torn header 1B", []byte{7}},
		{"torn header 3B", []byte{7, 0, 0}},
		{"zero length", []byte{0, 0, 0, 0}},
		{"claim beyond published", []byte{200, 0, 0, 0, 1, 2, 3}},
		{"claim exceeds ring", binary.LittleEndian.AppendUint32(nil, uint32(shmMinRing))},
		{"claim max u32", []byte{0xff, 0xff, 0xff, 0xff}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := heapRing(shmMinRing)
			publishRaw(r, tc.img)
			if _, ok, err := r.readFrame(); err == nil {
				t.Fatalf("hostile image accepted (ok=%v)", ok)
			}
		})
	}
}

// TestShmRingRoundTrip pushes frames through a tiny heap ring across
// the wrap boundary and pops them back bit-for-bit.
func TestShmRingRoundTrip(t *testing.T) {
	r := heapRing(shmMinRing)
	frame := func(i, n int) []byte {
		f := binary.LittleEndian.AppendUint32(nil, uint32(1+n))
		f = append(f, frameControl)
		for j := 0; j < n; j++ {
			f = append(f, byte(i+j))
		}
		return f
	}
	next := 0
	popped := 0
	for popped < 200 {
		for next-popped < 8 && r.tryPush(frame(next, 101+next%53)) {
			next++
		}
		buf, ok, err := r.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("ring empty with %d un-popped", next-popped)
		}
		want := frame(popped, 101+popped%53)[4:]
		if !bytes.Equal(buf, want) {
			t.Fatalf("frame %d mismatch", popped)
		}
		putBuf(buf)
		popped++
	}
}

// FuzzShmFrame drives arbitrary published images through readFrame:
// whatever the bytes claim, the reader must either pop a frame whose
// length matches its header or error — no panic, no runaway
// allocation, and the cursor never runs past the published region.
func FuzzShmFrame(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 1, 9, 9, 9, 9})          // one valid 5-byte frame
	f.Add([]byte{1, 0, 0, 0, 2, 1, 0, 0, 0, 2})       // two minimal frames
	f.Add([]byte{0, 0, 0, 0})                         // zero length
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})        // hostile length
	f.Add(binary.LittleEndian.AppendUint32(nil, 800)) // claim > published
	f.Fuzz(func(t *testing.T, img []byte) {
		const capacity = 1 << 10
		if len(img) > capacity {
			img = img[:capacity]
		}
		r := heapRing(capacity)
		publishRaw(r, img)
		for {
			buf, ok, err := r.readFrame()
			if err != nil {
				return // rejected cleanly
			}
			if !ok {
				if got := r.readable(); got != 0 {
					t.Fatalf("reader stopped with %d bytes published", got)
				}
				return
			}
			if len(buf) == 0 || len(buf) > capacity-4 {
				t.Fatalf("popped frame of %d bytes", len(buf))
			}
			if r.head.Load() > r.tail.Load() {
				t.Fatal("head ran past tail")
			}
			putBuf(buf)
		}
	})
}
